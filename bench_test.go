// Benchmarks regenerating the paper's evaluation (see EXPERIMENTS.md).
//
// Table 1 (§8) has two columns — throughput of 16k writes and 1-byte
// round-trip latency — for four paths: pipes, IL/ether, URP/Datakit,
// and Cyclone. The benchmarks here run on ideal media (FastProfiles)
// so they measure the cost of the code paths themselves and are stable
// under testing.B; the calibrated-media reproduction that mirrors the
// paper's absolute shape is `go run ./cmd/netsim -table1` (recorded in
// EXPERIMENTS.md).
//
// The remaining benchmarks are the ablations DESIGN.md calls out: IL's
// query-based retransmission versus blind retransmission under loss
// (§3), adaptive versus fixed timeouts (§3), and 9P mounts over IL
// (native delimiters) versus TCP (marshaling layer).
package repro

import (
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/ether"
	"repro/internal/exportfs"
	"repro/internal/il"
	"repro/internal/ip"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/table1"
	"repro/internal/vfs"
)

// buildPaths boots the measurement world once per benchmark.
func buildPaths(b *testing.B) map[string]table1.Path {
	b.Helper()
	w, paths, err := table1.BuildWorld(table1.FastConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	m := make(map[string]table1.Path, len(paths))
	for _, p := range paths {
		m[p.Name] = p
	}
	return m
}

func benchLatency(b *testing.B, path string) {
	p, ok := buildPaths(b)[path]
	if !ok {
		b.Fatalf("no path %q", path)
	}
	conn, err := p.DialEcho()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	conn.Write(buf)
	if _, err := io.ReadFull(conn, buf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := conn.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchThroughput(b *testing.B, path string) {
	p, ok := buildPaths(b)[path]
	if !ok {
		b.Fatalf("no path %q", path)
	}
	const chunk = 16 * 1024 // the paper's 16k writes
	total := b.N * chunk
	conn, err := p.DialSink(total)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for range b.N {
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		b.Fatal(err)
	}
}

// --- Table 1, row by row ---

func BenchmarkTable1LatencyPipes(b *testing.B)         { benchLatency(b, "pipes") }
func BenchmarkTable1LatencyILEther(b *testing.B)       { benchLatency(b, "IL/ether") }
func BenchmarkTable1LatencyURPDatakit(b *testing.B)    { benchLatency(b, "URP/Datakit") }
func BenchmarkTable1LatencyCyclone(b *testing.B)       { benchLatency(b, "Cyclone") }
func BenchmarkTable1ThroughputPipes(b *testing.B)      { benchThroughput(b, "pipes") }
func BenchmarkTable1ThroughputILEther(b *testing.B)    { benchThroughput(b, "IL/ether") }
func BenchmarkTable1ThroughputURPDatakit(b *testing.B) { benchThroughput(b, "URP/Datakit") }
func BenchmarkTable1ThroughputCyclone(b *testing.B)    { benchThroughput(b, "Cyclone") }

// --- Figure 1: the device file tree (walk + clone cost) ---

func BenchmarkFigure1EtherTreeWalk(b *testing.B) {
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	helix := w.Machine("helix")
	b.ResetTimer()
	for b.Loop() {
		if _, err := helix.NS.Stat("/net/ether0/clone"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: query vs blind retransmission under loss (§3) ---

// lossyILWorld builds two machines on a lossy ether with the given IL
// configuration and returns dialer/listener protos.
func lossyILWorld(b *testing.B, loss float64, cfg il.Config) (*il.Proto, *il.Proto, ip.Addr, func()) {
	b.Helper()
	seg := ether.NewSegment("e0", ether.Profile{Loss: loss, Seed: 42})
	s1, s2 := ip.NewStack(), ip.NewStack()
	a1 := ip.Addr{10, 0, 0, 1}
	a2 := ip.Addr{10, 0, 0, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := s1.Bind(seg.NewInterface("e"), a1, mask); err != nil {
		b.Fatal(err)
	}
	if _, err := s2.Bind(seg.NewInterface("e"), a2, mask); err != nil {
		b.Fatal(err)
	}
	stop := func() { s1.Close(); s2.Close(); seg.Close() }
	return il.New(s1, cfg), il.New(s2, cfg), a2, stop
}

func benchILRetransmit(b *testing.B, loss float64, blind bool) {
	p1, p2, a2, stop := lossyILWorld(b, loss, il.Config{BlindRetransmit: blind})
	defer stop()
	lc, _ := p2.NewConn()
	if err := lc.Announce("17008"); err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	go func() {
		nc, err := lc.Listen()
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		for {
			n, err := nc.Read(buf)
			if n > 0 {
				if _, werr := nc.Write(buf[:1]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect(ip.HostPort(a2, 17008)); err != nil {
		b.Fatal(err)
	}
	defer dc.Close()
	payload := make([]byte, 1024)
	ack := make([]byte, 1)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := dc.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(dc, ack); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	retrans := p1.Retransmits.Load() + p2.Retransmits.Load()
	sent := p1.MsgsSent.Load() + p2.MsgsSent.Load()
	b.ReportMetric(float64(retrans)/float64(b.N), "retrans/op")
	b.ReportMetric(float64(retrans)/float64(sent)*100, "retrans-%")
}

func BenchmarkILRetransmitQuery0pc(b *testing.B)  { benchILRetransmit(b, 0.0, false) }
func BenchmarkILRetransmitQuery5pc(b *testing.B)  { benchILRetransmit(b, 0.05, false) }
func BenchmarkILRetransmitQuery15pc(b *testing.B) { benchILRetransmit(b, 0.15, false) }
func BenchmarkILRetransmitBlind0pc(b *testing.B)  { benchILRetransmit(b, 0.0, true) }
func BenchmarkILRetransmitBlind5pc(b *testing.B)  { benchILRetransmit(b, 0.05, true) }
func BenchmarkILRetransmitBlind15pc(b *testing.B) { benchILRetransmit(b, 0.15, true) }

// --- Ablation: adaptive vs fixed timeouts (§3) ---

func benchILTimeout(b *testing.B, latency time.Duration, cfg il.Config) {
	seg := ether.NewSegment("e0", ether.Profile{Latency: latency, Loss: 0.05, Seed: 7, Bandwidth: 1 << 26})
	defer seg.Close()
	s1, s2 := ip.NewStack(), ip.NewStack()
	defer s1.Close()
	defer s2.Close()
	a1 := ip.Addr{10, 0, 0, 1}
	a2 := ip.Addr{10, 0, 0, 2}
	mask := ip.Addr{255, 255, 255, 0}
	s1.Bind(seg.NewInterface("e"), a1, mask)
	s2.Bind(seg.NewInterface("e"), a2, mask)
	p1, p2 := il.New(s1, cfg), il.New(s2, cfg)
	lc, _ := p2.NewConn()
	if err := lc.Announce("17008"); err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	go func() {
		nc, err := lc.Listen()
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		for {
			n, err := nc.Read(buf)
			if n > 0 {
				nc.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect(ip.HostPort(a2, 17008)); err != nil {
		b.Fatal(err)
	}
	defer dc.Close()
	buf := make([]byte, 64)
	b.ResetTimer()
	for b.Loop() {
		if _, err := dc.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(dc, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	spurious := p1.Retransmits.Load() + p2.Retransmits.Load() +
		p1.QueriesSent.Load() + p2.QueriesSent.Load()
	b.ReportMetric(float64(spurious)/float64(b.N), "recovery-msgs/op")
}

// Fast LAN: adaptive timers converge to the real RTT; a fixed timer
// tuned for a WAN wastes a long wait on every loss.
func BenchmarkILTimeoutAdaptiveLAN(b *testing.B) {
	benchILTimeout(b, 200*time.Microsecond, il.Config{})
}
func BenchmarkILTimeoutFixedSlowLAN(b *testing.B) {
	benchILTimeout(b, 200*time.Microsecond, il.Config{FixedRTO: 500 * time.Millisecond})
}

// Slow WAN: a fixed timer tuned for a LAN retransmits spuriously.
func BenchmarkILTimeoutAdaptiveWAN(b *testing.B) {
	benchILTimeout(b, 20*time.Millisecond, il.Config{})
}
func BenchmarkILTimeoutFixedFastWAN(b *testing.B) {
	benchILTimeout(b, 20*time.Millisecond, il.Config{FixedRTO: 15 * time.Millisecond})
}

// --- Ablation: the IL window size (§3) ---
//
// "A small outstanding message window prevents too many incoming
// messages from being buffered." The window must still cover the
// path's bandwidth-delay product: on a latency-bearing medium, window
// 1 serializes every message on the RTT, while the kernel's 20 keeps
// the pipe full.

func benchILWindow(b *testing.B, window uint32) {
	seg := ether.NewSegment("e0", ether.Profile{Latency: 2 * time.Millisecond, Bandwidth: 1 << 26})
	defer seg.Close()
	s1, s2 := ip.NewStack(), ip.NewStack()
	defer s1.Close()
	defer s2.Close()
	mask := ip.Addr{255, 255, 255, 0}
	s1.Bind(seg.NewInterface("e"), ip.Addr{10, 0, 0, 1}, mask)
	s2.Bind(seg.NewInterface("e"), ip.Addr{10, 0, 0, 2}, mask)
	cfg := il.Config{Window: window}
	p1, p2 := il.New(s1, cfg), il.New(s2, cfg)
	lc, _ := p2.NewConn()
	if err := lc.Announce("17008"); err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	got := make(chan int, 1024)
	go func() {
		nc, err := lc.Listen()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := nc.Read(buf)
			if n > 0 {
				got <- n
			}
			if err != nil {
				close(got)
				return
			}
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect("10.0.0.2!17008"); err != nil {
		b.Fatal(err)
	}
	defer dc.Close()
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	go func() {
		for range b.N {
			if _, err := dc.Write(payload); err != nil {
				return
			}
		}
	}()
	for range b.N {
		if _, ok := <-got; !ok {
			b.Fatal("receiver died")
		}
	}
}

func BenchmarkILWindow1(b *testing.B)  { benchILWindow(b, 1) }
func BenchmarkILWindow4(b *testing.B)  { benchILWindow(b, 4) }
func BenchmarkILWindow20(b *testing.B) { benchILWindow(b, 20) }

// --- 9P mounts: IL's native delimiters vs TCP's marshaling (§2.1),
// and the pipelined mount driver's sliding window ---

// mount9PBench boots a world, writes a payload-sized file on bootes,
// imports bootes on helix with windowed transfers opted in (a plain
// file tree) at the given window (0 = default, 1 = the serial
// RPC-per-fragment driver), and returns an open fd for the file.
func mount9PBench(b *testing.B, dest string, profiles core.PaperProfiles, size, window int) *ns.FD {
	b.Helper()
	w, err := core.PaperWorld(profiles)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	payload := make([]byte, size)
	bootes.Root.WriteFile("lib/bench", payload, 0664)
	cfg := mnt.Config{Client: ninep.ClientConfig{WindowedTransfers: true, Window: window}}
	if _, err := helix.ImportConfig(dest, "/", "/n/b", ns.MREPL, cfg); err != nil {
		b.Fatal(err)
	}
	fd, err := helix.NS.Open("/n/b/lib/bench", vfs.ORDWR)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fd.Close() })
	return fd
}

// bench9PRead reads a 64K file in one ReadAt per iteration: eight
// MaxFData fragments, which the pipelined driver keeps in flight
// concurrently and the serial driver round-trips one at a time.
func bench9PRead(b *testing.B, dest string, profiles core.PaperProfiles, window int) {
	const size = 64 * 1024
	fd := mount9PBench(b, dest, profiles, size, window)
	buf := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for b.Loop() {
		if n, err := fd.ReadAt(buf, 0); err != nil || n != size {
			b.Fatalf("read %d, %v", n, err)
		}
	}
}

func Benchmark9PReadOverIL(b *testing.B) { bench9PRead(b, "il!bootes!9fs", core.FastProfiles(), 0) }
func Benchmark9PReadOverILSerial(b *testing.B) {
	bench9PRead(b, "il!bootes!9fs", core.FastProfiles(), 1)
}
func Benchmark9PReadOverTCP(b *testing.B) { bench9PRead(b, "tcp!bootes!9fs", core.FastProfiles(), 0) }
func Benchmark9PReadOverTCPSerial(b *testing.B) {
	bench9PRead(b, "tcp!bootes!9fs", core.FastProfiles(), 1)
}

// The WAN profile is where the window matters most: every fragment
// round trip costs ~10 ms, so the serial driver pays 8 RTTs per 64K
// read and the windowed driver roughly one.
func Benchmark9PReadOverILWAN(b *testing.B) { bench9PRead(b, "il!bootes!9fs", core.WANProfiles(), 0) }
func Benchmark9PReadOverILWANSerial(b *testing.B) {
	bench9PRead(b, "il!bootes!9fs", core.WANProfiles(), 1)
}

// Benchmark9PReadSmall pins the single-RPC invariant's cost: a 4K read
// is at most MaxFData, must map to exactly one Tread, and must not
// regress against the serial driver (it takes the identical path).
func Benchmark9PReadSmallOverIL(b *testing.B) {
	const size = 4096
	fd := mount9PBench(b, "il!bootes!9fs", core.FastProfiles(), size, 0)
	buf := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for b.Loop() {
		if _, err := fd.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// bench9PWrite writes 64K in one WriteAt per iteration: eight Twrite
// fragments, windowed versus serial.
func bench9PWrite(b *testing.B, window int) {
	const size = 64 * 1024
	fd := mount9PBench(b, "il!bootes!9fs", core.FastProfiles(), size, window)
	payload := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for b.Loop() {
		if n, err := fd.WriteAt(payload, 0); err != nil || n != size {
			b.Fatalf("write %d, %v", n, err)
		}
	}
}

func Benchmark9PWriteOverIL(b *testing.B)       { bench9PWrite(b, 0) }
func Benchmark9PWriteOverILSerial(b *testing.B) { bench9PWrite(b, 1) }

// Benchmark9PRelayThroughGateway measures the §6.1 relay: the
// Datakit-only terminal reads a file on bootes through helix — the
// mount crosses the import (dk, 9P hop 1), helix's kernel relays to
// its own mount of bootes (il, 9P hop 2). With the pipelined mount
// driver on both imports, a 64K read keeps a window of Treads in
// flight across both hops at once.
func bench9PRelay(b *testing.B, window int) {
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	gnot := w.Machine("philw-gnot")
	const size = 64 * 1024
	payload := make([]byte, size)
	bootes.Root.WriteFile("lib/bench", payload, 0664)
	// helix mounts bootes; gnot imports helix's whole tree (which
	// includes that mount) over the Datakit.
	cfg := mnt.Config{Client: ninep.ClientConfig{WindowedTransfers: true, Window: window}}
	if _, err := helix.ImportConfig("il!bootes!9fs", "/", "/n/bootes", ns.MREPL, cfg); err != nil {
		b.Fatal(err)
	}
	if _, err := gnot.ImportConfig("dk!nj/astro/helix!exportfs", "/", "/n/helix", ns.MREPL, cfg); err != nil {
		b.Fatal(err)
	}
	fd, err := gnot.NS.Open("/n/helix/n/bootes/lib/bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer fd.Close()
	buf := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for b.Loop() {
		if n, err := fd.ReadAt(buf, 0); err != nil || n != size {
			b.Fatalf("read %d, %v", n, err)
		}
	}
}

func Benchmark9PRelayThroughGateway(b *testing.B)       { bench9PRelay(b, 0) }
func Benchmark9PRelayThroughGatewaySerial(b *testing.B) { bench9PRelay(b, 1) }

// Benchmark9PRelayThroughGateway1kClients measures the multi-tenant
// gateway itself: one exportfs.Server, a thousand mounted tenants
// taking turns reading a shared 8K file, plus one hot tenant
// flooding windowed reads the whole time. The reported extras are the
// acceptance gauges — hit-rate is the shared cache's fraction over
// the run, and p99/p50 is the ratio across the thousand tenants'
// mean request latencies, the round-robin dispatcher's fairness
// under a hot neighbor.
func Benchmark9PRelayThroughGateway1kClients(b *testing.B) {
	const nclients = 1000
	rfs := ramfs.New("gw")
	payload := make([]byte, ninep.MaxFData)
	if err := rfs.WriteFile("lib/shared", payload, 0664); err != nil {
		b.Fatal(err)
	}
	srv := exportfs.NewServer(ns.New("gw", rfs.Root()), exportfs.Config{})
	serve := func() ninep.MsgConn {
		cend, send := ninep.NewPipe()
		go srv.ServeConn(send)
		return cend
	}
	openShared := func(uname string) (vfs.Handle, *ninep.Client) {
		root, cl, err := mnt.MountConfig(serve(), uname, "", mnt.FileConfig())
		if err != nil {
			b.Fatal(err)
		}
		n, err := root.Walk("lib")
		if err == nil {
			n, err = n.Walk("shared")
		}
		if err != nil {
			b.Fatal(err)
		}
		h, err := n.Open(vfs.OREAD)
		if err != nil {
			b.Fatal(err)
		}
		return h, cl
	}

	handles := make([]vfs.Handle, nclients)
	for i := range handles {
		h, cl := openShared(fmt.Sprintf("c%04d", i))
		handles[i] = h
		b.Cleanup(func() { cl.Close() })
	}

	// The hot tenant floods for the whole timed window.
	hotH, hotCl := openShared("hot")
	b.Cleanup(func() { hotCl.Close() })
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, ninep.MaxFData)
		for {
			select {
			case <-stop:
				return
			default:
				hotH.Read(buf, 0)
			}
		}
	}()

	buf := make([]byte, ninep.MaxFData)
	b.SetBytes(ninep.MaxFData)
	b.ResetTimer()
	i := 0
	for b.Loop() {
		h := handles[i%nclients]
		if n, err := h.Read(buf, 0); err != nil || n != ninep.MaxFData {
			b.Fatalf("read %d, %v", n, err)
		}
		i++
	}
	b.StopTimer()
	close(stop)
	<-done

	// Fairness across tenants: the distribution of per-connection
	// mean latencies, hot tenant excluded.
	means := make([]float64, 0, nclients)
	for _, cs := range srv.Ninep().ConnStats() {
		if cs.Uname == "hot" || cs.Lat.Count == 0 {
			continue
		}
		means = append(means, float64(cs.Lat.SumNs)/float64(cs.Lat.Count))
	}
	sort.Float64s(means)
	if len(means) > 0 {
		p50 := means[len(means)/2]
		p99 := means[len(means)*99/100]
		if p50 > 0 {
			b.ReportMetric(p99/p50, "p99/p50")
		}
	}
	hits := float64(srv.Cache().Hits.Load())
	misses := float64(srv.Cache().Misses.Load())
	if hits+misses > 0 {
		b.ReportMetric(hits/(hits+misses), "hit-rate")
	}
}

// --- csquery and dial costs (the §4–§5 machinery) ---

func BenchmarkCsTranslate(b *testing.B) {
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	helix := w.Machine("helix")
	b.ResetTimer()
	for b.Loop() {
		if _, err := helix.CS.Translate("net!helix!9fs"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDialEchoIL(b *testing.B) {
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	musca := w.Machine("musca")
	b.ResetTimer()
	for b.Loop() {
		conn, err := dialer.Dial(musca.NS, "il!helix!echo")
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// sanity: the benchmarks' world must be healthy under `go test` too.
func TestBenchWorldBoots(t *testing.T) {
	w, paths, err := table1.BuildWorld(table1.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(paths) != 4 {
		t.Fatalf("expected 4 table-1 paths, got %d", len(paths))
	}
	names := map[string]bool{}
	for _, p := range paths {
		names[p.Name] = true
	}
	for _, want := range []string{"pipes", "IL/ether", "URP/Datakit", "Cyclone"} {
		if !names[want] {
			t.Errorf("missing path %q", want)
		}
	}
	_ = fmt.Sprint()
}

// --- Line disciplines on the WAN (§2.4): goodput of a small-message
// stream with and without the batch and compress modules pushed ---

// benchWANGoodput boots the WAN world (10 ms RTT on the office ether),
// runs a sink service on bootes, and streams msgs messages of sz bytes
// from helix per iteration; the sink acknowledges each burst, so an
// iteration covers the full drain — including the batch module's tail
// flush. mods (nil for the baseline) are pushed on both ends through
// the production path: the listener arms the accepted conversation,
// the dialer writes the same specs to its ctl file. compressible
// selects text-shaped payloads; bulk runs use incompressible bytes so
// the compress module's passthrough guard is what is measured.
func benchWANGoodput(b *testing.B, msgs, sz int, compressible bool, mods ...string) {
	w, err := core.PaperWorld(core.WANProfiles())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Close)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	stop, err := bootes.Serve("il!*!17090", func(_ *ns.Namespace, conn *dialer.Conn) {
		buf := make([]byte, 64*1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if n == 4 && string(buf[:n]) == "done" {
				if _, err := conn.Write([]byte("ok")); err != nil {
					return
				}
			}
		}
	}, mods...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	conn, err := dialer.Dial(helix.NS, "il!bootes!17090")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	if err := conn.Push(mods...); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, sz)
	if compressible {
		// Text-shaped: the mix of repetition and drift real RPC and
		// log traffic has.
		copy(payload, fmt.Sprintf("wan goodput message %08d: status ok, queue drained, next poll soon; ", sz))
		for i := len("wan goodput message 00000000: status ok, queue drained, next poll soon; "); i < sz; i++ {
			payload[i] = byte('a' + i%17)
		}
	} else {
		r := uint64(0x9e3779b97f4a7c15)
		for i := range payload {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			payload[i] = byte(r)
		}
	}
	ack := make([]byte, 16)
	b.SetBytes(int64(msgs * sz))
	b.ResetTimer()
	for b.Loop() {
		for i := 0; i < msgs; i++ {
			if _, err := conn.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := conn.Write([]byte("done")); err != nil {
			b.Fatal(err)
		}
		if n, err := conn.Read(ack); err != nil || string(ack[:n]) != "ok" {
			b.Fatalf("ack %q, %v", ack[:n], err)
		}
	}
}

// Small messages are where the disciplines earn their keep: 64-byte
// writes each cost a full IL/IP/ether header and a paced wire slot
// undressed; batched they share one frame per 2 KB window.
func BenchmarkWANSmallMsgGoodput(b *testing.B) {
	benchWANGoodput(b, 512, 64, true)
}
func BenchmarkWANSmallMsgGoodputBatch(b *testing.B) {
	benchWANGoodput(b, 512, 64, true, "batch 2048 2ms")
}
func BenchmarkWANSmallMsgGoodputBatchCompress(b *testing.B) {
	benchWANGoodput(b, 512, 64, true, "compress", "batch 2048 2ms")
}

// Bulk writes ride the batch fastpath (a block over the cap passes
// straight through) and incompressible payloads take the compress
// module's stored-frame exit: the disciplines must not tax the case
// they cannot help.
func BenchmarkWANBulkGoodput(b *testing.B) {
	benchWANGoodput(b, 16, 4096, false)
}
func BenchmarkWANBulkGoodputBatch(b *testing.B) {
	benchWANGoodput(b, 16, 4096, false, "batch 2048 2ms")
}
func BenchmarkWANBulkGoodputBatchCompress(b *testing.B) {
	benchWANGoodput(b, 16, 4096, false, "compress", "batch 2048 2ms")
}
