#!/bin/sh
# check.sh — the repo's tier-1 gate: formatting, vet, build, the full
# test suite under the race detector, and netvet (the in-tree
# concurrency and resource-lifecycle analyzer). Everything must pass
# for a PR to land.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== netvet ./..."
go run ./cmd/netvet ./...

echo "check.sh: all gates passed"
