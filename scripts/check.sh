#!/bin/sh
# check.sh — the repo's tier-1 gate: formatting, vet, build, the full
# test suite under the race detector, netvet (the in-tree concurrency
# and resource-lifecycle analyzer), a fixed-seed chaos pass of the
# protocol torture harness, and short fuzz smokes over the wire-facing
# parsers. Everything must pass for a PR to land.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== netvet ./..."
go run ./cmd/netvet ./...

echo "== block discipline: AllocsPerRun gates (race off)"
# The race detector's instrumentation allocates, so these self-skip
# under -race above and run here without it: a copy or pool bypass
# creeping back into the hot paths fails the gate.
go test -run '^TestAllocs' -count=1 ./internal/streams ./internal/ninep ./internal/cs

echo "== chaos: real-clock torture pass (fixed seed)"
go run ./cmd/netsim -chaos -seed 1 -msgs 40

echo "== chaos: 32-seed virtual-time sweep"
# The discrete-event clock makes a whole seed sweep affordable: every
# protocol crosses the impairment cocktail under 32 different
# schedules in wall-clock seconds. A failure ddmin-shrinks to its
# minimal scenario exactly as in the real-clock pass.
go run ./cmd/netsim -chaos -virtual -seed 1 -seeds 32 -msgs 40

echo "== chaos: line-discipline sweep (batch+compress pushed both ends)"
# The same matrix with the §2.4 modules dressed on every conversation:
# the disciplines must survive loss, duplication, reordering and
# corruption on all five protocols without breaking the byte streams
# they carry. (Same-seed byte-determinism of the dressed runs is pinned
# separately by TestChaosDeterminismModules under go test above.)
go run ./cmd/netsim -chaos -virtual -seed 1 -seeds 8 -msgs 40 -mods 'compress,batch 1024 2ms'

echo "== stats conformance: /net files vs wire ground truth"
# The conformance suite balances every /net/*/stats file against the
# impairment engine's own books (drops, dups, corrupted emissions) —
# the observability layer must never disagree with the wire.
go test -run '^TestStatsConformance' -count=1 ./internal/torture

echo "== obs coverage floor (>= 80%)"
cov=$(go test -cover ./internal/obs | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 80 ]; then
    echo "internal/obs coverage ${cov:-unknown}% < 80%" >&2
    exit 1
fi
echo "internal/obs coverage ${cov}%"

echo "== analysis coverage floor (>= 80%)"
# The analyzer is itself load-bearing (check.sh trusts its verdicts),
# so its CFG builder, solver, and checks are held to the same floor.
cov=$(go test -cover ./internal/analysis | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 80 ]; then
    echo "internal/analysis coverage ${cov:-unknown}% < 80%" >&2
    exit 1
fi
echo "internal/analysis coverage ${cov}%"

echo "== exportfs coverage floor (>= 80%)"
# The multi-tenant gateway is the serving stack's front door; its
# attach/serve/stats plumbing stays above the same floor.
cov=$(go test -cover ./internal/exportfs | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 80 ]; then
    echo "internal/exportfs coverage ${cov:-unknown}% < 80%" >&2
    exit 1
fi
echo "internal/exportfs coverage ${cov}%"

echo "== ccache coverage floor (>= 80%)"
# The shared block cache sits on the gateway's hot path and hands out
# refcounted memory; every branch of its invalidation and refcount
# logic is load-bearing.
cov=$(go test -cover ./internal/ccache | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 80 ]; then
    echo "internal/ccache coverage ${cov:-unknown}% < 80%" >&2
    exit 1
fi
echo "internal/ccache coverage ${cov}%"

echo "== streams coverage floor (>= 85%)"
# The line disciplines rewrite every byte a dressed conversation
# carries; the stream plumbing, both modules, and their wire parsers
# hold the higher floor.
cov=$(go test -cover ./internal/streams | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 85 ]; then
    echo "internal/streams coverage ${cov:-unknown}% < 85%" >&2
    exit 1
fi
echo "internal/streams coverage ${cov}%"

echo "== cs coverage floor (>= 85%)"
# The connection server answers every symbolic dial in the system; its
# sharded cache, singleflight, and stats plumbing carry a higher floor
# than the rest because a silent miscount there skews every experiment.
cov=$(go test -cover ./internal/cs | awk '{ for (i = 1; i <= NF; i++) if ($i == "coverage:") print $(i+1) }' | tr -d '%')
if [ -z "$cov" ] || [ "$(printf '%.0f' "$cov")" -lt 85 ]; then
    echo "internal/cs coverage ${cov:-unknown}% < 85%" >&2
    exit 1
fi
echo "internal/cs coverage ${cov}%"

echo "== gateway storm smoke (60 tenants on the virtual clock)"
# A fixed-seed run of the multi-tenant import storm: one exporter,
# sixty machines importing through the shared gateway server and its
# cache, on the discrete-event clock so the pass is deterministic.
go run ./cmd/netsim -virtual -gateway -machines 60 -simtime 10s -seed 1

echo "== registry storm smoke (determinism of the t=0 dial storm)"
# Two same-seed runs of the no-stagger dial storm must agree byte for
# byte — calls, retries, CS books, latency quantiles — once the
# wall-clock tail of the report is stripped.
run1=$(go run ./cmd/netsim -virtual -registry -machines 60 -simtime 4s -seed 1 | sed 's/ in [^ ]* wall$//')
run2=$(go run ./cmd/netsim -virtual -registry -machines 60 -simtime 4s -seed 1 | sed 's/ in [^ ]* wall$//')
if [ "$run1" != "$run2" ]; then
    echo "registry storm diverged across same-seed runs:" >&2
    echo "  $run1" >&2
    echo "  $run2" >&2
    exit 1
fi
echo "$run1"

echo "== bench smoke (benchmarks still run)"
sh scripts/bench.sh -smoke

echo "== fuzz smoke (10s per parser)"
# -fuzzminimizetime 5x: a crasher found during a smoke should minimize
# in a handful of runs, not stall the gate for the default 60s.
go test -run '^$' -fuzz '^FuzzParseHeader$' -fuzztime 10s -fuzzminimizetime 5x ./internal/il
go test -run '^$' -fuzz '^Fuzz9PMessage$' -fuzztime 10s -fuzzminimizetime 5x ./internal/ninep
go test -run '^$' -fuzz '^FuzzCompressFrame$' -fuzztime 10s -fuzzminimizetime 5x ./internal/streams
go test -run '^$' -fuzz '^FuzzBatchReassembly$' -fuzztime 10s -fuzzminimizetime 5x ./internal/streams

echo "check.sh: all gates passed"
