#!/bin/sh
# bench.sh — run the repo's headline benchmarks and record them as
# BENCH_PR10.json: one object per benchmark with name, ns/op, B/op and
# allocs/op, so a future PR can diff performance against this one
# mechanically. Usage:
#
#   scripts/bench.sh              # full run (benchtime 2s), writes BENCH_PR10.json
#   scripts/bench.sh -smoke       # quick pass (benchtime 100ms), writes nothing,
#                                 # fails only if a benchmark fails to run
set -eu

cd "$(dirname "$0")/.."

benchtime=2s
out=BENCH_PR10.json
smoke=0
if [ "${1:-}" = "-smoke" ]; then
    benchtime=100ms
    out=""
    smoke=1
fi

# pkg:Benchmark pairs. The root package carries the end-to-end figures
# — including the WAN goodput rows for the line disciplines (baseline
# vs batch vs batch+compress, small messages and bulk); internal/cs the
# connection-server cache (new vs seed discipline); internal/ndb the
# §4.1 hash-vs-scan experiment at 1× and 10× scale.
benches='
.:BenchmarkTable1LatencyILEther
.:BenchmarkTable1LatencyURPDatakit
.:BenchmarkTable1ThroughputURPDatakit
.:Benchmark9PReadOverIL
.:Benchmark9PReadOverILSerial
.:Benchmark9PReadOverILWAN
.:Benchmark9PReadOverILWANSerial
.:Benchmark9PReadSmallOverIL
.:Benchmark9PWriteOverIL
.:Benchmark9PRelayThroughGateway
.:Benchmark9PRelayThroughGateway1kClients
.:BenchmarkWANSmallMsgGoodput
.:BenchmarkWANSmallMsgGoodputBatch
.:BenchmarkWANSmallMsgGoodputBatchCompress
.:BenchmarkWANBulkGoodput
.:BenchmarkWANBulkGoodputBatch
.:BenchmarkWANBulkGoodputBatchCompress
internal/cs:BenchmarkCSTranslateHot
internal/cs:BenchmarkCSTranslateHotSeed
internal/cs:BenchmarkCSTranslateHotSet512
internal/cs:BenchmarkCSTranslateHotSet512Seed
internal/cs:BenchmarkCSTranslateMissSingleflight
internal/cs:BenchmarkCSTranslateMixed
internal/ndb:BenchmarkNdbLookupHashed
internal/ndb:BenchmarkNdbLookupScan
internal/ndb:BenchmarkNdbLookupStaleHash
internal/ndb:BenchmarkNdbLookupHashed10x
internal/ndb:BenchmarkNdbLookupScan10x
internal/ndb:BenchmarkNdbLookupStaleHash10x
internal/ndb:BenchmarkNdbParse430kLines
internal/ndb:BenchmarkNdbBuildHash10x
'

pkgs=$(echo "$benches" | sed -n 's/^\(.*\):.*/\1/p' | sort -u)

if [ "$smoke" = 1 ]; then
    # One process per package is fine for the smoke pass: it only
    # checks that every benchmark still runs.
    for pkg in $pkgs; do
        pattern=$(echo "$benches" | sed -n "s|^$pkg:||p" | sed 's/$/$/' | paste -sd'|' -)
        go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem "./$pkg"
    done
    echo "bench.sh: smoke pass ok"
    exit 0
fi

# For the recorded run, each benchmark gets a fresh process: a long
# shared process lets earlier benchmarks perturb later ones (warm
# pools, accumulated GC state), which showed up as ~15% swings on the
# later entries. Build each test binary once, then run them one at a
# time.
raw=""
for pkg in $pkgs; do
    bin="/tmp/bench_repro_$(echo "$pkg" | tr './' '__').test"
    go test -c -o "$bin" "./$pkg"
    for name in $(echo "$benches" | sed -n "s|^$pkg:||p"); do
        line=$("$bin" -test.run '^$' -test.bench "${name}\$" \
            -test.benchtime "$benchtime" -test.benchmem | grep '^Benchmark')
        echo "$line"
        raw="$raw$line
"
    done
    rm -f "$bin"
done

# go test -bench lines look like:
#   BenchmarkName-8   123  4567 ns/op  89 B/op  10 allocs/op
# (the MB/s column, when present, sits between ns/op and B/op).
echo "$raw" | awk '
BEGIN { printf "[\n"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs
}
END { printf "\n]\n" }
' > "$out"

echo "bench.sh: wrote $out"
