// Package datakit simulates Fraser's Datakit (§1, §2.3): a
// virtual-circuit network whose stations carry hierarchical names like
// "nj/astro/helix" and whose calls name a destination and service
// ("nj/astro/helix!9fs"). Circuit setup goes through the switch; data
// then flows over the circuit under URP, giving the reliable delimited
// transport that Plan 9 ran 9P over between Datakit machines.
//
// The medium profile applies per circuit leg, so the cell-oriented
// slowness of real Datakit (and hence the URP/Datakit row of Table 1)
// is reproduced by configuring a low bandwidth and small MTU.
package datakit

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/medium"
	"repro/internal/obs"
	"repro/internal/urp"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// Errors.
var (
	ErrNoHost    = errors.New("datakit: no such host")
	ErrNoService = vfs.ErrConnRef
	ErrNameTaken = errors.New("datakit: host name taken")
)

// Switch is the Datakit switch: the name-to-station directory plus
// circuit setup.
type Switch struct {
	profile medium.Profile

	mu    sync.Mutex
	hosts map[string]*Host
}

// NewSwitch creates a switch whose circuits have the given profile.
func NewSwitch(p medium.Profile) *Switch {
	return &Switch{profile: p, hosts: make(map[string]*Host)}
}

// NewHost attaches a station under a hierarchical name.
func (sw *Switch) NewHost(name string) (*Host, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, taken := sw.hosts[name]; taken {
		return nil, ErrNameTaken
	}
	h := &Host{sw: sw, name: name, listeners: make(map[string]*vclock.Mailbox[*incomingCall])}
	sw.hosts[name] = h
	return h, nil
}

// Close tears the switch down.
func (sw *Switch) Close() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.hosts = make(map[string]*Host)
}

// dial sets up a circuit from caller to the named host and service.
func (sw *Switch) dial(caller *Host, dest, service string) (*medium.Duplex, error) {
	sw.mu.Lock()
	h := sw.hosts[dest]
	sw.mu.Unlock()
	if h == nil {
		return nil, ErrNoHost
	}
	a, b := medium.NewDuplex(sw.profile)
	call := &incomingCall{wire: b, remote: caller.name, service: service}
	// The enqueue happens under the host lock so a concurrent
	// listener close (which also holds it) cannot race the send.
	h.mu.Lock()
	ch := h.listeners[service]
	if ch == nil {
		// The announce-all listener takes services not explicitly
		// announced (§5.2).
		ch = h.listeners["*"]
	}
	delivered := false
	if ch != nil {
		// TrySend refuses on a full backlog (or a closed listener).
		delivered = ch.TrySend(call)
	}
	h.mu.Unlock()
	if !delivered {
		a.Close()
		b.Close()
		return nil, ErrNoService
	}
	return a, nil
}

// Host is one station on the switch.
type Host struct {
	sw   *Switch
	name string

	mu        sync.Mutex
	listeners map[string]*vclock.Mailbox[*incomingCall]
}

// Name returns the station's Datakit name.
func (h *Host) Name() string { return h.name }

type incomingCall struct {
	wire    *medium.Duplex
	remote  string
	service string
}

// crcTable drives the CRC-16/CCITT the Datakit hardware framed cells
// with. crcTab8 extends it to slicing-by-8: crcTab8[k][v] is the CRC
// of byte v followed by k zero bytes, so eight input bytes fold into
// the register with eight independent table lookups instead of eight
// serially dependent ones — the byte-at-a-time loop's carry chain was
// the single hottest path under the URP throughput benchmarks.
var (
	crcTable [256]uint16
	crcTab8  [8][256]uint16
)

func init() {
	for i := range crcTable {
		crc := uint16(i) << 8
		for range 8 {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
	crcTab8[0] = crcTable
	for k := 1; k < 8; k++ {
		for v := range crcTab8[k] {
			c := crcTab8[k-1][v]
			crcTab8[k][v] = c<<8 ^ crcTable[byte(c>>8)]
		}
	}
}

func crc16(p []byte) uint16 {
	var crc uint16
	for len(p) >= 8 {
		crc = crcTab8[7][p[0]^byte(crc>>8)] ^
			crcTab8[6][p[1]^byte(crc)] ^
			crcTab8[5][p[2]] ^
			crcTab8[4][p[3]] ^
			crcTab8[3][p[4]] ^
			crcTab8[2][p[5]] ^
			crcTab8[1][p[6]] ^
			crcTab8[0][p[7]]
		p = p[8:]
	}
	for _, b := range p {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// fcsLen is the per-cell frame check sequence the hardware appends.
const fcsLen = 2

// duplexWire adapts a medium.Duplex to urp.Wire, modeling the Datakit
// hardware framing: every cell carries a CRC-16 FCS. A cell damaged
// in flight fails the check and is discarded as if lost — URP never
// sees corrupt data (its cells carry no checksum of their own; the
// real hardware made the same promise), and it recovers the gap with
// its REJ/ENQ machinery.
type duplexWire struct {
	d    *medium.Duplex
	errs *atomic.Int64
}

// SendCell frames the cell in place: URP hands over a pool-backed cell
// with capacity slack, so appending the FCS reuses the same buffer and
// the framed cell goes to the medium with no wire copy.
func (w duplexWire) SendCell(p []byte) error {
	fcs := crc16(p)
	cell := append(p, byte(fcs>>8), byte(fcs))
	return w.d.SendOwned(cell)
}

func (w duplexWire) RecvCell() ([]byte, error) {
	for {
		cell, err := w.d.Recv()
		if err != nil {
			return nil, err
		}
		n := len(cell) - fcsLen
		if n < 0 || crc16(cell[:n]) != uint16(cell[n])<<8|uint16(cell[n+1]) {
			if w.errs != nil {
				w.errs.Add(1)
			}
			continue
		}
		return cell[:n], nil
	}
}

func (w duplexWire) Close() error {
	w.d.Close()
	return nil
}

// Proto is the protocol device ("dk") for a host.
type Proto struct {
	host  *Host
	Stats urp.Stats
	// FCSErrs counts cells the hardware discarded as damaged.
	FCSErrs atomic.Int64

	stats *obs.Group
}

var _ xport.Proto = (*Proto)(nil)

// NewProto wraps a host as an xport protocol.
func NewProto(h *Host) *Proto {
	p := &Proto{host: h}
	p.stats = new(obs.Group).
		AddAtomic("blocks", &p.Stats.Blocks).
		AddAtomic("retransmits", &p.Stats.Retransmits).
		AddAtomic("rejects", &p.Stats.Rejects).
		AddAtomic("enquiries", &p.Stats.Enquiries).
		AddAtomic("fcs-errs", &p.FCSErrs)
	return p
}

// StatsGroup exposes the URP engine counters; the netdev tree renders
// it into /net/dk/stats after the per-conversation lines.
func (p *Proto) StatsGroup() *obs.Group { return p.stats }

// Clock exposes the switch's medium clock so line disciplines pushed
// on Datakit conversations time their flush windows in the same
// (possibly virtual) time domain as the circuits underneath.
func (p *Proto) Clock() vclock.Clock { return vclock.Or(p.host.sw.profile.Clock) }

// Name implements xport.Proto.
func (p *Proto) Name() string { return "dk" }

// NewConn implements xport.Proto.
func (p *Proto) NewConn() (xport.Conn, error) {
	return &Conn{proto: p}, nil
}

// Conn is a Datakit conversation: a URP engine over a circuit.
type Conn struct {
	proto *Proto

	mu       sync.Mutex
	urp      *urp.Conn
	wire     *medium.Duplex
	local    string
	remote   string
	service  string
	listenCh *vclock.Mailbox[*incomingCall]
	state    string
}

// WireCounts reports the circuit medium's impairment ground truth —
// what the wire actually did to the cells — for reconciling the stats
// files against it. ok is false before the circuit exists.
func (c *Conn) WireCounts() (counts medium.Counts, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wire == nil {
		return medium.Counts{}, false
	}
	return c.wire.ImpairCounts(), true
}

var _ xport.Conn = (*Conn)(nil)
var _ obs.Tracer = (*Conn)(nil)

// Trace implements obs.Tracer by delegating to the URP engine's ring;
// before the circuit exists (no connect or accept yet) it is nil and
// the trace file reads empty.
func (c *Conn) Trace() *obs.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.urp == nil {
		return nil
	}
	return c.urp.Trace()
}

// Connect implements xport.Conn: addr is "nj/astro/helix!9fs".
func (c *Conn) Connect(addr string) error {
	dest, service, ok := strings.Cut(addr, "!")
	if !ok || dest == "" || service == "" {
		return xport.ErrBadAddress
	}
	// Dial without holding c.mu: dial takes Host.mu, and the lock
	// hierarchy is host before conversation (Announce holds Host.mu
	// while taking c.mu), so holding c.mu across the dial would
	// invert it.
	c.mu.Lock()
	if c.urp != nil || c.listenCh != nil {
		c.mu.Unlock()
		return xport.ErrConnected
	}
	c.mu.Unlock()
	wire, err := c.proto.host.sw.dial(c.proto.host, dest, service)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.urp != nil || c.listenCh != nil {
		// Lost the race to a concurrent Connect or Announce: tear the
		// fresh circuit down, the remote listener sees a hangup.
		wire.Close()
		return xport.ErrConnected
	}
	c.urp = urp.NewClock(duplexWire{wire, &c.proto.FCSErrs}, &c.proto.Stats, wire.Clock())
	c.wire = wire
	c.local = c.proto.host.name
	c.remote = addr
	c.service = service
	c.state = "Established"
	return nil
}

// Announce implements xport.Conn: addr is a service name, optionally
// "*!service".
func (c *Conn) Announce(addr string) error {
	service := addr
	if _, s, ok := strings.Cut(addr, "!"); ok {
		service = s
	}
	if service == "" {
		return xport.ErrBadAddress
	}
	h := c.proto.host
	h.mu.Lock()
	defer h.mu.Unlock()
	//netvet:ignore lock-across-send fixed hierarchy: host before conversation, never reversed
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.urp != nil || c.listenCh != nil {
		return xport.ErrConnected
	}
	if _, taken := h.listeners[service]; taken {
		return xport.ErrInUse
	}
	ch := vclock.NewMailbox[*incomingCall](h.sw.profile.Clock, 8)
	h.listeners[service] = ch
	c.listenCh = ch
	c.service = service
	c.local = h.name + "!" + service
	c.state = "Announced"
	return nil
}

// Listen implements xport.Conn.
func (c *Conn) Listen() (xport.Conn, error) {
	c.mu.Lock()
	ch := c.listenCh
	c.mu.Unlock()
	if ch == nil {
		return nil, xport.ErrNotAnnounced
	}
	call, ok := ch.Recv()
	if !ok {
		return nil, vfs.ErrHungup
	}
	nc := &Conn{
		proto:   c.proto,
		urp:     urp.NewClock(duplexWire{call.wire, &c.proto.FCSErrs}, &c.proto.Stats, call.wire.Clock()),
		wire:    call.wire,
		local:   c.proto.host.name + "!" + call.service,
		remote:  call.remote,
		service: call.service,
		state:   "Established",
	}
	return nc, nil
}

// Read implements xport.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	u := c.urp
	c.mu.Unlock()
	if u == nil {
		return 0, xport.ErrNotConnected
	}
	return u.Read(p)
}

// Write implements xport.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	u := c.urp
	c.mu.Unlock()
	if u == nil {
		return 0, xport.ErrNotConnected
	}
	return u.Write(p)
}

// LocalAddr implements xport.Conn.
func (c *Conn) LocalAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.local
}

// RemoteAddr implements xport.Conn.
func (c *Conn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// Status implements xport.Conn.
func (c *Conn) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.urp != nil && c.urp.Dead() {
		return "Hungup"
	}
	if c.state == "" {
		return "Closed"
	}
	return c.state
}

// Close implements xport.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	u := c.urp
	ch := c.listenCh
	service := c.service
	c.urp = nil
	c.listenCh = nil
	c.state = "Closed"
	c.mu.Unlock()
	if ch != nil {
		h := c.proto.host
		h.mu.Lock()
		if h.listeners[service] == ch {
			delete(h.listeners, service)
		}
		ch.Close() // under h.mu: no dial can be mid-send
		h.mu.Unlock()
	}
	if u != nil {
		return u.Close()
	}
	return nil
}
