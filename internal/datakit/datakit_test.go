package datakit

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/vfs"
	"repro/internal/xport"
)

func hosts(t *testing.T, p medium.Profile) (*Proto, *Proto) {
	t.Helper()
	sw := NewSwitch(p)
	t.Cleanup(sw.Close)
	h1, err := sw.NewHost("nj/astro/philw-gnot")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sw.NewHost("nj/astro/helix")
	if err != nil {
		t.Fatal(err)
	}
	return NewProto(h1), NewProto(h2)
}

func circuit(t *testing.T, p1, p2 *Proto, service string) (xport.Conn, xport.Conn) {
	t.Helper()
	lc, _ := p2.NewConn()
	if err := lc.Announce(service); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	acceptCh := make(chan xport.Conn, 1)
	go func() {
		nc, err := lc.Listen()
		if err == nil {
			acceptCh <- nc
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect("nj/astro/helix!" + service); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })
	select {
	case sc := <-acceptCh:
		t.Cleanup(func() { sc.Close() })
		return dc, sc
	case <-time.After(5 * time.Second):
		t.Fatal("call never arrived")
		return nil, nil
	}
}

func TestCallSetupAndEcho(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{})
	dc, sc := circuit(t, p1, p2, "9fs")
	dc.Write([]byte("over datakit"))
	buf := make([]byte, 256)
	n, err := sc.Read(buf)
	if err != nil || string(buf[:n]) != "over datakit" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	sc.Write([]byte("reply"))
	n, err = dc.Read(buf)
	if err != nil || string(buf[:n]) != "reply" {
		t.Fatalf("reply %q, %v", buf[:n], err)
	}
	if dc.RemoteAddr() != "nj/astro/helix!9fs" {
		t.Errorf("remote %q", dc.RemoteAddr())
	}
	if sc.RemoteAddr() != "nj/astro/philw-gnot" {
		t.Errorf("server's remote %q", sc.RemoteAddr())
	}
	if dc.Status() != "Established" {
		t.Errorf("status %q", dc.Status())
	}
}

func TestURPDelimitersPreserved(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{})
	dc, sc := circuit(t, p1, p2, "echo")
	dc.Write([]byte("one"))
	dc.Write([]byte("two two"))
	buf := make([]byte, 256)
	n, _ := sc.Read(buf)
	if string(buf[:n]) != "one" {
		t.Errorf("first message %q", buf[:n])
	}
	n, _ = sc.Read(buf)
	if string(buf[:n]) != "two two" {
		t.Errorf("second message %q", buf[:n])
	}
}

func TestLargeMessageOverSmallBlocks(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{})
	dc, sc := circuit(t, p1, p2, "bulk")
	msg := bytes.Repeat([]byte("dk"), 10*1024) // 20 KiB over 1 KiB blocks
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 64*1024)
		n, err := sc.Read(buf)
		if err == nil {
			got = append(got, buf[:n]...)
		}
	}()
	dc.Write(msg)
	wg.Wait()
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %d bytes, want %d in one delimited read", len(got), len(msg))
	}
}

func TestURPRecoversFromLoss(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{Loss: 0.05, Seed: 5})
	dc, sc := circuit(t, p1, p2, "lossy")
	const rounds = 30
	var wg sync.WaitGroup
	wg.Add(1)
	var msgs [][]byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for len(msgs) < rounds {
			n, err := sc.Read(buf)
			if err != nil {
				return
			}
			msgs = append(msgs, append([]byte(nil), buf[:n]...))
		}
	}()
	for i := range rounds {
		dc.Write(bytes.Repeat([]byte{byte(i)}, 500))
	}
	wg.Wait()
	if len(msgs) != rounds {
		t.Fatalf("received %d of %d messages", len(msgs), rounds)
	}
	for i, m := range msgs {
		if len(m) != 500 || m[0] != byte(i) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	if p1.Stats.Retransmits.Load() == 0 && p2.Stats.Retransmits.Load() == 0 {
		t.Log("note: loss pattern hit no data cells")
	}
}

func TestNoSuchHostAndService(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{})
	dc, _ := p1.NewConn()
	defer dc.Close()
	if err := dc.Connect("nj/astro/nowhere!9fs"); err != ErrNoHost {
		t.Errorf("dial to unknown host = %v", err)
	}
	if err := dc.Connect("nj/astro/helix!nosuch"); !vfs.SameError(err, vfs.ErrConnRef) {
		t.Errorf("dial to unannounced service = %v", err)
	}
	if err := dc.Connect("malformed"); err != xport.ErrBadAddress {
		t.Errorf("malformed dial = %v", err)
	}
	_ = p2
}

func TestDuplicateHostName(t *testing.T) {
	sw := NewSwitch(medium.Profile{})
	defer sw.Close()
	if _, err := sw.NewHost("nj/astro/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.NewHost("nj/astro/x"); err != ErrNameTaken {
		t.Errorf("duplicate host = %v", err)
	}
}

func TestServiceCollisionAndRelease(t *testing.T) {
	p1, _ := hosts(t, medium.Profile{})
	a, _ := p1.NewConn()
	if err := a.Announce("9fs"); err != nil {
		t.Fatal(err)
	}
	b, _ := p1.NewConn()
	if err := b.Announce("9fs"); err != xport.ErrInUse {
		t.Errorf("duplicate announce = %v", err)
	}
	a.Close()
	if err := b.Announce("9fs"); err != nil {
		t.Errorf("announce after release: %v", err)
	}
	b.Close()
}

func TestHangupPropagates(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{})
	dc, sc := circuit(t, p1, p2, "hup")
	dc.Write([]byte("last"))
	buf := make([]byte, 64)
	sc.Read(buf)
	dc.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := sc.Read(buf); err != nil {
			return // hangup seen
		}
	}
	t.Fatal("peer never saw the hangup")
}

// TestURPRecoversFromCellCorruption: bit flips on a circuit leg fail
// the hardware FCS, the damaged cells are discarded (counted), and
// URP's REJ/ENQ machinery recovers — the application sees an intact,
// in-order, exactly-once stream. URP's cells carry no checksum of
// their own; this is the hardware promise it was designed over.
func TestURPRecoversFromCellCorruption(t *testing.T) {
	p1, p2 := hosts(t, medium.Profile{
		Seed:   9,
		Impair: medium.Impairment{Corrupt: 0.10, CorruptBits: 2},
	})
	dc, sc := circuit(t, p1, p2, "corrupt")
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	var msgs [][]byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for len(msgs) < rounds {
			n, err := sc.Read(buf)
			if err != nil {
				return
			}
			msgs = append(msgs, append([]byte(nil), buf[:n]...))
		}
	}()
	for i := range rounds {
		dc.Write(bytes.Repeat([]byte{byte(i)}, 700))
	}
	wg.Wait()
	if len(msgs) != rounds {
		t.Fatalf("received %d of %d messages", len(msgs), rounds)
	}
	for i, m := range msgs {
		if len(m) != 700 {
			t.Fatalf("message %d wrong length %d", i, len(m))
		}
		for _, b := range m {
			if b != byte(i) {
				t.Fatalf("message %d delivered corrupted: saw %#x want %#x", i, b, byte(i))
			}
		}
	}
	if errs := p1.FCSErrs.Load() + p2.FCSErrs.Load(); errs == 0 {
		t.Error("10% corruption but no FCS discards — the check is not running")
	}
}
