package vfs

import (
	"encoding/binary"
	"errors"
	"strings"
)

// The 1993 9P carries directory entries and stat results as fixed-size
// records, so a directory read returns an integral number of entries
// and offsets are multiples of DirRecLen. We keep that property (it is
// what lets the mount driver and exportfs relay directory reads without
// reframing) but widen qid.path to 64 bits.
//
// Layout (little endian, lengths in bytes):
//
//	name[28] uid[28] gid[28] muid[28]
//	qid.path[8] qid.vers[4] qid.type[1] pad[1]
//	mode[4] atime[4] mtime[4] length[8] = 144
const (
	nameLen   = 28
	DirRecLen = 4*nameLen + 8 + 4 + 1 + 1 + 4 + 4 + 4 + 8
)

var errDirTooShort = errors.New("malformed directory entry")

// ErrNameTooLong reports a name that does not fit the fixed record.
var ErrNameTooLong = errors.New("name too long for directory entry")

func putName(p []byte, s string) {
	for i := range nameLen {
		p[i] = 0
	}
	copy(p[:nameLen-1], s)
}

func getName(p []byte) string {
	s := string(p[:nameLen])
	if i := strings.IndexByte(s, 0); i >= 0 {
		s = s[:i]
	}
	return s
}

// MarshalDir appends the fixed-size record for d to p.
func MarshalDir(p []byte, d Dir) ([]byte, error) {
	if len(d.Name) >= nameLen {
		return p, ErrNameTooLong
	}
	var rec [DirRecLen]byte
	b := rec[:]
	putName(b[0:], d.Name)
	putName(b[nameLen:], d.Uid)
	putName(b[2*nameLen:], d.Gid)
	putName(b[3*nameLen:], d.Muid)
	o := 4 * nameLen
	binary.LittleEndian.PutUint64(b[o:], d.Qid.Path)
	binary.LittleEndian.PutUint32(b[o+8:], d.Qid.Vers)
	b[o+12] = d.Qid.Type
	b[o+13] = 0
	binary.LittleEndian.PutUint32(b[o+14:], d.Mode)
	binary.LittleEndian.PutUint32(b[o+18:], d.Atime)
	binary.LittleEndian.PutUint32(b[o+22:], d.Mtime)
	binary.LittleEndian.PutUint64(b[o+26:], uint64(d.Length))
	return append(p, b[:]...), nil
}

// UnmarshalDir decodes one fixed-size record from p.
func UnmarshalDir(p []byte) (Dir, error) {
	if len(p) < DirRecLen {
		return Dir{}, errDirTooShort
	}
	var d Dir
	d.Name = getName(p[0:])
	d.Uid = getName(p[nameLen:])
	d.Gid = getName(p[2*nameLen:])
	d.Muid = getName(p[3*nameLen:])
	o := 4 * nameLen
	d.Qid.Path = binary.LittleEndian.Uint64(p[o:])
	d.Qid.Vers = binary.LittleEndian.Uint32(p[o+8:])
	d.Qid.Type = p[o+12]
	d.Mode = binary.LittleEndian.Uint32(p[o+14:])
	d.Atime = binary.LittleEndian.Uint32(p[o+18:])
	d.Mtime = binary.LittleEndian.Uint32(p[o+22:])
	d.Length = int64(binary.LittleEndian.Uint64(p[o+26:]))
	return d, nil
}

// ReadDirAt serves a directory read at the given offset from the full
// entry list, enforcing 9P's rule that directory reads begin and end on
// record boundaries.
func ReadDirAt(entries []Dir, p []byte, off int64) (int, error) {
	if off%DirRecLen != 0 {
		return 0, ErrBadOffset
	}
	i := int(off / DirRecLen)
	n := 0
	var rec []byte
	for ; i < len(entries); i++ {
		if n+DirRecLen > len(p) {
			break
		}
		var err error
		rec, err = MarshalDir(rec[:0], entries[i])
		if err != nil {
			return n, err
		}
		copy(p[n:], rec)
		n += DirRecLen
	}
	return n, nil
}
