package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestQidIsDir(t *testing.T) {
	if (Qid{Type: QTFILE}).IsDir() {
		t.Error("file qid reported as dir")
	}
	if !(Qid{Type: QTDIR}).IsDir() {
		t.Error("dir qid not reported as dir")
	}
	if !(Qid{Type: QTDIR | QTAPPEND}).IsDir() {
		t.Error("dir|append qid not reported as dir")
	}
}

func TestQidString(t *testing.T) {
	s := Qid{Path: 0x2a, Vers: 3, Type: QTDIR | QTEXCL}.String()
	if s != "(0x2a 3 dl)" {
		t.Errorf("Qid.String = %q", s)
	}
}

func TestDirIsDir(t *testing.T) {
	if !(Dir{Mode: DMDIR | 0755}).IsDir() {
		t.Error("DMDIR entry not a dir")
	}
	if (Dir{Mode: 0644}).IsDir() {
		t.Error("plain entry is a dir")
	}
}

func TestAccessModeHelpers(t *testing.T) {
	cases := []struct {
		mode            int
		readable, wable bool
	}{
		{OREAD, true, false},
		{OWRITE, false, true},
		{ORDWR, true, true},
		{OEXEC, true, false},
		{OREAD | OTRUNC, true, false},
		{OWRITE | ORCLOSE, false, true},
		{ORDWR | OTRUNC | ORCLOSE, true, true},
	}
	for _, c := range cases {
		if ModeReadable(c.mode) != c.readable {
			t.Errorf("ModeReadable(%#x) = %v", c.mode, !c.readable)
		}
		if ModeWritable(c.mode) != c.wable {
			t.Errorf("ModeWritable(%#x) = %v", c.mode, !c.wable)
		}
	}
}

func TestCheckPerm(t *testing.T) {
	d := Dir{Mode: 0640, Uid: "alice", Gid: "staff"}
	if err := CheckPerm(d, "alice", ORDWR); err != nil {
		t.Errorf("owner rdwr: %v", err)
	}
	if err := CheckPerm(d, "staff", OREAD); err != nil {
		t.Errorf("group read: %v", err)
	}
	if err := CheckPerm(d, "staff", OWRITE); err == nil {
		t.Error("group write allowed on 0640")
	}
	if err := CheckPerm(d, "mallory", OREAD); err == nil {
		t.Error("other read allowed on 0640")
	}
	if err := CheckPerm(Dir{Mode: 0666, Uid: "a", Gid: "a"}, "x", OWRITE|OTRUNC); err != nil {
		t.Errorf("other write+trunc on 0666: %v", err)
	}
	if err := CheckPerm(Dir{Mode: 0444, Uid: "a", Gid: "a"}, "x", OREAD|OTRUNC); err == nil {
		t.Error("OTRUNC must require write permission")
	}
}

func TestSameError(t *testing.T) {
	if !SameError(ErrNotExist, ErrNotExist) {
		t.Error("identical errors differ")
	}
	reconstructed := errString(ErrNotExist.Error())
	if !SameError(reconstructed, ErrNotExist) {
		t.Error("reconstructed error not matched by message")
	}
	if SameError(ErrNotExist, ErrPerm) {
		t.Error("distinct errors matched")
	}
	if SameError(nil, ErrPerm) || SameError(ErrPerm, nil) {
		t.Error("nil matched non-nil")
	}
	if !SameError(nil, nil) {
		t.Error("nil did not match nil")
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestNewQidPathUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for range 1000 {
		p := NewQidPath()
		if seen[p] {
			t.Fatalf("duplicate qid path %d", p)
		}
		seen[p] = true
	}
}

func TestDirMarshalRoundTrip(t *testing.T) {
	d := Dir{
		Name: "eia1ctl", Uid: "bootes", Gid: "bootes", Muid: "presotto",
		Qid:  Qid{Path: 0xdeadbeefcafe, Vers: 7, Type: QTAPPEND},
		Mode: DMAPPEND | 0666, Atime: 111, Mtime: 222, Length: 31337,
	}
	b, err := MarshalDir(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != DirRecLen {
		t.Fatalf("record length %d, want %d", len(b), DirRecLen)
	}
	got, err := UnmarshalDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDirMarshalNameTooLong(t *testing.T) {
	d := Dir{Name: "this-name-is-way-too-long-for-a-fixed-record"}
	if _, err := MarshalDir(nil, d); err != ErrNameTooLong {
		t.Errorf("got %v, want ErrNameTooLong", err)
	}
}

func TestUnmarshalDirShort(t *testing.T) {
	if _, err := UnmarshalDir(make([]byte, DirRecLen-1)); err == nil {
		t.Error("short record accepted")
	}
}

// Property: any Dir with in-range names round-trips exactly.
func TestDirRoundTripQuick(t *testing.T) {
	clamp := func(s string) string {
		s = nonNul(s)
		if len(s) > 27 {
			s = s[:27]
		}
		return s
	}
	f := func(name, uid, gid, muid string, path uint64, vers uint32, typ uint8, mode, at, mt uint32, length int64) bool {
		d := Dir{
			Name: clamp(name), Uid: clamp(uid), Gid: clamp(gid), Muid: clamp(muid),
			Qid:  Qid{Path: path, Vers: vers, Type: typ},
			Mode: mode, Atime: at, Mtime: mt, Length: length,
		}
		b, err := MarshalDir(nil, d)
		if err != nil {
			return false
		}
		got, err := UnmarshalDir(b)
		return err == nil && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func nonNul(s string) string {
	b := []byte(s)
	out := b[:0]
	for _, c := range b {
		if c != 0 {
			out = append(out, c)
		}
	}
	return string(out)
}

func TestReadDirAt(t *testing.T) {
	ents := []Dir{
		{Name: "a", Qid: Qid{Path: 1}},
		{Name: "b", Qid: Qid{Path: 2}},
		{Name: "c", Qid: Qid{Path: 3}},
	}
	// Whole listing.
	buf := make([]byte, 10*DirRecLen)
	n, err := ReadDirAt(ents, buf, 0)
	if err != nil || n != 3*DirRecLen {
		t.Fatalf("ReadDirAt = %d, %v", n, err)
	}
	d, _ := UnmarshalDir(buf[DirRecLen:])
	if d.Name != "b" {
		t.Errorf("second entry %q, want b", d.Name)
	}
	// Resume at an entry boundary.
	n, err = ReadDirAt(ents, buf, 2*DirRecLen)
	if err != nil || n != DirRecLen {
		t.Fatalf("resumed ReadDirAt = %d, %v", n, err)
	}
	d, _ = UnmarshalDir(buf)
	if d.Name != "c" {
		t.Errorf("resumed entry %q, want c", d.Name)
	}
	// EOF past the end.
	n, err = ReadDirAt(ents, buf, 3*DirRecLen)
	if n != 0 || err != nil {
		t.Errorf("past-end read = %d, %v", n, err)
	}
	// Misaligned offset rejected.
	if _, err = ReadDirAt(ents, buf, 7); err != ErrBadOffset {
		t.Errorf("misaligned offset error = %v", err)
	}
	// Short buffer truncates to whole records.
	small := make([]byte, DirRecLen+DirRecLen/2)
	n, err = ReadDirAt(ents, small, 0)
	if err != nil || n != DirRecLen {
		t.Errorf("short buffer read = %d, %v", n, err)
	}
}

func TestWalkPath(t *testing.T) {
	leaf := fakeNode{name: "leaf"}
	mid := fakeNode{name: "mid", children: map[string]Node{"leaf": leaf}}
	root := fakeNode{name: "root", children: map[string]Node{"mid": mid}}
	n, err := WalkPath(root, []string{"mid", "leaf"})
	if err != nil {
		t.Fatal(err)
	}
	if n.(fakeNode).name != "leaf" {
		t.Errorf("walked to %q", n.(fakeNode).name)
	}
	if _, err := WalkPath(root, []string{"nope"}); !SameError(err, ErrNotExist) {
		t.Errorf("missing walk error = %v", err)
	}
	// Zero elements returns the node itself.
	n, err = WalkPath(root, nil)
	if err != nil || n.(fakeNode).name != "root" {
		t.Errorf("empty walk = %v, %v", n, err)
	}
}

type fakeNode struct {
	name     string
	children map[string]Node
}

func (f fakeNode) Stat() (Dir, error) { return Dir{Name: f.name}, nil }
func (f fakeNode) Walk(name string) (Node, error) {
	c, ok := f.children[name]
	if !ok {
		return nil, ErrNotExist
	}
	return c, nil
}
func (f fakeNode) Open(mode int) (Handle, error) { return nil, ErrPerm }

func TestMarshalDirAppends(t *testing.T) {
	prefix := []byte("xx")
	b, err := MarshalDir(prefix, Dir{Name: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, prefix) || len(b) != 2+DirRecLen {
		t.Errorf("MarshalDir did not append: len=%d", len(b))
	}
}
