// Package vfs defines the file-system vocabulary shared by every
// subsystem in the repository: qids, directory entries, permission and
// open-mode bits, the canonical Plan 9 error strings, and the Node /
// Handle / Device interfaces through which name spaces, device drivers,
// the mount driver, and exportfs all speak to one another.
//
// The model follows the 1993 Plan 9 kernel: a Device produces a root
// Node on Attach; Nodes are cheap immutable path handles that can be
// walked one component at a time (the 9P walk message); opening a Node
// yields a Handle carrying the open-file state (the 9P open message);
// reads and writes are offset-addressed as in 9P read/write.
package vfs

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// QidType bits, stored in the top byte of a qid as in Plan 9.
const (
	QTDIR    = 0x80 // directory
	QTAPPEND = 0x40 // append-only
	QTEXCL   = 0x20 // exclusive use
	QTAUTH   = 0x08 // authentication file
	QTFILE   = 0x00 // plain file
)

// Qid uniquely identifies a file on a server: Path is unique per file,
// Vers increments on modification, Type mirrors the high mode bits.
type Qid struct {
	Path uint64
	Vers uint32
	Type uint8
}

// IsDir reports whether the qid names a directory.
func (q Qid) IsDir() bool { return q.Type&QTDIR != 0 }

func (q Qid) String() string {
	t := ""
	if q.Type&QTDIR != 0 {
		t += "d"
	}
	if q.Type&QTAPPEND != 0 {
		t += "a"
	}
	if q.Type&QTEXCL != 0 {
		t += "l"
	}
	return fmt.Sprintf("(%#x %d %s)", q.Path, q.Vers, t)
}

// Mode (permission) bits. The high bits mirror QidType<<24.
const (
	DMDIR    = 0x80000000 // directory
	DMAPPEND = 0x40000000 // append only
	DMEXCL   = 0x20000000 // exclusive use
	DMAUTH   = 0x08000000
	DMREAD   = 0x4 // read permission (per owner/group/other triplet)
	DMWRITE  = 0x2
	DMEXEC   = 0x1
)

// Open modes, as passed to Node.Open and carried by 9P Topen.
const (
	OREAD   = 0  // read only
	OWRITE  = 1  // write only
	ORDWR   = 2  // read and write
	OEXEC   = 3  // execute (read but check execute permission)
	OTRUNC  = 16 // truncate on open
	ORCLOSE = 64 // remove on last close
)

// Dir is a directory entry / stat result, the 9P Dir structure.
type Dir struct {
	Name   string
	Qid    Qid
	Mode   uint32
	Atime  uint32
	Mtime  uint32
	Length int64
	Uid    string
	Gid    string
	Muid   string
}

// IsDir reports whether the entry describes a directory.
func (d Dir) IsDir() bool { return d.Mode&DMDIR != 0 }

// Canonical error strings, as the Plan 9 kernel spells them. 9P carries
// errors as strings, so errors survive marshaling across machines by
// value; errors.Is works locally because the vars are compared by
// message in Eq.
var (
	ErrNotExist  = errors.New("file does not exist")
	ErrPerm      = errors.New("permission denied")
	ErrNotDir    = errors.New("not a directory")
	ErrIsDir     = errors.New("file is a directory")
	ErrBadUseFd  = errors.New("inappropriate use of fd")
	ErrBadOffset = errors.New("bad offset in directory read")
	ErrInUse     = errors.New("file in use")
	ErrNoCreate  = errors.New("mounted directory forbids creation")
	ErrShutdown  = errors.New("device shut down")
	ErrHungup    = errors.New("i/o on hungup channel")
	ErrBadCtl    = errors.New("bad process or channel control request")
	ErrBadArg    = errors.New("bad arg in system call")
	ErrNoNet     = errors.New("network unreachable")
	ErrConnRef   = errors.New("connection refused")
	ErrTimedOut  = errors.New("connection timed out")
	ErrClosed    = errors.New("connection closed")
	ErrBadSpec   = errors.New("bad attach specifier")
	ErrTooLong   = errors.New("name too long")
	ErrExists    = errors.New("file already exists")
)

// SameError reports whether err carries the same message as target.
// Errors that cross a 9P boundary are re-created from their strings, so
// pointer identity is not preserved; compare by message.
func SameError(err, target error) bool {
	if err == nil || target == nil {
		return err == target
	}
	return err == target || err.Error() == target.Error()
}

// Node is a handle to a file or directory on some server, before open.
// Implementations must be safe for concurrent use; Walk must not mutate
// the receiver (it returns a new Node, mirroring 9P clone+walk).
type Node interface {
	// Stat returns the directory entry for the node.
	Stat() (Dir, error)
	// Walk descends one path element. name is never "", ".", or a
	// path containing '/'. Walking ".." from a device root is handled
	// by the name space, not the device.
	Walk(name string) (Node, error)
	// Open prepares the node for I/O and returns the open-file state.
	Open(mode int) (Handle, error)
}

// Creator is implemented by nodes (directories) that support create.
type Creator interface {
	// Create makes name in the receiver directory and opens it.
	Create(name string, perm uint32, mode int) (Node, Handle, error)
}

// Remover is implemented by nodes that support remove.
type Remover interface {
	Remove() error
}

// Wstater is implemented by nodes that support attribute rewrite.
type Wstater interface {
	Wstat(d Dir) error
}

// Handle is an open file. Read and Write are offset-addressed as in
// 9P; devices whose contents are streams ignore the offset.
// Directories are read via ReadDir instead of Read.
type Handle interface {
	Read(p []byte, off int64) (int, error)
	Write(p []byte, off int64) (int, error)
	Close() error
}

// Stable is implemented by handles whose contents are stored bytes:
// a read at an offset is repeatable, and the contents change only
// when the file's Qid.Vers moves. A read cache keyed by (qid.path,
// qid.vers) may hold such a handle's data. Live device files —
// streams, ctl files, synthesized stats — must not implement it (or
// must report false): their reads consume or compute.
type Stable interface {
	Stable() bool
}

// DirReader is implemented by handles of directories: it returns the
// full list of entries; the caller (name space or 9P server) handles
// offsets and marshaling.
type DirReader interface {
	ReadDir() ([]Dir, error)
}

// Device produces a root node for a mount spec. Devices are the
// kernel-resident file servers of the paper (§2.2): ether, tcp, il,
// udp, cs, dns, ramfs, the mount driver, and so on.
type Device interface {
	// Name returns the device name, e.g. "ether", "tcp", "ram".
	Name() string
	// Attach returns the root of the device's tree for spec
	// (usually ""), as 9P attach does.
	Attach(spec string) (Node, error)
}

var qidPath atomic.Uint64

// NewQidPath returns a process-unique qid path. Devices that do not
// manage their own qid spaces draw from this counter.
func NewQidPath() uint64 { return qidPath.Add(1) }

// WalkPath walks a multi-element, already-cleaned path from n.
// elems must not contain "", ".", or "..".
func WalkPath(n Node, elems []string) (Node, error) {
	var err error
	for _, e := range elems {
		n, err = n.Walk(e)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// AccessMode extracts the access portion (OREAD..OEXEC) of an open mode.
func AccessMode(mode int) int { return mode &^ (OTRUNC | ORCLOSE) }

// ModeReadable reports whether an open with the given mode permits reads.
func ModeReadable(mode int) bool {
	switch AccessMode(mode) {
	case OREAD, ORDWR, OEXEC:
		return true
	}
	return false
}

// ModeWritable reports whether an open with the given mode permits writes.
func ModeWritable(mode int) bool {
	switch AccessMode(mode) {
	case OWRITE, ORDWR:
		return true
	}
	return false
}

// CheckPerm verifies that an open of a file with permission bits perm,
// owned by uid/gid, by user asking with open mode, is allowed. It
// implements the standard owner/group/other triplet; the name space
// passes user == uid ownership through, group membership is equated
// with uid == gid as in a single-user simulation.
func CheckPerm(d Dir, user string, mode int) error {
	var need uint32
	switch AccessMode(mode) {
	case OREAD:
		need = DMREAD
	case OWRITE:
		need = DMWRITE
	case ORDWR:
		need = DMREAD | DMWRITE
	case OEXEC:
		need = DMEXEC
	}
	if mode&OTRUNC != 0 {
		need |= DMWRITE
	}
	perm := d.Mode & 7
	if user == d.Gid {
		perm |= (d.Mode >> 3) & 7
	}
	if user == d.Uid {
		perm |= (d.Mode >> 6) & 7
	}
	if perm&need != need {
		return ErrPerm
	}
	return nil
}
