package torture

import "repro/internal/medium"

// Shrink cuts a failing scenario down to a minimal reproduction: it
// halves the traffic knobs toward their floors, then steps them down
// one at a time, then tries zeroing each impairment knob — keeping
// every change under which the scenario still fails. fails must be a
// pure predicate (Run + Failed for real scenarios; the torture model
// makes it deterministic, so the same scenario always answers the
// same). budget caps how many times fails may be invoked.
//
// The result is the smallest schedule the failure needs: replay it
// from Scenario.Seed and the same packets die in the same places.
func Shrink(s Scenario, fails func(Scenario) bool, budget int) (Scenario, int) {
	runs := 0
	try := func(cand Scenario) bool {
		if runs >= budget {
			return false
		}
		runs++
		return fails(cand)
	}

	shrinkInt := func(get func(*Scenario) *int, floor int) {
		// Halve toward the floor, then step the last stretch.
		for {
			cand := s
			p := get(&cand)
			if *p <= floor {
				return
			}
			*p = floor + (*p-floor)/2
			if !try(cand) {
				break
			}
			s = cand
		}
		for {
			cand := s
			p := get(&cand)
			if *p <= floor {
				return
			}
			*p--
			if !try(cand) {
				return
			}
			s = cand
		}
	}

	// Traffic first: a shorter conversation shrinks everything the
	// knobs below touch.
	shrinkInt(func(c *Scenario) *int { return &c.Msgs }, 1)
	shrinkInt(func(c *Scenario) *int { return &c.Back }, 0)
	shrinkInt(func(c *Scenario) *int { return &c.MaxMsg }, 1)

	// Then discard every fault the failure does not need.
	zero := []func(*Scenario){
		func(c *Scenario) { c.Loss = 0 },
		func(c *Scenario) { c.Impair.Duplicate = 0 },
		func(c *Scenario) { c.Impair.Reorder = 0; c.Impair.ReorderDepth = 0 },
		func(c *Scenario) { c.Impair.Corrupt = 0; c.Impair.CorruptBits = 0 },
		func(c *Scenario) { c.Impair.Jitter = 0 },
		func(c *Scenario) { c.Impair.BurstP = 0; c.Impair.BurstR = 0; c.Impair.BurstLoss = 0 },
		func(c *Scenario) { c.Impair.Partitions = nil },
		func(c *Scenario) { c.Latency = 0 },
		func(c *Scenario) { c.Bandwidth = 0 },
	}
	for _, z := range zero {
		cand := s
		z(&cand)
		if try(cand) {
			s = cand
		}
	}

	// A partition schedule that survived zeroing may still shed
	// individual windows.
	for i := 0; i < len(s.Impair.Partitions); {
		cand := s
		cand.Impair.Partitions = append([]medium.Window(nil), s.Impair.Partitions...)
		cand.Impair.Partitions = append(cand.Impair.Partitions[:i], cand.Impair.Partitions[i+1:]...)
		if try(cand) {
			s = cand
			continue
		}
		i++
	}
	return s, runs
}
