package torture

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/medium"
	"repro/internal/vclock"
	"repro/internal/xport"
)

// nasty is the full fault cocktail at rates the protocols are
// expected to survive: every class of impairment is on, including two
// scheduled partitions that heal. The heavy runs all ride the virtual
// clock: simulated seconds of WAN recovery cost wall-clock
// milliseconds, and the checks below pin the simulated duration too
// (a protocol that needs more virtual time than the budget is
// thrashing, even if the wall-clock bill is invisible). The real
// clock keeps its own coverage in TestRealClockSmoke.
func nasty(seed int64) Scenario {
	return Scenario{
		Virtual: true,
		Seed:    seed,
		Msgs:    60,
		Back:    30,
		MaxMsg:  700,
		Loss:    0.02,
		Impair: medium.Impairment{
			Duplicate:    0.03,
			Reorder:      0.05,
			ReorderDepth: 3,
			Corrupt:      0.05,
			CorruptBits:  2,
			BurstP:       0.004,
			BurstR:       0.4,
			Partitions:   []medium.Window{{From: 120, To: 140}, {From: 300, To: 315}},
		},
		Timeout: 30 * time.Second,
	}
}

func checkSurvives(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Failed() {
		t.Fatalf("protocol did not survive impairment:\n%s", rep)
	}
	if rep.Forward.RecvSum != rep.Forward.SentSum || rep.Forward.SentBytes == 0 {
		t.Fatalf("forward stream not byte-identical:\n%s", rep)
	}
}

// checkVirtualBudget pins the simulated duration of a virtual run.
func checkVirtualBudget(t *testing.T, rep *Report, budget time.Duration) {
	t.Helper()
	if !rep.Scenario.Virtual {
		t.Fatalf("scenario unexpectedly on the real clock: %s", rep.Scenario)
	}
	if rep.Elapsed > budget {
		t.Fatalf("conversation took %v of simulated time, budget %v:\n%s", rep.Elapsed, budget, rep)
	}
}

func TestILSurvivesImpairment(t *testing.T) {
	s := nasty(42)
	s.Proto = ProtoIL
	rep := Run(s)
	checkSurvives(t, rep)
	checkVirtualBudget(t, rep, 10*time.Second)
	if rep.Wire.Dropped == 0 || rep.Wire.Corrupted == 0 || rep.Wire.Duplicated == 0 {
		t.Fatalf("impairment never fired: wire %s", rep.Wire)
	}
	if rep.Retransmits == 0 {
		t.Fatalf("IL recovered %d drops without retransmitting?\n%s", rep.Wire.Dropped, rep)
	}
}

func TestTCPSurvivesImpairment(t *testing.T) {
	s := nasty(43)
	s.Proto = ProtoTCP
	rep := Run(s)
	checkSurvives(t, rep)
	checkVirtualBudget(t, rep, 10*time.Second)
	if rep.Backward.RecvSum != rep.Backward.SentSum {
		t.Fatalf("backward stream not byte-identical:\n%s", rep)
	}
}

func TestURPSurvivesImpairment(t *testing.T) {
	s := nasty(44)
	s.Proto = ProtoURP
	// URP's mod-8 window tolerates shallow reordering only, and its
	// circuits have no partition-length death timer slack: keep the
	// cocktail inside the Datakit contract (cells arrive ordered or
	// die; see datakit's cell FCS).
	s.Impair.Reorder = 0
	s.Impair.ReorderDepth = 0
	s.Impair.Duplicate = 0
	s.Impair.Partitions = []medium.Window{{From: 80, To: 95}}
	rep := Run(s)
	checkSurvives(t, rep)
	checkVirtualBudget(t, rep, 15*time.Second)
	if rep.Retransmits == 0 {
		t.Fatalf("URP survived loss+corruption without retransmitting?\n%s", rep)
	}
}

func Test9PSurvivesImpairment(t *testing.T) {
	s := nasty(45)
	s.Proto = Proto9P
	s.Msgs = 40
	rep := Run(s)
	checkSurvives(t, rep)
	checkVirtualBudget(t, rep, 20*time.Second)
	if rep.Forward.SentBytes != rep.Forward.RecvBytes {
		t.Fatalf("9p read back %d bytes of %d:\n%s", rep.Forward.RecvBytes, rep.Forward.SentBytes, rep)
	}
}

// TestPoolingArmedDuringTorture pins the block-discipline claim: the
// impairment runs above exercise the pooled, ownership-passing data
// path, not a copy-everything fallback. One full cocktail run must
// leave sha256-identical streams while the global block pool counters
// show both allocation and recycling traffic.
func TestPoolingArmedDuringTorture(t *testing.T) {
	before := block.Snapshot()
	s := nasty(47)
	s.Proto = ProtoIL
	rep := Run(s)
	checkSurvives(t, rep)
	after := block.Snapshot()
	if after.Allocs == before.Allocs {
		t.Fatalf("block allocator untouched during torture run: %+v", after)
	}
	if after.PoolHits == before.PoolHits {
		t.Fatalf("no pool recycling during torture run (every block fresh):\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestCycloneSurvivesJitter(t *testing.T) {
	s := Scenario{
		Proto:   ProtoCyclone,
		Seed:    46,
		Msgs:    80,
		Back:    40,
		MaxMsg:  8192,
		Impair:  medium.Impairment{Jitter: 200 * time.Microsecond},
		Virtual: true,
	}
	rep := Run(s)
	checkSurvives(t, rep)
	checkVirtualBudget(t, rep, 5*time.Second)
	if rep.Backward.RecvSum != rep.Backward.SentSum {
		t.Fatalf("backward stream not byte-identical:\n%s", rep)
	}
}

// TestRealClockSmoke keeps the passthrough clock honest: one small
// real-time conversation per engine, mild impairment, so a regression
// that only bites outside the discrete-event scheduler (a real timer
// misarmed, a wall-clock race) still has coverage. Gated out of
// -short runs: the virtual suite above carries the protocol logic.
func TestRealClockSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock smoke skipped in -short; virtual suite covers the protocols")
	}
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Scenario{
				Proto:  proto,
				Seed:   11,
				Msgs:   8,
				Back:   4,
				MaxMsg: 400,
				Loss:   0.01,
			}
			if proto == ProtoCyclone {
				s.Loss = 0
				s.Impair = medium.Impairment{Jitter: 50 * time.Microsecond}
			}
			rep := Run(s)
			checkSurvives(t, rep)
		})
	}
}

// TestTortureReplaysFromSeed is the acceptance check: the same seed
// reproduces the identical packet schedule. The wire's decision at
// index i is a pure function of (seed, i), and on the virtual clock
// the goroutine interleaving — hence which frame occupies which wire
// index — is deterministic too, so the two runs must agree on the
// WHOLE schedule, total count and flipped bits included, and deliver
// byte-identical streams.
func TestTortureReplaysFromSeed(t *testing.T) {
	s := nasty(47)
	s.Proto = ProtoIL
	s.Impair.Record = true
	r1, r2 := Run(s), Run(s)
	checkSurvives(t, r1)
	checkSurvives(t, r2)
	if r1.Forward.RecvSum != r2.Forward.RecvSum || r1.Backward.RecvSum != r2.Backward.RecvSum {
		t.Fatalf("same seed delivered different bytes:\n%s\n%s", r1, r2)
	}
	if len(r1.Schedule) == 0 || len(r2.Schedule) == 0 {
		t.Fatalf("no schedule recorded: %d vs %d decisions", len(r1.Schedule), len(r2.Schedule))
	}
	if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
		n := min(len(r1.Schedule), len(r2.Schedule))
		for i := range n {
			if !reflect.DeepEqual(r1.Schedule[i], r2.Schedule[i]) {
				t.Fatalf("schedules diverge at index %d: %s vs %s", i, r1.Schedule[i], r2.Schedule[i])
			}
		}
		t.Fatalf("schedules diverge in length: %d vs %d decisions", len(r1.Schedule), len(r2.Schedule))
	}
	sched1 := normalize(r1.Schedule)
	n := len(sched1)
	// A different seed must not replay the same schedule.
	s2 := s
	s2.Seed = 48
	r3 := Run(s2)
	sched3 := normalize(r3.Schedule)
	m := min(n, len(sched3))
	if reflect.DeepEqual(sched1[:m], sched3[:m]) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// normalize strips the frame-length-dependent bit positions from a
// schedule, leaving the pure (seed, index) decision.
func normalize(sched []medium.Decision) []medium.Decision {
	out := append([]medium.Decision(nil), sched...)
	for i := range out {
		out[i].Bits = nil
	}
	return out
}

// TestHarnessDetectsBrokenTransport feeds the checker a transport
// that corrupts silently — the harness must catch it, proving the
// invariants have teeth.
func TestHarnessDetectsBrokenTransport(t *testing.T) {
	s := Scenario{Proto: ProtoCyclone, Seed: 7, Msgs: 10, Back: 0, MaxMsg: 64, Timeout: 5 * time.Second}
	s = s.withDefaults()
	rep := &Report{Scenario: s}
	// A loopback pair that flips a byte in message #3.
	a2b := make(chan []byte, 64)
	dial := &hostileConn{tx: a2b, corrupt: 3}
	acc := &hostileConn{rx: a2b}
	drive(vclock.Real, s, rep, &conv{dial: dial, acc: acc, teardown: func() {}})
	checkInvariants(s, rep)
	if !rep.Failed() {
		t.Fatal("harness passed a transport that corrupts messages")
	}
	found := false
	rep.mu.Lock()
	for _, v := range rep.Violations {
		if v.Invariant == "corrupt" {
			found = true
		}
	}
	rep.mu.Unlock()
	if !found {
		t.Fatalf("expected a corrupt violation, got %v", rep.Violations)
	}
}

// hostileConn is a minimal in-memory xport.Conn for checker tests.
type hostileConn struct {
	tx      chan []byte
	rx      chan []byte
	corrupt int // flip a byte in this message index (counting sends)
	sent    int
}

func (h *hostileConn) Write(p []byte) (int, error) {
	cp := append([]byte(nil), p...)
	if h.sent == h.corrupt && h.corrupt > 0 && len(cp) > msgHdrLen {
		cp[msgHdrLen] ^= 0xff
	}
	h.sent++
	h.tx <- cp
	return len(p), nil
}

func (h *hostileConn) Read(p []byte) (int, error) {
	m, ok := <-h.rx
	if !ok {
		return 0, medium.ErrClosed
	}
	return copy(p, m), nil
}

func (h *hostileConn) Connect(string) error  { return nil }
func (h *hostileConn) Announce(string) error { return nil }
func (h *hostileConn) Listen() (xport.Conn, error) {
	return nil, xport.ErrNotAnnounced
}
func (h *hostileConn) LocalAddr() string  { return "hostile" }
func (h *hostileConn) RemoteAddr() string { return "hostile" }
func (h *hostileConn) Status() string     { return "Established" }
func (h *hostileConn) Close() error {
	if h.tx != nil {
		defer func() { recover() }() // double close of the channel is fine here
		close(h.tx)
	}
	return nil
}

// TestShrinkMinimizes drives the minimizer with a synthetic failure
// model: the bug needs at least 13 messages and any nonzero loss; the
// rest of the cocktail is noise. Shrink must find exactly that.
func TestShrinkMinimizes(t *testing.T) {
	start := nasty(49)
	start.Proto = ProtoIL
	start.Msgs = 200
	start.Back = 77
	start.Loss = 0.3
	fails := func(s Scenario) bool { return s.Msgs >= 13 && s.Loss > 0 }
	got, runs := Shrink(start, fails, 500)
	if got.Msgs != 13 {
		t.Fatalf("minimal Msgs = %d, want 13 (%d runs)", got.Msgs, runs)
	}
	if got.Back != 0 || got.MaxMsg != 1 {
		t.Fatalf("noise not removed: back=%d maxmsg=%d", got.Back, got.MaxMsg)
	}
	if got.Loss == 0 {
		t.Fatal("shrink removed the knob the failure needs")
	}
	if got.Impair.Corrupt != 0 || got.Impair.Duplicate != 0 || len(got.Impair.Partitions) != 0 {
		t.Fatalf("impairment noise survived: %+v", got.Impair)
	}
	if !fails(got) {
		t.Fatal("shrunk scenario no longer fails")
	}
}

// TestShrinkRespectsBudget: the predicate is never called more than
// budget times.
func TestShrinkRespectsBudget(t *testing.T) {
	start := nasty(50)
	start.Msgs = 1 << 20
	calls := 0
	fails := func(s Scenario) bool { calls++; return true }
	_, runs := Shrink(start, fails, 25)
	if calls > 25 || runs != calls {
		t.Fatalf("budget violated: %d calls, %d reported", calls, runs)
	}
}
