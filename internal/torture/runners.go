package torture

import (
	"bytes"
	"encoding/binary"
	"io"

	"repro/internal/cyclone"
	"repro/internal/datakit"
	"repro/internal/ether"
	"repro/internal/il"
	"repro/internal/ip"
	"repro/internal/medium"
	"repro/internal/ninep"
	"repro/internal/obs"
	"repro/internal/ramfs"
	"repro/internal/streams"
	"repro/internal/tcp"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// conv is an established conversation plus the hooks the driver needs
// to observe the medium and tear the world down.
type conv struct {
	dial, acc io.ReadWriteCloser
	stream    bool // byte stream (tcp): write delimiters not preserved
	retrans   func() int64
	counts    func() medium.Counts
	schedule  func() []medium.Decision
	teardown  func() // closes protos, stacks, segments — after the conns
}

// dress wraps both ends of the conversation in Lines running the
// scenario's module stack, returning the stats groups to snapshot
// after the drain. The modules restore message boundaries themselves,
// so a dressed conversation is never a raw byte stream.
func dress(ck vclock.Clock, s Scenario, rep *Report, c *conv) (dialG, accG []*obs.Group) {
	dl, al := streams.NewLine(c.dial, ck, 0), streams.NewLine(c.acc, ck, 0)
	if err := dl.Push(s.Mods...); err != nil {
		rep.violate("mods", "push %v on dialer: %v", s.Mods, err)
	}
	if err := al.Push(s.Mods...); err != nil {
		rep.violate("mods", "push %v on acceptor: %v", s.Mods, err)
	}
	c.dial, c.acc = dl, al
	c.stream = false
	return dl.ModuleStats(), al.ModuleStats()
}

// snapshotGroups merges the final counter values of a module stack
// into one map; the groups stay valid after the Line closes.
func snapshotGroups(gs []*obs.Group) map[string]int64 {
	m := make(map[string]int64)
	for _, g := range gs {
		for k, v := range g.Snapshot() {
			m[k] = v
		}
	}
	return m
}

// drive runs the two-directional traffic over an established
// conversation, then closes everything and fills the report.
func drive(ck vclock.Clock, s Scenario, rep *Report, c *conv) {
	var dialG, accG []*obs.Group
	if len(s.Mods) > 0 {
		dialG, accG = dress(ck, s, rep, c)
	}
	watchdog := ck.AfterFunc(s.Timeout, func() {
		rep.violate("timeout", "conversation did not finish in %v", s.Timeout)
		// Unblock every reader and writer; the run then drains.
		c.dial.Close()
		c.acc.Close()
	})
	wg := vclock.NewWaitGroup(ck)
	wg.Add(4)
	ck.Go(func() {
		defer wg.Done()
		sendMsgs(s, rep, c.dial, 0, s.Msgs, &rep.Forward)
	})
	ck.Go(func() {
		defer wg.Done()
		if c.stream {
			recvStream(s, rep, c.acc, 0, s.Msgs, &rep.Forward)
		} else {
			recvMsgs(s, rep, c.acc, 0, s.Msgs, &rep.Forward)
		}
	})
	ck.Go(func() {
		defer wg.Done()
		sendMsgs(s, rep, c.acc, 1, s.Back, &rep.Backward)
	})
	ck.Go(func() {
		defer wg.Done()
		if c.stream {
			recvStream(s, rep, c.dial, 1, s.Back, &rep.Backward)
		} else {
			recvMsgs(s, rep, c.dial, 1, s.Back, &rep.Backward)
		}
	})
	wg.Wait()
	watchdog.Stop()
	c.dial.Close()
	c.acc.Close()
	if c.retrans != nil {
		rep.Retransmits = c.retrans()
	}
	if c.counts != nil {
		rep.Wire = c.counts()
	}
	if c.schedule != nil {
		rep.Schedule = c.schedule()
	}
	if c.teardown != nil {
		c.teardown()
	}
	if dialG != nil {
		rep.DialMods, rep.AccMods = snapshotGroups(dialG), snapshotGroups(accG)
	}
}

// sendMsgs writes count deterministic messages in direction dir.
func sendMsgs(s Scenario, rep *Report, w io.ReadWriteCloser, dir byte, count int, stats *DirStats) {
	sum := newStreamSum()
	defer func() {
		stats.SentBytes = sum.n
		stats.SentSum = sum.sum()
	}()
	for seq := 0; seq < count; seq++ {
		msg := message(s.Seed, dir, seq, s.MaxMsg)
		if _, err := w.Write(msg); err != nil {
			rep.violate("send", "dir %d message #%d: %v", dir, seq, err)
			return
		}
		sum.add(msg)
	}
}

// recvMsgs reads count delimited messages and verifies each against
// the regenerated expectation, classifying any divergence.
func recvMsgs(s Scenario, rep *Report, r io.ReadWriteCloser, dir byte, count int, stats *DirStats) {
	sum := newStreamSum()
	defer func() {
		stats.RecvBytes = sum.n
		stats.RecvSum = sum.sum()
	}()
	buf := make([]byte, msgHdrLen+s.MaxMsg+256)
	want := 0
	for want < count {
		n, err := r.Read(buf)
		if err != nil {
			if want < count {
				rep.violate("teardown", "dir %d: read failed at message #%d of %d: %v", dir, want, count, err)
			}
			return
		}
		got := buf[:n]
		exp := message(s.Seed, dir, want, s.MaxMsg)
		if bytes.Equal(got, exp) {
			sum.add(got)
			stats.Msgs++
			want++
			continue
		}
		// Divergence: decode the embedded header to say what went
		// wrong — a replayed earlier message, a gap, or corruption.
		switch {
		case n >= msgHdrLen && got[0] == msgMagic && got[1] == dir:
			seq := int(binary.BigEndian.Uint32(got[2:]))
			switch {
			case seq < want:
				rep.violate("duplicate", "dir %d: message #%d delivered again while expecting #%d", dir, seq, want)
				// Drop the replay; the expectation stands.
			case seq > want:
				rep.violate("order", "dir %d: expected message #%d, got #%d (gap of %d)", dir, want, seq, seq-want)
				want = seq + 1
			default:
				rep.violate("corrupt", "dir %d: message #%d delivered damaged (%d bytes, want %d)", dir, want, n, len(exp))
				want++
			}
		default:
			rep.violate("corrupt", "dir %d: unparseable %d-byte delivery while expecting message #%d", dir, n, want)
			want++
		}
		if rep.overloaded() {
			r.Close()
			return
		}
	}
}

// recvStream reads a byte-stream protocol: delimiters are gone, so
// the reader walks a cursor over the expected concatenated stream.
func recvStream(s Scenario, rep *Report, r io.ReadWriteCloser, dir byte, count int, stats *DirStats) {
	sum := newStreamSum()
	defer func() {
		stats.RecvBytes = sum.n
		stats.RecvSum = sum.sum()
	}()
	var expect []byte // remaining unmatched bytes of message #seq
	seq := 0
	buf := make([]byte, 32*1024)
	for seq < count || len(expect) > 0 {
		n, err := r.Read(buf)
		if err != nil {
			rep.violate("teardown", "dir %d: stream read failed in message #%d of %d: %v", dir, seq, count, err)
			return
		}
		got := buf[:n]
		sum.add(got)
		for len(got) > 0 {
			if len(expect) == 0 {
				if seq >= count {
					rep.violate("stream", "dir %d: %d trailing bytes past the final message", dir, len(got))
					return
				}
				expect = message(s.Seed, dir, seq, s.MaxMsg)
				seq++
			}
			m := min(len(got), len(expect))
			if !bytes.Equal(got[:m], expect[:m]) {
				rep.violate("corrupt", "dir %d: stream diverges inside message #%d", dir, seq-1)
				r.Close()
				return
			}
			got = got[m:]
			expect = expect[m:]
		}
		if seq >= count && len(expect) == 0 {
			stats.Msgs = count
			return
		}
	}
	stats.Msgs = count
}

// dialAccept establishes a conversation: announce+listen on lp, dial
// from dp. The listen runs concurrently and is always joined; a dial
// failure closes the listener to unblock it.
func dialAccept(ck vclock.Clock, rep *Report, dp, lp xport.Proto, announce, dialAddr string) (dialc, accc xport.Conn, ok bool) {
	lc, err := lp.NewConn()
	if err != nil {
		rep.violate("connect", "listener clone: %v", err)
		return nil, nil, false
	}
	if err := lc.Announce(announce); err != nil {
		rep.violate("connect", "announce %q: %v", announce, err)
		lc.Close()
		return nil, nil, false
	}
	accCh := vclock.NewMailbox[xport.Conn](ck, 1)
	ck.Go(func() {
		nc, err := lc.Listen()
		if err != nil {
			accCh.TrySend(nil)
			return
		}
		accCh.TrySend(nc)
	})
	dc, err := dp.NewConn()
	if err == nil {
		err = dc.Connect(dialAddr)
	}
	if err != nil {
		rep.violate("connect", "dial %q: %v", dialAddr, err)
		lc.Close() // unblocks the pending Listen
		if nc, _ := accCh.Recv(); nc != nil {
			nc.Close()
		}
		if dc != nil {
			dc.Close()
		}
		return nil, nil, false
	}
	nc, _ := accCh.Recv()
	lc.Close()
	if nc == nil {
		rep.violate("connect", "listen returned no conversation for %q", dialAddr)
		dc.Close()
		return nil, nil, false
	}
	return dc, nc, true
}

// etherWorld is the two-machine impaired Ethernet the IP protocols
// run over.
type etherWorld struct {
	seg      *ether.Segment
	st1, st2 *ip.Stack
	a1, a2   ip.Addr
}

func newEtherWorld(ck vclock.Clock, s Scenario) (*etherWorld, error) {
	w := &etherWorld{
		seg: ether.NewSegment("torture0", ether.Profile{
			Latency:   s.Latency,
			Bandwidth: s.Bandwidth,
			Loss:      s.Loss,
			Seed:      s.Seed,
			Impair:    s.Impair,
			Clock:     ck,
		}),
		st1: ip.NewStackClock(ck),
		st2: ip.NewStackClock(ck),
		a1:  ip.Addr{135, 104, 9, 1},
		a2:  ip.Addr{135, 104, 9, 2},
	}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := w.st1.Bind(w.seg.NewInterface("ether0"), w.a1, mask); err != nil {
		w.close()
		return nil, err
	}
	if _, err := w.st2.Bind(w.seg.NewInterface("ether0"), w.a2, mask); err != nil {
		w.close()
		return nil, err
	}
	return w, nil
}

func (w *etherWorld) close() {
	w.st1.Close()
	w.st2.Close()
	w.seg.Close()
}

func runIL(ck vclock.Clock, s Scenario, rep *Report) {
	w, err := newEtherWorld(ck, s)
	if err != nil {
		rep.violate("connect", "ether world: %v", err)
		return
	}
	p1, p2 := il.New(w.st1, il.Config{}), il.New(w.st2, il.Config{})
	dc, ac, ok := dialAccept(ck, rep, p1, p2, "17008", ip.HostPort(w.a2, 17008))
	if !ok {
		p1.Close()
		p2.Close()
		w.close()
		return
	}
	drive(ck, s, rep, &conv{
		dial:     dc,
		acc:      ac,
		retrans:  func() int64 { return p1.Retransmits.Load() + p2.Retransmits.Load() },
		counts:   w.seg.ImpairCounts,
		schedule: w.seg.Schedule,
		teardown: func() {
			p1.Close()
			p2.Close()
			w.close()
		},
	})
}

func runTCP(ck vclock.Clock, s Scenario, rep *Report) {
	w, err := newEtherWorld(ck, s)
	if err != nil {
		rep.violate("connect", "ether world: %v", err)
		return
	}
	p1, p2 := tcp.New(w.st1), tcp.New(w.st2)
	dc, ac, ok := dialAccept(ck, rep, p1, p2, "564", ip.HostPort(w.a2, 564))
	if !ok {
		p1.Close()
		p2.Close()
		w.close()
		return
	}
	drive(ck, s, rep, &conv{
		dial:     dc,
		acc:      ac,
		stream:   true,
		retrans:  func() int64 { return p1.Retransmits.Load() + p2.Retransmits.Load() },
		counts:   w.seg.ImpairCounts,
		schedule: w.seg.Schedule,
		teardown: func() {
			p1.Close()
			p2.Close()
			w.close()
		},
	})
}

func runURP(ck vclock.Clock, s Scenario, rep *Report) {
	sw := datakit.NewSwitch(medium.Profile{
		Latency:   s.Latency,
		Bandwidth: s.Bandwidth,
		MTU:       2048,
		Loss:      s.Loss,
		Seed:      s.Seed,
		Impair:    s.Impair,
		Clock:     ck,
	})
	h1, err := sw.NewHost("nj/astro/torture-a")
	var h2 *datakit.Host
	if err == nil {
		h2, err = sw.NewHost("nj/astro/torture-b")
	}
	if err != nil {
		rep.violate("connect", "datakit hosts: %v", err)
		sw.Close()
		return
	}
	p1, p2 := datakit.NewProto(h1), datakit.NewProto(h2)
	dc, ac, ok := dialAccept(ck, rep, p1, p2, "torture", "nj/astro/torture-b!torture")
	if !ok {
		sw.Close()
		return
	}
	drive(ck, s, rep, &conv{
		dial:     dc,
		acc:      ac,
		retrans:  func() int64 { return p1.Stats.Retransmits.Load() + p2.Stats.Retransmits.Load() },
		teardown: sw.Close,
	})
}

func runCyclone(ck vclock.Clock, s Scenario, rep *Report) {
	// The Cyclone boards are hardware-reliable (§7): the link
	// contract admits delay variation but not loss, duplication, or
	// damage, so only jitter (and the pacing knobs) applies.
	link := cyclone.NewLink("cyc0", medium.Profile{
		Latency:   s.Latency,
		Bandwidth: s.Bandwidth,
		Seed:      s.Seed,
		Impair:    medium.Impairment{Jitter: s.Impair.Jitter, Record: s.Impair.Record},
		Clock:     ck,
	})
	ea, eb := link.Ends()
	dc, ac, ok := dialAccept(ck, rep, ea, eb, "*", "")
	if !ok {
		link.Close()
		return
	}
	drive(ck, s, rep, &conv{
		dial:     dc,
		acc:      ac,
		teardown: link.Close,
	})
}

// run9P tortures a whole 9P session over IL: a ramfs served across the
// impaired Ethernet, a client writing deterministic blocks through the
// mount protocol and reading them back. Msgs counts write blocks; the
// read-back pass covers the backward direction.
func run9P(ck vclock.Clock, s Scenario, rep *Report) {
	// A 9P message carries at most MaxFData of file data; keep blocks
	// well under it.
	blockMax := min(s.MaxMsg, 4096)
	w, err := newEtherWorld(ck, s)
	if err != nil {
		rep.violate("connect", "ether world: %v", err)
		return
	}
	p1, p2 := il.New(w.st1, il.Config{}), il.New(w.st2, il.Config{})
	dc, ac, ok := dialAccept(ck, rep, p1, p2, "17008", ip.HostPort(w.a2, 17008))
	teardown := func() {
		p1.Close()
		p2.Close()
		w.close()
	}
	if !ok {
		teardown()
		return
	}
	// The 9P session can ride a dressed conversation too: Lines wrap
	// the transport under the delimited-message adapter, so every RPC
	// crosses the module stack.
	var dconn, aconn io.ReadWriteCloser = dc, ac
	var dialG, accG []*obs.Group
	if len(s.Mods) > 0 {
		c := &conv{dial: dc, acc: ac}
		dialG, accG = dress(ck, s, rep, c)
		dconn, aconn = c.dial, c.acc
	}
	fs := ramfs.NewClock("torture", ck)
	srvDone := vclock.NewWaitGroup(ck)
	srvDone.Add(1)
	ck.Go(func() {
		defer srvDone.Done()
		// Serve returns when the transport hangs up; the error is the
		// hangup itself, not a violation.
		ninep.ServeClock(ninep.NewDelimConn(aconn), func(uname, aname string) (vfs.Node, error) {
			return fs.Attach(aname)
		}, ck)
	})
	watchdog := ck.AfterFunc(s.Timeout, func() {
		rep.violate("timeout", "9p session did not finish in %v", s.Timeout)
		dconn.Close()
		aconn.Close()
	})
	torture9P(ck, s, rep, dconn, blockMax)
	watchdog.Stop()
	dconn.Close()
	aconn.Close()
	srvDone.Wait()
	rep.Retransmits = p1.Retransmits.Load() + p2.Retransmits.Load()
	rep.Wire = w.seg.ImpairCounts()
	rep.Schedule = w.seg.Schedule()
	teardown()
	if dialG != nil {
		rep.DialMods, rep.AccMods = snapshotGroups(dialG), snapshotGroups(accG)
	}
}

// torture9P is the client side of the 9P scenario. The served tree is
// a ramfs of plain files, so the client opts into windowed transfers —
// the windowed pass below must exercise the real fan-out path.
func torture9P(ck vclock.Clock, s Scenario, rep *Report, dc io.ReadWriteCloser, blockMax int) {
	cl, err := ninep.NewClientConfig(ninep.NewDelimConn(dc), ninep.ClientConfig{WindowedTransfers: true, Clock: ck})
	if err != nil {
		rep.violate("9p", "version: %v", err)
		return
	}
	defer cl.Close()
	fid, err := cl.Attach("torture", "")
	if err != nil {
		rep.violate("9p", "attach: %v", err)
		return
	}
	if err := fid.Create("blocks", 0644, vfs.ORDWR); err != nil {
		rep.violate("9p", "create: %v", err)
		return
	}
	wsum, rsum := newStreamSum(), newStreamSum()
	var off int64
	for seq := 0; seq < s.Msgs; seq++ {
		block := message(s.Seed, 0, seq, blockMax)
		n, err := fid.Write(block, off)
		if err != nil || n != len(block) {
			rep.violate("9p", "write block #%d: n=%d err=%v", seq, n, err)
			return
		}
		wsum.add(block)
		off += int64(n)
	}
	rep.Forward.Msgs = s.Msgs
	rep.Forward.SentBytes = wsum.n
	rep.Forward.SentSum = wsum.sum()
	// Read the file back and verify byte identity; the server's copy
	// traveled the impaired wire twice by now.
	var roff int64
	buf := make([]byte, 4096)
	for roff < off {
		n, err := fid.Read(buf, roff)
		if err != nil {
			rep.violate("9p", "read at %d: %v", roff, err)
			return
		}
		if n == 0 {
			rep.violate("9p", "early eof at %d of %d", roff, off)
			return
		}
		rsum.add(buf[:n])
		roff += int64(n)
	}
	rep.Forward.RecvBytes = rsum.n
	rep.Forward.RecvSum = rsum.sum()
	// Windowed pass: one transfer larger than MaxFData fans into the
	// mount driver's sliding window of concurrent fragment RPCs.
	// Under impairment the fragments ride reordered, retransmitted IL
	// messages, so byte identity here tortures the strict offset-order
	// reassembly discipline, not just the serial path above.
	big := make([]byte, 3*ninep.MaxFData+1234)
	for i := range big {
		big[i] = byte(mix64(uint64(s.Seed) + uint64(i)>>3))
	}
	n, err := fid.Write(big, off)
	if err != nil || n != len(big) {
		rep.violate("9p", "windowed write: n=%d err=%v", n, err)
		return
	}
	rbuf := make([]byte, len(big)+ninep.MaxFData) // oversized: EOF truncates
	rn, err := fid.Read(rbuf, off)
	if err != nil {
		rep.violate("9p", "windowed read: %v", err)
		return
	}
	if rn != len(big) || !bytes.Equal(rbuf[:rn], big) {
		rep.violate("9p", "windowed read returned %d bytes, want %d (content %v)", rn, len(big), bytes.Equal(rbuf[:min(rn, len(big))], big[:min(rn, len(big))]))
		return
	}
	off += int64(n)
	d, err := fid.Stat()
	if err != nil {
		rep.violate("9p", "stat: %v", err)
		return
	}
	if int64(d.Length) != off {
		rep.violate("9p", "stat length %d, wrote %d", d.Length, off)
	}
	if err := fid.Clunk(); err != nil {
		rep.violate("9p", "clunk: %v", err)
	}
	// The backward direction is the read-back: mirror it into the
	// report so the checksum invariant compares write vs read.
	rep.Backward = DirStats{
		Msgs:      rep.Forward.Msgs,
		SentBytes: rep.Forward.SentBytes,
		RecvBytes: rep.Forward.RecvBytes,
		SentSum:   rep.Forward.SentSum,
		RecvSum:   rep.Forward.RecvSum,
	}
}
