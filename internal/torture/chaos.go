package torture

import (
	"time"

	"repro/internal/medium"
)

// Chaos builds the standard impairment cocktail for one protocol of
// the torture matrix — the scenario `netsim -chaos` runs and the
// deterministic regression suite replays. Every fault class the
// protocol's medium can express is on; the per-protocol adjustments
// track the contracts of the real hardware (§2.3, §7): Datakit
// circuits deliver cells ordered or not at all, and the Cyclone
// boards are reliable, so only delay variation reaches them.
func Chaos(proto string, seed int64, msgs int) Scenario {
	s := Scenario{
		Proto:  proto,
		Seed:   seed,
		Msgs:   msgs,
		Back:   msgs / 2,
		MaxMsg: 700,
		Loss:   0.02,
		Impair: medium.Impairment{
			Duplicate:    0.03,
			Reorder:      0.05,
			ReorderDepth: 3,
			Corrupt:      0.05,
			CorruptBits:  2,
			BurstP:       0.004,
			BurstR:       0.4,
			Partitions:   []medium.Window{{From: 120, To: 140}, {From: 300, To: 315}},
		},
		Timeout: 25 * time.Second,
	}
	switch proto {
	case ProtoURP:
		s.Impair.Reorder = 0
		s.Impair.ReorderDepth = 0
		s.Impair.Duplicate = 0
		s.Impair.Partitions = []medium.Window{{From: 80, To: 95}}
	case ProtoCyclone:
		s.Loss = 0
		s.Impair = medium.Impairment{Jitter: 200 * time.Microsecond}
	}
	return s
}
