package torture

// The stats-conformance suite: the observability tentpole's ground
// truth check. A machine's /net stats files are only diagnostic tools
// if their numbers are TRUE, so each test here runs real traffic over
// a deterministically impaired medium, reads the stats back the way a
// user would — through the device file tree, parsed with
// obs.ParseStats — and reconciles them against two independent
// sources:
//
//   - the medium's own impairment counters (medium.Impairer.Counts):
//     what the wire actually dropped, duplicated, and corrupted;
//   - the protocol engines' exported counters: what the code that
//     bumped the numbers believes.
//
// A stats file that disagrees with either is lying to the operator.

import (
	"testing"
	"time"

	"repro/internal/datakit"
	"repro/internal/ether"
	"repro/internal/il"
	"repro/internal/ip"
	"repro/internal/medium"
	"repro/internal/mnt"
	"repro/internal/netdev"
	"repro/internal/ninep"
	"repro/internal/obs"
	"repro/internal/ramfs"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// readNodeText reads a whole file out of a device tree node, the way
// a process (or a remote importer) would.
func readNodeText(t *testing.T, root vfs.Node, name string) string {
	t.Helper()
	n, err := root.Walk(name)
	if err != nil {
		t.Fatalf("walk %s: %v", name, err)
	}
	h, err := n.Open(vfs.OREAD)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer h.Close()
	var text []byte
	buf := make([]byte, 8192)
	var off int64
	for {
		n, err := h.Read(buf, off)
		text = append(text, buf[:n]...)
		off += int64(n)
		if err != nil || n == 0 {
			break
		}
	}
	return string(text)
}

// devStats mounts proto as a protocol device and parses its stats
// file — the exact text a cat of /net/PROTO/stats serves.
func devStats(t *testing.T, p xport.Proto) map[string]int64 {
	t.Helper()
	return obs.ParseStats(readNodeText(t, netdev.New(p, "conformance").Root(), "stats"))
}

// quiesce polls snap until two consecutive samples agree, so counters
// racing with in-flight frames settle before the books are balanced.
func quiesce(t *testing.T, snap func() []int64) []int64 {
	t.Helper()
	prev := snap()
	for i := 0; i < 400; i++ {
		time.Sleep(25 * time.Millisecond)
		cur := snap()
		same := true
		for j := range cur {
			if cur[j] != prev[j] {
				same = false
			}
		}
		if same {
			return cur
		}
		prev = cur
	}
	t.Fatalf("counters never quiesced: %v", prev)
	return nil
}

// TestStatsConformanceIL reconciles /net/il/stats and the ether
// interface stats against the segment impairer under loss, corruption,
// and duplication.
func TestStatsConformanceIL(t *testing.T) {
	s := Scenario{
		Proto:  ProtoIL,
		Seed:   11,
		Msgs:   80,
		Back:   80,
		MaxMsg: 512,
		Loss:   0.04,
		Impair: medium.Impairment{
			Duplicate:   0.06,
			Corrupt:     0.05,
			CorruptBits: 3,
			Record:      true,
		},
		Latency: 200 * time.Microsecond,
	}.withDefaults()

	seg := ether.NewSegment("conf0", ether.Profile{
		Latency: s.Latency,
		Loss:    s.Loss,
		Seed:    s.Seed,
		Impair:  s.Impair,
	})
	st1, st2 := ip.NewStack(), ip.NewStack()
	a1, a2 := ip.Addr{10, 0, 0, 1}, ip.Addr{10, 0, 0, 2}
	mask := ip.Addr{255, 255, 255, 0}
	ifc1 := seg.NewInterface("ether0")
	ifc2 := seg.NewInterface("ether0")
	if _, err := st1.Bind(ifc1, a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Bind(ifc2, a2, mask); err != nil {
		t.Fatal(err)
	}
	p1, p2 := il.New(st1, il.Config{}), il.New(st2, il.Config{})
	defer func() {
		p1.Close()
		p2.Close()
		st1.Close()
		st2.Close()
		seg.Close()
	}()

	rep := &Report{Scenario: s}
	dc, ac, ok := dialAccept(vclock.Real, rep, p1, p2, "17100", ip.HostPort(a2, 17100))
	if !ok {
		t.Fatalf("connect: %v", rep.Violations)
	}
	drive(vclock.Real, s, rep, &conv{dial: dc, acc: ac})
	for _, v := range rep.Violations {
		t.Errorf("traffic violation: %s", v)
	}

	// Let stragglers (retransmits racing the close) land.
	vals := quiesce(t, func() []int64 {
		c := seg.ImpairCounts()
		return []int64{
			c.Sent, c.Emitted, c.Dropped, c.Duplicated, c.Corrupted,
			ifc1.CRCErrs() + ifc2.CRCErrs(),
		}
	})
	counts := seg.ImpairCounts()
	_ = vals

	// The scenario must actually have hurt: a conformance pass over a
	// clean wire proves nothing.
	if counts.Dropped == 0 || counts.Duplicated == 0 || counts.Corrupted == 0 {
		t.Fatalf("impairment did not bite: %v", counts)
	}

	// Ground truth 1: every corrupted emission reaches exactly one
	// receiving interface and dies at its FCS check. A message both
	// corrupted and duplicated puts TWO damaged copies on the wire,
	// so the exact expectation comes from the recorded per-message
	// schedule, not the corrupted-messages counter.
	var corruptCopies int64
	for _, d := range seg.Schedule() {
		if d.Corrupt {
			corruptCopies++
			if d.Dup {
				corruptCopies++
			}
		}
	}
	st1Stats := obs.ParseStats(ifc1.Stats())
	st2Stats := obs.ParseStats(ifc2.Stats())
	if ov := st1Stats["overflows"] + st2Stats["overflows"]; ov != 0 {
		t.Fatalf("input rings overflowed (%d): counters not comparable", ov)
	}
	fileCRC := st1Stats["crc-errs"] + st2Stats["crc-errs"]
	if fileCRC != corruptCopies {
		t.Errorf("ether stats crc-errs %d, impairer emitted %d corrupted copies (corrupted msgs %d)",
			fileCRC, corruptCopies, counts.Corrupted)
	}
	if engine := ifc1.CRCErrs() + ifc2.CRCErrs(); fileCRC != engine {
		t.Errorf("stats file crc-errs %d, engine counter %d", fileCRC, engine)
	}

	// Ground truth 2: conservation. Every copy the impairer emitted
	// was delivered to the one other station and either accepted (in)
	// or discarded at the FCS (crc-errs); dropped and still-held
	// copies were never emitted.
	fileIn := st1Stats["in"] + st2Stats["in"]
	if fileIn+fileCRC != counts.Emitted {
		t.Errorf("in %d + crc-errs %d != emitted %d (dropped %d, pending %d)",
			fileIn, fileCRC, counts.Emitted, counts.Dropped, counts.Pending)
	}

	// Protocol layer: /net/il/stats must agree with the engine's
	// exported counters, and the damage must be visible in them —
	// drops and corruption force retransmits, wire duplicates show up
	// as dups received. Corruption died at the ether FCS, so the IL
	// checksum never saw it.
	il1, il2 := devStats(t, p1), devStats(t, p2)
	for name, eng := range map[string]int64{
		"retransmits": p1.Retransmits.Load() + p2.Retransmits.Load(),
		"msgs-sent":   p1.MsgsSent.Load() + p2.MsgsSent.Load(),
		"msgs-rcvd":   p1.MsgsRcvd.Load() + p2.MsgsRcvd.Load(),
		"dups-rcvd":   p1.DupsReceived.Load() + p2.DupsReceived.Load(),
	} {
		if file := il1[name] + il2[name]; file != eng {
			t.Errorf("/net/il/stats %s: file %d, engine %d", name, file, eng)
		}
	}
	if r := il1["retransmits"] + il2["retransmits"]; r == 0 {
		t.Errorf("wire dropped %d and corrupted %d frames but IL retransmitted nothing",
			counts.Dropped, counts.Corrupted)
	}
	if d := il1["dups-rcvd"] + il2["dups-rcvd"]; d == 0 {
		t.Errorf("wire duplicated %d frames but IL saw no duplicates", counts.Duplicated)
	}
	if ce := il1["checksum-errs"] + il2["checksum-errs"]; ce != 0 {
		t.Errorf("IL checksum-errs %d: corruption leaked past the ether FCS", ce)
	}
}

// TestStatsConformanceDatakit reconciles /net/dk/stats against the
// circuit's impairment counters: every corrupted cell must die at the
// URP FCS and be reported, and the retransmission counters must match
// the engine.
func TestStatsConformanceDatakit(t *testing.T) {
	s := Scenario{
		Proto:  ProtoURP,
		Seed:   23,
		Msgs:   60,
		Back:   60,
		MaxMsg: 400,
		Impair: medium.Impairment{
			Corrupt:     0.05,
			CorruptBits: 3,
		},
		Latency: 100 * time.Microsecond,
	}.withDefaults()

	sw := datakit.NewSwitch(medium.Profile{
		Latency: s.Latency,
		MTU:     2048,
		Seed:    s.Seed,
		Impair:  s.Impair,
	})
	defer sw.Close()
	h1, err := sw.NewHost("nj/astro/conf-a")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sw.NewHost("nj/astro/conf-b")
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := datakit.NewProto(h1), datakit.NewProto(h2)

	rep := &Report{Scenario: s}
	dc, ac, ok := dialAccept(vclock.Real, rep, p1, p2, "conf", "nj/astro/conf-b!conf")
	if !ok {
		t.Fatalf("connect: %v", rep.Violations)
	}
	wires, _ := dc.(*datakit.Conn)
	drive(vclock.Real, s, rep, &conv{dial: dc, acc: ac})
	for _, v := range rep.Violations {
		t.Errorf("traffic violation: %s", v)
	}

	vals := quiesce(t, func() []int64 {
		c, _ := wires.WireCounts()
		return []int64{c.Emitted, c.Corrupted,
			p1.FCSErrs.Load() + p2.FCSErrs.Load()}
	})
	counts, ok := wires.WireCounts()
	if !ok {
		t.Fatal("dial conn has no wire")
	}
	_ = vals
	if counts.Corrupted == 0 {
		t.Fatalf("impairment did not bite: %v", counts)
	}

	dk1, dk2 := devStats(t, p1), devStats(t, p2)
	fileFCS := dk1["fcs-errs"] + dk2["fcs-errs"]
	if fileFCS != counts.Corrupted {
		t.Errorf("/net/dk/stats fcs-errs %d, impairer corrupted %d", fileFCS, counts.Corrupted)
	}
	for name, eng := range map[string]int64{
		"blocks":      p1.Stats.Blocks.Load() + p2.Stats.Blocks.Load(),
		"retransmits": p1.Stats.Retransmits.Load() + p2.Stats.Retransmits.Load(),
		"rejects":     p1.Stats.Rejects.Load() + p2.Stats.Rejects.Load(),
		"enquiries":   p1.Stats.Enquiries.Load() + p2.Stats.Enquiries.Load(),
	} {
		if file := dk1[name] + dk2[name]; file != eng {
			t.Errorf("/net/dk/stats %s: file %d, engine %d", name, file, eng)
		}
	}
	// Corrupted cells vanish at the FCS, so the window stalls until
	// recovery — the recovery counters cannot all be zero.
	if r := dk1["retransmits"] + dk2["retransmits"] + dk1["rejects"] + dk2["rejects"] +
		dk1["enquiries"] + dk2["enquiries"]; r == 0 {
		t.Errorf("wire corrupted %d cells but URP recovered nothing", counts.Corrupted)
	}
}

// TestStatsConformanceMnt drives the pipelined mount driver over an
// impaired IL link and reconciles the /net/mnt/stats sources: the
// package-level readahead/write-behind counters and the 9P client's
// RPC counters, against what the traffic must have done.
func TestStatsConformanceMnt(t *testing.T) {
	s := Scenario{
		Proto:   Proto9P,
		Seed:    5,
		Loss:    0.02,
		Latency: 100 * time.Microsecond,
	}.withDefaults()

	seg := ether.NewSegment("conf9p", ether.Profile{
		Latency: s.Latency,
		Loss:    s.Loss,
		Seed:    s.Seed,
		Impair:  s.Impair,
	})
	st1, st2 := ip.NewStack(), ip.NewStack()
	a1, a2 := ip.Addr{10, 0, 1, 1}, ip.Addr{10, 0, 1, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := st1.Bind(seg.NewInterface("ether0"), a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Bind(seg.NewInterface("ether0"), a2, mask); err != nil {
		t.Fatal(err)
	}
	p1, p2 := il.New(st1, il.Config{}), il.New(st2, il.Config{})
	defer func() {
		p1.Close()
		p2.Close()
		st1.Close()
		st2.Close()
		seg.Close()
	}()

	rep := &Report{Scenario: s}
	dc, ac, ok := dialAccept(vclock.Real, rep, p1, p2, "17101", ip.HostPort(a2, 17101))
	if !ok {
		t.Fatalf("connect: %v", rep.Violations)
	}
	fs := ramfs.New("conf")
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		ninep.Serve(ninep.NewDelimConn(ac), func(uname, aname string) (vfs.Node, error) {
			return fs.Attach(aname)
		})
	}()

	before := mnt.StatsGroup().Snapshot()
	root, cl, err := mnt.MountConfig(ninep.NewDelimConn(dc), "conf", "", mnt.FileConfig())
	if err != nil {
		t.Fatalf("mount: %v", err)
	}

	// A large sequential write coalesces into write-behind fragments;
	// the read-back first barriers the writes, then establishes a
	// sequential pattern and runs on prefetched fragments.
	_, h, err := root.(vfs.Creator).Create("blob", 0644, vfs.ORDWR)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	blob := make([]byte, 6*ninep.MaxFData)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	var off int64
	for off < int64(len(blob)) {
		n, err := h.Write(blob[off:min(off+8192, int64(len(blob)))], off)
		if err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
		off += int64(n)
	}
	got := make([]byte, len(blob))
	var roff int64
	for roff < int64(len(got)) {
		n, err := h.Read(got[roff:min(roff+8192, int64(len(got)))], roff)
		if err != nil {
			t.Fatalf("read at %d: %v", roff, err)
		}
		if n == 0 {
			t.Fatalf("early eof at %d", roff)
		}
		roff += int64(n)
	}
	for i := range got {
		if got[i] != blob[i] {
			t.Fatalf("read-back diverges at byte %d", i)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	after := mnt.StatsGroup().Snapshot()
	delta := func(name string) int64 { return after[name] - before[name] }
	if delta("wb-issued") == 0 {
		t.Error("sequential 6-fragment write issued no write-behind fragments")
	}
	if delta("wb-barriers") == 0 {
		t.Error("read-after-write drained no barrier")
	}
	if delta("ra-issued") == 0 {
		t.Error("sequential read issued no readahead")
	}
	if delta("ra-hits") == 0 {
		t.Error("sequential read never consumed prefetched data")
	}

	// The client's stats group must agree with its engine counters,
	// and the traffic above cannot have run without RPCs or without
	// ever having more than one RPC in flight.
	snap := cl.StatsGroup().Snapshot()
	if snap["rpcs"] != cl.RPCs.Load() || snap["rpcs"] == 0 {
		t.Errorf("client rpcs: file %d, engine %d", snap["rpcs"], cl.RPCs.Load())
	}
	if snap["window-max"] != cl.WindowHW.Load() || snap["window-max"] < 2 {
		t.Errorf("window-max %d: pipelined transfer never overlapped RPCs", snap["window-max"])
	}
	if hist := cl.RPCHist.SnapshotHist(); hist.Count == 0 {
		t.Error("rpc latency histogram observed nothing")
	}

	cl.Close()
	dc.Close()
	ac.Close()
	<-srvDone
}

// TestStatsConformanceModules balances the line-discipline module
// counters against ground truth. A chaos scenario runs with the
// batch+compress stack on both ends over a lossy wire; because the
// modules ride above the protocol engine, retransmissions must never
// leak into their counters, so every identity is exact:
//
//   - per end: compress saved + wire bytes == bytes in (conservation);
//   - per end: batch flushes-by-cause sum == wire blocks emitted;
//   - per end: batch wire bytes == payload bytes + 4 per message;
//   - across ends: one side's decoder figures equal the other side's
//     encoder figures, both directions — nothing invented, nothing
//     lost, under loss, duplication, and corruption on the wire;
//   - against the driver: batch bytes-in equals the bytes the traffic
//     generator says it sent.
func TestStatsConformanceModules(t *testing.T) {
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Chaos(proto, 29, 40)
			s.Virtual = true
			s.Mods = []string{"compress", "batch 1024 2ms"}
			rep := Run(s)
			if rep.Failed() {
				t.Fatalf("scenario failed:\n%s", rep)
			}
			d, a := rep.DialMods, rep.AccMods
			if d == nil || a == nil {
				t.Fatal("no module snapshots in the report")
			}
			for name, m := range map[string]map[string]int64{"dial": d, "acc": a} {
				if got := m["compress-saved-bytes"] + m["compress-wire-bytes"]; got != m["compress-bytes-in"] {
					t.Errorf("%s: compress conservation broken: saved+wire=%d, in=%d", name, got, m["compress-bytes-in"])
				}
				flushes := m["batch-flush-cap"] + m["batch-flush-timer"] + m["batch-flush-ctl"] +
					m["batch-flush-hangup"] + m["batch-flush-pop"]
				if flushes != m["batch-wire-blocks"] {
					t.Errorf("%s: flush causes sum %d != wire blocks %d", name, flushes, m["batch-wire-blocks"])
				}
				if got := m["batch-bytes-in"] + 4*m["batch-msgs-in"]; got != m["batch-wire-bytes"] {
					t.Errorf("%s: batch framing books broken: in+hdrs=%d, wire=%d", name, got, m["batch-wire-bytes"])
				}
				if m["batch-errs"] != 0 || m["compress-dec-errs"] != 0 {
					t.Errorf("%s: decode errors on a reliable conversation: batch %d compress %d",
						name, m["batch-errs"], m["compress-dec-errs"])
				}
			}
			// Cross-end conservation, both directions.
			for _, dir := range []struct {
				name   string
				tx, rx map[string]int64
			}{{"forward", d, a}, {"backward", a, d}} {
				if dir.rx["compress-dec-frames"] != dir.tx["compress-blocks-in"] {
					t.Errorf("%s: %d frames decoded, %d encoded", dir.name,
						dir.rx["compress-dec-frames"], dir.tx["compress-blocks-in"])
				}
				if dir.rx["compress-dec-bytes"] != dir.tx["compress-bytes-in"] {
					t.Errorf("%s: %d bytes decoded, %d encoded", dir.name,
						dir.rx["compress-dec-bytes"], dir.tx["compress-bytes-in"])
				}
				if dir.rx["compress-dec-wire-bytes"] != dir.tx["compress-wire-bytes"] {
					t.Errorf("%s: %d wire bytes consumed, %d produced", dir.name,
						dir.rx["compress-dec-wire-bytes"], dir.tx["compress-wire-bytes"])
				}
				if dir.rx["batch-split-frames"] != dir.tx["batch-msgs-in"] {
					t.Errorf("%s: %d frames split out, %d messages framed", dir.name,
						dir.rx["batch-split-frames"], dir.tx["batch-msgs-in"])
				}
				if dir.rx["batch-split-bytes"] != dir.tx["batch-bytes-in"] {
					t.Errorf("%s: %d bytes split out, %d framed", dir.name,
						dir.rx["batch-split-bytes"], dir.tx["batch-bytes-in"])
				}
			}
			// Against the driver's own books: what the generator sent is
			// exactly what entered each batch coalescer.
			if d["batch-bytes-in"] != rep.Forward.SentBytes && s.Proto != Proto9P {
				t.Errorf("dial batch saw %d bytes, generator sent %d", d["batch-bytes-in"], rep.Forward.SentBytes)
			}
			if a["batch-bytes-in"] != rep.Backward.SentBytes && s.Proto != Proto9P {
				t.Errorf("acc batch saw %d bytes, generator sent %d", a["batch-bytes-in"], rep.Backward.SentBytes)
			}
		})
	}
}
