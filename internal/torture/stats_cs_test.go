package torture

// The connection-server half of the stats-conformance suite: /net/cs
// is only a diagnostic tool if its books balance. Every query must
// land in exactly one outcome column — cache hit (negative hits are a
// subset), singleflight wait, miss, or error — and the latency
// histogram must have observed every one of them. The test drives
// mixed traffic through the mounted file tree the way a user would
// (write the query, read the answers, cat the stats) and reconciles
// the file against the engine counters.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cs"
	"repro/internal/ndb"
	"repro/internal/obs"
	"repro/internal/vfs"
)

func confCS(t *testing.T) *cs.Server {
	t.Helper()
	text := "il=9fs port=17008\ntcp=9fs port=564\ntcp=echo port=7\n"
	for i := 0; i < 64; i++ {
		text += fmt.Sprintf("sys=conf%02d ip=10.9.0.%d dk=nj/astro/conf%02d\n", i, i+1, i)
	}
	f, err := ndb.Parse("conf", []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	db := ndb.New(f)
	db.HashAll("sys", "ip", "dk")
	return cs.New(cs.Config{
		SysName: "conf00",
		DB:      db,
		Networks: []cs.Network{
			{Name: "il", Clone: "/net/il/clone", Kind: cs.KindIP},
			{Name: "tcp", Clone: "/net/tcp/clone", Kind: cs.KindIP},
			{Name: "dk", Clone: "/net/dk/clone", Kind: cs.KindDatakit},
		},
	})
}

// csQuery runs one translation through the device file tree: open the
// query file, write the name, read the answer lines back.
func csQuery(t *testing.T, root vfs.Node, q string) ([]string, error) {
	t.Helper()
	n, err := root.Walk("cs")
	if err != nil {
		t.Fatalf("walk cs: %v", err)
	}
	h, err := n.Open(vfs.ORDWR)
	if err != nil {
		t.Fatalf("open cs: %v", err)
	}
	defer h.Close()
	if _, err := h.Write([]byte(q), 0); err != nil {
		return nil, err
	}
	var lines []string
	buf := make([]byte, 512)
	for {
		k, err := h.Read(buf, 0)
		if k == 0 || err != nil {
			return lines, nil
		}
		lines = append(lines, string(buf[:k]))
	}
}

func TestStatsConformanceCS(t *testing.T) {
	s := confCS(t)
	root := s.Node("conformance")

	// Mixed traffic from several workers: hot names (hits), a spread
	// of cold names (misses), dead names asked twice (an error, then
	// negative-cache hits), and malformed queries (errors that must
	// never be cached).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0, 1:
					csQuery(t, root, "net!conf01!9fs")
				case 2:
					csQuery(t, root, fmt.Sprintf("net!conf%02d!9fs", (w*200+i)%64))
				case 3:
					csQuery(t, root, "net!no-such-host!9fs")
				case 4:
					csQuery(t, root, "malformed")
				}
			}
		}(w)
	}
	wg.Wait()

	text := readNodeText(t, root, "stats")
	file := obs.ParseStats(text)

	// Ground truth 1: the books balance. Every query took exactly one
	// exit — and the traffic above exercised every column we can force
	// deterministically (waits need a concurrent miss collision, so
	// they are allowed, not required).
	if file["queries"] == 0 {
		t.Fatalf("no queries recorded:\n%s", text)
	}
	if got := file["cache-hits"] + file["singleflight-waits"] + file["misses"] + file["errors"]; got != file["queries"] {
		t.Errorf("books do not balance: queries %d != hits %d + waits %d + misses %d + errors %d",
			file["queries"], file["cache-hits"], file["singleflight-waits"],
			file["misses"], file["errors"])
	}
	for name, want := range map[string]string{
		"cache-hits": "repeated names never hit the cache",
		"neg-hits":   "repeated dead names never hit the negative cache",
		"misses":     "cold names never missed",
		"errors":     "malformed and dead queries raised no errors",
	} {
		if file[name] == 0 {
			t.Errorf("%s = 0: %s\n%s", name, want, text)
		}
	}
	if file["neg-hits"] > file["cache-hits"] {
		t.Errorf("neg-hits %d exceed cache-hits %d: negative hits are a subset",
			file["neg-hits"], file["cache-hits"])
	}

	// Ground truth 2: the file agrees with the engine counters the
	// code bumped.
	for name, eng := range map[string]int64{
		"queries":            s.Queries.Load(),
		"cache-hits":         s.CacheHits.Load(),
		"neg-hits":           s.NegHits.Load(),
		"singleflight-waits": s.SFWaits.Load(),
		"misses":             s.Misses.Load(),
		"errors":             s.Errors.Load(),
		"evictions":          s.Evictions.Load(),
	} {
		if file[name] != eng {
			t.Errorf("/net/cs/stats %s: file %d, engine %d", name, file[name], eng)
		}
	}

	// Ground truth 3: the latency histogram observed every query, and
	// the file's rendering of it parses back to the engine snapshot.
	hist := obs.ParseHistSnap(text, "lat")
	if hist.Count != file["queries"] {
		t.Errorf("latency histogram saw %d queries, counter says %d", hist.Count, file["queries"])
	}
	if eng := s.Lat.SnapshotHist(); hist.Buckets != eng.Buckets || hist.Count != eng.Count {
		t.Errorf("stats-file histogram diverges from engine: file %+v, engine %+v", hist, eng)
	}
}
