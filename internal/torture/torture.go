// Package torture is the protocol torture harness: it runs real
// conversations — IL, TCP, URP/Datakit, 9P-over-IL, and the Cyclone
// link — across impaired media (loss, duplication, reordering,
// corruption, jitter, bursty loss, partitions; see medium.Impairment)
// and checks the promises the paper's protocols make:
//
//   - exactly-once, in-order delivery: every byte stream arrives
//     byte-identical end to end (checksummed both sides);
//   - corruption never reaches the application: damaged frames and
//     cells die at a CRC or checksum, surfacing as loss the protocol
//     recovers from;
//   - recovery is bounded: retransmission counts stay under a budget
//     proportional to the traffic;
//   - teardown is clean: conversations close without hanging, and the
//     package's leakcheck gate holds goroutines to zero.
//
// Every impairment decision is a pure function of (seed, wire index),
// so any failure replays exactly from its Scenario; Shrink then cuts a
// failing scenario down to a minimal seed+schedule report.
package torture

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/medium"
	"repro/internal/vclock"
)

// Protocols the harness can drive.
const (
	ProtoIL      = "il"
	ProtoTCP     = "tcp"
	ProtoURP     = "urp"
	Proto9P      = "9p"
	ProtoCyclone = "cyclone"
)

// Protos lists every protocol the harness drives, in matrix order.
var Protos = []string{ProtoIL, ProtoTCP, ProtoURP, Proto9P, ProtoCyclone}

// Scenario describes one torture conversation: which protocol, how
// much traffic in each direction, and what the wire does to it. The
// zero values of the traffic knobs get defaults from Run.
type Scenario struct {
	Proto  string // il, tcp, urp, 9p, cyclone
	Seed   int64
	Msgs   int // messages dialer → acceptor (9p: write blocks)
	Back   int // messages acceptor → dialer (9p: ignored, read-back covers it)
	MaxMsg int // largest payload body in bytes

	Loss      float64
	Impair    medium.Impairment
	Latency   time.Duration
	Bandwidth int64 // bytes/second; 0 = unlimited

	// MaxRetrans bounds total retransmissions; 0 derives a budget
	// from the traffic volume.
	MaxRetrans int64
	// Timeout is the watchdog for the whole conversation; 0 = 20s.
	Timeout time.Duration

	// Virtual runs the scenario on a discrete-event clock: the wire's
	// latency and pacing, the protocols' timers, and the watchdog all
	// advance in simulated time, so an hour-long WAN scenario finishes
	// in wall-clock milliseconds and same-seed runs are bit-identical.
	Virtual bool

	// Mods lists line-discipline specs (§2.4.1) pushed bottom-up on
	// both ends of the conversation before traffic starts — e.g.
	// {"compress", "batch 1024 2ms"}. The modules ride above the
	// protocol engine, timed by the scenario's clock; batch and
	// compress restore message boundaries themselves, so even a TCP
	// conversation keeps the message-per-read contract with Mods set.
	Mods []string
}

func (s Scenario) String() string {
	mode := ""
	if s.Virtual {
		mode = " virtual"
	}
	if len(s.Mods) > 0 {
		mode += " mods=[" + strings.Join(s.Mods, ", ") + "]"
	}
	return fmt.Sprintf("proto=%s seed=%d msgs=%d back=%d maxmsg=%d loss=%g impair={%s} lat=%v bw=%d%s",
		s.Proto, s.Seed, s.Msgs, s.Back, s.MaxMsg, s.Loss, s.Impair, s.Latency, s.Bandwidth, mode)
}

// withDefaults fills the zero traffic knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Msgs == 0 {
		s.Msgs = 50
	}
	if s.MaxMsg == 0 {
		s.MaxMsg = 1024
	}
	if s.Timeout == 0 {
		s.Timeout = 20 * time.Second
	}
	if s.MaxRetrans == 0 {
		// Generous but finite: a protocol that needs two orders of
		// magnitude more retransmissions than messages is thrashing,
		// not recovering.
		s.MaxRetrans = 64*int64(s.Msgs+s.Back) + 256
	}
	return s
}

// Violation is one broken invariant.
type Violation struct {
	Invariant string // checksum, order, duplicate, corrupt, timeout, ...
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// DirStats summarizes one direction of the conversation.
type DirStats struct {
	Msgs      int    // messages delivered intact
	SentBytes int64  // bytes written
	RecvBytes int64  // bytes delivered
	SentSum   string // sha256 of the written stream
	RecvSum   string // sha256 of the delivered stream
}

// Report is the outcome of one torture run.
type Report struct {
	Scenario    Scenario
	Forward     DirStats // dialer → acceptor
	Backward    DirStats // acceptor → dialer
	Retransmits int64
	Wire        medium.Counts     // impairment counters, when the medium exposes them
	Schedule    []medium.Decision // recorded decisions (Impair.Record on an ether-based proto)
	Elapsed     time.Duration

	// DialMods and AccMods are the final module-counter snapshots of
	// each end's line-discipline stack, nil unless Scenario.Mods ran.
	// They are taken after the conversation fully drains, so the
	// conformance suite can balance them against the ground truth.
	DialMods, AccMods map[string]int64

	mu         sync.Mutex
	Violations []Violation
}

// violate records a broken invariant (capped so a corrupt stream does
// not produce an unbounded report).
const maxViolations = 32

func (r *Report) violate(invariant, format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, Violation{invariant, fmt.Sprintf(format, args...)})
	}
}

func (r *Report) overloaded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Violations) >= maxViolations
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Violations) > 0
}

// String renders the report in the transcript style of the rest of
// the simulator.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "torture %s: ", r.Scenario.Proto)
	if r.Failed() {
		fmt.Fprintf(&b, "FAIL (%d violations)\n", len(r.Violations))
	} else {
		b.WriteString("ok\n")
	}
	fmt.Fprintf(&b, "  scenario: %s\n", r.Scenario)
	fmt.Fprintf(&b, "  forward:  %d msgs %d bytes sum %.12s\n", r.Forward.Msgs, r.Forward.RecvBytes, r.Forward.RecvSum)
	fmt.Fprintf(&b, "  backward: %d msgs %d bytes sum %.12s\n", r.Backward.Msgs, r.Backward.RecvBytes, r.Backward.RecvSum)
	fmt.Fprintf(&b, "  retransmits %d, wire %s, elapsed %v\n", r.Retransmits, r.Wire, r.Elapsed.Round(time.Millisecond))
	r.mu.Lock()
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  violation %s\n", v)
	}
	r.mu.Unlock()
	return b.String()
}

// Run executes one scenario and reports. It never panics on protocol
// misbehavior: everything the stack does wrong lands in Violations.
// With Scenario.Virtual set, the whole conversation — media, protocol
// engines, watchdog — runs inside one discrete-event clock and
// Elapsed is simulated time.
func Run(s Scenario) *Report {
	s = s.withDefaults()
	rep := &Report{Scenario: s}
	if s.Virtual {
		v := vclock.NewVirtual()
		v.Run(func() { runScenario(v, s, rep) })
	} else {
		runScenario(vclock.Real, s, rep)
	}
	checkInvariants(s, rep)
	return rep
}

func runScenario(ck vclock.Clock, s Scenario, rep *Report) {
	start := ck.Now()
	switch s.Proto {
	case ProtoIL:
		runIL(ck, s, rep)
	case ProtoTCP:
		runTCP(ck, s, rep)
	case ProtoURP:
		runURP(ck, s, rep)
	case Proto9P:
		run9P(ck, s, rep)
	case ProtoCyclone:
		runCyclone(ck, s, rep)
	default:
		rep.violate("scenario", "unknown proto %q", s.Proto)
	}
	rep.Elapsed = ck.Since(start)
}

// checkInvariants applies the run-independent checks: end-to-end
// checksums and the retransmission budget.
func checkInvariants(s Scenario, rep *Report) {
	if rep.Forward.SentSum != rep.Forward.RecvSum {
		rep.violate("checksum", "forward stream: sent %.12s recv %.12s", rep.Forward.SentSum, rep.Forward.RecvSum)
	}
	if rep.Backward.SentSum != rep.Backward.RecvSum {
		rep.violate("checksum", "backward stream: sent %.12s recv %.12s", rep.Backward.SentSum, rep.Backward.RecvSum)
	}
	if rep.Retransmits > s.MaxRetrans {
		rep.violate("retransmit-bound", "%d retransmits exceed budget %d", rep.Retransmits, s.MaxRetrans)
	}
}

// Deterministic payloads: message #seq in direction dir under a seed
// is a pure function, so the receiver regenerates the expected message
// and byte-compares — no shared state, no transmitted manifest, and a
// corrupt, duplicated, or reordered delivery is identified from the
// payload alone.
//
// Layout: magic[1] dir[1] seq[4] len[2] body... with the body bytes
// drawn from a SplitMix64 chain over (seed, dir, seq).
const (
	msgHdrLen = 8
	msgMagic  = 0x9b
)

// mix64 is the SplitMix64 finalizer (same generator the impairment
// model uses, independently keyed).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// message builds payload #seq for direction dir.
func message(seed int64, dir byte, seq, maxMsg int) []byte {
	if maxMsg < 1 {
		maxMsg = 1
	}
	base := mix64(uint64(seed)) ^ mix64(uint64(seq)<<8|uint64(dir)|0xd1e)
	n := 1 + int(mix64(base)%uint64(maxMsg))
	msg := make([]byte, msgHdrLen+n)
	msg[0] = msgMagic
	msg[1] = dir
	binary.BigEndian.PutUint32(msg[2:], uint32(seq))
	binary.BigEndian.PutUint16(msg[6:], uint16(len(msg)))
	var w uint64
	for i := msgHdrLen; i < len(msg); i++ {
		if (i-msgHdrLen)%8 == 0 {
			w = mix64(base + uint64(i))
		}
		msg[i] = byte(w)
		w >>= 8
	}
	return msg
}

// streamSum accumulates a sha256 over a byte stream.
type streamSum struct {
	h interface {
		Write(p []byte) (int, error)
		Sum(b []byte) []byte
	}
	n int64
}

func newStreamSum() *streamSum { return &streamSum{h: sha256.New()} }

func (s *streamSum) add(p []byte) {
	s.h.Write(p)
	s.n += int64(len(p))
}

func (s *streamSum) sum() string { return hex.EncodeToString(s.h.Sum(nil)) }
