package torture

import (
	"reflect"
	"testing"
)

// TestChaosDeterminism is the same-seed identity gate for the virtual
// clock: each chaos scenario runs twice on its own discrete-event
// clock, and everything observable must be bit-identical — the
// recorded impairment schedule (the decision stream is a pure function
// of seed and wire index, and virtual time makes the wire indices
// themselves deterministic), the wire counters, both direction
// checksums, the retransmission count, the simulated elapsed time, and
// the rendered report.
func TestChaosDeterminism(t *testing.T) {
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Chaos(proto, 7, 24)
			s.Virtual = true
			s.Impair.Record = true
			a := Run(s)
			b := Run(s)
			if a.Failed() {
				t.Fatalf("first run failed:\n%s", a)
			}
			if b.Failed() {
				t.Fatalf("second run failed:\n%s", b)
			}
			if !reflect.DeepEqual(a.Schedule, b.Schedule) {
				t.Errorf("impairment schedules differ: %d vs %d decisions", len(a.Schedule), len(b.Schedule))
			}
			if !reflect.DeepEqual(a.Wire, b.Wire) {
				t.Errorf("wire counts differ:\n  %v\n  %v", a.Wire, b.Wire)
			}
			if a.Forward != b.Forward || a.Backward != b.Backward {
				t.Errorf("direction stats differ:\n  %+v %+v\n  %+v %+v", a.Forward, a.Backward, b.Forward, b.Backward)
			}
			if a.Retransmits != b.Retransmits {
				t.Errorf("retransmits differ: %d vs %d", a.Retransmits, b.Retransmits)
			}
			if a.Elapsed != b.Elapsed {
				t.Errorf("simulated elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
			}
			if a.String() != b.String() {
				t.Errorf("rendered reports differ:\n%s\n%s", a, b)
			}
		})
	}
}

// TestChaosVirtualMatchesReal checks the virtual clock does not change
// what the protocols deliver: a chaos scenario passes its invariants
// identically under both clocks (the wire schedules differ — real time
// makes wire indices racy — but the end-to-end promises must hold).
func TestChaosVirtualMatchesReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock half is slow; covered by the virtual half elsewhere")
	}
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Chaos(proto, 3, 16)
			real := Run(s)
			if real.Failed() {
				t.Fatalf("real-clock run failed:\n%s", real)
			}
			s.Virtual = true
			virt := Run(s)
			if virt.Failed() {
				t.Fatalf("virtual-clock run failed:\n%s", virt)
			}
		})
	}
}

// TestChaosDeterminismModules is the same-seed identity gate with the
// line-discipline stack pushed on both ends. The modules take their
// flush timers from the conversation's clock and nothing else, so a
// dressed virtual scenario must stay bit-identical run to run — the
// wire schedule, the direction checksums, and every module counter on
// both ends, across 32 seeds per protocol.
func TestChaosDeterminismModules(t *testing.T) {
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 32; seed++ {
				s := Chaos(proto, seed, 12)
				s.Virtual = true
				s.Impair.Record = true
				s.Mods = []string{"compress", "batch 1024 2ms"}
				a := Run(s)
				b := Run(s)
				if a.Failed() {
					t.Fatalf("seed %d first run failed:\n%s", seed, a)
				}
				if b.Failed() {
					t.Fatalf("seed %d second run failed:\n%s", seed, b)
				}
				if !reflect.DeepEqual(a.Schedule, b.Schedule) {
					t.Errorf("seed %d: impairment schedules differ: %d vs %d decisions", seed, len(a.Schedule), len(b.Schedule))
				}
				if a.Forward != b.Forward || a.Backward != b.Backward {
					t.Errorf("seed %d: direction stats differ:\n  %+v %+v\n  %+v %+v", seed, a.Forward, a.Backward, b.Forward, b.Backward)
				}
				if !reflect.DeepEqual(a.DialMods, b.DialMods) || !reflect.DeepEqual(a.AccMods, b.AccMods) {
					t.Errorf("seed %d: module counters differ:\n  %v %v\n  %v %v", seed, a.DialMods, a.AccMods, b.DialMods, b.AccMods)
				}
				if a.Elapsed != b.Elapsed {
					t.Errorf("seed %d: simulated elapsed differs: %v vs %v", seed, a.Elapsed, b.Elapsed)
				}
				if a.String() != b.String() {
					t.Errorf("seed %d: rendered reports differ:\n%s\n%s", seed, a, b)
				}
			}
		})
	}
}
