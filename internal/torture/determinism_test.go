package torture

import (
	"reflect"
	"testing"
)

// TestChaosDeterminism is the same-seed identity gate for the virtual
// clock: each chaos scenario runs twice on its own discrete-event
// clock, and everything observable must be bit-identical — the
// recorded impairment schedule (the decision stream is a pure function
// of seed and wire index, and virtual time makes the wire indices
// themselves deterministic), the wire counters, both direction
// checksums, the retransmission count, the simulated elapsed time, and
// the rendered report.
func TestChaosDeterminism(t *testing.T) {
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Chaos(proto, 7, 24)
			s.Virtual = true
			s.Impair.Record = true
			a := Run(s)
			b := Run(s)
			if a.Failed() {
				t.Fatalf("first run failed:\n%s", a)
			}
			if b.Failed() {
				t.Fatalf("second run failed:\n%s", b)
			}
			if !reflect.DeepEqual(a.Schedule, b.Schedule) {
				t.Errorf("impairment schedules differ: %d vs %d decisions", len(a.Schedule), len(b.Schedule))
			}
			if !reflect.DeepEqual(a.Wire, b.Wire) {
				t.Errorf("wire counts differ:\n  %v\n  %v", a.Wire, b.Wire)
			}
			if a.Forward != b.Forward || a.Backward != b.Backward {
				t.Errorf("direction stats differ:\n  %+v %+v\n  %+v %+v", a.Forward, a.Backward, b.Forward, b.Backward)
			}
			if a.Retransmits != b.Retransmits {
				t.Errorf("retransmits differ: %d vs %d", a.Retransmits, b.Retransmits)
			}
			if a.Elapsed != b.Elapsed {
				t.Errorf("simulated elapsed differs: %v vs %v", a.Elapsed, b.Elapsed)
			}
			if a.String() != b.String() {
				t.Errorf("rendered reports differ:\n%s\n%s", a, b)
			}
		})
	}
}

// TestChaosVirtualMatchesReal checks the virtual clock does not change
// what the protocols deliver: a chaos scenario passes its invariants
// identically under both clocks (the wire schedules differ — real time
// makes wire indices racy — but the end-to-end promises must hold).
func TestChaosVirtualMatchesReal(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock half is slow; covered by the virtual half elsewhere")
	}
	for _, proto := range Protos {
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			s := Chaos(proto, 3, 16)
			real := Run(s)
			if real.Failed() {
				t.Fatalf("real-clock run failed:\n%s", real)
			}
			s.Virtual = true
			virt := Run(s)
			if virt.Failed() {
				t.Fatalf("virtual-clock run failed:\n%s", virt)
			}
		})
	}
}
