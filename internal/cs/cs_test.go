package cs

import (
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/ndb"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

const testNdb = `ipnet=lab ip=135.104.0.0 ipmask=255.255.255.0
	auth=p9auth
sys=helix ip=135.104.9.31 dk=nj/astro/helix dom=helix.research.bell-labs.com
sys=p9auth ip=135.104.9.34 dk=nj/astro/p9auth
sys=self ip=135.104.9.50
sys=dkonly dk=nj/astro/dkonly
tcp=echo port=7
tcp=login port=513
il=9fs port=17008
il=rexauth port=17021
`

func newServer(t *testing.T, probe func(string) bool) *Server {
	t.Helper()
	f, err := ndb.Parse("local", []byte(testNdb))
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{
		SysName: "self",
		DB:      ndb.New(f),
		Networks: []Network{
			{Name: "il", Clone: "/net/il/clone", Kind: KindIP},
			{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP},
			{Name: "dk", Clone: "/net/dk/clone", Kind: KindDatakit},
		},
		Probe: probe,
	})
}

func TestNetWildcardOrdersByPreference(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines %v", lines)
	}
	if lines[0] != "/net/il/clone 135.104.9.31!17008" {
		t.Errorf("first line %q", lines[0])
	}
	if lines[1] != "/net/dk/clone nj/astro/helix!9fs" {
		t.Errorf("second line %q", lines[1])
	}
}

func TestSpecificNetwork(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "tcp!helix!echo")
	if err != nil || len(lines) != 1 || lines[0] != "/net/tcp/clone 135.104.9.31!7" {
		t.Errorf("tcp translate: %v, %v", lines, err)
	}
	if _, err := tr(s, "fddi!helix!echo"); !vfs.SameError(err, vfs.ErrNoNet) {
		t.Errorf("unknown network error = %v", err)
	}
}

func TestLiteralAddressesPassThrough(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "tcp!135.104.117.5!513")
	if err != nil || lines[0] != "/net/tcp/clone 135.104.117.5!513" {
		t.Errorf("literal IP: %v, %v", lines, err)
	}
	// Literal Datakit path.
	lines, err = tr(s, "dk!nj/astro/unlisted!login")
	if err != nil || lines[0] != "/net/dk/clone nj/astro/unlisted!login" {
		t.Errorf("literal dk: %v, %v", lines, err)
	}
}

func TestMetaNameDollarAttr(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "net!$auth!rexauth")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "/net/il/clone 135.104.9.34!17021") {
		t.Errorf("$auth lines: %v", lines)
	}
	if !strings.Contains(joined, "/net/dk/clone nj/astro/p9auth!rexauth") {
		t.Errorf("$auth dk line missing: %v", lines)
	}
	if _, err := tr(s, "net!$nosuch!echo"); err == nil {
		t.Error("unknown attribute resolved")
	}
}

func TestAnnounceForm(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "tcp!*!echo")
	if err != nil || len(lines) != 1 || lines[0] != "/net/tcp/clone *!7" {
		t.Errorf("announce translate: %v, %v", lines, err)
	}
	lines, err = tr(s, "dk!*!9fs")
	if err != nil || lines[0] != "/net/dk/clone *!9fs" {
		t.Errorf("dk announce: %v, %v", lines, err)
	}
}

func TestHostsNotOnNetworkAreSkipped(t *testing.T) {
	s := newServer(t, nil)
	// dkonly has no ip=: only the dk line appears.
	lines, err := tr(s, "net!dkonly!9fs")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "/net/il/") || strings.HasPrefix(l, "/net/tcp/") {
			t.Errorf("dk-only host offered on IP: %v", lines)
		}
	}
	if _, err := tr(s, "tcp!dkonly!echo"); err == nil {
		t.Error("dk-only host translated on tcp")
	}
}

func TestUnknownServiceAndHost(t *testing.T) {
	s := newServer(t, nil)
	if _, err := tr(s, "tcp!helix!frobnicate"); err == nil {
		t.Error("unknown service translated")
	}
	if _, err := tr(s, "tcp!ghost!echo"); err == nil {
		t.Error("unknown host translated")
	}
	if _, err := tr(s, "justonepart"); err == nil {
		t.Error("malformed query accepted")
	}
	if _, err := tr(s, "tcp!!echo"); err == nil {
		t.Error("empty host accepted")
	}
}

func TestProbeFiltersNetworks(t *testing.T) {
	// Only dk "exists": IP networks disappear from answers.
	s := newServer(t, func(clone string) bool {
		return strings.HasPrefix(clone, "/net/dk/")
	})
	lines, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != "/net/dk/clone nj/astro/helix!9fs" {
		t.Errorf("probed lines %v", lines)
	}
	if _, err := tr(s, "tcp!helix!echo"); !vfs.SameError(err, vfs.ErrNoNet) {
		t.Errorf("probed-out network error = %v", err)
	}
}

func TestDNSFallbackForDomains(t *testing.T) {
	f, _ := ndb.Parse("local", []byte(testNdb))
	resolved := ""
	s := New(Config{
		SysName:  "self",
		DB:       ndb.New(f),
		Networks: []Network{{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP}},
		Resolve: func(domain string) ([]ip.Addr, error) {
			resolved = domain
			return []ip.Addr{{1, 2, 3, 4}}, nil
		},
	})
	// A name in the database resolves without DNS.
	if _, err := tr(s, "tcp!helix.research.bell-labs.com!echo"); err != nil {
		t.Fatal(err)
	}
	if resolved != "" {
		t.Error("database name went to DNS")
	}
	// A name only DNS knows goes through Resolve.
	lines, err := tr(s, "tcp!ai.mit.edu!echo")
	if err != nil || lines[0] != "/net/tcp/clone 1.2.3.4!7" {
		t.Errorf("dns-resolved translate: %v, %v", lines, err)
	}
	if resolved != "ai.mit.edu" {
		t.Errorf("resolver saw %q", resolved)
	}
}

func TestNetCsFileInterface(t *testing.T) {
	s := newServer(t, nil)
	nsp := ns.New("self", ramfs.New("self").Root())
	nsp.MountNode(s.Node("self"), "/net/cs", ns.MREPL)
	fd, err := nsp.Open("/net/cs/cs", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if _, err := fd.WriteString("net!helix!9fs"); err != nil {
		t.Fatal(err)
	}
	// One line per read.
	buf := make([]byte, 256)
	n, _ := fd.ReadAt(buf, 0)
	if strings.TrimSpace(string(buf[:n])) != "/net/il/clone 135.104.9.31!17008" {
		t.Errorf("first cs line %q", buf[:n])
	}
	n, _ = fd.ReadAt(buf, 0)
	if strings.TrimSpace(string(buf[:n])) != "/net/dk/clone nj/astro/helix!9fs" {
		t.Errorf("second cs line %q", buf[:n])
	}
	if n, _ := fd.ReadAt(buf, 0); n != 0 {
		t.Error("cs kept answering after the last line")
	}
	// Errors surface on the write.
	if _, err := fd.WriteString("tcp!ghost!echo"); err == nil {
		t.Error("bad query write succeeded")
	}
}

func TestMultiHomedHostGetsAllAddresses(t *testing.T) {
	multi := testNdb + "sys=gateway ip=135.104.9.60\n\tip=18.26.0.1\n"
	f, _ := ndb.Parse("local", []byte(multi))
	s := New(Config{
		SysName:  "self",
		DB:       ndb.New(f),
		Networks: []Network{{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP}},
	})
	lines, err := tr(s, "tcp!gateway!login")
	if err != nil || len(lines) != 2 {
		t.Fatalf("multihomed lines %v, %v", lines, err)
	}
	if lines[0] != "/net/tcp/clone 135.104.9.60!513" || lines[1] != "/net/tcp/clone 18.26.0.1!513" {
		t.Errorf("multihomed addresses %v", lines)
	}
}

// tr flattens a translation for the []string-shaped assertions above.
func tr(s *Server, q string) ([]string, error) {
	a, err := s.Translate(q)
	return a.Lines(), err
}
