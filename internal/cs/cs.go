// Package cs implements the connection server of §4.2: "On each
// system a user level connection server process, CS, translates
// symbolic names to addresses. ... CS is a file server serving a
// single file, /net/cs. A client writes a symbolic name to /net/cs
// then reads one line for each matching destination reachable from
// this system. The lines are of the form filename message, where
// filename is the path of the clone file to open for a new connection
// and message is the string to write to it to make the connection."
//
// Supported meta-names, as in the paper:
//
//   - the special network name "net" selects any network in common
//     between source and destination supporting the service;
//   - a host of the form $attr names a database attribute, resolved
//     most-closely-associated to the source host (system, then
//     subnetwork, then network);
//   - a host of "*" produces announcement strings.
//
// For domain names CS first consults DNS and falls back to its own
// database tables, per the paper.
//
// CS is on the critical path of every dial, so the answer cache is
// built for storms: reads are lock-free (sharded atomic.Pointer
// snapshots, republished on write — the ether-demux pattern), entries
// carry a TTL and the ndb version they were computed against (an
// ndb.Replace invalidates everything instantly), ErrNotExist answers
// are negatively cached, eviction is a per-shard second-chance clock,
// and concurrent identical misses collapse into one computation
// (singleflight). A cache hit performs no allocation and takes no
// lock.
package cs

import (
	"strings"
	"sync"
	"time"

	"repro/internal/devtree"
	"repro/internal/ip"
	"repro/internal/ndb"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// NetworkKind distinguishes addressing families.
type NetworkKind int

const (
	// KindIP networks (tcp, udp, il) address by ip!port.
	KindIP NetworkKind = iota
	// KindDatakit networks address by hierarchical name!service.
	KindDatakit
	// KindPoint networks (cyclone) are point-to-point: any address.
	KindPoint
)

// Network describes one network available on this machine, in
// preference order.
type Network struct {
	Name  string // protocol directory name: "il", "tcp", "dk", ...
	Clone string // path of the clone file: "/net/il/clone"
	Kind  NetworkKind
}

// Config is the connection server's local knowledge. It is immutable
// after New.
type Config struct {
	// SysName is this machine's name in the database.
	SysName string
	// DB is the network database.
	DB *ndb.DB
	// Networks lists the networks this machine knows how to speak, in
	// preference order (the paper's CS answers IL before Datakit).
	// At most 64: the cache keys answers by a reachability bitmask.
	Networks []Network
	// Probe reports whether a clone file is currently reachable in
	// the machine's name space. Because imported networks appear in
	// /net like local ones (§6.1), a Datakit-only terminal that has
	// imported /net from a gateway starts answering tcp! queries the
	// moment the import lands. nil means all listed networks are
	// available.
	Probe func(clonePath string) bool
	// Resolve consults DNS for a domain name; nil or failing falls
	// back to the database, as the paper specifies.
	Resolve func(domain string) ([]ip.Addr, error)
	// Clock drives TTL expiry and the latency histogram; nil uses the
	// real clock. Under vclock.Virtual, cache expiry and singleflight
	// waits run on simulated time, so storm runs stay deterministic.
	Clock vclock.Clock
	// TTL bounds how long a positive answer is served without
	// revalidation (default DefaultTTL).
	TTL time.Duration
	// NegTTL bounds negative (ErrNotExist) answers (default
	// DefaultNegTTL).
	NegTTL time.Duration
	// CacheEntries bounds the total cached answers across all shards
	// (default DefaultCacheEntries).
	CacheEntries int
}

// Cache defaults: a translation is cheap to recompute, so the TTLs
// exist to bound staleness against DNS (ndb staleness is handled
// exactly by the version check), and the capacity to bound memory.
const (
	DefaultTTL          = 60 * time.Second
	DefaultNegTTL       = 5 * time.Second
	DefaultCacheEntries = 4096
)

// Answer is one translation result: destination lines in network
// preference order. The zero Answer is empty. Answers share the
// cache's immutable line slices, so Line and Len allocate nothing;
// Lines copies.
type Answer struct {
	lines []string
}

// Len returns the number of destination lines.
func (a Answer) Len() int { return len(a.lines) }

// Line returns the i'th destination line.
func (a Answer) Line(i int) string { return a.lines[i] }

// Lines returns a copy of the destination lines.
func (a Answer) Lines() []string { return append([]string(nil), a.lines...) }

// Server is the connection server.
type Server struct {
	cfg    Config
	clock  vclock.Clock
	ttl    time.Duration
	negTTL time.Duration

	// perShard is the per-shard entry capacity; shards evict by
	// second-chance clock past it.
	perShard int
	shards   [nShards]shard

	fmu     sync.Mutex // guards flights
	flights map[ckey]*flight

	// Counters and the event ring: CS is a user-level file server, so
	// its observability rides the same obs primitives as the kernel
	// protocol devices. Every query lands in exactly one of CacheHits,
	// SFWaits, Misses, or Errors, so the stats file balances:
	// queries == cache-hits + singleflight-waits + misses + errors.
	Queries   obs.Counter
	CacheHits obs.Counter // lock-free cache hits (NegHits ⊆ CacheHits)
	NegHits   obs.Counter // hits on negatively cached ErrNotExist
	SFWaits   obs.Counter // misses that joined another caller's flight
	Misses    obs.Counter // led a computation that produced an answer
	Errors    obs.Counter // bad query, no network, or a failed computation
	Evictions obs.Counter // entries evicted by the clock sweep
	Lat       obs.Hist    // per-query Translate latency
	trace     obs.Ring
	stats     *obs.Group
}

// New creates a connection server.
func New(cfg Config) *Server {
	if len(cfg.Networks) > 64 {
		panic("cs: more than 64 networks")
	}
	s := &Server{
		cfg:     cfg,
		clock:   vclock.Or(cfg.Clock),
		ttl:     cfg.TTL,
		negTTL:  cfg.NegTTL,
		flights: make(map[ckey]*flight),
	}
	if s.ttl <= 0 {
		s.ttl = DefaultTTL
	}
	if s.negTTL <= 0 {
		s.negTTL = DefaultNegTTL
	}
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	s.perShard = (entries + nShards - 1) / nShards
	if s.perShard < 1 {
		s.perShard = 1
	}
	s.stats = new(obs.Group).
		AddCounter("queries", &s.Queries).
		AddCounter("cache-hits", &s.CacheHits).
		AddCounter("neg-hits", &s.NegHits).
		AddCounter("singleflight-waits", &s.SFWaits).
		AddCounter("misses", &s.Misses).
		AddCounter("errors", &s.Errors).
		AddCounter("evictions", &s.Evictions).
		Add("entries", func() int64 {
			var n int64
			for i := range s.shards {
				n += int64(s.shards[i].entries())
			}
			return n
		}).
		Add("shards", func() int64 { return nShards })
	s.stats.AddHist("lat", &s.Lat)
	return s
}

// StatsGroup exposes the server's counters.
func (s *Server) StatsGroup() *obs.Group { return s.stats }

// Trace implements obs.Tracer: the server-wide query event ring.
func (s *Server) Trace() *obs.Ring { return &s.trace }

// dbVersion reads the database's combined version stamp — a few
// atomic loads, no locks.
func (s *Server) dbVersion() int64 {
	if s.cfg.DB == nil {
		return 0
	}
	return s.cfg.DB.Version()
}

// Translate resolves one symbolic name into destination lines. The
// hot path — a cache hit — is lock-free and allocation-free.
func (s *Server) Translate(query string) (Answer, error) {
	start := s.clock.Now()
	defer func() { s.Lat.Observe(s.clock.Since(start)) }()
	s.Queries.Inc()
	s.trace.Emit(obs.EvQuery, int64(len(query)), 0)

	q := trimSpace(query)
	netName, host, service, ok := splitQuery(q)
	if !ok {
		return Answer{}, s.fail(vfs.ErrBadArg)
	}
	mask := s.reachable(netName)
	if mask == 0 {
		return Answer{}, s.fail(vfs.ErrNoNet)
	}

	k := ckey{q: q, nets: mask}
	sh := s.shardFor(q)
	// ver is read before the cache probe and before any computation:
	// an ndb.Replace racing either leaves the entry stale, never
	// wrong. Key building allocates nothing — the query substring and
	// the reachability mask are the key.
	ver := s.dbVersion()
	now := start.UnixNano()
	if e := sh.lookup(k); e != nil && e.ver == ver && now < e.expire {
		e.used.Store(true)
		s.CacheHits.Inc()
		if e.err != nil {
			s.NegHits.Inc()
			s.trace.Emit(obs.EvCacheHit, 0, 1)
			return Answer{}, e.err
		}
		s.trace.Emit(obs.EvCacheHit, int64(len(e.lines)), 0)
		return Answer{lines: e.lines}, nil
	}

	lines, err, led := s.flightDo(k, sh, ver, now, func() ([]string, error) {
		return s.compute(netName, host, service, mask)
	})
	if !led {
		s.SFWaits.Inc()
		s.trace.Emit(obs.EvWait, int64(len(lines)), 0)
		return Answer{lines: lines}, err
	}
	if err != nil {
		return Answer{}, s.fail(err)
	}
	s.Misses.Inc()
	s.trace.Emit(obs.EvAnswer, int64(len(lines)), 0)
	return Answer{lines: lines}, nil
}

// fail counts and traces a failed translation.
func (s *Server) fail(err error) error {
	s.Errors.Inc()
	s.trace.Emit(obs.EvError, 0, 0)
	return err
}

// trimSpace is strings.TrimSpace restricted to ASCII space/tab/newline
// (all a query can carry), kept inlineable and allocation-free.
func trimSpace(s string) string {
	lo, hi := 0, len(s)
	for lo < hi && (s[lo] == ' ' || s[lo] == '\t' || s[lo] == '\n' || s[lo] == '\r') {
		lo++
	}
	for hi > lo && (s[hi-1] == ' ' || s[hi-1] == '\t' || s[hi-1] == '\n' || s[hi-1] == '\r') {
		hi--
	}
	return s[lo:hi]
}

// splitQuery splits net!host!service by byte indexing — no Split, no
// allocation. Extra !-separated fields beyond the service are ignored,
// as the Split-based parser did.
func splitQuery(q string) (netName, host, service string, ok bool) {
	i := strings.IndexByte(q, '!')
	if i < 0 {
		return "", "", "", false
	}
	netName = q[:i]
	rest := q[i+1:]
	if j := strings.IndexByte(rest, '!'); j >= 0 {
		host, service = rest[:j], rest[j+1:]
		if k := strings.IndexByte(service, '!'); k >= 0 {
			service = service[:k]
		}
	} else {
		host = rest
	}
	if host == "" {
		return "", "", "", false
	}
	return netName, host, service, true
}

// reachable returns the bitmask (over cfg.Networks indices) of
// networks matching netName that currently probe reachable.
func (s *Server) reachable(netName string) uint64 {
	var mask uint64
	for i := range s.cfg.Networks {
		n := &s.cfg.Networks[i]
		if netName != "net" && n.Name != netName {
			continue
		}
		if s.cfg.Probe == nil || s.cfg.Probe(n.Clone) {
			mask |= uint64(1) << uint(i)
		}
	}
	return mask
}

// compute performs the actual translation: the $attr rewrite (§4.2's
// most-closely-associated search) and the per-network address walk.
// Only the singleflight leader runs it.
func (s *Server) compute(netName, host, service string, mask uint64) ([]string, error) {
	// $attr: search the source system, then its subnetwork, then its
	// network. Resolved inside the computation — after the cache key
	// is fixed — so the key never depends on a rewrite the database
	// could change; the version stamp keeps the cached answer honest.
	if strings.HasPrefix(host, "$") {
		v, ok := s.cfg.DB.IPInfo(s.cfg.SysName, host[1:])
		if !ok {
			return nil, vfs.ErrNotExist
		}
		host = v
	}
	var lines []string
	for i := range s.cfg.Networks {
		if mask&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		n := &s.cfg.Networks[i]
		for _, addr := range s.hostAddrs(n, host, service) {
			lines = append(lines, n.Clone+" "+addr)
		}
	}
	if len(lines) == 0 {
		return nil, vfs.ErrNotExist
	}
	return lines, nil
}

// hostAddrs produces the address strings for host/service on network n.
func (s *Server) hostAddrs(n *Network, host, service string) []string {
	cfg := &s.cfg
	switch n.Kind {
	case KindPoint:
		// Point-to-point: the wire is the address.
		return []string{host + "!" + service}
	case KindDatakit:
		if host == "*" {
			if service == "" {
				return []string{"*"}
			}
			return []string{"*!" + service}
		}
		dest := host
		if e, ok := cfg.DB.FindSystem(host); ok {
			if dk, okd := e.Get("dk"); okd {
				dest = dk
			} else {
				return nil // not reachable over Datakit
			}
		} else if !strings.Contains(host, "/") {
			return nil // unknown and not a literal dk address
		}
		if service == "" {
			return nil
		}
		return []string{dest + "!" + service}
	default: // KindIP
		port := service
		if service != "" {
			p, ok := cfg.DB.ServicePort(n.Name, service)
			if !ok {
				return nil
			}
			port = p
		}
		if host == "*" {
			if port == "" {
				// No service: announce all services not
				// explicitly announced (§5.2).
				return []string{"*"}
			}
			return []string{"*!" + port}
		}
		var addrs []string
		add := func(a string) {
			if port != "" {
				addrs = append(addrs, a+"!"+port)
			} else {
				addrs = append(addrs, a)
			}
		}
		// Literal IP address.
		if a, err := ip.ParseAddr(host); err == nil {
			add(a.String())
			return addrs
		}
		// Database lookup by any name.
		if e, ok := cfg.DB.FindSystem(host); ok {
			for _, v := range e.GetAll("ip") {
				add(v)
			}
			return addrs
		}
		// Domain names go to DNS first; "if no DNS is reachable,
		// CS relies on its own tables" — and here the tables have
		// already missed, so DNS is the last resort.
		if cfg.Resolve != nil && strings.Contains(host, ".") {
			if ips, err := cfg.Resolve(host); err == nil {
				for _, a := range ips {
					add(a.String())
				}
			}
		}
		return addrs
	}
}

// Node returns the /net/cs directory: "cs" is the query file of §4.2
// (write a symbolic name, read destination lines), "stats" the
// server's counters and latency histogram in the same shape as the
// protocol devices' stats files.
func (s *Server) Node(owner string) vfs.Node {
	query := &devtree.FileNode{
		Entry: devtree.MkFile("cs", owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return &csHandle{srv: s}, nil
		},
	}
	stats := devtree.TextFile(devtree.MkFile("stats", owner, 0444),
		func() (string, error) { return s.stats.Render(), nil })
	return devtree.StaticDir(devtree.MkDir("cs", owner, 0555),
		map[string]vfs.Node{"cs": query, "stats": stats},
		[]string{"cs", "stats"})
}

// csHandle is one client's query context: a write translates, reads
// return one line each.
type csHandle struct {
	srv *Server

	mu  sync.Mutex
	ans Answer
	idx int    // next line to serve
	rem string // unread tail of the current line: short reads resume
}

var _ vfs.Handle = (*csHandle)(nil)

// Write implements vfs.Handle.
func (h *csHandle) Write(p []byte, off int64) (int, error) {
	ans, err := h.srv.Translate(string(p))
	h.mu.Lock()
	defer h.mu.Unlock()
	h.idx, h.rem = 0, ""
	if err != nil {
		h.ans = Answer{}
		return 0, err
	}
	h.ans = ans
	return len(p), nil
}

// Read implements vfs.Handle: one destination line per read. A buffer
// shorter than the line gets the prefix that fits and the next read
// resumes mid-line, so no byte of an address is ever silently lost.
func (h *csHandle) Read(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rem == "" {
		if h.idx >= h.ans.Len() {
			return 0, nil
		}
		h.rem = h.ans.Line(h.idx) + "\n"
		h.idx++
	}
	n := copy(p, h.rem)
	h.rem = h.rem[n:]
	return n, nil
}

// Close implements vfs.Handle.
func (h *csHandle) Close() error { return nil }
