// Package cs implements the connection server of §4.2: "On each
// system a user level connection server process, CS, translates
// symbolic names to addresses. ... CS is a file server serving a
// single file, /net/cs. A client writes a symbolic name to /net/cs
// then reads one line for each matching destination reachable from
// this system. The lines are of the form filename message, where
// filename is the path of the clone file to open for a new connection
// and message is the string to write to it to make the connection."
//
// Supported meta-names, as in the paper:
//
//   - the special network name "net" selects any network in common
//     between source and destination supporting the service;
//   - a host of the form $attr names a database attribute, resolved
//     most-closely-associated to the source host (system, then
//     subnetwork, then network);
//   - a host of "*" produces announcement strings.
//
// For domain names CS first consults DNS and falls back to its own
// database tables, per the paper.
package cs

import (
	"strings"
	"sync"

	"repro/internal/devtree"
	"repro/internal/ip"
	"repro/internal/ndb"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// NetworkKind distinguishes addressing families.
type NetworkKind int

const (
	// KindIP networks (tcp, udp, il) address by ip!port.
	KindIP NetworkKind = iota
	// KindDatakit networks address by hierarchical name!service.
	KindDatakit
	// KindPoint networks (cyclone) are point-to-point: any address.
	KindPoint
)

// Network describes one network available on this machine, in
// preference order.
type Network struct {
	Name  string // protocol directory name: "il", "tcp", "dk", ...
	Clone string // path of the clone file: "/net/il/clone"
	Kind  NetworkKind
}

// Config is the connection server's local knowledge.
type Config struct {
	// SysName is this machine's name in the database.
	SysName string
	// DB is the network database.
	DB *ndb.DB
	// Networks lists the networks this machine knows how to speak, in
	// preference order (the paper's CS answers IL before Datakit).
	Networks []Network
	// Probe reports whether a clone file is currently reachable in
	// the machine's name space. Because imported networks appear in
	// /net like local ones (§6.1), a Datakit-only terminal that has
	// imported /net from a gateway starts answering tcp! queries the
	// moment the import lands. nil means all listed networks are
	// available.
	Probe func(clonePath string) bool
	// Resolve consults DNS for a domain name; nil or failing falls
	// back to the database, as the paper specifies.
	Resolve func(domain string) ([]ip.Addr, error)
}

// cacheCap bounds the answer cache; past it the cache is dropped
// wholesale (translations are cheap enough that simplicity wins over
// an eviction order).
const cacheCap = 128

// Server is the connection server.
type Server struct {
	mu    sync.RWMutex
	cfg   Config
	cache map[string][]string

	// Counters and the event ring: CS is a user-level file server, so
	// its observability rides the same obs primitives as the kernel
	// protocol devices.
	Queries   obs.Counter
	CacheHits obs.Counter
	Answers   obs.Counter
	Errors    obs.Counter
	trace     obs.Ring
	stats     *obs.Group
}

// New creates a connection server.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, cache: make(map[string][]string)}
	s.stats = new(obs.Group).
		AddCounter("queries", &s.Queries).
		AddCounter("cache-hits", &s.CacheHits).
		AddCounter("answers", &s.Answers).
		AddCounter("errors", &s.Errors)
	return s
}

// StatsGroup exposes the server's counters.
func (s *Server) StatsGroup() *obs.Group { return s.stats }

// Trace implements obs.Tracer: the server-wide query event ring.
func (s *Server) Trace() *obs.Ring { return &s.trace }

// Translate resolves one symbolic name into destination lines.
func (s *Server) Translate(query string) ([]string, error) {
	s.mu.RLock()
	cfg := s.cfg
	s.mu.RUnlock()
	s.Queries.Inc()
	s.trace.Emit(obs.EvQuery, int64(len(query)), 0)

	parts := strings.Split(strings.TrimSpace(query), "!")
	if len(parts) < 2 {
		return nil, s.fail(vfs.ErrBadArg)
	}
	netName := parts[0]
	host := parts[1]
	service := ""
	if len(parts) >= 3 {
		service = parts[2]
	}
	if host == "" {
		return nil, s.fail(vfs.ErrBadArg)
	}

	available := func(n Network) bool {
		return cfg.Probe == nil || cfg.Probe(n.Clone)
	}
	var nets []Network
	if netName == "net" {
		for _, n := range cfg.Networks {
			if available(n) {
				nets = append(nets, n)
			}
		}
	} else {
		for _, n := range cfg.Networks {
			if n.Name == netName && available(n) {
				nets = append(nets, n)
			}
		}
	}
	if len(nets) == 0 {
		return nil, s.fail(vfs.ErrNoNet)
	}

	// Answer cache: the key is the query plus the set of networks that
	// probed reachable. Reachability changes as imports land (§6.1) —
	// and a changed probe answer changes the key, so a cached answer
	// can never outlive the topology it was computed for.
	var kb strings.Builder
	kb.WriteString(strings.TrimSpace(query))
	for _, n := range nets {
		kb.WriteByte(0)
		kb.WriteString(n.Name)
	}
	key := kb.String()
	s.mu.RLock()
	cached, hit := s.cache[key]
	s.mu.RUnlock()
	if hit {
		s.CacheHits.Inc()
		s.trace.Emit(obs.EvCacheHit, int64(len(cached)), 0)
		return append([]string(nil), cached...), nil
	}

	// $attr: search the source system, then its subnetwork, then its
	// network.
	if strings.HasPrefix(host, "$") {
		v, ok := cfg.DB.IPInfo(cfg.SysName, host[1:])
		if !ok {
			return nil, s.fail(vfs.ErrNotExist)
		}
		host = v
	}

	var lines []string
	for _, n := range nets {
		for _, addr := range s.hostAddrs(cfg, n, host, service) {
			lines = append(lines, n.Clone+" "+addr)
		}
	}
	if len(lines) == 0 {
		return nil, s.fail(vfs.ErrNotExist)
	}
	s.mu.Lock()
	if len(s.cache) >= cacheCap {
		s.cache = make(map[string][]string)
	}
	s.cache[key] = append([]string(nil), lines...)
	s.mu.Unlock()
	s.Answers.Inc()
	s.trace.Emit(obs.EvAnswer, int64(len(lines)), 0)
	return lines, nil
}

// fail counts and traces a failed translation.
func (s *Server) fail(err error) error {
	s.Errors.Inc()
	s.trace.Emit(obs.EvError, 0, 0)
	return err
}

// hostAddrs produces the address strings for host/service on network n.
func (s *Server) hostAddrs(cfg Config, n Network, host, service string) []string {
	switch n.Kind {
	case KindPoint:
		// Point-to-point: the wire is the address.
		return []string{host + "!" + service}
	case KindDatakit:
		if host == "*" {
			if service == "" {
				return []string{"*"}
			}
			return []string{"*!" + service}
		}
		dest := host
		if e, ok := cfg.DB.FindSystem(host); ok {
			if dk, okd := e.Get("dk"); okd {
				dest = dk
			} else {
				return nil // not reachable over Datakit
			}
		} else if !strings.Contains(host, "/") {
			return nil // unknown and not a literal dk address
		}
		if service == "" {
			return nil
		}
		return []string{dest + "!" + service}
	default: // KindIP
		port := service
		if service != "" {
			p, ok := cfg.DB.ServicePort(n.Name, service)
			if !ok {
				return nil
			}
			port = p
		}
		if host == "*" {
			if port == "" {
				// No service: announce all services not
				// explicitly announced (§5.2).
				return []string{"*"}
			}
			return []string{"*!" + port}
		}
		var addrs []string
		add := func(a string) {
			if port != "" {
				addrs = append(addrs, a+"!"+port)
			} else {
				addrs = append(addrs, a)
			}
		}
		// Literal IP address.
		if a, err := ip.ParseAddr(host); err == nil {
			add(a.String())
			return addrs
		}
		// Database lookup by any name.
		if e, ok := cfg.DB.FindSystem(host); ok {
			for _, v := range e.GetAll("ip") {
				add(v)
			}
			return addrs
		}
		// Domain names go to DNS first; "if no DNS is reachable,
		// CS relies on its own tables" — and here the tables have
		// already missed, so DNS is the last resort.
		if cfg.Resolve != nil && strings.Contains(host, ".") {
			if ips, err := cfg.Resolve(host); err == nil {
				for _, a := range ips {
					add(a.String())
				}
			}
		}
		return addrs
	}
}

// Node returns the /net/cs file.
func (s *Server) Node(owner string) vfs.Node {
	return &devtree.FileNode{
		Entry: devtree.MkFile("cs", owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return &csHandle{srv: s}, nil
		},
	}
}

// csHandle is one client's query context: a write translates, reads
// return one line each.
type csHandle struct {
	srv *Server

	mu    sync.Mutex
	lines []string
}

var _ vfs.Handle = (*csHandle)(nil)

// Write implements vfs.Handle.
func (h *csHandle) Write(p []byte, off int64) (int, error) {
	lines, err := h.srv.Translate(string(p))
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.lines = nil
		return 0, err
	}
	h.lines = lines
	return len(p), nil
}

// Read implements vfs.Handle: one destination line per read.
func (h *csHandle) Read(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.lines) == 0 {
		return 0, nil
	}
	line := h.lines[0] + "\n"
	h.lines = h.lines[1:]
	return copy(p, line), nil
}

// Close implements vfs.Handle.
func (h *csHandle) Close() error { return nil }
