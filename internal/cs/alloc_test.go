package cs

import (
	"testing"

	"repro/internal/block"
)

// The cache-hit path is CS's whole performance story: no mutex, no
// key string, no copied answer — so like the block pool and the obs
// primitives it is gated at zero allocations per hit. check.sh runs
// this without the race detector (whose instrumentation allocates).
func TestAllocsTranslateHit(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("race instrumentation allocates; gated in check.sh without -race")
	}
	s := newServer(t, nil)
	if _, err := s.Translate("net!helix!9fs"); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(1000, func() {
		if _, err := s.Translate("net!helix!9fs"); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("cache-hit Translate allocates %.1f objects/op, want 0", got)
	}
	if s.Misses.Load() != 1 {
		t.Fatalf("misses=%d: the gate must measure hits only", s.Misses.Load())
	}
}
