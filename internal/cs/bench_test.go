package cs

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/ndb"
	"repro/internal/obs"
)

// Benchmarks for the tentpole: the sharded lock-free cache vs the
// seed's single RWMutex + 128-entry wholesale-drop map. seedCache
// below reimplements the seed's exact hit/miss discipline (string key
// built per query, RLock'd map, copied answer, cap-128 drop) over the
// same compute path, so the comparison isolates the cache design.

// benchNdb synthesizes a database with n dialable systems, each on
// both IP and Datakit like the paper's dual-homed machines.
func benchNdb(tb testing.TB, n int) *ndb.DB {
	var b strings.Builder
	b.WriteString("tcp=echo port=7\nil=9fs port=17008\ntcp=9fs port=564\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "sys=h%04d ip=10.%d.%d.%d dk=nj/astro/h%04d\n",
			i, i/65536, (i/256)%256, i%256, i)
	}
	f, err := ndb.Parse("bench", []byte(b.String()))
	if err != nil {
		tb.Fatal(err)
	}
	db := ndb.New(f)
	db.HashAll("sys", "dom", "ip", "dk", "tcp", "il", "udp")
	return db
}

// benchServer mirrors the machine's real CS config: the full network
// list in preference order, so a net! wildcard walks all of them on a
// miss — what a boot-time dial actually costs.
func benchServer(tb testing.TB, systems, cacheEntries int) *Server {
	cfg := Config{
		SysName: "h0000",
		DB:      benchNdb(tb, systems),
		Networks: []Network{
			{Name: "il", Clone: "/net/il/clone", Kind: KindIP},
			{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP},
			{Name: "udp", Clone: "/net/udp/clone", Kind: KindIP},
			{Name: "dk", Clone: "/net/dk/clone", Kind: KindDatakit},
		},
	}
	cfg.CacheEntries = cacheEntries
	return New(cfg)
}

// seedCache is the pre-PR9 answer cache, verbatim in shape: one
// RWMutex, a string key of query + reachable net names, a copied
// answer on hit, and a wholesale drop at 128 entries.
type seedCache struct {
	s     *Server
	mu    sync.RWMutex
	cache map[string][]string
}

func newSeedCache(s *Server) *seedCache {
	return &seedCache{s: s, cache: make(map[string][]string)}
}

const seedCacheCap = 128

func (c *seedCache) translate(query string) ([]string, error) {
	s := c.s
	s.Queries.Inc()
	s.trace.Emit(obs.EvQuery, int64(len(query)), 0)
	parts := strings.Split(strings.TrimSpace(query), "!")
	if len(parts) < 2 {
		return nil, errBench
	}
	netName, host := parts[0], parts[1]
	service := ""
	if len(parts) >= 3 {
		service = parts[2]
	}
	if host == "" {
		return nil, errBench
	}
	available := func(n Network) bool {
		return s.cfg.Probe == nil || s.cfg.Probe(n.Clone)
	}
	var nets []Network
	var mask uint64
	for i, n := range s.cfg.Networks {
		if (netName == "net" || n.Name == netName) && available(n) {
			nets = append(nets, n)
			mask |= uint64(1) << uint(i)
		}
	}
	if len(nets) == 0 {
		return nil, errBench
	}
	var kb strings.Builder
	kb.WriteString(strings.TrimSpace(query))
	for _, n := range nets {
		kb.WriteByte(0)
		kb.WriteString(n.Name)
	}
	key := kb.String()
	c.mu.RLock()
	cached, hit := c.cache[key]
	c.mu.RUnlock()
	if hit {
		s.CacheHits.Inc()
		s.trace.Emit(obs.EvCacheHit, int64(len(cached)), 0)
		return append([]string(nil), cached...), nil
	}
	lines, err := s.compute(netName, host, service, mask)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.cache) >= seedCacheCap {
		c.cache = make(map[string][]string)
	}
	c.cache[key] = append([]string(nil), lines...)
	c.mu.Unlock()
	s.trace.Emit(obs.EvAnswer, int64(len(lines)), 0)
	return lines, nil
}

var errBench = fmt.Errorf("bench: bad query")

// runParallel16 runs body from 16 goroutines per core — the shape the
// acceptance criterion names (hot-hit throughput at 16 goroutines).
func runParallel16(b *testing.B, body func(i int)) {
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body(i)
			i++
		}
	})
}

// BenchmarkCSTranslateHot: one hot query, every call a cache hit on
// the lock-free path.
func BenchmarkCSTranslateHot(b *testing.B) {
	s := benchServer(b, 1024, 0)
	if _, err := s.Translate("net!h0001!9fs"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(int) {
		if _, err := s.Translate("net!h0001!9fs"); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCSTranslateHotSeed: the same hot query through the seed
// cache discipline.
func BenchmarkCSTranslateHotSeed(b *testing.B) {
	c := newSeedCache(benchServer(b, 1024, 0))
	if _, err := c.translate("net!h0001!9fs"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(int) {
		if _, err := c.translate("net!h0001!9fs"); err != nil {
			b.Fatal(err)
		}
	})
}

// A 512-query working set: a serving machine's realistic hot set. The
// sharded cache (4096 entries) holds all of it; the seed cache
// (128 entries, wholesale drop) thrashes into full recomputation.
func hotSet(n int) []string {
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf("net!h%04d!9fs", i)
	}
	return qs
}

func BenchmarkCSTranslateHotSet512(b *testing.B) {
	s := benchServer(b, 1024, 0)
	qs := hotSet(512)
	for _, q := range qs {
		if _, err := s.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(i int) {
		if _, err := s.Translate(qs[i&511]); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkCSTranslateHotSet512Seed(b *testing.B) {
	c := newSeedCache(benchServer(b, 1024, 0))
	qs := hotSet(512)
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(i int) {
		if _, err := c.translate(qs[i&511]); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCSTranslateMissSingleflight: every query misses (capacity
// 16 over a 4096-query cycle), so the measured path is compute +
// singleflight + publish + eviction.
func BenchmarkCSTranslateMissSingleflight(b *testing.B) {
	s := benchServer(b, 4096, 16)
	qs := hotSet(4096)
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(i int) {
		if _, err := s.Translate(qs[i&4095]); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCSTranslateMixed: 90% hot hit, 10% rotating cold query —
// the boot-storm steady state.
func BenchmarkCSTranslateMixed(b *testing.B) {
	s := benchServer(b, 4096, 256)
	qs := hotSet(4096)
	hot := qs[:16]
	b.ReportAllocs()
	b.ResetTimer()
	runParallel16(b, func(i int) {
		q := hot[i&15]
		if i%10 == 9 {
			q = qs[(i*661)&4095]
		}
		if _, err := s.Translate(q); err != nil {
			b.Fatal(err)
		}
	})
}
