package cs

import (
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
	"repro/internal/vfs"
)

// nShards is the power-of-two shard count of the answer cache. A boot
// storm's queries spread over the shards by query hash, so writers on
// different shards never contend and readers never contend at all.
const nShards = 16

// ckey identifies one cached translation: the trimmed query plus the
// bitmask of networks that probed reachable when it was asked.
// Reachability changes as imports land (§6.1) — a changed probe answer
// changes the mask, so a cached answer can never outlive the topology
// it was computed for. The key is a comparable struct, not a built
// string, so the hit path allocates nothing.
type ckey struct {
	q    string
	nets uint64
}

// centry is one cached answer. Entries are immutable after publish
// except for the clock-eviction reference bit, so the lock-free read
// path can hand out e.lines without copying (Answer copies on demand).
type centry struct {
	k      ckey
	lines  []string
	err    error // non-nil: a negatively cached ErrNotExist
	expire int64 // clock nanoseconds after which the entry is stale
	ver    int64 // ndb.DB.Version the answer was computed against
	used   atomic.Bool
}

// shard is one cache shard: an atomic.Pointer snapshot for lock-free
// reads, republished under mu on every insert — the ether-demux
// pattern (a write copies the map, mutates the copy, and stores the
// new pointer; readers only ever Load).
type shard struct {
	snap atomic.Pointer[map[ckey]*centry]

	mu   sync.Mutex // serializes republish; never held across blocking ops
	ring []*centry  // second-chance clock over the live entries
	hand int
	_    [24]byte // keep neighbouring shards off one cache line
}

// lookup is the lock-free read path: one atomic load, one map read.
func (sh *shard) lookup(k ckey) *centry {
	m := sh.snap.Load()
	if m == nil {
		return nil
	}
	return (*m)[k]
}

// publish inserts e, evicting by second-chance clock when the shard is
// at capacity, and republishes the snapshot. Called off the hit path
// (on a miss, by the singleflight leader).
func (sh *shard) publish(e *centry, capacity int, evicted func()) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var n int
	if old := sh.snap.Load(); old != nil {
		n = len(*old)
	}
	m := make(map[ckey]*centry, n+1)
	if old := sh.snap.Load(); old != nil {
		for k, v := range *old {
			m[k] = v
		}
	}
	if prev, ok := m[e.k]; ok {
		sh.dropFromRing(prev)
	}
	for len(m) >= capacity && len(sh.ring) > 0 {
		victim := sh.sweep()
		delete(m, victim.k)
		evicted()
	}
	m[e.k] = e
	sh.ring = append(sh.ring, e)
	sh.snap.Store(&m)
}

// sweep advances the clock hand past recently used entries (clearing
// their reference bits) and removes and returns the first cold one.
func (sh *shard) sweep() *centry {
	for {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		cand := sh.ring[sh.hand]
		if cand.used.Load() {
			cand.used.Store(false)
			sh.hand++
			continue
		}
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
		return cand
	}
}

// dropFromRing removes a replaced entry from the eviction order.
func (sh *shard) dropFromRing(prev *centry) {
	for i, e := range sh.ring {
		if e == prev {
			sh.ring = append(sh.ring[:i], sh.ring[i+1:]...)
			if sh.hand > i {
				sh.hand--
			}
			return
		}
	}
}

// entries reports the live entry count (the stats gauge).
func (sh *shard) entries() int {
	if m := sh.snap.Load(); m != nil {
		return len(*m)
	}
	return 0
}

// shardFor hashes the query (FNV-1a, inlined so the hit path does not
// allocate) to a shard index.
func (s *Server) shardFor(q string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(q); i++ {
		h ^= uint64(q[i])
		h *= 1099511628211
	}
	return &s.shards[h&(nShards-1)]
}

// flight is one in-progress computation that concurrent identical
// misses join instead of repeating: a boot storm's thousand identical
// queries do one DB/DNS walk, not a thousand. Followers wait on a
// vclock.Cond so the collapse also works under the discrete-event
// clock, where parking on a bare channel would stall the scheduler.
type flight struct {
	cond  vclock.Cond
	done  bool
	lines []string
	err   error
}

// flightDo runs compute for k, collapsing concurrent identical calls.
// It returns the answer and whether this caller led the computation
// (false: it joined an existing flight). The leader computes without
// holding fmu — compute may consult DNS and park on the clock — and
// publishes the cache entry before waking the waiters.
func (s *Server) flightDo(k ckey, sh *shard, ver, now int64, compute func() ([]string, error)) ([]string, error, bool) {
	s.fmu.Lock()
	if f, ok := s.flights[k]; ok {
		for !f.done {
			f.cond.Wait()
		}
		lines, err := f.lines, f.err
		s.fmu.Unlock()
		return lines, err, false
	}
	f := &flight{}
	f.cond.Init(s.clock, &s.fmu)
	s.flights[k] = f
	s.fmu.Unlock()

	lines, err := compute()
	s.store(k, sh, lines, err, ver, now)

	s.fmu.Lock()
	f.lines, f.err, f.done = lines, err, true
	delete(s.flights, k)
	f.cond.Broadcast()
	s.fmu.Unlock()
	return lines, err, true
}

// store publishes a computed answer. Successes get the positive TTL;
// ErrNotExist is negatively cached with the (shorter) negative TTL so
// a storm of dials to a dead name does not walk the database every
// time; other errors (bad query, no network) are not cached at all.
// ver was read before the computation began, so an ndb.Replace racing
// the walk leaves the entry already-stale rather than wrong.
func (s *Server) store(k ckey, sh *shard, lines []string, err error, ver, now int64) {
	ttl := s.ttl
	if err != nil {
		if err != vfs.ErrNotExist {
			return
		}
		ttl = s.negTTL
	}
	e := &centry{k: k, lines: lines, err: err, expire: now + int64(ttl), ver: ver}
	sh.publish(e, s.perShard, s.Evictions.Inc)
}
