package cs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/ndb"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Cache-engine behavior: version-keyed invalidation, TTLs on the
// virtual clock, clock eviction, singleflight collapse, short reads
// through the file interface, and the counter balance under a
// concurrent hammer.

// TestShortReadResumesMidLine pins the csHandle.Read fix: a reader
// with a buffer shorter than the destination line must receive the
// whole line across several reads, not a truncated prefix.
func TestShortReadResumesMidLine(t *testing.T) {
	s := newServer(t, nil)
	nsp := ns.New("self", ramfs.New("self").Root())
	nsp.MountNode(s.Node("self"), "/net/cs", ns.MREPL)
	fd, err := nsp.Open("/net/cs/cs", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if _, err := fd.WriteString("net!helix!9fs"); err != nil {
		t.Fatal(err)
	}
	// 7 bytes at a time: both lines must reassemble exactly.
	var got strings.Builder
	buf := make([]byte, 7)
	for {
		n, err := fd.ReadAt(buf, 0)
		if n == 0 || err != nil {
			break
		}
		got.Write(buf[:n])
	}
	want := "/net/il/clone 135.104.9.31!17008\n/net/dk/clone nj/astro/helix!9fs\n"
	if got.String() != want {
		t.Fatalf("short reads reassembled %q, want %q", got.String(), want)
	}
}

// TestReplaceReResolvesDollarAttr pins the stale-$attr fix: the cache
// key is the query, which never observes the $attr rewrite — only the
// ndb version stamp keeps it honest. After a Replace changes what
// $auth means, the very next Translate must re-resolve.
func TestReplaceReResolvesDollarAttr(t *testing.T) {
	f, err := ndb.Parse("local", []byte(testNdb))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		SysName:  "self",
		DB:       ndb.New(f),
		Networks: []Network{{Name: "il", Clone: "/net/il/clone", Kind: KindIP}},
	})
	first, err := tr(s, "il!$auth!rexauth")
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != "/net/il/clone 135.104.9.34!17021" {
		t.Fatalf("initial $auth answer %v", first)
	}
	if _, err := tr(s, "il!$auth!rexauth"); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits.Load() != 1 {
		t.Fatalf("cache hits = %d, want 1 before Replace", s.CacheHits.Load())
	}

	// The administrator moves the auth role to helix.
	moved := strings.Replace(testNdb, "auth=p9auth", "auth=helix", 1)
	nf, err := ndb.Parse("local", []byte(moved))
	if err != nil {
		t.Fatal(err)
	}
	f.Replace(nf.Entries)

	after, err := tr(s, "il!$auth!rexauth")
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != "/net/il/clone 135.104.9.31!17021" {
		t.Fatalf("post-Replace $auth answer %v, want helix's address", after)
	}
	if s.CacheHits.Load() != 1 {
		t.Errorf("Replace did not invalidate: hits = %d", s.CacheHits.Load())
	}
}

// virtualServer builds a server on an explicit clock.
func virtualServer(t *testing.T, ck vclock.Clock, extra Config) *Server {
	t.Helper()
	f, err := ndb.Parse("local", []byte(testNdb))
	if err != nil {
		t.Fatal(err)
	}
	cfg := extra
	cfg.SysName = "self"
	cfg.DB = ndb.New(f)
	cfg.Networks = []Network{
		{Name: "il", Clone: "/net/il/clone", Kind: KindIP},
		{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP},
		{Name: "dk", Clone: "/net/dk/clone", Kind: KindDatakit},
	}
	cfg.Clock = ck
	return New(cfg)
}

// TestNegativeCacheTTLOnVirtualClock: an ErrNotExist answer is served
// from the cache (no second database walk) until its negative TTL
// runs out on the simulated clock, then re-asked.
func TestNegativeCacheTTLOnVirtualClock(t *testing.T) {
	v := vclock.NewVirtual()
	v.Run(func() {
		s := virtualServer(t, v, Config{NegTTL: 5 * time.Second})
		if _, err := s.Translate("tcp!ghost!echo"); !vfs.SameError(err, vfs.ErrNotExist) {
			t.Fatalf("ghost error = %v", err)
		}
		_, hashed := s.cfg.DB.Counters()
		if _, err := s.Translate("tcp!ghost!echo"); !vfs.SameError(err, vfs.ErrNotExist) {
			t.Fatalf("cached ghost error = %v", err)
		}
		if s.NegHits.Load() != 1 || s.CacheHits.Load() != 1 {
			t.Fatalf("neg-hits=%d cache-hits=%d, want 1/1", s.NegHits.Load(), s.CacheHits.Load())
		}
		if _, h2 := s.cfg.DB.Counters(); h2 != hashed {
			t.Fatalf("negative hit walked the database (%d -> %d searches)", hashed, h2)
		}

		// Under the TTL the hit keeps serving; past it the entry dies.
		v.Sleep(4 * time.Second)
		s.Translate("tcp!ghost!echo")
		if s.NegHits.Load() != 2 {
			t.Fatalf("neg-hits=%d, want 2 inside the TTL", s.NegHits.Load())
		}
		v.Sleep(2 * time.Second) // 6s after publish: expired
		s.Translate("tcp!ghost!echo")
		if s.NegHits.Load() != 2 {
			t.Fatalf("neg-hits=%d after expiry, want still 2", s.NegHits.Load())
		}
		if got := s.Errors.Load(); got != 2 {
			t.Fatalf("errors=%d, want 2 (initial + post-expiry recompute)", got)
		}
	})
}

// TestPositiveTTLExpiryOnVirtualClock: positive answers also expire.
func TestPositiveTTLExpiryOnVirtualClock(t *testing.T) {
	v := vclock.NewVirtual()
	v.Run(func() {
		s := virtualServer(t, v, Config{TTL: 60 * time.Second})
		if _, err := s.Translate("tcp!helix!echo"); err != nil {
			t.Fatal(err)
		}
		v.Sleep(59 * time.Second)
		s.Translate("tcp!helix!echo")
		if s.CacheHits.Load() != 1 {
			t.Fatalf("hits=%d, want 1 inside the TTL", s.CacheHits.Load())
		}
		v.Sleep(2 * time.Second)
		s.Translate("tcp!helix!echo")
		if s.CacheHits.Load() != 1 || s.Misses.Load() != 2 {
			t.Fatalf("hits=%d misses=%d after expiry, want 1/2", s.CacheHits.Load(), s.Misses.Load())
		}
	})
}

// TestClockEvictionBoundsEntries: past capacity the second-chance
// clock evicts cold entries one at a time — the wholesale drop is
// gone — and the entries gauge stays bounded.
func TestClockEvictionBoundsEntries(t *testing.T) {
	f, err := ndb.Parse("local", []byte(testNdb))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		SysName:      "self",
		DB:           ndb.New(f),
		Networks:     []Network{{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP}},
		CacheEntries: nShards, // one entry per shard
	})
	// Distinct literal-IP queries all cache; capacity forces eviction.
	queries := []string{
		"tcp!10.0.0.1!7", "tcp!10.0.0.2!7", "tcp!10.0.0.3!7", "tcp!10.0.0.4!7",
		"tcp!10.0.0.5!7", "tcp!10.0.0.6!7", "tcp!10.0.0.7!7", "tcp!10.0.0.8!7",
	}
	for round := 0; round < 8; round++ {
		for _, q := range queries {
			if _, err := s.Translate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	var entries int
	for i := range s.shards {
		entries += s.shards[i].entries()
	}
	if entries > len(queries) {
		t.Fatalf("entries=%d above bound", entries)
	}
	hot := s.CacheHits.Load() + s.Misses.Load()
	if hot != int64(8*len(queries)) {
		t.Fatalf("hits+misses=%d, want %d", hot, 8*len(queries))
	}
	// Any colliding shard had capacity 1, so collisions evicted.
	if s.Evictions.Load() == 0 {
		t.Skip("no two queries shared a shard at this capacity")
	}
}

// TestSingleflightCollapsesConcurrentMisses: concurrent identical
// misses do one computation. The resolver blocks until the waiters
// have queued up, so exactly one DNS walk can serve them all.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	const followers = 8
	gate := make(chan struct{})
	var resolves int64
	var mu sync.Mutex
	f, err := ndb.Parse("local", []byte(testNdb))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		SysName:  "self",
		DB:       ndb.New(f),
		Networks: []Network{{Name: "tcp", Clone: "/net/tcp/clone", Kind: KindIP}},
		Resolve: func(domain string) ([]ip.Addr, error) {
			mu.Lock()
			resolves++
			mu.Unlock()
			<-gate
			return []ip.Addr{{1, 2, 3, 4}}, nil
		},
	})
	var wg sync.WaitGroup
	results := make([][]string, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := s.Translate("tcp!ai.mit.edu!echo")
			if err != nil {
				t.Errorf("translate: %v", err)
			}
			results[i] = a.Lines()
		}(i)
	}
	// Wait until every follower has either joined the flight or is
	// about to: the leader is parked in Resolve, so once SFWaits
	// would-be joiners block on the cond, releasing the gate lets one
	// computation serve everyone. (Late arrivals after the gate just
	// hit the cache; either way resolves stays 1.)
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		mu.Lock()
		r := resolves
		mu.Unlock()
		if r >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if resolves != 1 {
		t.Fatalf("resolver ran %d times, want 1", resolves)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != "/net/tcp/clone 1.2.3.4!7" {
			t.Fatalf("goroutine %d got %v", i, r)
		}
	}
	if s.SFWaits.Load()+s.CacheHits.Load() != followers {
		t.Fatalf("waits=%d hits=%d, want %d combined",
			s.SFWaits.Load(), s.CacheHits.Load(), followers)
	}
}

// TestConcurrentTranslateHammer runs a mixed workload across the
// shards and the singleflight under the race detector, then balances
// the books: every query lands in exactly one outcome counter.
func TestConcurrentTranslateHammer(t *testing.T) {
	s := newServer(t, nil)
	queries := []string{
		"net!helix!9fs", "tcp!helix!echo", "il!p9auth!rexauth",
		"dk!dkonly!9fs", "tcp!10.1.2.3!7", "tcp!ghost!echo",
		"fddi!helix!echo", "garbage",
	}
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Translate(queries[(w+i)%len(queries)])
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perWorker)
	if got := s.Queries.Load(); got != total {
		t.Fatalf("queries=%d, want %d", got, total)
	}
	sum := s.CacheHits.Load() + s.SFWaits.Load() + s.Misses.Load() + s.Errors.Load()
	if sum != total {
		t.Fatalf("books don't balance: hits=%d waits=%d misses=%d errors=%d sum=%d queries=%d",
			s.CacheHits.Load(), s.SFWaits.Load(), s.Misses.Load(), s.Errors.Load(), sum, total)
	}
	if s.Lat.SnapshotHist().Count != total {
		t.Fatalf("latency samples=%d, want %d", s.Lat.SnapshotHist().Count, total)
	}
}
