package cs

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// Deeper connection-server behavior: answer ordering must survive
// repeated queries, the answer cache must key on the reachable
// network set (an import landing must change the answers, never
// serve stale ones), and the trace ring must record the
// query/answer/cache-hit sequence in order.

func kinds(r *obs.Ring) []obs.Kind { return r.Kinds() }

func TestRepeatedQueryHitsCacheSameOrder(t *testing.T) {
	s := newServer(t, nil)
	s.Trace().Enable()

	first, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatalf("repeat changed the answer:\n%v\n%v", first, second)
	}
	// Preference order must hold on the cached answer too: IL before
	// Datakit for a net! wildcard.
	if !strings.HasPrefix(second[0], "/net/il/clone ") {
		t.Errorf("cached answer lost preference order: %v", second)
	}
	if got := s.CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := s.Queries.Load(); got != 2 {
		t.Errorf("queries = %d, want 2", got)
	}
	want := []obs.Kind{obs.EvQuery, obs.EvAnswer, obs.EvQuery, obs.EvCacheHit}
	got := kinds(s.Trace())
	if len(got) != len(want) {
		t.Fatalf("trace kinds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace kinds %v, want %v", got, want)
		}
	}
}

func TestCallerCannotPoisonCache(t *testing.T) {
	s := newServer(t, nil)
	lines, err := tr(s, "tcp!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	lines[0] = "scribbled"
	again, err := tr(s, "tcp!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != "/net/tcp/clone 135.104.9.31!7" {
		t.Errorf("cache served the caller's scribble: %v", again)
	}
	if s.CacheHits.Load() != 1 {
		t.Errorf("second query should have hit the cache")
	}
}

func TestCacheKeysOnReachableNetworks(t *testing.T) {
	// The paper's dynamic: a terminal starts with only Datakit, then
	// an import makes IP networks appear in /net. The same query must
	// then produce a different (better) answer, not the cached one.
	reachable := map[string]bool{"/net/dk/clone": true}
	s := newServer(t, func(clone string) bool { return reachable[clone] })

	before, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || !strings.HasPrefix(before[0], "/net/dk/clone ") {
		t.Fatalf("dk-only answer: %v", before)
	}

	// The import lands: IL becomes dialable.
	reachable["/net/il/clone"] = true
	after, err := tr(s, "net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 || !strings.HasPrefix(after[0], "/net/il/clone ") {
		t.Fatalf("post-import answer not refreshed: %v", after)
	}
	if s.CacheHits.Load() != 0 {
		t.Errorf("stale cache hit across a reachability change")
	}

	// Same reachable set again: now it may (and should) hit.
	if _, err := tr(s, "net!helix!9fs"); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits.Load() != 1 {
		t.Errorf("identical query+reachability did not hit the cache")
	}
}

func TestFailedQueryCountsError(t *testing.T) {
	s := newServer(t, nil)
	s.Trace().Enable()
	if _, err := tr(s, "fddi!helix!echo"); err == nil {
		t.Fatal("unknown network translated")
	}
	if s.Errors.Load() != 1 {
		t.Errorf("errors = %d, want 1", s.Errors.Load())
	}
	got := kinds(s.Trace())
	if len(got) != 2 || got[0] != obs.EvQuery || got[1] != obs.EvError {
		t.Errorf("trace kinds %v, want [query error]", got)
	}
	// Failures are never cached: the same query asks again.
	tr(s, "fddi!helix!echo")
	if s.CacheHits.Load() != 0 {
		t.Errorf("a failed answer was cached")
	}
}

func TestStatsFileAgreesWithCounters(t *testing.T) {
	s := newServer(t, nil)
	tr(s, "net!helix!9fs")
	tr(s, "net!helix!9fs")
	tr(s, "fddi!helix!echo")
	parsed := obs.ParseStats(s.StatsGroup().Render())
	for name, want := range map[string]int64{
		"queries":    s.Queries.Load(),
		"cache-hits": s.CacheHits.Load(),
		"misses":     s.Misses.Load(),
		"errors":     s.Errors.Load(),
	} {
		if parsed[name] != want {
			t.Errorf("stats %s = %d, counter %d", name, parsed[name], want)
		}
	}
}
