// Package ramfs is an in-memory hierarchical file system with full
// create/remove/wstat support. Machines use one as the root of their
// name space (/, /tmp, /lib, /n, ...); it also serves as the reference
// file server for 9P, mount-driver, and exportfs tests, and as the
// cache behind ftpfs.
package ramfs

import (
	"sync"

	"repro/internal/devtree"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// FS is a RAM file system; it implements vfs.Device.
type FS struct {
	mu    sync.RWMutex
	root  *file
	owner string

	// ck, when set, makes the file system hermetic (see NewClock):
	// qid paths count up from qid (guarded by mu) instead of drawing
	// on the process-wide counter, and time stamps come from ck.
	ck  vclock.Clock
	qid uint64
}

type file struct {
	fs       *FS
	parent   *file
	dir      vfs.Dir
	data     []byte           // plain files
	children map[string]*file // directories
	order    []string         // stable directory order
	open     int              // open handle count (for DMEXCL / ORCLOSE)
	gone     bool             // removed while open
}

// New returns an empty file system whose root is owned by owner.
// Qid paths draw on the process-wide counter, so every server a
// process assembles hands out distinct qids — what a namespace mixing
// many devices (and any cache keyed by qid) wants.
func New(owner string) *FS {
	fs := &FS{owner: owner}
	fs.root = &file{
		fs:       fs,
		dir:      fs.mkDir("/", 0775),
		children: make(map[string]*file),
	}
	return fs
}

// NewClock returns a hermetic file system: qid paths count up from
// the root and time stamps come from ck, so every byte the server
// utters — qids in Rcreate and Rwalk, times in Rstat — is a pure
// function of the operations applied to it. Plan 9 qids are
// per-server anyway; a server that owns a whole conversation (the
// torture harness's ramfs, a simulation fixture) numbers hermetically
// so the same-seed chaos gates can pin 9P traffic byte for byte.
// Servers that join a process-wide namespace should keep New's
// process-unique numbering.
func NewClock(owner string, ck vclock.Clock) *FS {
	fs := &FS{owner: owner, ck: vclock.Or(ck)}
	fs.root = &file{
		fs:       fs,
		dir:      fs.mkDir("/", 0775),
		children: make(map[string]*file),
	}
	return fs
}

// mkDir and mkFile build Dir entries, renumbered and restamped when
// the file system is hermetic. Callers hold fs.mu (or are the
// constructor, before the FS is shared).
func (fs *FS) mkDir(name string, perm uint32) vfs.Dir {
	d := devtree.MkDir(name, fs.owner, perm)
	fs.restamp(&d)
	return d
}

func (fs *FS) mkFile(name string, perm uint32) vfs.Dir {
	d := devtree.MkFile(name, fs.owner, perm)
	fs.restamp(&d)
	return d
}

func (fs *FS) restamp(d *vfs.Dir) {
	if fs.ck == nil {
		return
	}
	fs.qid++
	d.Qid.Path = fs.qid
	t := fs.now()
	d.Atime, d.Mtime = t, t
}

// now is the file system's time source for mtime updates.
func (fs *FS) now() uint32 {
	if fs.ck == nil {
		return devtree.Now()
	}
	return uint32(fs.ck.Now().Unix())
}

// Name implements vfs.Device.
func (fs *FS) Name() string { return "ram" }

// Attach implements vfs.Device.
func (fs *FS) Attach(spec string) (vfs.Node, error) {
	if spec != "" {
		return nil, vfs.ErrBadSpec
	}
	return node{f: fs.root}, nil
}

// Root returns the root node directly.
func (fs *FS) Root() vfs.Node { return node{f: fs.root} }

// MkdirAll creates a directory path (elements separated by /) and
// returns nil if it already exists as a directory. A convenience for
// world assembly; path must be clean and absolute-like ("a/b/c").
func (fs *FS) MkdirAll(path string, perm uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := fs.root
	start := 0
	for start < len(path) {
		end := start
		for end < len(path) && path[end] != '/' {
			end++
		}
		name := path[start:end]
		start = end + 1
		if name == "" {
			continue
		}
		child, ok := f.children[name]
		if !ok {
			child = &file{
				fs:       fs,
				parent:   f,
				dir:      fs.mkDir(name, perm),
				children: make(map[string]*file),
			}
			f.children[name] = child
			f.order = append(f.order, name)
		} else if !child.dir.IsDir() {
			return vfs.ErrNotDir
		}
		f = child
	}
	return nil
}

// WriteFile creates (or truncates) a plain file at path with contents.
func (fs *FS) WriteFile(path string, contents []byte, perm uint32) error {
	dir, name := splitPath(path)
	if name == "" {
		return vfs.ErrBadArg
	}
	if dir != "" {
		if err := fs.MkdirAll(dir, 0775); err != nil {
			return err
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.lookupLocked(dir)
	if err != nil {
		return err
	}
	child, ok := f.children[name]
	if !ok {
		child = &file{fs: fs, parent: f, dir: fs.mkFile(name, perm)}
		f.children[name] = child
		f.order = append(f.order, name)
	}
	if child.dir.IsDir() {
		return vfs.ErrIsDir
	}
	child.data = append([]byte(nil), contents...)
	child.dir.Length = int64(len(child.data))
	child.dir.Qid.Vers++
	child.dir.Mtime = fs.now()
	return nil
}

// ReadFile returns a copy of the contents of the plain file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, err := fs.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	if f.dir.IsDir() {
		return nil, vfs.ErrIsDir
	}
	return append([]byte(nil), f.data...), nil
}

func splitPath(path string) (dir, name string) {
	last := -1
	for i := range len(path) {
		if path[i] == '/' {
			last = i
		}
	}
	if last < 0 {
		return "", path
	}
	return path[:last], path[last+1:]
}

func (fs *FS) lookupLocked(path string) (*file, error) {
	f := fs.root
	start := 0
	for start < len(path) {
		end := start
		for end < len(path) && path[end] != '/' {
			end++
		}
		name := path[start:end]
		start = end + 1
		if name == "" {
			continue
		}
		child, ok := f.children[name]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		f = child
	}
	return f, nil
}

// node is the vfs.Node view of a file.
type node struct{ f *file }

var (
	_ vfs.Node    = node{}
	_ vfs.Creator = node{}
	_ vfs.Remover = node{}
	_ vfs.Wstater = node{}
)

// Stat implements vfs.Node.
func (n node) Stat() (vfs.Dir, error) {
	n.f.fs.mu.RLock()
	defer n.f.fs.mu.RUnlock()
	return n.f.dir, nil
}

// Walk implements vfs.Node.
func (n node) Walk(name string) (vfs.Node, error) {
	n.f.fs.mu.RLock()
	defer n.f.fs.mu.RUnlock()
	if !n.f.dir.IsDir() {
		return nil, vfs.ErrNotDir
	}
	if name == ".." {
		if n.f.parent == nil {
			return n, nil
		}
		return node{f: n.f.parent}, nil
	}
	child, ok := n.f.children[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return node{f: child}, nil
}

// Open implements vfs.Node.
func (n node) Open(mode int) (vfs.Handle, error) {
	f := n.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.gone {
		return nil, vfs.ErrNotExist
	}
	if f.dir.IsDir() {
		if vfs.AccessMode(mode) != vfs.OREAD || mode&(vfs.OTRUNC|vfs.ORCLOSE) != 0 {
			return nil, vfs.ErrIsDir
		}
		return &dirHandle{f: f}, nil
	}
	if f.dir.Mode&vfs.DMEXCL != 0 && f.open > 0 {
		return nil, vfs.ErrInUse
	}
	if mode&vfs.OTRUNC != 0 && f.dir.Mode&vfs.DMAPPEND == 0 {
		f.data = nil
		f.dir.Length = 0
		f.dir.Qid.Vers++
	}
	f.open++
	return &fileHandle{f: f, mode: mode}, nil
}

// Create implements vfs.Creator.
func (n node) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	f := n.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if !f.dir.IsDir() {
		return nil, nil, vfs.ErrNotDir
	}
	if f.gone {
		return nil, nil, vfs.ErrNotExist
	}
	if name == "" || name == "." || name == ".." {
		return nil, nil, vfs.ErrBadArg
	}
	if _, ok := f.children[name]; ok {
		return nil, nil, vfs.ErrExists
	}
	child := &file{fs: f.fs, parent: f}
	if perm&vfs.DMDIR != 0 {
		// Permissions inherit from the parent as in Plan 9:
		// perm & (~0777 | parent&0777) for directories.
		child.dir = f.fs.mkDir(name, perm&(^uint32(0777)|f.dir.Mode&0777)&^vfs.DMDIR)
		child.dir.Mode |= vfs.DMDIR
		child.children = make(map[string]*file)
	} else {
		child.dir = f.fs.mkFile(name, perm&(^uint32(0666)|f.dir.Mode&0666))
	}
	f.children[name] = child
	f.order = append(f.order, name)
	f.dir.Qid.Vers++
	f.dir.Mtime = f.fs.now()
	if child.dir.IsDir() {
		return node{f: child}, &dirHandle{f: child}, nil
	}
	child.open++
	return node{f: child}, &fileHandle{f: child, mode: mode}, nil
}

// Remove implements vfs.Remover.
func (n node) Remove() error {
	f := n.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return removeLocked(f)
}

func removeLocked(f *file) error {
	if f.parent == nil {
		return vfs.ErrPerm // cannot remove the root
	}
	if f.gone {
		return vfs.ErrNotExist
	}
	if f.dir.IsDir() && len(f.children) > 0 {
		return vfs.ErrInUse
	}
	delete(f.parent.children, f.dir.Name)
	for i, nm := range f.parent.order {
		if nm == f.dir.Name {
			f.parent.order = append(f.parent.order[:i], f.parent.order[i+1:]...)
			break
		}
	}
	f.parent.dir.Qid.Vers++
	f.parent.dir.Mtime = f.fs.now()
	f.gone = true
	return nil
}

// Wstat implements vfs.Wstater. Blank fields ("" / ^0) leave the
// attribute unchanged, as in 9P.
func (n node) Wstat(d vfs.Dir) error {
	f := n.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.gone {
		return vfs.ErrNotExist
	}
	if d.Name != "" && d.Name != f.dir.Name {
		if f.parent == nil {
			return vfs.ErrPerm
		}
		if _, ok := f.parent.children[d.Name]; ok {
			return vfs.ErrExists
		}
		delete(f.parent.children, f.dir.Name)
		f.parent.children[d.Name] = f
		for i, nm := range f.parent.order {
			if nm == f.dir.Name {
				f.parent.order[i] = d.Name
				break
			}
		}
		f.dir.Name = d.Name
	}
	if d.Mode != ^uint32(0) && d.Mode != 0 {
		if d.Mode&vfs.DMDIR != f.dir.Mode&vfs.DMDIR {
			return vfs.ErrPerm // cannot change directory bit
		}
		f.dir.Mode = d.Mode
	}
	if d.Gid != "" {
		f.dir.Gid = d.Gid
	}
	if d.Mtime != 0 && d.Mtime != ^uint32(0) {
		f.dir.Mtime = d.Mtime
	}
	f.dir.Qid.Vers++
	return nil
}

type fileHandle struct {
	f    *file
	mode int

	mu     sync.Mutex
	closed bool
}

var (
	_ vfs.Handle = (*fileHandle)(nil)
	_ vfs.Stable = (*fileHandle)(nil)
)

// Stable implements vfs.Stable: ram files are stored bytes whose
// Qid.Vers moves on every mutation, so a (qid.path, qid.vers)-keyed
// read cache may hold their data.
func (h *fileHandle) Stable() bool { return true }

// Read implements vfs.Handle.
func (h *fileHandle) Read(p []byte, off int64) (int, error) {
	if !vfs.ModeReadable(h.mode) {
		return 0, vfs.ErrBadUseFd
	}
	f := h.f
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(p, f.data[off:]), nil
}

// Write implements vfs.Handle.
func (h *fileHandle) Write(p []byte, off int64) (int, error) {
	if !vfs.ModeWritable(h.mode) {
		return 0, vfs.ErrBadUseFd
	}
	f := h.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.dir.Mode&vfs.DMAPPEND != 0 {
		off = int64(len(f.data))
	}
	if need := off + int64(len(p)); need > int64(len(f.data)) {
		grown := make([]byte, need)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
	f.dir.Length = int64(len(f.data))
	f.dir.Qid.Vers++
	f.dir.Mtime = f.fs.now()
	return len(p), nil
}

// Close implements vfs.Handle.
func (h *fileHandle) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	f := h.f
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.open--
	if h.mode&vfs.ORCLOSE != 0 && !f.gone {
		// Best effort, as in the kernel.
		_ = removeLocked(f)
	}
	return nil
}

type dirHandle struct{ f *file }

var (
	_ vfs.Handle    = (*dirHandle)(nil)
	_ vfs.DirReader = (*dirHandle)(nil)
)

// ReadDir implements vfs.DirReader.
func (h *dirHandle) ReadDir() ([]vfs.Dir, error) {
	f := h.f
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	ents := make([]vfs.Dir, 0, len(f.order))
	for _, name := range f.order {
		ents = append(ents, f.children[name].dir)
	}
	return ents, nil
}

// Read implements vfs.Handle.
func (h *dirHandle) Read(p []byte, off int64) (int, error) {
	ents, err := h.ReadDir()
	if err != nil {
		return 0, err
	}
	return vfs.ReadDirAt(ents, p, off)
}

// Write implements vfs.Handle.
func (h *dirHandle) Write(p []byte, off int64) (int, error) { return 0, vfs.ErrIsDir }

// Close implements vfs.Handle.
func (h *dirHandle) Close() error { return nil }
