package ramfs

import (
	"testing"

	"repro/internal/vfs"
)

func TestAttachSpec(t *testing.T) {
	fs := New("bootes")
	if _, err := fs.Attach(""); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Attach("weird"); !vfs.SameError(err, vfs.ErrBadSpec) {
		t.Errorf("bad spec error = %v", err)
	}
	if fs.Name() != "ram" {
		t.Errorf("Name = %q", fs.Name())
	}
}

func TestWriteReadFile(t *testing.T) {
	fs := New("bootes")
	if err := fs.WriteFile("lib/ndb/local", []byte("sys=helix\n"), 0664); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile("lib/ndb/local")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "sys=helix\n" {
		t.Errorf("contents %q", b)
	}
	// Overwrite truncates.
	if err := fs.WriteFile("lib/ndb/local", []byte("x"), 0664); err != nil {
		t.Fatal(err)
	}
	b, _ = fs.ReadFile("lib/ndb/local")
	if string(b) != "x" {
		t.Errorf("after overwrite %q", b)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	fs := New("u")
	if err := fs.MkdirAll("a/b/c", 0775); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("a/b/c", 0775); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("a/b/c/f", []byte("hi"), 0664); err != nil {
		t.Fatal(err)
	}
	// A file in the way fails.
	if err := fs.MkdirAll("a/b/c/f/d", 0775); !vfs.SameError(err, vfs.ErrNotDir) {
		t.Errorf("mkdir through file error = %v", err)
	}
}

func TestWalkAndStat(t *testing.T) {
	fs := New("u")
	fs.WriteFile("dir/file", []byte("abc"), 0664)
	root := fs.Root()
	n, err := root.Walk("dir")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := n.Stat()
	if !d.IsDir() || d.Name != "dir" {
		t.Errorf("dir stat %+v", d)
	}
	f, err := n.Walk("file")
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := f.Stat()
	if fd.Length != 3 || fd.IsDir() {
		t.Errorf("file stat %+v", fd)
	}
	if _, err := n.Walk("missing"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("missing walk error = %v", err)
	}
	if _, err := f.Walk("x"); !vfs.SameError(err, vfs.ErrNotDir) {
		t.Errorf("walk through file error = %v", err)
	}
}

func TestDotDotWalk(t *testing.T) {
	fs := New("u")
	fs.MkdirAll("a/b", 0775)
	root := fs.Root()
	a, _ := root.Walk("a")
	b, _ := a.Walk("b")
	up, err := b.Walk("..")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := up.Stat()
	if d.Name != "a" {
		t.Errorf(".. from a/b gave %q", d.Name)
	}
	// .. from root stays at root.
	r2, err := root.Walk("..")
	if err != nil {
		t.Fatal(err)
	}
	d, _ = r2.Stat()
	if d.Name != "/" {
		t.Errorf(".. from root gave %q", d.Name)
	}
}

func TestOpenReadWrite(t *testing.T) {
	fs := New("u")
	fs.WriteFile("f", []byte("hello"), 0664)
	n, _ := fs.Root().Walk("f")
	h, err := n.Open(vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 10)
	rn, err := h.Read(buf, 0)
	if err != nil || string(buf[:rn]) != "hello" {
		t.Fatalf("read %q, %v", buf[:rn], err)
	}
	// Offset write extends with zero fill.
	if _, err := h.Write([]byte("X"), 7); err != nil {
		t.Fatal(err)
	}
	rn, _ = h.Read(buf, 0)
	if string(buf[:rn]) != "hello\x00\x00X" {
		t.Errorf("after sparse write: %q", buf[:rn])
	}
	// Read past EOF returns 0.
	rn, err = h.Read(buf, 100)
	if rn != 0 || err != nil {
		t.Errorf("past-EOF read = %d, %v", rn, err)
	}
}

func TestOpenModeEnforcement(t *testing.T) {
	fs := New("u")
	fs.WriteFile("f", []byte("x"), 0664)
	n, _ := fs.Root().Walk("f")
	h, _ := n.Open(vfs.OREAD)
	if _, err := h.Write([]byte("y"), 0); !vfs.SameError(err, vfs.ErrBadUseFd) {
		t.Errorf("write on OREAD = %v", err)
	}
	h.Close()
	h, _ = n.Open(vfs.OWRITE)
	if _, err := h.Read(make([]byte, 1), 0); !vfs.SameError(err, vfs.ErrBadUseFd) {
		t.Errorf("read on OWRITE = %v", err)
	}
	h.Close()
}

func TestTruncateOnOpen(t *testing.T) {
	fs := New("u")
	fs.WriteFile("f", []byte("hello"), 0664)
	n, _ := fs.Root().Walk("f")
	h, err := n.Open(vfs.OWRITE | vfs.OTRUNC)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	b, _ := fs.ReadFile("f")
	if len(b) != 0 {
		t.Errorf("after OTRUNC: %q", b)
	}
}

func TestCreateAndRemove(t *testing.T) {
	fs := New("u")
	root := fs.Root().(node)
	_, h, err := root.Create("new", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("data"), 0)
	h.Close()
	b, _ := fs.ReadFile("new")
	if string(b) != "data" {
		t.Errorf("created file contents %q", b)
	}
	// Duplicate create fails.
	if _, _, err := root.Create("new", 0664, vfs.OWRITE); !vfs.SameError(err, vfs.ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	// Bad names fail.
	for _, bad := range []string{"", ".", ".."} {
		if _, _, err := root.Create(bad, 0664, vfs.OWRITE); err == nil {
			t.Errorf("create %q succeeded", bad)
		}
	}
	n, _ := fs.Root().Walk("new")
	if err := n.(vfs.Remover).Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("new"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("after remove: %v", err)
	}
}

func TestCreateDirectory(t *testing.T) {
	fs := New("u")
	root := fs.Root().(node)
	dn, _, err := root.Create("sub", vfs.DMDIR|0775, vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := dn.Stat()
	if !d.IsDir() {
		t.Fatal("created dir is not a dir")
	}
	// Non-empty directory cannot be removed.
	if _, _, err := dn.(node).Create("f", 0664, vfs.OWRITE); err != nil {
		t.Fatal(err)
	}
	if err := dn.(vfs.Remover).Remove(); !vfs.SameError(err, vfs.ErrInUse) {
		t.Errorf("remove non-empty dir = %v", err)
	}
}

func TestRemoveRootForbidden(t *testing.T) {
	fs := New("u")
	if err := fs.Root().(vfs.Remover).Remove(); !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("remove root = %v", err)
	}
}

func TestAppendOnly(t *testing.T) {
	fs := New("u")
	fs.WriteFile("log", nil, vfs.DMAPPEND|0664)
	// Mark the mode properly (WriteFile strips nothing, but ensure).
	n, _ := fs.Root().Walk("log")
	n.(vfs.Wstater).Wstat(vfs.Dir{Mode: vfs.DMAPPEND | 0664})
	h, err := n.Open(vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("a"), 0)
	h.Write([]byte("b"), 0) // offset ignored for append-only
	h.Close()
	b, _ := fs.ReadFile("log")
	if string(b) != "ab" {
		t.Errorf("append-only contents %q", b)
	}
}

func TestExclusiveUse(t *testing.T) {
	fs := New("u")
	fs.WriteFile("x", nil, 0664)
	n, _ := fs.Root().Walk("x")
	n.(vfs.Wstater).Wstat(vfs.Dir{Mode: vfs.DMEXCL | 0664})
	h1, err := n.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(vfs.OREAD); !vfs.SameError(err, vfs.ErrInUse) {
		t.Errorf("second open of DMEXCL = %v", err)
	}
	h1.Close()
	h2, err := n.Open(vfs.OREAD)
	if err != nil {
		t.Errorf("open after close: %v", err)
	}
	if h2 != nil {
		h2.Close()
	}
}

func TestORCLOSE(t *testing.T) {
	fs := New("u")
	root := fs.Root().(node)
	_, h, err := root.Create("tmp", 0664, vfs.OWRITE|vfs.ORCLOSE)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := fs.ReadFile("tmp"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("ORCLOSE file survived close: %v", err)
	}
}

func TestWstatRename(t *testing.T) {
	fs := New("u")
	fs.WriteFile("old", []byte("v"), 0664)
	n, _ := fs.Root().Walk("old")
	if err := n.(vfs.Wstater).Wstat(vfs.Dir{Name: "new"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("new"); err != nil {
		t.Errorf("renamed file missing: %v", err)
	}
	if _, err := fs.ReadFile("old"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Error("old name still present")
	}
	// Rename onto an existing name fails.
	fs.WriteFile("other", nil, 0664)
	n, _ = fs.Root().Walk("new")
	if err := n.(vfs.Wstater).Wstat(vfs.Dir{Name: "other"}); !vfs.SameError(err, vfs.ErrExists) {
		t.Errorf("rename onto existing = %v", err)
	}
}

func TestDirectoryRead(t *testing.T) {
	fs := New("u")
	fs.WriteFile("b", nil, 0664)
	fs.WriteFile("a", nil, 0664)
	h, err := fs.Root().Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ents, err := h.(vfs.DirReader).ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	// Creation order is preserved.
	if len(ents) != 2 || ents[0].Name != "b" || ents[1].Name != "a" {
		t.Errorf("entries %+v", ents)
	}
	// Raw read yields marshaled records.
	buf := make([]byte, 4*vfs.DirRecLen)
	rn, err := h.Read(buf, 0)
	if err != nil || rn != 2*vfs.DirRecLen {
		t.Fatalf("raw dir read = %d, %v", rn, err)
	}
	d, _ := vfs.UnmarshalDir(buf)
	if d.Name != "b" {
		t.Errorf("first marshaled entry %q", d.Name)
	}
	// Directories refuse writes and write-opens.
	if _, err := h.Write([]byte("x"), 0); !vfs.SameError(err, vfs.ErrIsDir) {
		t.Errorf("dir write = %v", err)
	}
	if _, err := fs.Root().Open(vfs.OWRITE); !vfs.SameError(err, vfs.ErrIsDir) {
		t.Errorf("dir open for write = %v", err)
	}
}

func TestQidVersionBumps(t *testing.T) {
	fs := New("u")
	fs.WriteFile("f", []byte("1"), 0664)
	n, _ := fs.Root().Walk("f")
	d1, _ := n.Stat()
	h, _ := n.Open(vfs.OWRITE)
	h.Write([]byte("2"), 0)
	h.Close()
	d2, _ := n.Stat()
	if d2.Qid.Vers <= d1.Qid.Vers {
		t.Errorf("qid version did not advance: %d -> %d", d1.Qid.Vers, d2.Qid.Vers)
	}
	if d2.Qid.Path != d1.Qid.Path {
		t.Error("qid path changed on write")
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := New("u")
	fs.WriteFile("f", nil, 0664)
	n, _ := fs.Root().Walk("f")
	done := make(chan bool)
	for i := range 8 {
		go func(i int) {
			h, err := n.Open(vfs.OWRITE)
			if err == nil {
				for j := range 100 {
					h.Write([]byte{byte(i)}, int64(j))
				}
				h.Close()
			}
			done <- true
		}(i)
	}
	for range 8 {
		<-done
	}
	b, _ := fs.ReadFile("f")
	if len(b) != 100 {
		t.Errorf("file length %d after concurrent writes", len(b))
	}
}
