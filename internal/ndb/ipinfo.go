package ndb

import (
	"sort"

	"repro/internal/ip"
)

// IPInfo implements the paper's "most closely associated" attribute
// search (§4.2): to resolve $attr for a system, CS searches "the auth
// attribute in the database entry for the source system, then its
// subnetwork (if there is one) and then its network." The subnetwork
// and network are the ipnet entries whose address/mask contain the
// system's IP address, most specific first.
func (db *DB) IPInfo(sysName, attr string) (string, bool) {
	sys, ok := db.FindSystem(sysName)
	if !ok {
		return "", false
	}
	if v, ok := sys.Get(attr); ok {
		return v, true
	}
	ipStr, ok := sys.Get("ip")
	if !ok {
		return "", false
	}
	addr, err := ip.ParseAddr(ipStr)
	if err != nil {
		return "", false
	}
	for _, net := range db.NetsContaining(addr) {
		if v, ok := net.Entry.Get(attr); ok {
			return v, true
		}
	}
	return "", false
}

// Net is an ipnet entry with its parsed address and mask.
type Net struct {
	Entry Entry
	Addr  ip.Addr
	Mask  ip.Addr
}

// NetsContaining returns the ipnet entries containing addr, most
// specific first: the subnetwork (if there is one) and then the
// network, following the real ndb algorithm. The network is the ipnet
// entry for addr's classful network; its ipmask attribute, if any,
// defines how subnets are carved (the paper's mh-astro-net entry
// declares ipmask=255.255.255.0, and the per-floor subnets carry no
// mask of their own); the subnetwork is the ipnet entry whose ip=
// matches addr under that mask.
func (db *DB) NetsContaining(addr ip.Addr) []Net {
	classMask := ip.ClassMask(addr)
	network, ok := db.findNet(addr.Mask(classMask))
	if !ok {
		// No declared network: a lone subnet entry may still match
		// under its own or an inferred mask.
		if sub, ok := db.findNet(addr.Mask(ip.Addr{255, 255, 255, 0})); ok {
			return []Net{{Entry: sub, Addr: addr.Mask(ip.Addr{255, 255, 255, 0}), Mask: ip.Addr{255, 255, 255, 0}}}
		}
		return nil
	}
	nets := []Net{{Entry: network, Addr: addr.Mask(classMask), Mask: classMask}}
	subMask := classMask
	if ms, ok := network.Get("ipmask"); ok {
		if m, err := ip.ParseMask(ms); err == nil {
			subMask = m
		}
	}
	if subMask != classMask {
		subAddr := addr.Mask(subMask)
		if sub, ok := db.findNet(subAddr); ok && !sameEntry(sub, network) {
			nets = append([]Net{{Entry: sub, Addr: subAddr, Mask: subMask}}, nets...)
		}
	}
	sort.SliceStable(nets, func(i, j int) bool {
		return maskBits(nets[i].Mask) > maskBits(nets[j].Mask)
	})
	return nets
}

// findNet locates an ipnet entry whose ip= equals na exactly.
func (db *DB) findNet(na ip.Addr) (Entry, bool) {
	for _, e := range db.Query("ip", na.String()) {
		if _, isNet := e.Get("ipnet"); isNet {
			return e, true
		}
	}
	return nil, false
}

func sameEntry(a, b Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maskBits(m ip.Addr) int {
	n := 0
	for _, b := range m {
		for ; b != 0; b <<= 1 {
			if b&0x80 != 0 {
				n++
			}
		}
	}
	return n
}
