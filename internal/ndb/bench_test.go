package ndb

import (
	"fmt"
	"strings"
	"testing"
)

// The §4.1 experiment: "the database files can become large. Our
// global file ... has 43,000 lines. To speed searches, we build hash
// table files for each attribute we expect to search often." The
// benchmarks compare hashed lookups, unhashed (scanning) lookups, and
// lookups against a stale hash on a synthetic global database of
// comparable size.

func globalDB(b *testing.B, entries int) (*DB, *File) {
	b.Helper()
	data := GenerateGlobal(entries, 1)
	if lines := strings.Count(string(data), "\n"); lines < 40000 && entries >= 13000 {
		b.Fatalf("synthetic db only %d lines", lines)
	}
	f, err := Parse("global", data)
	if err != nil {
		b.Fatal(err)
	}
	return New(f), f
}

func BenchmarkNdbLookupHashed(b *testing.B) {
	db, _ := globalDB(b, 13000)
	db.HashAll("sys", "dom", "ip")
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%13000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
}

func BenchmarkNdbLookupScan(b *testing.B) {
	db, _ := globalDB(b, 13000)
	// No hash tables: every lookup is a linear scan.
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%13000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
}

func BenchmarkNdbLookupStaleHash(b *testing.B) {
	// "Every hash file contains the modification time of its master
	// file so we can avoid using an out-of-date hash table": a stale
	// hash must fall back to scanning (correct, just slower).
	db, f := globalDB(b, 13000)
	db.HashAll("sys")
	f.Replace(append(f.Entries, Entry{{Attr: "sys", Val: "fresh"}}))
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%13000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
	b.StopTimer()
	if h, _ := db.Counters(); h != 0 {
		b.Fatalf("stale hash was used %d times", h)
	}
}

// The experiment at 10× scale: 130,000 entries (~430,000 lines) — the
// global file a network ten times Bell Labs' would carry. The hashed
// path must stay flat (it is O(1) in the entry count) while the scan
// path grows linearly, which is the paper's whole argument for hash
// files.
func BenchmarkNdbLookupHashed10x(b *testing.B) {
	db, _ := globalDB(b, 130000)
	db.HashAll("sys", "dom", "ip")
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%130000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
}

func BenchmarkNdbLookupScan10x(b *testing.B) {
	db, _ := globalDB(b, 130000)
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%130000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
}

func BenchmarkNdbLookupStaleHash10x(b *testing.B) {
	db, f := globalDB(b, 130000)
	db.HashAll("sys")
	f.Replace(append(f.Entries, Entry{{Attr: "sys", Val: "fresh"}}))
	b.ResetTimer()
	i := 0
	for b.Loop() {
		name := fmt.Sprintf("host%d", i%130000)
		if _, ok := db.QueryOne("sys", name); !ok {
			b.Fatalf("missing %s", name)
		}
		i++
	}
	b.StopTimer()
	if h, _ := db.Counters(); h != 0 {
		b.Fatalf("stale hash was used %d times", h)
	}
}

func BenchmarkNdbParse430kLines(b *testing.B) {
	data := GenerateGlobal(130000, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := Parse("global", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNdbBuildHash10x(b *testing.B) {
	_, f := globalDB(b, 130000)
	b.ResetTimer()
	for b.Loop() {
		f.BuildHash("sys")
	}
}

func BenchmarkNdbParse43kLines(b *testing.B) {
	data := GenerateGlobal(13000, 1)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := Parse("global", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNdbBuildHash(b *testing.B) {
	_, f := globalDB(b, 13000)
	b.ResetTimer()
	for b.Loop() {
		f.BuildHash("sys")
	}
}

func BenchmarkNdbIPInfoWalk(b *testing.B) {
	db, _ := globalDB(b, 13000)
	db.HashAll("sys", "ip", "ipnet")
	b.ResetTimer()
	for b.Loop() {
		if _, ok := db.IPInfo("host42", "ipgw"); !ok {
			b.Fatal("ipgw walk failed")
		}
	}
}
