package ndb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ip"
)

// paperLocal is the database text shown in §4.1 of the paper,
// verbatim in structure.
const paperLocal = `sys = helix
	dom=helix.research.bell-labs.com
	bootf=/mips/9power
	ip=135.104.9.31 ether=0800690222f0
	dk=nj/astro/helix
	proto=il flavor=9cpu

ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
	fs=bootes.research.bell-labs.com
	auth=1127auth
ipnet=unix-room ip=135.104.117.0
	ipgw=135.104.117.1
ipnet=third-floor ip=135.104.51.0
	ipgw=135.104.51.1
ipnet=fourth-floor ip=135.104.52.0
	ipgw=135.104.52.1

tcp=echo	port=7
tcp=discard	port=9
tcp=systat	port=11
tcp=daytime	port=13
tcp=login	port=513
tcp=9fs		port=564
il=9fs		port=17008
il=rexauth	port=17021
udp=dns		port=53
`

func paperDB(t *testing.T) *DB {
	t.Helper()
	f, err := Parse("local", []byte(paperLocal))
	if err != nil {
		t.Fatal(err)
	}
	return New(f)
}

func TestParsePaperEntries(t *testing.T) {
	db := paperDB(t)
	e, ok := db.QueryOne("sys", "helix")
	if !ok {
		t.Fatal("helix entry missing")
	}
	checks := map[string]string{
		"dom":   "helix.research.bell-labs.com",
		"bootf": "/mips/9power",
		"ip":    "135.104.9.31",
		"ether": "0800690222f0",
		"dk":    "nj/astro/helix",
		"proto": "il",
	}
	for attr, want := range checks {
		if v, _ := e.Get(attr); v != want {
			t.Errorf("%s = %q, want %q", attr, v, want)
		}
	}
	// "sys = helix" with spaces around = parses as attr sys val helix.
	if v, _ := e.Get("sys"); v != "helix" {
		t.Errorf("sys = %q", v)
	}
}

func TestMultilineEntryBoundaries(t *testing.T) {
	db := paperDB(t)
	// The four ipnet entries are distinct.
	nets := 0
	for _, f := range db.Files {
		for _, e := range f.Entries {
			if _, ok := e.Get("ipnet"); ok {
				nets++
			}
		}
	}
	if nets != 4 {
		t.Errorf("%d ipnet entries, want 4", nets)
	}
	// The gateway of third-floor belongs to third-floor only.
	e, ok := db.QueryOne("ipnet", "third-floor")
	if !ok {
		t.Fatal("third-floor missing")
	}
	if gw, _ := e.Get("ipgw"); gw != "135.104.51.1" {
		t.Errorf("third-floor gw %q", gw)
	}
}

func TestServicePorts(t *testing.T) {
	db := paperDB(t)
	cases := []struct{ proto, svc, port string }{
		{"tcp", "echo", "7"},
		{"tcp", "discard", "9"},
		{"tcp", "login", "513"},
		{"tcp", "9fs", "564"},
		{"il", "9fs", "17008"},
		{"il", "rexauth", "17021"},
		{"tcp", "12345", "12345"}, // numeric passes through
	}
	for _, c := range cases {
		got, ok := db.ServicePort(c.proto, c.svc)
		if !ok || got != c.port {
			t.Errorf("ServicePort(%s,%s) = %q,%v want %q", c.proto, c.svc, got, ok, c.port)
		}
	}
	if _, ok := db.ServicePort("tcp", "nosuch"); ok {
		t.Error("unknown service resolved")
	}
	if _, ok := db.ServicePort("tcp", ""); ok {
		t.Error("empty service resolved")
	}
}

func TestIPInfoWalksSysSubnetNet(t *testing.T) {
	db := paperDB(t)
	// helix (135.104.9.31) is in no declared subnet; auth comes from
	// the class-B network entry.
	v, ok := db.IPInfo("helix", "auth")
	if !ok || v != "1127auth" {
		t.Errorf("auth for helix = %q,%v", v, ok)
	}
	// fs likewise.
	v, ok = db.IPInfo("helix", "fs")
	if !ok || v != "bootes.research.bell-labs.com" {
		t.Errorf("fs for helix = %q,%v", v, ok)
	}
	// An attribute on the system itself wins.
	v, ok = db.IPInfo("helix", "bootf")
	if !ok || v != "/mips/9power" {
		t.Errorf("bootf = %q,%v", v, ok)
	}
	// A host on the third floor picks up its subnet's gateway, not
	// another subnet's.
	f, _ := Parse("extra", []byte("sys=gnot ip=135.104.51.7\n"))
	db.Files = append(db.Files, f)
	v, ok = db.IPInfo("gnot", "ipgw")
	if !ok || v != "135.104.51.1" {
		t.Errorf("subnet gw for gnot = %q,%v", v, ok)
	}
	// And still inherits network-level attributes.
	v, ok = db.IPInfo("gnot", "auth")
	if !ok || v != "1127auth" {
		t.Errorf("auth for gnot = %q,%v", v, ok)
	}
	// Unknown attribute and unknown host fail cleanly.
	if _, ok := db.IPInfo("helix", "nosuch"); ok {
		t.Error("nonexistent attribute resolved")
	}
	if _, ok := db.IPInfo("nobody", "auth"); ok {
		t.Error("nonexistent host resolved")
	}
}

func TestNetsContainingOrder(t *testing.T) {
	db := paperDB(t)
	nets := db.NetsContaining(ip.Addr{135, 104, 117, 9})
	if len(nets) != 2 {
		t.Fatalf("%d nets, want subnet+network", len(nets))
	}
	if n, _ := nets[0].Entry.Get("ipnet"); n != "unix-room" {
		t.Errorf("most specific net %q, want unix-room", n)
	}
	if n, _ := nets[1].Entry.Get("ipnet"); n != "mh-astro-net" {
		t.Errorf("second net %q, want mh-astro-net", n)
	}
}

func TestFindSystemByAnyName(t *testing.T) {
	db := paperDB(t)
	for _, name := range []string{"helix", "helix.research.bell-labs.com", "135.104.9.31", "nj/astro/helix"} {
		if _, ok := db.FindSystem(name); !ok {
			t.Errorf("FindSystem(%q) failed", name)
		}
	}
	if _, ok := db.FindSystem("ghost"); ok {
		t.Error("FindSystem(ghost) succeeded")
	}
}

func TestHashedLookupAndStaleness(t *testing.T) {
	f, _ := Parse("local", []byte(paperLocal))
	db := New(f)
	db.HashAll("sys", "dom")
	db.QueryOne("sys", "helix")
	h1, s1 := db.Counters()
	if h1 != 1 || s1 != 0 {
		t.Fatalf("hashed lookup used counters h=%d s=%d", h1, s1)
	}
	// Unhashed attribute scans.
	db.QueryOne("ether", "0800690222f0")
	_, s2 := db.Counters()
	if s2 != 1 {
		t.Fatalf("unhashed lookup did not scan (s=%d)", s2)
	}
	// Replacing the file contents makes the hash stale: lookups
	// still work but scan.
	f.Replace(append(f.Entries, Entry{{Attr: "sys", Val: "musca"}, {Attr: "ip", Val: "135.104.9.6"}}))
	if _, ok := db.QueryOne("sys", "musca"); !ok {
		t.Fatal("stale-hash lookup missed new entry")
	}
	_, s3 := db.Counters()
	if s3 != 2 {
		t.Fatalf("stale hash did not fall back to scan (s=%d)", s3)
	}
	// Rebuilding the hash restores the fast path.
	f.BuildHash("sys")
	db.QueryOne("sys", "musca")
	h4, s4 := db.Counters()
	if h4 != 2 || s4 != 2 {
		t.Fatalf("rebuilt hash not used (h=%d s=%d)", h4, s4)
	}
}

func TestQuotedValuesAndComments(t *testing.T) {
	src := `# comment line
sys=test
	val="hello world"	other=plain
# another comment
sys=two
`
	f, err := Parse("x", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 2 {
		t.Fatalf("%d entries", len(f.Entries))
	}
	if v, _ := f.Entries[0].Get("val"); v != "hello world" {
		t.Errorf("quoted value %q", v)
	}
	if v, _ := f.Entries[0].Get("other"); v != "plain" {
		t.Errorf("plain value %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("x", []byte("\tindented=first\n")); err == nil {
		t.Error("leading continuation accepted")
	}
	if _, err := Parse("x", []byte("sys=a\n\tval=\"unterminated\n")); err == nil {
		t.Error("unterminated quote accepted")
	}
	if _, err := Parse("x", []byte("sys=a =bare\n")); err == nil {
		t.Error("empty attribute accepted")
	}
}

func TestBareAttributes(t *testing.T) {
	f, err := Parse("x", []byte("sys=a\n\ttrusted\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Entries[0].Get("trusted"); !ok || v != "" {
		t.Errorf("bare attribute = %q,%v", v, ok)
	}
}

func TestEntryString(t *testing.T) {
	f, _ := Parse("x", []byte("sys=a\n\tval=\"two words\" flag\n"))
	s := f.Entries[0].String()
	if !strings.Contains(s, "sys=a") || !strings.Contains(s, `val="two words"`) || !strings.Contains(s, "flag") {
		t.Errorf("Entry.String = %q", s)
	}
}

func TestGetAllMultipleValues(t *testing.T) {
	f, _ := Parse("x", []byte("sys=multi\n\tip=1.2.3.4\n\tip=5.6.7.8\n"))
	ips := f.Entries[0].GetAll("ip")
	if len(ips) != 2 || ips[0] != "1.2.3.4" || ips[1] != "5.6.7.8" {
		t.Errorf("GetAll = %v", ips)
	}
}

func TestGeneratedGlobalParses(t *testing.T) {
	data := GenerateGlobal(2000, 1)
	f, err := Parse("global", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) < 2000 {
		t.Errorf("only %d entries", len(f.Entries))
	}
	db := New(f)
	db.HashAll("sys", "dom", "ip")
	if _, ok := db.QueryOne("sys", "host999"); !ok {
		t.Error("host999 missing from generated db")
	}
	if _, ok := db.QueryOne("dom", "host0.research.bell-labs.com"); !ok {
		t.Error("dom lookup failed")
	}
	lines := strings.Count(string(data), "\n")
	if lines < 4000 {
		t.Errorf("generated db only %d lines", lines)
	}
}

// Property: parsing the String() of parsed entries reproduces them.
func TestParseRoundTripQuick(t *testing.T) {
	clean := func(s string) string {
		var b strings.Builder
		for _, c := range s {
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
				b.WriteRune(c)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	f := func(attrs, vals [4]string) bool {
		var src strings.Builder
		fmt.Fprintf(&src, "%s=%s\n", clean(attrs[0]), clean(vals[0]))
		for i := 1; i < 4; i++ {
			fmt.Fprintf(&src, "\t%s=%s\n", clean(attrs[i]), clean(vals[i]))
		}
		f1, err := Parse("a", []byte(src.String()))
		if err != nil || len(f1.Entries) != 1 {
			return false
		}
		f2, err := Parse("b", []byte(f1.Entries[0].String()+"\n"))
		if err != nil || len(f2.Entries) != 1 {
			return false
		}
		return f1.Entries[0].String() == f2.Entries[0].String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
