// Package ndb implements the network database of §4.1: "One database
// on a shared server contains all the information needed for network
// administration. Two ASCII files comprise the main database:
// /lib/ndb/local contains locally administered information and
// /lib/ndb/global contains information imported from elsewhere."
//
// The format is the paper's: sets of attr=value pairs, systems
// described by multi-line entries — a header line at the left margin
// followed by indented attribute/value lines. To speed searches the
// database builds per-attribute hash tables stamped with the master
// file's modification time; a stale or missing hash table falls back
// to a linear scan, which "still works, it just takes longer".
package ndb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Tuple is one attr=value pair.
type Tuple struct {
	Attr string
	Val  string
}

// Entry is one multi-line database entry, in file order. The same
// attribute may appear several times (a system with two IP addresses).
type Entry []Tuple

// Get returns the first value of attr.
func (e Entry) Get(attr string) (string, bool) {
	for _, t := range e {
		if t.Attr == attr {
			return t.Val, true
		}
	}
	return "", false
}

// GetAll returns every value of attr, in order.
func (e Entry) GetAll(attr string) []string {
	var vals []string
	for _, t := range e {
		if t.Attr == attr {
			vals = append(vals, t.Val)
		}
	}
	return vals
}

// Has reports whether the entry contains attr=val.
func (e Entry) Has(attr, val string) bool {
	for _, t := range e {
		if t.Attr == attr && t.Val == val {
			return true
		}
	}
	return false
}

// String formats the entry in database syntax.
func (e Entry) String() string {
	var b strings.Builder
	for i, t := range e {
		if i > 0 {
			b.WriteString("\n\t")
		}
		b.WriteString(t.Attr)
		if t.Val != "" {
			b.WriteByte('=')
			if strings.ContainsAny(t.Val, " \t") {
				fmt.Fprintf(&b, "%q", t.Val)
			} else {
				b.WriteString(t.Val)
			}
		}
	}
	return b.String()
}

// File is one parsed database file (local, global, ...).
type File struct {
	Name    string
	Entries []Entry
	// version stands in for the file's modification time: hash
	// tables remember the version they were built against, and the
	// connection server keys cached answers to it so Replace can
	// never serve a stale translation. Atomic so readers on lock-free
	// hot paths (the CS answer cache) can validate without taking mu.
	version atomic.Int64

	mu     sync.RWMutex
	hashes map[string]*hashTable
}

// Version returns the file's current version stamp. It is safe to call
// concurrently with Replace and never blocks.
func (f *File) Version() int64 { return f.version.Load() }

// hashTable is the per-attribute index: the in-memory form of the
// paper's hash files, including the mtime stamp used for staleness.
type hashTable struct {
	attr    string
	version int64
	chains  map[string][]int // value -> entry indices
}

// ParseError reports a malformed line.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ndb: %s:%d: %s", e.File, e.Line, e.Msg)
}

// Parse reads database text. Entries begin at the left margin;
// indented lines continue the current entry; # starts a comment.
func Parse(name string, data []byte) (*File, error) {
	f := &File{Name: name, hashes: make(map[string]*hashTable)}
	f.version.Store(1)
	var cur Entry
	flush := func() {
		if len(cur) > 0 {
			f.Entries = append(f.Entries, cur)
			cur = nil
		}
	}
	for lineno, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indented := line[0] == ' ' || line[0] == '\t'
		if !indented {
			flush()
		} else if len(cur) == 0 {
			return nil, &ParseError{File: name, Line: lineno + 1,
				Msg: "continuation line outside an entry"}
		}
		tuples, err := parseTuples(trimmed)
		if err != nil {
			return nil, &ParseError{File: name, Line: lineno + 1, Msg: err.Error()}
		}
		cur = append(cur, tuples...)
	}
	flush()
	return f, nil
}

// parseTuples splits one line into attr=value pairs; values may be
// double-quoted to contain spaces, and a bare attribute has an empty
// value.
func parseTuples(s string) ([]Tuple, error) {
	var out []Tuple
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		attr := s[start:i]
		if attr == "" {
			return nil, fmt.Errorf("empty attribute")
		}
		var val string
		// Allow whitespace around the separator, as the paper's own
		// example "sys = helix" does.
		j := i
		for j < len(s) && (s[j] == ' ' || s[j] == '\t') {
			j++
		}
		if j < len(s) && s[j] == '=' {
			i = j
		}
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
				i++
			}
			if i < len(s) && s[i] == '"' {
				i++
				vs := i
				for i < len(s) && s[i] != '"' {
					i++
				}
				if i >= len(s) {
					return nil, fmt.Errorf("unterminated quote")
				}
				val = s[vs:i]
				i++
			} else {
				vs := i
				for i < len(s) && s[i] != ' ' && s[i] != '\t' {
					i++
				}
				val = s[vs:i]
			}
		}
		out = append(out, Tuple{Attr: attr, Val: val})
	}
	return out, nil
}

// BuildHash builds (or rebuilds) the hash table for attr, stamping it
// with the file's current version, as writing a hash file stamps it
// with the master's mtime.
func (f *File) BuildHash(attr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := &hashTable{attr: attr, version: f.version.Load(), chains: make(map[string][]int)}
	for i, e := range f.Entries {
		for _, t := range e {
			if t.Attr == attr {
				h.chains[t.Val] = append(h.chains[t.Val], i)
			}
		}
	}
	f.hashes[attr] = h
}

// Replace swaps in new entries and bumps the version; existing hash
// tables become stale (they keep the old stamp) until rebuilt.
func (f *File) Replace(entries []Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.Entries = entries
	f.version.Add(1)
}

// lookup returns the indices of entries with attr=val and whether the
// hash path was used (false = linear scan).
func (f *File) lookup(attr, val string) ([]int, bool) {
	f.mu.RLock()
	h := f.hashes[attr]
	version := f.version.Load()
	f.mu.RUnlock()
	if h != nil && h.version == version {
		return h.chains[val], true
	}
	// "Searches for attributes that aren't hashed or whose hash
	// table is out-of-date still work, they just take longer."
	var idx []int
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i, e := range f.Entries {
		if e.Has(attr, val) {
			idx = append(idx, i)
		}
	}
	return idx, false
}

// DB is an ordered list of database files, searched in order (local
// before global).
type DB struct {
	Files []*File

	// ScanSearches and HashSearches count lookup paths, for the
	// staleness tests and the hash-vs-scan experiment.
	mu           sync.Mutex
	scanSearches int64
	hashSearches int64
}

// New assembles a database from parsed files.
func New(files ...*File) *DB { return &DB{Files: files} }

// ParseDB parses source texts in order into a database.
func ParseDB(sources map[string][]byte, order ...string) (*DB, error) {
	db := &DB{}
	for _, name := range order {
		f, err := Parse(name, sources[name])
		if err != nil {
			return nil, err
		}
		db.Files = append(db.Files, f)
	}
	return db, nil
}

// HashAll builds hash tables for the attributes expected to be
// searched often, as the paper's hash files do.
func (db *DB) HashAll(attrs ...string) {
	for _, f := range db.Files {
		for _, a := range attrs {
			f.BuildHash(a)
		}
	}
}

// Version combines the version stamps of every file in the database.
// Any Replace on any file changes the result, so a consumer holding
// answers derived from the database (the connection server's cache)
// can validate them with a few atomic loads and no locks.
func (db *DB) Version() int64 {
	var v int64
	for _, f := range db.Files {
		v += f.version.Load()
	}
	return v
}

// Counters returns (hash-path searches, scan-path searches).
func (db *DB) Counters() (int64, int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.hashSearches, db.scanSearches
}

// Query returns every entry with attr=val, local files first.
func (db *DB) Query(attr, val string) []Entry {
	var out []Entry
	for _, f := range db.Files {
		idx, hashed := f.lookup(attr, val)
		db.mu.Lock()
		if hashed {
			db.hashSearches++
		} else {
			db.scanSearches++
		}
		db.mu.Unlock()
		f.mu.RLock()
		for _, i := range idx {
			if i < len(f.Entries) {
				out = append(out, f.Entries[i])
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// QueryOne returns the first entry with attr=val.
func (db *DB) QueryOne(attr, val string) (Entry, bool) {
	es := db.Query(attr, val)
	if len(es) == 0 {
		return nil, false
	}
	return es[0], true
}

// FindSystem locates a system's entry by any of its names: sys=,
// dom=, or ip=.
func (db *DB) FindSystem(name string) (Entry, bool) {
	for _, attr := range []string{"sys", "dom", "ip", "dk"} {
		if e, ok := db.QueryOne(attr, name); ok {
			return e, true
		}
	}
	return nil, false
}

// ServicePort maps a service name to its port for a protocol, per the
// entries of the form "tcp=echo port=7". Numeric names pass through.
func (db *DB) ServicePort(proto, service string) (string, bool) {
	if service == "" {
		return "", false
	}
	if isNumeric(service) {
		return service, true
	}
	if e, ok := db.QueryOne(proto, service); ok {
		if port, ok := e.Get("port"); ok {
			return port, true
		}
	}
	// IL services fall back to TCP entries plus the IL port base, as
	// the real csquery transcripts show il!...!9fs resolving via a
	// dedicated il entry; here we just require explicit entries.
	return "", false
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
