package ndb

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenerateGlobal synthesizes a global database comparable to the one
// the paper describes ("our global file ... has 43,000 lines"): n
// system entries spread over a few hundred IP networks, each with a
// domain name, addresses, and assorted attributes. It substitutes for
// the proprietary AT&T database in the hash-vs-scan experiment; the
// shape (many entries, several lines each) is what matters.
func GenerateGlobal(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("# synthetic global database\n")
	for net := range n/200 + 1 {
		fmt.Fprintf(&b, "ipnet=net%d ip=10.%d.0.0 ipmask=255.255.255.0\n", net, net%250)
		fmt.Fprintf(&b, "\tipgw=10.%d.0.1\n", net%250)
	}
	for i := range n {
		fmt.Fprintf(&b, "sys=host%d\n", i)
		fmt.Fprintf(&b, "\tdom=host%d.research.bell-labs.com\n", i)
		fmt.Fprintf(&b, "\tip=10.%d.%d.%d ether=0800%08x\n",
			(i/200)%250, (i/250)%250, i%250+2, i)
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, "\tdk=nj/astro/host%d\n", i)
		}
		if rng.Intn(8) == 0 {
			fmt.Fprintf(&b, "\tbootf=/mips/9power flavor=9cpu\n")
		}
	}
	return []byte(b.String())
}
