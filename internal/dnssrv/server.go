package dnssrv

import (
	"strings"
	"sync"

	"repro/internal/udp"
	"repro/internal/xport"
)

// Zone is an authoritative zone: records plus delegations (NS records
// for child zones, with glue A records for the name servers).
type Zone struct {
	Origin string // e.g. "bell-labs.com" or "" for the root

	mu      sync.RWMutex
	records map[string][]RR
}

// NewZone creates an empty zone.
func NewZone(origin string) *Zone {
	return &Zone{Origin: Canonical(origin), records: make(map[string][]RR)}
}

// Add inserts a record.
func (z *Zone) Add(r RR) {
	r.Name = Canonical(r.Name)
	r.Data = strings.TrimSuffix(r.Data, ".")
	if r.TTL == 0 {
		r.TTL = 3600
	}
	z.mu.Lock()
	z.records[r.Name] = append(z.records[r.Name], r)
	z.mu.Unlock()
}

// AddA is shorthand for an address record.
func (z *Zone) AddA(name, addr string) { z.Add(RR{Name: name, Type: TypeA, Data: addr}) }

// Delegate adds a delegation: child zone served by ns at glue address.
func (z *Zone) Delegate(child, ns, glue string) {
	z.Add(RR{Name: child, Type: TypeNS, Data: ns})
	if glue != "" {
		z.AddA(ns, glue)
	}
}

// lookup finds records for name/type, chasing CNAMEs within the zone.
// It returns (answers, delegation NS + glue, nxdomain).
func (z *Zone) lookup(name string, qtype uint16) (answer, authority, extra []RR, nx bool) {
	name = Canonical(name)
	z.mu.RLock()
	defer z.mu.RUnlock()
	for range 8 { // CNAME chase bound
		rrs := z.records[name]
		var cname string
		for _, r := range rrs {
			switch {
			case r.Type == qtype:
				answer = append(answer, r)
			case r.Type == TypeCNAME:
				cname = r.Data
				answer = append(answer, r)
			}
		}
		if len(answer) > 0 && cname == "" {
			return answer, nil, nil, false
		}
		if cname != "" && qtype != TypeCNAME {
			name = Canonical(cname)
			continue
		}
		break
	}
	if len(answer) > 0 {
		return answer, nil, nil, false
	}
	// Delegation: walk up the name looking for NS records below our
	// origin.
	for probe := name; probe != "" && probe != z.Origin; {
		for _, r := range z.records[probe] {
			if r.Type == TypeNS {
				authority = append(authority, r)
				for _, g := range z.records[Canonical(r.Data)] {
					if g.Type == TypeA {
						extra = append(extra, g)
					}
				}
			}
		}
		if len(authority) > 0 {
			return nil, authority, extra, false
		}
		if i := strings.IndexByte(probe, '.'); i >= 0 {
			probe = probe[i+1:]
		} else {
			probe = ""
		}
	}
	return nil, nil, nil, true
}

// Server answers queries for a zone over the simulated UDP network.
type Server struct {
	zone *Zone
	conn xport.Conn
	done chan struct{}
}

// Serve starts an authoritative server for zone on the given UDP
// device, announced on port 53 in headers mode.
func Serve(proto *udp.Proto, zone *Zone) (*Server, error) {
	conn, err := proto.NewConn()
	if err != nil {
		return nil, err
	}
	if err := conn.Announce("53"); err != nil {
		conn.Close()
		return nil, err
	}
	s := &Server{zone: zone, conn: conn, done: make(chan struct{})}
	proto.Clock().Go(s.loop)
	return s, nil
}

// Close stops the server.
func (s *Server) Close() {
	close(s.done)
	s.conn.Close()
}

func (s *Server) loop() {
	buf := make([]byte, 8192)
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
		if n < udp.AddrHdrLen {
			continue
		}
		hdr := append([]byte(nil), buf[:udp.AddrHdrLen]...)
		q, err := Unmarshal(buf[udp.AddrHdrLen:n])
		if err != nil || q.Response {
			continue
		}
		ans, auth, extra, nx := s.zone.lookup(q.QName, q.QType)
		resp := &Msg{
			ID: q.ID, Response: true, Auth: true,
			QName: q.QName, QType: q.QType,
			Answer: ans, NS: auth, Extra: extra,
		}
		if nx {
			resp.Rcode = rcodeNX
		}
		out, err := resp.Marshal()
		if err != nil {
			continue
		}
		// Headers mode: the reply carries the querier's address.
		s.conn.Write(append(hdr, out...))
	}
}
