package dnssrv

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/udp"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

func TestMsgRoundTrip(t *testing.T) {
	m := &Msg{
		ID: 42, Response: true, Auth: true, Rcode: 0,
		QName: "helix.research.bell-labs.com", QType: TypeA,
		Answer: []RR{{Name: "helix.research.bell-labs.com", Type: TypeA, TTL: 3600, Data: "135.104.9.31"}},
		NS:     []RR{{Name: "research.bell-labs.com", Type: TypeNS, TTL: 3600, Data: "bootes.research.bell-labs.com"}},
		Extra:  []RR{{Name: "bootes.research.bell-labs.com", Type: TypeA, TTL: 3600, Data: "135.104.9.2"}},
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, g) {
		t.Errorf("round trip:\n got %+v\nwant %+v", g, m)
	}
}

func TestMsgQuick(t *testing.T) {
	label := func(s string) string {
		out := []byte{}
		for _, c := range []byte(s) {
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
				out = append(out, c)
			}
			if len(out) == 20 {
				break
			}
		}
		if len(out) == 0 {
			return "x"
		}
		return string(out)
	}
	f := func(id uint16, a, b, txt string, ttl uint32) bool {
		name := label(a) + "." + label(b)
		m := &Msg{ID: id, Response: true, QName: name, QType: TypeTXT,
			Answer: []RR{{Name: name, Type: TypeTXT, TTL: ttl, Data: txt}}}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		g, err := Unmarshal(raw)
		return err == nil && reflect.DeepEqual(g, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, p := range [][]byte{nil, {1, 2, 3}, make([]byte, 12)} {
		if _, err := Unmarshal(p); err == nil && len(p) < 12 {
			t.Errorf("garbage %v accepted", p)
		}
	}
	// Truncated valid message.
	m := &Msg{ID: 1, QName: "a.b", QType: TypeA}
	b, _ := m.Marshal()
	if _, err := Unmarshal(b[:len(b)-3]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestZoneLookup(t *testing.T) {
	z := NewZone("example.com")
	z.AddA("www.example.com", "1.2.3.4")
	z.Add(RR{Name: "alias.example.com", Type: TypeCNAME, Data: "www.example.com"})
	z.Delegate("sub.example.com", "ns.sub.example.com", "5.6.7.8")

	ans, _, _, nx := z.lookup("www.example.com", TypeA)
	if nx || len(ans) != 1 || ans[0].Data != "1.2.3.4" {
		t.Errorf("direct lookup %v nx=%v", ans, nx)
	}
	// CNAME chase within the zone yields both records.
	ans, _, _, _ = z.lookup("alias.example.com", TypeA)
	if len(ans) != 2 || ans[0].Type != TypeCNAME || ans[1].Data != "1.2.3.4" {
		t.Errorf("cname chase %v", ans)
	}
	// Delegation returns NS + glue.
	ans, auth, extra, nx := z.lookup("deep.sub.example.com", TypeA)
	if nx || len(ans) != 0 || len(auth) != 1 || len(extra) != 1 {
		t.Errorf("delegation ans=%v auth=%v extra=%v nx=%v", ans, auth, extra, nx)
	}
	if auth[0].Data != "ns.sub.example.com" || extra[0].Data != "5.6.7.8" {
		t.Errorf("delegation records %v %v", auth, extra)
	}
	// NXDOMAIN.
	if _, _, _, nx := z.lookup("nowhere.example.com", TypeA); !nx {
		t.Error("missing name did not NX")
	}
}

// resolverWorld builds a root server, a zone server, and a client
// resolver on one ether segment.
func resolverWorld(t *testing.T) *Resolver {
	t.Helper()
	seg := ether.NewSegment("e0", ether.Profile{})
	t.Cleanup(seg.Close)
	mask := ip.Addr{255, 255, 255, 0}
	mk := func(a ip.Addr) *udp.Proto {
		st := ip.NewStack()
		if _, err := st.Bind(seg.NewInterface("e"), a, mask); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		return udp.New(st)
	}
	rootUDP := mk(ip.Addr{10, 0, 0, 1})
	zoneUDP := mk(ip.Addr{10, 0, 0, 2})
	clientUDP := mk(ip.Addr{10, 0, 0, 3})

	root := NewZone("")
	root.Delegate("example.com", "ns.example.com", "10.0.0.2")
	rs, err := Serve(rootUDP, root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)

	zone := NewZone("example.com")
	zone.AddA("www.example.com", "93.184.216.34")
	zone.Add(RR{Name: "alias.example.com", Type: TypeCNAME, Data: "www.example.com"})
	zs, err := Serve(zoneUDP, zone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(zs.Close)

	return NewResolver(clientUDP, []ip.Addr{{10, 0, 0, 1}})
}

func TestRecursiveResolution(t *testing.T) {
	r := resolverWorld(t)
	addrs, err := r.LookupA("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0].String() != "93.184.216.34" {
		t.Errorf("resolved %v", addrs)
	}
	// Two wire queries: root then zone server.
	if r.Queries != 2 {
		t.Errorf("wire queries %d, want 2", r.Queries)
	}
}

func TestResolverCaching(t *testing.T) {
	r := resolverWorld(t)
	if _, err := r.LookupA("www.example.com"); err != nil {
		t.Fatal(err)
	}
	q := r.Queries
	if _, err := r.LookupA("www.example.com"); err != nil {
		t.Fatal(err)
	}
	if r.Queries != q {
		t.Error("cached lookup hit the wire")
	}
	if r.CacheLen() == 0 {
		t.Error("cache empty after lookups")
	}
}

func TestCNAMEAcrossLookup(t *testing.T) {
	r := resolverWorld(t)
	addrs, err := r.LookupA("alias.example.com")
	if err != nil || len(addrs) != 1 || addrs[0].String() != "93.184.216.34" {
		t.Errorf("cname resolution %v, %v", addrs, err)
	}
}

func TestNXDomain(t *testing.T) {
	r := resolverWorld(t)
	if _, err := r.LookupA("missing.example.com"); err != ErrNX {
		t.Errorf("nxdomain error = %v", err)
	}
}

func TestTimeoutWhenNoServers(t *testing.T) {
	// The retry ladder against dead roots burns simulated time on the
	// virtual clock, so the test costs microseconds of wall time and
	// the 3s budget is exact rather than machine-load-dependent.
	// (t.Error, not t.Fatal, inside Run: Goexit from a machine
	// goroutine would hang the scheduler.)
	v := vclock.NewVirtual()
	v.Run(func() {
		seg := ether.NewSegment("e0", ether.Profile{Clock: v})
		defer seg.Close()
		st := ip.NewStackClock(v)
		defer st.Close()
		st.Bind(seg.NewInterface("e"), ip.Addr{10, 0, 0, 9}, ip.Addr{255, 255, 255, 0})
		r := NewResolver(udp.New(st), []ip.Addr{{10, 0, 0, 200}}) // nobody there
		start := v.Now()
		if _, err := r.LookupA("www.example.com"); err == nil {
			t.Error("lookup with dead roots succeeded")
		}
		if v.Since(start) > 3*time.Second {
			t.Error("timeout took too long")
		}
	})
}

func TestDevNode(t *testing.T) {
	r := resolverWorld(t)
	n := Node(r, "glenda")
	h, err := n.Open(vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("www.example.com ip"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	rn, err := h.Read(buf, 0)
	if err != nil || string(buf[:rn]) != "www.example.com ip 93.184.216.34\n" {
		t.Errorf("dns dev line %q, %v", buf[:rn], err)
	}
	// Exhausted.
	if rn, _ := h.Read(buf, 0); rn != 0 {
		t.Error("extra lines after answer")
	}
	// Bad request types.
	if _, err := h.Write([]byte("www.example.com bogus"), 0); err == nil {
		t.Error("bogus type accepted")
	}
	// Failed lookups error the write.
	if _, err := h.Write([]byte("missing.example.com ip"), 0); err == nil {
		t.Error("nx write succeeded")
	}
}

func TestParseTypeAndNames(t *testing.T) {
	for s, want := range map[string]uint16{"ip": TypeA, "A": TypeA, "ns": TypeNS, "cname": TypeCNAME, "ptr": TypePTR, "txt": TypeTXT} {
		got, ok := ParseType(s)
		if !ok || got != want {
			t.Errorf("ParseType(%q) = %d,%v", s, got, ok)
		}
	}
	if _, ok := ParseType("mx"); ok {
		t.Error("unsupported type parsed")
	}
	if TypeName(TypeA) != "ip" || TypeName(999) == "" {
		t.Error("TypeName wrong")
	}
	if Canonical("WWW.Example.COM.") != "www.example.com" {
		t.Error("Canonical wrong")
	}
}
