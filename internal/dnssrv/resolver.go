package dnssrv

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/udp"
	"repro/internal/vclock"
)

// Resolver errors.
var (
	ErrNoAnswer = errors.New("dns: no answer")
	ErrNX       = errors.New("dns: name does not exist")
	ErrTimeout  = errors.New("dns: query timed out")
)

const queryTimeout = 500 * time.Millisecond

// Resolver performs recursive resolution from root hints, caching what
// it learns from the network.
type Resolver struct {
	proto *udp.Proto
	roots []ip.Addr
	ck    vclock.Clock

	mu    sync.Mutex
	cache map[cacheKey]cacheVal
	rng   *rand.Rand

	// Queries counts wire queries (cache effectiveness tests).
	Queries int64
}

type cacheKey struct {
	name string
	typ  uint16
}

type cacheVal struct {
	rrs    []RR
	expiry time.Time
}

// NewResolver creates a resolver that speaks UDP via proto and starts
// from the given root servers.
func NewResolver(proto *udp.Proto, roots []ip.Addr) *Resolver {
	ck := proto.Clock()
	return &Resolver{
		proto: proto,
		roots: roots,
		ck:    ck,
		cache: make(map[cacheKey]cacheVal),
		rng:   rand.New(rand.NewSource(ck.Now().UnixNano())),
	}
}

// Lookup resolves name/qtype recursively. It returns the answer
// records (following CNAME chains across zones).
func (r *Resolver) Lookup(name string, qtype uint16) ([]RR, error) {
	name = Canonical(name)
	if rrs, ok := r.cached(name, qtype); ok {
		return rrs, nil
	}
	rrs, err := r.resolve(name, qtype, 0)
	if err != nil {
		return nil, err
	}
	r.store(name, qtype, rrs)
	return rrs, nil
}

// LookupA resolves a host name to its addresses.
func (r *Resolver) LookupA(name string) ([]ip.Addr, error) {
	rrs, err := r.Lookup(name, TypeA)
	if err != nil {
		return nil, err
	}
	var out []ip.Addr
	for _, rr := range rrs {
		if rr.Type != TypeA {
			continue
		}
		if a, err := ip.ParseAddr(rr.Data); err == nil {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, ErrNoAnswer
	}
	return out, nil
}

func (r *Resolver) cached(name string, qtype uint16) ([]RR, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cache[cacheKey{name, qtype}]
	if !ok || r.ck.Now().After(v.expiry) {
		delete(r.cache, cacheKey{name, qtype})
		return nil, false
	}
	return v.rrs, true
}

func (r *Resolver) store(name string, qtype uint16, rrs []RR) {
	ttl := uint32(3600)
	for _, rr := range rrs {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	r.mu.Lock()
	r.cache[cacheKey{name, qtype}] = cacheVal{
		rrs:    rrs,
		expiry: r.ck.Now().Add(time.Duration(ttl) * time.Second),
	}
	r.mu.Unlock()
}

// CacheLen reports cached entry count (tests).
func (r *Resolver) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// resolve walks delegations from the roots.
func (r *Resolver) resolve(name string, qtype uint16, depth int) ([]RR, error) {
	if depth > 8 {
		return nil, ErrNoAnswer
	}
	servers := append([]ip.Addr(nil), r.roots...)
	for range 16 { // delegation walk bound
		msg, err := r.queryAny(servers, name, qtype)
		if err != nil {
			return nil, err
		}
		if msg.Rcode == rcodeNX {
			return nil, ErrNX
		}
		if len(msg.Answer) > 0 {
			// Cross-zone CNAME: restart for the target if the
			// answer has no terminal record.
			var final []RR
			cname := ""
			for _, rr := range msg.Answer {
				if rr.Type == qtype {
					final = append(final, rr)
				}
				if rr.Type == TypeCNAME {
					cname = rr.Data
				}
			}
			if len(final) > 0 || qtype == TypeCNAME {
				return msg.Answer, nil
			}
			if cname != "" {
				more, err := r.resolve(Canonical(cname), qtype, depth+1)
				if err != nil {
					return nil, err
				}
				return append(msg.Answer, more...), nil
			}
			return msg.Answer, nil
		}
		// Delegation: collect the next servers from NS + glue.
		var next []ip.Addr
		for _, nsrr := range msg.NS {
			if nsrr.Type != TypeNS {
				continue
			}
			for _, g := range msg.Extra {
				if g.Type == TypeA && Canonical(g.Name) == Canonical(nsrr.Data) {
					if a, err := ip.ParseAddr(g.Data); err == nil {
						next = append(next, a)
					}
				}
			}
		}
		if len(next) == 0 {
			return nil, ErrNoAnswer
		}
		servers = next
	}
	return nil, ErrNoAnswer
}

// queryAny tries the servers in order until one answers.
func (r *Resolver) queryAny(servers []ip.Addr, name string, qtype uint16) (*Msg, error) {
	var lastErr error = ErrTimeout
	for _, s := range servers {
		msg, err := r.query(s, name, qtype)
		if err == nil {
			return msg, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// query sends one question to one server with a timeout.
func (r *Resolver) query(server ip.Addr, name string, qtype uint16) (*Msg, error) {
	conn, err := r.proto.NewConn()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.Connect(ip.HostPort(server, 53)); err != nil {
		return nil, err
	}
	r.mu.Lock()
	id := uint16(r.rng.Intn(0x10000))
	r.Queries++
	r.mu.Unlock()
	q := &Msg{ID: id, QName: name, QType: qtype}
	pkt, err := q.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	type result struct {
		msg *Msg
		err error
	}
	ch := vclock.NewMailbox[result](r.ck, 1)
	r.ck.Go(func() {
		buf := make([]byte, 8192)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				ch.TrySend(result{nil, err})
				return
			}
			m, err := Unmarshal(buf[:n])
			if err != nil || !m.Response || m.ID != id {
				continue
			}
			ch.TrySend(result{m, nil})
			return
		}
	})
	// The timeout closes the mailbox; an already-sent reply is drained
	// first. The deferred conn.Close unblocks the reader afterwards.
	timer := r.ck.AfterFunc(queryTimeout, func() { ch.Close() })
	res, ok := ch.Recv()
	timer.Stop()
	if !ok {
		return nil, ErrTimeout
	}
	return res.msg, res.err
}
