package dnssrv

import (
	"strings"
	"sync"

	"repro/internal/devtree"
	"repro/internal/vfs"
)

// Node returns the /net/dns file (§4.2): "a client writes a request of
// the form domain-name type ... The client reads /net/dns to retrieve
// the records", one line per read.
func Node(res *Resolver, owner string) vfs.Node {
	return &devtree.FileNode{
		Entry: devtree.MkFile("dns", owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return &dnsHandle{res: res}, nil
		},
	}
}

type dnsHandle struct {
	res *Resolver

	mu    sync.Mutex
	lines []string
	err   error
}

var _ vfs.Handle = (*dnsHandle)(nil)

// Write implements vfs.Handle: one query per write.
func (h *dnsHandle) Write(p []byte, off int64) (int, error) {
	req := strings.TrimSpace(string(p))
	name, typStr, ok := strings.Cut(req, " ")
	if !ok {
		typStr = "ip"
	}
	qtype, okT := ParseType(strings.TrimSpace(typStr))
	if name == "" || !okT {
		return 0, vfs.ErrBadArg
	}
	rrs, err := h.res.Lookup(name, qtype)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lines = nil
	h.err = err
	if err != nil {
		return 0, err
	}
	for _, rr := range rrs {
		h.lines = append(h.lines, rr.String()+"\n")
	}
	return len(p), nil
}

// Read implements vfs.Handle: one record line per read.
func (h *dnsHandle) Read(p []byte, off int64) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return 0, h.err
	}
	if len(h.lines) == 0 {
		return 0, nil
	}
	line := h.lines[0]
	h.lines = h.lines[1:]
	return copy(p, line), nil
}

// Close implements vfs.Handle.
func (h *dnsHandle) Close() error { return nil }
