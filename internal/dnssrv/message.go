// Package dnssrv implements the domain name system of §4.2: "the
// domain name server (DNS) is a user level process providing one file,
// /net/dns. A client writes a request of the form domain-name type ...
// DNS performs a recursive query through the Internet domain name
// system producing one line per resource record found ... Like other
// domain name servers, DNS caches information learned from the
// network."
//
// Authoritative zone servers answer over the simulated UDP network;
// the resolver walks delegations from root hints and caches with TTL.
// The wire format is real binary DNS in miniature: the standard
// header, length-prefixed label names, A/NS/CNAME/PTR/TXT records —
// without name compression (documented substitution; it only affects
// packet size).
package dnssrv

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ip"
)

// Record types.
const (
	TypeA     = 1
	TypeNS    = 2
	TypeCNAME = 5
	TypePTR   = 12
	TypeTXT   = 16
)

// TypeName formats a record type for /net/dns output.
func TypeName(t uint16) string {
	switch t {
	case TypeA:
		return "ip"
	case TypeNS:
		return "ns"
	case TypeCNAME:
		return "cname"
	case TypePTR:
		return "ptr"
	case TypeTXT:
		return "txt"
	}
	return fmt.Sprintf("type%d", t)
}

// ParseType maps the /net/dns request type word to a record type.
func ParseType(s string) (uint16, bool) {
	switch strings.ToLower(s) {
	case "ip", "a":
		return TypeA, true
	case "ns":
		return TypeNS, true
	case "cname":
		return TypeCNAME, true
	case "ptr":
		return TypePTR, true
	case "txt":
		return TypeTXT, true
	}
	return 0, false
}

// Header flags.
const (
	flagQR  = 0x8000 // response
	flagAA  = 0x0400 // authoritative answer
	rcodeNX = 3      // name error
)

// RR is a resource record.
type RR struct {
	Name string // canonical lowercase, no trailing dot
	Type uint16
	TTL  uint32
	// Data holds the presentation form: dotted quad for A, a domain
	// name for NS/CNAME/PTR, text for TXT.
	Data string
}

func (r RR) String() string {
	return fmt.Sprintf("%s %s %s", r.Name, TypeName(r.Type), r.Data)
}

// Msg is a DNS message.
type Msg struct {
	ID       uint16
	Response bool
	Auth     bool
	Rcode    int
	QName    string
	QType    uint16
	Answer   []RR
	NS       []RR
	Extra    []RR
}

// Canonical lower-cases and strips the trailing dot.
func Canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// Marshaling errors.
var ErrBadMsg = errors.New("dns: malformed message")

func putName(b []byte, name string) ([]byte, error) {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if label == "" || len(label) > 63 {
				return nil, ErrBadMsg
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

func getName(p []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(p) {
			return "", 0, ErrBadMsg
		}
		n := int(p[off])
		off++
		if n == 0 {
			break
		}
		if n > 63 || off+n > len(p) {
			return "", 0, ErrBadMsg
		}
		labels = append(labels, string(p[off:off+n]))
		off += n
	}
	return strings.Join(labels, "."), off, nil
}

func put16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putRR(b []byte, r RR) ([]byte, error) {
	b, err := putName(b, Canonical(r.Name))
	if err != nil {
		return nil, err
	}
	b = put16(b, r.Type)
	b = put16(b, 1) // class IN
	b = put32(b, r.TTL)
	var rdata []byte
	switch r.Type {
	case TypeA:
		a, err := ip.ParseAddr(r.Data)
		if err != nil {
			return nil, err
		}
		rdata = a[:]
	case TypeNS, TypeCNAME, TypePTR:
		rdata, err = putName(nil, Canonical(r.Data))
		if err != nil {
			return nil, err
		}
	default: // TXT and unknown: raw text
		rdata = []byte(r.Data)
	}
	b = put16(b, uint16(len(rdata)))
	return append(b, rdata...), nil
}

func getRR(p []byte, off int) (RR, int, error) {
	var r RR
	name, off, err := getName(p, off)
	if err != nil {
		return r, 0, err
	}
	if off+10 > len(p) {
		return r, 0, ErrBadMsg
	}
	r.Name = name
	r.Type = uint16(p[off])<<8 | uint16(p[off+1])
	r.TTL = uint32(p[off+4])<<24 | uint32(p[off+5])<<16 | uint32(p[off+6])<<8 | uint32(p[off+7])
	rdlen := int(p[off+8])<<8 | int(p[off+9])
	off += 10
	if off+rdlen > len(p) {
		return r, 0, ErrBadMsg
	}
	rdata := p[off : off+rdlen]
	off += rdlen
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, ErrBadMsg
		}
		r.Data = ip.Addr{rdata[0], rdata[1], rdata[2], rdata[3]}.String()
	case TypeNS, TypeCNAME, TypePTR:
		n, _, err := getName(rdata, 0)
		if err != nil {
			return r, 0, err
		}
		r.Data = n
	default:
		r.Data = string(rdata)
	}
	return r, off, nil
}

// Marshal encodes the message.
func (m *Msg) Marshal() ([]byte, error) {
	b := make([]byte, 0, 128)
	b = put16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	if m.Auth {
		flags |= flagAA
	}
	flags |= uint16(m.Rcode) & 0xf
	b = put16(b, flags)
	b = put16(b, 1) // one question
	b = put16(b, uint16(len(m.Answer)))
	b = put16(b, uint16(len(m.NS)))
	b = put16(b, uint16(len(m.Extra)))
	var err error
	b, err = putName(b, Canonical(m.QName))
	if err != nil {
		return nil, err
	}
	b = put16(b, m.QType)
	b = put16(b, 1)
	for _, sec := range [][]RR{m.Answer, m.NS, m.Extra} {
		for _, r := range sec {
			b, err = putRR(b, r)
			if err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// Unmarshal decodes a message.
func Unmarshal(p []byte) (*Msg, error) {
	if len(p) < 12 {
		return nil, ErrBadMsg
	}
	m := &Msg{}
	m.ID = uint16(p[0])<<8 | uint16(p[1])
	flags := uint16(p[2])<<8 | uint16(p[3])
	m.Response = flags&flagQR != 0
	m.Auth = flags&flagAA != 0
	m.Rcode = int(flags & 0xf)
	qd := int(p[4])<<8 | int(p[5])
	an := int(p[6])<<8 | int(p[7])
	ns := int(p[8])<<8 | int(p[9])
	ar := int(p[10])<<8 | int(p[11])
	if qd != 1 {
		return nil, ErrBadMsg
	}
	name, off, err := getName(p, 12)
	if err != nil {
		return nil, err
	}
	if off+4 > len(p) {
		return nil, ErrBadMsg
	}
	m.QName = name
	m.QType = uint16(p[off])<<8 | uint16(p[off+1])
	off += 4
	read := func(n int) ([]RR, error) {
		var rrs []RR
		for range n {
			var r RR
			r, off, err = getRR(p, off)
			if err != nil {
				return nil, err
			}
			rrs = append(rrs, r)
		}
		return rrs, nil
	}
	if m.Answer, err = read(an); err != nil {
		return nil, err
	}
	if m.NS, err = read(ns); err != nil {
		return nil, err
	}
	if m.Extra, err = read(ar); err != nil {
		return nil, err
	}
	return m, nil
}
