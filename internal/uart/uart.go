// Package uart implements the serial-line device of §2.2: "Simple
// device drivers serve a single level directory containing just a few
// files; for example, we represent each UART by a data and a control
// file ... writing the string b1200 to /dev/eia1ctl sets the line to
// 1200 baud." Programs like stty are replaced by echo and shell
// redirection.
//
// A Line is a full-duplex serial wire between two machines (the
// paper's "9600 baud serial lines provide slow links to users at
// home"); each end is a stream whose device side paces bytes at the
// configured baud rate. Serial wires carry bytes, not messages, so a
// 9P mount over a UART needs delimiters restored — push the "frame"
// stream module or use the ninep marshaling adapter, exactly the
// §2.1/§2.4 arrangement.
package uart

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/devtree"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// DefaultBaud is the line speed before any ctl command.
const DefaultBaud = 9600

// Line is a serial wire between two Ends.
type Line struct {
	a, b *End
}

// NewLine creates a line; both ends start at DefaultBaud.
func NewLine() *Line {
	return NewLineClock(nil)
}

// NewLineClock is NewLine with the ends' pacing on an explicit clock;
// nil means the real clock.
func NewLineClock(ck vclock.Clock) *Line {
	l := &Line{}
	l.a = newEnd(ck)
	l.b = newEnd(ck)
	l.a.peer, l.b.peer = l.b, l.a
	return l
}

// Ends returns the two ends.
func (l *Line) Ends() (*End, *End) { return l.a, l.b }

// Close hangs up both ends.
func (l *Line) Close() {
	l.a.close()
	l.b.close()
}

// End is one machine's UART.
type End struct {
	peer *End
	ck   vclock.Clock
	baud atomic.Int64

	mu     sync.Mutex
	stream *streams.Stream
	// txFree is the transmitter's serialization point.
	txFree time.Time
	closed bool

	inBytes  atomic.Int64
	outBytes atomic.Int64
}

func newEnd(ck vclock.Clock) *End {
	e := &End{ck: vclock.Or(ck)}
	e.baud.Store(DefaultBaud)
	e.stream = streams.NewClock(0, ck, e.transmit)
	return e
}

// Stream returns the end's stream, onto which processing modules may
// be pushed ("push frame" restores message delimiters over the raw
// byte line).
func (e *End) Stream() *streams.Stream { return e.stream }

// SetBaud changes the line speed (the ctl "b" command).
func (e *End) SetBaud(baud int) error {
	if baud <= 0 || baud > 10_000_000 {
		return vfs.ErrBadCtl
	}
	e.baud.Store(int64(baud))
	return nil
}

// Baud returns the current speed.
func (e *End) Baud() int { return int(e.baud.Load()) }

// transmit is the device-end output put routine: it paces the block's
// bytes at the line rate (10 bits per byte: start + 8 data + stop) and
// delivers them to the peer as an undelimited byte arrival — serial
// wires have no record boundaries.
func (e *End) transmit(b *streams.Block) {
	if b.Type != streams.BlockData || len(b.Buf) == 0 {
		b.Free()
		return
	}
	n := len(b.Buf)
	bits := int64(n) * 10
	d := time.Duration(bits * int64(time.Second) / e.baud.Load())
	e.mu.Lock()
	now := e.ck.Now()
	if e.txFree.Before(now) {
		e.txFree = now
	}
	e.txFree = e.txFree.Add(d)
	free := e.txFree
	closed := e.closed
	e.mu.Unlock()
	if closed {
		b.Free()
		return
	}
	e.ck.SleepUntil(free)
	e.outBytes.Add(int64(n))
	peer := e.peer
	peer.mu.Lock()
	s := peer.stream
	closed = peer.closed
	peer.mu.Unlock()
	if closed {
		b.Free()
		return
	}
	peer.inBytes.Add(int64(n))
	// The block itself crosses the wire — no copy. It arrives as an
	// undelimited byte arrival: serial wires have no record boundaries.
	s.DeviceUp(streams.NewBlockOwned(b.TakeInner()))
}

func (e *End) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	s := e.stream
	e.mu.Unlock()
	s.HangupUp()
	s.Close()
}

// Read drains received bytes.
func (e *End) Read(p []byte) (int, error) { return e.stream.Read(p) }

// Write queues bytes for transmission.
func (e *End) Write(p []byte) (int, error) { return e.stream.Write(p) }

// Close hangs up this end (the line itself stays for the peer to
// notice EOF).
func (e *End) Close() error {
	e.close()
	return nil
}

// Dev serves UARTs as the flat /dev files of the paper:
//
//	% ls -l /dev/eia*
//	--rw-rw-rw- t 0 bootes bootes 0 Jul 16 17:28 eia1
//	--rw-rw-rw- t 0 bootes bootes 0 Jul 16 17:28 eia1ctl
type Dev struct {
	owner string

	mu   sync.Mutex
	eias map[int]*End
}

var _ vfs.Device = (*Dev)(nil)

// NewDev creates an empty UART device.
func NewDev(owner string) *Dev {
	return &Dev{owner: owner, eias: make(map[int]*End)}
}

// Add attaches a line end as eia<n>.
func (d *Dev) Add(n int, e *End) {
	d.mu.Lock()
	d.eias[n] = e
	d.mu.Unlock()
}

// Name implements vfs.Device.
func (d *Dev) Name() string { return "eia" }

// Attach implements vfs.Device.
func (d *Dev) Attach(spec string) (vfs.Node, error) {
	if spec != "" {
		return nil, vfs.ErrBadSpec
	}
	root := &devtree.DirNode{Entry: devtree.MkDir("eia", d.owner, 0555)}
	root.List = func() ([]vfs.Dir, error) {
		d.mu.Lock()
		defer d.mu.Unlock()
		var ents []vfs.Dir
		for n := range d.eias {
			ents = append(ents,
				devtree.MkFile(fmt.Sprintf("eia%d", n), d.owner, 0666),
				devtree.MkFile(fmt.Sprintf("eia%dctl", n), d.owner, 0666))
		}
		return ents, nil
	}
	root.Lookup = func(name string) (vfs.Node, error) {
		ctl := false
		numStr, ok := cutPrefix(name, "eia")
		if !ok {
			return nil, vfs.ErrNotExist
		}
		if s, isCtl := cutSuffix(numStr, "ctl"); isCtl {
			numStr, ctl = s, true
		}
		n, err := strconv.Atoi(numStr)
		if err != nil {
			return nil, vfs.ErrNotExist
		}
		d.mu.Lock()
		e := d.eias[n]
		d.mu.Unlock()
		if e == nil {
			return nil, vfs.ErrNotExist
		}
		if ctl {
			return d.ctlNode(name, e), nil
		}
		return d.dataNode(name, e), nil
	}
	return root, nil
}

func cutPrefix(s, p string) (string, bool) {
	if len(s) >= len(p) && s[:len(p)] == p {
		return s[len(p):], true
	}
	return s, false
}

func cutSuffix(s, p string) (string, bool) {
	if len(s) >= len(p) && s[len(s)-len(p):] == p {
		return s[:len(s)-len(p)], true
	}
	return s, false
}

// ctlNode parses the ASCII control strings: b<baud> sets the speed;
// the word-format controls of real eia ctl files (l8, pn, s1, ...)
// are accepted and ignored, and push/pop/hangup go to the stream.
func (d *Dev) ctlNode(name string, e *End) vfs.Node {
	return &devtree.FileNode{
		Entry: devtree.MkFile(name, d.owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return &devtree.CtlHandle{
				Get: func() (string, error) {
					return fmt.Sprintf("b%d", e.Baud()), nil
				},
				Cmd: func(cmd string) error { return e.ctl(cmd) },
			}, nil
		},
	}
}

func (e *End) ctl(cmd string) error {
	if cmd == "" {
		return vfs.ErrBadCtl
	}
	switch cmd[0] {
	case 'b':
		baud, err := strconv.Atoi(cmd[1:])
		if err != nil {
			return vfs.ErrBadCtl
		}
		return e.SetBaud(baud)
	case 'l', 'm', 'f', 'd', 'r', 'k', 'D', 'K':
		// Line-discipline controls: accepted, no simulation effect.
		return nil
	}
	switch {
	case cmd == "pop" || cmd == "hangup" || len(cmd) > 5 && cmd[:5] == "push ":
		// Stream configuration requests go to the stream system
		// (§2.4.1).
		return e.stream.WriteCtl(cmd)
	case cmd[0] == 'p' || cmd[0] == 's':
		// pn/pe/po parity, s1/s2 stop bits: accepted, no effect.
		return nil
	default:
		return vfs.ErrBadCtl
	}
}

func (d *Dev) dataNode(name string, e *End) vfs.Node {
	return &devtree.FileNode{
		Entry: devtree.MkFile(name, d.owner, 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return uartHandle{e: e}, nil
		},
	}
}

type uartHandle struct{ e *End }

var _ vfs.Handle = uartHandle{}

// Read implements vfs.Handle (offset ignored: a stream).
func (h uartHandle) Read(p []byte, off int64) (int, error) { return h.e.Read(p) }

// Write implements vfs.Handle.
func (h uartHandle) Write(p []byte, off int64) (int, error) { return h.e.Write(p) }

// Close implements vfs.Handle; the line persists (modems hang up via
// ctl, not by closing the file).
func (h uartHandle) Close() error { return nil }
