package uart

import (
	"bytes"
	"io"
	"sort"
	"testing"
	"time"

	"repro/internal/exportfs"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

func line(t *testing.T) (*End, *End) {
	t.Helper()
	l := NewLine()
	t.Cleanup(l.Close)
	a, b := l.Ends()
	// Fast lines for functional tests.
	a.SetBaud(8_000_000)
	b.SetBaud(8_000_000)
	return a, b
}

func TestBytesCrossTheLine(t *testing.T) {
	a, b := line(t)
	a.Write([]byte("at your service"))
	buf := make([]byte, 64)
	got := []byte{}
	for len(got) < 15 {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "at your service" {
		t.Errorf("received %q", got)
	}
	// And back.
	b.Write([]byte("ok"))
	n, err := a.Read(buf)
	if err != nil || string(buf[:n]) != "ok" {
		t.Errorf("reverse %q, %v", buf[:n], err)
	}
}

func TestBaudPacing(t *testing.T) {
	l := NewLine()
	defer l.Close()
	a, b := l.Ends()
	a.SetBaud(9600) // ~960 bytes/sec
	start := time.Now()
	a.Write(make([]byte, 96)) // ~100 ms on the wire
	buf := make([]byte, 128)
	got := 0
	for got < 96 {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	if el := time.Since(start); el < 70*time.Millisecond {
		t.Errorf("96 bytes at 9600 baud took only %v", el)
	}
}

func TestFileTreeAndCtl(t *testing.T) {
	a, _ := line(t)
	dev := NewDev("bootes")
	dev.Add(1, a)
	nsp := ns.New("bootes", ramfs.New("bootes").Root())
	if err := nsp.MountDevice(dev, "", "/dev", ns.MREPL); err != nil {
		t.Fatal(err)
	}
	// The paper's listing: eia1 and eia1ctl, flat in /dev.
	ents, err := nsp.ReadDir("/dev")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "eia1" || names[1] != "eia1ctl" {
		t.Fatalf("/dev entries %v", names)
	}
	// echo b1200 > /dev/eia1ctl (stty replaced by echo, §2.2).
	ctl, err := nsp.Open("/dev/eia1ctl", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.WriteString("b1200\n"); err != nil {
		t.Fatal(err)
	}
	if a.Baud() != 1200 {
		t.Errorf("baud %d after b1200", a.Baud())
	}
	buf := make([]byte, 16)
	n, _ := ctl.ReadAt(buf, 0)
	if string(buf[:n]) != "b1200" {
		t.Errorf("ctl read %q", buf[:n])
	}
	// Line-discipline words are accepted; garbage is not.
	if _, err := ctl.WriteString("l8"); err != nil {
		t.Errorf("l8 rejected: %v", err)
	}
	if _, err := ctl.WriteString("b9x"); !vfs.SameError(err, vfs.ErrBadCtl) {
		t.Errorf("bad baud accepted: %v", err)
	}
	if _, err := ctl.WriteString("zzz"); err == nil {
		t.Error("garbage ctl accepted")
	}
}

func TestDataFileThroughNamespace(t *testing.T) {
	a, b := line(t)
	dev := NewDev("bootes")
	dev.Add(1, a)
	nsp := ns.New("bootes", ramfs.New("bootes").Root())
	nsp.MountDevice(dev, "", "/dev", ns.MREPL)
	fd, err := nsp.Open("/dev/eia1", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	fd.WriteString("dial the modem")
	buf := make([]byte, 64)
	got := []byte{}
	for len(got) < 14 {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "dial the modem" {
		t.Errorf("peer received %q", got)
	}
}

func TestSerialDoesNotPreserveDelimiters(t *testing.T) {
	a, b := line(t)
	a.Write([]byte("one"))
	a.Write([]byte("two"))
	time.Sleep(20 * time.Millisecond) // let both arrive
	buf := make([]byte, 64)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reads may merge ("onetwo") — bytes, not messages.
	got := string(buf[:n])
	for len(got) < 6 {
		n, err = b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got += string(buf[:n])
	}
	if got != "onetwo" {
		t.Errorf("byte stream %q", got)
	}
}

func TestFrameModuleOverSerial(t *testing.T) {
	// §2.4.1 in anger: push the frame module on both ends and the
	// raw byte line carries delimited messages again.
	a, b := line(t)
	if err := a.Stream().PushName("frame", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Stream().PushName("frame", nil); err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("first message"))
	a.Write([]byte("second"))
	buf := make([]byte, 64)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "first message" {
		t.Fatalf("framed read %q, %v", buf[:n], err)
	}
	n, _ = b.Read(buf)
	if string(buf[:n]) != "second" {
		t.Errorf("second framed read %q", buf[:n])
	}
}

func Test9PMountOverSerialLine(t *testing.T) {
	// A home user's slow link: mount a file tree across the UART
	// using the ninep marshaling adapter over the byte stream.
	a, b := line(t)
	rfs := ramfs.New("home")
	rfs.WriteFile("mail/inbox", []byte("You have mail.\n"), 0664)
	remote := ns.New("home", rfs.Root())
	go exportfs.Serve(ninep.NewStreamConn(endRWC{b}), remote, "/")

	local := ns.New("user", ramfs.New("user").Root())
	cl, err := exportfs.Import(local, ninep.NewStreamConn(endRWC{a}), "", "/n/home", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got, err := local.ReadFile("/n/home/mail/inbox")
	if err != nil || !bytes.Equal(got, []byte("You have mail.\n")) {
		t.Fatalf("9P over serial: %q, %v", got, err)
	}
}

// endRWC adapts an End to io.ReadWriteCloser.
type endRWC struct{ e *End }

func (w endRWC) Read(p []byte) (int, error) {
	n, err := w.e.Read(p)
	if n == 0 && err == nil {
		return 0, io.EOF
	}
	return n, err
}
func (w endRWC) Write(p []byte) (int, error) { return w.e.Write(p) }
func (w endRWC) Close() error                { return w.e.Close() }

func TestHangupOnClose(t *testing.T) {
	l := NewLine()
	a, b := l.Ends()
	a.SetBaud(1_000_000)
	a.Write([]byte("bye"))
	buf := make([]byte, 16)
	n, _ := b.Read(buf)
	if string(buf[:n]) != "bye" {
		t.Fatalf("read %q", buf[:n])
	}
	l.Close()
	if _, err := b.Read(buf); err == nil {
		t.Error("read after line close succeeded")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write after line close succeeded")
	}
}
