package il

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// pair builds two machines with IL stacks on one segment.
func pair(t *testing.T, prof ether.Profile, cfg Config) (*Proto, *Proto, ip.Addr, ip.Addr) {
	t.Helper()
	seg := ether.NewSegment("e0", prof)
	t.Cleanup(seg.Close)
	s1, s2 := ip.NewStack(), ip.NewStack()
	a1 := ip.Addr{135, 104, 9, 1}
	a2 := ip.Addr{135, 104, 9, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := s1.Bind(seg.NewInterface("ether0"), a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Bind(seg.NewInterface("ether0"), a2, mask); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close(); s2.Close() })
	p1, p2 := New(s1, cfg), New(s2, cfg)
	// Engine teardown kills straggling conversations so their timers
	// don't outlive the test.
	t.Cleanup(func() { p1.Close(); p2.Close() })
	return p1, p2, a1, a2
}

// connect establishes a conversation from p1 to an announced port on p2.
func connect(t *testing.T, p1, p2 *Proto, a2 ip.Addr) (xport.Conn, xport.Conn) {
	t.Helper()
	lc, _ := p2.NewConn()
	if err := lc.Announce("17008"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	acceptCh := make(chan xport.Conn, 1)
	go func() {
		nc, err := lc.Listen()
		if err == nil {
			acceptCh <- nc
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect(ip.HostPort(a2, 17008)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })
	select {
	case sc := <-acceptCh:
		t.Cleanup(func() { sc.Close() })
		return dc, sc
	case <-time.After(5 * time.Second):
		t.Fatal("listen never returned")
		return nil, nil
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	if dc.(*Conn).State() != "Established" {
		t.Errorf("dialer state %s", dc.(*Conn).State())
	}
	if _, err := dc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := sc.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := sc.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = dc.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("dialer read %q, %v", buf[:n], err)
	}
}

func TestDelimitersPreserved(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	dc.Write([]byte("first"))
	dc.Write([]byte("second message"))
	dc.Write([]byte("3"))
	buf := make([]byte, 256)
	for _, want := range []string{"first", "second message", "3"} {
		n, err := sc.Read(buf)
		if err != nil || string(buf[:n]) != want {
			t.Fatalf("read %q, %v; want %q", buf[:n], err, want)
		}
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	msg := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB > MTU
	if _, err := dc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg)+100)
	n, err := sc.Read(got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msg) || !bytes.Equal(got[:n], msg) {
		t.Fatalf("reassembled %d bytes, want %d (single delimited message)", n, len(msg))
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	// 10% loss: everything must still arrive, in order, exactly once.
	p1, p2, _, a2 := pair(t, ether.Profile{Loss: 0.10, Seed: 7, Bandwidth: 1 << 26}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	const msgs = 60
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	var got [][]byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for len(got) < msgs {
			n, err := sc.Read(buf)
			if err != nil {
				recvErr = err
				return
			}
			got = append(got, append([]byte(nil), buf[:n]...))
		}
	}()
	for i := range msgs {
		msg := bytes.Repeat([]byte{byte(i)}, 100+i)
		if _, err := dc.Write(msg); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	for i, m := range got {
		if len(m) != 100+i || m[0] != byte(i) {
			t.Fatalf("message %d corrupted: len=%d first=%d", i, len(m), m[0])
		}
	}
	if p1.Retransmits.Load() == 0 && p2.Retransmits.Load() == 0 {
		t.Log("note: no retransmissions were needed (loss pattern missed data)")
	}
}

func TestQueryNotBlindRetransmission(t *testing.T) {
	// Under loss, the default configuration must recover via
	// query/state exchanges, not periodic blind retransmission.
	p1, p2, _, a2 := pair(t, ether.Profile{Loss: 0.25, Seed: 3, Bandwidth: 1 << 26}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	done := make(chan bool)
	go func() {
		buf := make([]byte, 4096)
		count := 0
		for count < 20 {
			if _, err := sc.Read(buf); err != nil {
				break
			}
			count++
		}
		done <- true
	}()
	for range 20 {
		dc.Write(bytes.Repeat([]byte("q"), 200))
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("transfer did not complete under loss")
	}
	if p1.QueriesSent.Load() == 0 {
		t.Error("no queries sent despite 25% loss — recovery was not query-driven")
	}
}

func TestConnectionRefused(t *testing.T) {
	p1, _, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, _ := p1.NewConn()
	err := dc.Connect(ip.HostPort(a2, 9999)) // nobody listening
	if !vfs.SameError(err, vfs.ErrConnRef) {
		t.Errorf("connect to dead port = %v, want %v", err, vfs.ErrConnRef)
	}
	dc.Close()
}

func TestConnectNoRoute(t *testing.T) {
	p1, _, _, _ := pair(t, ether.Profile{}, Config{})
	dc, _ := p1.NewConn()
	if err := dc.Connect("10.1.1.1!17008"); err == nil {
		t.Error("connect with no route succeeded")
	}
	dc.Close()
}

func TestBadAddresses(t *testing.T) {
	p1, _, _, _ := pair(t, ether.Profile{}, Config{})
	dc, _ := p1.NewConn()
	defer dc.Close()
	for _, bad := range []string{"", "!", "host!port", "1.2.3.4!banana", "1.2.3.4!0", "*!17008"} {
		if err := dc.Connect(bad); err == nil {
			t.Errorf("Connect(%q) accepted", bad)
		}
	}
	lc, _ := p1.NewConn()
	defer lc.Close()
	if err := lc.Announce("nonsense"); err == nil {
		t.Error("Announce(nonsense) accepted")
	}
}

func TestAnnouncePortCollision(t *testing.T) {
	p1, _, _, _ := pair(t, ether.Profile{}, Config{})
	a, _ := p1.NewConn()
	if err := a.Announce("564"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, _ := p1.NewConn()
	defer b.Close()
	if err := b.Announce("564"); err != xport.ErrInUse {
		t.Errorf("duplicate announce = %v", err)
	}
}

func TestCloseDeliversEOF(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	dc.Write([]byte("bye"))
	dc.Close()
	buf := make([]byte, 64)
	n, err := sc.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain read %q, %v", buf[:n], err)
	}
	// Subsequent read sees EOF (hangup) once the close arrives.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := sc.Read(buf); err != nil {
			return // EOF or closed: both acceptable
		}
	}
	t.Fatal("reader never saw the close")
}

func TestAdaptiveRTTTracksMedium(t *testing.T) {
	// On the virtual clock the 20ms medium and the ten 30ms pacing
	// gaps are simulated, so the estimator converges in microseconds
	// of wall time and the measured RTT is exact. Setup is inlined
	// rather than pair()/connect(): inside Run a t.Fatal (Goexit)
	// would strand the scheduler token, so errors report and return,
	// and teardown happens before Run unwinds.
	v := vclock.NewVirtual()
	v.Run(func() {
		seg := ether.NewSegment("e0", ether.Profile{
			Latency: 20 * time.Millisecond, Bandwidth: 1 << 26, Clock: v,
		})
		defer seg.Close()
		s1, s2 := ip.NewStackClock(v), ip.NewStackClock(v)
		defer s1.Close()
		defer s2.Close()
		a2 := ip.Addr{135, 104, 9, 2}
		mask := ip.Addr{255, 255, 255, 0}
		if _, err := s1.Bind(seg.NewInterface("ether0"), ip.Addr{135, 104, 9, 1}, mask); err != nil {
			t.Error(err)
			return
		}
		if _, err := s2.Bind(seg.NewInterface("ether0"), a2, mask); err != nil {
			t.Error(err)
			return
		}
		p1, p2 := New(s1, Config{}), New(s2, Config{})
		defer p1.Close()
		defer p2.Close()

		lc, _ := p2.NewConn()
		if err := lc.Announce("17008"); err != nil {
			t.Error(err)
			return
		}
		defer lc.Close()
		acceptCh := make(chan xport.Conn, 1)
		v.Go(func() {
			if nc, err := lc.Listen(); err == nil {
				acceptCh <- nc
			}
		})
		dc, _ := p1.NewConn()
		if err := dc.Connect(ip.HostPort(a2, 17008)); err != nil {
			t.Error(err)
			return
		}
		defer dc.Close()
		v.Sleep(time.Second)
		var sc xport.Conn
		select {
		case sc = <-acceptCh:
		default:
			t.Error("listen never returned")
			return
		}
		defer sc.Close()

		v.Go(func() {
			buf := make([]byte, 4096)
			for {
				if _, err := sc.Read(buf); err != nil {
					return
				}
			}
		})
		for range 10 {
			dc.Write([]byte("measure me"))
			v.Sleep(30 * time.Millisecond)
		}
		rtt := dc.(*Conn).RTT()
		if rtt < 10*time.Millisecond {
			t.Errorf("smoothed RTT %v on a 20ms-latency medium", rtt)
		}
		if rtt > 500*time.Millisecond {
			t.Errorf("smoothed RTT %v absurdly high", rtt)
		}
	})
}

func TestSequentialConnections(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	lc, _ := p2.NewConn()
	if err := lc.Announce("17008"); err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	for i := range 5 {
		go func() {
			nc, err := lc.Listen()
			if err != nil {
				return
			}
			buf := make([]byte, 64)
			n, _ := nc.Read(buf)
			nc.Write(buf[:n])
			nc.Close()
		}()
		dc, _ := p1.NewConn()
		if err := dc.Connect(ip.HostPort(a2, 17008)); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		dc.Write([]byte("hi"))
		buf := make([]byte, 64)
		n, err := dc.Read(buf)
		if err != nil || string(buf[:n]) != "hi" {
			t.Fatalf("echo %d: %q, %v", i, buf[:n], err)
		}
		dc.Close()
	}
}

func TestStatusAndAddrs(t *testing.T) {
	p1, p2, a1, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	if got := dc.LocalAddr(); got == "" || got[:len(a1.String())] != a1.String() {
		t.Errorf("dialer local %q", got)
	}
	if got := dc.RemoteAddr(); got[:len(a2.String())] != a2.String() {
		t.Errorf("dialer remote %q", got)
	}
	if s := dc.Status(); s == "" || s[:11] != "Established" {
		t.Errorf("status %q", s)
	}
	if s := sc.Status(); s[:11] != "Established" {
		t.Errorf("server status %q", s)
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(typ, spec byte, src, dst uint16, id, ack uint32, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		h := header{typ: typ % 6, spec: spec, src: src, dst: dst, id: id, ack: ack}
		g, d, ok := unmarshal(marshal(h, data))
		return ok && g == h && bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	pkt := marshal(header{typ: msgData, src: 1, dst: 2, id: 3, ack: 4}, []byte("x"))
	pkt[6] ^= 0x10
	if _, _, ok := unmarshal(pkt); ok {
		t.Error("corrupted IL packet accepted (checksum)")
	}
	if _, _, ok := unmarshal(pkt[:10]); ok {
		t.Error("short IL packet accepted")
	}
}

func TestWindowLimitsOutstandingMessages(t *testing.T) {
	// With the peer not reading and acks still flowing, the sender
	// may run ahead; but with the *network* cut (loss=1 after
	// setup we can't do easily), instead verify the writer blocks
	// once Window messages are unacked: use a huge-latency medium.
	p1, p2, _, a2 := pair(t, ether.Profile{}, Config{})
	dc, sc := connect(t, p1, p2, a2)
	_ = sc
	// Now make every data packet vanish by closing the server stack's
	// segment... simplest: write from a conn whose peer is gone.
	sc.(*Conn).proto.stack.Close()
	done := make(chan int, 1)
	go func() {
		sent := 0
		for range Window + 5 {
			if _, err := dc.Write([]byte("x")); err != nil {
				break
			}
			sent++
		}
		done <- sent
	}()
	select {
	case n := <-done:
		t.Fatalf("writer never blocked; sent %d", n)
	case <-time.After(300 * time.Millisecond):
		// Blocked, as required. Unblock by closing.
		dc.Close()
		<-done
	}
}

// TestCorruptionOnTheWireIsDetected is the end-to-end argument as a
// regression test: a promiscuous repeater station re-injects every IL
// packet it sees with one bit flipped in the IL header region —
// corruption introduced *above* the hardware CRC, as by a broken
// bridge or bad gateway memory, which is precisely what IL's
// whole-packet checksum exists to catch (§3). Every flipped replay
// must be rejected (ChecksumErrs), and the byte stream delivered to
// the application must still match exactly.
func TestCorruptionOnTheWireIsDetected(t *testing.T) {
	seg := ether.NewSegment("e0", ether.Profile{})
	t.Cleanup(seg.Close)
	s1, s2 := ip.NewStack(), ip.NewStack()
	a1 := ip.Addr{135, 104, 9, 1}
	a2 := ip.Addr{135, 104, 9, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := s1.Bind(seg.NewInterface("ether0"), a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Bind(seg.NewInterface("ether0"), a2, mask); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close(); s2.Close() })
	p1, p2 := New(s1, Config{}), New(s2, Config{})
	t.Cleanup(func() { p1.Close(); p2.Close() })

	// The repeater: taps everything, re-injects IL packets bit-flipped.
	atk := seg.NewInterface("ether-tap")
	tap, err := atk.OpenConn()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tap.Close() })
	inj, err := atk.OpenConn()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inj.Close() })
	inj.SetType(ether.TypeIP)
	var replays atomic.Int64
	tap.SetDeliver(func(frame []byte) {
		if len(frame) < ether.HdrLen+ip.HdrLen+HdrLen {
			return
		}
		if et := int(frame[12])<<8 | int(frame[13]); et != ether.TypeIP {
			return
		}
		if frame[ether.HdrLen+9] != ip.ProtoIL {
			return
		}
		var dst ether.Addr
		copy(dst[:], frame[0:6])
		cp := append([]byte(nil), frame[ether.HdrLen:]...)
		cp[ip.HdrLen+4] ^= 0x04 // flip a bit in the IL type byte
		replays.Add(1)
		inj.Transmit(dst, cp)
	})
	tap.SetType(ether.TypeAll)
	tap.SetPromiscuous(true)

	dc, sc := connect(t, p1, p2, a2)
	payload := bytes.Repeat([]byte("end-to-end "), 512)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for len(got) < len(payload) {
			n, err := sc.Read(buf)
			if err != nil {
				return
			}
			got = append(got, buf[:n]...)
		}
	}()
	for off := 0; off < len(payload); off += 512 {
		if _, err := dc.Write(payload[off : off+512]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered stream diverged under corruption (%d/%d bytes)", len(got), len(payload))
	}
	if replays.Load() == 0 {
		t.Fatal("repeater never replayed a packet; test exercised nothing")
	}
	// Replays of the final acks may still be in flight; wait for the
	// wire to quiesce before accounting.
	rejects := func() int64 { return p1.ChecksumErrs.Load() + p2.ChecksumErrs.Load() }
	deadline := time.Now().Add(2 * time.Second)
	for rejects() != replays.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rejects() == 0 {
		t.Fatal("no corrupted packet was rejected by the IL checksum")
	}
	if rejects() != replays.Load() {
		t.Errorf("%d replays but %d checksum rejects: a corrupted packet was swallowed silently or accepted", replays.Load(), rejects())
	}
}

// TestUnmarshalRejectsEverySingleBitFlip proves the checksum detects
// all single-bit corruption (the Internet checksum's guarantee): no
// flipped packet may parse.
func TestUnmarshalRejectsEverySingleBitFlip(t *testing.T) {
	pkt := marshal(header{typ: msgData, spec: specEOM, src: 17008, dst: 5757, id: 99, ack: 42},
		[]byte("the quick brown fox jumps over the lazy dog"))
	if _, _, ok := unmarshal(pkt); !ok {
		t.Fatal("pristine packet rejected")
	}
	for bit := 0; bit < len(pkt)*8; bit++ {
		cp := append([]byte(nil), pkt...)
		cp[bit/8] ^= 1 << (bit % 8)
		if _, _, ok := unmarshal(cp); ok {
			t.Fatalf("packet with bit %d flipped accepted", bit)
		}
	}
}
