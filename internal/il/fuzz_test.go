package il

import (
	"bytes"
	"testing"

	"repro/internal/ip"
)

// FuzzParseHeader throws arbitrary bytes at the IL packet parser. The
// parser is the trust boundary of §3's end-to-end argument: whatever
// the wire delivers, unmarshal either rejects it or yields a packet
// whose checksum verifies and which re-marshals to a packet the parser
// accepts identically.
func FuzzParseHeader(f *testing.F) {
	// Seed with a valid packet, a truncated one, a bit-flipped one,
	// and pathological lengths.
	valid := marshal(header{typ: msgData, src: 17008, dst: 1234, id: 7, ack: 3}, []byte("9fs payload"))
	f.Add(valid)
	f.Add(valid[:HdrLen])
	f.Add(valid[:HdrLen-1])
	flipped := append([]byte(nil), valid...)
	flipped[4] ^= 0x04
	f.Add(flipped)
	short := marshal(header{typ: msgSync, id: 1}, nil)
	short[2], short[3] = 0xff, 0xff // length field beyond the buffer
	f.Add(short)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, p []byte) {
		h, data, ok := unmarshal(p)
		if !ok {
			return
		}
		// Accepted packets verify: the checksum over the claimed
		// length is zero and the length field is sane.
		n := int(p[2])<<8 | int(p[3])
		if n < HdrLen || n > len(p) {
			t.Fatalf("accepted packet with bad length %d (buffer %d)", n, len(p))
		}
		if ip.Checksum(p) != 0 {
			t.Fatal("accepted packet whose checksum does not verify")
		}
		// Round trip: re-marshaling the parsed packet yields a packet
		// the parser accepts with identical contents.
		q := marshal(h, data)
		h2, data2, ok2 := unmarshal(q)
		if !ok2 {
			t.Fatalf("re-marshaled packet rejected: %x", q)
		}
		if h2 != h || !bytes.Equal(data2, data) {
			t.Fatalf("round trip changed the packet: %+v/%x vs %+v/%x", h, data, h2, data2)
		}
	})
}
