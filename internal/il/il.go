// Package il implements the IL protocol of §3: "a lightweight protocol
// designed to be encapsulated by IP ... a connection-based protocol
// providing reliable transmission of sequenced messages between
// machines."
//
// Faithful properties:
//
//   - Reliable datagram service with sequenced delivery: message
//     boundaries written by the sender are preserved for the reader,
//     which is what lets 9P ride IL with no marshaling layer.
//   - Runs over IP (protocol number 40).
//   - No flow control beyond a small outstanding-message window
//     (§3: "A small outstanding message window prevents too many
//     incoming messages from being buffered; messages outside the
//     window are discarded and must be retransmitted").
//   - Connection setup is a two-way handshake generating initial
//     sequence numbers at each end; data messages increment them so
//     the receiver can resequence out-of-order messages.
//   - No blind retransmission: on timeout the sender transmits a
//     query carrying its current sequence numbers; the peer answers
//     with a state message and the missing messages are retransmitted.
//     (A BlindRetransmit knob exists solely for the ablation benchmark
//     that shows why the paper avoided it.)
//   - Adaptive timeouts: a round-trip timer calculates acknowledge and
//     retransmission times in terms of the network speed, so the
//     protocol performs well on both local Ethernets and slow paths.
//
// One substitution: real IL relied on IP fragmentation for messages
// larger than the medium MTU. This stack does not fragment IP, so IL
// itself splits large messages into MTU-sized packets and marks the
// final packet with an end-of-message bit in the spec byte; the
// receiver reassembles. Delimiter semantics are identical.
package il

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/ip"
	"repro/internal/obs"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// HdrLen is the IL header: sum[2] len[2] type[1] spec[1] src[2] dst[2]
// id[4] ack[4].
const HdrLen = 18

// Message types.
const (
	msgSync = iota
	msgData
	msgAck
	msgQuery
	msgState
	msgClose
)

// specEOM marks the final packet of a message (delimiter).
const specEOM = 0x01

// Window is the small outstanding-message window.
const Window = 20

// Connection states.
const (
	Closed = iota
	Syncer
	Syncee
	Established
	Listening
	Closing
)

var stateNames = []string{"Closed", "Syncer", "Syncee", "Established", "Listening", "Closing"}

// Timer constants.
const (
	tickInterval = 5 * time.Millisecond
	minRTO       = 10 * time.Millisecond
	maxRTO       = 2 * time.Second
	// deathTime is how long a connection retries before giving up.
	deathTime = 30 * time.Second
	// synRetry is the sync retransmit interval before RTT is known.
	synRetry = 100 * time.Millisecond
)

// Config adjusts protocol behavior for experiments.
type Config struct {
	// BlindRetransmit disables the query mechanism: timeouts
	// immediately retransmit every unacknowledged message, the
	// behavior the paper's design argues against.
	BlindRetransmit bool
	// FixedRTO, if nonzero, disables adaptive timeouts and uses this
	// retransmission timer unconditionally (the adaptive-timeout
	// ablation).
	FixedRTO time.Duration
	// DeathTime overrides how long a connection retries before
	// giving up (default 30s, as in the kernel); tests of partition
	// behavior shorten it.
	DeathTime time.Duration
	// Window overrides the outstanding-message window (default
	// Window = 20) for the window-size ablation.
	Window uint32
}

func (c Config) window() uint32 {
	if c.Window > 0 {
		return c.Window
	}
	return Window
}

func (c Config) deathTime() time.Duration {
	if c.DeathTime > 0 {
		return c.DeathTime
	}
	return deathTime
}

// Proto is a machine's IL protocol device.
type Proto struct {
	stack *ip.Stack
	ck    vclock.Clock
	cfg   Config

	mu        sync.Mutex
	conns     map[connKey]*Conn
	listeners map[uint16]*Conn
	nextEphem uint16
	rng       *rand.Rand

	// txq feeds the transmitter kernel process: one long-lived
	// goroutine with a warm stack walks packets down the IP stack,
	// instead of a fresh goroutine per segment growing its stack
	// through the ether path every time.
	txq *vclock.Mailbox[txPkt]

	// Counters for the ablation experiments and status files.
	Retransmits  atomic.Int64
	QueriesSent  atomic.Int64
	QueriesRcvd  atomic.Int64
	DupsReceived atomic.Int64
	OutOfWindow  atomic.Int64
	MsgsSent     atomic.Int64
	MsgsRcvd     atomic.Int64
	ChecksumErrs atomic.Int64

	// RTTHist collects every round-trip sample the adaptive timer
	// takes (§3); /net/il/stats renders it as a log2 histogram.
	RTTHist obs.Hist
	stats   *obs.Group
}

type connKey struct {
	raddr ip.Addr
	rport uint16
	lport uint16
}

// txPkt is one packet queued for the transmitter kernel process.
type txPkt struct {
	src, dst ip.Addr
	pkt      *block.Block
}

var _ xport.Proto = (*Proto)(nil)

// New creates the IL device on a stack and registers its demux.
func New(stack *ip.Stack, cfg Config) *Proto {
	ck := stack.Clock()
	p := &Proto{
		stack:     stack,
		ck:        ck,
		cfg:       cfg,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Conn),
		nextEphem: 2000,
		rng:       rand.New(rand.NewSource(ck.Now().UnixNano())),
		txq:       vclock.NewMailbox[txPkt](ck, 256),
	}
	p.stats = new(obs.Group).
		AddAtomic("msgs-sent", &p.MsgsSent).
		AddAtomic("msgs-rcvd", &p.MsgsRcvd).
		AddAtomic("retransmits", &p.Retransmits).
		AddAtomic("queries-sent", &p.QueriesSent).
		AddAtomic("queries-rcvd", &p.QueriesRcvd).
		AddAtomic("dups-rcvd", &p.DupsReceived).
		AddAtomic("out-of-window", &p.OutOfWindow).
		AddAtomic("checksum-errs", &p.ChecksumErrs).
		AddHist("rtt", &p.RTTHist)
	stack.Register(ip.ProtoIL, p.recv)
	ck.Go(p.transmitter)
	return p
}

// StatsGroup exposes the engine counters; the netdev tree renders it
// into /net/il/stats after the per-conversation lines.
func (p *Proto) StatsGroup() *obs.Group { return p.stats }

// Clock exposes the stack clock so line disciplines pushed on IL
// conversations time their flush windows in the same (possibly
// virtual) time domain as the protocol engine.
func (p *Proto) Clock() vclock.Clock { return p.ck }

// transmitter is the output kernel process: it owns every queued
// packet and walks it down the stack. It exits at Close, freeing
// whatever is still queued.
func (p *Proto) transmitter() {
	for {
		t, ok := p.txq.Recv()
		if !ok {
			return
		}
		p.MsgsSent.Add(1)
		p.stack.SendBlock(ip.ProtoIL, t.src, t.dst, t.pkt)
	}
}

// enqueue hands a packet to the transmitter without blocking (it is
// called under connection locks). A full ring drops the packet, which
// the retransmission machinery treats as wire loss.
func (p *Proto) enqueue(src, dst ip.Addr, pkt *block.Block) {
	if !p.txq.TrySend(txPkt{src: src, dst: dst, pkt: pkt}) {
		pkt.Free()
	}
}

// Name implements xport.Proto.
func (p *Proto) Name() string { return "il" }

// Close tears the whole engine down at machine shutdown: every
// conversation dies immediately — no close exchange, the machine is
// going away — and every listener stops accepting, so per-connection
// timers and blocked readers, writers, and accepts all wake and exit.
func (p *Proto) Close() {
	// Packets still queued for the transmitter go back to the pool.
	for _, t := range p.txq.CloseDrain() {
		t.pkt.Free()
	}
	p.mu.Lock()
	all := make([]*Conn, 0, len(p.conns)+len(p.listeners))
	for _, c := range p.conns {
		all = append(all, c)
	}
	for _, l := range p.listeners {
		all = append(all, l)
	}
	p.conns = make(map[connKey]*Conn)
	p.listeners = make(map[uint16]*Conn)
	p.mu.Unlock()
	for _, c := range all {
		c.mu.Lock()
		if c.state == Listening {
			c.accepted.Close()
		}
		c.diedLocked(vfs.ErrHungup)
		c.mu.Unlock()
	}
}

// NewConn implements xport.Proto.
func (p *Proto) NewConn() (xport.Conn, error) { return p.newConn(), nil }

func (p *Proto) newConn() *Conn {
	c := &Conn{proto: p, state: Closed}
	c.cond.Init(p.ck, &c.mu)
	c.rstream = streams.NewClock(1<<22, p.ck, nil)
	c.accepted = vclock.NewMailbox[*Conn](p.ck, 8)
	return c
}

func (p *Proto) allocEphemeral() uint16 {
	for {
		p.nextEphem++
		if p.nextEphem < 2000 {
			p.nextEphem = 2000
		}
		if _, taken := p.listeners[p.nextEphem]; taken {
			continue
		}
		free := true
		for k := range p.conns {
			if k.lport == p.nextEphem {
				free = false
				break
			}
		}
		if free {
			return p.nextEphem
		}
	}
}

// header is the unmarshaled IL header.
type header struct {
	typ  byte
	spec byte
	src  uint16
	dst  uint16
	id   uint32
	ack  uint32
}

// fillHeader writes the IL header and whole-packet checksum over p,
// whose tail beyond HdrLen must already hold the payload.
func fillHeader(p []byte, h header) {
	n := len(p)
	// The checksum field must be zero while summing: recycled pool
	// buffers arrive with stale contents, unlike a fresh make.
	p[0] = 0
	p[1] = 0
	p[2] = byte(n >> 8)
	p[3] = byte(n)
	p[4] = h.typ
	p[5] = h.spec
	p[6] = byte(h.src >> 8)
	p[7] = byte(h.src)
	p[8] = byte(h.dst >> 8)
	p[9] = byte(h.dst)
	p[10] = byte(h.id >> 24)
	p[11] = byte(h.id >> 16)
	p[12] = byte(h.id >> 8)
	p[13] = byte(h.id)
	p[14] = byte(h.ack >> 24)
	p[15] = byte(h.ack >> 16)
	p[16] = byte(h.ack >> 8)
	p[17] = byte(h.ack)
	ck := ip.Checksum(p)
	p[0] = byte(ck >> 8)
	p[1] = byte(ck)
}

func marshal(h header, data []byte) []byte {
	p := make([]byte, HdrLen+len(data))
	copy(p[HdrLen:], data)
	fillHeader(p, h)
	return p
}

// marshalBlock is marshal into a pooled block with headroom for the IP
// and Ethernet headers below, so no lower layer copies or reallocates.
func marshalBlock(h header, data []byte) *block.Block {
	b := block.Alloc(HdrLen+len(data), block.DefaultHeadroom)
	p := b.Bytes()
	copy(p[HdrLen:], data)
	fillHeader(p, h)
	return b
}

func unmarshal(p []byte) (header, []byte, bool) {
	var h header
	if len(p) < HdrLen {
		return h, nil, false
	}
	if ip.Checksum(p) != 0 {
		return h, nil, false
	}
	n := int(p[2])<<8 | int(p[3])
	if n < HdrLen || n > len(p) {
		return h, nil, false
	}
	h.typ = p[4]
	h.spec = p[5]
	h.src = uint16(p[6])<<8 | uint16(p[7])
	h.dst = uint16(p[8])<<8 | uint16(p[9])
	h.id = uint32(p[10])<<24 | uint32(p[11])<<16 | uint32(p[12])<<8 | uint32(p[13])
	h.ack = uint32(p[14])<<24 | uint32(p[15])<<16 | uint32(p[16])<<8 | uint32(p[17])
	return h, p[HdrLen:n], true
}

// recv demultiplexes an incoming IL packet.
func (p *Proto) recv(src, dst ip.Addr, payload []byte) {
	h, data, ok := unmarshal(payload)
	if !ok {
		// The whole-packet checksum failed (or the packet was
		// malformed): corruption that slipped past every lower-layer
		// CRC ends here, detected, never delivered (§3).
		p.ChecksumErrs.Add(1)
		return
	}
	p.MsgsRcvd.Add(1)
	key := connKey{raddr: src, rport: h.src, lport: h.dst}
	p.mu.Lock()
	c := p.conns[key]
	if c == nil && h.typ == msgSync {
		l := p.listeners[h.dst]
		if l == nil {
			// Port 0 holds the announce-all listener (§5.2):
			// it accepts any service not explicitly announced.
			l = p.listeners[0]
		}
		if l != nil {
			c = p.spawnLocked(l, src, h)
		}
	}
	p.mu.Unlock()
	if c == nil {
		// A close for a vanished connection needs no answer; data
		// gets a close so the peer learns quickly.
		if h.typ != msgClose {
			reply := marshalBlock(header{typ: msgClose, src: h.dst, dst: h.src}, nil)
			p.enqueue(dst, src, reply)
		}
		return
	}
	c.input(h, data, src, dst)
}

// spawnLocked creates the passive (Syncee) end for an incoming sync to
// a listener.
func (p *Proto) spawnLocked(l *Conn, src ip.Addr, h header) *Conn {
	c := p.newConn()
	c.localPort = h.dst
	c.localAddr = l.localAddr
	c.remoteAddr = src
	c.remotePort = h.src
	c.listener = l
	c.state = Syncee
	c.sndStart = p.rng.Uint32() & 0xffffff
	c.sndNext = c.sndStart + 1
	c.sndUna = c.sndStart + 1
	c.rcvNext = h.id + 1
	p.conns[connKey{raddr: src, rport: h.src, lport: h.dst}] = c
	p.ck.Go(c.timer)
	return c
}

func (p *Proto) remove(c *Conn) {
	p.mu.Lock()
	key := connKey{raddr: c.remoteAddr, rport: c.remotePort, lport: c.localPort}
	if p.conns[key] == c {
		delete(p.conns, key)
	}
	if p.listeners[c.localPort] == c {
		delete(p.listeners, c.localPort)
	}
	p.mu.Unlock()
}

// unackedMsg is a sent-but-unacknowledged packet.
type unackedMsg struct {
	id    uint32
	spec  byte
	data  []byte
	sent  time.Time
	timed bool
}

// Conn is an IL conversation.
type Conn struct {
	proto   *Proto
	rstream *streams.Stream

	mu   sync.Mutex
	cond vclock.Cond

	state      int
	localAddr  ip.Addr
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16

	// Sender state.
	sndStart uint32
	sndNext  uint32 // next id to assign
	sndUna   uint32 // lowest unacknowledged id
	unacked  []unackedMsg

	// Receiver state.
	rcvNext    uint32            // next expected id
	ooo        map[uint32][]byte // out-of-order within window (data)
	oooSpec    map[uint32]byte
	reassembly []byte // partial message being assembled

	// Adaptive round-trip timing (§3).
	srtt         time.Duration
	mdev         time.Duration
	timedID      uint32
	timedAt      time.Time
	timing       bool
	lastProgress time.Time
	querySent    bool

	listener *Conn
	accepted *vclock.Mailbox[*Conn]

	closeSeen bool   // peer close received
	closeID   uint32 // its sequence position

	closed bool
	err    error

	// trace is the conversation's event ring, armed by writing
	// "trace on" to the ctl file; disabled it costs one atomic load
	// per would-be event.
	trace obs.Ring
}

var _ xport.Conn = (*Conn)(nil)
var _ obs.Tracer = (*Conn)(nil)

// Trace implements obs.Tracer; the netdev tree serves it as the
// conversation's trace file.
func (c *Conn) Trace() *obs.Ring { return &c.trace }

// Connect implements xport.Conn: the active open (Syncer).
func (c *Conn) Connect(addr string) error {
	a, port, err := ip.ParseHostPort(addr)
	if err != nil || a.IsZero() || port == 0 {
		return xport.ErrBadAddress
	}
	local, err := c.proto.stack.LocalAddrFor(a)
	if err != nil {
		return err
	}
	p := c.proto
	p.mu.Lock()
	//netvet:ignore lock-across-send fixed hierarchy: protocol before conversation, never reversed
	c.mu.Lock()
	if c.state != Closed {
		c.mu.Unlock()
		p.mu.Unlock()
		return xport.ErrConnected
	}
	c.localAddr = local
	c.localPort = p.allocEphemeral()
	c.remoteAddr, c.remotePort = a, port
	c.sndStart = p.rng.Uint32() & 0xffffff
	c.sndNext = c.sndStart + 1
	c.sndUna = c.sndStart + 1
	c.state = Syncer
	c.lastProgress = p.ck.Now()
	p.conns[connKey{raddr: a, rport: port, lport: c.localPort}] = c
	c.mu.Unlock()
	p.mu.Unlock()

	p.ck.Go(c.timer)
	c.sendSync()

	// Block until established or dead, as opening the data file does.
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state == Syncer {
		c.cond.Wait()
	}
	if c.state != Established {
		if c.err == nil {
			c.err = vfs.ErrConnRef
		}
		c.trace.Emit(obs.EvError, 0, 0)
		return c.err
	}
	c.trace.Emit(obs.EvConnect, 1, 0)
	return nil
}

// Announce implements xport.Conn. The address "*" (no service)
// announces every service not explicitly announced, the inetd-less
// arrangement of §5.2: incoming calls to unannounced ports land on
// this listener, which learns the requested service from the new
// connection's local address.
func (c *Conn) Announce(addr string) error {
	var port uint16
	if addr != "*" && addr != "*!*" {
		var err error
		_, port, err = ip.ParseHostPort(addr)
		if err != nil {
			return xport.ErrBadAddress
		}
		if port == 0 {
			return xport.ErrBadAddress
		}
	}
	p := c.proto
	p.mu.Lock()
	defer p.mu.Unlock()
	//netvet:ignore lock-across-send fixed hierarchy: protocol before conversation, never reversed
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Closed {
		return xport.ErrConnected
	}
	if _, taken := p.listeners[port]; taken {
		return xport.ErrInUse
	}
	c.localPort = port
	c.state = Listening
	p.listeners[port] = c
	c.trace.Emit(obs.EvAnnounce, int64(port), 0)
	return nil
}

// Listen implements xport.Conn: block for the next established call.
func (c *Conn) Listen() (xport.Conn, error) {
	c.mu.Lock()
	if c.state != Listening {
		c.mu.Unlock()
		return nil, xport.ErrNotAnnounced
	}
	mb := c.accepted
	c.mu.Unlock()
	nc, ok := mb.Recv()
	if !ok {
		return nil, streams.ErrClosed
	}
	return nc, nil
}

// sendSync (re)transmits the handshake message.
func (c *Conn) sendSync() {
	c.mu.Lock()
	h := header{typ: msgSync, src: c.localPort, dst: c.remotePort, id: c.sndStart}
	if c.state == Syncee {
		h.ack = c.rcvNext - 1
	}
	src, dst := c.localAddr, c.remoteAddr
	c.mu.Unlock()
	c.proto.enqueue(src, dst, marshalBlock(h, nil))
}

// send transmits a control or data packet with current ack state.
func (c *Conn) sendLocked(typ, spec byte, id uint32, data []byte) {
	h := header{typ: typ, spec: spec, src: c.localPort, dst: c.remotePort,
		id: id, ack: c.rcvNext - 1}
	// One copy of the payload into a pooled block with headroom; every
	// layer below prepends into it in place.
	pkt := marshalBlock(h, data)
	// The enqueue is non-blocking, so holding c.mu here is safe even
	// when the stack below would stall (ARP may queue).
	c.proto.enqueue(c.localAddr, c.remoteAddr, pkt)
}

// Write implements xport.Conn: one reliable sequenced message per
// write, fragmented to the path MTU with the final fragment delimited.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.state != Established && c.state != Syncee {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = xport.ErrNotConnected
		}
		return 0, err
	}
	mtu := c.proto.stack.MTUFor(c.remoteAddr) - HdrLen
	if mtu <= 0 {
		mtu = 512
	}
	total := 0
	for {
		n := len(p) - total
		if n > mtu {
			n = mtu
		}
		// The small outstanding-message window (§3): block while
		// full rather than buffering more.
		for c.sndNext-c.sndUna >= c.proto.cfg.window() && c.state != Closed && c.state != Closing {
			c.cond.Wait()
		}
		if c.state == Closed || c.state == Closing {
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = streams.ErrHungup
			}
			return total, err
		}
		var spec byte
		if total+n == len(p) {
			spec = specEOM
		}
		id := c.sndNext
		c.sndNext++
		// The retransmit copy lives in a pooled buffer, released
		// when the ack drops it from the window.
		data := block.GetBytes(n)
		copy(data, p[total:total+n])
		m := unackedMsg{id: id, spec: spec, data: data, sent: c.proto.ck.Now()}
		if !c.timing {
			c.timing = true
			c.timedID = id
			c.timedAt = m.sent
			m.timed = true
		}
		c.unacked = append(c.unacked, m)
		c.sendLocked(msgData, spec, id, data)
		c.trace.Emit(obs.EvSend, int64(id), int64(n))
		total += n
		if total == len(p) {
			c.mu.Unlock()
			return total, nil
		}
	}
}

// Read implements xport.Conn: one message per read (delimited).
func (c *Conn) Read(p []byte) (int, error) { return c.rstream.Read(p) }

// input processes one received packet.
func (c *Conn) input(h header, data []byte, src, dst ip.Addr) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.lastProgress = c.proto.ck.Now()
	switch h.typ {
	case msgSync:
		switch c.state {
		case Syncer:
			if h.ack == c.sndStart {
				c.rcvNext = h.id + 1
				c.state = Established
				c.cond.Broadcast()
				c.sendLocked(msgAck, 0, c.sndNext-1, nil)
			}
		case Syncee:
			// Duplicate sync: re-answer with our sync (the peer
			// is still in Syncer and needs it).
			c.sendLocked(msgSync, 0, c.sndStart, nil)
		case Established:
			// The peer missed our final ack: a plain ack
			// settles it without risking a sync ping-pong.
			c.sendLocked(msgAck, 0, c.sndNext-1, nil)
		}
	case msgAck:
		c.ackLocked(h.ack)
		if c.state == Syncee && h.ack >= c.sndStart {
			c.establishSynceeLocked()
		}
	case msgData:
		if c.state == Syncee {
			c.establishSynceeLocked()
		}
		c.dataLocked(h, data)
	case msgQuery:
		c.proto.QueriesRcvd.Add(1)
		c.ackLocked(h.ack)
		c.sendLocked(msgState, 0, c.sndNext-1, nil)
	case msgState:
		c.ackLocked(h.ack)
		// The peer lacks everything past h.ack: retransmit it
		// ("the receiver responds to a query by retransmitting
		// missing messages").
		c.retransmitLocked()
		c.querySent = false
	case msgClose:
		// Closes are sequenced like data: the hangup is delivered
		// only after every earlier message has been consumed, so a
		// close can never cause queued data to be lost.
		c.ackLocked(h.ack)
		c.closeSeen = true
		c.closeID = h.id
		c.maybeCloseLocked()
	}
	c.mu.Unlock()
}

// maybeCloseLocked completes a peer-initiated close once all data
// preceding it has arrived.
func (c *Conn) maybeCloseLocked() {
	if !c.closeSeen {
		return
	}
	if c.state == Established || c.state == Syncee {
		// Wait for in-sequence delivery of everything before the
		// close point.
		if c.rcvNext < c.closeID {
			return
		}
	}
	switch c.state {
	case Closing:
		c.state = Closed
	case Closed:
	default:
		c.sendLocked(msgClose, 0, c.sndNext-1, nil)
		c.state = Closed
	}
	c.cond.Broadcast()
	c.trace.Emit(obs.EvHangup, 0, 0)
	c.rstream.HangupUp()
}

func (c *Conn) establishSynceeLocked() {
	c.state = Established
	c.cond.Broadcast()
	c.trace.Emit(obs.EvAccept, 0, 0)
	if l := c.listener; l != nil {
		c.listener = nil
		// TrySend refuses on a full backlog or a closed listener,
		// exactly the cases the close below covers.
		ok := l.accepted.TrySend(c)
		if !ok {
			// Listener gone or accept queue overflow: refuse.
			c.sendLocked(msgClose, 0, c.sndNext-1, nil)
			c.state = Closed
		}
	}
}

// ackLocked processes a cumulative acknowledgement.
func (c *Conn) ackLocked(ack uint32) {
	if ack < c.sndUna {
		return
	}
	c.trace.Emit(obs.EvAck, int64(ack), 0)
	// Round-trip timing on the timed message (§3 adaptive timeouts).
	if c.timing && ack >= c.timedID {
		rtt := c.proto.ck.Since(c.timedAt)
		c.proto.RTTHist.Observe(rtt)
		if c.srtt == 0 {
			c.srtt = rtt
			c.mdev = rtt / 2
		} else {
			diff := rtt - c.srtt
			c.srtt += diff / 8
			if diff < 0 {
				diff = -diff
			}
			c.mdev += (diff - c.mdev) / 4
		}
		c.timing = false
	}
	i := 0
	for i < len(c.unacked) && c.unacked[i].id <= ack {
		i++
	}
	if i > 0 {
		// Release the acked retransmit copies and compact the
		// window in place — no per-ack reallocation.
		for j := 0; j < i; j++ {
			block.PutBytes(c.unacked[j].data)
		}
		n := copy(c.unacked, c.unacked[i:])
		for j := n; j < len(c.unacked); j++ {
			c.unacked[j] = unackedMsg{}
		}
		c.unacked = c.unacked[:n]
	}
	c.sndUna = ack + 1
	if c.sndUna > c.sndNext {
		c.sndNext = c.sndUna
	}
	c.cond.Broadcast()
}

// dataLocked handles a data packet: in-order delivery, out-of-order
// buffering within the window, duplicate re-ack.
func (c *Conn) dataLocked(h header, data []byte) {
	c.ackLocked(h.ack)
	switch {
	case h.id == c.rcvNext:
		c.trace.Emit(obs.EvRecv, int64(h.id), int64(len(data)))
		c.acceptLocked(h.spec, data)
		// Drain any buffered successors.
		for {
			d, ok := c.ooo[c.rcvNext]
			if !ok {
				break
			}
			spec := c.oooSpec[c.rcvNext]
			delete(c.ooo, c.rcvNext)
			delete(c.oooSpec, c.rcvNext)
			c.acceptLocked(spec, d)
		}
		c.sendLocked(msgAck, 0, c.sndNext-1, nil)
		c.maybeCloseLocked()
	case h.id < c.rcvNext:
		// Duplicate: re-acknowledge so the sender advances.
		c.proto.DupsReceived.Add(1)
		c.trace.Emit(obs.EvDup, int64(h.id), 0)
		c.sendLocked(msgAck, 0, c.sndNext-1, nil)
	case h.id < c.rcvNext+c.proto.cfg.window():
		if c.ooo == nil {
			c.ooo = make(map[uint32][]byte)
			c.oooSpec = make(map[uint32]byte)
		}
		if _, dup := c.ooo[h.id]; dup {
			c.proto.DupsReceived.Add(1)
			c.trace.Emit(obs.EvDup, int64(h.id), 0)
		}
		c.ooo[h.id] = append([]byte(nil), data...)
		c.oooSpec[h.id] = h.spec
	default:
		// Outside the window: "messages outside the window are
		// discarded and must be retransmitted" (§3).
		c.proto.OutOfWindow.Add(1)
		c.trace.Emit(obs.EvOutOfOrder, int64(h.id), 0)
	}
}

// acceptLocked consumes one in-order packet, reassembling fragmented
// messages and delivering complete ones (delimited) upstream.
func (c *Conn) acceptLocked(spec byte, data []byte) {
	c.rcvNext++
	if len(c.reassembly) == 0 && spec&specEOM != 0 {
		// Whole message in one packet (the common case): one copy of
		// the borrowed receive bytes into a pooled block, delivered
		// without re-materializing.
		c.rstream.DeviceUpOwned(block.Copy(data, 0))
		return
	}
	c.reassembly = append(c.reassembly, data...)
	if spec&specEOM != 0 {
		// Hand up a pooled copy and keep the scratch for the next
		// message: the reassembly buffer grows to the message size
		// once per conversation instead of once per message.
		c.rstream.DeviceUpOwned(block.Copy(c.reassembly, 0))
		c.reassembly = c.reassembly[:0]
	}
}

// rto returns the current retransmission timeout.
func (c *Conn) rtoLocked() time.Duration {
	if c.proto.cfg.FixedRTO > 0 {
		return c.proto.cfg.FixedRTO
	}
	if c.srtt == 0 {
		return synRetry
	}
	rto := c.srtt + 4*c.mdev
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// retransmitLocked resends every unacknowledged message.
func (c *Conn) retransmitLocked() {
	for i := range c.unacked {
		m := &c.unacked[i]
		m.sent = c.proto.ck.Now()
		c.proto.Retransmits.Add(1)
		c.trace.Emit(obs.EvRetransmit, int64(m.id), 0)
		c.sendLocked(msgData, m.spec, m.id, m.data)
	}
	// Retransmitted messages cannot be timed (Karn's rule).
	c.timing = false
}

// timer is the connection's helper kernel process: sync retries,
// query-or-blind retransmission, and the death timer.
func (c *Conn) timer() {
	ck := c.proto.ck
	for {
		ck.Sleep(tickInterval)
		c.mu.Lock()
		if c.closed || c.state == Closed {
			c.mu.Unlock()
			return
		}
		now := ck.Now()
		switch c.state {
		case Syncer, Syncee:
			if now.Sub(c.lastProgress) > c.proto.cfg.deathTime() {
				c.diedLocked(vfs.ErrTimedOut)
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			c.sendSync()
			ck.Sleep(synRetry - tickInterval)
			continue
		case Established, Closing:
			if len(c.unacked) > 0 {
				oldest := c.unacked[0].sent
				if now.Sub(oldest) > c.rtoLocked() {
					if now.Sub(c.lastProgress) > c.proto.cfg.deathTime() {
						c.diedLocked(vfs.ErrTimedOut)
						c.mu.Unlock()
						return
					}
					if c.proto.cfg.BlindRetransmit {
						c.retransmitLocked()
					} else if !c.querySent {
						// §3: send a query instead of
						// retransmitting blindly.
						c.querySent = true
						c.proto.QueriesSent.Add(1)
						c.trace.Emit(obs.EvQuery, 0, 0)
						c.sendLocked(msgQuery, 0, c.sndNext-1, nil)
					} else {
						// Query itself may be lost;
						// requery after another RTO.
						c.proto.QueriesSent.Add(1)
						c.trace.Emit(obs.EvQuery, 0, 0)
						c.sendLocked(msgQuery, 0, c.sndNext-1, nil)
					}
					// Push the timeout forward so we do not
					// spam queries every tick.
					for i := range c.unacked {
						c.unacked[i].sent = now
					}
				}
			}
			if c.state == Closing && len(c.unacked) == 0 {
				c.sendLocked(msgClose, 0, c.sndNext-1, nil)
			}
		}
		c.mu.Unlock()
	}
}

func (c *Conn) diedLocked(err error) {
	c.err = err
	c.state = Closed
	c.cond.Broadcast()
	c.trace.Emit(obs.EvHangup, 0, 0)
	c.rstream.HangupUp()
}

// LocalAddr implements xport.Conn.
func (c *Conn) LocalAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.localAddr, c.localPort)
}

// RemoteAddr implements xport.Conn.
func (c *Conn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.remoteAddr, c.remotePort)
}

// Status implements xport.Conn: the ASCII state line, with the timer
// and window detail of the kernel's status files.
func (c *Conn) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%s rtt %d ms unacked %d window %d",
		stateNames[c.state], c.srtt.Milliseconds(), len(c.unacked), c.proto.cfg.window())
}

// State returns the symbolic connection state (for tests).
func (c *Conn) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stateNames[c.state]
}

// RTT returns the smoothed round-trip estimate.
func (c *Conn) RTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srtt
}

// Close implements xport.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	switch c.state {
	case Established, Syncee, Syncer:
		c.state = Closing
		// The close consumes a sequence number so the peer can
		// order it after all in-flight data.
		id := c.sndNext
		c.sndNext++
		c.sendLocked(msgClose, 0, id, nil)
	case Listening:
		c.state = Closed
		c.accepted.Close()
	default:
		c.state = Closed
	}
	st := c.state
	c.cond.Broadcast()
	c.mu.Unlock()
	if st == Closed {
		c.proto.remove(c)
	}
	c.rstream.HangupUp()
	// Give the close exchange a moment in the background, then die.
	// The conversation stays in the demux table until then so late
	// packets (our peer's acks) land here quietly instead of
	// provoking stray "unknown conversation" closes.
	c.proto.ck.AfterFunc(200*time.Millisecond, func() {
		c.mu.Lock()
		c.state = Closed
		c.cond.Broadcast()
		c.mu.Unlock()
		c.proto.remove(c)
		c.rstream.Close()
	})
	return nil
}
