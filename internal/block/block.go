// Package block provides the kernel-style data block the stream system
// and protocol stack pass by ownership instead of copying (§2.4: "most
// data is output without context switching" — the kernel achieves that
// with blocks carrying read/write pointers and header headroom, and so
// do we).
//
// A Block owns a buffer and a readable window [rp, wp) within it. The
// space before rp is headroom: a protocol layer prepends its header by
// moving rp back, in place, instead of allocating a fresh packet. The
// space after wp is tailroom for trailers (frame check sequences).
// Buffers come from size-classed sync.Pool allocators, so a steady
// data path recycles the same few buffers instead of pressuring the
// garbage collector.
//
// Ownership rules (see DESIGN.md "Block discipline"):
//
//   - Alloc/Copy/FromBytes return a block owned by the caller.
//   - Passing a block to a consuming API (a stream put routine, a
//     device transmit, stack.SendBlock) transfers ownership; the caller
//     must not touch the block or any slice of its buffer afterwards.
//   - The final owner calls Free, which recycles the buffer.
//   - Ref adds a reference for read-only fan-out (ether broadcast);
//     each holder Frees its own reference and nobody mutates.
//   - Free of a block that was already freed panics: a double free is
//     an ownership bug that would otherwise surface later as silent
//     data corruption when the pooled buffer is reused.
package block

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultHeadroom is enough for the deepest header stack in the tree:
// ether (14) + IP (20) + IL (18) = 52, rounded up with slack.
const DefaultHeadroom = 64

// tailReserve is the tailroom Alloc guarantees beyond n, covering the
// largest trailer (the ether CRC32 FCS, 4 bytes; Datakit's CRC-16 is
// smaller).
const tailReserve = 8

// classSizes are the pooled buffer sizes. The classes track the
// traffic the stack actually carries: protocol control packets plus
// headroom (256), URP/Datakit cells and MTU-sized ether frames (2048),
// mid-size payloads (4096), 9P messages — MaxMsg is 8352 (16384), and
// full 32k stream blocks with headroom and trailer slack (36864).
var classSizes = [...]int{256, 1024, 2048, 4096, 16384, 36864}

var classPools [len(classSizes)]sync.Pool

// Block is a reference-counted buffer with a readable window.
// The zero Block is not valid; use Alloc, Copy, or FromBytes.
type Block struct {
	buf    []byte
	rp, wp int
	class  int // index into classSizes; -1 = unpooled buffer
	refs   atomic.Int32
}

// counter is an atomic counter padded to a cache line: the allocator
// is hammered from both ends of every link at once, and adjacent
// counters would otherwise ping-pong one line between cores.
type counter struct {
	v atomic.Int64
	_ [56]byte
}

func (c *counter) add(n int64) { c.v.Add(n) }
func (c *counter) load() int64 { return c.v.Load() }

// Counters behind Snapshot. The hot paths (Alloc, Free, GetBytes,
// PutBytes) each touch exactly one: hits and in-flight are derived at
// snapshot time, and the miss counters quiesce once the pools warm up.
var (
	statAllocs      counter // every block or raw buffer handed out
	statUnpooled    counter // allocations that never consulted a pool
	statPoolMisses  counter // pool consulted, had to make a new buffer
	statFrees       counter // every release (Free, Detach, PutBytes)
	statBytesCopied counter // payload bytes copied at mandatory-copy points
)

// Stats is a snapshot of the allocator counters.
type Stats struct {
	Allocs      int64 // blocks handed out (Alloc, Copy, FromBytes)
	PoolHits    int64 // allocations served from a pool
	PoolMisses  int64 // allocations that had to make a new buffer
	Frees       int64 // blocks released (refcount reached zero)
	BytesCopied int64 // payload bytes copied at mandatory-copy points
	InFlight    int64 // Allocs - Frees: blocks currently owned somewhere
}

// Snapshot returns the current allocator counters. PoolHits and
// InFlight are derived (hits = pooled attempts minus misses, in
// flight = allocs minus frees), so a snapshot taken while traffic is
// moving can be off by the few operations in progress.
func Snapshot() Stats {
	allocs := statAllocs.load()
	unpooled := statUnpooled.load()
	misses := statPoolMisses.load()
	frees := statFrees.load()
	return Stats{
		Allocs:      allocs,
		PoolHits:    allocs - unpooled - misses,
		PoolMisses:  misses,
		Frees:       frees,
		BytesCopied: statBytesCopied.load(),
		InFlight:    allocs - frees,
	}
}

// String formats the counters in the ASCII style of a stats file.
func (s Stats) String() string {
	return fmt.Sprintf("allocs: %d\npool hits: %d\npool misses: %d\nfrees: %d\nbytes copied: %d\nin flight: %d\n",
		s.Allocs, s.PoolHits, s.PoolMisses, s.Frees, s.BytesCopied, s.InFlight)
}

// classFor returns the smallest class index whose size holds n, or -1.
func classFor(n int) int {
	for i, sz := range classSizes {
		if n <= sz {
			return i
		}
	}
	return -1
}

// Alloc returns a block whose readable window is n bytes long,
// preceded by at least headroom bytes of prepend space and followed by
// at least tailReserve bytes of tailroom. The window's contents are
// unspecified (recycled buffers are not cleared); the caller fills it.
func Alloc(n, headroom int) *Block {
	total := headroom + n + tailReserve
	statAllocs.add(1)
	class := classFor(total)
	var b *Block
	if class >= 0 {
		if v := classPools[class].Get(); v != nil {
			b = v.(*Block)
		} else {
			statPoolMisses.add(1)
			b = &Block{buf: make([]byte, classSizes[class])}
		}
	} else {
		statUnpooled.add(1)
		b = &Block{buf: make([]byte, total)}
	}
	b.class = class
	b.rp = headroom
	b.wp = headroom + n
	b.refs.Store(1)
	return b
}

// Copy returns a pooled block holding a copy of p with the given
// headroom — the mandatory copy at a user-write or retain boundary.
func Copy(p []byte, headroom int) *Block {
	b := Alloc(len(p), headroom)
	copy(b.Bytes(), p)
	statBytesCopied.add(int64(len(p)))
	return b
}

// FromBytes wraps an existing buffer as a block without copying. The
// buffer does not come from (or return to) a pool; Free releases only
// the reference. The caller transfers ownership of p.
func FromBytes(p []byte) *Block {
	statAllocs.add(1)
	statUnpooled.add(1)
	b := &Block{buf: p, rp: 0, wp: len(p), class: -1}
	b.refs.Store(1)
	return b
}

// Bytes returns the readable window. The slice aliases the block's
// buffer: it dies when the block is freed.
func (b *Block) Bytes() []byte { return b.buf[b.rp:b.wp] }

// Len returns the length of the readable window.
func (b *Block) Len() int { return b.wp - b.rp }

// Headroom returns the prepend space available.
func (b *Block) Headroom() int { return b.rp }

// Tailroom returns the append space available.
func (b *Block) Tailroom() int { return len(b.buf) - b.wp }

// Prepend grows the window by n bytes at the front and returns the new
// front region for the caller to fill — the in-place header push. If
// the headroom is short the block reallocates and copies (counted in
// BytesCopied), so layers sized within DefaultHeadroom never copy.
func (b *Block) Prepend(n int) []byte {
	if b.rp < n {
		b.grow(n-b.rp+DefaultHeadroom, 0)
	}
	b.rp -= n
	return b.buf[b.rp : b.rp+n]
}

// Extend grows the window by n bytes at the back and returns the new
// tail region for the caller to fill — the in-place trailer push.
func (b *Block) Extend(n int) []byte {
	if len(b.buf)-b.wp < n {
		b.grow(0, n-(len(b.buf)-b.wp))
	}
	s := b.buf[b.wp : b.wp+n]
	b.wp += n
	return s
}

// Append copies p into tailroom, extending the window.
func (b *Block) Append(p []byte) {
	copy(b.Extend(len(p)), p)
	statBytesCopied.add(int64(len(p)))
}

// grow reallocates with at least the requested extra head/tail space.
// The old buffer is abandoned to the garbage collector (growth is the
// slow path a correctly sized Alloc never hits).
func (b *Block) grow(extraHead, extraTail int) {
	n := b.Len()
	newRp := b.rp + extraHead
	total := newRp + n + (len(b.buf) - b.wp) + extraTail
	class := classFor(total)
	var buf []byte
	if class >= 0 {
		buf = make([]byte, classSizes[class])
	} else {
		buf = make([]byte, total)
	}
	copy(buf[newRp:], b.Bytes())
	statBytesCopied.add(int64(n))
	b.buf = buf
	b.rp = newRp
	b.wp = newRp + n
	b.class = class
}

// Consume drops n bytes from the front of the window (a layer peeling
// its header, or a reader taking a partial block).
func (b *Block) Consume(n int) {
	if n < 0 || b.rp+n > b.wp {
		panic("block: Consume past window")
	}
	b.rp += n
}

// Trim drops n bytes from the back of the window (stripping a trailer).
func (b *Block) Trim(n int) {
	if n < 0 || b.wp-n < b.rp {
		panic("block: Trim past window")
	}
	b.wp -= n
}

// Ref adds a reference for read-only sharing: the block is freed when
// every holder has called Free, and no holder may mutate the window or
// buffer. Returns b for chaining.
func (b *Block) Ref() *Block {
	b.refs.Add(1)
	return b
}

// Free releases one reference; the last release recycles the buffer
// into its size-class pool. Freeing an already-free block panics:
// that ownership bug would otherwise reappear as data corruption when
// the pooled buffer is recycled under a stale alias.
func (b *Block) Free() {
	switch n := b.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("block: double free")
	}
	statFrees.add(1)
	if b.class >= 0 {
		classPools[b.class].Put(b)
	}
}

// Detach removes the buffer from the pool economy and returns the
// readable window: for handing bytes to a consumer that outlives any
// ownership discipline (the impairment scheduler, a channel of plain
// slices). The block is released but its buffer is never recycled, so
// the returned slice is safe for as long as the holder keeps it.
// Detaching a shared block panics — the other holders' references
// could not be honored.
func (b *Block) Detach() []byte {
	if b.refs.Load() != 1 {
		panic("block: Detach of shared block")
	}
	p := b.Bytes()
	b.refs.Store(0)
	statFrees.add(1)
	return p
}

// GetBytes returns a pooled plain buffer of length n (and class-sized
// capacity) for callers that traffic in raw slices, like the 9P
// transports. Return it with PutBytes when done; a buffer that is
// never returned simply falls to the garbage collector.
func GetBytes(n int) []byte {
	statAllocs.add(1)
	class := classFor(n)
	if class >= 0 {
		if v := classPools[class].Get(); v != nil {
			b := v.(*Block)
			buf := b.buf
			b.buf = nil
			blockStructPool.Put(b)
			return buf[:n]
		}
		statPoolMisses.add(1)
		return make([]byte, classSizes[class])[:n]
	}
	statUnpooled.add(1)
	return make([]byte, n)
}

// PutBytes recycles a buffer obtained from GetBytes (or any slice
// whose capacity is exactly a class size). The caller must own p
// outright and must not touch it again — recycling an aliased buffer
// is the same corruption hazard as a double Free. Unrecognized
// capacities are dropped to the garbage collector.
func PutBytes(p []byte) {
	statFrees.add(1)
	c := cap(p)
	for i, sz := range classSizes {
		if c == sz {
			b := getBlockStruct()
			b.buf = p[:sz]
			classPools[i].Put(b)
			return
		}
	}
}

// blockStructPool recycles the Block headers GetBytes strips from
// pooled buffers, so the raw-slice path allocates nothing steady-state.
var blockStructPool sync.Pool

func getBlockStruct() *Block {
	if v := blockStructPool.Get(); v != nil {
		return v.(*Block)
	}
	return &Block{}
}
