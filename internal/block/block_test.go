package block

import (
	"bytes"
	"sync"
	"testing"
)

func TestWindowOps(t *testing.T) {
	b := Alloc(4, 32)
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Headroom() != 32 {
		t.Fatalf("Headroom = %d, want 32", b.Headroom())
	}
	copy(b.Bytes(), "data")

	copy(b.Prepend(3), "hdr")
	if got := string(b.Bytes()); got != "hdrdata" {
		t.Fatalf("after Prepend: %q", got)
	}
	b.Append([]byte("!!"))
	if got := string(b.Bytes()); got != "hdrdata!!" {
		t.Fatalf("after Append: %q", got)
	}
	b.Consume(3)
	b.Trim(2)
	if got := string(b.Bytes()); got != "data" {
		t.Fatalf("after Consume+Trim: %q", got)
	}
	b.Free()
}

func TestPrependGrows(t *testing.T) {
	b := Alloc(4, 0)
	copy(b.Bytes(), "data")
	copy(b.Prepend(8), "headers!")
	if got := string(b.Bytes()); got != "headers!data" {
		t.Fatalf("after growing Prepend: %q", got)
	}
	b.Free()
}

func TestConsumeTrimBounds(t *testing.T) {
	b := Alloc(4, 0)
	defer b.Free()
	for _, f := range []func(){
		func() { b.Consume(5) },
		func() { b.Trim(5) },
		func() { b.Consume(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-window op did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPoolRecycles(t *testing.T) {
	// Warm the class, free, and re-alloc: the hit counter must move.
	// (Another goroutine's pool activity can only add hits, not remove
	// them, and tests in this package run sequentially.)
	b := Alloc(100, 16)
	b.Free()
	before := Snapshot()
	b2 := Alloc(100, 16)
	after := Snapshot()
	if after.PoolHits == before.PoolHits && after.PoolMisses == before.PoolMisses {
		t.Fatal("alloc moved neither hit nor miss counter")
	}
	b2.Free()
}

func TestDoubleFreePanics(t *testing.T) {
	b := Alloc(8, 0)
	// Pin the buffer so the pool cannot hand it to anyone between the
	// first and second Free (the panic must come from refcounting, not
	// luck). class -1 blocks never enter the pool.
	b.class = -1
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	b.Free()
}

func TestRefFanout(t *testing.T) {
	b := Alloc(5, 0)
	copy(b.Bytes(), "share")
	b.Ref()
	b.Ref()
	// Three owners now; two frees must leave the data intact.
	b.Free()
	b.Free()
	if got := string(b.Bytes()); got != "share" {
		t.Fatalf("data after partial frees: %q", got)
	}
	b.Free()
}

func TestDetach(t *testing.T) {
	b := Alloc(4, 8)
	copy(b.Bytes(), "keep")
	inFlightBefore := Snapshot().InFlight
	p := b.Detach()
	if !bytes.Equal(p, []byte("keep")) {
		t.Fatalf("Detach = %q", p)
	}
	if d := Snapshot().InFlight - inFlightBefore; d != -1 {
		t.Fatalf("InFlight moved by %d across Detach, want -1", d)
	}
	// The buffer never re-enters the pool; a fresh alloc must not alias p.
	b2 := Alloc(4, 8)
	copy(b2.Bytes(), "over")
	if string(p) != "keep" {
		t.Fatal("detached bytes were recycled under the caller")
	}
	b2.Free()
}

func TestDetachSharedPanics(t *testing.T) {
	b := Alloc(4, 0)
	b.Ref()
	defer func() {
		if recover() == nil {
			t.Fatal("Detach of shared block did not panic")
		}
		b.Free()
		b.Free()
	}()
	b.Detach()
}

func TestFromBytes(t *testing.T) {
	p := []byte("foreign")
	b := FromBytes(p)
	if b.Len() != 7 || !bytes.Equal(b.Bytes(), p) {
		t.Fatalf("FromBytes window = %q", b.Bytes())
	}
	copy(b.Prepend(2), "->")
	if got := string(b.Bytes()); got != "->foreign" {
		t.Fatalf("after Prepend on foreign block: %q", got)
	}
	b.Free()
}

func TestGetPutBytes(t *testing.T) {
	p := GetBytes(300)
	if len(p) != 300 {
		t.Fatalf("GetBytes len = %d", len(p))
	}
	if cap(p) != 1024 {
		t.Fatalf("GetBytes cap = %d, want class size 1024", cap(p))
	}
	PutBytes(p)
	// Unrecognized capacities are dropped, not corrupted.
	PutBytes(make([]byte, 77))
}

func TestStatsBalance(t *testing.T) {
	before := Snapshot()
	bs := make([]*Block, 50)
	for i := range bs {
		bs[i] = Alloc(64, 16)
	}
	mid := Snapshot()
	if d := mid.InFlight - before.InFlight; d != 50 {
		t.Fatalf("InFlight rose by %d, want 50", d)
	}
	for _, b := range bs {
		b.Free()
	}
	after := Snapshot()
	if d := after.InFlight - before.InFlight; d != 0 {
		t.Fatalf("InFlight drifted by %d after balanced alloc/free", d)
	}
	if after.Allocs-before.Allocs != 50 || after.Frees-before.Frees != 50 {
		t.Fatalf("counters: allocs +%d frees +%d, want +50/+50",
			after.Allocs-before.Allocs, after.Frees-before.Frees)
	}
}

// TestHammer exercises the allocator from many goroutines under the
// race detector: each fills its block with a signature, prepends and
// peels a header, and verifies the payload before freeing — any
// cross-goroutine buffer aliasing from a pooling bug shows up as a
// signature mismatch or a race report.
func TestHammer(t *testing.T) {
	const goroutines = 16
	const rounds = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(sig byte) {
			defer wg.Done()
			sizes := []int{1, 60, 250, 1000, 4000, 16000, 33000}
			for i := 0; i < rounds; i++ {
				n := sizes[i%len(sizes)]
				b := Alloc(n, DefaultHeadroom)
				p := b.Bytes()
				for j := range p {
					p[j] = sig
				}
				hdr := b.Prepend(8)
				for j := range hdr {
					hdr[j] = ^sig
				}
				b.Consume(8)
				for j, c := range b.Bytes() {
					if c != sig {
						panic("hammer: foreign byte in owned block at " +
							string(rune('0'+j%10)))
					}
				}
				if i%3 == 0 {
					b.Ref()
					b.Free()
				}
				b.Free()
			}
		}(byte(g + 1))
	}
	wg.Wait()
}

func BenchmarkAllocFree16K(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		blk := Alloc(16*1024, DefaultHeadroom)
		blk.Free()
	}
}
