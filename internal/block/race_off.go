//go:build !race

package block

// RaceEnabled reports whether the race detector is compiled in; alloc
// gates skip under it because its instrumentation allocates.
const RaceEnabled = false
