package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Kind tags one trace event. The kinds are shared across protocols so
// netstat and the conformance tests can interpret any conversation's
// trace without protocol-specific code — the same uniformity the file
// tree gives the data path.
type Kind uint8

// Event kinds. A and B are kind-specific small integers (a sequence
// number, a byte count); unused arguments are zero.
const (
	EvNone        Kind = iota
	EvConnect          // conversation dialed (A: 1 on success, 0 on error)
	EvAnnounce         // conversation announced
	EvAccept           // incoming call accepted
	EvSend             // data sent (A: seq, B: bytes)
	EvRecv             // data received in sequence (A: seq, B: bytes)
	EvAck              // acknowledgement received (A: seq)
	EvDup              // duplicate data received (A: seq)
	EvOutOfOrder       // out-of-window or out-of-order data (A: seq)
	EvRetransmit       // retransmission sent (A: seq)
	EvQuery            // IL query / URP enquiry sent
	EvReject           // URP REJ sent (A: expected seq)
	EvHangup           // conversation hung up
	EvFlush            // in-flight RPC flushed / speculative work cancelled
	EvRAHit            // readahead satisfied a read (B: bytes)
	EvRAMiss           // read missed the readahead queue
	EvRACancel         // readahead abandoned (pattern break, error)
	EvWriteBehind      // write-behind fragment issued (B: bytes)
	EvBarrier          // write-behind barrier drained
	EvCacheHit         // answer served from cache
	EvAnswer           // query answered (A: number of answer lines)
	EvError            // operation failed
	EvWait             // joined another caller's in-flight computation
	nKinds
)

var kindNames = [nKinds]string{
	EvNone:        "none",
	EvConnect:     "connect",
	EvAnnounce:    "announce",
	EvAccept:      "accept",
	EvSend:        "send",
	EvRecv:        "recv",
	EvAck:         "ack",
	EvDup:         "dup",
	EvOutOfOrder:  "outoforder",
	EvRetransmit:  "retransmit",
	EvQuery:       "query",
	EvReject:      "reject",
	EvHangup:      "hangup",
	EvFlush:       "flush",
	EvRAHit:       "readahead-hit",
	EvRAMiss:      "readahead-miss",
	EvRACancel:    "readahead-cancel",
	EvWriteBehind: "write-behind",
	EvBarrier:     "barrier",
	EvCacheHit:    "cache-hit",
	EvAnswer:      "answer",
	EvError:       "error",
	EvWait:        "wait",
}

// String returns the stable ASCII name of the kind, as trace files
// print it.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// RingSize is the number of events a ring retains (a power of two).
const RingSize = 256

// Event is one fixed-size trace record.
type Event struct {
	Seq  uint64        // 1-based emission sequence, monotonic per ring
	When time.Duration // since the ring was enabled
	Kind Kind
	A, B int64
}

// slot is one ring entry. seq is the commit word: the writer zeroes
// it, stores the fields, then stores the event's sequence number; a
// reader accepts a record only if seq reads the same expected value
// before and after the field loads.
type slot struct {
	seq  atomic.Uint64
	when atomic.Int64
	kind atomic.Uint32
	a, b atomic.Int64
}

// Ring is a fixed-size lock-free event ring: any number of writers
// Emit concurrently (each claims a slot with one atomic add), readers
// snapshot without stopping them. The zero Ring is valid and disabled;
// a disabled ring's Emit is a single atomic load and no allocation, so
// instrumentation points stay on the hot path permanently and tracing
// is armed per conversation when someone wants to watch.
type Ring struct {
	enabled atomic.Bool
	epoch   atomic.Int64 // wall nanoseconds at Enable
	nowFn   atomic.Pointer[func() int64]
	head    atomic.Uint64
	slots   [RingSize]slot
}

// Tracer is implemented by conversations (and servers) that carry an
// event ring; the device trees serve a trace file for anything that
// does.
type Tracer interface {
	Trace() *Ring
}

// SetNow replaces the ring's time source (wall nanoseconds) — how a
// virtual-time world stamps traces with simulated time so same-seed
// runs produce byte-identical trace files. nil restores the real
// clock.
func (r *Ring) SetNow(now func() int64) {
	if now == nil {
		r.nowFn.Store(nil)
		return
	}
	r.nowFn.Store(&now)
}

func (r *Ring) now() int64 {
	if fn := r.nowFn.Load(); fn != nil {
		return (*fn)()
	}
	//netvet:ignore realtime the pluggable time source defaults to the real clock
	return time.Now().UnixNano()
}

// Enable arms the ring and resets its epoch. Events already recorded
// remain readable; their When is relative to the previous epoch.
func (r *Ring) Enable() {
	r.epoch.Store(r.now())
	r.enabled.Store(true)
}

// Disable stops recording; the buffered events remain readable.
func (r *Ring) Disable() { r.enabled.Store(false) }

// Enabled reports whether the ring is recording.
func (r *Ring) Enabled() bool { return r.enabled.Load() }

// Emit records one event if the ring is enabled. It is lock-free,
// never blocks, never allocates, and is safe from any number of
// goroutines; when the ring is full the oldest event is overwritten.
func (r *Ring) Emit(k Kind, a, b int64) {
	if !r.enabled.Load() {
		return
	}
	when := r.now() - r.epoch.Load()
	seq := r.head.Add(1) // 1-based
	s := &r.slots[(seq-1)%RingSize]
	s.seq.Store(0) // mark torn while the fields change
	s.when.Store(when)
	s.kind.Store(uint32(k))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq) // commit
}

// Events returns the buffered events, oldest first. Records being
// overwritten while the snapshot runs are skipped rather than torn:
// each slot's commit word is checked before and after its fields are
// read.
func (r *Ring) Events() []Event {
	head := r.head.Load()
	if head == 0 {
		return nil
	}
	lo := uint64(1)
	if head > RingSize {
		lo = head - RingSize + 1
	}
	evs := make([]Event, 0, head-lo+1)
	for seq := lo; seq <= head; seq++ {
		s := &r.slots[(seq-1)%RingSize]
		if s.seq.Load() != seq {
			continue // not yet committed, or already overwritten
		}
		ev := Event{
			Seq:  seq,
			When: time.Duration(s.when.Load()),
			Kind: Kind(s.kind.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
		}
		if s.seq.Load() != seq {
			continue // overwritten while we read it
		}
		evs = append(evs, ev)
	}
	return evs
}

// Kinds returns just the event kinds in order — the shape the
// event-order tests assert against.
func (r *Ring) Kinds() []Kind {
	evs := r.Events()
	ks := make([]Kind, len(evs))
	for i, ev := range evs {
		ks[i] = ev.Kind
	}
	return ks
}

// TraceText renders the ring as the trace file serves it, one event
// per line:
//
//	12 1.042ms retransmit 7 0
//
// (sequence, time since enable, kind, A, B).
func (r *Ring) TraceText() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		fmt.Fprintf(&b, "%d %s %s %d %d\n", ev.Seq, ev.When, ev.Kind, ev.A, ev.B)
	}
	return b.String()
}
