package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndWatermark(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var w Watermark
	w.Note(5)
	w.Note(3)
	if got := w.Load(); got != 5 {
		t.Fatalf("watermark = %d, want 5", got)
	}
	w.Note(9)
	if got := w.Load(); got != 9 {
		t.Fatalf("watermark = %d, want 9", got)
	}
}

func TestGroupRenderAndParse(t *testing.T) {
	var retrans Counter
	retrans.Add(7)
	g := new(Group).
		AddCounter("retransmits", &retrans).
		Add("msgs", func() int64 { return 100 })
	text := g.Render()
	if !strings.Contains(text, "retransmits: 7\n") || !strings.Contains(text, "msgs: 100\n") {
		t.Fatalf("render:\n%s", text)
	}
	// A stats file mixes counter lines with per-conversation summary
	// lines and histogram lines; ParseStats keeps only the counters.
	text = "tcp/0 Established 1.2.3.4!80 5.6.7.8!999\n" + text + "rtt: count 3 avg 1ms\nrtt ≤1ms: 3\n"
	m := ParseStats(text)
	if m["retransmits"] != 7 || m["msgs"] != 100 {
		t.Fatalf("parse = %v", m)
	}
	if _, ok := m["rtt"]; ok {
		t.Fatalf("histogram summary parsed as a counter: %v", m)
	}
	if len(m) != 2 {
		t.Fatalf("parse picked up stray lines: %v", m)
	}
	snap := g.Snapshot()
	if snap["retransmits"] != 7 || snap["msgs"] != 100 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{-5, 0},
		{time.Hour, NHistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.bucket {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.bucket)
		}
	}
	var h Hist
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	s := h.SnapshotHist()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNs != 5*time.Millisecond.Nanoseconds() {
		t.Fatalf("sum = %d", s.SumNs)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 3 {
		t.Fatalf("bucket total = %d", total)
	}
	text := h.Render("rtt")
	if !strings.Contains(text, "rtt: count 3 avg 1.666666ms") {
		t.Fatalf("render:\n%s", text)
	}
	// Only occupied buckets render.
	if got := strings.Count(text, "\n"); got != 3 {
		t.Fatalf("render has %d lines, want 3:\n%s", got, text)
	}
}

func TestHistQuantile(t *testing.T) {
	var empty HistSnap
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// 90 observations in the 1µs bucket, 10 in the 1ms bucket: the
	// median sits in the fast bucket, the p99 in the slow one. Bucket
	// k holds [2^(k-1), 2^k), so the returned upper bound is 2^k ns.
	var h Hist
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.SnapshotHist()
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	if p50 >= time.Millisecond || p99 < time.Millisecond {
		t.Errorf("p50 %v p99 %v: want p50 in the µs bucket, p99 in the ms bucket", p50, p99)
	}
	if p50 != time.Duration(1<<uint(bucketFor(time.Microsecond))) {
		t.Errorf("p50 %v is not its bucket's upper bound", p50)
	}
	// A quantile so small it rounds below one observation still
	// answers from the first occupied bucket.
	if got := s.Quantile(0.0001); got != p50 {
		t.Errorf("tiny quantile = %v, want first bucket bound %v", got, p50)
	}
	// The overflow bucket answers with the top bound.
	var top Hist
	top.Observe(time.Hour)
	if got := top.SnapshotHist().Quantile(1); got != time.Duration(1<<(NHistBuckets-2)) {
		t.Errorf("overflow quantile = %v", got)
	}
}

func TestBucketLabel(t *testing.T) {
	if BucketLabel(0) != "≤1ns" {
		t.Fatalf("label 0 = %q", BucketLabel(0))
	}
	if BucketLabel(20) != "≤1.048576ms" {
		t.Fatalf("label 20 = %q", BucketLabel(20))
	}
	if !strings.HasPrefix(BucketLabel(NHistBuckets-1), ">") {
		t.Fatalf("last label = %q", BucketLabel(NHistBuckets-1))
	}
}

func TestRingDisabledByDefault(t *testing.T) {
	var r Ring
	r.Emit(EvSend, 1, 2)
	if evs := r.Events(); len(evs) != 0 {
		t.Fatalf("disabled ring recorded %v", evs)
	}
	if r.Enabled() {
		t.Fatal("zero ring enabled")
	}
}

func TestRingEmitOrderAndFields(t *testing.T) {
	var r Ring
	r.Enable()
	r.Emit(EvConnect, 1, 0)
	r.Emit(EvSend, 7, 512)
	r.Emit(EvRetransmit, 7, 0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	wantKinds := []Kind{EvConnect, EvSend, EvRetransmit}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
		if ev.When < 0 {
			t.Fatalf("event %d when = %v", i, ev.When)
		}
	}
	if evs[1].A != 7 || evs[1].B != 512 {
		t.Fatalf("send args = %d,%d", evs[1].A, evs[1].B)
	}
	ks := r.Kinds()
	for i, k := range ks {
		if k != wantKinds[i] {
			t.Fatalf("kinds = %v", ks)
		}
	}
	text := r.TraceText()
	if !strings.Contains(text, "send 7 512") {
		t.Fatalf("trace text:\n%s", text)
	}
	r.Disable()
	r.Emit(EvHangup, 0, 0)
	if got := len(r.Events()); got != 3 {
		t.Fatalf("disabled ring grew to %d events", got)
	}
}

func TestRingWraparound(t *testing.T) {
	var r Ring
	r.Enable()
	const n = RingSize + 50
	for i := range n {
		r.Emit(EvSend, int64(i), 0)
	}
	evs := r.Events()
	if len(evs) != RingSize {
		t.Fatalf("got %d events, want %d", len(evs), RingSize)
	}
	// Oldest surviving event is n-RingSize, newest n-1.
	if evs[0].A != n-RingSize || evs[len(evs)-1].A != n-1 {
		t.Fatalf("window [%d..%d], want [%d..%d]",
			evs[0].A, evs[len(evs)-1].A, n-RingSize, n-1)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestRingConcurrent hammers one ring from many goroutines while a
// reader snapshots: the race detector must stay quiet and every
// snapshot must be internally ordered.
func TestRingConcurrent(t *testing.T) {
	var r Ring
	r.Enable()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := range 4 {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := range 2000 {
				r.Emit(EvSend, int64(w), int64(i))
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("snapshot out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := r.head.Load(); got != 8000 {
		t.Fatalf("head = %d, want 8000", got)
	}
}

func TestKindNames(t *testing.T) {
	if EvRetransmit.String() != "retransmit" || EvRAHit.String() != "readahead-hit" {
		t.Fatalf("kind names wrong: %v %v", EvRetransmit, EvRAHit)
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
	// Every declared kind has a name: a new event kind without one
	// would render trace files with blanks.
	for k := Kind(0); k < nKinds; k++ {
		if kindNames[k] == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
