package obs

import (
	"testing"
	"time"
)

// The observability core rides every hot path in the tree, so its own
// cost is gated the same way the block pool's is: a disabled ring is
// one atomic load, an enabled ring a handful of atomic stores, a
// counter bump one padded add, a histogram sample two adds and a
// bucket add — and none of them ever allocates. The PR3/PR4 alloc
// gates (streams 16K write ≤2, ninep Rread ≤12) only stay green with
// instrumentation compiled in because these are all zero.
func TestAllocsEmitDisabled(t *testing.T) {
	var r Ring
	if got := testing.AllocsPerRun(1000, func() { r.Emit(EvSend, 1, 2) }); got != 0 {
		t.Fatalf("disabled Emit allocates %.1f objects/op, want 0", got)
	}
}

func TestAllocsEmitEnabled(t *testing.T) {
	var r Ring
	r.Enable()
	if got := testing.AllocsPerRun(1000, func() { r.Emit(EvSend, 1, 2) }); got != 0 {
		t.Fatalf("enabled Emit allocates %.1f objects/op, want 0", got)
	}
}

func TestAllocsCounterAndHist(t *testing.T) {
	var c Counter
	if got := testing.AllocsPerRun(1000, func() { c.Inc() }); got != 0 {
		t.Fatalf("Counter.Inc allocates %.1f objects/op, want 0", got)
	}
	var h Hist
	if got := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); got != 0 {
		t.Fatalf("Hist.Observe allocates %.1f objects/op, want 0", got)
	}
	var w Watermark
	if got := testing.AllocsPerRun(1000, func() { w.Note(3) }); got != 0 {
		t.Fatalf("Watermark.Note allocates %.1f objects/op, want 0", got)
	}
}
