package obs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The registry storm merges per-machine /net/cs histograms by parsing
// the rendered stats text back into snapshots; this pins the full
// round trip: Hist -> Group.Render -> ParseHistSnap -> Merge.
func TestParseHistSnapRoundTrip(t *testing.T) {
	var h Hist
	samples := []time.Duration{
		0, time.Nanosecond, 3 * time.Nanosecond,
		500 * time.Nanosecond, 8 * time.Microsecond,
		8 * time.Microsecond, 1500 * time.Microsecond,
		2 * time.Second, 20 * time.Second, // last lands past the top bucket
	}
	for _, d := range samples {
		h.Observe(d)
	}
	var hits atomic.Int64
	hits.Store(12)
	g := new(Group).
		AddAtomic("cache-hits", &hits).
		AddHist("lat", &h)
	text := g.Render()

	want := h.SnapshotHist()
	got := ParseHistSnap(text, "lat")
	if got.Count != want.Count || got.Buckets != want.Buckets {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v\ntext:\n%s", got, want, text)
	}
	// SumNs is recovered from the rendered average, which truncates:
	// it must land within Count nanoseconds of the truth.
	if diff := want.SumNs - got.SumNs; diff < 0 || diff > want.Count {
		t.Fatalf("SumNs recovered as %d, want within [%d-count, %d]",
			got.SumNs, want.SumNs, want.SumNs)
	}
	// And the scalar line is still visible to ParseStats alongside.
	if ParseStats(text)["cache-hits"] != 12 {
		t.Fatalf("cache-hits lost in render:\n%s", text)
	}
}

func TestParseHistSnapAbsentAndMalformed(t *testing.T) {
	var zero HistSnap
	// A stats file without the named histogram is the empty snapshot,
	// even when other histograms and counters are present.
	var h Hist
	h.Observe(time.Millisecond)
	text := "queries: 9\n" + h.Render("other")
	if got := ParseHistSnap(text, "lat"); got != zero {
		t.Fatalf("absent name parsed as %+v", got)
	}
	// Damaged lines are skipped, never fatal: a count line missing
	// " avg ", a non-numeric count, a bucket line with a non-numeric
	// value, and a bucket label no bucket owns.
	bad := strings.Join([]string{
		"lat: count 5",
		"lat: count five avg 1ms",
		"lat ≤1ms: many",
		"lat ≤17h: 3",
		"lat nolabel",
	}, "\n")
	if got := ParseHistSnap(bad, "lat"); got != zero {
		t.Fatalf("malformed lines parsed as %+v", got)
	}
	// A bad average still keeps the count (SumNs just stays 0).
	got := ParseHistSnap("lat: count 4 avg soon\n", "lat")
	if got.Count != 4 || got.SumNs != 0 {
		t.Fatalf("bad avg: %+v", got)
	}
}

func TestHistSnapMerge(t *testing.T) {
	var a, b Hist
	a.Observe(2 * time.Microsecond)
	a.Observe(3 * time.Millisecond)
	b.Observe(2 * time.Microsecond)

	sa, sb := a.SnapshotHist(), b.SnapshotHist()
	sum := sa
	sum.Merge(sb)
	if sum.Count != 3 || sum.SumNs != sa.SumNs+sb.SumNs {
		t.Fatalf("merge totals: %+v", sum)
	}
	for i := range sum.Buckets {
		if sum.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
			t.Fatalf("bucket %d: %d + %d != %d",
				i, sa.Buckets[i], sb.Buckets[i], sum.Buckets[i])
		}
	}
	// Merging through the rendered form agrees with merging the truth
	// on everything but the rounded SumNs — the property the storm
	// report relies on.
	ra := ParseHistSnap(sa.Render("lat"), "lat")
	ra.Merge(ParseHistSnap(sb.Render("lat"), "lat"))
	if ra.Count != sum.Count || ra.Buckets != sum.Buckets {
		t.Fatalf("rendered merge diverged: %+v vs %+v", ra, sum)
	}
	if ra.Quantile(0.5) != sum.Quantile(0.5) || ra.Quantile(0.99) != sum.Quantile(0.99) {
		t.Fatalf("quantiles diverged after rendered merge")
	}
}

// SetNow is how a virtual-time world stamps traces with simulated
// time; same-seed determinism depends on Emit reading the injected
// clock, and nil restoring the real one.
func TestRingSetNow(t *testing.T) {
	var r Ring
	vnow := int64(1_000_000)
	r.SetNow(func() int64 { return vnow })
	r.Enable()
	vnow += 250
	r.Emit(EvWait, 1, 0)
	vnow += 750
	r.Emit(EvWait, 2, 0)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].When != 250 || evs[1].When != 1000 {
		t.Fatalf("virtual stamps = %v, %v; want 250ns, 1µs", evs[0].When, evs[1].When)
	}
	// Restoring the real clock: the next epoch is wall time, so a
	// fresh Enable+Emit stamps a small non-negative real offset.
	r.SetNow(nil)
	r.Enable()
	r.Emit(EvWait, 3, 0)
	evs = r.Events()
	last := evs[len(evs)-1]
	if last.When < 0 || last.When > time.Minute {
		t.Fatalf("real-clock stamp out of range: %v", last.When)
	}
}
