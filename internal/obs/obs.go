// Package obs is the observability core behind the paper's diagnostic
// story: "every aspect of a network is a file", so a machine — or a
// remote machine that has imported this one's /net (§6.1) — watches
// the system by reading stats and trace files out of the protocol
// device trees. The package supplies the three primitives those files
// render:
//
//   - Counter: a cache-line-padded monotonic counter, the same shape
//     as the block allocator's Snapshot counters. Protocol engines
//     bump them on the hot path; a Group names a set of them and
//     renders the ASCII "name: value" stats file.
//   - Hist: a log2-bucket latency histogram (RTT samples, 9P RPC
//     latency, stream put-chain residency). Observe is two atomic
//     adds; rendering walks the buckets.
//   - Ring: a fixed-size, lock-free per-conversation event ring for
//     trace files. Emit when disabled is one atomic load; enabled it
//     is a handful of atomic stores and never allocates, so tracing
//     can be armed on a live conversation without disturbing it.
//
// Everything here is allocation-free when idle and deterministic: no
// random draws, no background goroutines — replaying a torture
// scenario replays its event sequence.
package obs

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is an atomic monotonic counter padded to a cache line, so a
// row of them hammered from both ends of a link does not ping-pong one
// line between cores (the block allocator's counter, exported).
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Watermark tracks a high-water mark (window occupancy, queue depth).
type Watermark struct {
	v atomic.Int64
	_ [56]byte
}

// Note records v if it exceeds the mark.
func (w *Watermark) Note(v int64) {
	for {
		cur := w.v.Load()
		if v <= cur || w.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (w *Watermark) Load() int64 { return w.v.Load() }

// Group is an ordered set of named int64 sources rendered as a stats
// file, one "name: value" line each. Registration happens at device
// construction; Render may be called concurrently with the sources
// being bumped (values are point reads, the file is a snapshot in the
// block.Snapshot sense).
type Group struct {
	names []string
	loads []func() int64
	hists []histEntry
}

type histEntry struct {
	name string
	h    *Hist
}

// Add registers a named value source.
func (g *Group) Add(name string, load func() int64) *Group {
	g.names = append(g.names, name)
	g.loads = append(g.loads, load)
	return g
}

// AddCounter registers a Counter.
func (g *Group) AddCounter(name string, c *Counter) *Group {
	return g.Add(name, c.Load)
}

// AddAtomic registers a bare atomic counter (the protocol engines'
// existing exported fields).
func (g *Group) AddAtomic(name string, v *atomic.Int64) *Group {
	return g.Add(name, v.Load)
}

// AddHist registers a histogram, rendered after the scalar lines.
func (g *Group) AddHist(name string, h *Hist) *Group {
	g.hists = append(g.hists, histEntry{name: name, h: h})
	return g
}

// Render formats the stats file.
func (g *Group) Render() string {
	var b strings.Builder
	for i, name := range g.names {
		fmt.Fprintf(&b, "%s: %d\n", name, g.loads[i]())
	}
	for _, he := range g.hists {
		b.WriteString(he.h.Render(he.name))
	}
	return b.String()
}

// Snapshot returns the scalar values by name (tests and netstat).
func (g *Group) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(g.names))
	for i, name := range g.names {
		m[name] = g.loads[i]()
	}
	return m
}

// ParseStats parses the "name: value" lines of a stats file into a
// map, skipping lines in any other shape (per-conversation summaries,
// histogram lines). This is how the conformance suite and netstat read
// a stats file back without trusting the renderer.
func ParseStats(text string) map[string]int64 {
	m := map[string]int64{}
	for _, line := range strings.Split(text, "\n") {
		name, val, ok := strings.Cut(line, ": ")
		if !ok || name == "" || strings.Contains(name, " ") {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue
		}
		m[name] = n
	}
	return m
}

// ParseHistSnap reconstructs a histogram snapshot from the lines
// Hist.Render(name) wrote into a stats file — the inverse ParseStats
// skips. Bucket lines are matched by their BucketLabel; SumNs is
// recovered from the rendered average (rounded to the duration-format
// precision, close enough for merged quantiles). A stats file without
// the named histogram parses as the empty snapshot.
func ParseHistSnap(text, name string) HistSnap {
	var s HistSnap
	countPrefix := name + ": count "
	bucketPrefix := name + " "
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, countPrefix); ok {
			cstr, avgstr, ok := strings.Cut(rest, " avg ")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(cstr, 10, 64)
			if err != nil {
				continue
			}
			s.Count = n
			if avg, err := time.ParseDuration(avgstr); err == nil {
				s.SumNs = n * avg.Nanoseconds()
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, bucketPrefix); ok {
			label, val, ok := strings.Cut(rest, ": ")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				continue
			}
			for i := 0; i < NHistBuckets; i++ {
				if BucketLabel(i) == label {
					s.Buckets[i] = n
					break
				}
			}
		}
	}
	return s
}

// NHistBuckets is the number of log2 latency buckets: bucket k counts
// observations with 2^(k-1) ns < d <= 2^k - 1 ns (bucket 0 is <= 1ns),
// covering up to ~9s in bucket 33 and everything longer in the last.
const NHistBuckets = 34

// Hist is a log2-bucket latency histogram. Observe is two atomic adds
// on the hot path; Render and SnapshotHist walk the buckets.
type Hist struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [NHistBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	b := bits.Len64(ns) // 0 for 0, k for 2^(k-1) <= ns < 2^k
	if b >= NHistBuckets {
		b = NHistBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.buckets[bucketFor(d)].Add(1)
}

// HistSnap is a consistent-enough snapshot of a histogram (point reads
// while traffic moves may be off by the samples in progress).
type HistSnap struct {
	Count   int64
	SumNs   int64
	Buckets [NHistBuckets]int64
}

// SnapshotHist returns the current counts.
func (h *Hist) SnapshotHist() HistSnap {
	var s HistSnap
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// BucketLabel names a bucket by its upper bound: "≤64µs" style, using
// Go duration formatting of 2^k-1 rounded up to 2^k ns.
func BucketLabel(i int) string {
	if i == NHistBuckets-1 {
		return ">" + time.Duration(1<<(NHistBuckets-2)).String()
	}
	return "≤" + time.Duration(uint64(1)<<uint(i)).String()
}

// Render formats the histogram as stats-file lines:
//
//	name: count 12 avg 1.5ms
//	name ≤1ms: 7
//	name ≤2ms: 5
//
// Only occupied buckets render, so an idle histogram is two words.
func (h *Hist) Render(name string) string {
	return h.SnapshotHist().Render(name)
}

// Merge accumulates another snapshot (summing several histograms, as
// a machine-wide stats file does over per-client ones).
func (s *HistSnap) Merge(o HistSnap) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the upper bound of the bucket holding the q'th
// quantile observation (0 < q <= 1) — a log2-granular percentile, the
// resolution the histogram actually has. An empty snapshot returns 0.
func (s HistSnap) Quantile(q float64) time.Duration {
	if s.Count <= 0 {
		return 0
	}
	want := int64(q * float64(s.Count))
	if want < 1 {
		want = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= want {
			if i == NHistBuckets-1 {
				return time.Duration(1 << (NHistBuckets - 2))
			}
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(1 << (NHistBuckets - 2))
}

// Render formats the snapshot in the Hist.Render file shape.
func (s HistSnap) Render(name string) string {
	var b strings.Builder
	avg := time.Duration(0)
	if s.Count > 0 {
		avg = time.Duration(s.SumNs / s.Count)
	}
	fmt.Fprintf(&b, "%s: count %d avg %s\n", name, s.Count, avg)
	for i, n := range s.Buckets {
		if n > 0 {
			fmt.Fprintf(&b, "%s %s: %d\n", name, BucketLabel(i), n)
		}
	}
	return b.String()
}
