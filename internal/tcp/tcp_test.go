package tcp

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/vfs"
	"repro/internal/xport"
)

func pair(t *testing.T, prof ether.Profile) (*Proto, *Proto, ip.Addr, ip.Addr) {
	t.Helper()
	seg := ether.NewSegment("e0", prof)
	t.Cleanup(seg.Close)
	s1, s2 := ip.NewStack(), ip.NewStack()
	a1 := ip.Addr{135, 104, 117, 1}
	a2 := ip.Addr{135, 104, 117, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := s1.Bind(seg.NewInterface("ether0"), a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Bind(seg.NewInterface("ether0"), a2, mask); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close(); s2.Close() })
	p1, p2 := New(s1), New(s2)
	// Engine teardown kills straggling conversations (a lost FIN can
	// strand a passive close) so their timers don't outlive the test.
	t.Cleanup(func() { p1.Close(); p2.Close() })
	return p1, p2, a1, a2
}

func connect(t *testing.T, p1, p2 *Proto, a2 ip.Addr, port string) (xport.Conn, xport.Conn) {
	t.Helper()
	lc, _ := p2.NewConn()
	if err := lc.Announce(port); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	acceptCh := make(chan xport.Conn, 1)
	go func() {
		nc, err := lc.Listen()
		if err == nil {
			acceptCh <- nc
		}
	}()
	dc, _ := p1.NewConn()
	if err := dc.Connect(a2.String() + "!" + port); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })
	select {
	case sc := <-acceptCh:
		t.Cleanup(func() { sc.Close() })
		return dc, sc
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func TestHandshakeEcho(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	if dc.(*Conn).State() != "Established" || sc.(*Conn).State() != "Established" {
		t.Errorf("states %s / %s", dc.(*Conn).State(), sc.(*Conn).State())
	}
	dc.Write([]byte("hello tcp"))
	buf := make([]byte, 64)
	n, err := sc.Read(buf)
	if err != nil || string(buf[:n]) != "hello tcp" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	sc.Write([]byte("right back"))
	n, err = dc.Read(buf)
	if err != nil || string(buf[:n]) != "right back" {
		t.Fatalf("reply %q, %v", buf[:n], err)
	}
}

func TestByteStreamDoesNotPreserveDelimiters(t *testing.T) {
	// §3: "TCP ... does not preserve delimiters." Two writes may be
	// read as one; the byte content must still be exact.
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	dc.Write([]byte("first"))
	dc.Write([]byte("second"))
	time.Sleep(50 * time.Millisecond) // let both segments land
	buf := make([]byte, 64)
	n, err := sc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	for len(got) < len("firstsecond") {
		n, err = sc.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got += string(buf[:n])
	}
	if got != "firstsecond" {
		t.Fatalf("stream bytes %q", got)
	}
}

func TestBulkTransfer(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	payload := bytes.Repeat([]byte("0123456789abcdef"), 16*1024) // 256 KiB
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 32*1024)
		for len(got) < len(payload) {
			n, err := sc.Read(buf)
			if err != nil {
				return
			}
			got = append(got, buf[:n]...)
		}
	}()
	if n, err := dc.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("write %d, %v", n, err)
	}
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk transfer corrupted: got %d bytes want %d", len(got), len(payload))
	}
}

func TestReliabilityUnderLoss(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{Loss: 0.08, Seed: 11, Bandwidth: 1 << 26})
	dc, sc := connect(t, p1, p2, a2, "564")
	payload := bytes.Repeat([]byte("L"), 40*1024)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for len(got) < len(payload) {
			n, err := sc.Read(buf)
			if err != nil {
				return
			}
			got = append(got, buf[:n]...)
		}
	}()
	dc.Write(payload)
	wg.Wait()
	if !bytes.Equal(got, payload) {
		t.Fatalf("lossy transfer corrupted (%d/%d bytes)", len(got), len(payload))
	}
	if p1.Retransmits.Load() == 0 {
		t.Log("note: loss pattern hit no data segments")
	}
}

func TestConnectionRefusedByRST(t *testing.T) {
	p1, _, _, a2 := pair(t, ether.Profile{})
	dc, _ := p1.NewConn()
	defer dc.Close()
	err := dc.Connect(a2.String() + "!9")
	if !vfs.SameError(err, vfs.ErrConnRef) {
		t.Errorf("refused connect = %v", err)
	}
}

func TestFINDeliversEOFAfterData(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	dc.Write([]byte("finale"))
	dc.Close()
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := sc.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read error %v (got %q)", err, got)
		}
	}
	if string(got) != "finale" {
		t.Errorf("data before FIN: %q", got)
	}
}

func TestCloseWithBufferedDataDrains(t *testing.T) {
	// Close immediately after a large write: every byte must still
	// arrive before EOF (FIN is sequenced after the data).
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	payload := bytes.Repeat([]byte("D"), 100*1024)
	go func() {
		dc.Write(payload)
		dc.Close()
	}()
	var got []byte
	buf := make([]byte, 16*1024)
	for {
		n, err := sc.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	if len(got) != len(payload) {
		t.Fatalf("received %d of %d bytes before EOF", len(got), len(payload))
	}
}

func TestHalfClose(t *testing.T) {
	// After the client closes, the server (CloseWait) can still send.
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	dc.Write([]byte("request"))
	dc.Close()
	buf := make([]byte, 64)
	n, err := sc.Read(buf)
	if err != nil || string(buf[:n]) != "request" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	// Wait until the FIN arrives and the server is in CloseWait.
	deadline := time.Now().Add(2 * time.Second)
	for sc.(*Conn).State() != "Close_wait" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n, err := sc.Write([]byte("response")); err != nil || n != 8 {
		t.Fatalf("server write after client close: %d, %v", n, err)
	}
	got := make([]byte, 64)
	rn, err := dc.Read(got)
	if err != nil || string(got[:rn]) != "response" {
		t.Fatalf("client read after close %q, %v", got[:rn], err)
	}
}

func TestSequentialConnectionsSamePort(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	lc, _ := p2.NewConn()
	if err := lc.Announce("7"); err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	for i := range 4 {
		go func() {
			nc, err := lc.Listen()
			if err != nil {
				return
			}
			buf := make([]byte, 128)
			n, _ := nc.Read(buf)
			nc.Write(buf[:n])
			nc.Close()
		}()
		dc, _ := p1.NewConn()
		if err := dc.Connect(a2.String() + "!7"); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		dc.Write([]byte("echo?"))
		buf := make([]byte, 128)
		n, err := dc.Read(buf)
		if err != nil || string(buf[:n]) != "echo?" {
			t.Fatalf("echo %d: %q, %v", i, buf[:n], err)
		}
		dc.Close()
	}
}

func TestAnnounceCollisionAndBadAddrs(t *testing.T) {
	p1, _, _, _ := pair(t, ether.Profile{})
	a, _ := p1.NewConn()
	if err := a.Announce("80"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, _ := p1.NewConn()
	defer b.Close()
	if err := b.Announce("80"); err != xport.ErrInUse {
		t.Errorf("duplicate announce = %v", err)
	}
	if err := b.Connect("nonsense"); err == nil {
		t.Error("bad connect address accepted")
	}
	if _, err := b.Listen(); err != xport.ErrNotAnnounced {
		t.Errorf("listen unannounced = %v", err)
	}
}

func TestStatusLines(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	dc, sc := connect(t, p1, p2, a2, "564")
	if s := dc.Status(); len(s) < 11 || s[:11] != "Established" {
		t.Errorf("dialer status %q", s)
	}
	if s := sc.Status(); len(s) < 11 || s[:11] != "Established" {
		t.Errorf("server status %q", s)
	}
	if la := dc.LocalAddr(); la == "" {
		t.Error("empty local addr")
	}
	if ra := dc.RemoteAddr(); ra != a2.String()+"!564" {
		t.Errorf("remote addr %q", ra)
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(src, dst uint16, seq, ack uint32, flags byte, win uint16, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		h := header{src: src, dst: dst, seq: seq, ack: ack, flags: flags, win: win}
		g, d, ok := unmarshal(marshal(h, data))
		return ok && g == h && bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	pkt := marshal(header{src: 1, dst: 2, seq: 3, ack: 4, flags: flagACK}, []byte("zz"))
	pkt[5] ^= 0x01
	if _, _, ok := unmarshal(pkt); ok {
		t.Error("corrupted TCP segment accepted")
	}
	if _, _, ok := unmarshal(pkt[:8]); ok {
		t.Error("short segment accepted")
	}
}

func TestConcurrentConnections(t *testing.T) {
	p1, p2, _, a2 := pair(t, ether.Profile{})
	lc, _ := p2.NewConn()
	if err := lc.Announce("564"); err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	go func() {
		for {
			nc, err := lc.Listen()
			if err != nil {
				return
			}
			go func(nc xport.Conn) {
				defer nc.Close()
				buf := make([]byte, 1024)
				for {
					n, err := nc.Read(buf)
					if err != nil {
						return
					}
					nc.Write(buf[:n])
				}
			}(nc)
		}
	}()
	var wg sync.WaitGroup
	for i := range 6 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dc, _ := p1.NewConn()
			defer dc.Close()
			if err := dc.Connect(a2.String() + "!564"); err != nil {
				t.Errorf("conn %d: %v", i, err)
				return
			}
			msg := bytes.Repeat([]byte{byte('a' + i)}, 300)
			dc.Write(msg)
			got := make([]byte, 0, len(msg))
			buf := make([]byte, 512)
			for len(got) < len(msg) {
				n, err := dc.Read(buf)
				if err != nil {
					t.Errorf("conn %d read: %v", i, err)
					return
				}
				got = append(got, buf[:n]...)
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d echo corrupted", i)
			}
		}(i)
	}
	wg.Wait()
}
