// Package tcp implements TCP over the simulated IP stack: the paper's
// heavyweight baseline (§3: "TCP has a high overhead and does not
// preserve delimiters"). It is a real byte-stream TCP — three-way
// handshake, byte sequence space, sliding window with receiver
// advertisement, adaptive retransmission, FIN teardown — simplified
// where the paper's comparisons do not care: no congestion control, no
// SACK (retransmission is go-back-N), no urgent data, no options, and
// a short TIME-WAIT. Delimiters are deliberately NOT preserved; 9P
// over TCP therefore needs the marshaling adapter, exactly as §2.1
// describes.
package tcp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/ip"
	"repro/internal/obs"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// HdrLen is our simplified TCP header: src[2] dst[2] seq[4] ack[4]
// flags[1] pad[1] win[2] sum[2].
const HdrLen = 18

// Header flags.
const (
	flagFIN = 1 << iota
	flagSYN
	flagRST
	flagACK
)

// BufSize is the send and receive buffer size (and the largest window
// ever advertised).
const BufSize = 64 * 1024

// Connection states.
const (
	Closed = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	LastAck
	Closing
	TimeWait
)

var stateNames = []string{
	"Closed", "Listen", "Syn_sent", "Syn_rcvd", "Established",
	"Finwait1", "Finwait2", "Close_wait", "Last_ack", "Closing", "Time_wait",
}

const (
	tickInterval = 5 * time.Millisecond
	minRTO       = 20 * time.Millisecond
	maxRTO       = 2 * time.Second
	synRetry     = 200 * time.Millisecond
	deathTime    = 30 * time.Second
	timeWaitDur  = 200 * time.Millisecond
)

// Proto is a machine's TCP protocol device.
type Proto struct {
	stack *ip.Stack
	ck    vclock.Clock

	mu        sync.Mutex
	conns     map[connKey]*Conn
	listeners map[uint16]*Conn
	nextEphem uint16
	rng       *rand.Rand

	Retransmits atomic.Int64
	SegsSent    atomic.Int64
	SegsRcvd    atomic.Int64

	// RTTHist collects every round-trip sample the adaptive timer
	// takes; /net/tcp/stats renders it as a log2 histogram.
	RTTHist obs.Hist
	stats   *obs.Group
}

type connKey struct {
	raddr ip.Addr
	rport uint16
	lport uint16
}

var _ xport.Proto = (*Proto)(nil)

// New creates the TCP device on a stack and registers its demux.
func New(stack *ip.Stack) *Proto {
	ck := stack.Clock()
	p := &Proto{
		stack:     stack,
		ck:        ck,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Conn),
		nextEphem: 5000,
		rng:       rand.New(rand.NewSource(ck.Now().UnixNano())),
	}
	p.stats = new(obs.Group).
		AddAtomic("segs-sent", &p.SegsSent).
		AddAtomic("segs-rcvd", &p.SegsRcvd).
		AddAtomic("retransmits", &p.Retransmits).
		AddHist("rtt", &p.RTTHist)
	stack.Register(ip.ProtoTCP, p.recv)
	return p
}

// Name implements xport.Proto.
func (p *Proto) Name() string { return "tcp" }

// StatsGroup exposes the engine counters; the netdev tree renders it
// into /net/tcp/stats after the per-conversation lines.
func (p *Proto) StatsGroup() *obs.Group { return p.stats }

// Clock exposes the stack clock so line disciplines pushed on TCP
// conversations time their flush windows in the same (possibly
// virtual) time domain as the protocol engine.
func (p *Proto) Clock() vclock.Clock { return p.ck }

// Close tears the whole engine down at machine shutdown: every
// conversation dies immediately — no FIN exchange, the machine is
// going away — and every listener stops accepting, so per-connection
// timers and blocked readers, writers, and accepts all wake and exit.
func (p *Proto) Close() {
	p.mu.Lock()
	all := make([]*Conn, 0, len(p.conns)+len(p.listeners))
	for _, c := range p.conns {
		all = append(all, c)
	}
	for _, l := range p.listeners {
		all = append(all, l)
	}
	p.conns = make(map[connKey]*Conn)
	p.listeners = make(map[uint16]*Conn)
	p.mu.Unlock()
	for _, c := range all {
		c.mu.Lock()
		if c.state == Listen {
			c.accepted.Close()
		}
		if c.err == nil {
			c.err = vfs.ErrHungup
		}
		c.dieLocked()
		c.mu.Unlock()
	}
}

// NewConn implements xport.Proto.
func (p *Proto) NewConn() (xport.Conn, error) { return p.newConn(), nil }

func (p *Proto) newConn() *Conn {
	c := &Conn{proto: p, state: Closed}
	c.cond.Init(p.ck, &c.mu)
	c.rstream = streams.NewClock(1<<22, p.ck, nil)
	c.accepted = vclock.NewMailbox[*Conn](p.ck, 8)
	return c
}

func (p *Proto) allocEphemeralLocked() uint16 {
	for {
		p.nextEphem++
		if p.nextEphem < 5000 {
			p.nextEphem = 5000
		}
		if _, taken := p.listeners[p.nextEphem]; taken {
			continue
		}
		free := true
		for k := range p.conns {
			if k.lport == p.nextEphem {
				free = false
				break
			}
		}
		if free {
			return p.nextEphem
		}
	}
}

type header struct {
	src, dst uint16
	seq, ack uint32
	flags    byte
	win      uint16
}

func marshal(h header, data []byte) []byte {
	p := make([]byte, HdrLen+len(data))
	copy(p[HdrLen:], data)
	fillHeader(p, h)
	return p
}

// marshalBlock builds the segment in a pooled block with headroom for
// the IP and Ethernet headers, so lower layers prepend in place.
func marshalBlock(h header, data []byte) *block.Block {
	b := block.Alloc(HdrLen+len(data), block.DefaultHeadroom)
	p := b.Bytes()
	copy(p[HdrLen:], data)
	fillHeader(p, h)
	return b
}

// fillHeader writes the header into p[:HdrLen] and checksums the whole
// packet. Every header byte is written explicitly — including the
// reserved one and the checksum field before summing — because pooled
// buffers arrive with stale contents, unlike a fresh make.
func fillHeader(p []byte, h header) {
	p[0] = byte(h.src >> 8)
	p[1] = byte(h.src)
	p[2] = byte(h.dst >> 8)
	p[3] = byte(h.dst)
	p[4] = byte(h.seq >> 24)
	p[5] = byte(h.seq >> 16)
	p[6] = byte(h.seq >> 8)
	p[7] = byte(h.seq)
	p[8] = byte(h.ack >> 24)
	p[9] = byte(h.ack >> 16)
	p[10] = byte(h.ack >> 8)
	p[11] = byte(h.ack)
	p[12] = h.flags
	p[13] = 0
	p[14] = byte(h.win >> 8)
	p[15] = byte(h.win)
	p[16], p[17] = 0, 0
	ck := ip.Checksum(p)
	p[16] = byte(ck >> 8)
	p[17] = byte(ck)
}

func unmarshal(p []byte) (header, []byte, bool) {
	var h header
	if len(p) < HdrLen {
		return h, nil, false
	}
	// Move the checksum to the front order-independently: sum with
	// the field zeroed must equal the carried value.
	carried := uint16(p[16])<<8 | uint16(p[17])
	cp := append([]byte(nil), p...)
	cp[16], cp[17] = 0, 0
	if ip.Checksum(cp) != carried {
		return h, nil, false
	}
	h.src = uint16(p[0])<<8 | uint16(p[1])
	h.dst = uint16(p[2])<<8 | uint16(p[3])
	h.seq = uint32(p[4])<<24 | uint32(p[5])<<16 | uint32(p[6])<<8 | uint32(p[7])
	h.ack = uint32(p[8])<<24 | uint32(p[9])<<16 | uint32(p[10])<<8 | uint32(p[11])
	h.flags = p[12]
	h.win = uint16(p[14])<<8 | uint16(p[15])
	return h, p[HdrLen:], true
}

// recv demultiplexes an incoming segment.
func (p *Proto) recv(src, dst ip.Addr, payload []byte) {
	h, data, ok := unmarshal(payload)
	if !ok {
		return
	}
	p.SegsRcvd.Add(1)
	key := connKey{raddr: src, rport: h.src, lport: h.dst}
	p.mu.Lock()
	c := p.conns[key]
	if c == nil && h.flags&flagSYN != 0 && h.flags&flagACK == 0 {
		l := p.listeners[h.dst]
		if l == nil {
			l = p.listeners[0] // the announce-all listener (§5.2)
		}
		if l != nil {
			c = p.spawnLocked(l, src, h)
		}
	}
	p.mu.Unlock()
	if c == nil {
		if h.flags&flagRST == 0 {
			rst := marshalBlock(header{src: h.dst, dst: h.src, seq: h.ack,
				ack: h.seq + 1, flags: flagRST | flagACK}, nil)
			p.stack.SendBlock(ip.ProtoTCP, dst, src, rst)
		}
		return
	}
	c.segment(h, data)
}

func (p *Proto) spawnLocked(l *Conn, src ip.Addr, h header) *Conn {
	c := p.newConn()
	c.localPort = h.dst
	c.localAddr = l.localAddr
	c.remoteAddr = src
	c.remotePort = h.src
	c.listener = l
	c.state = SynRcvd
	c.iss = p.rng.Uint32() & 0xffffff
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.rcvNxt = h.seq + 1
	p.conns[connKey{raddr: src, rport: h.src, lport: h.dst}] = c
	p.ck.Go(c.timer)
	c.sendSegLocked(flagSYN|flagACK, c.iss, nil)
	return c
}

func (p *Proto) remove(c *Conn) {
	p.mu.Lock()
	key := connKey{raddr: c.remoteAddr, rport: c.remotePort, lport: c.localPort}
	if p.conns[key] == c {
		delete(p.conns, key)
	}
	if p.listeners[c.localPort] == c {
		delete(p.listeners, c.localPort)
	}
	p.mu.Unlock()
}

// Conn is a TCP conversation.
type Conn struct {
	proto   *Proto
	rstream *streams.Stream

	mu   sync.Mutex
	cond vclock.Cond

	state      int
	localAddr  ip.Addr
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16

	// Send side: sndBuf holds bytes [sndUna, sndUna+len).
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	sndBuf     []byte
	sndWnd     uint16 // peer's advertised window
	finSent    bool
	finPending bool // close requested, data still draining
	finSeq     uint32
	oldestTx   time.Time

	// Receive side.
	rcvNxt  uint32
	ooo     map[uint32][]byte
	finRcvd bool
	finAt   uint32

	// RTT estimation.
	srtt, mdev time.Duration
	timing     bool
	timedSeq   uint32
	timedAt    time.Time

	lastProgress time.Time

	listener *Conn
	accepted *vclock.Mailbox[*Conn]

	closed bool
	err    error

	// trace is the conversation's event ring, armed by writing
	// "trace on" to the ctl file.
	trace obs.Ring
}

var _ xport.Conn = (*Conn)(nil)
var _ obs.Tracer = (*Conn)(nil)

// Trace implements obs.Tracer; the netdev tree serves it as the
// conversation's trace file.
func (c *Conn) Trace() *obs.Ring { return &c.trace }

// Connect implements xport.Conn: the active open.
func (c *Conn) Connect(addr string) error {
	a, port, err := ip.ParseHostPort(addr)
	if err != nil || a.IsZero() || port == 0 {
		return xport.ErrBadAddress
	}
	local, err := c.proto.stack.LocalAddrFor(a)
	if err != nil {
		return err
	}
	p := c.proto
	p.mu.Lock()
	//netvet:ignore lock-across-send fixed hierarchy: protocol before conversation, never reversed
	c.mu.Lock()
	if c.state != Closed {
		c.mu.Unlock()
		p.mu.Unlock()
		return xport.ErrConnected
	}
	c.localAddr = local
	c.localPort = p.allocEphemeralLocked()
	c.remoteAddr, c.remotePort = a, port
	c.iss = p.rng.Uint32() & 0xffffff
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	c.state = SynSent
	c.lastProgress = p.ck.Now()
	p.conns[connKey{raddr: a, rport: port, lport: c.localPort}] = c
	c.sendSegLocked(flagSYN, c.iss, nil)
	c.mu.Unlock()
	p.mu.Unlock()

	p.ck.Go(c.timer)
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state == SynSent || c.state == SynRcvd {
		c.cond.Wait()
	}
	if c.state != Established {
		if c.err == nil {
			c.err = vfs.ErrConnRef
		}
		c.trace.Emit(obs.EvError, 0, 0)
		return c.err
	}
	c.trace.Emit(obs.EvConnect, 1, 0)
	return nil
}

// Announce implements xport.Conn. The address "*" announces all
// services not explicitly announced (§5.2): port 0 holds the
// catch-all listener.
func (c *Conn) Announce(addr string) error {
	var port uint16
	if addr != "*" && addr != "*!*" {
		var err error
		_, port, err = ip.ParseHostPort(addr)
		if err != nil {
			return xport.ErrBadAddress
		}
		if port == 0 {
			return xport.ErrBadAddress
		}
	}
	p := c.proto
	p.mu.Lock()
	defer p.mu.Unlock()
	//netvet:ignore lock-across-send fixed hierarchy: protocol before conversation, never reversed
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != Closed {
		return xport.ErrConnected
	}
	if _, taken := p.listeners[port]; taken {
		return xport.ErrInUse
	}
	c.localPort = port
	c.state = Listen
	p.listeners[port] = c
	c.trace.Emit(obs.EvAnnounce, int64(port), 0)
	return nil
}

// Listen implements xport.Conn.
func (c *Conn) Listen() (xport.Conn, error) {
	c.mu.Lock()
	if c.state != Listen {
		c.mu.Unlock()
		return nil, xport.ErrNotAnnounced
	}
	mb := c.accepted
	c.mu.Unlock()
	nc, ok := mb.Recv()
	if !ok {
		return nil, streams.ErrClosed
	}
	return nc, nil
}

// rcvWndLocked is the window we advertise.
func (c *Conn) rcvWndLocked() uint16 {
	q := c.rstream.QueuedBytes()
	if q >= BufSize {
		return 0
	}
	w := BufSize - q
	if w > 0xffff { // the 16-bit window field caps what we can say
		w = 0xffff
	}
	return uint16(w)
}

// sendSegLocked transmits one segment with the current ack state.
func (c *Conn) sendSegLocked(flags byte, seq uint32, data []byte) {
	h := header{src: c.localPort, dst: c.remotePort, seq: seq,
		ack: c.rcvNxt, flags: flags | flagACK, win: c.rcvWndLocked()}
	if c.state == SynSent {
		h.flags = flags // no ACK before we have rcvNxt
	}
	// The copy into the pooled block happens here, synchronously, so
	// data (which may alias sndBuf) is not touched by the goroutine.
	pkt := marshalBlock(h, data)
	src, dst := c.localAddr, c.remoteAddr
	c.proto.ck.Go(func() {
		c.proto.SegsSent.Add(1)
		c.proto.stack.SendBlock(ip.ProtoTCP, src, dst, pkt)
	})
}

// Write implements xport.Conn: bytes enter the send buffer and are
// pumped out as MTU-sized segments within the send window. The writer
// blocks while the buffer is full — the byte-stream backpressure TCP
// provides in place of delimiters.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		c.mu.Lock()
		for c.state == Established && len(c.sndBuf) >= BufSize {
			c.cond.Wait()
		}
		if c.state != Established && c.state != CloseWait {
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = streams.ErrHungup
			}
			return total, err
		}
		n := len(p) - total
		if room := BufSize - len(c.sndBuf); n > room {
			n = room
		}
		c.sndBuf = append(c.sndBuf, p[total:total+n]...)
		total += n
		c.pumpLocked()
		c.mu.Unlock()
	}
	return total, nil
}

// pumpLocked transmits as much buffered data as the window allows.
func (c *Conn) pumpLocked() {
	mss := c.proto.stack.MTUFor(c.remoteAddr) - HdrLen
	if mss <= 0 {
		mss = 512
	}
	wnd := uint32(c.sndWnd)
	if wnd > BufSize {
		wnd = BufSize
	}
	if wnd == 0 {
		wnd = 1 // window probe
	}
	for {
		inFlight := c.sndNxt - c.sndUna
		if c.finSent {
			inFlight-- // FIN occupies a unit but no buffer byte
		}
		avail := uint32(len(c.sndBuf)) - inFlight
		if avail == 0 || inFlight >= wnd {
			// A pending close sends its FIN once the buffer has
			// fully drained onto the wire.
			if avail == 0 && c.finPending && !c.finSent {
				c.finPending = false
				c.sendFinLocked()
			}
			return
		}
		n := avail
		if n > uint32(mss) {
			n = uint32(mss)
		}
		if inFlight+n > wnd {
			n = wnd - inFlight
		}
		start := inFlight
		data := c.sndBuf[start : start+n]
		seq := c.sndNxt
		if !c.timing {
			c.timing = true
			c.timedSeq = seq + n
			c.timedAt = c.proto.ck.Now()
		}
		if c.sndUna == c.sndNxt {
			c.oldestTx = c.proto.ck.Now()
		}
		c.sndNxt += n
		c.sendSegLocked(0, seq, append([]byte(nil), data...))
	}
}

// Read implements xport.Conn: a byte stream with no delimiters.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.rstream.Read(p)
	// Reading freed receive buffer: let the peer know if the window
	// had closed.
	return n, err
}

// segment processes one received segment.
func (c *Conn) segment(h header, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed && c.state == Closed {
		return
	}
	c.lastProgress = c.proto.ck.Now()
	if h.flags&flagRST != 0 {
		c.err = vfs.ErrConnRef
		c.dieLocked()
		return
	}
	switch c.state {
	case SynSent:
		if h.flags&flagSYN != 0 {
			c.rcvNxt = h.seq + 1
			if h.flags&flagACK != 0 && h.ack == c.iss+1 {
				c.sndUna = h.ack
				c.state = Established
				c.sndWnd = h.win
				c.cond.Broadcast()
				c.sendSegLocked(0, c.sndNxt, nil) // the final ack
			}
		}
		return
	case SynRcvd:
		if h.flags&flagACK != 0 && h.ack == c.iss+1 {
			c.sndUna = h.ack
			c.state = Established
			c.sndWnd = h.win
			c.cond.Broadcast()
			c.trace.Emit(obs.EvAccept, 0, 0)
			if l := c.listener; l != nil {
				c.listener = nil
				// TrySend refuses on a full backlog or a closed
				// listener, exactly the cases the RST below covers.
				ok := l.accepted.TrySend(c)
				if !ok {
					// Listener gone or backlog full: refuse.
					c.err = vfs.ErrConnRef
					c.sendSegLocked(flagRST, c.sndNxt, nil)
					c.dieLocked()
					return
				}
			}
		}
		// fall through to data processing below
	}
	// ACK processing.
	if h.flags&flagACK != 0 && h.ack > c.sndUna && h.ack <= c.sndNxt {
		acked := h.ack - c.sndUna
		if c.timing && h.ack >= c.timedSeq {
			rtt := c.proto.ck.Since(c.timedAt)
			c.proto.RTTHist.Observe(rtt)
			if c.srtt == 0 {
				c.srtt, c.mdev = rtt, rtt/2
			} else {
				diff := rtt - c.srtt
				c.srtt += diff / 8
				if diff < 0 {
					diff = -diff
				}
				c.mdev += (diff - c.mdev) / 4
			}
			c.timing = false
		}
		// FIN consumes a sequence unit but no buffer byte.
		bufAcked := acked
		if c.finSent && h.ack > c.finSeq {
			bufAcked--
		}
		if bufAcked > uint32(len(c.sndBuf)) {
			bufAcked = uint32(len(c.sndBuf))
		}
		c.sndBuf = c.sndBuf[bufAcked:]
		c.sndUna = h.ack
		c.oldestTx = c.proto.ck.Now()
		c.cond.Broadcast()
		// State transitions on FIN acknowledgement.
		if c.finSent && h.ack > c.finSeq {
			switch c.state {
			case FinWait1:
				c.state = FinWait2
			case Closing:
				c.enterTimeWaitLocked()
			case LastAck:
				c.dieLocked()
				return
			}
		}
	}
	if h.flags&flagACK != 0 {
		c.sndWnd = h.win
		c.pumpLocked()
	}
	// A retransmitted handshake segment (SYN set) this late means the
	// peer never saw our final ack of it: re-ack, so a passive end
	// stranded half-open by a lost third-handshake ack can complete
	// its accept instead of retrying SYN|ACK until its death timer.
	if h.flags&flagSYN != 0 {
		c.sendSegLocked(0, c.sndNxt, nil)
	}
	// Data processing.
	if len(data) > 0 {
		c.dataLocked(h.seq, data)
	}
	// FIN processing (sequenced like a byte).
	if h.flags&flagFIN != 0 {
		finSeq := h.seq + uint32(len(data))
		c.finRcvd = true
		c.finAt = finSeq
		c.maybeFinLocked()
	}
}

// dataLocked accepts in-order data, buffers out-of-order segments.
func (c *Conn) dataLocked(seq uint32, data []byte) {
	switch {
	case seq == c.rcvNxt:
		c.rcvNxt += uint32(len(data))
		b := streams.NewBlock(data)
		// TCP does not preserve delimiters: blocks are undelimited
		// so reads merge across segment boundaries.
		c.rstream.DeviceUp(b)
		for {
			d, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.rcvNxt += uint32(len(d))
			c.rstream.DeviceUp(streams.NewBlock(d))
		}
		c.sendSegLocked(0, c.sndNxt, nil) // immediate ack
		c.maybeFinLocked()
	case seq > c.rcvNxt && seq < c.rcvNxt+BufSize:
		if c.ooo == nil {
			c.ooo = make(map[uint32][]byte)
		}
		c.ooo[seq] = append([]byte(nil), data...)
		c.sendSegLocked(0, c.sndNxt, nil) // dup ack
	default:
		// Old or far-future data: re-ack.
		c.sendSegLocked(0, c.sndNxt, nil)
	}
}

// maybeFinLocked completes a received FIN once all data before it has
// been consumed.
func (c *Conn) maybeFinLocked() {
	if !c.finRcvd || c.rcvNxt != c.finAt {
		return
	}
	c.rcvNxt++ // the FIN itself
	c.sendSegLocked(0, c.sndNxt, nil)
	c.rstream.HangupUp()
	switch c.state {
	case Established:
		c.state = CloseWait
	case FinWait1:
		c.state = Closing
	case FinWait2:
		c.enterTimeWaitLocked()
	}
	c.cond.Broadcast()
}

func (c *Conn) enterTimeWaitLocked() {
	c.state = TimeWait
	c.cond.Broadcast()
	c.proto.ck.AfterFunc(timeWaitDur, func() {
		c.mu.Lock()
		c.dieLocked()
		c.mu.Unlock()
	})
}

// dieLocked finalizes the connection.
func (c *Conn) dieLocked() {
	if c.state == Closed && c.closed {
		return
	}
	c.state = Closed
	c.cond.Broadcast()
	c.trace.Emit(obs.EvHangup, 0, 0)
	c.rstream.HangupUp()
	c.proto.ck.Go(func() { c.proto.remove(c) })
}

func (c *Conn) rtoLocked() time.Duration {
	if c.srtt == 0 {
		return synRetry
	}
	rto := c.srtt + 4*c.mdev
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

// timer is the connection's helper process: SYN retries, go-back-N
// retransmission, FIN retries, death timer.
func (c *Conn) timer() {
	ck := c.proto.ck
	for {
		ck.Sleep(tickInterval)
		c.mu.Lock()
		if c.state == Closed {
			c.mu.Unlock()
			return
		}
		now := ck.Now()
		if now.Sub(c.lastProgress) > deathTime {
			c.err = vfs.ErrTimedOut
			c.dieLocked()
			c.mu.Unlock()
			return
		}
		switch c.state {
		case SynSent:
			c.sendSegLocked(flagSYN, c.iss, nil)
			c.mu.Unlock()
			ck.Sleep(synRetry)
			continue
		case SynRcvd:
			c.sendSegLocked(flagSYN|flagACK, c.iss, nil)
			c.mu.Unlock()
			ck.Sleep(synRetry)
			continue
		}
		// Retransmission: go-back-N from sndUna.
		if c.sndUna != c.sndNxt && now.Sub(c.oldestTx) > c.rtoLocked() {
			c.retransmitLocked()
			c.oldestTx = now
		}
		c.mu.Unlock()
	}
}

// retransmitLocked resends everything from sndUna (go-back-N).
func (c *Conn) retransmitLocked() {
	mss := c.proto.stack.MTUFor(c.remoteAddr) - HdrLen
	if mss <= 0 {
		mss = 512
	}
	c.timing = false
	seq := c.sndUna
	remaining := c.sndBuf
	inFlightData := c.sndNxt - c.sndUna
	if c.finSent {
		inFlightData--
	}
	if uint32(len(remaining)) > inFlightData {
		remaining = remaining[:inFlightData]
	}
	for len(remaining) > 0 {
		n := len(remaining)
		if n > mss {
			n = mss
		}
		c.proto.Retransmits.Add(1)
		c.trace.Emit(obs.EvRetransmit, int64(seq), int64(n))
		c.sendSegLocked(0, seq, append([]byte(nil), remaining[:n]...))
		seq += uint32(n)
		remaining = remaining[n:]
	}
	if c.finSent && c.sndUna <= c.finSeq {
		c.proto.Retransmits.Add(1)
		c.trace.Emit(obs.EvRetransmit, int64(c.finSeq), 0)
		c.sendSegLocked(flagFIN, c.finSeq, nil)
	}
}

// LocalAddr implements xport.Conn.
func (c *Conn) LocalAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.localAddr, c.localPort)
}

// RemoteAddr implements xport.Conn.
func (c *Conn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.remoteAddr, c.remotePort)
}

// Status implements xport.Conn, in the style of the paper's transcript:
// "tcp/2 1 Established connect".
func (c *Conn) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%s rtt %d ms srcv %d unacked %d",
		stateNames[c.state], c.srtt.Milliseconds(),
		c.rstream.QueuedBytes(), c.sndNxt-c.sndUna)
}

// State returns the symbolic state name (for tests).
func (c *Conn) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stateNames[c.state]
}

// Close implements xport.Conn: orderly release with FIN.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	switch c.state {
	case Established:
		c.state = FinWait1
		c.queueFinLocked()
	case CloseWait:
		c.state = LastAck
		c.queueFinLocked()
	case Listen:
		c.state = Closed
		c.accepted.Close()
		c.mu.Unlock()
		c.proto.remove(c)
		c.rstream.Close()
		return nil
	case SynSent, SynRcvd:
		c.sendSegLocked(flagRST, c.sndNxt, nil)
		c.dieLocked()
	default:
		c.dieLocked()
	}
	c.mu.Unlock()
	// Don't linger forever waiting for the FIN exchange.
	c.proto.ck.AfterFunc(2*time.Second, func() {
		c.mu.Lock()
		c.dieLocked()
		c.mu.Unlock()
		c.rstream.Close()
	})
	return nil
}

func (c *Conn) sendFinLocked() {
	c.finSent = true
	c.finSeq = c.sndNxt
	c.sndNxt++
	c.oldestTx = c.proto.ck.Now()
	c.sendSegLocked(flagFIN, c.finSeq, nil)
}

// queueFinLocked sends the FIN immediately when the send buffer has
// drained, or defers it to the pump otherwise.
func (c *Conn) queueFinLocked() {
	inFlight := c.sndNxt - c.sndUna
	if uint32(len(c.sndBuf)) == inFlight {
		c.sendFinLocked()
	} else {
		c.finPending = true
	}
}
