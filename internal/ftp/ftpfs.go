package ftp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/devtree"
	"repro/internal/dialer"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// FS is ftpfs: a file system backed by an FTP control connection,
// mountable at /n/ftp. Directories are cached from LIST and files
// from RETR, "to reduce traffic"; writes are buffered and STORed on
// close; the cache is updated whenever a file is created (§6.2).
type FS struct {
	mu   sync.Mutex
	nsp  *ns.Namespace
	ctl  *dialer.Conn
	r    *bufio.Reader
	root *fentry
}

// fentry is one cached remote file or directory.
type fentry struct {
	name     string
	dir      bool
	length   int64
	qid      vfs.Qid
	parent   *fentry
	children map[string]*fentry
	listed   bool   // directory contents cached
	data     []byte // file contents cache
	fetched  bool
}

// Dial connects ftpfs to an FTP service ("tcp!host!ftp"), logs in,
// and sets image mode, as the ftpfs command does.
func Dial(nsp *ns.Namespace, dest, user, pass string) (*FS, error) {
	conn, err := dialer.Dial(nsp, dest)
	if err != nil {
		return nil, err
	}
	fs := &FS{nsp: nsp, ctl: conn, r: bufio.NewReader(conn)}
	fs.root = &fentry{name: "/", dir: true, qid: vfs.Qid{Path: vfs.NewQidPath(), Type: vfs.QTDIR}}
	if code, _, err := fs.readReply(); err != nil || code != 220 {
		conn.Close()
		return nil, fmt.Errorf("ftpfs: bad greeting (%d, %v)", code, err)
	}
	if code, _, _ := fs.command("USER " + user); code != 331 && code != 230 {
		conn.Close()
		return nil, fmt.Errorf("ftpfs: USER refused")
	}
	if code, _, _ := fs.command("PASS " + pass); code != 230 {
		conn.Close()
		return nil, vfs.ErrPerm
	}
	if code, _, _ := fs.command("TYPE I"); code != 200 {
		conn.Close()
		return nil, fmt.Errorf("ftpfs: cannot set image mode")
	}
	return fs, nil
}

// Close logs out. The QUIT is a courtesy: the reply is not awaited,
// because at teardown the server may already be gone.
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fmt.Fprintf(fs.ctl, "QUIT\r\n")
	return fs.ctl.Close()
}

// command sends one control command and reads the reply. Callers hold
// fs.mu or are in Dial.
func (fs *FS) command(cmd string) (int, string, error) {
	if _, err := fmt.Fprintf(fs.ctl, "%s\r\n", cmd); err != nil {
		return 0, "", err
	}
	return fs.readReply()
}

func (fs *FS) readReply() (int, string, error) {
	line, err := fs.r.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if len(line) < 4 {
		return 0, "", fmt.Errorf("ftpfs: short reply %q", line)
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil {
		return 0, "", fmt.Errorf("ftpfs: bad reply %q", line)
	}
	return code, line[4:], nil
}

// transfer runs a PASV data transfer: cmd initiates it, f consumes or
// fills the data connection. Callers hold fs.mu.
func (fs *FS) transfer(cmd string, f func(io.ReadWriteCloser) error) error {
	code, msg, err := fs.command("PASV")
	if err != nil || code != 227 || !strings.HasPrefix(msg, "=") {
		return fmt.Errorf("ftpfs: PASV failed (%d %q, %v)", code, msg, err)
	}
	addr := msg[1:]
	code, _, err = fs.command(cmd)
	if err != nil || code != 150 {
		return fmt.Errorf("ftpfs: %s refused (%d, %v)", cmd, code, err)
	}
	dc, err := dialer.Dial(fs.nsp, "tcp!"+addr)
	if err != nil {
		return err
	}
	ferr := f(dc)
	dc.Close()
	code, _, err = fs.readReply()
	if err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}
	if code != 226 {
		return fmt.Errorf("ftpfs: transfer failed (%d)", code)
	}
	return nil
}

// remotePath returns the entry's path on the server.
func (e *fentry) remotePath() string {
	if e.parent == nil {
		return "/"
	}
	return ns.Clean(e.parent.remotePath() + "/" + e.name)
}

// list fills a directory's children from LIST. Callers hold fs.mu.
func (fs *FS) list(e *fentry) error {
	if e.listed {
		return nil
	}
	var out []byte
	err := fs.transfer("LIST "+e.remotePath(), func(dc io.ReadWriteCloser) error {
		b, err := io.ReadAll(dc)
		out = b
		if err == io.EOF {
			return nil
		}
		return err
	})
	if err != nil {
		return err
	}
	e.children = make(map[string]*fentry)
	for _, line := range strings.Split(string(out), "\r\n") {
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		size := int64(0)
		if len(f) >= 3 {
			size, _ = strconv.ParseInt(f[2], 10, 64)
		}
		child := &fentry{
			name:   f[1],
			dir:    f[0] == "d",
			length: size,
			parent: e,
			qid:    vfs.Qid{Path: vfs.NewQidPath()},
		}
		if child.dir {
			child.qid.Type = vfs.QTDIR
		}
		e.children[child.name] = child
	}
	e.listed = true
	return nil
}

// fetch fills a file's contents cache from RETR. Callers hold fs.mu.
func (fs *FS) fetch(e *fentry) error {
	if e.fetched {
		return nil
	}
	err := fs.transfer("RETR "+e.remotePath(), func(dc io.ReadWriteCloser) error {
		b, err := io.ReadAll(dc)
		e.data = b
		if err == io.EOF {
			return nil
		}
		return err
	})
	if err != nil {
		return err
	}
	e.fetched = true
	e.length = int64(len(e.data))
	return nil
}

// store uploads a file's buffered contents. Callers hold fs.mu.
func (fs *FS) store(e *fentry) error {
	return fs.transfer("STOR "+e.remotePath(), func(dc io.ReadWriteCloser) error {
		_, err := dc.Write(e.data)
		return err
	})
}

// Name implements vfs.Device.
func (fs *FS) Name() string { return "ftp" }

// Attach implements vfs.Device.
func (fs *FS) Attach(spec string) (vfs.Node, error) {
	if spec != "" {
		return nil, vfs.ErrBadSpec
	}
	return fnode{fs: fs, e: fs.root}, nil
}

// fnode is the vfs view of a cached entry.
type fnode struct {
	fs *FS
	e  *fentry
}

var (
	_ vfs.Node    = fnode{}
	_ vfs.Creator = fnode{}
	_ vfs.Remover = fnode{}
)

// Stat implements vfs.Node.
func (n fnode) Stat() (vfs.Dir, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	return n.statLocked(), nil
}

func (n fnode) statLocked() vfs.Dir {
	mode := uint32(0664)
	if n.e.dir {
		mode = vfs.DMDIR | 0775
	}
	return vfs.Dir{
		Name: n.e.name, Qid: n.e.qid, Mode: mode,
		Length: n.e.length, Uid: "ftp", Gid: "ftp", Muid: "ftp",
		Atime: devtree.Now(), Mtime: devtree.Now(),
	}
}

// Walk implements vfs.Node.
func (n fnode) Walk(name string) (vfs.Node, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if !n.e.dir {
		return nil, vfs.ErrNotDir
	}
	if name == ".." {
		if n.e.parent == nil {
			return n, nil
		}
		return fnode{fs: n.fs, e: n.e.parent}, nil
	}
	if err := n.fs.list(n.e); err != nil {
		return nil, err
	}
	child, ok := n.e.children[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return fnode{fs: n.fs, e: child}, nil
}

// Open implements vfs.Node.
func (n fnode) Open(mode int) (vfs.Handle, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if n.e.dir {
		if vfs.AccessMode(mode) != vfs.OREAD {
			return nil, vfs.ErrIsDir
		}
		if err := n.fs.list(n.e); err != nil {
			return nil, err
		}
		return &fdirHandle{n: n}, nil
	}
	if vfs.ModeReadable(mode) || mode&vfs.OTRUNC == 0 {
		if err := n.fs.fetch(n.e); err != nil && vfs.ModeReadable(mode) {
			return nil, err
		}
	}
	if mode&vfs.OTRUNC != 0 {
		n.e.data = nil
		n.e.fetched = true
		n.e.length = 0
	}
	return &ffileHandle{n: n, mode: mode}, nil
}

// Create implements vfs.Creator: new files appear in the cache at once
// ("the cache is updated whenever a file is created") and reach the
// server on close (files) or immediately (directories, via MKD).
func (n fnode) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	if !n.e.dir {
		return nil, nil, vfs.ErrNotDir
	}
	if err := n.fs.list(n.e); err != nil {
		return nil, nil, err
	}
	if _, dup := n.e.children[name]; dup {
		return nil, nil, vfs.ErrExists
	}
	child := &fentry{
		name:   name,
		dir:    perm&vfs.DMDIR != 0,
		parent: n.e,
		qid:    vfs.Qid{Path: vfs.NewQidPath()},
	}
	if child.dir {
		child.qid.Type = vfs.QTDIR
		if code, _, err := n.fs.command("MKD " + child.remotePath()); err != nil || code != 257 {
			return nil, nil, vfs.ErrPerm
		}
		child.listed = true
		child.children = map[string]*fentry{}
	} else {
		child.fetched = true // empty, nothing to RETR
	}
	n.e.children[name] = child
	cn := fnode{fs: n.fs, e: child}
	if child.dir {
		return cn, &fdirHandle{n: cn}, nil
	}
	return cn, &ffileHandle{n: cn, mode: mode, dirty: true}, nil
}

// Remove implements vfs.Remover.
func (n fnode) Remove() error {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	code, _, err := n.fs.command("DELE " + n.e.remotePath())
	if err != nil || code != 250 {
		return vfs.ErrPerm
	}
	if p := n.e.parent; p != nil && p.children != nil {
		delete(p.children, n.e.name)
	}
	return nil
}

// fdirHandle lists a cached directory.
type fdirHandle struct{ n fnode }

var (
	_ vfs.Handle    = (*fdirHandle)(nil)
	_ vfs.DirReader = (*fdirHandle)(nil)
)

// ReadDir implements vfs.DirReader.
func (h *fdirHandle) ReadDir() ([]vfs.Dir, error) {
	h.n.fs.mu.Lock()
	defer h.n.fs.mu.Unlock()
	var ents []vfs.Dir
	for _, c := range h.n.e.children {
		ents = append(ents, fnode{fs: h.n.fs, e: c}.statLocked())
	}
	return ents, nil
}

// Read implements vfs.Handle.
func (h *fdirHandle) Read(p []byte, off int64) (int, error) {
	ents, err := h.ReadDir()
	if err != nil {
		return 0, err
	}
	return vfs.ReadDirAt(ents, p, off)
}

// Write implements vfs.Handle.
func (h *fdirHandle) Write(p []byte, off int64) (int, error) { return 0, vfs.ErrIsDir }

// Close implements vfs.Handle.
func (h *fdirHandle) Close() error { return nil }

// ffileHandle reads the cache and buffers writes until close.
type ffileHandle struct {
	n     fnode
	mode  int
	dirty bool
}

var _ vfs.Handle = (*ffileHandle)(nil)

// Read implements vfs.Handle.
func (h *ffileHandle) Read(p []byte, off int64) (int, error) {
	if !vfs.ModeReadable(h.mode) {
		return 0, vfs.ErrBadUseFd
	}
	h.n.fs.mu.Lock()
	defer h.n.fs.mu.Unlock()
	data := h.n.e.data
	if off >= int64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

// Write implements vfs.Handle: buffered until close, then STORed.
func (h *ffileHandle) Write(p []byte, off int64) (int, error) {
	if !vfs.ModeWritable(h.mode) {
		return 0, vfs.ErrBadUseFd
	}
	h.n.fs.mu.Lock()
	defer h.n.fs.mu.Unlock()
	e := h.n.e
	if need := off + int64(len(p)); need > int64(len(e.data)) {
		grown := make([]byte, need)
		copy(grown, e.data)
		e.data = grown
	}
	copy(e.data[off:], p)
	e.length = int64(len(e.data))
	h.dirty = true
	return len(p), nil
}

// Close implements vfs.Handle, flushing dirty contents with STOR.
func (h *ffileHandle) Close() error {
	if !h.dirty {
		return nil
	}
	h.n.fs.mu.Lock()
	defer h.n.fs.mu.Unlock()
	return h.n.fs.store(h.n.e)
}
