package ftp_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ftp"
	"repro/internal/vfs"
)

// world boots the paper world with an FTP service on bootes and
// returns (bootes, musca).
func world(t *testing.T) (*core.Machine, *core.Machine) {
	t.Helper()
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	bootes := w.Machine("bootes")
	musca := w.Machine("musca")
	bootes.Root.WriteFile("pub/README", []byte("welcome to bootes ftp\n"), 0664)
	bootes.Root.WriteFile("pub/src/main.c", []byte("main(){}\n"), 0664)
	if _, err := bootes.ServeFTP("tcp!*!ftp", "/", ftp.ServerConfig{User: "glenda", Pass: "rabbit"}); err != nil {
		t.Fatal(err)
	}
	return bootes, musca
}

func mount(t *testing.T, musca *core.Machine) *ftp.FS {
	t.Helper()
	fs, err := musca.MountFTP("tcp!bootes!ftp", "glenda", "rabbit", "/n/ftp")
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestLoginAndReadThroughMount(t *testing.T) {
	_, musca := world(t)
	mount(t, musca)
	b, err := musca.NS.ReadFile("/n/ftp/pub/README")
	if err != nil || string(b) != "welcome to bootes ftp\n" {
		t.Fatalf("read over ftpfs: %q, %v", b, err)
	}
	// Nested directories walk and read.
	b, err = musca.NS.ReadFile("/n/ftp/pub/src/main.c")
	if err != nil || string(b) != "main(){}\n" {
		t.Fatalf("nested read: %q, %v", b, err)
	}
}

func TestBadPasswordRefused(t *testing.T) {
	_, musca := world(t)
	_, err := musca.MountFTP("tcp!bootes!ftp", "glenda", "wrong", "/n/ftp")
	if !vfs.SameError(err, vfs.ErrPerm) {
		t.Errorf("bad password error = %v", err)
	}
}

func TestDirectoryListing(t *testing.T) {
	_, musca := world(t)
	mount(t, musca)
	ents, err := musca.NS.ReadDir("/n/ftp/pub")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = e.IsDir()
	}
	if isDir, ok := names["README"]; !ok || isDir {
		t.Errorf("README entry wrong: %v", names)
	}
	if isDir, ok := names["src"]; !ok || !isDir {
		t.Errorf("src entry wrong: %v", names)
	}
}

func TestCachingReducesTraffic(t *testing.T) {
	// "Files and directories are cached to reduce traffic": a repeat
	// read must not touch the server. Detection: remove the file on
	// the server behind ftpfs's back; the cached copy still reads.
	bootes, musca := world(t)
	mount(t, musca)
	if _, err := musca.NS.ReadFile("/n/ftp/pub/README"); err != nil {
		t.Fatal(err)
	}
	n, _ := bootes.Root.Root().Walk("pub")
	f, _ := n.Walk("README")
	if err := f.(vfs.Remover).Remove(); err != nil {
		t.Fatal(err)
	}
	b, err := musca.NS.ReadFile("/n/ftp/pub/README")
	if err != nil || string(b) != "welcome to bootes ftp\n" {
		t.Errorf("cached read after server-side remove: %q, %v", b, err)
	}
}

func TestCreateAndStore(t *testing.T) {
	bootes, musca := world(t)
	mount(t, musca)
	// Touch the directory cache first, then create.
	musca.NS.ReadDir("/n/ftp/pub")
	if err := musca.NS.WriteFile("/n/ftp/pub/new.txt", []byte("stored via ftp"), 0664); err != nil {
		t.Fatal(err)
	}
	b, err := bootes.Root.ReadFile("pub/new.txt")
	if err != nil || string(b) != "stored via ftp" {
		t.Fatalf("server side after STOR: %q, %v", b, err)
	}
	// The cache shows the new file immediately.
	ents, _ := musca.NS.ReadDir("/n/ftp/pub")
	found := false
	for _, e := range ents {
		if e.Name == "new.txt" {
			found = true
		}
	}
	if !found {
		t.Error("created file not visible in cached directory")
	}
}

func TestMkdirAndRemove(t *testing.T) {
	bootes, musca := world(t)
	mount(t, musca)
	fd, err := musca.NS.Create("/n/ftp/pub/newdir", vfs.DMDIR|0775, vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	fd.Close()
	if _, err := bootes.Root.ReadFile("pub/newdir"); !vfs.SameError(err, vfs.ErrIsDir) {
		t.Errorf("server-side mkdir missing: %v", err)
	}
	// Remove a file through ftpfs.
	if err := musca.NS.Remove("/n/ftp/pub/README"); err != nil {
		t.Fatal(err)
	}
	if _, err := bootes.Root.ReadFile("pub/README"); err == nil {
		t.Error("DELE did not remove the server file")
	}
}

func TestWalkMissing(t *testing.T) {
	_, musca := world(t)
	mount(t, musca)
	if _, err := musca.NS.Open("/n/ftp/pub/nothing", vfs.OREAD); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestAnonymousWhenNoCredentials(t *testing.T) {
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	helix := w.Machine("helix")
	musca := w.Machine("musca")
	helix.Root.WriteFile("pub/x", []byte("anon"), 0664)
	if _, err := helix.ServeFTP("tcp!*!ftp", "/pub", ftp.ServerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := musca.MountFTP("tcp!helix!ftp", "anonymous", "x@y", "/n/ftp"); err != nil {
		t.Fatal(err)
	}
	b, err := musca.NS.ReadFile("/n/ftp/x")
	if err != nil || string(b) != "anon" {
		t.Errorf("anonymous read: %q, %v", b, err)
	}
}

func TestStringsInFetchedTree(t *testing.T) {
	// A tree walk through several directories (cache warm-up path).
	bootes, musca := world(t)
	bootes.Root.WriteFile("pub/deep/a/b/c.txt", []byte("deep file"), 0664)
	mount(t, musca)
	b, err := musca.NS.ReadFile("/n/ftp/pub/deep/a/b/c.txt")
	if err != nil || !strings.Contains(string(b), "deep") {
		t.Errorf("deep read: %q, %v", b, err)
	}
}
