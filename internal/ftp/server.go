// Package ftp implements §6.2: "We decided to make our interface to
// FTP a file system rather than the traditional command. Our command,
// ftpfs, dials the FTP port of a remote system, prompts for login and
// password, sets image mode, and mounts the remote file system onto
// /n/ftp. Files and directories are cached to reduce traffic."
//
// The package contains both sides: a small FTP server (the "remote
// system" — the simulated stand-in for the TOPS-20/VMS/Unix hosts the
// paper mentions) speaking a classic subset of the protocol over the
// simulated TCP, and FS, the ftpfs client file system with its cache.
//
// Subset: USER, PASS, TYPE, CWD, PASV, LIST, RETR, STOR, DELE, MKD,
// QUIT. PASV replies carry a dial string in Plan 9 form
// ("227 =host!port"); LIST output is one entry per line,
// "d name 0" or "- name size". Both simplifications are documented in
// DESIGN.md and only affect wire cosmetics.
package ftp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dialer"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// ServerConfig configures the FTP server.
type ServerConfig struct {
	// User/Pass are the single accepted credentials; empty accepts
	// anything.
	User, Pass string
	// Root is the served subtree of the namespace.
	Root string
}

// session is one control connection.
type session struct {
	cfg  ServerConfig
	nsp  *ns.Namespace
	conn *dialer.Conn
	r    *bufio.Reader
	m    dialAnnouncer

	user   string
	authed bool
	cwd    string
	data   *dialer.Listener // PASV listener awaiting a data connection
}

// dialAnnouncer abstracts the machine's announce capability (the
// core.Machine, in practice) so the server can open data ports.
type dialAnnouncer interface {
	AnnounceData() (*dialer.Listener, string, error)
}

// MachineAnnouncer adapts a namespace + host address to dialAnnouncer,
// announcing ephemeral TCP data ports.
type MachineAnnouncer struct {
	NS *ns.Namespace
	// HostAddr is this machine's IP address in dial-string form.
	HostAddr string
}

// AnnounceData opens an ephemeral TCP listener and returns its dial
// string.
func (m MachineAnnouncer) AnnounceData() (*dialer.Listener, string, error) {
	// Pick an ephemeral port by announcing port 0 is not supported
	// by the paper-style service tables, so scan a range.
	for port := 40000; port < 40100; port++ {
		l, err := dialer.Announce(m.NS, fmt.Sprintf("tcp!*!%d", port))
		if err == nil {
			return l, m.HostAddr + "!" + strconv.Itoa(port), nil
		}
	}
	return nil, "", vfs.ErrInUse
}

// ServeSession runs one FTP control session; the caller supplies the
// serving namespace and a way to announce data ports.
func ServeSession(nsp *ns.Namespace, conn *dialer.Conn, ann dialAnnouncer, cfg ServerConfig) {
	if cfg.Root == "" {
		cfg.Root = "/"
	}
	s := &session{cfg: cfg, nsp: nsp, conn: conn, r: bufio.NewReader(conn), m: ann, cwd: "/"}
	s.reply(220, "repro FTP service ready")
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return
		}
		verb, arg, _ := strings.Cut(strings.TrimRight(line, "\r\n"), " ")
		if !s.command(strings.ToUpper(verb), arg) {
			return
		}
	}
}

func (s *session) reply(code int, msg string) {
	fmt.Fprintf(s.conn, "%d %s\r\n", code, msg)
}

// path resolves an argument against the cwd and the served root.
func (s *session) path(arg string) string {
	p := arg
	if !strings.HasPrefix(p, "/") {
		p = s.cwd + "/" + p
	}
	return ns.Clean(s.cfg.Root + "/" + ns.Clean(p))
}

func (s *session) command(verb, arg string) bool {
	switch verb {
	case "USER":
		s.user = arg
		if s.cfg.User == "" || arg == "anonymous" && s.cfg.User == "anonymous" {
			s.authed = s.cfg.User == ""
		}
		s.reply(331, "password required")
	case "PASS":
		if s.cfg.User == "" || (s.user == s.cfg.User && arg == s.cfg.Pass) {
			s.authed = true
			s.reply(230, "logged in")
		} else {
			s.reply(530, "login incorrect")
		}
	case "TYPE":
		s.reply(200, "type set to "+arg)
	case "QUIT":
		s.reply(221, "goodbye")
		return false
	case "CWD":
		if !s.authed {
			s.reply(530, "not logged in")
			break
		}
		p := s.path(arg)
		d, err := s.nsp.Stat(p)
		if err != nil || !d.IsDir() {
			s.reply(550, "no such directory")
			break
		}
		s.cwd = strings.TrimPrefix(p, ns.Clean(s.cfg.Root))
		if s.cwd == "" {
			s.cwd = "/"
		}
		s.reply(250, "directory changed")
	case "PASV":
		if !s.authed {
			s.reply(530, "not logged in")
			break
		}
		if s.data != nil {
			s.data.Close()
		}
		l, addr, err := s.m.AnnounceData()
		if err != nil {
			s.reply(425, "cannot open data port")
			break
		}
		s.data = l
		s.reply(227, "="+addr)
	case "LIST":
		s.withData(func(dc io.Writer) int {
			p := s.cwd
			if arg != "" {
				p = arg
			}
			ents, err := s.nsp.ReadDir(s.path(p))
			if err != nil {
				return 550
			}
			for _, e := range ents {
				t := "-"
				if e.IsDir() {
					t = "d"
				}
				fmt.Fprintf(dc, "%s %s %d\r\n", t, e.Name, e.Length)
			}
			return 226
		})
	case "RETR":
		s.withData(func(dc io.Writer) int {
			fd, err := s.nsp.Open(s.path(arg), vfs.OREAD)
			if err != nil {
				return 550
			}
			defer fd.Close()
			io.Copy(dc, fd)
			return 226
		})
	case "STOR":
		s.withData(func(dc io.Writer) int {
			fd, err := s.nsp.Create(s.path(arg), 0664, vfs.OWRITE)
			if err != nil {
				fd, err = s.nsp.Open(s.path(arg), vfs.OWRITE|vfs.OTRUNC)
				if err != nil {
					return 550
				}
			}
			defer fd.Close()
			rc, ok := dc.(io.Reader)
			if !ok {
				return 550
			}
			io.Copy(fd, rc)
			return 226
		})
	case "DELE":
		if !s.authed {
			s.reply(530, "not logged in")
			break
		}
		if err := s.nsp.Remove(s.path(arg)); err != nil {
			s.reply(550, "cannot delete")
		} else {
			s.reply(250, "deleted")
		}
	case "MKD":
		if !s.authed {
			s.reply(530, "not logged in")
			break
		}
		fd, err := s.nsp.Create(s.path(arg), vfs.DMDIR|0775, vfs.OREAD)
		if err != nil {
			s.reply(550, "cannot create")
		} else {
			fd.Close()
			s.reply(257, "created")
		}
	default:
		s.reply(502, "command not implemented")
	}
	return true
}

// withData runs a transfer over the PASV data connection.
func (s *session) withData(f func(io.Writer) int) {
	if !s.authed {
		s.reply(530, "not logged in")
		return
	}
	l := s.data
	s.data = nil
	if l == nil {
		s.reply(425, "use PASV first")
		return
	}
	defer l.Close()
	s.reply(150, "opening data connection")
	call, err := l.Listen()
	if err != nil {
		s.reply(425, "data connection failed")
		return
	}
	dc, err := call.Accept()
	if err != nil {
		s.reply(425, "data connection failed")
		return
	}
	code := f(dc)
	dc.Close()
	switch code {
	case 226:
		s.reply(226, "transfer complete")
	default:
		s.reply(code, "transfer failed")
	}
}
