// Package cyclone simulates the Cyclone fiber links of §7: "a link
// consists of two VME cards connected by a pair of optical fibers ...
// to drive the lines at 125 Mbit/sec. Software in the VME card reduces
// latency by copying messages from system memory to fiber without
// intermediate buffering."
//
// The hardware provides reliable, delimited message delivery, so the
// device is simply a very fast point-to-point framed link: no protocol
// engine at all, which is why Cyclone is the fastest network row of
// Table 1. It still presents the uniform conversation interface so it
// mounts under /net like every other protocol device; the single
// point-to-point link carries one conversation.
package cyclone

import (
	"sync"

	"repro/internal/block"
	"repro/internal/medium"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/xport"
)

// MaxMsg is the largest message the boards frame.
const MaxMsg = 64 * 1024

// Link is one fiber pair between two machines.
type Link struct {
	a, b *End
}

// NewLink creates a link with the given per-direction profile and
// returns it; Ends attach machines.
func NewLink(name string, p medium.Profile) *Link {
	if p.MTU == 0 {
		p.MTU = MaxMsg
	}
	da, db := medium.NewDuplex(p)
	l := &Link{}
	l.a = &End{link: l, name: name, wire: da}
	l.b = &End{link: l, name: name, wire: db}
	return l
}

// Ends returns the two ends of the link.
func (l *Link) Ends() (*End, *End) { return l.a, l.b }

// Close tears the link down.
func (l *Link) Close() {
	l.a.wire.Close()
	l.b.wire.Close()
}

// End is one machine's VME card.
type End struct {
	link *Link
	name string
	wire *medium.Duplex

	mu       sync.Mutex
	cond     vclock.Cond
	condOnce sync.Once
	conn     *Conn // conversation currently owning the wire
}

func (e *End) init() {
	e.condOnce.Do(func() { e.cond.Init(e.wire.Clock(), &e.mu) })
}

var _ xport.Proto = (*End)(nil)

// Name implements xport.Proto: the device appears as "cyc" under /net.
func (e *End) Name() string { return "cyc" }

// NewConn implements xport.Proto. The link is point-to-point: one
// conversation at a time.
func (e *End) NewConn() (xport.Conn, error) {
	return &Conn{end: e}, nil
}

// Conn is the (single) conversation on a link end.
type Conn struct {
	end *End

	mu        sync.Mutex
	attached  bool
	announced bool
	closed    bool
}

var _ xport.Conn = (*Conn)(nil)

// attach claims the link for this conversation. Lock order on a link
// is e.mu before c.mu (Listen polls isClosed while holding e.mu), so
// the wire is claimed first and the conversation marked after, never
// nesting the two the other way around.
func (c *Conn) attach() error {
	e := c.end
	e.mu.Lock()
	e.init()
	if e.conn != nil && e.conn != c {
		e.mu.Unlock()
		return xport.ErrInUse
	}
	e.conn = c
	e.mu.Unlock()
	c.mu.Lock()
	if c.closed {
		// Lost a race with Close: give the wire back.
		c.mu.Unlock()
		e.mu.Lock()
		if e.conn == c {
			e.conn = nil
		}
		e.cond.Broadcast()
		e.mu.Unlock()
		return vfs.ErrHungup
	}
	c.attached = true
	c.mu.Unlock()
	return nil
}

// Connect implements xport.Conn; the address is ignored (there is only
// the other end of the fiber).
func (c *Conn) Connect(addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return vfs.ErrHungup
	}
	c.mu.Unlock()
	return c.attach()
}

// Announce implements xport.Conn. Announcing does not claim the wire;
// accepted conversations do.
func (c *Conn) Announce(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return vfs.ErrHungup
	}
	c.announced = true
	return nil
}

// Listen implements xport.Conn. A fiber has no call setup: the link
// carries exactly one conversation at a time, so listen blocks while
// the wire is held and yields a fresh conversation as soon as it is
// free — the next client "call" is simply its first message.
func (c *Conn) Listen() (xport.Conn, error) {
	c.mu.Lock()
	if !c.announced {
		c.mu.Unlock()
		return nil, xport.ErrNotAnnounced
	}
	c.mu.Unlock()
	e := c.end
	e.mu.Lock()
	defer e.mu.Unlock()
	e.init()
	for e.conn != nil {
		if c.isClosed() {
			return nil, vfs.ErrHungup
		}
		e.cond.Wait()
	}
	nc := &Conn{end: e, attached: true}
	e.conn = nc
	return nc, nil
}

func (c *Conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Read implements xport.Conn: one framed message per read.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	ok := c.attached && !c.closed
	c.mu.Unlock()
	if !ok {
		return 0, xport.ErrNotConnected
	}
	msg, err := c.end.wire.Recv()
	if err != nil {
		return 0, vfs.ErrHungup
	}
	// The wire hands over the buffer (the impairer copies per
	// delivery), so after the copy out it goes back to the pool.
	n := copy(p, msg)
	block.PutBytes(msg)
	return n, nil
}

// Write implements xport.Conn: the boards copy straight to the fiber.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	ok := c.attached && !c.closed
	c.mu.Unlock()
	if !ok {
		return 0, xport.ErrNotConnected
	}
	// One copy — system memory to fiber, as the VME boards do — into a
	// pool-backed buffer the medium takes ownership of.
	msg := block.GetBytes(len(p))
	copy(msg, p)
	if err := c.end.wire.SendOwned(msg); err != nil {
		return 0, vfs.ErrHungup
	}
	return len(p), nil
}

// LocalAddr implements xport.Conn.
func (c *Conn) LocalAddr() string { return c.end.name + "/0" }

// RemoteAddr implements xport.Conn.
func (c *Conn) RemoteAddr() string { return c.end.name + "/1" }

// Status implements xport.Conn.
func (c *Conn) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return "Closed"
	case c.attached:
		return "Established"
	}
	return "Closed"
}

// Close implements xport.Conn. c.mu is released before e.mu is taken:
// Listen holds e.mu while polling isClosed (which needs c.mu), so
// nesting them here deadlocks a concurrent Listen+Close.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	e := c.end
	e.mu.Lock()
	e.init()
	if e.conn == c {
		e.conn = nil
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	return nil
}
