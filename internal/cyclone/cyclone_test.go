package cyclone

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/xport"
)

func TestFramedMessagesAcrossLink(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, eb := l.Ends()
	ca, _ := ea.NewConn()
	cb, _ := eb.NewConn()
	if err := ca.Connect(""); err != nil {
		t.Fatal(err)
	}
	if err := cb.Connect(""); err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	defer cb.Close()
	ca.Write([]byte("across the fiber"))
	ca.Write([]byte("second frame"))
	buf := make([]byte, 256)
	n, err := cb.Read(buf)
	if err != nil || string(buf[:n]) != "across the fiber" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	n, _ = cb.Read(buf)
	if string(buf[:n]) != "second frame" {
		t.Errorf("delimiters lost: %q", buf[:n])
	}
	// And the reverse direction.
	cb.Write([]byte("return"))
	n, _ = ca.Read(buf)
	if string(buf[:n]) != "return" {
		t.Errorf("reverse read %q", buf[:n])
	}
}

func TestLargeMessage(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, eb := l.Ends()
	ca, _ := ea.NewConn()
	cb, _ := eb.NewConn()
	ca.Connect("")
	cb.Connect("")
	msg := bytes.Repeat([]byte("c"), 48*1024)
	ca.Write(msg)
	got := make([]byte, 64*1024)
	n, err := cb.Read(got)
	if err != nil || n != len(msg) {
		t.Fatalf("large frame: %d bytes, %v", n, err)
	}
}

func TestSingleConversation(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, _ := l.Ends()
	c1, _ := ea.NewConn()
	if err := c1.Connect(""); err != nil {
		t.Fatal(err)
	}
	c2, _ := ea.NewConn()
	if err := c2.Connect(""); err != xport.ErrInUse {
		t.Errorf("second conversation on a point-to-point link = %v", err)
	}
	c1.Close()
	if err := c2.Connect(""); err != nil {
		t.Errorf("after release: %v", err)
	}
	c2.Close()
}

func TestReadAfterCloseFails(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, _ := l.Ends()
	c, _ := ea.NewConn()
	c.Connect("")
	c.Close()
	if _, err := c.Read(make([]byte, 8)); err == nil {
		t.Error("read on closed conversation succeeded")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write on closed conversation succeeded")
	}
}

func TestProfilePacing(t *testing.T) {
	// 1 MB/s bandwidth: a 100 KB frame takes ~100ms to serialize.
	l := NewLink("cyc0", medium.Profile{Bandwidth: 1 << 20, MTU: 1 << 20})
	defer l.Close()
	ea, eb := l.Ends()
	ca, _ := ea.NewConn()
	cb, _ := eb.NewConn()
	ca.Connect("")
	cb.Connect("")
	start := time.Now()
	go ca.Write(make([]byte, 100*1024))
	buf := make([]byte, 200*1024)
	cb.Read(buf)
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("100KB at 1MB/s took only %v", el)
	}
}

func TestListenSerializesConversations(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, eb := l.Ends()
	lc, _ := ea.NewConn()
	if _, err := lc.Listen(); err != xport.ErrNotAnnounced {
		t.Fatalf("listen before announce = %v", err)
	}
	if err := lc.Announce(""); err != nil {
		t.Fatal(err)
	}
	first, err := lc.Listen()
	if err != nil {
		t.Fatal(err)
	}
	// A second Listen blocks while the first conversation holds the
	// wire, and returns once it closes.
	got := make(chan xport.Conn, 1)
	go func() {
		nc, err := lc.Listen()
		if err == nil {
			got <- nc
		}
	}()
	select {
	case <-got:
		t.Fatal("second listen returned while wire held")
	case <-time.After(50 * time.Millisecond):
	}
	first.Close()
	select {
	case nc := <-got:
		nc.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("second listen never returned after release")
	}
	_ = eb
}

func TestStatusAndAddrs(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, _ := l.Ends()
	c, _ := ea.NewConn()
	if c.Status() != "Closed" {
		t.Errorf("fresh status %q", c.Status())
	}
	c.Connect("")
	if c.Status() != "Established" {
		t.Errorf("connected status %q", c.Status())
	}
	if c.LocalAddr() == "" || c.RemoteAddr() == "" {
		t.Error("empty addresses")
	}
	c.Close()
	if c.Status() != "Closed" {
		t.Errorf("closed status %q", c.Status())
	}
	if err := c.Connect(""); err == nil {
		t.Error("connect on closed conversation succeeded")
	}
	if err := c.Announce(""); err == nil {
		t.Error("announce on closed conversation succeeded")
	}
}

func TestEndName(t *testing.T) {
	l := NewLink("cyc0", medium.Profile{})
	defer l.Close()
	ea, _ := l.Ends()
	if ea.Name() != "cyc" {
		t.Errorf("device name %q", ea.Name())
	}
}

// TestConcurrentListenClose is the regression test for the lock-order
// inversion netvet caught: Close used to take e.mu while holding c.mu,
// while Listen holds e.mu and polls isClosed (c.mu) — a deadlock when
// a blocked listener and a closing conversation race. Hammer the pair
// under a watchdog.
func TestConcurrentListenClose(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			l := NewLink("cyc0", medium.Profile{})
			ea, _ := l.Ends()
			holder, _ := ea.NewConn()
			holder.Connect("") // wire busy: Listen will park on the cond
			lc, _ := ea.NewConn()
			lc.Announce("")
			listened := make(chan struct{})
			go func() {
				if nc, err := lc.Listen(); err == nil {
					nc.Close()
				}
				close(listened)
			}()
			closed := make(chan struct{})
			go func() {
				lc.Close() // old code: e.mu under c.mu — deadlock window
				close(closed)
			}()
			holder.Close() // frees the wire, broadcasts the cond
			<-listened
			<-closed
			l.Close()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: concurrent Listen+Close never finished")
	}
}
