package mnt

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/ninep"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// mountedConfig is mounted with an explicit pipelining configuration.
func mountedConfig(t *testing.T, cfg Config) (vfs.Node, *ramfs.FS, *ninep.Client) {
	t.Helper()
	fs := ramfs.New("srv")
	a, b := ninep.NewPipe()
	go ninep.Serve(b, func(uname, aname string) (vfs.Node, error) {
		return fs.Root(), nil
	})
	root, cl, err := MountConfig(a, "glenda", "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return root, fs, cl
}

func testPattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*13 + i>>8)
	}
	return p
}

func openPath(t *testing.T, root vfs.Node, path string, mode int) vfs.Handle {
	t.Helper()
	n, err := root.Walk(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := n.Open(mode)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestReadaheadSequential: a sequential chunk-by-chunk scan through
// the readahead path returns exactly the file, including the short
// tail chunk.
func TestReadaheadSequential(t *testing.T) {
	root, fs, _ := mountedConfig(t, FileConfig())
	size := 10*ninep.MaxFData + 1234
	want := testPattern(size)
	fs.WriteFile("big", want, 0664)
	h := openPath(t, root, "big", vfs.OREAD)
	defer h.Close()
	var got []byte
	buf := make([]byte, ninep.MaxFData)
	off := int64(0)
	for {
		n, err := h.Read(buf, off)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
		off += int64(n)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sequential scan read %d bytes, want %d", len(got), len(want))
	}
}

// TestReadaheadRandomJump: readahead must not bleed speculative bytes
// into a read at an unrelated offset.
func TestReadaheadRandomJump(t *testing.T) {
	root, fs, _ := mountedConfig(t, FileConfig())
	size := 8 * ninep.MaxFData
	want := testPattern(size)
	fs.WriteFile("big", want, 0664)
	h := openPath(t, root, "big", vfs.OREAD)
	defer h.Close()
	buf := make([]byte, ninep.MaxFData)
	// Two sequential reads arm the readahead...
	h.Read(buf, 0)
	h.Read(buf, int64(ninep.MaxFData))
	// ...then jump far away while speculative Treads are in flight.
	jump := int64(6 * ninep.MaxFData)
	n, err := h.Read(buf, jump)
	if err != nil {
		t.Fatalf("jump read: %v", err)
	}
	if !bytes.Equal(buf[:n], want[jump:jump+int64(n)]) {
		t.Fatal("jump read returned readahead bytes from the wrong offset")
	}
	// And writing through the same server file sees no stale cache:
	// a fresh sequential scan picks up the jump's fragment correctly.
	n, err = h.Read(buf, jump+int64(n))
	if err != nil {
		t.Fatalf("follow-up read: %v", err)
	}
	if !bytes.Equal(buf[:n], want[jump+int64(ninep.MaxFData):jump+2*int64(ninep.MaxFData)]) {
		t.Fatal("follow-up read mismatch")
	}
}

// TestWriteBehindCoalesces: small sequential writes through the
// write-behind buffer land intact, in order, after Close.
func TestWriteBehindCoalesces(t *testing.T) {
	root, fs, _ := mountedConfig(t, FileConfig())
	fs.WriteFile("out", nil, 0664)
	h := openPath(t, root, "out", vfs.OWRITE)
	want := testPattern(3*ninep.MaxFData + 517)
	off := int64(0)
	for len(want[off:]) > 0 {
		n := min(1000, len(want)-int(off))
		wn, err := h.Write(want[off:off+int64(n)], off)
		if err != nil || wn != n {
			t.Fatalf("write at %d = %d, %v", off, wn, err)
		}
		off += int64(n)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got, _ := fs.ReadFile("out"); !bytes.Equal(got, want) {
		t.Fatalf("server holds %d bytes, want %d", len(got), len(want))
	}
}

// TestWriteBehindReadBarrier: a read on a handle with dirty
// write-behind data must see the writes (the barrier flushes before
// reading).
func TestWriteBehindReadBarrier(t *testing.T) {
	root, fs, _ := mountedConfig(t, FileConfig())
	fs.WriteFile("rw", nil, 0664)
	h := openPath(t, root, "rw", vfs.ORDWR)
	want := testPattern(2000)
	for off := 0; off < len(want); off += 500 {
		if _, err := h.Write(want[off:off+500], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, len(want))
	n, err := h.Read(buf, 0)
	if err != nil || n != len(want) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("read did not observe buffered write-behind data")
	}
	h.Close()
}

// TestCloseIdempotent: the second Close must not double-clunk the fid
// (which would kill an unrelated fid that reused the number) and must
// not error.
func TestCloseIdempotent(t *testing.T) {
	root, fs, _ := mountedConfig(t, FileConfig())
	fs.WriteFile("f", []byte("x"), 0664)
	h := openPath(t, root, "f", vfs.OREAD)
	if err := h.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The connection is still healthy and other fids unaffected.
	if _, err := root.Walk("f"); err != nil {
		t.Fatalf("connection damaged by double close: %v", err)
	}
}

// TestFinalizerAfterClientClose: nodes collected after the client is
// gone must not fire clunk goroutines at a dead connection (leakcheck
// in TestMain would catch a goroutine parked on a closed client).
func TestFinalizerAfterClientClose(t *testing.T) {
	root, fs, cl := mountedConfig(t, Config{})
	fs.WriteFile("f", nil, 0664)
	for range 50 {
		if _, err := root.Walk("f"); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	runtime.GC()
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
}

// blockSrv serves one file whose reads beyond a threshold offset park
// until released — a stand-in for a slow or wedged server, so a test
// can hold speculative readahead Treads in flight deliberately.
type blockSrv struct {
	blockFrom int64
	release   chan struct{}
}

func (s *blockSrv) Root() vfs.Node { return blockSrvNode{s: s} }

type blockSrvNode struct{ s *blockSrv }

func (n blockSrvNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "/", Mode: vfs.DMDIR | 0777, Qid: vfs.Qid{Path: 1, Type: vfs.QTDIR}}, nil
}
func (n blockSrvNode) Walk(name string) (vfs.Node, error) { return blockSrvFile{s: n.s}, nil }
func (n blockSrvNode) Open(mode int) (vfs.Handle, error)  { return nil, vfs.ErrIsDir }

type blockSrvFile struct{ s *blockSrv }

func (f blockSrvFile) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "slow", Mode: 0666, Qid: vfs.Qid{Path: 2}}, nil
}
func (f blockSrvFile) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (f blockSrvFile) Open(mode int) (vfs.Handle, error)  { return blockSrvHandle{s: f.s}, nil }

type blockSrvHandle struct{ s *blockSrv }

func (h blockSrvHandle) Read(p []byte, off int64) (int, error) {
	if off >= h.s.blockFrom {
		<-h.s.release
	}
	for i := range p {
		p[i] = byte(off + int64(i))
	}
	return len(p), nil
}
func (h blockSrvHandle) Write(p []byte, off int64) (int, error) { return len(p), nil }
func (h blockSrvHandle) Close() error                           { return nil }

// TestFlushRacesReadahead: close a handle while its speculative
// readahead Treads are parked in the server, then let them finish.
// The flushed replies must not be delivered, every goroutine must
// exit (leakcheck in TestMain), and the pooled buffers the server
// allocated for the suppressed replies must return to the allocator.
func TestFlushRacesReadahead(t *testing.T) {
	srv := &blockSrv{blockFrom: 2 * int64(ninep.MaxFData), release: make(chan struct{})}
	a, b := ninep.NewPipe()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		ninep.Serve(b, func(uname, aname string) (vfs.Node, error) {
			return srv.Root(), nil
		})
	}()
	before := block.Snapshot()

	root, cl, err := MountConfig(a, "glenda", "", Config{Readahead: 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := root.Walk("slow")
	if err != nil {
		t.Fatal(err)
	}
	h, err := n.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential full reads arm the readahead; the speculative
	// Treads beyond blockFrom park in the server.
	buf := make([]byte, ninep.MaxFData)
	if _, err := h.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(buf, int64(ninep.MaxFData)); err != nil {
		t.Fatal(err)
	}
	// Close while they are in flight: cancelRA must Tflush them and
	// return promptly rather than waiting out the server.
	closed := make(chan error, 1)
	go func() { closed <- h.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close waited for flushed readahead replies")
	}
	// Release the parked reads; their replies are suppressed
	// server-side and their pooled buffers recycled.
	close(srv.release)
	cl.Close()
	<-serveDone

	// Every block the exchange allocated must be back in the pool.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := block.Snapshot()
		if after.InFlight == before.InFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled blocks leaked: in flight %d -> %d", before.InFlight, after.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// errSrv accepts the first write and fails every later one: the shape
// of a file server running out of space mid-stream.
type errSrv struct{}

var errNoSpace = errors.New("no space on device")

func (errSrv) Root() vfs.Node { return errSrvNode{} }

type errSrvNode struct{}

func (errSrvNode) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "/", Mode: vfs.DMDIR | 0777, Qid: vfs.Qid{Path: 1, Type: vfs.QTDIR}}, nil
}
func (errSrvNode) Walk(name string) (vfs.Node, error) { return errSrvFile{}, nil }
func (errSrvNode) Open(mode int) (vfs.Handle, error)  { return nil, vfs.ErrIsDir }

type errSrvFile struct{}

func (errSrvFile) Stat() (vfs.Dir, error) {
	return vfs.Dir{Name: "full", Mode: 0666, Qid: vfs.Qid{Path: 2}}, nil
}
func (errSrvFile) Walk(name string) (vfs.Node, error) { return nil, vfs.ErrNotExist }
func (errSrvFile) Open(mode int) (vfs.Handle, error)  { return errSrvHandle{}, nil }

type errSrvHandle struct{}

func (errSrvHandle) Read(p []byte, off int64) (int, error) { return 0, nil }
func (errSrvHandle) Write(p []byte, off int64) (int, error) {
	if off == 0 {
		return len(p), nil
	}
	return 0, errNoSpace
}
func (errSrvHandle) Close() error { return nil }

// TestWriteBehindErrorSurfaces: an asynchronous write-behind failure
// must reach the caller — on a later Write or, at the latest, on
// Close — never be swallowed.
func TestWriteBehindErrorSurfaces(t *testing.T) {
	a, b := ninep.NewPipe()
	go ninep.Serve(b, func(uname, aname string) (vfs.Node, error) {
		return errSrv{}.Root(), nil
	})
	root, cl, err := MountConfig(a, "glenda", "", FileConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	n, err := root.Walk("full")
	if err != nil {
		t.Fatal(err)
	}
	h, err := n.Open(vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPattern(ninep.MaxFData)
	// First write is synchronous and accepted; the rest queue behind
	// the window and fail server-side.
	var sawErr error
	off := int64(0)
	for range 8 {
		_, err := h.Write(payload, off)
		if err != nil {
			sawErr = err
			break
		}
		off += int64(len(payload))
	}
	if err := h.Close(); err != nil && sawErr == nil {
		sawErr = err
	}
	if sawErr == nil {
		t.Fatal("write-behind swallowed the server's write error")
	}
}
