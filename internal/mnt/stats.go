package mnt

import "repro/internal/obs"

// Mount-driver observability, process-wide: every handle's readahead
// and write-behind activity lands in these counters, and the machine
// serves them (together with the per-client RPC figures from
// ninep.Client.StatsGroup) as /net/mnt/stats. Process-wide rather than
// per-mount keeps the hot paths at one padded atomic add and matches
// how the numbers are read: "is the window earning its keep on this
// machine?"
var (
	// RAHits counts reads that consumed prefetched fragment bytes.
	RAHits obs.Counter
	// RAMisses counts sequential-pattern reads that found nothing
	// buffered (including pattern breaks that restart the run).
	RAMisses obs.Counter
	// RACancels counts abandoned prefetch queues (pattern break,
	// error, EOF) — each flushed its in-flight Treads.
	RACancels obs.Counter
	// RAIssued counts speculative Treads issued by the prefetcher.
	RAIssued obs.Counter
	// WBIssued counts write-behind fragments issued asynchronously.
	WBIssued obs.Counter
	// WBBarriers counts barrier drains (read-your-writes, offset
	// jumps, close).
	WBBarriers obs.Counter

	statsGroup = new(obs.Group).
			AddCounter("ra-hits", &RAHits).
			AddCounter("ra-misses", &RAMisses).
			AddCounter("ra-cancels", &RACancels).
			AddCounter("ra-issued", &RAIssued).
			AddCounter("wb-issued", &WBIssued).
			AddCounter("wb-barriers", &WBBarriers)
)

// StatsGroup exposes the mount driver's process-wide counters.
func StatsGroup() *obs.Group { return statsGroup }
