// Package mnt is the mount driver (§2.1): "a kernel resident file
// server called the mount driver converts the procedural version of 9P
// into RPCs." Given a transport to a 9P server — a pipe to a local
// user-level server, or a network connection to a remote machine — it
// yields a vfs.Node that can be mounted into a name space; every
// operation on the subtree becomes a 9P message.
package mnt

import (
	"runtime"

	"repro/internal/ninep"
	"repro/internal/vfs"
)

// Mount dials a 9P server over conn, authenticates uname, attaches to
// aname, and returns the remote root as a mountable node. Closing the
// returned client tears down the connection and every fid on it.
func Mount(conn ninep.MsgConn, uname, aname string) (vfs.Node, *ninep.Client, error) {
	cl, err := ninep.NewClient(conn)
	if err != nil {
		return nil, nil, err
	}
	root, err := cl.Attach(uname, aname)
	if err != nil {
		cl.Close()
		return nil, nil, err
	}
	return newNode(root), cl, nil
}

// node is an unopened remote file; it holds a walked fid. Fids are
// clunked by a finalizer when the node is collected, mirroring how the
// kernel clunks a channel on the last close of its references.
type node struct {
	fid *ninep.Fid
}

var (
	_ vfs.Node    = (*node)(nil)
	_ vfs.Creator = (*node)(nil)
	_ vfs.Remover = (*node)(nil)
	_ vfs.Wstater = (*node)(nil)
)

func newNode(fid *ninep.Fid) *node {
	n := &node{fid: fid}
	runtime.SetFinalizer(n, func(n *node) { go n.fid.Clunk() })
	return n
}

// Stat implements vfs.Node (Tstat).
func (n *node) Stat() (vfs.Dir, error) { return n.fid.Stat() }

// Walk implements vfs.Node (Tclwalk: clone + walk in one RPC).
func (n *node) Walk(name string) (vfs.Node, error) {
	nf, err := n.fid.CloneWalk(name)
	if err != nil {
		return nil, err
	}
	return newNode(nf), nil
}

// Open implements vfs.Node. The node's fid stays unopened (so the node
// remains walkable); a clone is opened and owned by the handle.
func (n *node) Open(mode int) (vfs.Handle, error) {
	f, err := n.fid.Clone()
	if err != nil {
		return nil, err
	}
	if err := f.Open(mode); err != nil {
		f.Clunk()
		return nil, err
	}
	return &handle{fid: f}, nil
}

// Create implements vfs.Creator (Tcreate).
func (n *node) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	f, err := n.fid.Clone()
	if err != nil {
		return nil, nil, err
	}
	if err := f.Create(name, perm, mode); err != nil {
		f.Clunk()
		return nil, nil, err
	}
	// The fid now refers to the created, open file. The handle owns
	// it; the returned node re-walks for a clean unopened fid.
	nn, err := n.fid.CloneWalk(name)
	if err != nil {
		f.Clunk()
		return nil, nil, err
	}
	return newNode(nn), &handle{fid: f}, nil
}

// Remove implements vfs.Remover (Tremove). The fid is clunked by the
// server on remove; drop the finalizer's work by marking it done.
func (n *node) Remove() error {
	runtime.SetFinalizer(n, nil)
	return n.fid.Remove()
}

// Wstat implements vfs.Wstater (Twstat).
func (n *node) Wstat(d vfs.Dir) error { return n.fid.Wstat(d) }

// handle is an open remote file.
type handle struct {
	fid *ninep.Fid
}

var _ vfs.Handle = (*handle)(nil)

// Read implements vfs.Handle (Tread).
func (h *handle) Read(p []byte, off int64) (int, error) { return h.fid.Read(p, off) }

// Write implements vfs.Handle (Twrite).
func (h *handle) Write(p []byte, off int64) (int, error) { return h.fid.Write(p, off) }

// Close implements vfs.Handle (Tclunk).
func (h *handle) Close() error { return h.fid.Clunk() }
