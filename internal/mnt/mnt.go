// Package mnt is the mount driver (§2.1): "a kernel resident file
// server called the mount driver converts the procedural version of 9P
// into RPCs." Given a transport to a 9P server — a pipe to a local
// user-level server, or a network connection to a remote machine — it
// yields a vfs.Node that can be mounted into a name space; every
// operation on the subtree becomes a 9P message.
//
// The driver can pipeline: a mount may opt into fanning large reads
// and writes into a sliding window of concurrent RPCs
// (ninep.ClientConfig.WindowedTransfers), plus sequential-pattern
// readahead and coalescing write-behind (Config). All three reorder or
// speculate I/O, so they are only safe on trees of plain files —
// FileConfig enables them together. The zero Config issues exactly the
// serial driver's RPCs in exactly its order, and is what imported
// device trees use.
package mnt

import (
	"io"
	"runtime"
	"sync"

	"repro/internal/ninep"
	"repro/internal/vfs"
)

// Config tunes the mount driver for one mount.
//
// The zero value is the serial driver: every Read and Write maps onto
// the same RPCs, in the same order, as one-fragment-at-a-time 9P —
// safe for any server, including live device trees where a Tread has
// side effects (a listen file, a stream's data file).
type Config struct {
	// Client tunes the RPC engine: the in-flight cap, and whether
	// large transfers fan into a window of concurrent fragment RPCs
	// (WindowedTransfers — plain file trees only); see
	// ninep.ClientConfig.
	Client ninep.ClientConfig
	// Readahead is how many MaxFData fragments of speculative Tread
	// to keep in flight once a handle establishes a sequential read
	// pattern (two consecutive sequential reads). 0 disables.
	// Unsafe on delimited or blocking devices: a speculative read
	// consumes stream data that is discarded if the pattern breaks.
	Readahead int
	// WriteBehind coalesces sequential writes into MaxFData
	// fragments acknowledged asynchronously. The first write on a
	// handle is always synchronous (so a ctl-file handshake keeps
	// its ordering); errors surface on a later operation or Close.
	WriteBehind bool
	// Push lists line-discipline module specs (§2.4.1) to push on
	// the mount's transport conversation before the 9P session
	// starts, bottom-up: {"compress", "batch 2048 2ms"} puts
	// compress nearest the wire. The mount driver itself does not
	// act on this field — the code that dials the conversation
	// (core.Machine.ImportConfig and friends) writes the push
	// control messages, and the serving end must push the same
	// specs in the same order.
	Push []string
}

// FileConfig is the aggressive profile for mounts of plain file trees
// (a dump file system, a source tree): windowed transfers plus
// readahead and write-behind.
func FileConfig() Config {
	return Config{
		Client:      ninep.ClientConfig{WindowedTransfers: true},
		Readahead:   4,
		WriteBehind: true,
	}
}

// Mount dials a 9P server over conn, authenticates uname, attaches to
// aname, and returns the remote root as a mountable node. Closing the
// returned client tears down the connection and every fid on it. The
// mount uses the serial driver's exact RPC mapping; pass FileConfig to
// MountConfig to pipeline a plain file tree.
func Mount(conn ninep.MsgConn, uname, aname string) (vfs.Node, *ninep.Client, error) {
	return MountConfig(conn, uname, aname, Config{})
}

// MountConfig is Mount with an explicit pipelining configuration.
func MountConfig(conn ninep.MsgConn, uname, aname string, cfg Config) (vfs.Node, *ninep.Client, error) {
	cl, err := ninep.NewClientConfig(conn, cfg.Client)
	if err != nil {
		return nil, nil, err
	}
	root, err := cl.Attach(uname, aname)
	if err != nil {
		cl.Close()
		return nil, nil, err
	}
	return newNode(root, cfg), cl, nil
}

// node is an unopened remote file; it holds a walked fid. Fids are
// clunked by a finalizer when the node is collected, mirroring how the
// kernel clunks a channel on the last close of its references.
type node struct {
	fid *ninep.Fid
	cfg Config
}

var (
	_ vfs.Node    = (*node)(nil)
	_ vfs.Creator = (*node)(nil)
	_ vfs.Remover = (*node)(nil)
	_ vfs.Wstater = (*node)(nil)
)

func newNode(fid *ninep.Fid, cfg Config) *node {
	n := &node{fid: fid, cfg: cfg}
	if fid.Client().Clock().Virtual() {
		// Finalizers run on GC goroutines the virtual scheduler has
		// no hold on; under a simulated clock the client dies with
		// its world, so stray fids need no clunk.
		return n
	}
	runtime.SetFinalizer(n, func(n *node) {
		// Once the client is closed or failed there is no
		// connection to clunk over; firing the RPC would only spawn
		// a goroutine to learn that.
		if n.fid.Client().Dead() {
			return
		}
		go n.fid.Clunk()
	})
	return n
}

// Stat implements vfs.Node (Tstat).
func (n *node) Stat() (vfs.Dir, error) { return n.fid.Stat() }

// Walk implements vfs.Node (Tclwalk: clone + walk in one RPC).
func (n *node) Walk(name string) (vfs.Node, error) {
	nf, err := n.fid.CloneWalk(name)
	if err != nil {
		return nil, err
	}
	return newNode(nf, n.cfg), nil
}

// Open implements vfs.Node. The node's fid stays unopened (so the node
// remains walkable); a clone is opened and owned by the handle.
func (n *node) Open(mode int) (vfs.Handle, error) {
	f, err := n.fid.Clone()
	if err != nil {
		return nil, err
	}
	if err := f.Open(mode); err != nil {
		f.Clunk()
		return nil, err
	}
	return newHandle(f, n.cfg), nil
}

// Create implements vfs.Creator (Tcreate).
func (n *node) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	f, err := n.fid.Clone()
	if err != nil {
		return nil, nil, err
	}
	if err := f.Create(name, perm, mode); err != nil {
		f.Clunk()
		return nil, nil, err
	}
	// The fid now refers to the created, open file. The handle owns
	// it; the returned node re-walks for a clean unopened fid.
	nn, err := n.fid.CloneWalk(name)
	if err != nil {
		f.Clunk()
		return nil, nil, err
	}
	return newNode(nn, n.cfg), newHandle(f, n.cfg), nil
}

// Remove implements vfs.Remover (Tremove). The fid is clunked by the
// server on remove; drop the finalizer's work by marking it done.
func (n *node) Remove() error {
	runtime.SetFinalizer(n, nil)
	return n.fid.Remove()
}

// Wstat implements vfs.Wstater (Twstat).
func (n *node) Wstat(d vfs.Dir) error { return n.fid.Wstat(d) }

// frag is one readahead fragment: an in-flight Tread (pend != nil) or
// its buffered, partially consumed reply.
type frag struct {
	pend  *ninep.Pending
	asked int
	data  []byte
	used  int
	short bool
}

// wfrag is one write-behind fragment in flight.
type wfrag struct {
	pend *ninep.Pending
	n    int
}

// handle is an open remote file.
type handle struct {
	fid *ninep.Fid
	ra  int  // readahead fragments (0 = off)
	wb  bool // write-behind enabled

	mu     sync.Mutex
	closed bool

	// Readahead. frags buffer prefetched data contiguous from
	// seqOff, the offset where the handle's sequential read pattern
	// continues; seqRun counts consecutive sequential reads, and
	// raStop latches after a short reply (EOF) until the pattern
	// resets.
	seqOff int64
	seqRun int
	frags  []*frag
	raStop bool

	// Write-behind. buf coalesces sequential writes (always shorter
	// than MaxFData) starting at file offset bufOff; wEnd is where
	// the sequential pattern continues; wpend are fragments in
	// flight; werr is the first asynchronous error, surfaced on the
	// next operation or Close.
	wrote  bool
	wEnd   int64
	buf    []byte
	bufOff int64
	wpend  []wfrag
	werr   error
}

var _ vfs.Handle = (*handle)(nil)

func newHandle(f *ninep.Fid, cfg Config) *handle {
	return &handle{fid: f, ra: cfg.Readahead, wb: cfg.WriteBehind}
}

// Read implements vfs.Handle (Tread). With readahead off it is a
// direct windowed read; otherwise sequential reads are served from the
// prefetch queue, which is topped up behind them.
func (h *handle) Read(p []byte, off int64) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, vfs.ErrClosed
	}
	if h.wb {
		// Read-your-writes: drain write-behind first. A deferred
		// write error surfaces here.
		if err := h.barrierLocked(); err != nil {
			h.mu.Unlock()
			return 0, err
		}
	}
	if h.ra <= 0 {
		h.mu.Unlock()
		return h.fid.Read(p, off)
	}
	defer h.mu.Unlock()
	return h.readLocked(p, off)
}

func (h *handle) readLocked(p []byte, off int64) (int, error) {
	if off != h.seqOff {
		// Pattern broken: abandon the prefetch and start over.
		h.cancelRALocked()
		h.raStop = false
		h.seqRun = 0
		RAMisses.Inc()
		n, err := h.fid.Read(p, off)
		h.seqOff = off + int64(n)
		if err == nil && n == len(p) {
			h.seqRun = 1
		}
		return n, err
	}
	total := 0
	short := false
	fromFrags := 0
	for total < len(p) && len(h.frags) > 0 {
		fr := h.frags[0]
		if fr.pend != nil {
			r, err := fr.pend.Wait()
			fr.pend = nil
			if err != nil {
				h.cancelRALocked()
				h.raStop = true
				if total > 0 {
					break
				}
				h.seqRun = 0
				return 0, err
			}
			fr.data = r.Data
			fr.short = len(r.Data) < fr.asked
		}
		n := copy(p[total:], fr.data[fr.used:])
		total += n
		fromFrags += n
		fr.used += n
		if fr.used < len(fr.data) {
			break // p is full
		}
		h.frags = h.frags[1:]
		if fr.short {
			// EOF or boundary: fragments beyond it are invalid.
			h.cancelRALocked()
			h.raStop = true
			short = true
			break
		}
	}
	if total < len(p) && !short {
		n, err := h.fid.Read(p[total:], off+int64(total))
		total += n
		if err != nil {
			h.seqOff = off + int64(total)
			h.seqRun = 0
			return total, err
		}
		if total < len(p) {
			short = true // EOF for now; re-probe directly next time
			h.raStop = true
		} else {
			h.raStop = false
		}
	}
	if fromFrags > 0 {
		RAHits.Inc()
	} else {
		RAMisses.Inc()
	}
	h.seqOff = off + int64(total)
	if total == len(p) && total > 0 {
		h.seqRun++
	}
	if h.seqRun >= 2 && !h.raStop {
		h.fillRALocked()
	}
	return total, nil
}

// fillRALocked tops the prefetch queue up to the configured depth,
// starting just past everything already buffered or in flight.
func (h *handle) fillRALocked() {
	next := h.seqOff
	for _, fr := range h.frags {
		if fr.pend != nil {
			next += int64(fr.asked)
		} else {
			next += int64(len(fr.data) - fr.used)
		}
	}
	for len(h.frags) < h.ra {
		pr, err := h.fid.ReadAsync(next, ninep.MaxFData)
		if err != nil {
			h.raStop = true
			return
		}
		RAIssued.Inc()
		h.frags = append(h.frags, &frag{pend: pr, asked: ninep.MaxFData})
		next += ninep.MaxFData
	}
}

// cancelRALocked abandons the prefetch queue, flushing the in-flight
// Treads (pipelined Tflushes, one round trip) and dropping buffered
// data.
func (h *handle) cancelRALocked() {
	if len(h.frags) > 0 {
		RACancels.Inc()
	}
	var ps []*ninep.Pending
	for _, fr := range h.frags {
		if fr.pend != nil {
			ps = append(ps, fr.pend)
		}
	}
	h.frags = nil
	if len(ps) > 0 {
		h.fid.Client().FlushAll(ps)
	}
}

// Write implements vfs.Handle (Twrite). With write-behind off it is a
// direct windowed write; otherwise sequential writes coalesce into
// MaxFData fragments issued asynchronously, the window bounding how
// many ride unacknowledged.
func (h *handle) Write(p []byte, off int64) (int, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return 0, vfs.ErrClosed
	}
	if h.werr != nil {
		err := h.werr
		h.werr = nil
		h.mu.Unlock()
		return 0, err
	}
	// A write under buffered readahead would let stale prefetched
	// data satisfy a later read; drop it.
	if len(h.frags) > 0 {
		h.cancelRALocked()
		h.seqRun = 0
	}
	if !h.wb {
		h.mu.Unlock()
		return h.fid.Write(p, off)
	}
	defer h.mu.Unlock()
	if !h.wrote || len(p) == 0 {
		// The first write on a handle is synchronous: a dialer
		// writes "connect" to a ctl file and expects the side
		// effect before its next step.
		h.wrote = true
		n, err := h.fid.Write(p, off)
		h.wEnd = off + int64(n)
		return n, err
	}
	if off != h.wEnd {
		if err := h.barrierLocked(); err != nil {
			return 0, err
		}
		n, err := h.fid.Write(p, off)
		h.wEnd = off + int64(n)
		return n, err
	}
	// Sequential: coalesce.
	if len(h.buf) == 0 {
		h.bufOff = off
	}
	h.buf = append(h.buf, p...)
	for len(h.buf) >= ninep.MaxFData {
		h.issueWBLocked(h.buf[:ninep.MaxFData])
		h.bufOff += ninep.MaxFData
		h.buf = h.buf[ninep.MaxFData:]
	}
	if len(h.buf) == 0 {
		h.buf = nil
	}
	h.wEnd = off + int64(len(p))
	return len(p), nil
}

// issueWBLocked sends one write-behind fragment, first reaping the
// oldest in-flight fragment if the window is full. The fragment data
// is copied into the wire buffer before this returns.
func (h *handle) issueWBLocked(data []byte) {
	win := h.fid.Client().Window()
	for len(h.wpend) >= win {
		h.reapWBLocked()
	}
	if h.werr != nil {
		return // don't keep writing past a failure
	}
	pr, err := h.fid.WriteAsync(data, h.bufOff)
	if err != nil {
		h.werr = err
		return
	}
	WBIssued.Inc()
	h.wpend = append(h.wpend, wfrag{pend: pr, n: len(data)})
}

// reapWBLocked waits for the oldest write-behind fragment and records
// its error, if any.
func (h *handle) reapWBLocked() {
	w := h.wpend[0]
	h.wpend = h.wpend[1:]
	r, err := w.pend.Wait()
	if err == nil && int(r.Count) < w.n {
		err = io.ErrShortWrite
	}
	if err != nil && h.werr == nil {
		h.werr = err
	}
}

// barrierLocked drains write-behind: the coalescing buffer is issued,
// every in-flight fragment is awaited, and the first deferred error is
// returned (and cleared).
func (h *handle) barrierLocked() error {
	if len(h.buf) > 0 || len(h.wpend) > 0 {
		WBBarriers.Inc()
	}
	if len(h.buf) > 0 {
		h.issueWBLocked(h.buf)
		h.bufOff += int64(len(h.buf))
		h.buf = nil
	}
	for len(h.wpend) > 0 {
		h.reapWBLocked()
	}
	err := h.werr
	h.werr = nil
	return err
}

// Close implements vfs.Handle: drain write-behind (surfacing any
// deferred error), abandon readahead via Tflush, and clunk the fid.
// Close is idempotent; a second Close is a no-op, so a racing or
// repeated close can never double-clunk the fid.
func (h *handle) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	h.cancelRALocked()
	err := h.barrierLocked()
	if cerr := h.fid.Clunk(); err == nil {
		err = cerr
	}
	return err
}
