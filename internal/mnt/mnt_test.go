package mnt

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/ninep"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

func mounted(t *testing.T) (vfs.Node, *ramfs.FS, *ninep.Client) {
	t.Helper()
	fs := ramfs.New("srv")
	a, b := ninep.NewPipe()
	go ninep.Serve(b, func(uname, aname string) (vfs.Node, error) {
		return fs.Root(), nil
	})
	root, cl, err := Mount(a, "glenda", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return root, fs, cl
}

func TestWalkStatOpenReadWrite(t *testing.T) {
	root, fs, _ := mounted(t)
	fs.WriteFile("dir/f", []byte("remote bytes"), 0664)
	n, err := root.Walk("dir")
	if err != nil {
		t.Fatal(err)
	}
	f, err := n.Walk("f")
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Stat()
	if err != nil || d.Name != "f" || d.Length != 12 {
		t.Fatalf("stat %+v, %v", d, err)
	}
	h, err := f.Open(vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	rn, err := h.Read(buf, 0)
	if err != nil || string(buf[:rn]) != "remote bytes" {
		t.Fatalf("read %q, %v", buf[:rn], err)
	}
	if _, err := h.Write([]byte("X"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
	b, _ := fs.ReadFile("dir/f")
	if string(b) != "Xemote bytes" {
		t.Errorf("server contents %q", b)
	}
	// The node stays walkable after an open (Open clones the fid).
	if _, err := n.Walk("f"); err != nil {
		t.Errorf("node lost walkability: %v", err)
	}
}

func TestCreateRemoveWstat(t *testing.T) {
	root, fs, _ := mounted(t)
	cr, ok := root.(vfs.Creator)
	if !ok {
		t.Fatal("mnt node is not a Creator")
	}
	nn, h, err := cr.Create("new", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("created"), 0)
	h.Close()
	if b, _ := fs.ReadFile("new"); string(b) != "created" {
		t.Errorf("created contents %q", b)
	}
	// Wstat renames through the wire.
	if err := nn.(vfs.Wstater).Wstat(vfs.Dir{Name: "renamed"}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("renamed"); err != nil {
		t.Error("rename did not reach the server")
	}
	// Remove.
	rn, err := root.Walk("renamed")
	if err != nil {
		t.Fatal(err)
	}
	if err := rn.(vfs.Remover).Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("renamed"); err == nil {
		t.Error("remove did not reach the server")
	}
}

func TestErrorsPropagate(t *testing.T) {
	root, _, _ := mounted(t)
	if _, err := root.Walk("missing"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("missing walk error = %v", err)
	}
	n, _ := root.Walk("..") // ramfs root loops to itself
	if n == nil {
		t.Error(".. walk failed")
	}
}

func TestClosedClientFailsCleanly(t *testing.T) {
	root, _, cl := mounted(t)
	cl.Close()
	if _, err := root.Walk("x"); err == nil {
		t.Error("walk on closed client succeeded")
	}
	if _, err := root.Stat(); err == nil {
		t.Error("stat on closed client succeeded")
	}
}

func TestFinalizerClunksFids(t *testing.T) {
	// Walk many nodes and drop them; the finalizers must clunk the
	// fids server-side (we can only assert no leak crashes the
	// connection and the GC path runs).
	root, fs, _ := mounted(t)
	fs.WriteFile("f", nil, 0664)
	for range 100 {
		if _, err := root.Walk("f"); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	time.Sleep(20 * time.Millisecond) // let the clunk goroutines run
	// The connection still works.
	if _, err := root.Walk("f"); err != nil {
		t.Errorf("connection unhealthy after finalizer storm: %v", err)
	}
}
