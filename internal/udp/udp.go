// Package udp implements UDP over the simulated IP stack — the cheap,
// unreliable datagram baseline of §3 ("UDP, while cheap, does not
// provide reliable sequenced delivery"). The simulated DNS runs over
// it.
//
// Connected conversations exchange bare payloads. Announced
// conversations run in the Plan 9 "headers" style: each datagram read
// is prefixed with the remote address and port (4+2 bytes), and writes
// must carry the same 6-byte prefix to choose their destination — that
// is how a server answers many clients through one conversation.
package udp

import (
	"fmt"
	"sync"

	"repro/internal/block"
	"repro/internal/ip"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/xport"
)

// HdrLen is the UDP header: src port, dst port, length, checksum.
const HdrLen = 8

// AddrHdrLen is the headers-mode prefix: remote IP (4) + port (2).
const AddrHdrLen = 6

// Proto is a machine's UDP protocol device.
type Proto struct {
	stack *ip.Stack

	mu        sync.Mutex
	bound     map[uint16]*Conn // local port -> conversation
	nextEphem uint16
}

var _ xport.Proto = (*Proto)(nil)

// New creates the UDP device on a stack and registers its demux.
func New(stack *ip.Stack) *Proto {
	p := &Proto{stack: stack, bound: make(map[uint16]*Conn), nextEphem: 5000}
	stack.Register(ip.ProtoUDP, p.recv)
	return p
}

// Name implements xport.Proto.
func (p *Proto) Name() string { return "udp" }

// Clock returns the clock of the stack the device runs on.
func (p *Proto) Clock() vclock.Clock { return p.stack.Clock() }

// NewConn implements xport.Proto.
func (p *Proto) NewConn() (xport.Conn, error) {
	c := &Conn{proto: p}
	c.rstream = streams.NewClock(0, p.stack.Clock(), nil)
	return c, nil
}

func (p *Proto) allocPort(want uint16, c *Conn) (uint16, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if want != 0 {
		if _, taken := p.bound[want]; taken {
			return 0, xport.ErrInUse
		}
		p.bound[want] = c
		return want, nil
	}
	for range 60000 {
		p.nextEphem++
		if p.nextEphem < 5000 {
			p.nextEphem = 5000
		}
		if _, taken := p.bound[p.nextEphem]; !taken {
			p.bound[p.nextEphem] = c
			return p.nextEphem, nil
		}
	}
	return 0, xport.ErrInUse
}

func (p *Proto) release(port uint16, c *Conn) {
	p.mu.Lock()
	if p.bound[port] == c {
		delete(p.bound, port)
	}
	p.mu.Unlock()
}

// recv demultiplexes an incoming datagram to the bound conversation.
func (p *Proto) recv(src, dst ip.Addr, payload []byte) {
	if len(payload) < HdrLen {
		return
	}
	srcPort := uint16(payload[0])<<8 | uint16(payload[1])
	dstPort := uint16(payload[2])<<8 | uint16(payload[3])
	n := int(payload[4])<<8 | int(payload[5])
	if n < HdrLen || n > len(payload) {
		return
	}
	data := payload[HdrLen:n]
	p.mu.Lock()
	c := p.bound[dstPort]
	p.mu.Unlock()
	if c == nil {
		return
	}
	c.deliver(src, srcPort, data)
}

// Conn is a UDP conversation.
type Conn struct {
	proto   *Proto
	rstream *streams.Stream

	mu         sync.Mutex
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16
	localAddr  ip.Addr
	connected  bool
	announced  bool
	closed     bool
}

var _ xport.Conn = (*Conn)(nil)

// Connect implements xport.Conn.
func (c *Conn) Connect(addr string) error {
	a, port, err := ip.ParseHostPort(addr)
	if err != nil || a.IsZero() || port == 0 {
		return xport.ErrBadAddress
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.connected || c.announced {
		return xport.ErrConnected
	}
	local, err := c.proto.stack.LocalAddrFor(a)
	if err != nil {
		return err
	}
	lp, err := c.proto.allocPort(0, c)
	if err != nil {
		return err
	}
	c.localPort, c.localAddr = lp, local
	c.remoteAddr, c.remotePort = a, port
	c.connected = true
	return nil
}

// Announce implements xport.Conn.
func (c *Conn) Announce(addr string) error {
	_, port, err := ip.ParseHostPort(addr)
	if err != nil {
		return xport.ErrBadAddress
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.connected || c.announced {
		return xport.ErrConnected
	}
	lp, err := c.proto.allocPort(port, c)
	if err != nil {
		return err
	}
	c.localPort = lp
	c.announced = true
	return nil
}

// Listen implements xport.Conn; UDP is connectionless, so there are no
// calls to accept.
func (c *Conn) Listen() (xport.Conn, error) {
	return nil, fmt.Errorf("udp: no calls to listen for")
}

// deliver queues a received datagram, delimited, with the headers-mode
// prefix when announced.
func (c *Conn) deliver(src ip.Addr, srcPort uint16, data []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.connected && (src != c.remoteAddr || srcPort != c.remotePort) {
		c.mu.Unlock()
		return // connected conversations filter by peer
	}
	announced := c.announced
	s := c.rstream
	c.mu.Unlock()
	if announced {
		hdr := make([]byte, AddrHdrLen, AddrHdrLen+len(data))
		copy(hdr, src[:])
		hdr[4] = byte(srcPort >> 8)
		hdr[5] = byte(srcPort)
		s.DeviceUpData(append(hdr, data...))
		return
	}
	s.DeviceUpData(data)
}

// Read implements xport.Conn: one datagram per read.
func (c *Conn) Read(p []byte) (int, error) { return c.rstream.Read(p) }

// Write implements xport.Conn: one datagram per write.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed, connected, announced := c.closed, c.connected, c.announced
	dst, dstPort := c.remoteAddr, c.remotePort
	srcPort := c.localPort
	src := c.localAddr
	c.mu.Unlock()
	if closed {
		return 0, streams.ErrClosed
	}
	data := p
	switch {
	case connected:
	case announced:
		if len(p) < AddrHdrLen {
			return 0, xport.ErrBadAddress
		}
		copy(dst[:], p[:4])
		dstPort = uint16(p[4])<<8 | uint16(p[5])
		data = p[AddrHdrLen:]
		src = ip.Addr{}
	default:
		return 0, xport.ErrNotConnected
	}
	// One copy, user data into a pooled block with IP/ether headroom;
	// the stack prepends its header in place and takes ownership.
	b := block.Alloc(HdrLen+len(data), block.DefaultHeadroom)
	dgram := b.Bytes()
	dgram[0] = byte(srcPort >> 8)
	dgram[1] = byte(srcPort)
	dgram[2] = byte(dstPort >> 8)
	dgram[3] = byte(dstPort)
	n := len(dgram)
	dgram[4] = byte(n >> 8)
	dgram[5] = byte(n)
	dgram[6], dgram[7] = 0, 0 // checksum unused in the simulation
	copy(dgram[HdrLen:], data)
	if err := c.proto.stack.SendBlock(ip.ProtoUDP, src, dst, b); err != nil {
		return 0, err
	}
	return len(p), nil
}

// LocalAddr implements xport.Conn.
func (c *Conn) LocalAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.localAddr, c.localPort)
}

// RemoteAddr implements xport.Conn.
func (c *Conn) RemoteAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ip.HostPort(c.remoteAddr, c.remotePort)
}

// Status implements xport.Conn.
func (c *Conn) Status() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return "Closed"
	case c.connected:
		return "Connected"
	case c.announced:
		return "Announced"
	}
	return "Open"
}

// Close implements xport.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	port := c.localPort
	c.mu.Unlock()
	if port != 0 {
		c.proto.release(port, c)
	}
	c.rstream.Close()
	return nil
}
