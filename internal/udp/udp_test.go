package udp

import (
	"testing"
	"time"

	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/xport"
)

func pair(t *testing.T) (*Proto, *Proto, ip.Addr, ip.Addr) {
	t.Helper()
	seg := ether.NewSegment("e0", ether.Profile{})
	t.Cleanup(seg.Close)
	s1, s2 := ip.NewStack(), ip.NewStack()
	a1 := ip.Addr{10, 0, 0, 1}
	a2 := ip.Addr{10, 0, 0, 2}
	mask := ip.Addr{255, 255, 255, 0}
	if _, err := s1.Bind(seg.NewInterface("e"), a1, mask); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Bind(seg.NewInterface("e"), a2, mask); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s1.Close(); s2.Close() })
	return New(s1), New(s2), a1, a2
}

func read(t *testing.T, c xport.Conn, buf []byte) int {
	t.Helper()
	type res struct {
		n   int
		err error
	}
	ch := make(chan res, 1)
	go func() {
		n, err := c.Read(buf)
		ch <- res{n, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.n
	case <-time.After(2 * time.Second):
		t.Fatal("udp read timed out")
		return 0
	}
}

func TestConnectedDatagrams(t *testing.T) {
	p1, p2, a1, a2 := pair(t)
	srv, _ := p2.NewConn()
	if err := srv.Announce("53"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, _ := p1.NewConn()
	if err := cli.Connect(ip.HostPort(a2, 53)); err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Write([]byte("query"))
	// Announced conversations read in headers mode.
	buf := make([]byte, 256)
	n := read(t, srv, buf)
	if n < AddrHdrLen {
		t.Fatalf("short headers-mode read %d", n)
	}
	var from ip.Addr
	copy(from[:], buf[:4])
	if from != a1 {
		t.Errorf("headers-mode source %v, want %v", from, a1)
	}
	if string(buf[AddrHdrLen:n]) != "query" {
		t.Errorf("payload %q", buf[AddrHdrLen:n])
	}
	// Reply through the same prefix.
	reply := append(append([]byte{}, buf[:AddrHdrLen]...), []byte("answer")...)
	if _, err := srv.Write(reply); err != nil {
		t.Fatal(err)
	}
	n = read(t, cli, buf)
	if string(buf[:n]) != "answer" {
		t.Errorf("client got %q", buf[:n])
	}
}

func TestConnectedFiltersOtherPeers(t *testing.T) {
	p1, p2, _, a2 := pair(t)
	srv, _ := p2.NewConn()
	srv.Announce("99")
	defer srv.Close()
	cli, _ := p1.NewConn()
	cli.Connect(ip.HostPort(a2, 99))
	defer cli.Close()
	// A datagram from a different local port must not reach cli.
	other, _ := p2.NewConn()
	other.Announce("98")
	defer other.Close()
	cli.Write([]byte("hello")) // learn cli's port on srv
	buf := make([]byte, 256)
	n := read(t, srv, buf)
	hdr := append([]byte{}, buf[:AddrHdrLen]...)
	// Send to cli from the WRONG port (98, not 99).
	other.Write(append(hdr, []byte("spoof")...))
	// And the real reply from 99.
	srv.Write(append(hdr, []byte("genuine")...))
	n = read(t, cli, buf)
	if string(buf[:n]) != "genuine" {
		t.Errorf("connected conversation accepted %q", buf[:n])
	}
}

func TestDatagramBoundariesPreserved(t *testing.T) {
	p1, p2, _, a2 := pair(t)
	srv, _ := p2.NewConn()
	srv.Announce("7")
	defer srv.Close()
	cli, _ := p1.NewConn()
	cli.Connect(ip.HostPort(a2, 7))
	defer cli.Close()
	cli.Write([]byte("one"))
	cli.Write([]byte("two two"))
	buf := make([]byte, 256)
	n := read(t, srv, buf)
	if string(buf[AddrHdrLen:n]) != "one" {
		t.Errorf("first datagram %q", buf[AddrHdrLen:n])
	}
	n = read(t, srv, buf)
	if string(buf[AddrHdrLen:n]) != "two two" {
		t.Errorf("second datagram %q", buf[AddrHdrLen:n])
	}
}

func TestPortCollisionAndRelease(t *testing.T) {
	p1, _, _, _ := pair(t)
	a, _ := p1.NewConn()
	if err := a.Announce("53"); err != nil {
		t.Fatal(err)
	}
	b, _ := p1.NewConn()
	if err := b.Announce("53"); err != xport.ErrInUse {
		t.Errorf("duplicate announce = %v", err)
	}
	a.Close()
	if err := b.Announce("53"); err != nil {
		t.Errorf("after release: %v", err)
	}
	b.Close()
}

func TestWriteErrors(t *testing.T) {
	p1, _, _, _ := pair(t)
	c, _ := p1.NewConn()
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != xport.ErrNotConnected {
		t.Errorf("unbound write = %v", err)
	}
	if err := c.Connect("not an address"); err == nil {
		t.Error("bad address accepted")
	}
	if err := c.Connect("10.0.0.2!0"); err == nil {
		t.Error("port 0 connect accepted")
	}
	if _, err := c.Listen(); err == nil {
		t.Error("udp listen succeeded")
	}
}

func TestStatusAndAddrs(t *testing.T) {
	p1, _, _, a2 := pair(t)
	c, _ := p1.NewConn()
	if c.Status() != "Open" {
		t.Errorf("fresh status %q", c.Status())
	}
	c.Connect(ip.HostPort(a2, 9))
	if c.Status() != "Connected" {
		t.Errorf("connected status %q", c.Status())
	}
	if c.RemoteAddr() != ip.HostPort(a2, 9) {
		t.Errorf("remote %q", c.RemoteAddr())
	}
	c.Close()
	if c.Status() != "Closed" {
		t.Errorf("closed status %q", c.Status())
	}
	a, _ := p1.NewConn()
	a.Announce("111")
	if a.Status() != "Announced" {
		t.Errorf("announced status %q", a.Status())
	}
	a.Close()
}

func TestOversizeAndRunt(t *testing.T) {
	p1, p2, _, a2 := pair(t)
	srv, _ := p2.NewConn()
	srv.Announce("5")
	defer srv.Close()
	cli, _ := p1.NewConn()
	cli.Connect(ip.HostPort(a2, 5))
	defer cli.Close()
	// Over-MTU datagrams are rejected by IP.
	if _, err := cli.Write(make([]byte, 2000)); err == nil {
		t.Error("over-MTU datagram sent")
	}
	// Empty datagrams carry.
	if _, err := cli.Write(nil); err != nil {
		t.Errorf("empty datagram: %v", err)
	}
	buf := make([]byte, 64)
	if n := read(t, srv, buf); n != AddrHdrLen {
		t.Errorf("empty datagram read %d bytes", n)
	}
}
