// Package netmsg is the single authority for the ASCII control
// messages of the paper's protocol devices (§2.3, §5): "connect",
// "announce", "reject", and the stream configuration verbs "push",
// "pop", and "hangup". Every producer of a ctl message formats it
// here; devices parse with Parse. Ad-hoc ctl literals elsewhere are
// flagged by the naked-ctl-string check of cmd/netvet, so the wire
// vocabulary cannot drift package by package.
package netmsg

import "strings"

// Ctl verbs understood by the protocol devices and the stream system.
const (
	VerbConnect     = "connect"
	VerbAnnounce    = "announce"
	VerbReject      = "reject"
	VerbHangup      = "hangup"
	VerbPush        = "push"
	VerbPop         = "pop"
	VerbPromiscuous = "promiscuous"
	VerbTrace       = "trace"
)

// Connect formats the dial request written to a conversation's ctl
// file: "connect 135.104.9.31!564" (§2.3).
func Connect(addr string) string { return VerbConnect + " " + addr }

// ConnectLocal formats a connect carrying a local-address suffix,
// "connect addr local" — accepted and ignored by most networks (§5.1).
func ConnectLocal(addr, local string) string {
	return VerbConnect + " " + addr + " " + local
}

// Announce formats the request that prepares a conversation to
// receive calls at a local address (§5.2).
func Announce(addr string) string { return VerbAnnounce + " " + addr }

// Reject formats the refusal of an incoming call. Some networks carry
// the reason to the caller; IP networks ignore it (§5.2).
func Reject(reason string) string {
	if reason == "" {
		return VerbReject
	}
	return VerbReject + " " + reason
}

// Hangup returns the ctl message that tears a conversation down.
func Hangup() string { return VerbHangup }

// Push formats the stream configuration request that pushes a named
// processing module (§2.4.1). The module spec may carry arguments
// after the name — "batch 2048 2ms" — which the stream system hands
// to the module's Open hook.
func Push(module string) string { return VerbPush + " " + module }

// Pop returns the stream request that removes the top module (§2.4.1).
func Pop() string { return VerbPop }

// Promiscuous returns the Ethernet diagnostic request that makes a
// conversation receive a copy of every frame on the wire (§2.2).
func Promiscuous() string { return VerbPromiscuous }

// Trace formats the diagnostic request that arms ("on") or disarms
// ("off") a conversation's event ring, read back through its trace
// file.
func Trace(arg string) string { return VerbTrace + " " + arg }

// Parse splits a ctl message into its verb and argument. The argument
// is trimmed, so "connect  2048 " parses as ("connect", "2048").
func Parse(cmd string) (verb, arg string) {
	verb, arg, _ = strings.Cut(strings.TrimSpace(cmd), " ")
	return verb, strings.TrimSpace(arg)
}
