package netmsg

import "testing"

func TestFormat(t *testing.T) {
	cases := []struct{ got, want string }{
		{Connect("135.104.9.31!564"), "connect 135.104.9.31!564"},
		{ConnectLocal("helix!9fs", "*!0"), "connect helix!9fs *!0"},
		{Announce("*!echo"), "announce *!echo"},
		{Reject("busy"), "reject busy"},
		{Reject(""), "reject"},
		{Hangup(), "hangup"},
		{Push("frame"), "push frame"},
		{Pop(), "pop"},
		{Promiscuous(), "promiscuous"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct{ in, verb, arg string }{
		{"connect 2048", "connect", "2048"},
		{"connect  2048 ", "connect", "2048"},
		{"announce *!564", "announce", "*!564"},
		{"hangup", "hangup", ""},
		{"connect addr local", "connect", "addr local"},
		{"", "", ""},
	}
	for _, c := range cases {
		verb, arg := Parse(c.in)
		if verb != c.verb || arg != c.arg {
			t.Errorf("Parse(%q) = %q, %q; want %q, %q", c.in, verb, arg, c.verb, c.arg)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, msg := range []string{Connect("a!b"), Announce("*!c"), Reject("no"), Push("trace")} {
		verb, arg := Parse(msg)
		if verb+" "+arg != msg {
			t.Errorf("round trip %q -> %q %q", msg, verb, arg)
		}
	}
}
