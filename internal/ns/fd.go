package ns

import (
	"io"
	"sync"

	"repro/internal/vfs"
)

// FD is an open file descriptor in a name space: an offset plus the
// underlying handle. It satisfies io.ReadWriteCloser; device files
// whose contents are streams ignore the offset, so sequential Read and
// Write behave as on a connection.
type FD struct {
	ns    *Namespace
	name  string
	h     vfs.Handle
	dir   vfs.Dir
	isDir bool

	mu     sync.Mutex
	off    int64
	closed bool
}

var _ io.ReadWriteCloser = (*FD)(nil)

// Name returns the canonical path the FD was opened at.
func (fd *FD) Name() string { return fd.name }

// Handle exposes the underlying handle (for offset-addressed I/O).
func (fd *FD) Handle() vfs.Handle { return fd.h }

// Read implements io.Reader at the FD's current offset.
func (fd *FD) Read(p []byte) (int, error) {
	fd.mu.Lock()
	off := fd.off
	fd.mu.Unlock()
	n, err := fd.h.Read(p, off)
	fd.mu.Lock()
	fd.off += int64(n)
	fd.mu.Unlock()
	if n == 0 && err == nil && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// ReadAt reads at an explicit offset without moving the FD offset.
func (fd *FD) ReadAt(p []byte, off int64) (int, error) { return fd.h.Read(p, off) }

// Write implements io.Writer at the FD's current offset.
func (fd *FD) Write(p []byte) (int, error) {
	fd.mu.Lock()
	off := fd.off
	fd.mu.Unlock()
	n, err := fd.h.Write(p, off)
	fd.mu.Lock()
	fd.off += int64(n)
	fd.mu.Unlock()
	return n, err
}

// WriteAt writes at an explicit offset without moving the FD offset.
func (fd *FD) WriteAt(p []byte, off int64) (int, error) { return fd.h.Write(p, off) }

// WriteString writes s.
func (fd *FD) WriteString(s string) (int, error) { return fd.Write([]byte(s)) }

// Seek repositions the offset, as seek(2).
func (fd *FD) Seek(offset int64, whence int) (int64, error) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	switch whence {
	case io.SeekStart:
		fd.off = offset
	case io.SeekCurrent:
		fd.off += offset
	case io.SeekEnd:
		fd.off = fd.dir.Length + offset
	default:
		return 0, vfs.ErrBadArg
	}
	if fd.off < 0 {
		fd.off = 0
		return 0, vfs.ErrBadArg
	}
	return fd.off, nil
}

// ReadDir returns the directory entries when the FD is a directory.
func (fd *FD) ReadDir() ([]vfs.Dir, error) {
	if !fd.isDir {
		return nil, vfs.ErrNotDir
	}
	if dr, ok := fd.h.(vfs.DirReader); ok {
		return dr.ReadDir()
	}
	// Fall back to decoding marshaled records (e.g. via the mount
	// driver, which relays raw directory reads).
	var ents []vfs.Dir
	buf := make([]byte, 16*vfs.DirRecLen)
	off := int64(0)
	for {
		n, err := fd.h.Read(buf, off)
		if err != nil {
			return ents, err
		}
		if n == 0 {
			return ents, nil
		}
		for i := 0; i+vfs.DirRecLen <= n; i += vfs.DirRecLen {
			d, err := vfs.UnmarshalDir(buf[i : i+vfs.DirRecLen])
			if err != nil {
				return ents, err
			}
			ents = append(ents, d)
		}
		off += int64(n - n%vfs.DirRecLen)
	}
}

// Stat returns the entry for the open file, as recorded at open time.
func (fd *FD) Stat() (vfs.Dir, error) { return fd.dir, nil }

// IsDir reports whether the FD is an open directory.
func (fd *FD) IsDir() bool { return fd.isDir }

// Close releases the handle. Closing twice is harmless.
func (fd *FD) Close() error {
	fd.mu.Lock()
	if fd.closed {
		fd.mu.Unlock()
		return nil
	}
	fd.closed = true
	fd.mu.Unlock()
	return fd.h.Close()
}

// unionHandle concatenates the directory listings of union members,
// preserving duplicates as the kernel does.
type unionHandle struct {
	hs []vfs.Handle
}

var (
	_ vfs.Handle    = (*unionHandle)(nil)
	_ vfs.DirReader = (*unionHandle)(nil)
)

// ReadDir implements vfs.DirReader.
func (u *unionHandle) ReadDir() ([]vfs.Dir, error) {
	var all []vfs.Dir
	for _, h := range u.hs {
		if dr, ok := h.(vfs.DirReader); ok {
			ents, err := dr.ReadDir()
			if err != nil {
				continue
			}
			all = append(all, ents...)
			continue
		}
		// Remote member: decode marshaled records.
		buf := make([]byte, 16*vfs.DirRecLen)
		off := int64(0)
		for {
			n, err := h.Read(buf, off)
			if n == 0 || err != nil {
				break
			}
			for i := 0; i+vfs.DirRecLen <= n; i += vfs.DirRecLen {
				d, derr := vfs.UnmarshalDir(buf[i : i+vfs.DirRecLen])
				if derr != nil {
					break
				}
				all = append(all, d)
			}
			off += int64(n - n%vfs.DirRecLen)
		}
	}
	return all, nil
}

// Read implements vfs.Handle over the merged listing.
func (u *unionHandle) Read(p []byte, off int64) (int, error) {
	ents, err := u.ReadDir()
	if err != nil {
		return 0, err
	}
	return vfs.ReadDirAt(ents, p, off)
}

// Write implements vfs.Handle.
func (u *unionHandle) Write(p []byte, off int64) (int, error) { return 0, vfs.ErrIsDir }

// Close implements vfs.Handle.
func (u *unionHandle) Close() error {
	for _, h := range u.hs {
		h.Close()
	}
	return nil
}
