// Package ns implements the per-process name space at the heart of the
// paper (§2.1): a mount table mapping points in a file hierarchy to
// file trees served by kernel devices or remote servers, with Plan 9's
// union-directory semantics (MREPL/MBEFORE/MAFTER/MCREATE). "Each
// process assembles a view of the system by building a name space
// connecting its resources."
//
// Differences from the kernel: mount points are canonical lexical
// paths rather than (device,qid) channel identities — the plan9port
// simplification — and union directory listings preserve duplicates,
// exactly as the paper's "ls /net" transcript shows after an import.
package ns

import (
	"path"
	"strings"
	"sync"

	"repro/internal/vfs"
)

// Mount/bind flags, as in Plan 9's mount(2).
const (
	MREPL   = 0 // replace the mount point
	MBEFORE = 1 // union: search before existing entries
	MAFTER  = 2 // union: search after existing entries
	MORDER  = 3
	MCREATE = 4 // creations happen in this entry
)

// Namespace is one process's view of the system. It is safe for
// concurrent use; Clone gives a copy-on-write-free snapshot for a
// child process.
type Namespace struct {
	mu   sync.RWMutex
	user string
	root vfs.Node
	mnt  map[string][]entry
}

type entry struct {
	node   vfs.Node
	create bool
}

// New returns a name space rooted at root for the given user.
func New(user string, root vfs.Node) *Namespace {
	return &Namespace{user: user, root: root, mnt: make(map[string][]entry)}
}

// User returns the name space owner's name.
func (ns *Namespace) User() string { return ns.user }

// Clone returns an independent copy of the name space, as rfork(RFNAMEG)
// gives a child its own copy of the parent's name space.
func (ns *Namespace) Clone() *Namespace {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	c := New(ns.user, ns.root)
	for p, es := range ns.mnt {
		c.mnt[p] = append([]entry(nil), es...)
	}
	return c
}

// Clean canonicalizes a path within the name space.
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if p[0] != '/' {
		p = "/" + p
	}
	return path.Clean(p)
}

func split(p string) []string {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	return strings.Split(p[1:], "/")
}

// MountNode attaches a served tree (a device root, or a mount-driver
// node speaking 9P to a remote server) at mount point old. A union
// mount (MBEFORE/MAFTER) on a point with no prior mounts seeds the
// union with the underlying directory, so `bind -a` unions with the
// existing contents as in the kernel.
func (ns *Namespace) MountNode(root vfs.Node, old string, flag int) error {
	if root == nil {
		return vfs.ErrBadArg
	}
	old = Clean(old)
	var under vfs.Node
	if flag&MORDER != MREPL {
		ns.mu.RLock()
		_, have := ns.mnt[old]
		ns.mu.RUnlock()
		if !have {
			under, _ = ns.Walk(old)
		}
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if under != nil {
		if _, have := ns.mnt[old]; !have {
			ns.mnt[old] = []entry{{node: under}}
		}
	}
	e := entry{node: root, create: flag&MCREATE != 0}
	switch flag & MORDER {
	case MREPL:
		ns.mnt[old] = []entry{e}
	case MBEFORE:
		ns.mnt[old] = append([]entry{e}, ns.mnt[old]...)
	case MAFTER:
		ns.mnt[old] = append(ns.mnt[old], e)
	default:
		return vfs.ErrBadArg
	}
	return nil
}

// MountDevice attaches dev's tree (per spec) at old.
func (ns *Namespace) MountDevice(dev vfs.Device, spec, old string, flag int) error {
	root, err := dev.Attach(spec)
	if err != nil {
		return err
	}
	return ns.MountNode(root, old, flag)
}

// Bind makes the tree visible at name also visible at old, with union
// semantics controlled by flag, as bind(2) does.
func (ns *Namespace) Bind(name, old string, flag int) error {
	n, err := ns.Walk(name)
	if err != nil {
		return err
	}
	return ns.MountNode(n, old, flag)
}

// Unmount removes all mounts at old. It cannot unmount the root tree.
func (ns *Namespace) Unmount(old string) error {
	old = Clean(old)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if _, ok := ns.mnt[old]; !ok {
		return vfs.ErrNotExist
	}
	delete(ns.mnt, old)
	return nil
}

// candidates returns the union list in effect at canonical path p given
// the node reached by walking, or just {n} when p is not a mount point.
func (ns *Namespace) candidatesLocked(p string, n vfs.Node) []entry {
	if es, ok := ns.mnt[p]; ok {
		return es
	}
	if n == nil {
		return nil
	}
	return []entry{{node: n}}
}

// resolve walks name and returns the union candidate list at the final
// element plus the canonical path.
func (ns *Namespace) resolve(name string) ([]entry, string, error) {
	cname := Clean(name)
	elems := split(cname)
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	cur := ns.candidatesLocked("/", ns.root)
	walked := ""
	var lastErr error
	for _, el := range elems {
		var next vfs.Node
		lastErr = vfs.ErrNotExist
		for _, c := range cur {
			n, err := c.node.Walk(el)
			if err == nil {
				next = n
				break
			}
			lastErr = err
		}
		walked = walked + "/" + el
		if es, ok := ns.mnt[walked]; ok {
			// A mount on this exact path overrides the walk.
			cur = es
			continue
		}
		if next == nil {
			// The path may still lead to a pure mount point
			// deeper down (a device mounted on a name that only
			// exists in the mount table); keep descending with
			// no underlying candidates.
			if ns.mountsUnderLocked(walked) {
				cur = nil
				continue
			}
			return nil, "", lastErr
		}
		cur = []entry{{node: next}}
	}
	if len(cur) == 0 {
		return nil, "", vfs.ErrNotExist
	}
	return cur, cname, nil
}

// mountsUnderLocked reports whether any mount point lies strictly below
// the canonical path p.
func (ns *Namespace) mountsUnderLocked(p string) bool {
	prefix := p + "/"
	for k := range ns.mnt {
		if strings.HasPrefix(k, prefix) {
			return true
		}
	}
	return false
}

// Walk resolves name to the first node in the union at that path.
func (ns *Namespace) Walk(name string) (vfs.Node, error) {
	cands, _, err := ns.resolve(name)
	if err != nil {
		return nil, err
	}
	return cands[0].node, nil
}

// Stat returns the directory entry for name.
func (ns *Namespace) Stat(name string) (vfs.Dir, error) {
	n, err := ns.Walk(name)
	if err != nil {
		return vfs.Dir{}, err
	}
	return n.Stat()
}

// Wstat rewrites the attributes of name.
func (ns *Namespace) Wstat(name string, d vfs.Dir) error {
	n, err := ns.Walk(name)
	if err != nil {
		return err
	}
	w, ok := n.(vfs.Wstater)
	if !ok {
		return vfs.ErrPerm
	}
	return w.Wstat(d)
}

// Remove removes the file at name.
func (ns *Namespace) Remove(name string) error {
	n, err := ns.Walk(name)
	if err != nil {
		return err
	}
	r, ok := n.(vfs.Remover)
	if !ok {
		return vfs.ErrPerm
	}
	return r.Remove()
}

// Open opens name with the given mode and returns an FD.
func (ns *Namespace) Open(name string, mode int) (*FD, error) {
	cands, cname, err := ns.resolve(name)
	if err != nil {
		return nil, err
	}
	// A directory that is a union point reads as the concatenation
	// of its members.
	first := cands[0].node
	d, err := first.Stat()
	if err != nil {
		return nil, err
	}
	if d.IsDir() && len(cands) > 1 {
		if vfs.AccessMode(mode) != vfs.OREAD {
			return nil, vfs.ErrIsDir
		}
		var hs []vfs.Handle
		for _, c := range cands {
			if cd, err := c.node.Stat(); err != nil || !cd.IsDir() {
				continue
			}
			h, err := c.node.Open(vfs.OREAD)
			if err != nil {
				continue
			}
			hs = append(hs, h)
		}
		return &FD{ns: ns, name: cname, h: &unionHandle{hs: hs}, dir: d, isDir: true}, nil
	}
	h, err := first.Open(mode)
	if err != nil {
		return nil, err
	}
	return &FD{ns: ns, name: cname, h: h, dir: d, isDir: d.IsDir()}, nil
}

// Create creates name (a file, or a directory if perm&DMDIR) and opens
// it with mode. In a union, creation goes to the first member mounted
// with MCREATE, as in the kernel.
func (ns *Namespace) Create(name string, perm uint32, mode int) (*FD, error) {
	cname := Clean(name)
	dir, base := path.Split(cname)
	if base == "" || base == "/" {
		return nil, vfs.ErrBadArg
	}
	cands, _, err := ns.resolve(dir)
	if err != nil {
		return nil, err
	}
	var target vfs.Node
	if len(cands) == 1 {
		target = cands[0].node
	} else {
		for _, c := range cands {
			if c.create {
				target = c.node
				break
			}
		}
		if target == nil {
			return nil, vfs.ErrNoCreate
		}
	}
	cr, ok := target.(vfs.Creator)
	if !ok {
		return nil, vfs.ErrPerm
	}
	_, h, err := cr.Create(base, perm, mode)
	if err != nil {
		return nil, err
	}
	d := vfs.Dir{Name: base, Mode: perm}
	return &FD{ns: ns, name: cname, h: h, dir: d, isDir: perm&vfs.DMDIR != 0}, nil
}

// OpenOrCreate opens name for writing, creating it if necessary.
func (ns *Namespace) OpenOrCreate(name string, perm uint32, mode int) (*FD, error) {
	fd, err := ns.Open(name, mode)
	if err == nil {
		return fd, nil
	}
	return ns.Create(name, perm, mode)
}

// ReadFile reads the whole file at name.
func (ns *Namespace) ReadFile(name string) ([]byte, error) {
	fd, err := ns.Open(name, vfs.OREAD)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	var out []byte
	buf := make([]byte, 8192)
	for {
		n, err := fd.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil || n == 0 {
			return out, nil
		}
	}
}

// WriteFile writes data to the file at name, creating or truncating.
func (ns *Namespace) WriteFile(name string, data []byte, perm uint32) error {
	fd, err := ns.Open(name, vfs.OWRITE|vfs.OTRUNC)
	if err != nil {
		fd, err = ns.Create(name, perm, vfs.OWRITE)
		if err != nil {
			return err
		}
	}
	defer fd.Close()
	_, err = fd.Write(data)
	return err
}

// ReadDir lists the directory at name (union members concatenated).
func (ns *Namespace) ReadDir(name string) ([]vfs.Dir, error) {
	fd, err := ns.Open(name, vfs.OREAD)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return fd.ReadDir()
}
