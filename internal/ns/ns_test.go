package ns

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/devtree"
	"repro/internal/ramfs"
	"repro/internal/vfs"
)

func newNS(t *testing.T) (*Namespace, *ramfs.FS) {
	t.Helper()
	fs := ramfs.New("glenda")
	return New("glenda", fs.Root()), fs
}

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"":              "/",
		"/":             "/",
		"net":           "/net",
		"/net/":         "/net",
		"/net/../dev":   "/dev",
		"/a//b/./c":     "/a/b/c",
		"/../..":        "/",
		"/net/tcp/0/..": "/net/tcp",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOpenReadWriteThroughNS(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("dir/file", []byte("hello world"), 0664)
	fd, err := nsp.Open("/dir/file", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 5)
	if _, err := io.ReadFull(fd, b); err != nil || string(b) != "hello" {
		t.Fatalf("read %q, %v", b, err)
	}
	// Sequential reads advance the offset.
	if _, err := io.ReadFull(fd, b); err != nil || string(b) != " worl" {
		t.Fatalf("second read %q, %v", b, err)
	}
	fd.Close()
	if fd.Name() != "/dir/file" {
		t.Errorf("fd name %q", fd.Name())
	}
}

func TestReadAtEOF(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("f", []byte("x"), 0664)
	fd, _ := nsp.Open("/f", vfs.OREAD)
	defer fd.Close()
	b := make([]byte, 4)
	n, _ := fd.Read(b)
	if n != 1 {
		t.Fatalf("first read %d", n)
	}
	if _, err := fd.Read(b); err != io.EOF {
		t.Errorf("EOF read error = %v", err)
	}
}

func TestSeek(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("f", []byte("0123456789"), 0664)
	fd, _ := nsp.Open("/f", vfs.OREAD)
	defer fd.Close()
	if off, _ := fd.Seek(4, io.SeekStart); off != 4 {
		t.Errorf("seek start: %d", off)
	}
	b := make([]byte, 2)
	fd.Read(b)
	if string(b) != "45" {
		t.Errorf("after seek read %q", b)
	}
	if off, _ := fd.Seek(-1, io.SeekCurrent); off != 5 {
		t.Errorf("seek current: %d", off)
	}
	if off, _ := fd.Seek(-2, io.SeekEnd); off != 8 {
		t.Errorf("seek end: %d", off)
	}
	if _, err := fd.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
}

func TestCreateRemoveThroughNS(t *testing.T) {
	nsp, _ := newNS(t)
	fd, err := nsp.Create("/newfile", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	fd.WriteString("data")
	fd.Close()
	b, err := nsp.ReadFile("/newfile")
	if err != nil || string(b) != "data" {
		t.Fatalf("read created file: %q, %v", b, err)
	}
	if err := nsp.Remove("/newfile"); err != nil {
		t.Fatal(err)
	}
	if _, err := nsp.Open("/newfile", vfs.OREAD); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("open after remove = %v", err)
	}
}

func TestWriteFileHelper(t *testing.T) {
	nsp, _ := newNS(t)
	if err := nsp.WriteFile("/f", []byte("one"), 0664); err != nil {
		t.Fatal(err)
	}
	if err := nsp.WriteFile("/f", []byte("2"), 0664); err != nil {
		t.Fatal(err)
	}
	b, _ := nsp.ReadFile("/f")
	if string(b) != "2" {
		t.Errorf("after rewrite %q", b)
	}
}

func TestMountReplacesTree(t *testing.T) {
	nsp, fs := newNS(t)
	fs.MkdirAll("net", 0775)
	other := ramfs.New("glenda")
	other.WriteFile("tcp/clone", nil, 0666)
	if err := nsp.MountNode(other.Root(), "/net", MREPL); err != nil {
		t.Fatal(err)
	}
	if _, err := nsp.Stat("/net/tcp/clone"); err != nil {
		t.Errorf("mounted file missing: %v", err)
	}
}

func TestMountOnNonexistentPoint(t *testing.T) {
	// Mounting on a name that has no underlying file still works:
	// the mount table supplies the tree (used for kernel devices).
	nsp, _ := newNS(t)
	dev := ramfs.New("glenda")
	dev.WriteFile("inside", []byte("ok"), 0664)
	if err := nsp.MountNode(dev.Root(), "/purely/virtual", MREPL); err != nil {
		t.Fatal(err)
	}
	b, err := nsp.ReadFile("/purely/virtual/inside")
	if err != nil || string(b) != "ok" {
		t.Errorf("virtual mount read: %q, %v", b, err)
	}
}

func TestUnionAfterPreservesDuplicatesAndPrecedence(t *testing.T) {
	// Reproduces the paper's §6.1 transcript: import -a musca /net
	// lists /net/cs and /net/dk twice, and local entries supersede
	// remote ones of the same name.
	nsp, fs := newNS(t)
	fs.MkdirAll("net", 0775)
	fs.WriteFile("net/cs", []byte("local-cs"), 0666)
	fs.WriteFile("net/dk", []byte("local-dk"), 0666)

	remote := ramfs.New("musca")
	remote.WriteFile("cs", []byte("remote-cs"), 0666)
	remote.WriteFile("dk", []byte("remote-dk"), 0666)
	remote.WriteFile("tcp", []byte("remote-tcp"), 0666)
	remote.WriteFile("il", []byte("remote-il"), 0666)

	localNet, err := nsp.Walk("/net")
	if err != nil {
		t.Fatal(err)
	}
	if err := nsp.MountNode(localNet, "/net", MREPL); err != nil {
		t.Fatal(err)
	}
	if err := nsp.MountNode(remote.Root(), "/net", MAFTER); err != nil {
		t.Fatal(err)
	}

	ents, err := nsp.ReadDir("/net")
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, e := range ents {
		count[e.Name]++
	}
	if count["cs"] != 2 || count["dk"] != 2 {
		t.Errorf("union listing counts %v, want cs and dk twice", count)
	}
	if count["tcp"] != 1 || count["il"] != 1 {
		t.Errorf("unique remote entries %v", count)
	}
	// Local supersedes remote on walk.
	b, err := nsp.ReadFile("/net/cs")
	if err != nil || string(b) != "local-cs" {
		t.Errorf("/net/cs = %q, %v (want local)", b, err)
	}
	// Unique remote entries are reachable.
	b, err = nsp.ReadFile("/net/tcp")
	if err != nil || string(b) != "remote-tcp" {
		t.Errorf("/net/tcp = %q, %v (want remote)", b, err)
	}
}

func TestUnionBefore(t *testing.T) {
	nsp, fs := newNS(t)
	fs.MkdirAll("bin", 0775)
	fs.WriteFile("bin/tool", []byte("system"), 0775)
	mine := ramfs.New("glenda")
	mine.WriteFile("tool", []byte("mine"), 0775)
	local, _ := nsp.Walk("/bin")
	nsp.MountNode(local, "/bin", MREPL)
	nsp.MountNode(mine.Root(), "/bin", MBEFORE)
	b, err := nsp.ReadFile("/bin/tool")
	if err != nil || string(b) != "mine" {
		t.Errorf("MBEFORE precedence: %q, %v", b, err)
	}
}

func TestUnionCreateFlag(t *testing.T) {
	nsp, fs := newNS(t)
	fs.MkdirAll("u", 0775)
	a := ramfs.New("glenda")
	b := ramfs.New("glenda")
	local, _ := nsp.Walk("/u")
	nsp.MountNode(local, "/u", MREPL)
	nsp.MountNode(a.Root(), "/u", MAFTER) // no MCREATE
	// With no MCREATE member, creation is refused.
	if _, err := nsp.Create("/u/f", 0664, vfs.OWRITE); !vfs.SameError(err, vfs.ErrNoCreate) {
		t.Errorf("create in non-MCREATE union = %v", err)
	}
	nsp.MountNode(b.Root(), "/u", MAFTER|MCREATE)
	fd, err := nsp.Create("/u/f", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	fd.WriteString("x")
	fd.Close()
	if _, err := b.ReadFile("f"); err != nil {
		t.Errorf("creation did not land in MCREATE member: %v", err)
	}
	if _, err := a.ReadFile("f"); err == nil {
		t.Error("creation landed in non-MCREATE member")
	}
}

func TestBind(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("dev/eia1", []byte("uart"), 0666)
	if err := nsp.Bind("/dev", "/serial", MREPL); err != nil {
		t.Fatal(err)
	}
	b, err := nsp.ReadFile("/serial/eia1")
	if err != nil || string(b) != "uart" {
		t.Errorf("bound read %q, %v", b, err)
	}
	if err := nsp.Bind("/missing", "/x", MREPL); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("bind missing source = %v", err)
	}
}

func TestUnmount(t *testing.T) {
	nsp, fs := newNS(t)
	fs.MkdirAll("mnt", 0775)
	other := ramfs.New("u")
	other.WriteFile("f", []byte("1"), 0664)
	nsp.MountNode(other.Root(), "/mnt", MREPL)
	if _, err := nsp.ReadFile("/mnt/f"); err != nil {
		t.Fatal(err)
	}
	if err := nsp.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	if _, err := nsp.ReadFile("/mnt/f"); err == nil {
		t.Error("file visible after unmount")
	}
	if err := nsp.Unmount("/mnt"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("double unmount = %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	nsp, fs := newNS(t)
	fs.MkdirAll("net", 0775)
	child := nsp.Clone()
	other := ramfs.New("u")
	other.WriteFile("f", []byte("child-only"), 0664)
	child.MountNode(other.Root(), "/net", MREPL)
	if _, err := child.ReadFile("/net/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := nsp.ReadFile("/net/f"); err == nil {
		t.Error("child mount leaked into parent name space")
	}
	if child.User() != "glenda" {
		t.Errorf("clone user %q", child.User())
	}
}

func TestMountUnderMount(t *testing.T) {
	nsp, _ := newNS(t)
	outer := ramfs.New("u")
	outer.MkdirAll("sub", 0775)
	inner := ramfs.New("u")
	inner.WriteFile("deep", []byte("d"), 0664)
	nsp.MountNode(outer.Root(), "/m", MREPL)
	nsp.MountNode(inner.Root(), "/m/sub", MREPL)
	b, err := nsp.ReadFile("/m/sub/deep")
	if err != nil || string(b) != "d" {
		t.Errorf("nested mount read %q, %v", b, err)
	}
}

func TestStatAndWstatThroughNS(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("f", []byte("abc"), 0664)
	d, err := nsp.Stat("/f")
	if err != nil || d.Length != 3 {
		t.Fatalf("stat %+v, %v", d, err)
	}
	if err := nsp.Wstat("/f", vfs.Dir{Name: "g"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nsp.Stat("/g"); err != nil {
		t.Errorf("renamed via wstat missing: %v", err)
	}
}

func TestDirFDReadDirAndRawRead(t *testing.T) {
	nsp, fs := newNS(t)
	fs.WriteFile("d/one", nil, 0664)
	fs.WriteFile("d/two", nil, 0664)
	fd, err := nsp.Open("/d", vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if !fd.IsDir() {
		t.Error("directory fd not marked as dir")
	}
	ents, err := fd.ReadDir()
	if err != nil || len(ents) != 2 {
		t.Fatalf("ReadDir %v, %v", ents, err)
	}
	buf := make([]byte, 4*vfs.DirRecLen)
	n, err := fd.Read(buf)
	if err != nil || n != 2*vfs.DirRecLen {
		t.Errorf("raw dir read = %d, %v", n, err)
	}
}

func TestDevtreeUnderNS(t *testing.T) {
	// A synthetic device mounts and reads like any file tree.
	ctlLog := ""
	ctl := &devtree.FileNode{
		Entry: devtree.MkFile("ctl", "net", 0666),
		OpenFn: func(mode int) (vfs.Handle, error) {
			return &devtree.CtlHandle{
				Cmd: func(cmd string) error { ctlLog = cmd; return nil },
				Get: func() (string, error) { return "7", nil },
			}, nil
		},
	}
	status := devtree.TextFile(devtree.MkFile("status", "net", 0444),
		func() (string, error) { return "Established", nil })
	dir := devtree.StaticDir(devtree.MkDir("x", "net", 0555),
		map[string]vfs.Node{"ctl": ctl, "status": status}, []string{"ctl", "status"})

	nsp, _ := newNS(t)
	nsp.MountNode(dir, "/net/x", MREPL)
	fd, err := nsp.Open("/net/x/ctl", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	fd.WriteString("b1200\n")
	if ctlLog != "b1200" {
		t.Errorf("ctl cmd %q", ctlLog)
	}
	b := make([]byte, 8)
	n, _ := fd.ReadAt(b, 0)
	if string(b[:n]) != "7" {
		t.Errorf("ctl read %q", b[:n])
	}
	fd.Close()
	b2, err := nsp.ReadFile("/net/x/status")
	if err != nil || string(b2) != "Established" {
		t.Errorf("status %q, %v", b2, err)
	}
	ents, _ := nsp.ReadDir("/net/x")
	if len(ents) != 2 || ents[0].Name != "ctl" {
		t.Errorf("device dir entries %+v", ents)
	}
}

// Property: Clean is idempotent, always absolute, and never emits "."
// or ".." components.
func TestCleanQuick(t *testing.T) {
	f := func(parts []string) bool {
		p := strings.Join(parts, "/")
		c := Clean(p)
		if c == "" || c[0] != '/' {
			return false
		}
		if Clean(c) != c {
			return false
		}
		for _, el := range strings.Split(c[1:], "/") {
			if el == "." || el == ".." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
