package ns

import (
	"repro/internal/vfs"
)

// PathNode is a vfs.Node that resolves every operation through a name
// space. It is what exportfs serves: walking a PathNode consults the
// exporting process's mount table at every level, so a remote client
// sees the exporter's composed view — mounts, unions, and all. This is
// the mechanism behind the paper's §6.1 gateway example, where
// importing /net from a machine brings over everything mounted there.
type PathNode struct {
	nsp  *Namespace
	path string
}

var (
	_ vfs.Node    = PathNode{}
	_ vfs.Creator = PathNode{}
	_ vfs.Remover = PathNode{}
	_ vfs.Wstater = PathNode{}
)

// NodeAt returns a namespace-resolving node for path.
func NodeAt(nsp *Namespace, path string) PathNode {
	return PathNode{nsp: nsp, path: Clean(path)}
}

// Path returns the canonical path the node resolves.
func (n PathNode) Path() string { return n.path }

// Stat implements vfs.Node.
func (n PathNode) Stat() (vfs.Dir, error) { return n.nsp.Stat(n.path) }

// Walk implements vfs.Node, resolving through the mount table.
func (n PathNode) Walk(name string) (vfs.Node, error) {
	child := Clean(n.path + "/" + name)
	if _, err := n.nsp.Walk(child); err != nil {
		return nil, err
	}
	return PathNode{nsp: n.nsp, path: child}, nil
}

// Open implements vfs.Node; union directories open as their merged
// listing, exactly as a local process sees them.
func (n PathNode) Open(mode int) (vfs.Handle, error) {
	fd, err := n.nsp.Open(n.path, mode)
	if err != nil {
		return nil, err
	}
	return fdHandle{fd: fd}, nil
}

// Create implements vfs.Creator.
func (n PathNode) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	child := Clean(n.path + "/" + name)
	fd, err := n.nsp.Create(child, perm, mode)
	if err != nil {
		return nil, nil, err
	}
	return PathNode{nsp: n.nsp, path: child}, fdHandle{fd: fd}, nil
}

// Remove implements vfs.Remover.
func (n PathNode) Remove() error { return n.nsp.Remove(n.path) }

// Wstat implements vfs.Wstater.
func (n PathNode) Wstat(d vfs.Dir) error { return n.nsp.Wstat(n.path, d) }

// fdHandle adapts an FD to the offset-addressed vfs.Handle interface.
type fdHandle struct{ fd *FD }

var (
	_ vfs.Handle    = fdHandle{}
	_ vfs.DirReader = fdHandle{}
	_ vfs.Stable    = fdHandle{}
)

// Stable forwards vfs.Stable from the resolved handle, so a cache
// above a PathNode (exportfs's ccache layer) can tell stored bytes
// from live device files through the name-space indirection. A handle
// that doesn't declare itself defaults to unstable — the safe side.
func (h fdHandle) Stable() bool {
	if s, ok := h.fd.Handle().(vfs.Stable); ok {
		return s.Stable()
	}
	return false
}

// Read implements vfs.Handle.
func (h fdHandle) Read(p []byte, off int64) (int, error) { return h.fd.ReadAt(p, off) }

// Write implements vfs.Handle.
func (h fdHandle) Write(p []byte, off int64) (int, error) { return h.fd.WriteAt(p, off) }

// Close implements vfs.Handle.
func (h fdHandle) Close() error { return h.fd.Close() }

// ReadDir implements vfs.DirReader.
func (h fdHandle) ReadDir() ([]vfs.Dir, error) { return h.fd.ReadDir() }
