package ns

import (
	"testing"

	"repro/internal/ramfs"
	"repro/internal/vfs"
)

// PathNode resolves through the mount table on every operation; these
// tests drive it directly (exportfs drives it remotely).

func pathNodeNS(t *testing.T) (*Namespace, *ramfs.FS) {
	t.Helper()
	fs := ramfs.New("u")
	nsp := New("u", fs.Root())
	return nsp, fs
}

func TestPathNodeWalkStat(t *testing.T) {
	nsp, fs := pathNodeNS(t)
	fs.WriteFile("a/b", []byte("xy"), 0664)
	root := NodeAt(nsp, "/")
	if root.Path() != "/" {
		t.Errorf("root path %q", root.Path())
	}
	n, err := root.Walk("a")
	if err != nil {
		t.Fatal(err)
	}
	bn, err := n.Walk("b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := bn.Stat()
	if err != nil || d.Name != "b" || d.Length != 2 {
		t.Errorf("stat %+v, %v", d, err)
	}
	if _, err := root.Walk("zz"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("missing walk = %v", err)
	}
}

func TestPathNodeFollowsMounts(t *testing.T) {
	nsp, _ := pathNodeNS(t)
	dev := ramfs.New("u")
	dev.WriteFile("inside", []byte("dev"), 0664)
	nsp.MountNode(dev.Root(), "/mnt", MREPL)
	root := NodeAt(nsp, "/")
	mn, err := root.Walk("mnt")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := mn.Walk("inside")
	if err != nil {
		t.Fatal(err)
	}
	h, err := fn.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 8)
	n, _ := h.Read(buf, 0)
	if string(buf[:n]) != "dev" {
		t.Errorf("mounted read %q", buf[:n])
	}
}

func TestPathNodeOpenUnionDir(t *testing.T) {
	nsp, fs := pathNodeNS(t)
	fs.WriteFile("u/local", nil, 0664)
	other := ramfs.New("u")
	other.WriteFile("remote", nil, 0664)
	nsp.MountNode(other.Root(), "/u", MAFTER)
	un := NodeAt(nsp, "/u")
	h, err := un.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ents, err := h.(vfs.DirReader).ReadDir()
	if err != nil || len(ents) != 2 {
		t.Errorf("union entries %v, %v", ents, err)
	}
}

func TestPathNodeCreateRemoveWstat(t *testing.T) {
	nsp, fs := pathNodeNS(t)
	fs.MkdirAll("d", 0775)
	dn := NodeAt(nsp, "/d")
	nn, h, err := dn.Create("f", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("by node"), 0)
	h.Close()
	if b, _ := fs.ReadFile("d/f"); string(b) != "by node" {
		t.Errorf("created %q", b)
	}
	if err := nn.(vfs.Wstater).Wstat(vfs.Dir{Name: "g"}); err != nil {
		t.Fatal(err)
	}
	gn := NodeAt(nsp, "/d/g")
	if err := gn.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("d/g"); err == nil {
		t.Error("remove did not land")
	}
}

func TestFDHandleAdapters(t *testing.T) {
	nsp, fs := pathNodeNS(t)
	fs.WriteFile("f", []byte("0123456789"), 0664)
	n := NodeAt(nsp, "/f")
	h, err := n.Open(vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 4)
	rn, err := h.Read(buf, 6)
	if err != nil || string(buf[:rn]) != "6789" {
		t.Errorf("offset read %q, %v", buf[:rn], err)
	}
	if _, err := h.Write([]byte("AB"), 2); err != nil {
		t.Fatal(err)
	}
	b, _ := fs.ReadFile("f")
	if string(b) != "01AB456789" {
		t.Errorf("offset write result %q", b)
	}
}

func TestNamespaceOpenCreateErrors(t *testing.T) {
	nsp, fs := pathNodeNS(t)
	fs.WriteFile("plain", nil, 0664)
	// Create under a file fails.
	if _, err := nsp.Create("/plain/child", 0664, vfs.OWRITE); err == nil {
		t.Error("create under plain file succeeded")
	}
	// Create at the root path fails.
	if _, err := nsp.Create("/", 0664, vfs.OWRITE); err == nil {
		t.Error("create of root succeeded")
	}
	// Remove/wstat on nodes lacking the interface.
	if err := nsp.Remove("/nothing"); err == nil {
		t.Error("remove of missing path succeeded")
	}
	// Seek whence garbage.
	fd, _ := nsp.Open("/plain", vfs.OREAD)
	defer fd.Close()
	if _, err := fd.Seek(0, 99); err == nil {
		t.Error("bad whence accepted")
	}
}

func TestOpenOrCreate(t *testing.T) {
	nsp, _ := pathNodeNS(t)
	fd, err := nsp.OpenOrCreate("/made", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	fd.WriteString("1")
	fd.Close()
	fd, err = nsp.OpenOrCreate("/made", 0664, vfs.OWRITE)
	if err != nil {
		t.Fatal(err)
	}
	fd.Close()
}
