// Package leakcheck is the runtime half of the repo's goroutine-leak
// discipline (netvet is the static half). A test that spins up stream
// queues, protocol engines, or a whole paper-world must wind every
// goroutine down when its machines close; a survivor either wedges a
// later test or hides a real shutdown bug. Check diffs the live
// goroutine set against the module's own code paths after the test
// body returns, giving stragglers a grace period to finish parking
// out of existence.
//
// Usage, one line per test:
//
//	defer leakcheck.Check(t)
//
// or one gate for a whole package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxWait bounds how long a lingering goroutine is given to exit
// before it is declared leaked. Shutdown in this module is
// asynchronous (close-wakes propagate through queues and conds), so
// the checker polls with backoff instead of failing on first sight.
// A variable, not a constant, so the self-test can shorten it.
var maxWait = 5 * time.Second

// Check fails t if goroutines running module code are still alive
// once the grace period lapses. Defer it first thing in the test so
// it runs after the test's own cleanup (world Close, conn Close).
func Check(t testing.TB) {
	t.Helper()
	if leaked := wait(); len(leaked) > 0 {
		t.Errorf("leaked %d goroutine(s):\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// Main wraps m.Run for packages that prefer a single gate at process
// exit over per-test checks.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := wait(); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: leaked %d goroutine(s):\n\n%s\n", len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls for the interesting set to drain, with exponential
// backoff up to maxWait, and returns whatever is left.
func wait() []string {
	//netvet:ignore realtime polls the real runtime for goroutine exit
	deadline := time.Now().Add(maxWait)
	delay := time.Millisecond
	for {
		leaked := interesting()
		if len(leaked) == 0 || time.Now().After(deadline) { //netvet:ignore realtime polls the real runtime for goroutine exit
			return leaked
		}
		//netvet:ignore realtime polls the real runtime for goroutine exit
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// interesting snapshots every goroutine and keeps the ones running
// (or created by) this module's code. The calling goroutine, other
// tests' tRunner goroutines, and runtime/testing machinery are not
// ours to account for.
func interesting() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	records := strings.Split(string(buf[:n]), "\n\n")
	var out []string
	for i, rec := range records {
		if i == 0 {
			continue // the goroutine calling Check
		}
		if !strings.Contains(rec, "repro/internal/") && !strings.Contains(rec, "repro/cmd/") {
			continue
		}
		if strings.Contains(rec, "testing.tRunner") {
			continue // a (parallel) test body, joined by the framework
		}
		out = append(out, rec)
	}
	return out
}
