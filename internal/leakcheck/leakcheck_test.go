package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB records the failure Check reports instead of failing the
// real test.
type fakeTB struct {
	testing.TB
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func TestCleanRunPasses(t *testing.T) {
	f := &fakeTB{}
	Check(f)
	if f.failed {
		t.Fatalf("clean run flagged as leaking:\n%s", f.msg)
	}
}

func leakyPump(stop chan struct{}) { <-stop }

func TestCatchesLeakAndNamesIt(t *testing.T) {
	old := maxWait
	maxWait = 200 * time.Millisecond
	defer func() { maxWait = old }()

	stop := make(chan struct{})
	go leakyPump(stop)
	f := &fakeTB{}
	Check(f)
	close(stop)
	if !f.failed {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(f.msg, "leakyPump") {
		t.Errorf("report does not name the leaking function:\n%s", f.msg)
	}
}

func TestGracePeriodCoversLateExits(t *testing.T) {
	stop := make(chan struct{})
	go leakyPump(stop)
	// The pump exits only after Check has started polling.
	time.AfterFunc(50*time.Millisecond, func() { close(stop) })
	f := &fakeTB{}
	Check(f)
	if f.failed {
		t.Fatalf("goroutine that exits within the grace period flagged:\n%s", f.msg)
	}
}
