package ccache

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the whole package behind the goroutine-leak check:
// every goroutine running module code must be gone when the tests
// are done.
func TestMain(m *testing.M) { leakcheck.Main(m) }
