// Package ccache is the gateway's cfs: a write-through read cache
// interposed between an export and its backing tree, in the style of
// the Plan 9 caching file system. Data is held in pooled, refcounted
// blocks at fragment granularity and keyed by (qid.path, offset);
// qid.vers is the freshness token — every open and stat revalidates,
// and a version move drops the file's fragments (the cfs rule:
// consistency is checked on open, not on every read). Writes go
// through to the backing tree and invalidate the fragments they
// overlap.
//
// Because fragments are refcounted blocks, a cached fragment serves
// any number of concurrent reads zero-copy: each reply takes a
// block.Ref and drops it after marshaling, so one tenant's 8K read
// and a thousand others' cost the same single fill of the backing
// tree.
//
// Only handles that declare vfs.Stable are cached. Live device files
// — stream data files, ctl files, synthesized stats — never are:
// their reads consume or compute, and caching them would corrupt the
// conversation. That is what lets the same cache sit under a gateway
// exporting /net.
package ccache

import (
	"sync"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/vfs"
)

// Defaults.
const (
	// DefaultFragSize is the fragment granularity; exportfs passes the
	// 9P MAXFDATA so a windowed client's aligned reads hit whole
	// fragments.
	DefaultFragSize = 8192
	// DefaultMaxBytes bounds the cache when the config doesn't.
	DefaultMaxBytes = 4 << 20
)

// Config sizes a cache.
type Config struct {
	// MaxBytes bounds resident fragment bytes; 0 means
	// DefaultMaxBytes.
	MaxBytes int64
	// FragSize is the fragment granularity; 0 means DefaultFragSize.
	FragSize int
}

// Cache is one gateway's shared read cache. All methods are safe for
// concurrent use; eviction is strict LRU over fragments, so identical
// request sequences leave identical cache states (virtual-time storms
// stay deterministic).
type Cache struct {
	frag int
	max  int64

	mu    sync.Mutex
	files map[uint64]*cfile
	lru   fragList
	size  int64

	// Counters for the stats file.
	Hits          obs.Counter // reads served from a resident fragment
	Misses        obs.Counter // reads that had to fill from backing
	Stores        obs.Counter // fragments inserted
	Evictions     obs.Counter // fragments dropped by the byte bound
	Invalidations obs.Counter // fragments dropped by writes or version moves
}

// cfile is one cached file: its fragments, and the qid.vers they were
// valid for.
type cfile struct {
	path  uint64
	vers  uint32
	frags map[int64]*cfrag
}

// cfrag is one resident fragment. b holds the cache's own reference;
// readers take their own with Ref, so an evicted fragment's bytes
// survive until the last reply has marshaled.
type cfrag struct {
	f          *cfile
	off        int64
	b          *block.Block
	prev, next *cfrag
}

// fragList is the LRU list: most recently used at the back, a
// sentinel-free intrusive list.
type fragList struct {
	head, tail *cfrag
}

func (l *fragList) pushBack(fr *cfrag) {
	fr.prev, fr.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = fr
	} else {
		l.head = fr
	}
	l.tail = fr
}

func (l *fragList) remove(fr *cfrag) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		l.head = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		l.tail = fr.prev
	}
	fr.prev, fr.next = nil, nil
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.FragSize <= 0 {
		cfg.FragSize = DefaultFragSize
	}
	return &Cache{
		frag:  cfg.FragSize,
		max:   cfg.MaxBytes,
		files: make(map[uint64]*cfile),
	}
}

// StatsGroup returns the cache's counters as a renderable stats group.
func (c *Cache) StatsGroup() *obs.Group {
	g := &obs.Group{}
	g.AddCounter("cache-hits", &c.Hits)
	g.AddCounter("cache-misses", &c.Misses)
	g.AddCounter("cache-stores", &c.Stores)
	g.AddCounter("cache-evictions", &c.Evictions)
	g.AddCounter("cache-invalidations", &c.Invalidations)
	g.Add("cache-bytes", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.size
	})
	return g
}

// WrapNode interposes the cache on a served tree: the returned node
// walks, stats, and opens through n, revalidating the cache against
// every qid it sees, and opens of stable plain files come back as
// caching handles.
func (c *Cache) WrapNode(n vfs.Node) vfs.Node {
	return cnode{c: c, n: n}
}

// noteVersion is the cfs invalidation rule: entry points that learn a
// file's current qid (walk via the server's stat, stat, open) report
// it here, and a version move drops every fragment cached under the
// old one.
func (c *Cache) noteVersion(path uint64, vers uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.files[path]
	if f == nil {
		return
	}
	if f.vers != vers {
		c.dropFileLocked(f)
		f.vers = vers
	}
}

// dropFileLocked frees every fragment of f. Callers hold c.mu.
func (c *Cache) dropFileLocked(f *cfile) {
	for off, fr := range f.frags {
		c.lru.remove(fr)
		c.size -= int64(c.frag)
		c.Invalidations.Inc()
		fr.b.Free()
		delete(f.frags, off)
	}
}

// invalidateRange drops the fragments overlapping [off, off+n) — the
// write-through half of the protocol: the backing tree has the new
// bytes, the stale fragments must not serve another read.
func (c *Cache) invalidateRange(path uint64, off, n int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.files[path]
	if f == nil {
		return
	}
	first := off - off%int64(c.frag)
	for fo := first; fo < off+n; fo += int64(c.frag) {
		if fr := f.frags[fo]; fr != nil {
			c.lru.remove(fr)
			c.size -= int64(c.frag)
			c.Invalidations.Inc()
			fr.b.Free()
			delete(f.frags, fo)
		}
	}
}

// lookup returns a referenced block and window for the fragment at
// fo, or nil on a miss. The ref is the caller's to Free.
func (c *Cache) lookup(path uint64, fo int64) (*block.Block, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.files[path]
	if f == nil {
		return nil, nil
	}
	fr := f.frags[fo]
	if fr == nil {
		return nil, nil
	}
	c.lru.remove(fr)
	c.lru.pushBack(fr)
	return fr.b.Ref(), fr.b.Bytes()
}

// insert stores b as the fragment at (path, fo), taking ownership of
// the caller's reference; it returns a separate reference and window
// for the caller to serve from. If a concurrent filler won the race,
// the newcomer is freed and the resident fragment served instead —
// last fill does not clobber the LRU position of a fragment already
// hot.
//
//netvet:owns b
func (c *Cache) insert(path uint64, vers uint32, fo int64, b *block.Block) (*block.Block, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.files[path]
	if f == nil {
		f = &cfile{path: path, vers: vers, frags: make(map[int64]*cfrag)}
		c.files[path] = f
	}
	if fr := f.frags[fo]; fr != nil {
		b.Free()
		return fr.b.Ref(), fr.b.Bytes()
	}
	fr := &cfrag{f: f, off: fo, b: b}
	f.frags[fo] = fr
	c.lru.pushBack(fr)
	c.size += int64(c.frag)
	c.Stores.Inc()
	for c.size > c.max && c.lru.head != nil && c.lru.head != fr {
		victim := c.lru.head
		c.lru.remove(victim)
		c.size -= int64(c.frag)
		c.Evictions.Inc()
		victim.b.Free()
		delete(victim.f.frags, victim.off)
		if len(victim.f.frags) == 0 {
			delete(c.files, victim.f.path)
		}
	}
	return fr.b.Ref(), fr.b.Bytes()
}
