package ccache

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/vfs"
)

// Extend the test backing with directory behavior, controllable stat
// failures, and failing reads, to reach the interposition layer's
// error and pass-through branches.

var errBacking = errors.New("backing tree says no")

func (n *memNode) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	child := newMemNode(nil)
	n.mu.Lock()
	if n.children == nil {
		n.children = make(map[string]*memNode)
	}
	n.children[name] = child
	n.mu.Unlock()
	return child, &memHandle{n: child}, nil
}

func (n *memNode) Remove() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.removed = true
	return nil
}

func (n *memNode) Wstat(d vfs.Dir) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.data = nil
	n.qid.Vers++
	return nil
}

func TestNodeInterposition(t *testing.T) {
	c := New(Config{FragSize: 4096})
	dir := newMemNode(nil)
	dir.qid.Type = vfs.QTDIR
	wn := c.WrapNode(dir)

	// Create through the wrapped directory: the child's node and
	// handle both come back interposed.
	cn, ch, err := wn.(vfs.Creator).Create("f", 0664, vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cn.(cnode); !ok {
		t.Fatalf("created node is %T, want cnode", cn)
	}
	if _, ok := ch.(*chandle); !ok {
		t.Fatalf("created handle is %T, want caching handle", ch)
	}
	if _, err := ch.Write([]byte("created bytes"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n, err := ch.Read(buf, 0); err != nil || string(buf[:n]) != "created bytes" {
		t.Fatalf("read through created handle: %q, %v", buf[:n], err)
	}
	ch.Close()

	// Walk revalidates through Stat and keeps the interposition.
	walked, err := wn.Walk("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := walked.(cnode); !ok {
		t.Fatalf("walked node is %T, want cnode", walked)
	}
	if _, err := walked.Stat(); err != nil {
		t.Fatal(err)
	}
	if _, err := wn.Walk("missing"); err == nil {
		t.Fatal("walk of missing child succeeded")
	}

	// Wstat can truncate, so it drops the file's fragments.
	if c.Stores.Load() == 0 {
		t.Fatal("create+read did not populate the cache")
	}
	if err := walked.(vfs.Wstater).Wstat(vfs.Dir{}); err != nil {
		t.Fatal(err)
	}
	misses := c.Misses.Load()
	h2, err := walked.Open(vfs.OREAD)
	if err != nil {
		t.Fatal(err)
	}
	h2.Read(buf, 0)
	h2.Close()
	if c.Misses.Load() == misses {
		t.Error("read after wstat served a stale fragment")
	}

	// Remove drops whatever is cached for the file.
	if err := walked.(vfs.Remover).Remove(); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	left := len(c.files)
	c.mu.Unlock()
	if left != 0 {
		t.Errorf("%d files still cached after remove+wstat", left)
	}

	// A backing node without the mutating interfaces yields ErrPerm
	// through the wrapper, not a panic.
	un := c.WrapNode(unstableNode{newMemNode(nil)})
	if _, _, err := un.(vfs.Creator).Create("x", 0, 0); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("create on non-creator = %v", err)
	}
	if err := un.(vfs.Remover).Remove(); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("remove on non-remover = %v", err)
	}
	if err := un.(vfs.Wstater).Wstat(vfs.Dir{}); !errors.Is(err, vfs.ErrPerm) {
		t.Errorf("wstat on non-wstater = %v", err)
	}
}

func TestWrapHandleDeclines(t *testing.T) {
	c := New(Config{})
	// A directory qid never caches, even with a Stable handle.
	dir := newMemNode([]byte("dirent bytes"))
	dir.qid.Type = vfs.QTDIR
	if h := c.wrapHandle(dir, &memHandle{n: dir}); h != nil {
		if _, ok := h.(*chandle); ok {
			t.Error("directory handle was wrapped for caching")
		}
	}
	// A failing stat declines too: without a qid there is no key.
	bad := newMemNode(nil)
	bad.statErr = errBacking
	if h := c.wrapHandle(bad, &memHandle{n: bad}); h != nil {
		if _, ok := h.(*chandle); ok {
			t.Error("stat-less handle was wrapped for caching")
		}
	}
}

func TestReadBlockEdges(t *testing.T) {
	c := New(Config{FragSize: 4096})
	n := newMemNode([]byte("short tail"))
	h := openCached(t, c, n)
	defer h.Close()
	ch := h.(*chandle)

	// Nonsense requests decline rather than error.
	if b, _, err := ch.ReadBlock(0, 0); b != nil || err != nil {
		t.Errorf("count 0: block %v err %v", b, err)
	}
	if b, _, err := ch.ReadBlock(10, -1); b != nil || err != nil {
		t.Errorf("negative offset: block %v err %v", b, err)
	}
	// A read past EOF inside the short tail fragment serves an empty
	// answer from cache memory.
	b, data, err := ch.ReadBlock(10, 100)
	if err != nil || b == nil || len(data) != 0 {
		t.Fatalf("past-EOF read: block %v data %d err %v", b, len(data), err)
	}
	b.Free()

	// A failing backing read surfaces as an error, not a cached lie.
	bad := newMemNode(nil)
	bad.readErr = errBacking
	hb := openCached(t, c, bad)
	defer hb.Close()
	if _, _, err := hb.(*chandle).ReadBlock(10, 0); !errors.Is(err, errBacking) {
		t.Errorf("failing backing: %v", err)
	}
	if n, err := hb.Read(make([]byte, 10), 0); n != 0 || !errors.Is(err, errBacking) {
		t.Errorf("failing backing via copy path: %d, %v", n, err)
	}
}

func TestReadPartialThenError(t *testing.T) {
	const frag = 4096
	c := New(Config{FragSize: frag})
	n := newMemNode(bytes.Repeat([]byte("z"), frag))
	h := openCached(t, c, n)
	defer h.Close()
	// Prime fragment 0, then make the backing fail: a multi-fragment
	// read returns the bytes it got, error suppressed until nothing
	// was read.
	if _, err := h.Read(make([]byte, frag), 0); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.readErr = errBacking
	n.mu.Unlock()
	got, err := h.Read(make([]byte, 2*frag), 0)
	if err != nil || got != frag {
		t.Errorf("partial read: %d, %v; want %d, nil", got, err, frag)
	}
}

func TestInsertRaceKeepsResident(t *testing.T) {
	c := New(Config{FragSize: 512})
	fill := func(seed byte) *block.Block {
		b := block.Alloc(512, 0)
		for i := range b.Bytes() {
			b.Bytes()[i] = seed
		}
		return b
	}
	// Two fillers race the same fragment: the first one in stays, the
	// loser's block is freed and the resident's bytes are served.
	r1, d1 := c.insert(1, 0, 0, fill(0xAA))
	r2, d2 := c.insert(1, 0, 0, fill(0xBB))
	if d1[0] != 0xAA || d2[0] != 0xAA {
		t.Errorf("resident lost the race: %x then %x", d1[0], d2[0])
	}
	if c.Stores.Load() != 1 {
		t.Errorf("stores %d, want 1", c.Stores.Load())
	}
	r1.Free()
	r2.Free()
}

func TestInvalidateMissesAreQuiet(t *testing.T) {
	c := New(Config{FragSize: 512})
	// Nothing cached: every invalidation entry point is a no-op.
	c.invalidateRange(99, 0, 100)
	c.invalidateRange(99, 0, 0)
	c.noteVersion(99, 7)
	c.drop(99)
	if c.Invalidations.Load() != 0 {
		t.Errorf("invalidations %d on an empty cache", c.Invalidations.Load())
	}
}

func TestStatsGroupRender(t *testing.T) {
	c := New(Config{FragSize: 4096})
	n := newMemNode([]byte("statful"))
	h := openCached(t, c, n)
	h.Read(make([]byte, 16), 0)
	h.Close()
	text := c.StatsGroup().Render()
	for _, want := range []string{"cache-hits", "cache-misses", "cache-stores",
		"cache-evictions", "cache-invalidations", "cache-bytes: 4096"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats missing %q:\n%s", want, text)
		}
	}
}
