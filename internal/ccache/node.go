package ccache

import (
	"repro/internal/block"
	"repro/internal/vfs"
)

// cnode interposes the cache on one node of the served tree. Stats
// and opens revalidate (noteVersion); opens of stable plain files
// come back as caching handles; everything else passes through.
type cnode struct {
	c *Cache
	n vfs.Node
}

var (
	_ vfs.Node    = cnode{}
	_ vfs.Creator = cnode{}
	_ vfs.Remover = cnode{}
	_ vfs.Wstater = cnode{}
)

// Stat implements vfs.Node, revalidating the cache against the qid it
// returns. The 9P server stats after every walk (for the Rwalk qid),
// so walk, stat, and open all pass through here — the issue's
// "invalidated by qid.vers on walk/stat/open" in one place.
func (n cnode) Stat() (vfs.Dir, error) {
	d, err := n.n.Stat()
	if err != nil {
		return d, err
	}
	n.c.noteVersion(d.Qid.Path, d.Qid.Vers)
	return d, nil
}

// Walk implements vfs.Node, keeping the cache interposed on the
// walked-to node.
func (n cnode) Walk(name string) (vfs.Node, error) {
	child, err := n.n.Walk(name)
	if err != nil {
		return nil, err
	}
	return cnode{c: n.c, n: child}, nil
}

// Open implements vfs.Node. A stable plain file opens as a caching
// handle; directories and device files open straight through.
func (n cnode) Open(mode int) (vfs.Handle, error) {
	h, err := n.n.Open(mode)
	if err != nil {
		return nil, err
	}
	return n.c.wrapHandle(n.n, h), nil
}

// Create implements vfs.Creator; a fresh file's handle is cacheable
// like an opened one.
func (n cnode) Create(name string, perm uint32, mode int) (vfs.Node, vfs.Handle, error) {
	cr, ok := n.n.(vfs.Creator)
	if !ok {
		return nil, nil, vfs.ErrPerm
	}
	child, h, err := cr.Create(name, perm, mode)
	if err != nil {
		return nil, nil, err
	}
	wrapped := cnode{c: n.c, n: child}
	return wrapped, n.c.wrapHandle(child, h), nil
}

// Remove implements vfs.Remover, dropping whatever the cache holds
// for the removed file.
func (n cnode) Remove() error {
	d, derr := n.n.Stat()
	rm, ok := n.n.(vfs.Remover)
	if !ok {
		return vfs.ErrPerm
	}
	if err := rm.Remove(); err != nil {
		return err
	}
	if derr == nil {
		n.c.drop(d.Qid.Path)
	}
	return nil
}

// Wstat implements vfs.Wstater. Attribute rewrite can truncate, so
// the file's fragments go.
func (n cnode) Wstat(d vfs.Dir) error {
	old, derr := n.n.Stat()
	w, ok := n.n.(vfs.Wstater)
	if !ok {
		return vfs.ErrPerm
	}
	if err := w.Wstat(d); err != nil {
		return err
	}
	if derr == nil {
		n.c.drop(old.Qid.Path)
	}
	return nil
}

// drop removes every fragment of path.
func (c *Cache) drop(path uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.files[path]; f != nil {
		c.dropFileLocked(f)
		delete(c.files, path)
	}
}

// wrapHandle returns a caching handle when h is a stable plain file,
// and h itself otherwise.
func (c *Cache) wrapHandle(n vfs.Node, h vfs.Handle) vfs.Handle {
	s, ok := h.(vfs.Stable)
	if !ok || !s.Stable() {
		return h
	}
	d, err := n.Stat()
	if err != nil || d.Qid.Type != vfs.QTFILE {
		return h
	}
	c.noteVersion(d.Qid.Path, d.Qid.Vers)
	return &chandle{c: c, h: h, path: d.Qid.Path, vers: d.Qid.Vers}
}

// chandle is an open caching handle over a stable plain file.
type chandle struct {
	c    *Cache
	h    vfs.Handle
	path uint64
	vers uint32
}

// ReadBlock serves a read as a referenced cache fragment — the
// zero-copy path the 9P server takes for its Rread. A request that
// does not land inside one fragment declines (nil block, nil error)
// and the server falls back to the copy path; the windowed mount
// driver's aligned MAXFDATA reads always land.
func (h *chandle) ReadBlock(count int, off int64) (*block.Block, []byte, error) {
	frag := int64(h.c.frag)
	if count <= 0 || off < 0 {
		return nil, nil, nil
	}
	fo := off - off%frag
	if off+int64(count) > fo+frag {
		return nil, nil, nil
	}
	b, data, err := h.fragment(fo)
	if err != nil || b == nil {
		return nil, nil, err
	}
	i := int(off - fo)
	if i >= len(data) {
		// Read at or past EOF within a short tail fragment: an
		// empty Rread, served without touching the backing tree.
		return b, nil, nil
	}
	end := i + count
	if end > len(data) {
		end = len(data)
	}
	return b, data[i:end], nil
}

// fragment returns a referenced block holding the fragment at fo,
// filling it from the backing handle on a miss. A fragment at or past
// EOF comes back empty but real, so repeated EOF probes stay hits.
func (h *chandle) fragment(fo int64) (*block.Block, []byte, error) {
	if b, data := h.c.lookup(h.path, fo); b != nil {
		h.c.Hits.Inc()
		return b, data, nil
	}
	h.c.Misses.Inc()
	// Fill outside the cache lock: the backing read may be slow, and
	// concurrent misses on other fragments must not serialize behind
	// it. Two fillers racing on one fragment both read the backing;
	// insert keeps the first and frees the loser.
	b := block.Alloc(h.c.frag, 0)
	n, err := h.h.Read(b.Bytes(), fo)
	if err != nil {
		b.Free()
		return nil, nil, err
	}
	b.Trim(h.c.frag - n)
	// Empty fragments are cached like any other: when the file length
	// is an exact multiple of the fragment size, EOF is only
	// discoverable by reading one fragment past the end, and a
	// windowed client probes there on every transfer — a thousand
	// tenants' EOF probes must hit the cache, not re-read the backing
	// tree. The LRU bounds them and a version move drops them, same as
	// data fragments.
	ref, data := h.c.insert(h.path, h.vers, fo, b)
	return ref, data, nil
}

// Read implements vfs.Handle through the cache: each touched fragment
// is served resident or filled, then copied into p. The copy path
// serves unaligned and straddling reads; the server's Rread fast path
// uses ReadBlock instead.
func (h *chandle) Read(p []byte, off int64) (int, error) {
	frag := int64(h.c.frag)
	total := 0
	for len(p) > 0 {
		fo := off - off%frag
		b, data, err := h.fragment(fo)
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		if b == nil {
			break
		}
		i := int(off - fo)
		if i >= len(data) {
			b.Free()
			break
		}
		n := copy(p, data[i:])
		b.Free()
		total += n
		off += int64(n)
		p = p[n:]
		if i+n < h.c.frag {
			// Short fragment: end of file.
			break
		}
	}
	return total, nil
}

// Write implements vfs.Handle: write-through. The backing tree takes
// the bytes; the fragments they overlap are dropped so no stale read
// survives the write.
func (h *chandle) Write(p []byte, off int64) (int, error) {
	n, err := h.h.Write(p, off)
	if n > 0 {
		h.c.invalidateRange(h.path, off, int64(n))
	}
	return n, err
}

// Close implements vfs.Handle; the cache keeps the file's fragments
// for the next tenant.
func (h *chandle) Close() error { return h.h.Close() }
