package ccache

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/block"
	"repro/internal/vfs"
)

// memNode is a controllable backing file: stable contents, a version
// that moves on write, and a counter of backing reads so tests can
// prove a hit never touched the tree.
type memNode struct {
	mu       sync.Mutex
	data     []byte
	qid      vfs.Qid
	children map[string]*memNode
	statErr  error // when set, Stat fails
	readErr  error // when set, backing reads fail
	removed  bool

	reads atomic.Int64
}

func newMemNode(data []byte) *memNode {
	return &memNode{data: data, qid: vfs.Qid{Path: vfs.NewQidPath(), Type: vfs.QTFILE}}
}

func (n *memNode) Stat() (vfs.Dir, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.statErr != nil {
		return vfs.Dir{}, n.statErr
	}
	return vfs.Dir{Name: "mem", Qid: n.qid, Mode: 0666, Length: int64(len(n.data))}, nil
}

func (n *memNode) Walk(name string) (vfs.Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c := n.children[name]; c != nil {
		return c, nil
	}
	return nil, vfs.ErrNotExist
}

func (n *memNode) Open(mode int) (vfs.Handle, error) { return &memHandle{n: n}, nil }

type memHandle struct{ n *memNode }

func (h *memHandle) Stable() bool { return true }

func (h *memHandle) Read(p []byte, off int64) (int, error) {
	h.n.reads.Add(1)
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	if h.n.readErr != nil {
		return 0, h.n.readErr
	}
	if off >= int64(len(h.n.data)) {
		return 0, nil
	}
	return copy(p, h.n.data[off:]), nil
}

func (h *memHandle) Write(p []byte, off int64) (int, error) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	if need := off + int64(len(p)); need > int64(len(h.n.data)) {
		grown := make([]byte, need)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	copy(h.n.data[off:], p)
	h.n.qid.Vers++
	return len(p), nil
}

func (h *memHandle) Close() error { return nil }

// pattern fills n bytes with a deterministic byte sequence.
func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i*7)
	}
	return p
}

// openCached wraps n in c and opens it as a caching handle.
func openCached(t *testing.T, c *Cache, n vfs.Node) vfs.Handle {
	t.Helper()
	h, err := c.WrapNode(n).Open(vfs.ORDWR)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, ok := h.(*chandle); !ok {
		t.Fatalf("open returned %T, want caching handle", h)
	}
	return h
}

func TestCacheHitSkipsBacking(t *testing.T) {
	c := New(Config{FragSize: 8192})
	n := newMemNode(pattern(8192, 1))
	h1 := openCached(t, c, n)
	defer h1.Close()

	b1, data1, err := h1.(*chandle).ReadBlock(8192, 0)
	if err != nil || b1 == nil {
		t.Fatalf("first ReadBlock: %v block %v", err, b1)
	}
	if !bytes.Equal(data1, n.data) {
		t.Fatalf("first read returned wrong bytes")
	}
	b1.Free()
	backing := n.reads.Load()

	// A second tenant opens the same file; its read must come out of
	// the cache without a single backing read.
	h2 := openCached(t, c, n)
	defer h2.Close()
	b2, data2, err := h2.(*chandle).ReadBlock(8192, 0)
	if err != nil || b2 == nil {
		t.Fatalf("second ReadBlock: %v block %v", err, b2)
	}
	if !bytes.Equal(data2, n.data) {
		t.Fatalf("cached read returned wrong bytes")
	}
	b2.Free()
	if got := n.reads.Load(); got != backing {
		t.Fatalf("cache hit touched the backing tree: %d reads, want %d", got, backing)
	}
	if c.Hits.Load() != 1 || c.Misses.Load() != 1 {
		t.Fatalf("hits %d misses %d, want 1/1", c.Hits.Load(), c.Misses.Load())
	}
}

func TestWriteThroughInvalidates(t *testing.T) {
	c := New(Config{FragSize: 8192})
	n := newMemNode(pattern(8192, 1))
	h := openCached(t, c, n)
	defer h.Close()

	buf := make([]byte, 8192)
	if _, err := h.Read(buf, 0); err != nil {
		t.Fatalf("prime: %v", err)
	}
	if _, err := h.Write([]byte("fresh"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The backing tree has the bytes (write-through)...
	if !bytes.Equal(n.data[:5], []byte("fresh")) {
		t.Fatalf("write did not reach backing: %q", n.data[:5])
	}
	// ...and the overlapped fragment is gone, so the next read
	// re-fills and sees them.
	if c.Invalidations.Load() == 0 {
		t.Fatalf("write did not invalidate")
	}
	m, err := h.Read(buf, 0)
	if err != nil || m < 5 {
		t.Fatalf("reread: %d %v", m, err)
	}
	if !bytes.Equal(buf[:5], []byte("fresh")) {
		t.Fatalf("stale read after write-through: %q", buf[:5])
	}
}

func TestVersionMoveDropsFragments(t *testing.T) {
	c := New(Config{FragSize: 8192})
	n := newMemNode(pattern(8192, 1))
	h := openCached(t, c, n)
	buf := make([]byte, 8192)
	h.Read(buf, 0)
	h.Close()

	// The file changes behind the cache's back (a local process on
	// the exporter): vers moves, contents change.
	n.mu.Lock()
	copy(n.data, []byte("behind your back"))
	n.qid.Vers++
	n.mu.Unlock()

	// The cfs rule: the next open revalidates and drops the stale
	// fragments.
	h2 := openCached(t, c, n)
	defer h2.Close()
	if c.Invalidations.Load() == 0 {
		t.Fatalf("version move did not invalidate")
	}
	m, err := h2.Read(buf, 0)
	if err != nil || m == 0 {
		t.Fatalf("reread: %d %v", m, err)
	}
	if !bytes.HasPrefix(buf[:m], []byte("behind your back")) {
		t.Fatalf("read served stale fragment: %q", buf[:16])
	}
}

func TestEvictionHoldsByteBound(t *testing.T) {
	const frag = 4096
	c := New(Config{FragSize: frag, MaxBytes: 2 * frag})
	n := newMemNode(pattern(8*frag, 3))
	h := openCached(t, c, n)
	defer h.Close()

	buf := make([]byte, frag)
	for off := int64(0); off < 8*frag; off += frag {
		if _, err := h.Read(buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
	}
	if c.Evictions.Load() != 6 {
		t.Fatalf("evictions %d, want 6", c.Evictions.Load())
	}
	c.mu.Lock()
	size := c.size
	c.mu.Unlock()
	if size > 2*frag {
		t.Fatalf("resident %d bytes, bound %d", size, 2*frag)
	}
	// The evicted head fragment re-reads correctly (a fresh miss).
	misses := c.Misses.Load()
	if _, err := h.Read(buf, 0); err != nil {
		t.Fatalf("reread evicted: %v", err)
	}
	if !bytes.Equal(buf, pattern(8*frag, 3)[:frag]) {
		t.Fatalf("evicted fragment reread wrong bytes")
	}
	if c.Misses.Load() != misses+1 {
		t.Fatalf("reread of evicted fragment was not a miss")
	}
}

func TestRefcountedFanoutSurvivesInvalidation(t *testing.T) {
	c := New(Config{FragSize: 8192})
	n := newMemNode(pattern(100, 5))
	h := openCached(t, c, n)
	defer h.Close()

	b, data, err := h.(*chandle).ReadBlock(100, 0)
	if err != nil || b == nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	want := append([]byte(nil), data...)
	// The fragment is dropped while the reply still references it;
	// the bytes must stay valid until the reference drops.
	c.drop(n.qid.Path)
	if !bytes.Equal(data, want) {
		t.Fatalf("evicted fragment mutated under a live reference")
	}
	b.Free()
}

func TestStraddlingAndUnalignedReads(t *testing.T) {
	const frag = 4096
	c := New(Config{FragSize: frag})
	content := pattern(3*frag+123, 9)
	n := newMemNode(content)
	h := openCached(t, c, n)
	defer h.Close()

	// A straddling ReadBlock declines; the copy path serves it.
	if b, _, err := h.(*chandle).ReadBlock(frag, frag/2); err != nil || b != nil {
		t.Fatalf("straddling ReadBlock: block %v err %v, want decline", b, err)
	}
	buf := make([]byte, len(content)+500)
	m, err := h.Read(buf, 1)
	if err != nil {
		t.Fatalf("unaligned read: %v", err)
	}
	if !bytes.Equal(buf[:m], content[1:]) {
		t.Fatalf("unaligned read wrong: got %d bytes", m)
	}
	// Read at EOF is empty, not an error.
	if m, err := h.Read(buf, int64(len(content))); m != 0 || err != nil {
		t.Fatalf("read at EOF: %d %v", m, err)
	}
}

func TestUnstableHandleNotCached(t *testing.T) {
	c := New(Config{})
	n := newMemNode(pattern(10, 1))
	// A device-style handle that does not declare vfs.Stable must
	// pass through unwrapped.
	h, err := c.WrapNode(unstableNode{n}).Open(vfs.OREAD)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, ok := h.(*chandle); ok {
		t.Fatalf("unstable handle was wrapped for caching")
	}
}

// unstableNode opens handles without the Stable marker.
type unstableNode struct{ n *memNode }

func (u unstableNode) Stat() (vfs.Dir, error)             { return u.n.Stat() }
func (u unstableNode) Walk(name string) (vfs.Node, error) { return u.n.Walk(name) }
func (u unstableNode) Open(mode int) (vfs.Handle, error) {
	return unstableHandle{&memHandle{n: u.n}}, nil
}

type unstableHandle struct{ h *memHandle }

func (u unstableHandle) Read(p []byte, off int64) (int, error)  { return u.h.Read(p, off) }
func (u unstableHandle) Write(p []byte, off int64) (int, error) { return u.h.Write(p, off) }
func (u unstableHandle) Close() error                           { return u.h.Close() }

func TestAllocsCacheHitReadBlock(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	c := New(Config{FragSize: 8192})
	n := newMemNode(pattern(8192, 2))
	h := openCached(t, c, n)
	defer h.Close()
	ch := h.(*chandle)
	b, _, err := ch.ReadBlock(8192, 0)
	if err != nil || b == nil {
		t.Fatalf("prime: %v", err)
	}
	b.Free()
	// The hit path — the one a thousand tenants ride — is
	// allocation-free: lookup, Ref, sub-window.
	allocs := testing.AllocsPerRun(200, func() {
		b, _, err := ch.ReadBlock(8192, 0)
		if err != nil || b == nil {
			t.Fatalf("hit: %v", err)
		}
		b.Free()
	})
	if allocs != 0 {
		t.Fatalf("cache-hit ReadBlock allocates %.1f/op, want 0", allocs)
	}
}
