package streams

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// pairThrough builds a sender and receiver stream with the same module
// specs pushed (bottom-up order), wiring the sender's device output
// into the receiver's device input — a loopback conversation.
func pairThrough(t *testing.T, specs ...string) (tx, rx *Stream) {
	t.Helper()
	rx = New(0, nil)
	tx = New(0, func(b *Block) {
		if b.Type == BlockData {
			rx.DeviceUpData(b.Buf)
		}
		b.Free()
	})
	for _, spec := range specs {
		if err := tx.WriteCtl("push " + spec); err != nil {
			t.Fatalf("tx push %q: %v", spec, err)
		}
		if err := rx.WriteCtl("push " + spec); err != nil {
			t.Fatalf("rx push %q: %v", spec, err)
		}
	}
	return tx, rx
}

func TestCompressRoundTripThroughPair(t *testing.T) {
	tx, rx := pairThrough(t, "compress")
	defer tx.Close()
	defer rx.Close()
	msgs := [][]byte{
		bytes.Repeat([]byte("Twalk fid 7 /usr/glenda "), 40),
		[]byte("short"),
		bytes.Repeat([]byte{0xAA}, 10_000),
	}
	for _, m := range msgs {
		if _, err := tx.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64*1024)
	for i, want := range msgs {
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], want) {
			t.Fatalf("msg %d: %d bytes out, %d in", i, n, len(want))
		}
	}
	// The conversation's bill must balance on both ends.
	txs := moduleSnapshot(t, tx)
	rxs := moduleSnapshot(t, rx)
	if txs["compress-saved-bytes"]+txs["compress-wire-bytes"] != txs["compress-bytes-in"] {
		t.Fatalf("sender identity broken: %+v", txs)
	}
	if txs["compress-saved-bytes"] <= 0 {
		t.Fatal("repetitive traffic saved nothing")
	}
	if rxs["compress-dec-frames"] != txs["compress-blocks-in"] {
		t.Fatalf("decoded %d frames, sent %d", rxs["compress-dec-frames"], txs["compress-blocks-in"])
	}
	if rxs["compress-dec-bytes"] != txs["compress-bytes-in"] {
		t.Fatalf("decoded %d bytes, sent %d", rxs["compress-dec-bytes"], txs["compress-bytes-in"])
	}
	if rxs["compress-dec-wire-bytes"] != txs["compress-wire-bytes"] {
		t.Fatalf("wire bytes disagree across the pair")
	}
}

func TestCompressIncompressiblePassthrough(t *testing.T) {
	tx, rx := pairThrough(t, "compress")
	defer tx.Close()
	defer rx.Close()
	rnd := make([]byte, 8192)
	rand.New(rand.NewSource(42)).Read(rnd)
	if _, err := tx.Write(rnd); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(rnd))
	if n, err := rx.Read(buf); err != nil || !bytes.Equal(buf[:n], rnd) {
		t.Fatalf("random payload mangled (n=%d err=%v)", n, err)
	}
	st := moduleSnapshot(t, tx)
	if st["compress-passthrough"] != 1 {
		t.Fatalf("passthrough %d, want 1", st["compress-passthrough"])
	}
	// Stored frames save nothing but also cost nothing beyond the header.
	if st["compress-saved-bytes"] != 0 || st["compress-wire-bytes"] != int64(len(rnd)) {
		t.Fatalf("stored frame accounting: %+v", st)
	}
	if st["compress-hdr-bytes"] != compressHdrLen {
		t.Fatalf("hdr bytes %d", st["compress-hdr-bytes"])
	}
}

func TestCompressChunkedReassembly(t *testing.T) {
	// Capture real wire frames, then replay them under hostile
	// chunkings into a fresh decoder.
	var wire []byte
	tx := New(0, func(b *Block) {
		if b.Type == BlockData {
			wire = append(wire, b.Buf...)
		}
		b.Free()
	})
	if err := tx.WriteCtl("push compress"); err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{
		bytes.Repeat([]byte("cache coherent "), 30),
		[]byte("x"),
		bytes.Repeat([]byte("0123456789abcdef"), 100),
	}
	for _, m := range msgs {
		tx.Write(m)
	}
	tx.Close()
	for _, chunk := range []int{1, 2, 3, 7, 11, 64, 1000, len(wire)} {
		rx := New(0, nil)
		if err := rx.WriteCtl("push compress"); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			rx.DeviceUpData(wire[off:end])
		}
		buf := make([]byte, 64*1024)
		for i, want := range msgs {
			n, err := rx.Read(buf)
			if err != nil {
				t.Fatalf("chunk %d msg %d: %v", chunk, i, err)
			}
			if !bytes.Equal(buf[:n], want) {
				t.Fatalf("chunk %d msg %d mangled", chunk, i)
			}
		}
		rx.Close()
	}
}

func TestCompressStrictDecoder(t *testing.T) {
	inject := func(t *testing.T, frame []byte) map[string]int64 {
		t.Helper()
		rx := New(0, nil)
		defer rx.Close()
		if err := rx.WriteCtl("push compress"); err != nil {
			t.Fatal(err)
		}
		rx.DeviceUpData(frame)
		if _, err := rx.Read(make([]byte, 64)); err == nil {
			t.Fatal("read succeeded past a poisoned decoder")
		}
		return moduleSnapshot(t, rx)
	}
	hdr := func(flags byte, ulen, clen uint32, payload []byte) []byte {
		f := make([]byte, compressHdrLen+len(payload))
		f[0] = compressMagic
		f[1] = flags
		binary.BigEndian.PutUint32(f[2:6], ulen)
		binary.BigEndian.PutUint32(f[6:10], clen)
		copy(f[compressHdrLen:], payload)
		return f
	}
	cases := map[string][]byte{
		"bad magic":          {0x00, 0x01, 0, 0, 0, 4, 0, 0, 0, 4, 'a', 'b', 'c', 'd'},
		"unknown flag":       hdr(0x80, 4, 4, []byte("abcd")),
		"decompression bomb": hdr(cflagLZ|cflagDelim, 1<<31-1, 4, []byte("abcd")),
		"stored len lies":    hdr(cflagDelim, 8, 4, []byte("abcd")),
		"corrupt lz":         hdr(cflagLZ|cflagDelim, 100, 4, []byte{0xF0, 0xFF, 0xFF, 0xFF}),
	}
	for name, frame := range cases {
		t.Run(name, func(t *testing.T) {
			st := inject(t, frame)
			if st["compress-dec-errs"] != 1 {
				t.Fatalf("dec-errs %d, want 1", st["compress-dec-errs"])
			}
		})
	}
}

func TestCompressRejectsArgs(t *testing.T) {
	s := New(0, nil)
	defer s.Close()
	if err := s.WriteCtl("push compress loud"); err == nil {
		t.Fatal("compress accepted an argument")
	}
}

func TestBatchAndCompressStacked(t *testing.T) {
	// The production stack: compress near the device, batch on top.
	// Small messages coalesce into one window, the window compresses
	// once, and the receiver inverts both — bytes and boundaries intact.
	tx, rx := pairThrough(t, "compress", "batch 512 1h")
	defer rx.Close()
	var msgs [][]byte
	for i := 0; i < 40; i++ {
		m := bytes.Repeat([]byte("Tread fid 9 off 8192 "), 1+i%3)
		m = append(m, byte(i))
		msgs = append(msgs, m)
		if _, err := tx.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	groups := tx.ModuleStats() // groups outlive the pops in Close
	tx.Close()                 // drains the final window through the pop path
	buf := make([]byte, 64*1024)
	for i, want := range msgs {
		n, err := rx.Read(buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], want) {
			t.Fatalf("msg %d mangled through the stack", i)
		}
	}
	txs := map[string]int64{}
	for _, g := range groups {
		for k, v := range g.Snapshot() {
			txs[k] = v
		}
	}
	if txs["compress-saved-bytes"] <= 0 {
		t.Fatal("coalesced windows should compress well")
	}
	if txs["batch-wire-blocks"] != txs["compress-blocks-in"] {
		t.Fatalf("batch emitted %d blocks, compress saw %d",
			txs["batch-wire-blocks"], txs["compress-blocks-in"])
	}
}
