// Package streams implements the Plan 9 stream mechanism of §2.4: "a
// bidirectional channel connecting a physical or pseudo-device to user
// processes", built from a linear list of processing modules, each a
// pair of queues with put routines for the two directions.
//
// Faithful properties:
//
//   - Information travels as linked blocks carrying data or control.
//   - A put routine usually calls the next module's put directly, so
//     "most data is output without context switching"; modules that
//     need asynchrony (protocol engines) queue blocks and run helper
//     goroutines, the analogue of kernel processes.
//   - Writes of up to MaxBlock (32K) bytes occupy a single block and
//     the last block of a write carries a delimiter flag.
//   - A per-stream read lock ensures one reader at a time and that the
//     bytes read are contiguous; reads stop at a delimiter.
//   - Streams are dynamically configurable: the control interface
//     interprets "push <module>", "pop", and "hangup", and passes other
//     control blocks to the modules.
//   - There is no implicit synchronization between concurrent users
//     beyond the queue locks, as in the kernel.
package streams

import (
	"errors"
	"sync"

	"repro/internal/block"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// MaxBlock is the largest block a single write produces; writes of
// less than this are guaranteed to be contained by a single block
// (§2.4.1).
const MaxBlock = 32 * 1024

// DefaultLimit is the default queue limit in bytes before writers
// block for flow control.
const DefaultLimit = 128 * 1024

// Block types.
const (
	BlockData = iota
	BlockCtl
	BlockHangup
)

// Block is the unit of information in a stream (§2.4): a type, state
// flags, and a buffer holding data or control information.
//
// A data block is usually a thin wrapper over a pooled block.Block:
// Buf is the readable window and the wrapper owns one reference to the
// underlying buffer. Whoever consumes a block — the read path, a
// module that absorbs it, a queue discarding it — calls Free to
// recycle the buffer. Blocks built around plain slices (control
// blocks, foreign buffers) work identically; Free just leaves them to
// the garbage collector.
type Block struct {
	next  *Block
	Type  int
	Delim bool
	Buf   []byte
	inner *block.Block
	// stamp is the DeviceUp time (UnixNano) when residency sampling
	// is enabled, zero otherwise.
	stamp int64
}

// NewBlock returns a data block holding a copy of p, drawn from the
// block pool with header headroom. This is the mandatory copy at the
// user-write boundary: the caller keeps p, the stream owns the block.
func NewBlock(p []byte) *Block {
	bb := block.Copy(p, block.DefaultHeadroom)
	return &Block{Type: BlockData, Buf: bb.Bytes(), inner: bb}
}

// NewBlockOwned wraps an already-owned pooled block as a stream data
// block without copying; ownership of bb transfers to the stream.
//
//netvet:owns bb
func NewBlockOwned(bb *block.Block) *Block {
	return &Block{Type: BlockData, Buf: bb.Bytes(), inner: bb}
}

// NewCtlBlock returns a control block carrying an ASCII command.
func NewCtlBlock(cmd string) *Block {
	return &Block{Type: BlockCtl, Buf: []byte(cmd), Delim: true}
}

// Free releases the block's buffer back to the pool. The caller must
// be the block's sole owner and must not touch b or b.Buf afterwards.
// Blocks not backed by the pool are simply dropped.
func (b *Block) Free() {
	bb := b.inner
	b.inner = nil
	b.Buf = nil
	if bb != nil {
		bb.Free()
	}
}

// TakeInner strips the wrapper and returns the underlying pooled
// block, aligned to the wrapper's current window, for device ends that
// hand the payload onward in block form. A plain-slice block is
// wrapped without copying. b is dead afterwards.
func (b *Block) TakeInner() *block.Block {
	bb := b.inner
	if bb == nil {
		return block.FromBytes(b.Buf)
	}
	b.inner = nil
	// Readers consume only from the front, so Buf is a suffix of the
	// inner window; realign rather than trust stale offsets.
	bb.Consume(bb.Len() - len(b.Buf))
	b.Buf = nil
	return bb
}

// PutFunc is a module's put routine for one direction. It runs on the
// caller's goroutine; it may enqueue locally, forward with q.PutNext,
// or both.
type PutFunc func(q *Queue, b *Block)

// Qinfo describes a stream processing module, as the kernel's Qinfo
// does: a name for push(2), open/close hooks, and the two put routines.
type Qinfo struct {
	Name string
	// Open is called when an instance is created; q is the instance's
	// upstream (toward-process) queue, q.Other() the downstream one.
	Open func(q *Queue, arg any) error
	// Close is called when the instance is destroyed (stream close or
	// pop), on the upstream queue. It must stop helper goroutines.
	Close func(q *Queue)
	// Drain, if set, is called on the upstream queue while the module
	// is still spliced and the stream's config lock is held exclusively
	// (no put chain in flight). The module must emit any data it is
	// holding — coalesced-but-unflushed blocks — down the chain, so a
	// pop never drops or reorders data relative to later writes. It
	// must not block on upstream flow control.
	Drain func(q *Queue)
	// Iput processes blocks moving upstream (toward the process).
	Iput PutFunc
	// Oput processes blocks moving downstream (toward the device).
	Oput PutFunc
}

var (
	modmu    sync.RWMutex
	registry = map[string]*Qinfo{}
)

// Register makes a module available to "push name" control requests.
func Register(qi *Qinfo) {
	modmu.Lock()
	defer modmu.Unlock()
	registry[qi.Name] = qi
}

// Lookup finds a registered module.
func Lookup(name string) (*Qinfo, bool) {
	modmu.RLock()
	defer modmu.RUnlock()
	qi, ok := registry[name]
	return qi, ok
}

// Errors.
var (
	ErrHungup       = vfs.ErrHungup
	ErrClosed       = errors.New("stream closed")
	ErrUnknownMod   = errors.New("push: unknown stream module")
	ErrNothingToPop = errors.New("pop: no module to pop")
	ErrBadModArg    = errors.New("push: bad module argument")
)

// Queue is one direction of one module instance: a bounded block list
// plus the module's put routine. The pair (q, q.other) represents the
// instance; Aux carries its state.
type Queue struct {
	s     *Stream
	qi    *Qinfo
	up    bool // direction: true = toward process
	put   PutFunc
	next  *Queue // next queue in this direction
	other *Queue // reverse-direction queue of the same instance

	mu     sync.Mutex
	rwait  vclock.Cond // readers waiting for blocks
	wwait  vclock.Cond // writers waiting for space
	first  *Block
	last   *Block
	nbytes int
	limit  int
	closed bool
	hungup bool
	Aux    any
}

func newQueue(s *Stream, qi *Qinfo, up bool, put PutFunc) *Queue {
	q := &Queue{s: s, qi: qi, up: up, put: put, limit: s.limit}
	q.rwait.Init(s.clk, &q.mu)
	q.wwait.Init(s.clk, &q.mu)
	return q
}

// Stream returns the stream the queue belongs to.
func (q *Queue) Stream() *Stream { return q.s }

// Other returns the reverse-direction queue of the same instance.
func (q *Queue) Other() *Queue { return q.other }

// Put hands a block to this queue's put routine on the caller's
// goroutine — the fundamental stream operation.
//
//netvet:owns b
func (q *Queue) Put(b *Block) { q.put(q, b) }

// PutNext forwards a block to the next module in this direction; put
// routines use it to continue the chain ("the first put routine calls
// the second, the second calls the third, and so on").
//
//netvet:owns b
func (q *Queue) PutNext(b *Block) {
	if n := q.next; n != nil {
		n.put(n, b)
	}
}

// Enqueue adds a block to the queue's local list, blocking while the
// queue is over its limit (flow control), and wakes readers. Hangup
// blocks mark the queue so readers drain and then see EOF.
//
//netvet:owns b
func (q *Queue) Enqueue(b *Block) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b.Type == BlockHangup {
		q.hungup = true
		q.rwait.Broadcast()
		q.wwait.Broadcast()
		b.Free() // consumed here like any other block, not just dropped
		return
	}
	for q.nbytes >= q.limit && !q.closed && !q.hungup {
		q.wwait.Wait()
	}
	if q.closed {
		b.Free() // data discarded on a dying stream
		return
	}
	b.next = nil
	if q.last == nil {
		q.first = b
	} else {
		q.last.next = b
	}
	q.last = b
	q.nbytes += len(b.Buf)
	q.rwait.Broadcast()
}

// Get removes and returns the next block, blocking until one arrives,
// the queue hangs up (nil, ErrHungup after draining), or the stream
// closes (nil, ErrClosed).
func (q *Queue) Get() (*Block, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.first == nil {
		if q.closed {
			return nil, ErrClosed
		}
		if q.hungup {
			return nil, ErrHungup
		}
		q.rwait.Wait()
	}
	b := q.dequeueLocked()
	return b, nil
}

// TryGet removes the next block without blocking.
func (q *Queue) TryGet() *Block {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.first == nil {
		return nil
	}
	return q.dequeueLocked()
}

func (q *Queue) dequeueLocked() *Block {
	b := q.first
	q.first = b.next
	if q.first == nil {
		q.last = nil
	}
	b.next = nil
	q.nbytes -= len(b.Buf)
	q.wwait.Broadcast()
	return b
}

// putback returns a partially-consumed block to the head of the queue.
// It must wake waiting readers just as Enqueue does: the block it
// re-heads is readable data, and a second reader parked in Get would
// otherwise sleep through it until unrelated traffic arrived.
//
//netvet:owns b
func (q *Queue) putback(b *Block) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b.next = q.first
	q.first = b
	if q.last == nil {
		q.last = b
	}
	q.nbytes += len(b.Buf)
	q.rwait.Broadcast()
}

// Len returns the number of bytes queued locally.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.nbytes
}

// Hungup reports whether a hangup has passed through the queue.
func (q *Queue) Hungup() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hungup
}

// close marks the queue dead and wakes all waiters.
func (q *Queue) close() {
	q.mu.Lock()
	q.closed = true
	q.rwait.Broadcast()
	q.wwait.Broadcast()
	q.mu.Unlock()
}

// PutQ is the default put routine for a queueing module side: it
// enqueues locally for a helper process (or the user read path) to
// consume later.
//
//netvet:owns b
func PutQ(q *Queue, b *Block) { q.Enqueue(b) }

// PassPut forwards every block to the next module unchanged — the
// identity processing module side.
//
//netvet:owns b
func PassPut(q *Queue, b *Block) { q.PutNext(b) }
