package streams

import (
	"errors"
	"sync"
)

// An LZ77 byte-oriented codec for the compress stream module, in the
// LZ4 block style: a sequence is a token byte (high nibble literal
// count, low nibble match length - 4), length extension bytes of 255,
// the literals, then a 2-byte little-endian match offset. The final
// sequence is literals only (match nibble 0, no offset). Matches are
// at least 4 bytes and offsets reach at most 64K - 1 back, so the
// format is self-contained per block and the decoder needs no history
// beyond its own output.
//
// The encoder is deterministic: a fixed hash table size, a fixed hash
// multiplier, and greedy forward parsing mean the same input always
// produces the same output — required by the same-seed chaos gates,
// which pin module traffic byte for byte.

const (
	lzMinMatch  = 4
	lzHashBits  = 13
	lzHashSize  = 1 << lzHashBits
	lzMaxOffset = 1<<16 - 1
	// lzMaxExpand caps the uncompressed size a frame may declare: a
	// strict bound so a corrupt or hostile header cannot balloon the
	// decoder's allocation (the largest legitimate payload is a batch
	// window's worth of MaxBlock writes, far under this).
	lzMaxExpand = 1 << 20
)

var errLZCorrupt = errors.New("lz: corrupt compressed data")

// Hash tables are recycled: 32 KB apiece, and one is live only for the
// duration of a single lzCompress call.
var lzTablePool = sync.Pool{
	New: func() any { return new([lzHashSize]int32) },
}

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func lzLoad32(p []byte, i int) uint32 {
	return uint32(p[i]) | uint32(p[i+1])<<8 | uint32(p[i+2])<<16 | uint32(p[i+3])<<24
}

// lzAppendLen appends an LZ4-style extended length (n >= 15 spills
// into 255-run continuation bytes).
func lzAppendLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// lzCompress appends the compressed form of src to dst and returns the
// extended slice. Positions in the hash table are stored +1 so the
// zeroed table reads as empty.
func lzCompress(dst, src []byte) []byte {
	table := lzTablePool.Get().(*[lzHashSize]int32)
	*table = [lzHashSize]int32{}
	defer lzTablePool.Put(table)

	var lit int // start of the pending literal run
	i := 0
	// The last lzMinMatch+1 bytes always go out as literals: no match
	// can both start and be verified there.
	for i+lzMinMatch < len(src) {
		h := lzHash(lzLoad32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		if cand < 0 || i-cand > lzMaxOffset || lzLoad32(src, cand) != lzLoad32(src, i) {
			i++
			continue
		}
		// Extend the match forward.
		mlen := lzMinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		litLen := i - lit
		token := byte(0)
		if litLen >= 15 {
			token = 15 << 4
		} else {
			token = byte(litLen) << 4
		}
		if mlen-lzMinMatch >= 15 {
			token |= 15
		} else {
			token |= byte(mlen - lzMinMatch)
		}
		dst = append(dst, token)
		if litLen >= 15 {
			dst = lzAppendLen(dst, litLen-15)
		}
		dst = append(dst, src[lit:i]...)
		off := i - cand
		dst = append(dst, byte(off), byte(off>>8))
		if mlen-lzMinMatch >= 15 {
			dst = lzAppendLen(dst, mlen-lzMinMatch-15)
		}
		// Seed the table inside the match so runs keep matching.
		for j := i + 1; j+lzMinMatch < i+mlen && j+lzMinMatch < len(src); j += 2 {
			table[lzHash(lzLoad32(src, j))] = int32(j) + 1
		}
		i += mlen
		lit = i
	}
	// Trailing literals.
	litLen := len(src) - lit
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = lzAppendLen(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, src[lit:]...)
}

// lzExpand decompresses src into dst, which must be exactly the
// declared uncompressed length. It is strict: any truncated sequence,
// out-of-range offset, or length mismatch is an error, never a read
// or write past a buffer — compressed frames arrive off the wire and
// are attacker-shaped by definition.
func lzExpand(dst, src []byte) error {
	di, si := 0, 0
	for {
		if si >= len(src) {
			return errLZCorrupt
		}
		token := src[si]
		si++
		litLen := int(token >> 4)
		if litLen == 15 {
			for {
				if si >= len(src) {
					return errLZCorrupt
				}
				b := src[si]
				si++
				litLen += int(b)
				if litLen > lzMaxExpand {
					return errLZCorrupt
				}
				if b != 255 {
					break
				}
			}
		}
		if si+litLen > len(src) || di+litLen > len(dst) {
			return errLZCorrupt
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			// Input exhausted exactly at a literal-only tail: valid
			// only if the output is complete and the token carried no
			// match.
			if di != len(dst) || token&0x0f != 0 {
				return errLZCorrupt
			}
			return nil
		}
		if si+2 > len(src) {
			return errLZCorrupt
		}
		off := int(src[si]) | int(src[si+1])<<8
		si += 2
		if off == 0 || off > di {
			return errLZCorrupt
		}
		mlen := int(token&0x0f) + lzMinMatch
		if token&0x0f == 15 {
			for {
				if si >= len(src) {
					return errLZCorrupt
				}
				b := src[si]
				si++
				mlen += int(b)
				if mlen > lzMaxExpand {
					return errLZCorrupt
				}
				if b != 255 {
					break
				}
			}
		}
		if di+mlen > len(dst) {
			return errLZCorrupt
		}
		// Byte-by-byte: overlapping matches (off < mlen) replicate.
		for k := 0; k < mlen; k++ {
			dst[di+k] = dst[di-off+k]
		}
		di += mlen
	}
}
