package streams

import (
	"encoding/binary"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// The batch module coalesces small downstream messages into one wire
// block per flush window, so a stream of small 9P requests stops
// paying one wire frame (headers, medium events, per-message engine
// work) per Tmessage. Downstream, every delimited message is framed
// with a 4-byte big-endian length prefix and appended to a pending
// pooled block; the pending block is flushed as a single delimited
// wire block when its complete-frame bytes reach the byte cap, when
// the max-delay timer (on the stream's clock, so virtual time works)
// expires, when a control block passes down (ctl is a flush barrier),
// when a hangup crosses the stream, and when the module is popped.
// Upstream, the module is the inverse: a streaming splitter that
// restores each length-prefixed frame as its own delimited block, so
// message-per-read transports keep their contract through a batch.
//
//	push batch [cap [delay]]     e.g. "push batch 2048 2ms"

const (
	batchDefaultCap   = 2048
	batchDefaultDelay = 2 * time.Millisecond
	// batchMaxMsg bounds a single message's frame, and is the strict
	// cap the splitter enforces on a declared frame length — a corrupt
	// or hostile prefix cannot balloon reassembly.
	batchMaxMsg = 1 << 20
)

func init() {
	Register(batchModule)
	Register(compressModule)
}

// BatchConfig is the programmatic form of the ctl argument string.
type BatchConfig struct {
	Cap   int           // flush when this many complete-frame bytes are pending
	Delay time.Duration // flush this long after the first pending frame
}

func parseBatchArg(arg any) (BatchConfig, error) {
	cfg := BatchConfig{Cap: batchDefaultCap, Delay: batchDefaultDelay}
	switch v := arg.(type) {
	case nil:
	case BatchConfig:
		if v.Cap > 0 {
			cfg.Cap = v.Cap
		}
		if v.Delay > 0 {
			cfg.Delay = v.Delay
		}
	case string:
		fields := strings.Fields(v)
		if len(fields) > 2 {
			return cfg, ErrBadModArg
		}
		if len(fields) > 0 {
			n, err := strconv.Atoi(fields[0])
			if err != nil || n <= 0 || n > batchMaxMsg {
				return cfg, ErrBadModArg
			}
			cfg.Cap = n
		}
		if len(fields) > 1 {
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return cfg, ErrBadModArg
			}
			cfg.Delay = d
		}
	default:
		return cfg, ErrBadModArg
	}
	return cfg, nil
}

var batchModule = &Qinfo{
	Name:  "batch",
	Open:  batchOpen,
	Close: batchClose,
	Drain: batchDrain,
	Iput:  batchIput,
	Oput:  batchOput,
}

type batchState struct {
	cfg BatchConfig

	// Downstream (coalescing) side.
	mu      sync.Mutex
	pend    *block.Block // pooled accumulation window, nil when empty
	used    int          // bytes written into pend's window
	cur     []byte       // current partial (undelimited) message
	timer   *vclock.Timer
	gen     uint64 // flush generation, guards a stale timer callback
	closed  bool
	errored bool

	// Upstream (splitting) side.
	rmu     sync.Mutex
	partial []byte

	stats batchStats
	group *obs.Group
}

type batchStats struct {
	msgsIn, blocksIn, bytesIn      obs.Counter
	wireBlocks, wireBytes          obs.Counter
	flushCap, flushTimer, flushCtl obs.Counter
	flushHangup, flushPop          obs.Counter
	splitFrames, splitBytes, errs  obs.Counter
}

// flush causes, indexing the by-cause counters.
type flushCause int

const (
	causeCap flushCause = iota
	causeTimer
	causeCtl
	causeHangup
	causePop
)

func (st *batchState) causeCounter(c flushCause) *obs.Counter {
	switch c {
	case causeCap:
		return &st.stats.flushCap
	case causeTimer:
		return &st.stats.flushTimer
	case causeCtl:
		return &st.stats.flushCtl
	case causeHangup:
		return &st.stats.flushHangup
	default:
		return &st.stats.flushPop
	}
}

func batchOpen(q *Queue, arg any) error {
	cfg, err := parseBatchArg(arg)
	if err != nil {
		return err
	}
	st := &batchState{cfg: cfg}
	st.group = (&obs.Group{}).
		AddCounter("batch-msgs-in", &st.stats.msgsIn).
		AddCounter("batch-blocks-in", &st.stats.blocksIn).
		AddCounter("batch-bytes-in", &st.stats.bytesIn).
		AddCounter("batch-wire-blocks", &st.stats.wireBlocks).
		AddCounter("batch-wire-bytes", &st.stats.wireBytes).
		AddCounter("batch-flush-cap", &st.stats.flushCap).
		AddCounter("batch-flush-timer", &st.stats.flushTimer).
		AddCounter("batch-flush-ctl", &st.stats.flushCtl).
		AddCounter("batch-flush-hangup", &st.stats.flushHangup).
		AddCounter("batch-flush-pop", &st.stats.flushPop).
		AddCounter("batch-split-frames", &st.stats.splitFrames).
		AddCounter("batch-split-bytes", &st.stats.splitBytes).
		AddCounter("batch-errs", &st.stats.errs)
	q.Aux = st
	return nil
}

func (st *batchState) StatsGroup() *obs.Group { return st.group }

// windowCap is the pending block's capacity: the flush cap plus room
// for one maximum-size framed block, so any message built from
// MaxBlock writes fits without a mid-message reallocation.
func (st *batchState) windowCap() int { return st.cfg.Cap + MaxBlock + 8 }

// appendPend copies p into the pending window, allocating the pooled
// window lazily at the start of each flush cycle.
func (st *batchState) appendPend(p []byte) {
	if st.pend == nil {
		st.pend = block.Alloc(st.windowCap(), 0)
		st.used = 0
	}
	copy(st.pend.Bytes()[st.used:], p)
	st.used += len(p)
}

// emitLocked flushes the pending window as one delimited wire block
// out of down's position in the chain. Callers hold st.mu and either
// the stream's config read lock (put chain, timer) or its write lock
// (pop drain); the downstream chain never parks on flow control, so
// holding st.mu across the put keeps flushes ordered without risk.
func (st *batchState) emitLocked(down *Queue, cause flushCause) {
	st.gen++
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	if st.pend == nil {
		return
	}
	bb := st.pend
	st.pend = nil
	bb.Trim(bb.Len() - st.used)
	st.causeCounter(cause).Add(1)
	st.stats.wireBlocks.Add(1)
	st.stats.wireBytes.Add(int64(bb.Len()))
	out := NewBlockOwned(bb)
	out.Delim = true
	down.PutNext(out)
}

// armTimerLocked starts the max-delay flush timer for the current
// window if it is not already running.
func (st *batchState) armTimerLocked(down *Queue) {
	if st.timer != nil || st.cfg.Delay <= 0 {
		return
	}
	gen := st.gen
	s := down.Stream()
	st.timer = s.Clock().AfterFunc(st.cfg.Delay, func() {
		// The config read lock makes the chain traversal safe against
		// a concurrent push/pop, exactly as the put chains do.
		s.cfg.RLock()
		defer s.cfg.RUnlock()
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.closed || st.gen != gen {
			return
		}
		st.timer = nil
		st.emitLocked(down, causeTimer)
	})
}

func batchOput(q *Queue, b *Block) {
	st := q.Other().Aux.(*batchState)
	if b.Type != BlockData {
		// A control block is a flush barrier: pending data goes to the
		// wire before the ctl passes down, preserving order.
		st.mu.Lock()
		st.emitLocked(q, causeCtl)
		st.mu.Unlock()
		q.PutNext(b)
		return
	}
	st.mu.Lock()
	if st.closed || st.errored {
		st.mu.Unlock()
		b.Free()
		return
	}
	st.stats.blocksIn.Add(1)
	st.stats.bytesIn.Add(int64(len(b.Buf)))

	// Fastpath: a whole delimited message in one block, nothing
	// pending, already at or over the cap — frame it in place via the
	// block's headroom and emit it directly, copy-free.
	if st.pend == nil && len(st.cur) == 0 && b.Delim && 4+len(b.Buf) >= st.cfg.Cap {
		st.stats.msgsIn.Add(1)
		st.gen++
		if st.timer != nil {
			st.timer.Stop()
			st.timer = nil
		}
		st.causeCounter(causeCap).Add(1)
		bb := b.TakeInner()
		binary.BigEndian.PutUint32(bb.Prepend(4), uint32(bb.Len()-4))
		st.stats.wireBlocks.Add(1)
		st.stats.wireBytes.Add(int64(bb.Len()))
		out := NewBlockOwned(bb)
		out.Delim = true
		st.mu.Unlock()
		q.PutNext(out)
		return
	}

	st.cur = append(st.cur, b.Buf...)
	delim := b.Delim
	b.Free()
	if !delim {
		if len(st.cur) > batchMaxMsg {
			st.failLocked(q.Other())
			return
		}
		st.mu.Unlock()
		return
	}
	st.stats.msgsIn.Add(1)
	if len(st.cur) > batchMaxMsg {
		st.failLocked(q.Other())
		return
	}
	frame := 4 + len(st.cur)
	if st.pend != nil && st.used+frame > st.windowCap() {
		st.emitLocked(q, causeCap)
	}
	if frame > st.windowCap() {
		// A message too large for any window becomes its own wire
		// block immediately.
		bb := block.Alloc(frame, 0)
		w := bb.Bytes()
		binary.BigEndian.PutUint32(w[:4], uint32(len(st.cur)))
		copy(w[4:], st.cur)
		st.cur = st.cur[:0]
		st.causeCounter(causeCap).Add(1)
		st.stats.wireBlocks.Add(1)
		st.stats.wireBytes.Add(int64(bb.Len()))
		out := NewBlockOwned(bb)
		out.Delim = true
		st.mu.Unlock()
		q.PutNext(out)
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(st.cur)))
	st.appendPend(hdr[:])
	st.appendPend(st.cur)
	st.cur = st.cur[:0]
	if st.used >= st.cfg.Cap {
		st.emitLocked(q, causeCap)
	} else {
		st.armTimerLocked(q)
	}
	st.mu.Unlock()
}

// failLocked poisons the module after an unbatchable message and hangs
// the stream up: the peer's splitter would desynchronize otherwise.
// Called with st.mu held on the up queue; releases st.mu.
func (st *batchState) failLocked(up *Queue) {
	st.stats.errs.Add(1)
	st.errored = true
	st.cur = nil
	if st.pend != nil {
		st.pend.Free()
		st.pend = nil
	}
	st.mu.Unlock()
	up.PutNext(&Block{Type: BlockHangup})
}

func batchIput(q *Queue, b *Block) {
	st := q.Aux.(*batchState)
	if b.Type == BlockHangup {
		// A hangup crossing the stream flushes — not leaks — the
		// pending coalesced block: the device end is still reachable
		// until teardown finishes, and the accounting must balance.
		st.mu.Lock()
		st.emitLocked(q.Other(), causeHangup)
		st.mu.Unlock()
		st.rmu.Lock()
		st.partial = nil
		st.rmu.Unlock()
		q.PutNext(b)
		return
	}
	if b.Type != BlockData {
		q.PutNext(b)
		return
	}
	st.rmu.Lock()
	if st.errored {
		st.rmu.Unlock()
		b.Free()
		return
	}
	// Fastpath: nothing partial and exactly one whole frame in the
	// block — peel the prefix in place, zero-copy.
	if len(st.partial) == 0 && len(b.Buf) >= 4 {
		if n := int(binary.BigEndian.Uint32(b.Buf)); n <= batchMaxMsg && len(b.Buf) == 4+n {
			st.stats.splitFrames.Add(1)
			st.stats.splitBytes.Add(int64(n))
			st.rmu.Unlock()
			bb := b.TakeInner()
			bb.Consume(4)
			out := NewBlockOwned(bb)
			out.Delim = true
			q.PutNext(out)
			return
		}
	}
	st.partial = append(st.partial, b.Buf...)
	b.Free()
	var msgs []*Block
	for len(st.partial) >= 4 {
		n := int(binary.BigEndian.Uint32(st.partial))
		if n > batchMaxMsg {
			// Strict: a frame the coalescer could never have produced
			// means the stream is desynchronized or hostile; error out
			// rather than over-read.
			st.stats.errs.Add(1)
			st.errored = true
			st.partial = nil
			st.rmu.Unlock()
			q.PutNext(&Block{Type: BlockHangup})
			return
		}
		if len(st.partial) < 4+n {
			break
		}
		nb := NewBlockOwned(block.Copy(st.partial[4:4+n], 0))
		nb.Delim = true
		msgs = append(msgs, nb)
		st.partial = st.partial[4+n:]
	}
	st.stats.splitFrames.Add(int64(len(msgs)))
	st.rmu.Unlock()
	for _, m := range msgs {
		st.stats.splitBytes.Add(int64(len(m.Buf)))
		q.PutNext(m)
	}
}

// batchDrain runs under the stream's exclusive config lock just before
// the module is unspliced: the pending window goes to the wire ahead
// of any write issued after the pop.
func batchDrain(q *Queue) {
	st, ok := q.Aux.(*batchState)
	if !ok {
		return
	}
	st.mu.Lock()
	st.emitLocked(q.Other(), causePop)
	st.mu.Unlock()
}

func batchClose(q *Queue) {
	st, ok := q.Aux.(*batchState)
	if !ok {
		return
	}
	st.mu.Lock()
	st.closed = true
	st.gen++
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	if st.pend != nil {
		// Drain already flushed on the pop path; anything still here
		// (defensive) goes back to the pool rather than leaking.
		st.pend.Free()
		st.pend = nil
	}
	st.cur = nil
	st.mu.Unlock()
	st.rmu.Lock()
	st.partial = nil
	st.rmu.Unlock()
}
