package streams

import (
	"testing"
	"time"
)

// TestPutbackWakesSecondReader is the regression test for the missed
// wakeup in Queue.putback: with two readers sharing a queue, reader A
// can take a freshly enqueued block (barging past reader B, already
// parked in Get), consume part of it, and return the remainder with
// putback. putback must Broadcast like Enqueue does — without it, B
// sleeps on readable data until unrelated traffic arrives.
func TestPutbackWakesSecondReader(t *testing.T) {
	s := New(0, nil)
	defer s.Close()
	q := s.topRead

	type result struct {
		b   *Block
		err error
	}
	ch := make(chan result, 1)
	go func() {
		b, err := q.Get() // reader B
		ch <- result{b, err}
	}()
	// Let B park on the empty queue. If it loses this race and parks
	// after the putback below, Get finds the block immediately and the
	// test still passes — the failure mode only needs B parked first.
	time.Sleep(50 * time.Millisecond)

	// Reader A re-heads the unconsumed tail of its block.
	rem := NewBlock([]byte("rest"))
	q.putback(rem)

	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("Get: %v", r.err)
		}
		if got := string(r.b.Buf); got != "rest" {
			t.Fatalf("Get = %q, want %q", got, "rest")
		}
		r.b.Free()
	case <-time.After(2 * time.Second):
		t.Fatal("reader parked in Get missed the putback wakeup")
	}
}
