package streams

import (
	"strings"
	"testing"
)

// captureWire pushes specs on a stream, writes msgs, and returns the
// concatenated device-side bytes — what a snooper sees in segments.
func captureWire(t *testing.T, specs []string, msgs ...string) []byte {
	t.Helper()
	var wire []byte
	s := New(0, func(b *Block) {
		if b.Type == BlockData {
			wire = append(wire, b.Buf...)
		}
		b.Free()
	})
	for _, spec := range specs {
		if err := s.WriteCtl("push " + spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range msgs {
		if _, err := s.Write([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	return wire
}

func TestSnoopDescribesDisciplinedWire(t *testing.T) {
	// Batch alone: the payload is a walkable run of framed messages.
	wire := captureWire(t, []string{"batch 4096 1h"}, "hello", "stream", "world")
	d, ok := SnoopPayload(wire)
	if !ok || !strings.HasPrefix(d, "batch(3 msgs:") {
		t.Errorf("batch wire described as %q (ok=%v)", d, ok)
	}

	// Compress outermost with batch inside: both layers named.
	wire = captureWire(t, []string{"compress", "batch 4096 1h"},
		strings.Repeat("abcdefgh", 64), strings.Repeat("abcdefgh", 64))
	d, ok = SnoopPayload(wire)
	if !ok || !strings.Contains(d, "compress(lz") || !strings.Contains(d, "batch(2 msgs:") {
		t.Errorf("stacked wire described as %q (ok=%v)", d, ok)
	}

	// A partial compress frame still names the header.
	if len(wire) > compressHdrLen+4 {
		d, ok = SnoopPayload(wire[:compressHdrLen+4])
		if !ok || !strings.Contains(d, "of") {
			t.Errorf("partial frame described as %q (ok=%v)", d, ok)
		}
	}

	// Undisciplined traffic is left alone.
	if d, ok := SnoopPayload([]byte("GET / HTTP/1.0\r\n")); ok {
		t.Errorf("plain payload misdescribed as %q", d)
	}
	if _, ok := SnoopPayload(nil); ok {
		t.Error("empty payload described")
	}
}
