package streams

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vclock"
)

// devSink collects everything that reaches the device end.
type devSink struct {
	mu     sync.Mutex
	blocks [][]byte
}

func (d *devSink) put(b *Block) {
	d.mu.Lock()
	if b.Type == BlockData {
		d.blocks = append(d.blocks, append([]byte(nil), b.Buf...))
	}
	d.mu.Unlock()
	b.Free()
}

func (d *devSink) snapshot() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([][]byte(nil), d.blocks...)
}

// unframe splits a batch wire block back into its framed messages.
func unframe(t *testing.T, wire []byte) [][]byte {
	t.Helper()
	var msgs [][]byte
	for len(wire) > 0 {
		if len(wire) < 4 {
			t.Fatalf("trailing %d bytes are not a frame", len(wire))
		}
		n := int(binary.BigEndian.Uint32(wire))
		if len(wire) < 4+n {
			t.Fatalf("frame declares %d bytes, only %d present", n, len(wire)-4)
		}
		msgs = append(msgs, wire[4:4+n])
		wire = wire[4+n:]
	}
	return msgs
}

func moduleSnapshot(t *testing.T, s *Stream) map[string]int64 {
	t.Helper()
	all := map[string]int64{}
	for _, g := range s.ModuleStats() {
		for k, v := range g.Snapshot() {
			all[k] = v
		}
	}
	return all
}

// parseStatsText round-trips the rendered module stats the way a
// stats-file reader would.
func parseStatsText(s *Stream) map[string]int64 {
	var text string
	for _, g := range s.ModuleStats() {
		text += g.Render()
	}
	return obs.ParseStats(text)
}

func TestBatchCoalescesUntilCap(t *testing.T) {
	sink := &devSink{}
	s := New(0, sink.put)
	defer s.Close()
	if err := s.WriteCtl("push batch 64 1h"); err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{
		[]byte("Tversion"), []byte("Tauth"), []byte("Tattach-attach"),
		[]byte("Twalk Twalk Twalk Twalk"), []byte("Topen!"),
	}
	for _, m := range msgs {
		if _, err := s.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	// Total framed bytes cross the 64-byte cap partway through, so the
	// flush is cap-driven — no timer involved at a 1h delay.
	blocks := sink.snapshot()
	if len(blocks) == 0 {
		t.Fatal("cap crossed but nothing flushed")
	}
	s.Close() // drain the tail through the pop path
	var got [][]byte
	for _, w := range sink.snapshot() {
		got = append(got, unframe(t, w)...)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d messages, wrote %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d diverges", i)
		}
	}
	if n := len(sink.snapshot()); n >= len(msgs) {
		t.Fatalf("%d wire blocks for %d messages: nothing coalesced", n, len(msgs))
	}
}

func TestBatchStatsIdentities(t *testing.T) {
	sink := &devSink{}
	s := New(0, sink.put)
	if err := s.WriteCtl("push batch 128 1h"); err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 23; i++ {
		m := bytes.Repeat([]byte{byte(i)}, 11+i)
		want += int64(len(m))
		if _, err := s.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	stats := parseStatsText(s) // snapshot via the rendered text, as a file reader sees it
	if stats["batch-blocks-in"] != 23 || stats["batch-msgs-in"] != 23 {
		t.Fatalf("in counters: %+v", stats)
	}
	// Leave a small message pending so the close path must drain it.
	if _, err := s.Write([]byte("tail!")); err != nil {
		t.Fatal(err)
	}
	want += 5
	groups := s.ModuleStats() // groups outlive the pop below
	s.Close()
	stats = map[string]int64{}
	for _, g := range groups {
		for k, v := range g.Snapshot() {
			stats[k] = v
		}
	}
	// Identity 1: every wire block has exactly one flush cause.
	causes := stats["batch-flush-cap"] + stats["batch-flush-timer"] +
		stats["batch-flush-ctl"] + stats["batch-flush-hangup"] + stats["batch-flush-pop"]
	if causes != stats["batch-wire-blocks"] {
		t.Fatalf("flush causes %d != wire blocks %d", causes, stats["batch-wire-blocks"])
	}
	// Identity 2: wire bytes are input bytes plus 4 per message framed.
	if stats["batch-wire-bytes"] != want+4*stats["batch-msgs-in"] {
		t.Fatalf("wire bytes %d != in %d + 4*msgs %d", stats["batch-wire-bytes"], want, stats["batch-msgs-in"])
	}
	if stats["batch-flush-pop"] == 0 {
		t.Fatal("close must flush the tail through the pop drain")
	}
}

func TestBatchTimerFlushVirtual(t *testing.T) {
	// On the virtual clock the max-delay flush is exact and
	// deterministic: one message, below cap, flushes at precisely the
	// configured delay.
	v := vclock.NewVirtual()
	sink := &devSink{}
	v.Run(func() {
		s := NewClock(0, v, sink.put)
		if err := s.WriteCtl("push batch 4096 3ms"); err != nil {
			t.Error(err)
			return
		}
		start := v.Now()
		if _, err := s.Write([]byte("lonely small message")); err != nil {
			t.Error(err)
			return
		}
		if n := len(sink.snapshot()); n != 0 {
			t.Errorf("flushed %d blocks before the delay", n)
		}
		v.Sleep(5 * time.Millisecond)
		if el := v.Since(start); el < 3*time.Millisecond {
			t.Errorf("woke early: %v", el)
		}
		if n := len(sink.snapshot()); n != 1 {
			t.Errorf("timer flushed %d blocks, want 1", n)
		}
		st := moduleSnapshot(t, s)
		if st["batch-flush-timer"] != 1 {
			t.Errorf("flush-timer %d, want 1", st["batch-flush-timer"])
		}
		s.Close()
	})
	got := unframe(t, sink.snapshot()[0])
	if len(got) != 1 || string(got[0]) != "lonely small message" {
		t.Fatalf("bad flush contents: %q", got)
	}
}

func TestBatchCtlIsFlushBarrier(t *testing.T) {
	sink := &devSink{}
	s := New(0, sink.put)
	defer s.Close()
	if err := s.WriteCtl("push batch 4096 1h"); err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("pending data"))
	if err := s.WriteCtl("mtu 576"); err != nil { // an arbitrary module ctl
		t.Fatal(err)
	}
	if n := len(sink.snapshot()); n != 1 {
		t.Fatalf("ctl crossed %d data blocks, want the 1 flushed window", n)
	}
	st := moduleSnapshot(t, s)
	if st["batch-flush-ctl"] != 1 {
		t.Fatalf("flush-ctl %d, want 1", st["batch-flush-ctl"])
	}
}

func TestBatchBigMessageFastpath(t *testing.T) {
	sink := &devSink{}
	s := New(0, sink.put)
	defer s.Close()
	if err := s.WriteCtl("push batch 512 1h"); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 8000)
	if _, err := s.Write(big); err != nil {
		t.Fatal(err)
	}
	blocks := sink.snapshot()
	if len(blocks) != 1 {
		t.Fatalf("big message produced %d wire blocks, want immediate single flush", len(blocks))
	}
	got := unframe(t, blocks[0])
	if len(got) != 1 || !bytes.Equal(got[0], big) {
		t.Fatal("big message mangled")
	}
}

func TestBatchMultiBlockMessage(t *testing.T) {
	// A message larger than MaxBlock spans several stream blocks; the
	// batch must frame the whole message once, not per block.
	sink := &devSink{}
	s := New(0, sink.put)
	defer s.Close()
	if err := s.WriteCtl("push batch 128 1h"); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("abcdefgh"), (MaxBlock+5000)/8)
	if _, err := s.Write(big); err != nil {
		t.Fatal(err)
	}
	s.Close()
	var got [][]byte
	for _, w := range sink.snapshot() {
		got = append(got, unframe(t, w)...)
	}
	if len(got) != 1 || !bytes.Equal(got[0], big) {
		t.Fatalf("multi-block message: %d frames", len(got))
	}
}

func TestBatchSplitterRestoresBoundaries(t *testing.T) {
	// Upstream: a batched wire stream re-split under every chunking.
	var wire []byte
	msgs := [][]byte{[]byte("alpha"), []byte("bb"), bytes.Repeat([]byte("c"), 300), []byte("dddd")}
	for _, m := range msgs {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(m)))
		wire = append(wire, hdr[:]...)
		wire = append(wire, m...)
	}
	for chunk := 1; chunk <= len(wire); chunk += 7 {
		s := New(0, nil)
		if err := s.WriteCtl("push batch"); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			s.DeviceUpData(wire[off:end])
		}
		for i, want := range msgs {
			buf := make([]byte, len(wire))
			n, err := s.Read(buf)
			if err != nil {
				t.Fatalf("chunk %d msg %d: %v", chunk, i, err)
			}
			if !bytes.Equal(buf[:n], want) {
				t.Fatalf("chunk %d msg %d: got %d bytes want %d", chunk, i, n, len(want))
			}
		}
		st := moduleSnapshot(t, s)
		if st["batch-split-frames"] != int64(len(msgs)) {
			t.Fatalf("chunk %d: split %d frames", chunk, st["batch-split-frames"])
		}
		s.Close()
	}
}

func TestBatchSplitterStrict(t *testing.T) {
	s := New(0, nil)
	defer s.Close()
	if err := s.WriteCtl("push batch"); err != nil {
		t.Fatal(err)
	}
	// A frame length the coalescer could never emit poisons the stream:
	// readers see EOF, not garbage.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(batchMaxMsg+1))
	s.DeviceUpData(hdr[:])
	buf := make([]byte, 64)
	if _, err := s.Read(buf); err == nil {
		t.Fatal("read succeeded past a poisoned splitter")
	}
	st := moduleSnapshot(t, s)
	if st["batch-errs"] != 1 {
		t.Fatalf("errs %d, want 1", st["batch-errs"])
	}
}

func TestBatchArgParsing(t *testing.T) {
	s := New(0, nil)
	defer s.Close()
	for _, bad := range []string{"push batch zero", "push batch 0", "push batch 12 nope", "push batch 12 2ms extra"} {
		if err := s.WriteCtl(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := s.WriteCtl("push batch 4096 250us"); err != nil {
		t.Fatal(err)
	}
	if mods := s.Modules(); len(mods) != 1 || mods[0] != "batch" {
		t.Fatalf("modules: %v", mods)
	}
}

func TestBatchHangupFlushesPendingWindow(t *testing.T) {
	// The hangup-mid-window satellite: data sitting in the batch
	// window when the conversation hangs up must reach the device —
	// flushed, not leaked — and the reader must still drain to EOF.
	sink := &devSink{}
	s := New(0, sink.put)
	if err := s.WriteCtl("push batch 4096 1h"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("caught in the window")); err != nil {
		t.Fatal(err)
	}
	if n := len(sink.snapshot()); n != 0 {
		t.Fatalf("premature flush: %d", n)
	}
	s.HangupUp()
	blocks := sink.snapshot()
	if len(blocks) != 1 {
		t.Fatalf("hangup flushed %d blocks, want 1", len(blocks))
	}
	got := unframe(t, blocks[0])
	if len(got) != 1 || string(got[0]) != "caught in the window" {
		t.Fatal("pending window mangled by hangup flush")
	}
	st := moduleSnapshot(t, s)
	if st["batch-flush-hangup"] != 1 {
		t.Fatalf("flush-hangup %d, want 1", st["batch-flush-hangup"])
	}
	if _, err := s.Read(make([]byte, 16)); err == nil {
		t.Fatal("reader did not see the hangup")
	}
	if _, err := s.Write([]byte("after hangup")); err == nil {
		t.Fatal("writer did not see the hangup")
	}
	s.Close()
}

func TestBatchPopDrainOrdering(t *testing.T) {
	// Pop mid-conversation: the pending window must hit the wire
	// before any write issued after the pop returns.
	sink := &devSink{}
	s := New(0, sink.put)
	defer s.Close()
	if err := s.WriteCtl("push batch 4096 1h"); err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("first, batched"))
	if err := s.WriteCtl("pop"); err != nil {
		t.Fatal(err)
	}
	s.Write([]byte("second, raw"))
	blocks := sink.snapshot()
	if len(blocks) != 2 {
		t.Fatalf("%d wire blocks, want flushed window then raw write", len(blocks))
	}
	got := unframe(t, blocks[0])
	if len(got) != 1 || string(got[0]) != "first, batched" {
		t.Fatal("pop did not drain the window first")
	}
	if string(blocks[1]) != "second, raw" {
		t.Fatalf("post-pop write mangled: %q", blocks[1])
	}
}

func TestBatchConcurrentWriters(t *testing.T) {
	// Many writers racing the coalescer: every message must come out
	// exactly once, intact (order across writers is unspecified, as in
	// the kernel).
	sink := &devSink{}
	s := New(0, sink.put)
	if err := s.WriteCtl("push batch 1024 1ms"); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := fmt.Sprintf("w%d-m%d|", w, i)
				if _, err := s.Write([]byte(msg)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	seen := map[string]int{}
	for _, wire := range sink.snapshot() {
		for _, m := range unframe(t, wire) {
			seen[string(m)]++
		}
	}
	if len(seen) != writers*per {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), writers*per)
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("message %q delivered %d times", m, n)
		}
	}
}
