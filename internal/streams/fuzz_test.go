package streams

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// drainData pops everything queued at the top of the stream without
// blocking (fuzz inputs often leave the reassembler mid-frame with
// nothing deliverable, where Read would park).
func drainData(s *Stream) [][]byte {
	var out [][]byte
	for {
		b := s.topRead.TryGet()
		if b == nil {
			return out
		}
		if b.Type == BlockData {
			out = append(out, append([]byte(nil), b.Buf...))
		}
		b.Free()
	}
}

// FuzzCompressFrame drives the compress module from both sides with
// arbitrary bytes.
//
// Property 1 (round trip): any payload framed by the encoder must come
// back byte-identical through the decoder, under any chunking.
// Property 2 (strictness): arbitrary bytes fed to the decoder must
// never panic, never over-read, and anything it does deliver while the
// stream is alive must have come from a well-formed frame.
func FuzzCompressFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("Twalk fid 42 newfid 43 /usr/glenda/lib/profile"))
	f.Add(bytes.Repeat([]byte("abcd"), 300))
	f.Add([]byte{compressMagic, 0x01, 0, 0, 0, 4, 0, 0, 0, 4, 'a', 'b', 'c', 'd'})
	f.Add([]byte{compressMagic, 0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1, 0x00})
	f.Fuzz(fuzzCompressOnce)
}

func fuzzCompressOnce(t *testing.T, data []byte) {
	// Bound one exec's work: the properties are about framing logic,
	// not bulk throughput, and the mutator loves huge inputs.
	if len(data) > 64<<10 {
		data = data[:64<<10]
	}
	{
		// Round trip: data is a payload.
		var wire []byte
		txDev := New(0, func(b *Block) {
			if b.Type == BlockData {
				wire = append(wire, b.Buf...)
			}
			b.Free()
		})
		if err := txDev.WriteCtl("push compress"); err != nil {
			t.Fatal(err)
		}
		if _, err := txDev.Write(data); err != nil {
			t.Fatal(err)
		}
		// Byte-at-a-time replay is quadratic in the reassembler's partial
		// buffer; keep the fine chunkings for small inputs only.
		chunks := []int{len(wire)}
		if len(wire) <= 2048 {
			chunks = []int{1, 7, len(wire)}
		}
		for _, chunk := range chunks {
			if chunk <= 0 {
				continue
			}
			rx := New(1<<30, nil)
			rx.WriteCtl("push compress")
			for off := 0; off < len(wire); off += chunk {
				end := off + chunk
				if end > len(wire) {
					end = len(wire)
				}
				rx.DeviceUpData(wire[off:end])
			}
			var got []byte
			for _, p := range drainData(rx) {
				got = append(got, p...)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip diverges: %d bytes in, %d out (chunk %d)", len(data), len(got), chunk)
			}
			rx.Close()
		}

		// Strictness: data is hostile wire bytes.
		hchunks := []int{len(data)}
		if len(data) <= 2048 {
			hchunks = []int{3, len(data)}
		}
		for _, chunk := range hchunks {
			if chunk <= 0 {
				continue
			}
			rx := New(1<<30, nil)
			rx.WriteCtl("push compress")
			// A hostile stream of tiny frames can each declare a huge
			// uncompressed length (the anti-bomb cap is per frame, not
			// per stream); drain as we go and stop after a fixed budget
			// so one fuzz exec stays bounded.
			budget := 0
			for off := 0; off < len(data) && budget < 16<<20; off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				rx.DeviceUpData(data[off:end])
				for _, p := range drainData(rx) {
					budget += len(p)
				}
			}
			rx.Close()
		}

		// The raw decoder under a size the input did not declare.
		dst := make([]byte, 257)
		lzExpand(dst, data) // must not panic
	}
}

// FuzzBatchReassembly drives the batch module's coalescer and splitter.
//
// Property 1 (round trip): arbitrary bytes cut into messages, batched
// under several cap/chunk geometries, must split back into exactly the
// original messages.
// Property 2 (strictness): arbitrary bytes fed straight to the
// splitter must never panic and never fabricate an oversized frame.
func FuzzBatchReassembly(f *testing.F) {
	f.Add([]byte(nil), uint16(8))
	f.Add([]byte("hello world, this is a batch of messages"), uint16(5))
	f.Add(bytes.Repeat([]byte("msg"), 100), uint16(64))
	var oversize [8]byte
	binary.BigEndian.PutUint32(oversize[:4], uint32(batchMaxMsg+1))
	f.Add(oversize[:], uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		step := int(cut%251) + 1
		var msgs [][]byte
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			msgs = append(msgs, data[off:end])
		}

		// Round trip: coalesce under a cap derived from the input, then
		// split the wire back under a different chunking.
		capN := int(cut)%4096 + 16
		var wire []byte
		tx := New(0, func(b *Block) {
			if b.Type == BlockData {
				wire = append(wire, b.Buf...)
			}
			b.Free()
		})
		if err := tx.Push(batchModule, BatchConfig{Cap: capN, Delay: time.Hour}); err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if _, err := tx.Write(m); err != nil {
				t.Fatal(err)
			}
		}
		tx.Close() // pop-drain flushes the tail
		rx := New(1<<30, nil)
		rx.WriteCtl("push batch")
		chunk := step*2 + 1
		for off := 0; off < len(wire); off += chunk {
			end := off + chunk
			if end > len(wire) {
				end = len(wire)
			}
			rx.DeviceUpData(wire[off:end])
		}
		got := drainData(rx)
		if len(got) != len(msgs) {
			t.Fatalf("%d messages in, %d out", len(msgs), len(got))
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				t.Fatalf("message %d diverges", i)
			}
		}
		rx.Close()

		// Strictness: the same bytes as a hostile wire stream.
		hx := New(1<<30, nil)
		hx.WriteCtl("push batch")
		for off := 0; off < len(data); off += 5 {
			end := off + 5
			if end > len(data) {
				end = len(data)
			}
			hx.DeviceUpData(data[off:end])
		}
		for _, m := range drainData(hx) {
			if len(m) > batchMaxMsg {
				t.Fatalf("splitter fabricated a %d-byte frame", len(m))
			}
		}
		hx.Close()
	})
}
