package streams

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// loopback wires a stream's device end back to its own input, so
// everything written comes back up.
func loopback(t *testing.T) *Stream {
	t.Helper()
	var s *Stream
	s = New(0, func(b *Block) { s.DeviceUp(b) })
	t.Cleanup(func() { s.Close() })
	return s
}

// crossPair returns two streams wired to each other, a bidirectional
// pipe built from two streams.
func crossPair(t *testing.T) (*Stream, *Stream) {
	t.Helper()
	var a, b *Stream
	a = New(0, func(blk *Block) { b.DeviceUp(blk) })
	b = New(0, func(blk *Block) { a.DeviceUp(blk) })
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestWriteReadLoopback(t *testing.T) {
	s := loopback(t)
	if n, err := s.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("write = %d, %v", n, err)
	}
	buf := make([]byte, 16)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestReadStopsAtDelimiter(t *testing.T) {
	s := loopback(t)
	s.Write([]byte("one"))
	s.Write([]byte("two"))
	buf := make([]byte, 64)
	n, _ := s.Read(buf)
	if string(buf[:n]) != "one" {
		t.Errorf("first read %q, want delimiter-bounded \"one\"", buf[:n])
	}
	n, _ = s.Read(buf)
	if string(buf[:n]) != "two" {
		t.Errorf("second read %q", buf[:n])
	}
}

func TestPartialBlockRemainderStaysQueued(t *testing.T) {
	s := loopback(t)
	s.Write([]byte("abcdef"))
	buf := make([]byte, 2)
	n, _ := s.Read(buf)
	if string(buf[:n]) != "ab" {
		t.Fatalf("read %q", buf[:n])
	}
	n, _ = s.Read(buf)
	if string(buf[:n]) != "cd" {
		t.Fatalf("second read %q (remainder lost?)", buf[:n])
	}
	n, _ = s.Read(buf)
	if string(buf[:n]) != "ef" {
		t.Fatalf("third read %q", buf[:n])
	}
}

func TestLargeWriteSplitsAt32K(t *testing.T) {
	var blocks []*Block
	s := New(1<<20, func(b *Block) { blocks = append(blocks, b) })
	defer s.Close()
	payload := bytes.Repeat([]byte("x"), MaxBlock+1000)
	s.Write(payload)
	if len(blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(blocks))
	}
	if len(blocks[0].Buf) != MaxBlock || blocks[0].Delim {
		t.Errorf("first block len=%d delim=%v", len(blocks[0].Buf), blocks[0].Delim)
	}
	if len(blocks[1].Buf) != 1000 || !blocks[1].Delim {
		t.Errorf("last block len=%d delim=%v", len(blocks[1].Buf), blocks[1].Delim)
	}
}

func TestSingleBlockWriteIsAtomic(t *testing.T) {
	// A write of <= 32K is one block, so concurrent writers cannot
	// interleave within it.
	var mu sync.Mutex
	var sizes []int
	s := New(1<<24, func(b *Block) {
		mu.Lock()
		sizes = append(sizes, len(b.Buf))
		mu.Unlock()
	})
	defer s.Close()
	var wg sync.WaitGroup
	for range 10 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				s.Write(bytes.Repeat([]byte("y"), 1000))
			}
		}()
	}
	wg.Wait()
	for _, n := range sizes {
		if n != 1000 {
			t.Fatalf("interleaved block of %d bytes", n)
		}
	}
	if len(sizes) != 500 {
		t.Errorf("%d blocks, want 500", len(sizes))
	}
}

func TestHangupDrainsThenEOF(t *testing.T) {
	s := loopback(t)
	s.Write([]byte("last words"))
	s.HangupUp()
	buf := make([]byte, 64)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "last words" {
		t.Fatalf("drain read %q, %v", buf[:n], err)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Errorf("post-hangup read err = %v, want EOF", err)
	}
	if _, err := s.Write([]byte("x")); err != ErrHungup {
		t.Errorf("post-hangup write err = %v", err)
	}
}

func TestHangupViaCtl(t *testing.T) {
	s := loopback(t)
	if err := s.WriteCtl("hangup"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after ctl hangup = %v", err)
	}
}

func TestBlockedReaderWokenByClose(t *testing.T) {
	s := New(0, nil)
	done := make(chan error, 1)
	go func() {
		_, err := s.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("reader error = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader not woken by close")
	}
}

func TestFlowControlBlocksWriters(t *testing.T) {
	// Loopback with a tiny limit: the writer must block once the
	// read queue is full, and resume when the reader drains.
	var s *Stream
	s = New(10, func(b *Block) { s.DeviceUp(b) })
	defer s.Close()
	wrote := make(chan bool, 1)
	go func() {
		s.Write([]byte("0123456789")) // fills the queue
		s.Write([]byte("abcdefghij")) // must block
		wrote <- true
	}()
	select {
	case <-wrote:
		t.Fatal("writer did not block on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	// Drain and let the writer finish.
	buf := make([]byte, 10)
	s.Read(buf)
	select {
	case <-wrote:
	case <-time.After(time.Second):
		t.Fatal("writer not resumed after drain")
	}
}

func TestPushPopModules(t *testing.T) {
	a, b := crossPair(t)
	var stats *TraceStats
	if err := a.Push(traceModule, &stats); err != nil {
		t.Fatal(err)
	}
	if got := a.Modules(); len(got) != 1 || got[0] != "trace" {
		t.Fatalf("modules %v", got)
	}
	a.Write([]byte("12345"))
	buf := make([]byte, 16)
	n, _ := b.Read(buf)
	if string(buf[:n]) != "12345" {
		t.Fatalf("through-module read %q", buf[:n])
	}
	b.Write([]byte("xyz"))
	n, _ = a.Read(buf)
	if string(buf[:n]) != "xyz" {
		t.Fatalf("reverse read %q", buf[:n])
	}
	if stats.OutBytes.Load() != 5 || stats.InBytes.Load() != 3 {
		t.Errorf("trace counters out=%d in=%d", stats.OutBytes.Load(), stats.InBytes.Load())
	}
	if err := a.Pop(); err != nil {
		t.Fatal(err)
	}
	if len(a.Modules()) != 0 {
		t.Error("module list not empty after pop")
	}
	if err := a.Pop(); err != ErrNothingToPop {
		t.Errorf("extra pop = %v", err)
	}
}

func TestPushViaCtl(t *testing.T) {
	s := loopback(t)
	if err := s.WriteCtl("push trace"); err != nil {
		t.Fatal(err)
	}
	if got := s.Modules(); len(got) != 1 || got[0] != "trace" {
		t.Errorf("modules after ctl push: %v", got)
	}
	if err := s.WriteCtl("pop"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCtl("push nosuchmodule"); err != ErrUnknownMod {
		t.Errorf("unknown push = %v", err)
	}
}

func TestFrameModuleRestoresDelimiters(t *testing.T) {
	// Simulate a TCP-like byte pipe that merges and splits blocks
	// arbitrarily, with a frame module on each side.
	var a, b *Stream
	reframe := func(dst **Stream) DeviceFunc {
		return func(blk *Block) {
			// Deliver byte-at-a-time: worst-case fragmentation,
			// no delimiters survive.
			for _, c := range blk.Buf {
				nb := NewBlock([]byte{c})
				(*dst).DeviceUp(nb)
			}
		}
	}
	a = New(1<<20, reframe(&b))
	b = New(1<<20, reframe(&a))
	defer a.Close()
	defer b.Close()
	if err := a.PushName("frame", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.PushName("frame", nil); err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("first message"))
	a.Write([]byte("second"))
	buf := make([]byte, 64)
	n, _ := b.Read(buf)
	if string(buf[:n]) != "first message" {
		t.Errorf("first framed read %q", buf[:n])
	}
	n, _ = b.Read(buf)
	if string(buf[:n]) != "second" {
		t.Errorf("second framed read %q", buf[:n])
	}
}

func TestCtlBlocksSkippedByRead(t *testing.T) {
	s := loopback(t)
	s.DeviceUp(NewCtlBlock("module-specific"))
	s.Write([]byte("data"))
	buf := make([]byte, 16)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "data" {
		t.Errorf("read past ctl block: %q, %v", buf[:n], err)
	}
}

func TestOnCloseHooks(t *testing.T) {
	s := New(0, nil)
	ran := 0
	s.OnClose(func() { ran++ })
	s.Close()
	s.Close() // idempotent
	if ran != 1 {
		t.Errorf("close hooks ran %d times", ran)
	}
}

func TestQueueGetTryGetPutback(t *testing.T) {
	s := New(0, nil)
	defer s.Close()
	q := newQueue(s, nil, true, PutQ)
	if q.TryGet() != nil {
		t.Error("TryGet on empty queue returned a block")
	}
	q.Enqueue(NewBlock([]byte("a")))
	q.Enqueue(NewBlock([]byte("b")))
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	b1, err := q.Get()
	if err != nil || string(b1.Buf) != "a" {
		t.Fatalf("Get = %q, %v", b1.Buf, err)
	}
	q.putback(b1)
	b2 := q.TryGet()
	if string(b2.Buf) != "a" {
		t.Errorf("putback order broken: %q", b2.Buf)
	}
}

func TestReadContiguityUnderConcurrency(t *testing.T) {
	// The per-stream read lock guarantees the bytes each reader gets
	// are contiguous bytes from the stream. Write numbered 100-byte
	// records; concurrent readers each reading 100 bytes must see
	// whole records.
	var s *Stream
	s = New(1<<20, func(b *Block) { s.DeviceUp(b) })
	defer s.Close()
	const records = 200
	go func() {
		for i := range records {
			rec := bytes.Repeat([]byte{byte(i)}, 100)
			s.Write(rec)
		}
	}()
	var mu sync.Mutex
	got := make(map[byte]bool)
	complete := make(chan struct{})
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 100)
			for {
				n, err := s.Read(buf)
				if err != nil || n == 0 {
					return // stream closed: we are done
				}
				if n != 100 {
					t.Errorf("torn read of %d bytes", n)
					return
				}
				for _, c := range buf[1:n] {
					if c != buf[0] {
						t.Error("non-contiguous bytes in one read")
						return
					}
				}
				mu.Lock()
				got[buf[0]] = true
				if len(got) == records {
					close(complete)
				}
				mu.Unlock()
			}
		}()
	}
	// When every record has been seen, close the stream to release
	// any reader still blocked waiting for more data.
	select {
	case <-complete:
	case <-time.After(10 * time.Second):
		t.Error("records never all arrived")
	}
	s.Close()
	wg.Wait()
}

// Property: any sequence of writes is read back intact and in order.
func TestStreamByteTransparencyQuick(t *testing.T) {
	f := func(chunks [][]byte) bool {
		s := loopbackQuiet()
		defer s.Close()
		var want []byte
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			want = append(want, c...)
			if _, err := s.Write(c); err != nil {
				return false
			}
		}
		got := make([]byte, 0, len(want))
		buf := make([]byte, 4096)
		for len(got) < len(want) {
			n, err := s.Read(buf)
			if err != nil || n == 0 {
				return false
			}
			got = append(got, buf[:n]...)
		}
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func loopbackQuiet() *Stream {
	var s *Stream
	s = New(1<<24, func(b *Block) { s.DeviceUp(b) })
	return s
}
