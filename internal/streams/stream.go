package streams

import (
	"io"
	"strings"
	"sync"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Stream is a bidirectional channel between a device and user
// processes (§2.4): a linear list of module instances between a user
// end at the top and a device end at the bottom.
//
// Topology, from top to bottom (upstream is toward the top):
//
//	user read/write
//	  topRead (up, queueing)   topWrite (down, pass)
//	  [pushed modules ...]
//	  devUp (up, pass)         devWrite (down, device output)
//	device receive/transmit
type Stream struct {
	limit int
	clk   vclock.Clock

	cfg      chainLock // guards module list changes vs. traffic
	topRead  *Queue    // up direction terminator: user reads here
	topWrite *Queue    // down direction entry: user writes here
	devUp    *Queue    // up direction entry: device injects here
	devWrite *Queue    // down direction terminator: device output

	rlock sync.Mutex // the per-stream read lock of §2.4.1

	mu      sync.Mutex
	closed  bool
	onClose []func()
}

// DeviceFunc is the device-end output routine: it receives every block
// that reaches the bottom of the stream. It corresponds to the output
// put routine of a device interface (§2.4.2).
type DeviceFunc func(b *Block)

// New creates a stream whose device end delivers downstream blocks to
// dev. limit <= 0 selects DefaultLimit.
func New(limit int, dev DeviceFunc) *Stream { return NewClock(limit, nil, dev) }

// NewClock is New with an explicit clock: flow-control waits and
// residency stamps go through ck, so a virtual-clock stream parks
// cooperatively with the simulation scheduler. nil means the real
// clock.
func NewClock(limit int, ck vclock.Clock, dev DeviceFunc) *Stream {
	if limit <= 0 {
		limit = DefaultLimit
	}
	s := &Stream{limit: limit, clk: vclock.Or(ck)}
	s.cfg.init(s.clk)
	s.topRead = newQueue(s, nil, true, PutQ)
	s.topWrite = newQueue(s, nil, false, PassPut)
	s.devUp = newQueue(s, nil, true, PassPut)
	s.devWrite = newQueue(s, nil, false, func(q *Queue, b *Block) {
		if dev != nil {
			dev(b) // ownership passes to the device
		} else {
			b.Free()
		}
	})
	// Initially no modules: writes go straight to the device, device
	// input goes straight to the read queue.
	s.topWrite.next = s.devWrite
	s.devUp.next = s.topRead
	return s
}

// OnClose registers a hook run once when the stream is destroyed.
func (s *Stream) OnClose(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose = append(s.onClose, f)
}

// Clock returns the stream's time source. Modules must take their
// timers from here — never from the real clock directly — so a stream
// inside a discrete-event simulation stays deterministic.
func (s *Stream) Clock() vclock.Clock { return s.clk }

// Push adds an instance of module qi to the top of the stream
// (§2.4.1 "push name"), passing arg to its Open hook.
func (s *Stream) Push(qi *Qinfo, arg any) error {
	up := newQueue(s, qi, true, qi.Iput)
	down := newQueue(s, qi, false, qi.Oput)
	up.other, down.other = down, up
	// Open runs before the splice: the moment the pair is reachable a
	// put chain from either end may call the module's put procedures,
	// so its state must be fully built first. Open hooks therefore
	// must not put blocks — the queues have no neighbors yet.
	if qi.Open != nil {
		if err := qi.Open(up, arg); err != nil {
			return err
		}
	}
	// Splice below the top pair.
	s.cfg.Lock()
	up.next = s.topRead
	down.next = s.topWrite.next
	s.topWrite.next = down
	// Find the queue currently feeding topRead and repoint it.
	prev := s.prevUpLocked(s.topRead)
	prev.next = up
	s.cfg.Unlock()
	return nil
}

// PushName pushes a registered module by name.
func (s *Stream) PushName(name string, arg any) error {
	qi, ok := Lookup(name)
	if !ok {
		return ErrUnknownMod
	}
	return s.Push(qi, arg)
}

// Pop removes the top module (§2.4.1 "pop").
func (s *Stream) Pop() error {
	up := s.popModule()
	if up == nil {
		return ErrNothingToPop
	}
	if up.qi != nil && up.qi.Close != nil {
		up.qi.Close(up)
	}
	return nil
}

// popModule unsplices and returns the top module's up queue.
//
// While the exclusive config lock is held — no put chain in flight,
// no writer able to start one — the module's Drain hook runs, so any
// data it holds (a batch window's pending coalesced block) is emitted
// down the still-intact chain BEFORE the module disappears. A write
// issued after Pop returns therefore cannot overtake data written
// before it.
func (s *Stream) popModule() *Queue {
	s.cfg.Lock()
	defer s.cfg.Unlock()
	down := s.topWrite.next
	if down == s.devWrite || down == nil {
		return nil
	}
	up := down.other
	if up.qi != nil && up.qi.Drain != nil {
		up.qi.Drain(up)
	}
	s.topWrite.next = down.next
	prev := s.prevUpLocked(up)
	prev.next = up.next
	up.close()
	down.close()
	return up
}

// prevUpLocked finds the queue whose next (in the up direction) is q.
func (s *Stream) prevUpLocked(q *Queue) *Queue {
	cur := s.devUp
	for cur.next != nil && cur.next != q {
		cur = cur.next
	}
	return cur
}

// StatsSource is implemented by module state (a queue's Aux) that
// exports an observable counter group; the conversation's stats file
// renders every pushed module's group.
type StatsSource interface{ StatsGroup() *obs.Group }

// ModuleStats returns the stats groups of pushed modules, top first.
func (s *Stream) ModuleStats() []*obs.Group {
	s.cfg.RLock()
	defer s.cfg.RUnlock()
	var gs []*obs.Group
	for q := s.topWrite.next; q != nil && q != s.devWrite; q = q.next {
		if q.other == nil {
			continue
		}
		if src, ok := q.other.Aux.(StatsSource); ok {
			gs = append(gs, src.StatsGroup())
		}
	}
	return gs
}

// Modules returns the names of pushed modules, top first.
func (s *Stream) Modules() []string {
	s.cfg.RLock()
	defer s.cfg.RUnlock()
	var names []string
	for q := s.topWrite.next; q != nil && q != s.devWrite; q = q.next {
		if q.qi != nil {
			names = append(names, q.qi.Name)
		}
	}
	return names
}

// Write copies p into blocks of at most MaxBlock bytes and sends them
// down the stream; the final block carries the delimiter flag, alerting
// "downstream modules that care about write boundaries". Concurrent
// writes are not synchronized with each other, as in the kernel, but a
// single write of <= MaxBlock is atomic (one block).
func (s *Stream) Write(p []byte) (int, error) {
	if s.isClosed() {
		return 0, ErrClosed
	}
	if s.topRead.Hungup() {
		return 0, ErrHungup
	}
	total := 0
	for {
		n := len(p) - total
		if n > MaxBlock {
			n = MaxBlock
		}
		b := NewBlock(p[total : total+n])
		total += n
		b.Delim = total == len(p)
		// The read lock is held across the whole put chain: a
		// concurrent push or pop (which takes the lock exclusively)
		// cannot unsplice a queue while a block is traversing it, so
		// reconfiguration under load neither drops nor reorders data.
		s.cfg.RLock()
		s.topWrite.Put(b)
		s.cfg.RUnlock()
		if total == len(p) {
			return total, nil
		}
	}
}

// WriteCtl sends a control request down the stream. The stream system
// itself intercepts and interprets "push <name>", "pop", and "hangup";
// all other control blocks pass down for the modules to parse
// (§2.4.1).
func (s *Stream) WriteCtl(cmd string) error {
	if s.isClosed() {
		return ErrClosed
	}
	fields := strings.Fields(cmd)
	if len(fields) > 0 {
		switch fields[0] {
		case "push":
			// "push name [args...]": anything after the module name is
			// the module's argument string, handed to its Open hook
			// (e.g. "push batch 2048 2ms").
			if len(fields) < 2 {
				return ErrUnknownMod
			}
			var arg any
			if len(fields) > 2 {
				arg = strings.Join(fields[2:], " ")
			}
			return s.PushName(fields[1], arg)
		case "pop":
			return s.Pop()
		case "hangup":
			s.HangupUp()
			return nil
		}
	}
	s.cfg.RLock()
	s.topWrite.Put(NewCtlBlock(cmd))
	s.cfg.RUnlock()
	return nil
}

// Read reads queued data from the top of the stream under the
// per-stream read lock. It returns when the count is reached or a
// delimited block boundary is encountered; a partially-read block's
// remainder stays queued, keeping the byte stream contiguous.
func (s *Stream) Read(p []byte) (int, error) {
	s.rlock.Lock()
	defer s.rlock.Unlock()
	total := 0
	for total < len(p) || len(p) == 0 {
		b, err := s.topRead.Get()
		if err != nil {
			if total > 0 {
				return total, nil
			}
			if err == ErrHungup {
				return 0, io.EOF
			}
			return 0, err
		}
		if b.Type == BlockCtl {
			b.Free()
			continue // control information is not data
		}
		s.observeResidency(b)
		n := copy(p[total:], b.Buf)
		total += n
		if n < len(b.Buf) {
			b.Buf = b.Buf[n:]
			s.topRead.putback(b)
			return total, nil
		}
		delim := b.Delim
		b.Free()
		if delim {
			return total, nil
		}
		if total == len(p) {
			return total, nil
		}
		// Undelimited and buffer not full: take more only if
		// already queued; otherwise return what we have.
		if s.topRead.Len() == 0 {
			return total, nil
		}
	}
	return total, nil
}

// DeviceUp injects a block at the device end, moving upstream through
// the module Iputs to the read queue — what a device interrupt
// handler's kernel process does with received data (§2.4.2).
//
//netvet:owns b
func (s *Stream) DeviceUp(b *Block) {
	s.stampUp(b)
	// Held across the chain for the same reason as Write: see there.
	s.cfg.RLock()
	s.devUp.Put(b)
	s.cfg.RUnlock()
}

// DeviceUpData is DeviceUp for a delimited data payload. The payload
// is copied (into a pooled block): this is the retain boundary for
// devices that only borrow their receive buffer.
func (s *Stream) DeviceUpData(p []byte) {
	b := NewBlock(p)
	b.Delim = true
	s.DeviceUp(b)
}

// DeviceUpOwned is DeviceUp for a delimited payload the device already
// owns as a pooled block; ownership transfers without copying.
//
//netvet:owns bb
func (s *Stream) DeviceUpOwned(bb *block.Block) {
	b := NewBlockOwned(bb)
	b.Delim = true
	s.DeviceUp(b)
}

// HangupUp sends a hangup up the stream from the device end (§2.4.1):
// readers drain queued data then see EOF; writers fail.
func (s *Stream) HangupUp() {
	s.DeviceUp(&Block{Type: BlockHangup})
}

// Close destroys the stream: modules are closed top-down, queued data
// is discarded, and all blocked readers and writers are woken.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	hooks := s.onClose
	s.mu.Unlock()
	// The read queue dies first: an upstream put chain parked on its
	// flow-control limit holds the config read lock, and the Pops below
	// need it exclusively. Closing topRead wakes that writer (the block
	// is discarded on the dying stream) so the Pops can proceed — and
	// each Pop's Drain still flushes module-held data out the device
	// end, which stays functional until the stream is fully torn down.
	s.topRead.close()
	for {
		if err := s.Pop(); err != nil {
			break
		}
	}
	s.topWrite.close()
	s.devUp.close()
	s.devWrite.close()
	for _, f := range hooks {
		f()
	}
	return nil
}

func (s *Stream) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// QueuedBytes reports bytes waiting at the top read queue.
func (s *Stream) QueuedBytes() int { return s.topRead.Len() }

// chainLock is the reader-writer lock guarding the module list against
// reconfiguration: every put chain holds it shared for its whole
// traversal; push and pop take it exclusively, so an unsplice can
// never happen under a block in flight. A put chain can park while
// holding the read side — flow control in a queueing module, or a
// bandwidth-paced device write — so the waiters must park through the
// stream's clock: a plain sync.RWMutex waiter never yields its virtual
// scheduler token and would wedge a discrete-event run (the same rule
// ninep.wlock follows). Writers have priority over new readers, so a
// pop under continuous traffic is bounded by the chains already in
// flight, not starved by new ones.
type chainLock struct {
	mu      sync.Mutex
	rcond   vclock.Cond // readers waiting for the writer to leave
	wcond   vclock.Cond // writers waiting for readers to drain
	readers int
	writer  bool
	wwait   int
}

func (l *chainLock) init(ck vclock.Clock) {
	l.rcond.Init(ck, &l.mu)
	l.wcond.Init(ck, &l.mu)
}

func (l *chainLock) RLock() {
	l.mu.Lock()
	for l.writer || l.wwait > 0 {
		l.rcond.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

func (l *chainLock) RUnlock() {
	l.mu.Lock()
	l.readers--
	if l.readers == 0 {
		l.wcond.Broadcast()
	}
	l.mu.Unlock()
}

func (l *chainLock) Lock() {
	l.mu.Lock()
	l.wwait++
	for l.writer || l.readers > 0 {
		l.wcond.Wait()
	}
	l.wwait--
	l.writer = true
	l.mu.Unlock()
}

func (l *chainLock) Unlock() {
	l.mu.Lock()
	l.writer = false
	l.rcond.Broadcast()
	l.wcond.Broadcast()
	l.mu.Unlock()
}
