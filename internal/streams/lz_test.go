package streams

import (
	"bytes"
	"math/rand"
	"testing"
)

func lzRoundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := lzCompress(nil, src)
	got := make([]byte, len(src))
	if err := lzExpand(got, comp); err != nil {
		t.Fatalf("expand %d bytes: %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip diverges (%d bytes in, %d compressed)", len(src), len(comp))
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcd"),
		[]byte("hello hello hello hello hello hello"),
		bytes.Repeat([]byte{0}, 100_000),
		bytes.Repeat([]byte("abcdefgh"), 5000),
	}
	// Random (incompressible) and mixed payloads.
	rnd := make([]byte, 65536)
	rng.Read(rnd)
	cases = append(cases, rnd)
	mixed := append(bytes.Repeat([]byte("9P2000 Tread Rread "), 500), rnd[:4096]...)
	cases = append(cases, mixed)
	// Long literal runs around the 15/255 extension boundaries.
	for _, n := range []int{14, 15, 16, 269, 270, 271, 525} {
		p := make([]byte, n)
		rng.Read(p)
		cases = append(cases, p)
	}
	// Long matches around the extension boundaries.
	for _, n := range []int{18, 19, 20, 273, 274, 529} {
		cases = append(cases, append([]byte("qrst"), bytes.Repeat([]byte("z"), n)...))
	}
	for i, src := range cases {
		src := src
		t.Run(string(rune('a'+i%26))+"-case", func(t *testing.T) { lzRoundTrip(t, src) })
	}
}

func TestLZCompressesTypicalTraffic(t *testing.T) {
	// 9P-ish traffic — repeated structure with small varying fields —
	// must actually shrink, or the module is pointless.
	var msg []byte
	for i := 0; i < 200; i++ {
		msg = append(msg, []byte("Twalk fid 42 newfid 43 /usr/glenda/lib/profile")...)
		msg = append(msg, byte(i))
	}
	comp := lzCompress(nil, msg)
	if len(comp) >= len(msg)/2 {
		t.Fatalf("structured payload compressed %d -> %d, want at least 2x", len(msg), len(comp))
	}
	lzRoundTrip(t, msg)
}

func TestLZExpandStrict(t *testing.T) {
	// The decoder must reject damage with an error, never panic or
	// read out of bounds.
	src := append(bytes.Repeat([]byte("abcd"), 64), []byte("tailtailtail")...)
	comp := lzCompress(nil, src)
	dst := make([]byte, len(src))

	// Truncations at every length.
	for i := 0; i < len(comp); i++ {
		lzExpand(dst, comp[:i]) // must not panic; error or not is fine only for i<len
	}
	if err := lzExpand(dst, comp[:len(comp)-1]); err == nil {
		t.Error("truncated stream expanded without error")
	}
	// Wrong declared output size.
	if err := lzExpand(make([]byte, len(src)+1), comp); err == nil {
		t.Error("short output accepted")
	}
	if err := lzExpand(make([]byte, len(src)-1), comp); err == nil {
		t.Error("overlong stream accepted")
	}
	// Single-byte corruption sweep: every result must be an error or a
	// clean (bounds-respecting) wrong answer — never a panic.
	for i := range comp {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0x40
		lzExpand(dst, mut)
	}
	// An offset pointing before the start of output.
	bad := []byte{0x14, 'a', 0x05, 0x00} // 1 literal, match offset 5 > di
	if err := lzExpand(make([]byte, 10), bad); err == nil {
		t.Error("out-of-range offset accepted")
	}
}
