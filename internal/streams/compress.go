package streams

import (
	"encoding/binary"
	"sync"

	"repro/internal/block"
	"repro/internal/obs"
)

// The compress module LZ-compresses every downstream data block's
// payload into a self-describing frame, and inverts it upstream. A
// frame is:
//
//	byte  0      magic (0xC5)
//	byte  1      flags: bit 0 method (0 stored, 1 lz), bit 1 delimiter
//	bytes 2-5    uncompressed length, big-endian
//	bytes 6-9    stored length, big-endian
//	bytes 10-    payload (stored length bytes)
//
// A block whose compressed form would not shrink goes out stored —
// the per-block incompressible passthrough — so the module never
// inflates payloads by more than the 10-byte header. The decoder is
// strict: a wrong magic, an unknown method, a declared length over the
// anti-bomb cap, or an expansion that does not consume its input
// exactly is an error that hangs the stream up, never an over-read.
// Both directions work in pooled buffers, and the upstream side is a
// streaming reassembler, so the module survives byte-stream transports
// that split or merge frames arbitrarily.
//
// The conversation is symmetric: both ends must push the module (in
// the same stack position), exactly like a real line discipline.

const (
	compressMagic   = 0xC5
	compressHdrLen  = 10
	cflagLZ         = 1 << 0
	cflagDelim      = 1 << 1
	compressMaxULen = lzMaxExpand
)

var compressModule = &Qinfo{
	Name:  "compress",
	Open:  compressOpen,
	Close: compressClose,
	Iput:  compressIput,
	Oput:  compressOput,
}

type compressState struct {
	// Downstream needs no buffer state: each block is framed on the
	// caller's goroutine. Upstream reassembles.
	rmu     sync.Mutex
	partial []byte
	errored bool

	stats compressStats
	group *obs.Group
}

type compressStats struct {
	blocksIn, bytesIn     obs.Counter // downstream payload accepted
	wireBytes, savedBytes obs.Counter // stored lengths vs. what they saved
	hdrBytes              obs.Counter // framing overhead added
	passthrough           obs.Counter // blocks sent stored
	decFrames, decBytes   obs.Counter // upstream frames and ulen restored
	decWireBytes          obs.Counter // upstream stored bytes consumed
	decErrs               obs.Counter
}

func compressOpen(q *Queue, arg any) error {
	if arg != nil {
		if s, ok := arg.(string); !ok || s != "" {
			return ErrBadModArg
		}
	}
	st := &compressState{}
	st.group = (&obs.Group{}).
		AddCounter("compress-blocks-in", &st.stats.blocksIn).
		AddCounter("compress-bytes-in", &st.stats.bytesIn).
		AddCounter("compress-wire-bytes", &st.stats.wireBytes).
		AddCounter("compress-saved-bytes", &st.stats.savedBytes).
		AddCounter("compress-hdr-bytes", &st.stats.hdrBytes).
		AddCounter("compress-passthrough", &st.stats.passthrough).
		AddCounter("compress-dec-frames", &st.stats.decFrames).
		AddCounter("compress-dec-bytes", &st.stats.decBytes).
		AddCounter("compress-dec-wire-bytes", &st.stats.decWireBytes).
		AddCounter("compress-dec-errs", &st.stats.decErrs)
	q.Aux = st
	return nil
}

func (st *compressState) StatsGroup() *obs.Group { return st.group }

// compressFrame builds the wire frame for payload in a pooled block:
// compressed if that shrinks it, stored otherwise.
func compressFrame(payload []byte, delim bool) (*block.Block, bool) {
	// Worst-case compressed size: all literals plus run-length spill.
	bound := compressHdrLen + len(payload) + len(payload)/255 + 16
	bb := block.Alloc(bound, 0)
	w := bb.Bytes()
	out := lzCompress(w[compressHdrLen:compressHdrLen], payload)
	stored := len(out) >= len(payload)
	flags := byte(cflagLZ)
	if stored {
		copy(w[compressHdrLen:], payload)
		out = w[compressHdrLen : compressHdrLen+len(payload)]
		flags = 0
	}
	if delim {
		flags |= cflagDelim
	}
	w[0] = compressMagic
	w[1] = flags
	binary.BigEndian.PutUint32(w[2:6], uint32(len(payload)))
	binary.BigEndian.PutUint32(w[6:10], uint32(len(out)))
	bb.Trim(bb.Len() - (compressHdrLen + len(out)))
	return bb, stored
}

func compressOput(q *Queue, b *Block) {
	if b.Type != BlockData {
		q.PutNext(b)
		return
	}
	st := q.Other().Aux.(*compressState)
	st.stats.blocksIn.Add(1)
	st.stats.bytesIn.Add(int64(len(b.Buf)))
	bb, stored := compressFrame(b.Buf, b.Delim)
	wire := bb.Len() - compressHdrLen
	st.stats.wireBytes.Add(int64(wire))
	st.stats.savedBytes.Add(int64(len(b.Buf) - wire))
	st.stats.hdrBytes.Add(compressHdrLen)
	if stored {
		st.stats.passthrough.Add(1)
	}
	b.Free()
	out := NewBlockOwned(bb)
	out.Delim = true
	q.PutNext(out)
}

// expandFrame decodes one complete frame (header already validated for
// completeness) into a fresh pooled block. Returns nil on corrupt
// compressed data.
func expandFrame(flags byte, ulen int, payload []byte) *block.Block {
	if flags&cflagLZ == 0 {
		if len(payload) != ulen {
			return nil
		}
		return block.Copy(payload, 0)
	}
	bb := block.Alloc(ulen, 0)
	if err := lzExpand(bb.Bytes(), payload); err != nil {
		bb.Free()
		return nil
	}
	return bb
}

// parseCompressHeader validates a frame header prefix. It returns the
// flags, uncompressed and stored lengths, and ok=false with a hard
// error when the header can never become valid (vs. just short).
func parseCompressHeader(p []byte) (flags byte, ulen, clen int, bad bool) {
	if p[0] != compressMagic {
		return 0, 0, 0, true
	}
	if len(p) < compressHdrLen {
		return 0, 0, 0, false
	}
	flags = p[1]
	ulen = int(binary.BigEndian.Uint32(p[2:6]))
	clen = int(binary.BigEndian.Uint32(p[6:10]))
	if flags&^(cflagLZ|cflagDelim) != 0 || ulen > compressMaxULen || clen > compressMaxULen+compressMaxULen/255+16 {
		return 0, 0, 0, true
	}
	if flags&cflagLZ == 0 && clen != ulen {
		return 0, 0, 0, true
	}
	return flags, ulen, clen, false
}

// fail poisons the upstream side and hangs the stream up. Called with
// st.rmu held; releases it.
func (st *compressState) fail(up *Queue) {
	st.stats.decErrs.Add(1)
	st.errored = true
	st.partial = nil
	st.rmu.Unlock()
	up.PutNext(&Block{Type: BlockHangup})
}

func compressIput(q *Queue, b *Block) {
	st := q.Aux.(*compressState)
	if b.Type != BlockData {
		if b.Type == BlockHangup {
			st.rmu.Lock()
			st.partial = nil
			st.rmu.Unlock()
		}
		q.PutNext(b)
		return
	}
	st.rmu.Lock()
	if st.errored {
		st.rmu.Unlock()
		b.Free()
		return
	}
	// Fastpath: nothing partial and exactly one whole frame.
	if len(st.partial) == 0 && len(b.Buf) >= compressHdrLen {
		flags, ulen, clen, bad := parseCompressHeader(b.Buf)
		if bad {
			st.fail(q)
			b.Free()
			return
		}
		if len(b.Buf) == compressHdrLen+clen {
			out := expandFrame(flags, ulen, b.Buf[compressHdrLen:])
			if out == nil {
				st.fail(q)
				b.Free()
				return
			}
			st.stats.decFrames.Add(1)
			st.stats.decBytes.Add(int64(ulen))
			st.stats.decWireBytes.Add(int64(clen))
			st.rmu.Unlock()
			b.Free()
			nb := NewBlockOwned(out)
			nb.Delim = flags&cflagDelim != 0
			q.PutNext(nb)
			return
		}
	}
	st.partial = append(st.partial, b.Buf...)
	b.Free()
	var msgs []*Block
	for len(st.partial) > 0 {
		flags, ulen, clen, bad := parseCompressHeader(st.partial)
		if bad {
			st.fail(q)
			return
		}
		if len(st.partial) < compressHdrLen || len(st.partial) < compressHdrLen+clen {
			break
		}
		out := expandFrame(flags, ulen, st.partial[compressHdrLen:compressHdrLen+clen])
		if out == nil {
			st.fail(q)
			return
		}
		st.stats.decFrames.Add(1)
		st.stats.decBytes.Add(int64(ulen))
		st.stats.decWireBytes.Add(int64(clen))
		nb := NewBlockOwned(out)
		nb.Delim = flags&cflagDelim != 0
		msgs = append(msgs, nb)
		st.partial = st.partial[compressHdrLen+clen:]
	}
	st.rmu.Unlock()
	for _, m := range msgs {
		q.PutNext(m)
	}
}

func compressClose(q *Queue) {
	st, ok := q.Aux.(*compressState)
	if !ok {
		return
	}
	st.rmu.Lock()
	st.partial = nil
	st.rmu.Unlock()
}
