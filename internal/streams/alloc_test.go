package streams

import (
	"testing"

	"repro/internal/block"
)

// The block-discipline regression gate for the pipes path: a 16K write
// through a stream to a device that frees its blocks must cost at most
// two allocations — the pooled buffer's wrapper structs — because the
// payload bytes travel in a recycled pool block. Before pooling this
// path cost one fresh 16K buffer per write.
func TestAllocsWrite16K(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	var sink int
	s := New(1<<30, func(blk *Block) { sink += len(blk.Buf); blk.Free() })
	defer s.Close()
	payload := make([]byte, 16*1024)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Write(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Write(16K) allocates %.1f objects/op, want <= 2 (pool bypassed?)", allocs)
	}
	_ = sink
}

// The batch fastpath gate: steady-state coalescing must add at most
// one allocation per small write over the bare 2-alloc write baseline.
// A 64-byte message rides into the pending pooled window by copy; the
// window block, the emitted wrapper, and the flush timer amortize over
// the ~30 messages each 2K window holds.
func TestAllocsBatchCoalesce(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	var sink int
	s := New(1<<30, func(blk *Block) { sink += len(blk.Buf); blk.Free() })
	defer s.Close()
	if err := s.WriteCtl("push batch 2048 10ms"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	// Warm the module's reusable message buffer before measuring.
	for i := 0; i < 64; i++ {
		s.Write(payload)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Write(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("batched small write allocates %.1f objects/op, want <= 3 (coalesce path must amortize)", allocs)
	}
	_ = sink
}

// The round-trip gate: write then read 1K through a looped-back
// stream. The read side consumes the same pooled block the write
// produced, so the whole trip stays within the same budget.
func TestAllocsRoundTrip(t *testing.T) {
	if block.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	var s *Stream
	s = New(1<<30, func(blk *Block) { s.DeviceUp(blk) })
	defer s.Close()
	payload := make([]byte, 1024)
	buf := make([]byte, 2048)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Write(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Read(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("round trip allocates %.1f objects/op, want <= 3", allocs)
	}
}
