package streams

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Put-chain residency: how long a received block sits in the stream —
// from the device end injecting it (DeviceUp) to the user read that
// consumes it. It is the streams-layer contribution to end-to-end
// latency, the §2.4 analogue of a queueing delay, and /net stats
// render it as the "residency" histogram.
//
// Tracking is opt-in: stamping every block costs a clock read per
// DeviceUp, so the hot path stays untouched until someone asks.
// Stamps come from the stream's own clock, so a virtual-clock stream
// records virtual residency.
var (
	residencyOn atomic.Bool

	// Residency is the process-wide put-chain residency histogram.
	Residency obs.Hist
)

// EnableResidency turns put-chain residency sampling on or off.
func EnableResidency(on bool) { residencyOn.Store(on) }

// ResidencyEnabled reports whether residency sampling is on.
func ResidencyEnabled() bool { return residencyOn.Load() }

// stampUp marks a block entering the stream at the device end.
func (s *Stream) stampUp(b *Block) {
	if residencyOn.Load() {
		b.stamp = s.clk.Now().UnixNano()
	}
}

// observeResidency records the block's residency at first consumption.
func (s *Stream) observeResidency(b *Block) {
	if b.stamp != 0 {
		Residency.Observe(time.Duration(s.clk.Now().UnixNano() - b.stamp))
		b.stamp = 0
	}
}
