package streams

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/obs"
)

// This file provides the reusable processing modules that ship with the
// stream system. Protocol engines (TCP, IL, URP) are modules too, but
// they live with their protocols; these are the generic ones a user can
// "push" onto any stream (§2.4.1).

func init() {
	Register(frameModule)
	Register(traceModule)
}

// frameModule restores message delimiters over a byte-stream transport:
// the marshaling the paper says is needed when "a protocol does not
// meet these requirements (for example, TCP does not preserve
// delimiters)". Downstream, each delimited write gains a 4-byte length
// prefix; upstream, the module reassembles the byte stream into
// delimited blocks.
var frameModule = &Qinfo{
	Name: "frame",
	Open: func(q *Queue, arg any) error {
		q.Aux = &frameState{}
		return nil
	},
	Iput: frameIput,
	Oput: frameOput,
}

type frameState struct {
	mu      sync.Mutex
	partial []byte // accumulated upstream bytes not yet framed
	pending []byte // downstream bytes of the current unfinished write
}

func frameOput(q *Queue, b *Block) {
	if b.Type != BlockData {
		q.PutNext(b)
		return
	}
	st := q.Other().Aux.(*frameState)
	st.mu.Lock()
	if len(st.pending) == 0 && b.Delim {
		// Whole write in one block: push the length prefix into the
		// block's headroom in place instead of re-materializing it.
		st.mu.Unlock()
		bb := b.TakeInner()
		binary.BigEndian.PutUint32(bb.Prepend(4), uint32(bb.Len()-4))
		out := NewBlockOwned(bb)
		out.Delim = true
		q.PutNext(out)
		return
	}
	st.pending = append(st.pending, b.Buf...)
	delim := b.Delim
	b.Free()
	if !delim {
		st.mu.Unlock()
		return
	}
	msg := st.pending
	st.pending = nil
	st.mu.Unlock()
	bb := block.Alloc(4+len(msg), block.DefaultHeadroom)
	w := bb.Bytes()
	binary.BigEndian.PutUint32(w[:4], uint32(len(msg)))
	copy(w[4:], msg)
	out := NewBlockOwned(bb)
	out.Delim = true
	q.PutNext(out)
}

func frameIput(q *Queue, b *Block) {
	if b.Type != BlockData {
		q.PutNext(b)
		return
	}
	st := q.Aux.(*frameState)
	st.mu.Lock()
	if len(st.partial) == 0 && len(b.Buf) >= 4 {
		if n := int(binary.BigEndian.Uint32(b.Buf)); len(b.Buf) == 4+n {
			// Exactly one whole frame: peel the prefix in place and
			// forward the payload without copying.
			st.mu.Unlock()
			bb := b.TakeInner()
			bb.Consume(4)
			out := NewBlockOwned(bb)
			out.Delim = true
			q.PutNext(out)
			return
		}
	}
	st.partial = append(st.partial, b.Buf...)
	b.Free()
	var msgs []*Block
	for len(st.partial) >= 4 {
		n := int(binary.BigEndian.Uint32(st.partial))
		if len(st.partial) < 4+n {
			break
		}
		nb := NewBlockOwned(block.Copy(st.partial[4:4+n], 0))
		nb.Delim = true
		msgs = append(msgs, nb)
		st.partial = st.partial[4+n:]
	}
	st.mu.Unlock()
	for _, m := range msgs {
		q.PutNext(m)
	}
}

// traceModule counts blocks and bytes in both directions without
// altering them — the kind of diagnostic interface the Ethernet
// driver's snooping conversations provide (§2.2).
var traceModule = &Qinfo{
	Name: "trace",
	Open: func(q *Queue, arg any) error {
		st := &TraceStats{}
		q.Aux = st
		if p, ok := arg.(**TraceStats); ok && p != nil {
			*p = st
		}
		return nil
	},
	Iput: func(q *Queue, b *Block) {
		st := q.Aux.(*TraceStats)
		if b.Type == BlockData {
			st.InBlocks.Add(1)
			st.InBytes.Add(int64(len(b.Buf)))
		}
		q.PutNext(b)
	},
	Oput: func(q *Queue, b *Block) {
		st := q.Other().Aux.(*TraceStats)
		if b.Type == BlockData {
			st.OutBlocks.Add(1)
			st.OutBytes.Add(int64(len(b.Buf)))
		}
		q.PutNext(b)
	},
}

// TraceStats accumulates the trace module's counters.
type TraceStats struct {
	InBlocks, InBytes   atomic.Int64
	OutBlocks, OutBytes atomic.Int64
}

// String formats the counters in the ASCII style of a stats file.
func (t *TraceStats) String() string {
	return fmt.Sprintf("in: %d blocks %d bytes\nout: %d blocks %d bytes\n",
		t.InBlocks.Load(), t.InBytes.Load(), t.OutBlocks.Load(), t.OutBytes.Load())
}

// StatsGroup surfaces the counters in a conversation's stats file
// alongside the other pushed modules'.
func (t *TraceStats) StatsGroup() *obs.Group {
	return (&obs.Group{}).
		AddAtomic("trace-in-blocks", &t.InBlocks).
		AddAtomic("trace-in-bytes", &t.InBytes).
		AddAtomic("trace-out-blocks", &t.OutBlocks).
		AddAtomic("trace-out-bytes", &t.OutBytes)
}
