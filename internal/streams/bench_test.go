package streams

import (
	"testing"
)

// §2.4.4 reflects on stream complexity but notes "performance is not
// an issue; the time to process protocols and drive device interfaces
// continues to dwarf the time spent allocating, freeing, and moving
// blocks of data." These benchmarks measure the block-moving costs so
// that claim can be checked against the protocol benchmarks in the
// root bench_test.go (an IL message costs ~13 µs end to end; a block
// traversing a stream costs well under a microsecond).

func benchWrite(b *testing.B, modules int, size int) {
	var sink int
	s := New(1<<30, func(blk *Block) { sink += len(blk.Buf); blk.Free() })
	defer s.Close()
	for range modules {
		if err := s.Push(traceModule, nil); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for b.Loop() {
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamWrite1K0Modules(b *testing.B)  { benchWrite(b, 0, 1024) }
func BenchmarkStreamWrite1K1Module(b *testing.B)   { benchWrite(b, 1, 1024) }
func BenchmarkStreamWrite1K4Modules(b *testing.B)  { benchWrite(b, 4, 1024) }
func BenchmarkStreamWrite16K0Modules(b *testing.B) { benchWrite(b, 0, 16*1024) }
func BenchmarkStreamWrite16K4Modules(b *testing.B) { benchWrite(b, 4, 16*1024) }

func BenchmarkStreamRoundTrip(b *testing.B) {
	var s *Stream
	s = New(1<<30, func(blk *Block) { s.DeviceUp(blk) })
	defer s.Close()
	payload := make([]byte, 1024)
	buf := make([]byte, 2048)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameModule(b *testing.B) {
	// The marshaling module's cost per message: what TCP transport
	// of 9P pays that IL does not.
	var s *Stream
	s = New(1<<30, func(blk *Block) { s.DeviceUp(blk) })
	defer s.Close()
	if err := s.PushName("frame", nil); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	buf := make([]byte, 2048)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := s.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
