package streams

import (
	"io"

	"repro/internal/netmsg"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Line dresses an existing message connection in a stream: user reads
// and writes pass through a pushable module chain (batch, compress,
// trace, frame) on their way to and from the underlying transport.
// This is how a conversation gains line disciplines after the fact —
// the protocol engines keep their own receive streams, and the Line
// splices a second, operator-configured stream on top, the way the
// paper pushes URP onto a Datakit channel (§2.4.1).
//
// Downstream, the device end coalesces a delimited message's blocks
// and issues one conn.Write per wire block; upstream, a pump kernel
// process (clock-registered, so virtual time works) reads the
// transport and injects each read as a delimited block. Modules that
// change the wire format (batch, compress) restore message boundaries
// themselves, so a Line across a conversation preserves the
// message-per-read contract as long as both ends push the same
// modules in the same order.
type Line struct {
	s    *Stream
	conn io.ReadWriteCloser

	// Device-end assembly of a multi-block message into one write.
	wpart []byte
}

// lineBufSize is the pump's read buffer: big enough for any framed,
// batched, compressed wire block a well-configured conversation
// produces. A larger foreign message is split across reads; the
// module reassemblers do not care, since frames carry their own
// boundaries.
const lineBufSize = 128 * 1024

// NewLine wraps conn in a stream with no modules pushed. The pump
// goroutine is created with ck.Go, so under a virtual clock the Line
// is part of the deterministic schedule. limit <= 0 selects
// DefaultLimit.
func NewLine(conn io.ReadWriteCloser, ck vclock.Clock, limit int) *Line {
	l := &Line{conn: conn}
	l.s = NewClock(limit, ck, l.deviceOut)
	clk := l.s.Clock()
	clk.Go(func() {
		buf := make([]byte, lineBufSize)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				l.s.DeviceUpData(buf[:n])
			}
			if err != nil {
				l.s.HangupUp()
				return
			}
		}
	})
	return l
}

// deviceOut is the stream's device end: it runs on the put chain's
// goroutine (under the stream's config read lock) and hands each
// complete wire block to the transport in one write.
//
//netvet:owns b
func (l *Line) deviceOut(b *Block) {
	if b.Type != BlockData {
		b.Free()
		return
	}
	if len(l.wpart) == 0 && b.Delim {
		if len(b.Buf) > 0 {
			l.conn.Write(b.Buf)
		}
		b.Free()
		return
	}
	l.wpart = append(l.wpart, b.Buf...)
	delim := b.Delim
	b.Free()
	if !delim {
		return
	}
	l.conn.Write(l.wpart)
	l.wpart = l.wpart[:0]
}

// Read returns the next upstream data, stopping at a message boundary.
func (l *Line) Read(p []byte) (int, error) { return l.s.Read(p) }

// Write sends p down the module chain as one delimited message.
func (l *Line) Write(p []byte) (int, error) { return l.s.Write(p) }

// WriteCtl sends a control request down the stream ("push batch 2048
// 2ms", "pop", "hangup", or module-specific commands).
func (l *Line) WriteCtl(cmd string) error { return l.s.WriteCtl(cmd) }

// Push pushes module specs bottom-up: Push("compress", "batch") puts
// compress nearer the device and batch on top, so messages coalesce
// first and the coalesced block compresses once.
func (l *Line) Push(specs ...string) error {
	for _, spec := range specs {
		if err := l.s.WriteCtl(netmsg.Push(spec)); err != nil {
			return err
		}
	}
	return nil
}

// Stream exposes the underlying stream (tests, stats plumbing).
func (l *Line) Stream() *Stream { return l.s }

// ModuleStats returns the stats groups of the pushed modules, top
// first — the conversation's per-module bill.
func (l *Line) ModuleStats() []*obs.Group { return l.s.ModuleStats() }

// StatsText renders every module's stats group, the text a
// conversation's stats file serves.
func (l *Line) StatsText() string {
	var out []byte
	for _, g := range l.s.ModuleStats() {
		out = append(out, g.Render()...)
	}
	return string(out)
}

// Close flushes the module chain (pops run their Drain hooks, so a
// pending batch window still reaches the transport) and closes the
// underlying connection, which stops the pump.
func (l *Line) Close() error {
	l.s.Close()
	return l.conn.Close()
}
