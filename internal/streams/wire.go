package streams

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Wire-format describers for diagnostic tools: snoopy captures raw
// packets off the wire, so a conversation dressed with the batch or
// compress modules shows framed payloads inside its segments. These
// helpers let the snooper name what it sees without duplicating the
// module wire formats. They are best-effort by construction — a
// transport segment may start mid-frame — and never allocate beyond
// the rendered string.

// SnoopCompress reports whether p begins with a compress-module frame
// and renders its header. ok is false when p cannot start a frame.
func SnoopCompress(p []byte) (desc string, ok bool) {
	if len(p) < compressHdrLen || p[0] != compressMagic {
		return "", false
	}
	flags, ulen, clen, bad := parseCompressHeader(p)
	if bad {
		return "", false
	}
	kind := "stored"
	if flags&cflagLZ != 0 {
		kind = "lz"
	}
	delim := ""
	if flags&cflagDelim != 0 {
		delim = " delim"
	}
	part := ""
	if len(p) < compressHdrLen+clen {
		part = fmt.Sprintf(", %d of %d here", len(p)-compressHdrLen, clen)
	}
	return fmt.Sprintf("compress(%s %d -> %d%s%s)", kind, ulen, clen, delim, part), true
}

// SnoopBatch reports whether p parses as a batch-module wire block —
// a run of 4-byte big-endian length-prefixed messages — and renders
// the frame walk. It requires at least one complete frame and that
// every length stays within the module's message cap, so arbitrary
// payloads rarely misreport; a trailing partial frame (a segment
// boundary mid-message) is noted, not rejected.
func SnoopBatch(p []byte) (desc string, ok bool) {
	var sizes []string
	off := 0
	for off+4 <= len(p) {
		n := int(binary.BigEndian.Uint32(p[off : off+4]))
		if n <= 0 || n > batchMaxMsg {
			return "", false
		}
		if off+4+n > len(p) {
			sizes = append(sizes, fmt.Sprintf("%d of %d", len(p)-off-4, n))
			off = len(p)
			break
		}
		sizes = append(sizes, fmt.Sprintf("%d", n))
		off += 4 + n
	}
	if len(sizes) == 0 || off != len(p) {
		return "", false
	}
	return fmt.Sprintf("batch(%d msgs: %s)", len(sizes), strings.Join(sizes, " ")), true
}

// SnoopPayload describes a transport payload that may be dressed by
// the line disciplines, peeling the stack outside-in. Compress sits
// nearest the wire, so its frame is the outer layer; when the whole
// frame is in this payload the helper recovers the plaintext (stored
// directly, LZ by expansion) and walks the batch frames inside.
func SnoopPayload(p []byte) (desc string, ok bool) {
	d, ok := SnoopCompress(p)
	if !ok {
		return SnoopBatch(p)
	}
	flags, ulen, clen, bad := parseCompressHeader(p)
	if bad || len(p) < compressHdrLen+clen {
		return d, true // partial frame: the header is all we can say
	}
	body := p[compressHdrLen : compressHdrLen+clen]
	var plain []byte
	if flags&cflagLZ == 0 {
		plain = body
	} else {
		buf := make([]byte, ulen)
		if err := lzExpand(buf, body); err != nil {
			return d, true
		}
		plain = buf
	}
	if inner, iok := SnoopBatch(plain); iok {
		return d + " " + inner, true
	}
	return d, true
}
