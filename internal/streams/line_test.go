package streams

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestLineConversation runs a full-duplex conversation between two
// Lines over a byte pipe, both ends dressed with the production stack
// (compress near the device, batch on top), and checks that every
// message crosses intact, in order, with its boundary preserved.
func TestLineConversation(t *testing.T) {
	c1, c2 := net.Pipe()
	l1 := NewLine(c1, nil, 0)
	l2 := NewLine(c2, nil, 0)
	if err := l1.Push("compress", "batch 256 500us"); err != nil {
		t.Fatal(err)
	}
	if err := l2.Push("compress", "batch 256 500us"); err != nil {
		t.Fatal(err)
	}
	const nmsg = 120
	mkmsg := func(dir string, i int) []byte {
		m := []byte(fmt.Sprintf("%s-%04d ", dir, i))
		return append(m, bytes.Repeat([]byte("payload "), i%5)...)
	}
	var wg sync.WaitGroup
	send := func(l *Line, dir string) {
		defer wg.Done()
		for i := 0; i < nmsg; i++ {
			if _, err := l.Write(mkmsg(dir, i)); err != nil {
				t.Errorf("%s write %d: %v", dir, i, err)
				return
			}
		}
	}
	recv := func(l *Line, dir string) {
		defer wg.Done()
		buf := make([]byte, 4096)
		for i := 0; i < nmsg; i++ {
			n, err := l.Read(buf)
			if err != nil {
				t.Errorf("%s read %d: %v", dir, i, err)
				return
			}
			if want := mkmsg(dir, i); !bytes.Equal(buf[:n], want) {
				t.Errorf("%s msg %d: got %q want %q", dir, i, buf[:n], want)
				return
			}
		}
	}
	wg.Add(4)
	go send(l1, "a2b")
	go recv(l2, "a2b")
	go send(l2, "b2a")
	go recv(l1, "b2a")
	wg.Wait()

	// The stats file text must parse back to the live counters.
	text := l1.StatsText()
	parsed := obs.ParseStats(text)
	if parsed["batch-msgs-in"] != nmsg {
		t.Fatalf("stats text reports %d msgs in:\n%s", parsed["batch-msgs-in"], text)
	}
	if parsed["compress-saved-bytes"]+parsed["compress-wire-bytes"] != parsed["compress-bytes-in"] {
		t.Fatalf("stats identity broken in rendered text:\n%s", text)
	}
	if got := l1.Stream().Modules(); len(got) != 2 || got[0] != "batch" || got[1] != "compress" {
		t.Fatalf("module stack: %v", got)
	}
	l1.Close()
	l2.Close()
}

// TestLineCloseMidWindow closes a Line with a message still coalescing;
// the close must flush it out the transport, and the peer must read it
// before seeing EOF — the "hangup mid-batch-window" contract at the
// Line layer.
func TestLineCloseMidWindow(t *testing.T) {
	c1, c2 := net.Pipe()
	l1 := NewLine(c1, nil, 0)
	l2 := NewLine(c2, nil, 0)
	for _, l := range []*Line{l1, l2} {
		if err := l.Push("batch 65536 1h"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		n, err := l2.Read(buf)
		if err != nil || string(buf[:n]) != "going down" {
			t.Errorf("read %q, %v", buf[:n], err)
		}
		if _, err := l2.Read(buf); err == nil {
			t.Error("no EOF after peer close")
		}
	}()
	if _, err := l1.Write([]byte("going down")); err != nil {
		t.Fatal(err)
	}
	// Nothing can have hit the wire yet: the window is 64K with an
	// hour's delay. Close must drain it.
	l1.Close()
	<-done
	l2.Close()
}

// TestPushPopMidTraffic churns transparent modules on and off both
// ends of a live conversation while full-duplex traffic flows. Pushing
// mid-traffic is the hard case: the splice happens between two blocks
// of a put chain arriving from the peer, so a half-initialized module
// (or a dropped/reordered block crossing the splice) shows up as a
// sequence error here. Pops exercise the Drain path under load the
// same way.
func TestPushPopMidTraffic(t *testing.T) {
	c1, c2 := net.Pipe()
	l1 := NewLine(c1, nil, 0)
	l2 := NewLine(c2, nil, 0)
	// frame restores boundaries over the byte pipe; it stays put while
	// trace churns above it.
	for _, l := range []*Line{l1, l2} {
		if err := l.Push("frame"); err != nil {
			t.Fatal(err)
		}
	}
	const nmsg = 400
	mkmsg := func(dir string, i int) []byte {
		return []byte(fmt.Sprintf("%s-%05d-%s", dir, i, bytes.Repeat([]byte("x"), i%97)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	churn := func(l *Line) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Push("trace"); err != nil {
				t.Errorf("push trace: %v", err)
				return
			}
			if err := l.Stream().WriteCtl("pop"); err != nil {
				t.Errorf("pop trace: %v", err)
				return
			}
		}
	}
	send := func(l *Line, dir string) {
		defer wg.Done()
		for i := 0; i < nmsg; i++ {
			if _, err := l.Write(mkmsg(dir, i)); err != nil {
				t.Errorf("%s write %d: %v", dir, i, err)
				return
			}
		}
	}
	recv := func(l *Line, dir string) {
		defer wg.Done()
		buf := make([]byte, 4096)
		for i := 0; i < nmsg; i++ {
			n, err := l.Read(buf)
			if err != nil {
				t.Errorf("%s read %d: %v", dir, i, err)
				return
			}
			if want := mkmsg(dir, i); !bytes.Equal(buf[:n], want) {
				t.Errorf("%s msg %d: got %q want %q", dir, i, buf[:n], want)
				return
			}
		}
	}
	var churners sync.WaitGroup
	churners.Add(2)
	go func() { defer churners.Done(); churn(l1) }()
	go func() { defer churners.Done(); churn(l2) }()
	wg.Add(4)
	go send(l1, "a2b")
	go recv(l2, "a2b")
	go send(l2, "b2a")
	go recv(l1, "b2a")
	wg.Wait()
	close(stop)
	churners.Wait()
	if mods := l1.Stream().Modules(); len(mods) < 1 || mods[len(mods)-1] != "frame" {
		t.Fatalf("frame module lost under churn: %v", mods)
	}
	l1.Close()
	l2.Close()
}
