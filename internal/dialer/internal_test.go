package dialer

import "testing"

func TestDirectTranslateWithoutCS(t *testing.T) {
	lines, err := directTranslate("tcp!1.2.3.4!999")
	if err != nil || len(lines) != 1 || lines[0] != "/net/tcp/clone 1.2.3.4!999" {
		t.Errorf("directTranslate: %v, %v", lines, err)
	}
	if _, err := directTranslate("net!host!svc"); err == nil {
		t.Error("net! without cs translated")
	}
	if _, err := directTranslate("lonely"); err == nil {
		t.Error("one-part destination translated")
	}
}
