// Package dialer provides the library routines of §5: dial, announce,
// listen, accept, and reject — "library routines are provided to
// relieve the programmer of the details" of the protocol-device dance.
//
// Dial uses CS to translate the symbolic name to all possible
// destination addresses and attempts to connect to each in turn until
// one works; specifying the special name net in the network portion
// lets CS pick a network/protocol in common with the destination.
package dialer

import (
	"errors"
	"fmt"
	"io"
	"path"
	"strings"

	"repro/internal/netmsg"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// Errors.
var (
	ErrNoDest = errors.New("dial: cannot reach any destination")
)

// Conn is an established connection: the open data file plus the
// connection directory and its ctl file, mirroring dial(2)'s dir and
// cfdp outputs.
type Conn struct {
	// Data is the connection's data file.
	Data *ns.FD
	// Ctl is the connection's ctl file.
	Ctl *ns.FD
	// Dir is the path of the connection directory, e.g. "/net/tcp/2".
	Dir string
}

var _ io.ReadWriteCloser = (*Conn)(nil)

// Read reads from the data file.
func (c *Conn) Read(p []byte) (int, error) { return c.Data.Read(p) }

// Write writes to the data file.
func (c *Conn) Write(p []byte) (int, error) { return c.Data.Write(p) }

// Close releases both files.
func (c *Conn) Close() error {
	if c.Ctl != nil {
		c.Ctl.Close()
	}
	return c.Data.Close()
}

// Push arms the connection with line-discipline modules by writing
// "push" control messages, bottom-up: Push("compress", "batch 2048 2ms")
// puts compress nearest the wire and batch on top. Both ends of a
// conversation must push the same specs in the same order — the wire
// format is symmetric, not negotiated.
func (c *Conn) Push(specs ...string) error {
	if len(specs) == 0 {
		return nil
	}
	if c.Ctl == nil {
		return errors.New("dial: connection has no ctl file")
	}
	for _, spec := range specs {
		if _, err := c.Ctl.WriteString(netmsg.Push(spec)); err != nil {
			return fmt.Errorf("push %s: %w", spec, err)
		}
	}
	return nil
}

// Push arms an incoming call before Accept, so the server side of the
// conversation runs its module stack from the first byte — the
// counterpart of Conn.Push on the dialing side.
func (c *Call) Push(specs ...string) error {
	for _, spec := range specs {
		if _, err := c.ctl.WriteString(netmsg.Push(spec)); err != nil {
			return fmt.Errorf("push %s: %w", spec, err)
		}
	}
	return nil
}

// LocalAddr reads the connection's local file.
func (c *Conn) LocalAddr(nsp *ns.Namespace) string {
	b, err := nsp.ReadFile(c.Dir + "/local")
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// RemoteAddr reads the connection's remote file.
func (c *Conn) RemoteAddr(nsp *ns.Namespace) string {
	b, err := nsp.ReadFile(c.Dir + "/remote")
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// csLines asks /net/cs to translate dest, returning "clone message"
// lines.
func csLines(nsp *ns.Namespace, dest string) ([]string, error) {
	fd, err := nsp.Open("/net/cs/cs", vfs.ORDWR)
	if err != nil {
		// No connection server: fall back to a direct translation
		// "proto!addr!service" -> /net/proto/clone addr!service.
		return directTranslate(dest)
	}
	defer fd.Close()
	if _, err := fd.WriteString(dest); err != nil {
		// CS cannot translate it (an unknown network, e.g. a raw
		// cyclone device): fall back to the direct form.
		return directTranslate(dest)
	}
	var lines []string
	buf := make([]byte, 512)
	for {
		n, err := fd.ReadAt(buf, 0)
		if n == 0 || err != nil {
			break
		}
		lines = append(lines, strings.TrimSpace(string(buf[:n])))
	}
	if len(lines) == 0 {
		return directTranslate(dest)
	}
	return lines, nil
}

// directTranslate handles explicit "proto!addr!service" destinations
// without a connection server.
func directTranslate(dest string) ([]string, error) {
	parts := strings.Split(dest, "!")
	if len(parts) < 2 || parts[0] == "net" {
		return nil, ErrNoDest
	}
	addr := strings.Join(parts[1:], "!")
	return []string{"/net/" + parts[0] + "/clone " + addr}, nil
}

// connectOne opens a clone file and connects it to addr, returning the
// connection directory, ctl, and data files.
func connectOne(nsp *ns.Namespace, clone, addr string) (*Conn, error) {
	ctl, err := nsp.Open(clone, vfs.ORDWR)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 32)
	n, err := ctl.ReadAt(buf, 0)
	if err != nil || n == 0 {
		ctl.Close()
		return nil, fmt.Errorf("dial: reading clone: %v", err)
	}
	dir := path.Dir(ns.Clean(clone)) + "/" + strings.TrimSpace(string(buf[:n]))
	if _, err := ctl.WriteString(netmsg.Connect(addr)); err != nil {
		ctl.Close()
		return nil, err
	}
	data, err := nsp.Open(dir+"/data", vfs.ORDWR)
	if err != nil {
		ctl.Close()
		return nil, err
	}
	return &Conn{Data: data, Ctl: ctl, Dir: dir}, nil
}

// Dial establishes a connection to dest, trying each translation CS
// returns until one succeeds (§5.1).
func Dial(nsp *ns.Namespace, dest string) (*Conn, error) {
	lines, err := csLines(nsp, dest)
	if err != nil {
		return nil, err
	}
	var lastErr error = ErrNoDest
	for _, line := range lines {
		clone, addr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		c, err := connectOne(nsp, clone, addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Listener is an announced service: the held ctl file keeps the
// announcement in force until closed (§5.2).
type Listener struct {
	nsp *ns.Namespace
	ctl *ns.FD
	// Dir is the announcement's protocol directory (dial(2)'s dir).
	Dir string
}

// Announce announces addr ("tcp!*!echo", or with an empty service to
// receive all services not explicitly announced) and returns the
// listener.
func Announce(nsp *ns.Namespace, addr string) (*Listener, error) {
	lines, err := csLines(nsp, addr)
	if err != nil {
		return nil, err
	}
	var lastErr error = ErrNoDest
	for _, line := range lines {
		clone, a, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		ctl, err := nsp.Open(clone, vfs.ORDWR)
		if err != nil {
			lastErr = err
			continue
		}
		buf := make([]byte, 32)
		n, rerr := ctl.ReadAt(buf, 0)
		if rerr != nil || n == 0 {
			ctl.Close()
			lastErr = rerr
			continue
		}
		dir := path.Dir(ns.Clean(clone)) + "/" + strings.TrimSpace(string(buf[:n]))
		if _, err := ctl.WriteString(netmsg.Announce(a)); err != nil {
			ctl.Close()
			lastErr = err
			continue
		}
		return &Listener{nsp: nsp, ctl: ctl, Dir: dir}, nil
	}
	return nil, lastErr
}

// Call is an incoming call delivered by Listen, holding the new
// connection's ctl file until accepted or rejected.
type Call struct {
	nsp *ns.Namespace
	ctl *ns.FD
	// Dir is the new connection's directory (listen(2)'s ldir).
	Dir string
}

// Listen blocks until a call arrives on the announcement (§5.2):
// opening the listen file blocks and yields the ctl file of the new
// connection.
func (l *Listener) Listen() (*Call, error) {
	nctl, err := l.nsp.Open(l.Dir+"/listen", vfs.ORDWR)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 32)
	n, err := nctl.ReadAt(buf, 0)
	if err != nil || n == 0 {
		nctl.Close()
		return nil, fmt.Errorf("listen: reading new ctl: %v", err)
	}
	dir := path.Dir(l.Dir) + "/" + strings.TrimSpace(string(buf[:n]))
	return &Call{nsp: l.nsp, ctl: nctl, Dir: dir}, nil
}

// Close withdraws the announcement.
func (l *Listener) Close() error { return l.ctl.Close() }

// Accept accepts the call and opens its data file.
func (c *Call) Accept() (*Conn, error) {
	data, err := c.nsp.Open(c.Dir+"/data", vfs.ORDWR)
	if err != nil {
		c.ctl.Close()
		return nil, err
	}
	return &Conn{Data: data, Ctl: c.ctl, Dir: c.Dir}, nil
}

// Reject refuses the call. Some networks accept a reason; networks
// such as IP ignore it (§5.2).
func (c *Call) Reject(reason string) error {
	c.ctl.WriteString(netmsg.Reject(reason))
	return c.ctl.Close()
}
