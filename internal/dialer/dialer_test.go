package dialer_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dialer"
	"repro/internal/vfs"
)

func paperWorld(t *testing.T) *core.World {
	t.Helper()
	w, err := core.PaperWorld(core.FastProfiles())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestDialSymbolicName(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "il!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !strings.HasPrefix(conn.Dir, "/net/il/") {
		t.Errorf("connection dir %q", conn.Dir)
	}
	conn.Write([]byte("x"))
	buf := make([]byte, 4)
	if n, err := conn.Read(buf); err != nil || string(buf[:n]) != "x" {
		t.Fatalf("echo %q, %v", buf[:n], err)
	}
}

func TestDialFallsThroughRefusedNetworks(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	// daytime only on dk: il/tcp translations will be refused first.
	done := make(chan struct{})
	l, err := dialer.Announce(helix.NS, "dk!*!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			call, err := l.Listen()
			if err != nil {
				return
			}
			c, err := call.Accept()
			if err != nil {
				return
			}
			c.Write([]byte("1993"))
			c.Close()
			select {
			case done <- struct{}{}:
			default:
			}
		}
	}()
	conn, err := dialer.Dial(musca.NS, "net!helix!daytime")
	if err != nil {
		t.Fatalf("net! dial with only dk serving: %v", err)
	}
	defer conn.Close()
	if !strings.HasPrefix(conn.Dir, "/net/dk/") {
		t.Errorf("expected the dk fallback, got %q", conn.Dir)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "1993" {
		t.Fatalf("daytime read %q, %v", buf[:n], err)
	}
}

func TestDialErrors(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	if _, err := dialer.Dial(musca.NS, "il!helix!nosuchservice"); err == nil {
		t.Error("unknown service dialed")
	}
	if _, err := dialer.Dial(musca.NS, "il!ghosthost!echo"); err == nil {
		t.Error("unknown host dialed")
	}
	if _, err := dialer.Dial(musca.NS, "malformed"); err == nil {
		t.Error("malformed destination dialed")
	}
	// A known host with nobody listening: connection refused.
	if _, err := dialer.Dial(musca.NS, "il!bootes!echo"); !vfs.SameError(err, vfs.ErrConnRef) {
		t.Errorf("refused dial error = %v", err)
	}
}

func TestAnnounceListenAcceptShape(t *testing.T) {
	// The §5.2 echo_server shape, using the library verbs.
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")

	afd, err := dialer.Announce(musca.NS, "tcp!*!login")
	if err != nil {
		t.Fatal(err)
	}
	defer afd.Close()
	if !strings.HasPrefix(afd.Dir, "/net/tcp/") {
		t.Errorf("announce dir %q", afd.Dir)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lcfd, err := afd.Listen()
		if err != nil {
			t.Error(err)
			return
		}
		dfd, err := lcfd.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer dfd.Close()
		buf := make([]byte, 256)
		n, _ := dfd.Read(buf)
		dfd.Write(buf[:n])
	}()

	conn, err := dialer.Dial(helix.NS, "tcp!musca!login")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("login: glenda"))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "login: glenda" {
		t.Fatalf("accept echo %q, %v", buf[:n], err)
	}
	wg.Wait()
}

func TestRejectRefusesCall(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	l, err := dialer.Announce(musca.NS, "il!*!rexauth")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		call, err := l.Listen()
		if err != nil {
			return
		}
		call.Reject("go away")
	}()
	conn, err := dialer.Dial(helix.NS, "il!musca!rexauth")
	if err != nil {
		return // refused at connect: fine
	}
	defer conn.Close()
	buf := make([]byte, 8)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
	t.Error("rejected call stayed connected")
}

func TestAnnounceCollision(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	a, err := dialer.Announce(musca.NS, "tcp!*!login")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := dialer.Announce(musca.NS, "tcp!*!login"); err == nil {
		t.Error("duplicate announcement succeeded")
	}
}

func TestConnAddrHelpers(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "tcp!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if ra := conn.RemoteAddr(musca.NS); ra != "135.104.9.31!7" {
		t.Errorf("remote %q", ra)
	}
	if la := conn.LocalAddr(musca.NS); !strings.HasPrefix(la, "135.104.9.6!") {
		t.Errorf("local %q", la)
	}
}
