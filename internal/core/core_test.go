package core

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dialer"
	"repro/internal/mnt"
	"repro/internal/ns"
	"repro/internal/obs"
	"repro/internal/vfs"
)

func paperWorld(t *testing.T) *World {
	t.Helper()
	w, err := PaperWorld(FastProfiles())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

func TestCsqueryTranscript(t *testing.T) {
	// % ndb/csquery
	// > net!helix!9fs
	// /net/il/clone 135.104.9.31!17008
	// /net/dk/clone nj/astro/helix!9fs
	w := paperWorld(t)
	musca := w.Machine("musca")
	lines, err := musca.NdbQuery("net!helix!9fs")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"/net/il/clone 135.104.9.31!17008": false,
		"/net/dk/clone nj/astro/helix!9fs": false,
	}
	for _, l := range lines {
		if _, ok := want[l]; ok {
			want[l] = true
		}
	}
	for l, seen := range want {
		if !seen {
			t.Errorf("csquery missing line %q (got %v)", l, lines)
		}
	}
	// IL is the protocol of choice: it must come before dk.
	ilAt, dkAt := -1, -1
	for i, l := range lines {
		if strings.HasPrefix(l, "/net/il/") {
			ilAt = i
		}
		if strings.HasPrefix(l, "/net/dk/") {
			dkAt = i
		}
	}
	if ilAt == -1 || dkAt == -1 || ilAt > dkAt {
		t.Errorf("network preference order wrong: %v", lines)
	}
}

func TestCsqueryMetaNameAuth(t *testing.T) {
	// > net!$auth!rexauth resolves the auth attribute most closely
	// associated with the source (the network entry's auth=p9auth)
	// and returns a line per common network.
	w := paperWorld(t)
	helix := w.Machine("helix")
	lines, err := helix.NdbQuery("net!$auth!rexauth")
	if err != nil {
		t.Fatal(err)
	}
	foundIL, foundDK := false, false
	for _, l := range lines {
		if l == "/net/il/clone 135.104.9.34!17021" {
			foundIL = true
		}
		if l == "/net/dk/clone nj/astro/p9auth!rexauth" {
			foundDK = true
		}
	}
	if !foundIL || !foundDK {
		t.Errorf("$auth translation wrong: %v", lines)
	}
}

func TestCsquerySpecificNetworkAndAddresses(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	// Addresses instead of symbolic names are equivalent (§5.1).
	lines, err := musca.NdbQuery("tcp!135.104.9.31!login")
	if err != nil || len(lines) != 1 || lines[0] != "/net/tcp/clone 135.104.9.31!513" {
		t.Errorf("literal address: %v, %v", lines, err)
	}
	lines, err = musca.NdbQuery("tcp!helix!login")
	if err != nil || len(lines) != 1 || lines[0] != "/net/tcp/clone 135.104.9.31!513" {
		t.Errorf("symbolic name: %v, %v", lines, err)
	}
	// Unknown service on a known net fails.
	if _, err := musca.NdbQuery("tcp!helix!flurble"); err == nil {
		t.Error("unknown service translated")
	}
	// Datakit-only machine is not offered on tcp.
	if _, err := musca.NdbQuery("tcp!philw-gnot!echo"); err == nil {
		t.Error("dk-only host resolved on tcp")
	}
}

func TestDialEchoOverEveryNetwork(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	for _, dest := range []string{"il!helix!echo", "tcp!helix!echo", "dk!nj/astro/helix!echo", "net!helix!echo"} {
		conn, err := dialer.Dial(musca.NS, dest)
		if err != nil {
			t.Errorf("dial %s: %v", dest, err)
			continue
		}
		conn.Write([]byte("ping " + dest))
		buf := make([]byte, 256)
		total := 0
		for total < len("ping "+dest) {
			n, err := conn.Read(buf[total:])
			if err != nil {
				t.Errorf("%s read: %v", dest, err)
				break
			}
			total += n
		}
		if got := string(buf[:total]); got != "ping "+dest {
			t.Errorf("%s echoed %q", dest, got)
		}
		conn.Close()
	}
}

func TestDialViaDNSOnlyName(t *testing.T) {
	// tenex is known only to the DNS zone, not to ndb: CS must go
	// through the resolver (which walks root → bootes delegation).
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "tcp!tenex.research.bell-labs.com!echo")
	if err != nil {
		t.Fatalf("dial via DNS: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte("dns"))
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "dns" {
		t.Fatalf("echo via DNS name: %q, %v", buf[:n], err)
	}
	if musca.Resolver.Queries == 0 {
		t.Error("resolver sent no queries")
	}
}

func TestNetDNSFile(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	fd, err := musca.NS.Open("/net/dns", vfs.ORDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if _, err := fd.WriteString("helix.research.bell-labs.com ip"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := fd.ReadAt(buf, 0)
	if err != nil || n == 0 {
		t.Fatalf("dns read: %d, %v", n, err)
	}
	line := strings.TrimSpace(string(buf[:n]))
	if line != "helix.research.bell-labs.com ip 135.104.9.31" {
		t.Errorf("dns line %q", line)
	}
	// CNAME chains resolve.
	if _, err := fd.WriteString("fs.research.bell-labs.com ip"); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		n, _ := fd.ReadAt(buf, 0)
		if n == 0 {
			break
		}
		lines = append(lines, strings.TrimSpace(string(buf[:n])))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "cname bootes.research.bell-labs.com") ||
		!strings.Contains(joined, "135.104.9.2") {
		t.Errorf("cname resolution: %v", lines)
	}
	// Caching: repeated queries answer from the cache.
	before := musca.Resolver.Queries
	fd.WriteString("helix.research.bell-labs.com ip")
	if musca.Resolver.Queries != before {
		t.Error("cached query went to the network")
	}
}

func TestImportGatewayParagraph(t *testing.T) {
	// §6.1: a terminal with only a Datakit connection imports /net
	// from a CPU server and can then reach TCP services:
	//
	//	import -a helix /net
	//	telnet ai.mit.edu
	w := paperWorld(t)
	gnot := w.Machine("philw-gnot")

	// Before the import the terminal has cs, dk, and the mount
	// driver's own stats dir only.
	before := gnot.LsNet()
	sort.Strings(before)
	if strings.Join(before, " ") != "cs dk mnt" {
		t.Fatalf("gnot /net before import: %v", before)
	}
	if _, err := dialer.Dial(gnot.NS, "tcp!helix!echo"); err == nil {
		t.Fatal("tcp dial succeeded without the gateway")
	}

	if _, err := gnot.Import("dk!nj/astro/helix!exportfs", "/net", "/net", ns.MAFTER); err != nil {
		t.Fatal(err)
	}

	// ls /net now shows local entries and remote ones; cs and dk
	// appear twice, as the paper's transcript shows.
	after := gnot.LsNet()
	count := map[string]int{}
	for _, n := range after {
		count[n]++
	}
	if count["cs"] != 2 || count["dk"] != 2 {
		t.Errorf("cs/dk should list twice after import -a: %v", after)
	}
	for _, want := range []string{"tcp", "il", "udp", "dns", "ether0"} {
		if count[want] != 1 {
			t.Errorf("%s missing from imported /net (%v)", want, after)
		}
	}

	// And now TCP works, relayed through helix.
	conn, err := dialer.Dial(gnot.NS, "tcp!helix!echo")
	if err != nil {
		t.Fatalf("tcp through gateway: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte("through the gateway"))
	buf := make([]byte, 64)
	total := 0
	want := "through the gateway"
	for total < len(want) {
		n, err := conn.Read(buf[total:])
		if err != nil {
			t.Fatalf("gateway echo read: %v", err)
		}
		total += n
	}
	if string(buf[:total]) != want {
		t.Errorf("gateway echo %q", buf[:total])
	}
}

func TestMount9fsFromFileServer(t *testing.T) {
	// A CPU server mounts the file server's tree over IL — the 9fs
	// service — and reads a file from it.
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	if err := bootes.Root.WriteFile("lib/motd", []byte("plan 9 from bell labs\n"), 0664); err != nil {
		t.Fatal(err)
	}
	if _, err := helix.Import("il!bootes!9fs", "/", "/n/bootes", ns.MREPL); err != nil {
		t.Fatal(err)
	}
	b, err := helix.NS.ReadFile("/n/bootes/lib/motd")
	if err != nil || string(b) != "plan 9 from bell labs\n" {
		t.Fatalf("read over 9fs/IL: %q, %v", b, err)
	}
}

func TestMount9fsOverTCPWithMarshaling(t *testing.T) {
	// The same mount over TCP exercises the §2.1 marshaling layer
	// (TCP does not preserve delimiters).
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	musca := w.Machine("musca")
	bootes.Root.WriteFile("lib/motd", []byte("via tcp"), 0664)
	if _, err := musca.Import("tcp!bootes!9fs", "/", "/n/bootes", ns.MREPL); err != nil {
		t.Fatal(err)
	}
	b, err := musca.NS.ReadFile("/n/bootes/lib/motd")
	if err != nil || string(b) != "via tcp" {
		t.Fatalf("read over 9fs/TCP: %q, %v", b, err)
	}
}

func TestNinePOverCyclone(t *testing.T) {
	// File servers and CPU servers are connected by Cyclone links
	// carrying 9P (§7): helix mounts bootes over the fiber.
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	bootes.Root.WriteFile("lib/fiber", []byte("125 Mbit/s"), 0664)
	if _, err := bootes.Serve9P("cyc0!*!9fs", "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := helix.MountRemote("cyc0!bootes!9fs", "", "/n/boot", ns.MREPL); err != nil {
		t.Fatal(err)
	}
	b, err := helix.NS.ReadFile("/n/boot/lib/fiber")
	if err != nil || string(b) != "125 Mbit/s" {
		t.Fatalf("read over cyclone: %q, %v", b, err)
	}
}

func TestWriteThroughImportedTree(t *testing.T) {
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	if _, err := helix.Import("il!bootes!9fs", "/tmp", "/n/btmp", ns.MREPL|ns.MCREATE); err != nil {
		t.Fatal(err)
	}
	if err := helix.NS.WriteFile("/n/btmp/out", []byte("written from helix"), 0664); err != nil {
		t.Fatal(err)
	}
	b, err := bootes.Root.ReadFile("tmp/out")
	if err != nil || string(b) != "written from helix" {
		t.Fatalf("file server saw %q, %v", b, err)
	}
}

func TestEchoServerListenerShape(t *testing.T) {
	// The §5.2 example: announce tcp!*!echo, listen, accept, echo —
	// but written against our dialer API on a fresh service port.
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	l, err := dialer.Announce(musca.NS, "tcp!*!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			call, err := l.Listen()
			if err != nil {
				return
			}
			go func() {
				conn, err := call.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				conn.Write([]byte("Thu Jan  7 10:00:00 EST 1993\n"))
			}()
		}
	}()
	conn, err := dialer.Dial(helix.NS, "tcp!musca!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "1993") {
		t.Fatalf("daytime read %q, %v", buf[:n], err)
	}
}

func TestRejectCall(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	l, err := dialer.Announce(musca.NS, "il!*!systat")
	if err != nil {
		// systat is a tcp-only service name; announce via tcp.
		l, err = dialer.Announce(musca.NS, "tcp!*!systat")
		if err != nil {
			t.Fatal(err)
		}
	}
	defer l.Close()
	go func() {
		call, err := l.Listen()
		if err != nil {
			return
		}
		call.Reject("not today")
	}()
	conn, err := dialer.Dial(helix.NS, "tcp!musca!systat")
	if err != nil {
		return // refused during connect: acceptable
	}
	defer conn.Close()
	// The connection may establish and then immediately hang up.
	buf := make([]byte, 16)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
	t.Error("rejected call kept a live connection")
}

func TestLocalRemoteStatusFilesViaDialer(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "il!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if ra := conn.RemoteAddr(musca.NS); ra != "135.104.9.31!56552" {
		t.Errorf("remote addr %q", ra)
	}
	if la := conn.LocalAddr(musca.NS); !strings.HasPrefix(la, "135.104.9.6!") {
		t.Errorf("local addr %q", la)
	}
}

func TestMachineBootErrors(t *testing.T) {
	w, err := NewWorld(PaperNdb)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.AddEther("ether0", FastProfiles().Ether)
	if _, err := w.NewMachine(MachineConfig{Name: "ghost", Ethers: []string{"ether0"}}); err == nil {
		t.Error("boot of undatabased machine succeeded")
	}
	if _, err := w.NewMachine(MachineConfig{Name: "helix", Ethers: []string{"nonet"}}); err == nil {
		t.Error("boot on missing segment succeeded")
	}
	if _, err := w.NewMachine(MachineConfig{Name: "helix", Datakit: true}); err == nil {
		t.Error("datakit boot without a switch succeeded")
	}
}

func TestNdbVisibleInNamespace(t *testing.T) {
	w := paperWorld(t)
	helix := w.Machine("helix")
	b, err := helix.NS.ReadFile("/lib/ndb/local")
	if err != nil || !strings.Contains(string(b), "sys=helix") {
		t.Errorf("/lib/ndb/local: %v", err)
	}
}

func TestImportOverDisciplinedConversation(t *testing.T) {
	// A 9P mount whose transport conversation runs the batch+compress
	// line disciplines: the server announces with mods, the client
	// pushes the same stack via mnt.Config.Push, and the tree works
	// exactly as over a bare conversation.
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	helix := w.Machine("helix")
	motd := strings.Repeat("plan 9 from bell labs\n", 200)
	if err := bootes.Root.WriteFile("lib/motd", []byte(motd), 0664); err != nil {
		t.Fatal(err)
	}
	mods := []string{"compress", "batch 2048 2ms"}
	stop, err := bootes.Serve9P("tcp!*!9990", "/", mods...)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := helix.MountRemoteConfig("tcp!bootes!9990", "", "/n/bootes",
		ns.MREPL, mnt.Config{Push: mods}); err != nil {
		t.Fatal(err)
	}
	b, err := helix.NS.ReadFile("/n/bootes/lib/motd")
	if err != nil || string(b) != motd {
		t.Fatalf("read over disciplined 9P: %d bytes, %v", len(b), err)
	}
	// The client conversation's stats file bills the modules: find it
	// and check the counters balance.
	ents, err := helix.NS.ReadDir("/net/tcp")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		sb, err := helix.NS.ReadFile("/net/tcp/" + e.Name + "/stats")
		if err != nil || len(sb) == 0 {
			continue
		}
		st := obs.ParseStats(string(sb))
		if st["batch-msgs-in"] == 0 {
			continue
		}
		found = true
		if st["compress-saved-bytes"]+st["compress-wire-bytes"] != st["compress-bytes-in"] {
			t.Errorf("compress identity broken:\n%s", sb)
		}
		if st["compress-saved-bytes"] == 0 {
			t.Errorf("9P carrying a repetitive file saved no bytes:\n%s", sb)
		}
		if st["compress-dec-errs"] != 0 || st["batch-errs"] != 0 {
			t.Errorf("decode errors on a clean mount:\n%s", sb)
		}
	}
	if !found {
		t.Error("no conversation shows module stats on the importing machine")
	}
}
