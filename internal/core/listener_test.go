package core

import (
	"strings"
	"testing"

	"repro/internal/dialer"
	"repro/internal/ip"
	"repro/internal/ns"
)

// TestAnnounceAllServices reproduces §5.2: "if it does not contain a
// service, the announcement is for all services not explicitly
// announced. Thus, one can easily write the equivalent of the inetd
// program without having to announce each separate service."
func TestAnnounceAllServices(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")

	// The inetd equivalent: one catch-all announcement; the handler
	// learns the requested service from the new connection's local
	// address and dispatches on it.
	l, err := dialer.Announce(musca.NS, "il!*")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			call, err := l.Listen()
			if err != nil {
				return
			}
			conn, err := call.Accept()
			if err != nil {
				continue
			}
			local := conn.LocalAddr(musca.NS)
			_, port, _ := strings.Cut(local, "!")
			conn.Write([]byte("service " + port))
			conn.Close()
		}
	}()

	// Dial two different unannounced services: the same listener
	// takes both, and each connection knows which was asked for.
	for _, port := range []string{"12345", "54321"} {
		conn, err := dialer.Dial(helix.NS, "il!musca!"+port)
		if err != nil {
			t.Fatalf("dial unannounced service %s: %v", port, err)
		}
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		conn.Close()
		if err != nil || string(buf[:n]) != "service "+port {
			t.Fatalf("service %s answered %q, %v", port, buf[:n], err)
		}
	}
}

func TestExplicitAnnouncementBeatsCatchAll(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	all, err := dialer.Announce(musca.NS, "tcp!*")
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	go func() {
		for {
			call, err := all.Listen()
			if err != nil {
				return
			}
			c, err := call.Accept()
			if err != nil {
				continue
			}
			c.Write([]byte("catch-all"))
			c.Close()
		}
	}()
	specific, err := dialer.Announce(musca.NS, "tcp!*!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer specific.Close()
	go func() {
		for {
			call, err := specific.Listen()
			if err != nil {
				return
			}
			c, err := call.Accept()
			if err != nil {
				continue
			}
			c.Write([]byte("explicit"))
			c.Close()
		}
	}()
	conn, err := dialer.Dial(helix.NS, "tcp!musca!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 32)
	n, _ := conn.Read(buf)
	if string(buf[:n]) != "explicit" {
		t.Errorf("explicitly announced service answered by %q", buf[:n])
	}
}

// subnetNdb describes the multi-subnet office of §4.1's example
// entries: two floors behind gateways, as the ipnet entries declare.
const subnetNdb = `ipnet=office ip=135.104.0.0 ipmask=255.255.255.0
ipnet=third-floor ip=135.104.51.0
	ipgw=135.104.51.1
ipnet=fourth-floor ip=135.104.52.0
	ipgw=135.104.52.1

sys=floor3-host ip=135.104.51.2
sys=floor4-host ip=135.104.52.2
sys=floors-gw ip=135.104.51.1
	ip=135.104.52.1

il=echo port=56552
tcp=echo port=7
`

// TestSubnetGatewayRouting builds the two-floor topology and checks
// that IL traffic crosses the IP gateway, with routes taken from the
// database's ipgw attributes at boot.
func TestSubnetGatewayRouting(t *testing.T) {
	w, err := NewWorld(subnetNdb)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.AddEther("floor3", FastProfiles().Ether)
	w.AddEther("floor4", FastProfiles().Ether)

	gw, err := w.NewMachine(MachineConfig{
		Name:    "floors-gw",
		Ethers:  []string{"floor3", "floor4"},
		Forward: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := w.NewMachine(MachineConfig{Name: "floor3-host", Ethers: []string{"floor3"}})
	if err != nil {
		t.Fatal(err)
	}
	h4, err := w.NewMachine(MachineConfig{Name: "floor4-host", Ethers: []string{"floor4"}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := h4.ServeEcho("il!*!echo"); err != nil {
		t.Fatal(err)
	}
	conn, err := dialer.Dial(h3.NS, "il!floor4-host!echo")
	if err != nil {
		t.Fatalf("cross-subnet dial: %v", err)
	}
	defer conn.Close()
	conn.Write([]byte("across the floors"))
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "across the floors" {
		t.Fatalf("cross-subnet echo %q, %v", buf[:n], err)
	}
	if gw.Stack.Forwarded.Load() == 0 {
		t.Error("gateway forwarded nothing; traffic took a phantom path")
	}
}

// TestSubnetMaskFromNdb checks that boot derives interface masks from
// the ipnet entries (the office /24 under a class-B address).
func TestSubnetMaskFromNdb(t *testing.T) {
	w, err := NewWorld(subnetNdb)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.AddEther("floor3", FastProfiles().Ether)
	h3, err := w.NewMachine(MachineConfig{Name: "floor3-host", Ethers: []string{"floor3"}})
	if err != nil {
		t.Fatal(err)
	}
	// A same-/24 destination must be directly routable, and the
	// database's ipgw supplies the default route beyond it.
	if _, err := h3.Stack.LocalAddrFor(ip.MustParseAddr("135.104.51.9")); err != nil {
		t.Errorf("same subnet unroutable: %v", err)
	}
	if _, err := h3.Stack.LocalAddrFor(ip.MustParseAddr("135.104.52.9")); err != nil {
		t.Errorf("ipgw default route missing: %v", err)
	}
}

// TestListenerServiceDispatch drives Machine.Serve's listener loop
// with interleaved calls on two networks.
func TestListenerServiceDispatch(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	for _, addr := range []string{"il!*!daytime", "dk!*!daytime"} {
		if _, err := musca.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
			conn.Write([]byte("Thu Jan  7 1993"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, dest := range []string{"il!musca!daytime", "dk!nj/astro/musca!daytime", "net!musca!daytime"} {
		conn, err := dialer.Dial(helix.NS, dest)
		if err != nil {
			t.Errorf("dial %s: %v", dest, err)
			continue
		}
		buf := make([]byte, 32)
		n, err := conn.Read(buf)
		if err != nil || !strings.Contains(string(buf[:n]), "1993") {
			t.Errorf("%s: %q, %v", dest, buf[:n], err)
		}
		conn.Close()
	}
}

func TestIPStatsFile(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "il!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("count"))
	buf := make([]byte, 16)
	conn.Read(buf)
	conn.Close()
	b, err := musca.NS.ReadFile("/net/ipstats")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "in: ") || !strings.Contains(s, "out: ") {
		t.Errorf("ipstats text %q", s)
	}
	if strings.Contains(s, "out: 0\n") {
		t.Error("ipstats recorded no output packets after a dial")
	}
}
