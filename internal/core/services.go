package core

import (
	"errors"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/devtree"
	"repro/internal/dialer"
	"repro/internal/exportfs"
	"repro/internal/ftp"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// Handler serves one accepted call. conn is the open connection; the
// namespace is a fresh clone for the serving process, as the Plan 9
// listener runs the owner's profile to build a name space before
// starting the service (§6.1).
type Handler func(nsp *ns.Namespace, conn *dialer.Conn)

// Serve announces addr (e.g. "il!*!9fs" or "net!*!echo") and
// dispatches each call to handler in its own goroutine — the paper's
// listener, its inetd equivalent. It returns a stop function.
//
// mods, if given, are line-discipline specs pushed on every accepted
// conversation before its data file opens (bottom-up, §2.4.1), so the
// service runs its module stack from the first byte; dialers must
// push the same specs in the same order.
func (m *Machine) Serve(addr string, handler Handler, mods ...string) (func(), error) {
	l, err := dialer.Announce(m.NS, addr)
	if err != nil {
		return nil, err
	}
	ck := m.World.Clock()
	done := make(chan struct{})
	ck.Go(func() {
		for {
			call, err := l.Listen()
			if err != nil {
				// A full conversation table is transient — a dial
				// storm has every slot busy until handlers hang up.
				// Back off and keep listening; anything else means
				// the announcement itself is gone.
				if !errors.Is(err, vfs.ErrInUse) {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				ck.Sleep(time.Millisecond)
				continue
			}
			select {
			case <-done:
				call.Reject("shutting down")
				return
			default:
			}
			ck.Go(func() {
				// Arm the conversation before data opens: once the
				// dialer starts writing, both ends must already run
				// the same module stack.
				if len(mods) > 0 {
					if err := call.Push(mods...); err != nil {
						call.Reject("cannot push modules")
						return
					}
				}
				conn, err := call.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				handler(m.NS.Clone(), conn)
			})
		}
	})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(done)
			l.Close()
		})
	}
	m.onClose(stop)
	return stop, nil
}

// ServeEcho runs the echo service of §5.2's example listener.
func (m *Machine) ServeEcho(addr string) (func(), error) {
	return m.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
		buf := make([]byte, 8192)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				if _, werr := conn.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	})
}

// ServeDiscard runs the discard service.
func (m *Machine) ServeDiscard(addr string) (func(), error) {
	return m.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
		io.Copy(io.Discard, conn)
	})
}

// msgConnFor picks 9P framing by network: IL, Datakit/URP, and
// Cyclone preserve delimiters; TCP needs the marshaling adapter
// (§2.1).
func msgConnFor(conn *dialer.Conn) ninep.MsgConn {
	if strings.HasPrefix(conn.Dir, "/net/tcp/") {
		return ninep.NewStreamConn(conn)
	}
	return ninep.NewDelimConn(conn)
}

// ServeExportfs announces the exportfs service (§6.1): every accepted
// call joins this machine's shared multi-tenant gateway server — one
// name space, one worker pool, one cfs-style read cache — rather than
// getting a private relay. The attach name selects the exported
// subtree; /net/export/stats carries the per-connection bill.
func (m *Machine) ServeExportfs(addr string, mods ...string) (func(), error) {
	srv, err := m.exportSrv()
	if err != nil {
		return nil, err
	}
	return m.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
		srv.ServeConn(msgConnFor(conn))
	}, mods...)
}

// exportSrv lazily builds the machine's shared export server and
// mounts its stats file at /net/export/stats.
func (m *Machine) exportSrv() (*exportfs.Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.export != nil {
		return m.export, nil
	}
	srv := exportfs.NewServer(m.NS, exportfs.Config{Clock: m.World.Clock()})
	if err := m.Root.MkdirAll("net/export", 0775); err != nil {
		return nil, err
	}
	if err := m.Root.WriteFile("net/export/stats", nil, 0444); err != nil {
		return nil, err
	}
	stats := devtree.TextFile(devtree.MkFile("stats", m.Name, 0444),
		func() (string, error) { return srv.Stats(), nil })
	if err := m.NS.MountNode(stats, "/net/export/stats", ns.MREPL); err != nil {
		return nil, err
	}
	m.export = srv
	return srv, nil
}

// Exportfs returns the machine's shared export server, nil before
// ServeExportfs has announced it.
func (m *Machine) Exportfs() *exportfs.Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.export
}

// Import dials the exportfs service on a remote machine and mounts
// its subtree at old with the given bind flag: the import command of
// §6.1. dest is a dial string such as "net!helix!exportfs". The mount
// keeps the serial driver's exact RPC mapping — windowed fan-out,
// readahead, and write-behind stay off because imports usually carry
// live device trees (see ImportConfig).
func (m *Machine) Import(dest, remotePath, old string, flag int) (*ninep.Client, error) {
	return m.ImportConfig(dest, remotePath, old, flag, mnt.Config{})
}

// ImportConfig is Import with an explicit mount-driver configuration —
// mnt.FileConfig() (windowed transfers, readahead, write-behind) for a
// plain file tree; the zero Config is the serial RPC-per-fragment
// driver.
func (m *Machine) ImportConfig(dest, remotePath, old string, flag int, cfg mnt.Config) (*ninep.Client, error) {
	if cfg.Client.Clock == nil {
		cfg.Client.Clock = m.World.Clock()
	}
	conn, err := dialer.Dial(m.NS, dest)
	if err != nil {
		return nil, err
	}
	if err := conn.Push(cfg.Push...); err != nil {
		conn.Close()
		return nil, err
	}
	remotePath = strings.TrimPrefix(ns.Clean(remotePath), "/")
	cl, err := exportfs.ImportConfig(m.NS, msgConnFor(conn), remotePath, old, flag, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	m.addMntClient(cl)
	m.onClose(func() { cl.Close() })
	return cl, nil
}

// MountRemote dials dest and mounts the 9P tree served there (e.g. a
// file server speaking 9P directly on a Cyclone link).
func (m *Machine) MountRemote(dest, aname, old string, flag int) (*ninep.Client, error) {
	return m.MountRemoteConfig(dest, aname, old, flag, mnt.Config{})
}

// MountRemoteConfig is MountRemote with an explicit mount-driver
// configuration.
func (m *Machine) MountRemoteConfig(dest, aname, old string, flag int, cfg mnt.Config) (*ninep.Client, error) {
	if cfg.Client.Clock == nil {
		cfg.Client.Clock = m.World.Clock()
	}
	conn, err := dialer.Dial(m.NS, dest)
	if err != nil {
		return nil, err
	}
	if err := conn.Push(cfg.Push...); err != nil {
		conn.Close()
		return nil, err
	}
	root, cl, err := mnt.MountConfig(msgConnFor(conn), m.NS.User(), aname, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := m.NS.MountNode(root, old, flag); err != nil {
		cl.Close()
		conn.Close()
		return nil, err
	}
	m.addMntClient(cl)
	m.onClose(func() { cl.Close() })
	return cl, nil
}

// Serve9P serves a subtree of this machine's name space as a plain 9P
// file service (the "9fs" service a file server exposes). Like the
// exportfs service, all calls share one multi-tenant server and its
// read cache, re-rooted at root.
func (m *Machine) Serve9P(addr, root string, mods ...string) (func(), error) {
	srv := exportfs.NewServer(m.NS, exportfs.Config{
		Root:  root,
		Clock: m.World.Clock(),
	})
	return m.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
		srv.ServeConn(msgConnFor(conn))
	}, mods...)
}

// ServeFTP runs the FTP service of §6.2 (the "remote system" end),
// serving root from this machine's name space.
func (m *Machine) ServeFTP(addr, root string, cfg ftp.ServerConfig) (func(), error) {
	addrs := m.Stack.Addrs()
	if len(addrs) == 0 {
		return nil, vfs.ErrNoNet
	}
	ann := ftp.MachineAnnouncer{NS: m.NS, HostAddr: addrs[0].String()}
	cfg.Root = root
	return m.Serve(addr, func(nsp *ns.Namespace, conn *dialer.Conn) {
		ftp.ServeSession(nsp, conn, ann, cfg)
	})
}

// MountFTP is the ftpfs command: it dials the FTP port of a remote
// system, logs in, sets image mode, and mounts the remote file system
// (conventionally onto /n/ftp).
func (m *Machine) MountFTP(dest, user, pass, old string) (*ftp.FS, error) {
	fs, err := ftp.Dial(m.NS, dest, user, pass)
	if err != nil {
		return nil, err
	}
	if err := m.NS.MountDevice(fs, "", old, ns.MREPL); err != nil {
		fs.Close()
		return nil, err
	}
	m.onClose(func() { fs.Close() })
	return fs, nil
}
