package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dialer"
	"repro/internal/exportfs"
	"repro/internal/mnt"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// TestCpuSession reproduces §6's cpu: the remote process's name space
// is an analogue of the terminal's window — the terminal serves its
// files over the call with exportfs, the CPU server mounts them at
// /mnt/term in the session's own (cloned) name space, computes, and
// writes the result back into the terminal.
func TestCpuSession(t *testing.T) {
	w := paperWorld(t)
	helix := w.Machine("helix")
	musca := w.Machine("musca") // the terminal

	done := make(chan string, 1)
	if _, err := helix.Serve("il!*!cpu", func(nsp *ns.Namespace, conn *dialer.Conn) {
		root, cl, err := mnt.Mount(ninep.NewDelimConn(conn), nsp.User(), "")
		if err != nil {
			done <- err.Error()
			return
		}
		defer cl.Close()
		if err := nsp.MountNode(root, "/mnt/term", ns.MREPL); err != nil {
			done <- err.Error()
			return
		}
		b, err := nsp.ReadFile("/mnt/term/tmp/in")
		if err != nil {
			done <- err.Error()
			return
		}
		out := strings.ToUpper(string(b))
		if err := nsp.WriteFile("/mnt/term/tmp/out", []byte(out), 0664); err != nil {
			done <- err.Error()
			return
		}
		done <- "ok"
	}); err != nil {
		t.Fatal(err)
	}

	if err := musca.NS.WriteFile("/tmp/in", []byte("shout this"), 0664); err != nil {
		t.Fatal(err)
	}
	conn, err := dialer.Dial(musca.NS, "il!helix!cpu")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go exportfs.Serve(ninep.NewDelimConn(conn), musca.NS, "/")

	select {
	case msg := <-done:
		if msg != "ok" {
			t.Fatal(msg)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cpu session never completed")
	}
	b, err := musca.NS.ReadFile("/tmp/out")
	if err != nil || string(b) != "SHOUT THIS" {
		t.Fatalf("terminal result %q, %v", b, err)
	}

	// The session ran in a cloned name space: the machine's own view
	// has no /mnt/term.
	if _, err := helix.NS.Stat("/mnt/term"); !vfs.SameError(err, vfs.ErrNotExist) {
		t.Errorf("session mount leaked into the machine name space: %v", err)
	}
}
