package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cs"
	"repro/internal/cyclone"
	"repro/internal/datakit"
	"repro/internal/devtree"
	"repro/internal/dnssrv"
	"repro/internal/ether"
	"repro/internal/exportfs"
	"repro/internal/il"
	"repro/internal/ip"
	"repro/internal/mnt"
	"repro/internal/ndb"
	"repro/internal/netdev"
	"repro/internal/ninep"
	"repro/internal/ns"
	"repro/internal/obs"
	"repro/internal/ramfs"
	"repro/internal/tcp"
	"repro/internal/uart"
	"repro/internal/udp"
	"repro/internal/vfs"
)

// MachineConfig describes one machine to boot. The machine's
// addresses come from its database entry, so configuration matches
// administration, as the paper intends.
type MachineConfig struct {
	// Name is the machine's sys= name in the database.
	Name string
	// Ethers lists the segment names to attach, consuming the
	// entry's ip= addresses in order.
	Ethers []string
	// Datakit attaches the machine to the switch under its dk= name.
	Datakit bool
	// Forward makes the machine an IP gateway.
	Forward bool
	// IL tunes the IL protocol (ablation experiments).
	IL il.Config
	// ServeDNS, if non-nil, runs an authoritative server for the
	// zone on this machine's UDP port 53.
	ServeDNS *dnssrv.Zone
}

// Machine is one booted Plan 9 system: terminal, CPU server, or file
// server — they differ only in what they run, not in the kernel
// (§1).
type Machine struct {
	Name  string
	World *World

	// NS is the machine's prototype name space; processes Clone it.
	NS   *ns.Namespace
	Root *ramfs.FS

	Stack *ip.Stack
	IL    *il.Proto
	TCP   *tcp.Proto
	UDP   *udp.Proto
	DK    *datakit.Proto

	CS       *cs.Server
	Resolver *dnssrv.Resolver

	mu      sync.Mutex
	closers []func()
	nextCyc int
	uartDev *uart.Dev
	mntCls  []*ninep.Client  // mount-driver clients, for /net/mnt/stats
	export  *exportfs.Server // shared gateway server, for /net/export/stats
}

// addMntClient records a mount-driver client so /net/mnt/stats can
// aggregate its RPC figures.
func (m *Machine) addMntClient(cl *ninep.Client) {
	m.mu.Lock()
	m.mntCls = append(m.mntCls, cl)
	m.mu.Unlock()
}

// mntStats renders /net/mnt/stats: the mount driver's process-wide
// readahead/write-behind counters, then the RPC engine figures summed
// over this machine's mount clients (rpcs, flushes, the deepest
// in-flight window seen, and the merged RPC latency histogram).
func (m *Machine) mntStats() string {
	var b strings.Builder
	b.WriteString(mnt.StatsGroup().Render())
	m.mu.Lock()
	cls := append([]*ninep.Client(nil), m.mntCls...)
	m.mu.Unlock()
	var rpcs, flushes, wmax int64
	var hist obs.HistSnap
	for _, cl := range cls {
		rpcs += cl.RPCs.Load()
		flushes += cl.Flushes.Load()
		if w := cl.WindowHW.Load(); w > wmax {
			wmax = w
		}
		hist.Merge(cl.RPCHist.SnapshotHist())
	}
	fmt.Fprintf(&b, "mounts: %d\nrpcs: %d\nflushes: %d\nwindow-max: %d\n",
		len(cls), rpcs, flushes, wmax)
	b.WriteString(hist.Render("rpc"))
	return b.String()
}

// NewMachine boots a machine into the world.
func (w *World) NewMachine(cfg MachineConfig) (*Machine, error) {
	m := &Machine{Name: cfg.Name, World: w}
	m.Root = ramfs.New(cfg.Name)
	for _, d := range []string{"net", "tmp", "lib/ndb", "n", "srv", "dev", "bin"} {
		if err := m.Root.MkdirAll(d, 0775); err != nil {
			return nil, err
		}
	}
	if err := m.Root.WriteFile("lib/ndb/local", w.ndbText, 0664); err != nil {
		return nil, err
	}
	m.NS = ns.New(cfg.Name, m.Root.Root())

	// IP stack and Ethernet interfaces.
	m.Stack = ip.NewStackClock(w.clock)
	m.Stack.SetForwarding(cfg.Forward)
	if len(cfg.Ethers) > 0 {
		addrs, err := w.sysAddrs(cfg.Name)
		if err != nil {
			return nil, err
		}
		if len(addrs) < len(cfg.Ethers) {
			return nil, fmt.Errorf("core: %s has %d ip addresses for %d interfaces",
				cfg.Name, len(addrs), len(cfg.Ethers))
		}
		for i, segName := range cfg.Ethers {
			seg := w.Ether(segName)
			if seg == nil {
				return nil, fmt.Errorf("core: no segment %q", segName)
			}
			ifc := seg.NewInterface(fmt.Sprintf("ether%d", i))
			mask := w.maskFor(addrs[i])
			if _, err := m.Stack.Bind(ifc, addrs[i], mask); err != nil {
				return nil, err
			}
			dev := ether.NewDev(ifc, cfg.Name)
			point := fmt.Sprintf("/net/ether%d", i)
			m.Root.MkdirAll("net/ether"+fmt.Sprint(i), 0775)
			if err := m.NS.MountDevice(dev, "", point, ns.MREPL); err != nil {
				return nil, err
			}
		}
		// Gateway route from the database (the subnet's ipgw).
		if gw, ok := w.db.IPInfo(cfg.Name, "ipgw"); ok {
			if gwa, err := ip.ParseAddr(gw); err == nil && !m.Stack.IsLocal(gwa) {
				m.Stack.AddDefaultRoute(gwa)
			}
		}

		// Transport protocols, each a protocol device under /net.
		m.IL = il.New(m.Stack, cfg.IL)
		m.TCP = tcp.New(m.Stack)
		m.UDP = udp.New(m.Stack)
		for _, p := range []struct {
			dev  vfs.Device
			name string
		}{
			{netdev.New(m.IL, cfg.Name), "il"},
			{netdev.New(m.TCP, cfg.Name), "tcp"},
			{netdev.New(m.UDP, cfg.Name), "udp"},
		} {
			m.Root.MkdirAll("net/"+p.name, 0775)
			if err := m.NS.MountDevice(p.dev, "", "/net/"+p.name, ns.MREPL); err != nil {
				return nil, err
			}
		}
	}

	// Datakit.
	if cfg.Datakit {
		w.mu.Lock()
		sw := w.dk
		w.mu.Unlock()
		if sw == nil {
			return nil, fmt.Errorf("core: world has no Datakit switch")
		}
		e, ok := w.db.QueryOne("sys", cfg.Name)
		if !ok {
			return nil, fmt.Errorf("core: %s not in database", cfg.Name)
		}
		dkName, ok := e.Get("dk")
		if !ok {
			return nil, fmt.Errorf("core: %s has no dk= address", cfg.Name)
		}
		host, err := sw.NewHost(dkName)
		if err != nil {
			return nil, err
		}
		m.DK = datakit.NewProto(host)
		m.Root.MkdirAll("net/dk", 0775)
		if err := m.NS.MountDevice(netdev.New(m.DK, cfg.Name), "", "/net/dk", ns.MREPL); err != nil {
			return nil, err
		}
	}

	// The IP stack's counters, in the ASCII style of the kernel's
	// status files.
	if len(cfg.Ethers) > 0 {
		m.Root.WriteFile("net/ipstats", nil, 0444)
		stats := devtree.TextFile(devtree.MkFile("ipstats", cfg.Name, 0444),
			func() (string, error) { return m.Stack.Stats(), nil })
		if err := m.NS.MountNode(stats, "/net/ipstats", ns.MREPL); err != nil {
			return nil, err
		}
	}

	// The mount driver's pipelining counters plus aggregated 9P RPC
	// figures, one stats file per machine, importable like the rest
	// of /net (§6.1).
	m.Root.MkdirAll("net/mnt", 0775)
	m.Root.WriteFile("net/mnt/stats", nil, 0444)
	mntStats := devtree.TextFile(devtree.MkFile("stats", cfg.Name, 0444),
		func() (string, error) { return m.mntStats(), nil })
	if err := m.NS.MountNode(mntStats, "/net/mnt/stats", ns.MREPL); err != nil {
		return nil, err
	}

	// DNS: resolver (and /net/dns) when the machine has IP; an
	// authoritative server when configured.
	if m.UDP != nil {
		w.mu.Lock()
		roots := append([]ip.Addr(nil), w.dnsRoots...)
		w.mu.Unlock()
		if len(roots) > 0 {
			m.Resolver = dnssrv.NewResolver(m.UDP, roots)
			m.Root.WriteFile("net/dns", nil, 0666)
			if err := m.NS.MountNode(dnssrv.Node(m.Resolver, cfg.Name), "/net/dns", ns.MREPL); err != nil {
				return nil, err
			}
		}
		if cfg.ServeDNS != nil {
			srv, err := dnssrv.Serve(m.UDP, cfg.ServeDNS)
			if err != nil {
				return nil, err
			}
			m.onClose(srv.Close)
		}
	}

	// The connection server.
	resolve := func(domain string) ([]ip.Addr, error) {
		if m.Resolver == nil {
			return nil, dnssrv.ErrNoAnswer
		}
		return m.Resolver.LookupA(domain)
	}
	// CS lists every network the machine could ever speak, in
	// preference order, and probes /net at query time: networks that
	// arrive later by import (§6.1) become dialable automatically.
	m.CS = cs.New(cs.Config{
		SysName: cfg.Name,
		DB:      w.db,
		Networks: []cs.Network{
			{Name: "il", Clone: "/net/il/clone", Kind: cs.KindIP},
			{Name: "tcp", Clone: "/net/tcp/clone", Kind: cs.KindIP},
			{Name: "udp", Clone: "/net/udp/clone", Kind: cs.KindIP},
			{Name: "dk", Clone: "/net/dk/clone", Kind: cs.KindDatakit},
		},
		Probe: func(clone string) bool {
			_, err := m.NS.Stat(clone)
			return err == nil
		},
		Resolve: resolve,
		Clock:   w.clock,
	})
	m.Root.MkdirAll("net/cs", 0775)
	if err := m.NS.MountNode(m.CS.Node(cfg.Name), "/net/cs", ns.MREPL); err != nil {
		return nil, err
	}

	w.mu.Lock()
	w.machines[cfg.Name] = m
	w.mu.Unlock()
	return m, nil
}

// AttachUART mounts a serial-line end as /dev/eia<n> and
// /dev/eia<n>ctl (§2.2) — the slow links that serve users at home.
func (m *Machine) AttachUART(n int, end *uart.End) error {
	m.mu.Lock()
	dev := m.uartDev
	if dev == nil {
		dev = uart.NewDev(m.Name)
		m.uartDev = dev
	}
	m.mu.Unlock()
	dev.Add(n, end)
	return m.NS.MountDevice(dev, "", "/dev", ns.MREPL)
}

// AttachCyclone mounts one end of a Cyclone link as /net/cyc<N>.
// Cyclone links carry 9P between file servers and CPU servers (§7).
func (m *Machine) AttachCyclone(end *cyclone.End) (string, error) {
	m.mu.Lock()
	n := m.nextCyc
	m.nextCyc++
	m.mu.Unlock()
	name := fmt.Sprintf("cyc%d", n)
	m.Root.MkdirAll("net/"+name, 0775)
	if err := m.NS.MountDevice(netdev.New(end, m.Name), "", "/net/"+name, ns.MREPL); err != nil {
		return "", err
	}
	return "/net/" + name, nil
}

// onClose registers a teardown hook.
func (m *Machine) onClose(f func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closers = append(m.closers, f)
}

// Close shuts the machine down.
func (m *Machine) Close() {
	m.mu.Lock()
	closers := m.closers
	m.closers = nil
	m.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
	// Kill the protocol engines before the stack: dying conversations
	// wake their timers and any reader still blocked in a service
	// handler, so machine teardown leaves no goroutine behind.
	if m.TCP != nil {
		m.TCP.Close()
	}
	if m.IL != nil {
		m.IL.Close()
	}
	if m.Stack != nil {
		m.Stack.Close()
	}
}

// Entry returns the machine's database entry.
func (m *Machine) Entry() (ndb.Entry, bool) {
	return m.World.db.QueryOne("sys", m.Name)
}

// LsNet formats the names visible in /net, the way the paper's
// transcripts show "ls /net" (§6.1) — duplicates preserved.
func (m *Machine) LsNet() []string {
	ents, err := m.NS.ReadDir("/net")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	return names
}

// NdbQuery runs a csquery-style translation on this machine.
func (m *Machine) NdbQuery(q string) ([]string, error) {
	fd, err := m.NS.Open("/net/cs/cs", vfs.ORDWR)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	if _, err := fd.WriteString(q); err != nil {
		return nil, err
	}
	var lines []string
	buf := make([]byte, 512)
	for {
		n, err := fd.ReadAt(buf, 0)
		if n == 0 || err != nil {
			return lines, nil
		}
		lines = append(lines, strings.TrimSpace(string(buf[:n])))
	}
}
