package core

import (
	"time"

	"repro/internal/cyclone"
	"repro/internal/dnssrv"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/medium"
)

// PaperNdb is the world's database, built from the entries printed in
// §4.1 of the paper plus the systems its examples mention (musca,
// p9auth, philw's gnot) and the service ports its transcripts use.
const PaperNdb = `#
# local database, after §4.1 of the paper
#
ipnet=mh-astro-net ip=135.104.0.0 ipmask=255.255.255.0
	fs=bootes.research.bell-labs.com
	auth=p9auth
ipnet=unix-room ip=135.104.117.0
	ipgw=135.104.117.1
ipnet=third-floor ip=135.104.51.0
	ipgw=135.104.51.1
ipnet=fourth-floor ip=135.104.52.0
	ipgw=135.104.52.1

sys=bootes
	dom=bootes.research.bell-labs.com
	ip=135.104.9.2
	proto=il flavor=9fs
sys=helix
	dom=helix.research.bell-labs.com
	bootf=/mips/9power
	ip=135.104.9.31 ether=0800690222f0
	dk=nj/astro/helix
	proto=il flavor=9cpu
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6
	dk=nj/astro/musca
	proto=il flavor=9cpu
sys=p9auth
	dom=p9auth.research.bell-labs.com
	ip=135.104.9.34
	dk=nj/astro/p9auth
sys=philw-gnot
	dk=nj/astro/philw-gnot
sys=a-root
	dom=a.root-servers.net
	ip=135.104.9.100

tcp=echo	port=7
tcp=discard	port=9
tcp=systat	port=11
tcp=daytime	port=13
tcp=login	port=513
tcp=exportfs	port=17007
tcp=9fs		port=564
tcp=ftp		port=21
il=echo		port=56552
il=discard	port=56553
il=daytime	port=56554
il=systat	port=56556
il=9fs		port=17008
il=exportfs	port=17666
il=rexauth	port=17021
il=cpu		port=17010
tcp=cpu		port=17013
il=bench	port=56990
tcp=bench	port=56990
udp=dns		port=53
`

// PaperProfiles are the media calibrations for the Table 1
// reproduction, scaled from the 1993 hardware: Ethernet ~10 Mb/s,
// Datakit ~2 Mb/s cell traffic with higher latency, Cyclone 125 Mb/s
// point-to-point fiber.
type PaperProfiles struct {
	Ether   ether.Profile
	Datakit medium.Profile
	Cyclone medium.Profile
}

// CalibratedProfiles returns profiles matching the paper's relative
// media speeds.
func CalibratedProfiles() PaperProfiles {
	return PaperProfiles{
		Ether: ether.Profile{
			Bandwidth: 10_000_000 / 8, // 10 Mb/s
			Latency:   200 * time.Microsecond,
		},
		Datakit: medium.Profile{
			Bandwidth: 2_000_000 / 8, // ~2 Mb/s trunk
			Latency:   400 * time.Microsecond,
			MTU:       2048,
		},
		Cyclone: medium.Profile{
			// The fiber runs at 125 Mb/s but the paper measured
			// 3.2 MB/s end to end: the VME-card software copy is
			// the bottleneck, so the effective rate is what the
			// link profile models.
			Bandwidth: 3_500_000,
			Latency:   50 * time.Microsecond,
		},
	}
}

// FastProfiles returns ideal media for functional tests: synchronous
// delivery at memory speed.
func FastProfiles() PaperProfiles {
	return PaperProfiles{}
}

// WANProfiles stretches the office topology across a wide-area link:
// plenty of bandwidth, but every medium carries multi-millisecond
// latency. This is where a serial RPC-per-fragment mount driver is
// purely latency-bound and the sliding window pays off most (see
// EXPERIMENTS.md).
func WANProfiles() PaperProfiles {
	return PaperProfiles{
		Ether: ether.Profile{
			Bandwidth: 100_000_000 / 8, // 100 Mb/s
			Latency:   5 * time.Millisecond,
		},
		Datakit: medium.Profile{
			Bandwidth: 10_000_000 / 8,
			Latency:   10 * time.Millisecond,
			MTU:       2048,
		},
		Cyclone: medium.Profile{
			Bandwidth: 100_000_000 / 8,
			Latency:   5 * time.Millisecond,
		},
	}
}

// PaperWorld builds the paper's topology:
//
//   - an office Ethernet carrying bootes (the file server), helix and
//     musca (CPU servers), p9auth (the auth box), and a-root (a root
//     name server);
//   - the Datakit, reaching helix, musca, p9auth, and philw's gnot —
//     a terminal with only a Datakit connection (§6.1);
//   - a Cyclone fiber link between bootes and helix (§7);
//   - DNS: a-root serves the root zone, bootes is authoritative for
//     research.bell-labs.com;
//   - services: 9fs and exportfs on the servers, echo and discard on
//     helix.
func PaperWorld(profiles PaperProfiles) (*World, error) {
	w, err := NewWorld(PaperNdb)
	if err != nil {
		return nil, err
	}
	w.AddEther("ether0", profiles.Ether)
	w.AddDatakit(profiles.Datakit)
	w.SetDNSRoots(ip.Addr{135, 104, 9, 100})

	// DNS zones.
	rootZone := dnssrv.NewZone("")
	rootZone.Delegate("research.bell-labs.com", "bootes.research.bell-labs.com", "135.104.9.2")
	rblZone := dnssrv.NewZone("research.bell-labs.com")
	for _, hz := range [][2]string{
		{"bootes.research.bell-labs.com", "135.104.9.2"},
		{"helix.research.bell-labs.com", "135.104.9.31"},
		{"musca.research.bell-labs.com", "135.104.9.6"},
		{"p9auth.research.bell-labs.com", "135.104.9.34"},
	} {
		rblZone.AddA(hz[0], hz[1])
	}
	rblZone.Add(dnssrv.RR{Name: "fs.research.bell-labs.com", Type: dnssrv.TypeCNAME,
		Data: "bootes.research.bell-labs.com"})
	// A host known only to DNS (not in ndb), so dialing it exercises
	// the CS → DNS path; it is an alias address of helix.
	rblZone.AddA("tenex.research.bell-labs.com", "135.104.9.31")

	boot := func(cfg MachineConfig) (*Machine, error) {
		m, err := w.NewMachine(cfg)
		if err != nil {
			w.Close()
			return nil, err
		}
		return m, nil
	}

	if _, err := boot(MachineConfig{Name: "a-root", Ethers: []string{"ether0"}, ServeDNS: rootZone}); err != nil {
		return nil, err
	}
	bootes, err := boot(MachineConfig{Name: "bootes", Ethers: []string{"ether0"}, ServeDNS: rblZone})
	if err != nil {
		return nil, err
	}
	helix, err := boot(MachineConfig{Name: "helix", Ethers: []string{"ether0"}, Datakit: true})
	if err != nil {
		return nil, err
	}
	musca, err := boot(MachineConfig{Name: "musca", Ethers: []string{"ether0"}, Datakit: true})
	if err != nil {
		return nil, err
	}
	if _, err := boot(MachineConfig{Name: "p9auth", Ethers: []string{"ether0"}, Datakit: true}); err != nil {
		return nil, err
	}
	gnot, err := boot(MachineConfig{Name: "philw-gnot", Datakit: true})
	if err != nil {
		return nil, err
	}
	_ = gnot

	// The Cyclone link between the file server and a CPU server.
	link := cyclone.NewLink("bootes-helix", profiles.Cyclone)
	w.OnClose(link.Close)
	endB, endH := link.Ends()
	if _, err := bootes.AttachCyclone(endB); err != nil {
		w.Close()
		return nil, err
	}
	if _, err := helix.AttachCyclone(endH); err != nil {
		w.Close()
		return nil, err
	}

	// Services.
	type svc struct {
		m    *Machine
		addr string
		kind string
	}
	services := []svc{
		{bootes, "il!*!9fs", "9fs"},
		{bootes, "tcp!*!9fs", "9fs"},
		{bootes, "il!*!exportfs", "exportfs"},
		{helix, "il!*!exportfs", "exportfs"},
		{helix, "tcp!*!exportfs", "exportfs"},
		{helix, "dk!*!exportfs", "exportfs"},
		{helix, "il!*!echo", "echo"},
		{helix, "tcp!*!echo", "echo"},
		{helix, "dk!*!echo", "echo"},
		{helix, "il!*!discard", "discard"},
		{helix, "tcp!*!discard", "discard"},
		{musca, "il!*!exportfs", "exportfs"},
		{musca, "dk!*!exportfs", "exportfs"},
	}
	for _, s := range services {
		var err error
		switch s.kind {
		case "9fs":
			_, err = s.m.Serve9P(s.addr, "/")
		case "exportfs":
			_, err = s.m.ServeExportfs(s.addr)
		case "echo":
			_, err = s.m.ServeEcho(s.addr)
		case "discard":
			_, err = s.m.ServeDiscard(s.addr)
		}
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}
