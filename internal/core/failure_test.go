package core

import (
	"io"
	"testing"
	"time"

	"repro/internal/dialer"
	"repro/internal/il"
	"repro/internal/ns"
	"repro/internal/vfs"
)

// TestPartitionKillsConnections injects a network partition: the
// remote stack goes away mid-conversation and the local end must fail
// within the (shortened) death time rather than hang.
func TestPartitionKillsConnections(t *testing.T) {
	w, err := NewWorld(PaperNdb)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.AddEther("ether0", FastProfiles().Ether)
	short := il.Config{DeathTime: 300 * time.Millisecond}
	helix, err := w.NewMachine(MachineConfig{Name: "helix", Ethers: []string{"ether0"}, IL: short})
	if err != nil {
		t.Fatal(err)
	}
	musca, err := w.NewMachine(MachineConfig{Name: "musca", Ethers: []string{"ether0"}, IL: short})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := helix.ServeEcho("il!*!echo"); err != nil {
		t.Fatal(err)
	}
	conn, err := dialer.Dial(musca.NS, "il!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("alive"))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	// The partition: helix vanishes.
	helix.Stack.Close()

	// Unacknowledged traffic must eventually kill the conversation.
	conn.Write([]byte("into the void"))
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		for {
			if _, err := conn.Read(buf); err != nil {
				errCh <- err
				return
			}
		}
	}()
	select {
	case <-errCh:
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("death took %v", el)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("partitioned connection never died")
	}
}

// TestMountSurvivesServerRestartAttempt: a 9P mount whose server dies
// reports errors on use instead of wedging the name space.
func TestMountDeathReportsErrors(t *testing.T) {
	w := paperWorld(t)
	bootes := w.Machine("bootes")
	musca := w.Machine("musca")
	bootes.Root.WriteFile("lib/alive", []byte("yes"), 0664)
	cl, err := musca.Import("tcp!bootes!9fs", "/", "/n/b", ns.MREPL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := musca.NS.ReadFile("/n/b/lib/alive"); err != nil {
		t.Fatal(err)
	}
	// Kill the transport from the client side (the clean half of a
	// server death) and verify errors, not hangs.
	cl.Close()
	done := make(chan error, 1)
	go func() {
		_, err := musca.NS.ReadFile("/n/b/lib/alive")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read through dead mount succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read through dead mount hung")
	}
	// The rest of the name space is unharmed.
	if _, err := musca.NS.Stat("/net/cs"); err != nil {
		t.Errorf("name space damaged: %v", err)
	}
}

// TestOutOfWindowDiscard drives more data than the IL window while the
// receiver's reader is wedged behind a full stream, then confirms the
// "messages outside the window are discarded" path ran (§3).
func TestWindowEnforcedUnderPressure(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	// A sink that reads slowly.
	slowDone := make(chan struct{})
	if _, err := helix.Serve("il!*!daytime", func(nsp *ns.Namespace, conn *dialer.Conn) {
		<-slowDone // never reads until the test ends
	}); err != nil {
		t.Fatal(err)
	}
	defer close(slowDone)
	conn, err := dialer.Dial(musca.NS, "il!helix!daytime")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Writers may block once Window messages are unacked... but acks
	// flow even unread (the stream buffers), so pump enough to prove
	// the window never lets more than Window messages be outstanding.
	for range 100 {
		if _, err := conn.Write([]byte("pressure")); err != nil {
			break
		}
	}
	st, err := musca.NS.ReadFile(conn.Dir + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if len(st) == 0 {
		t.Fatal("empty status")
	}
}

// TestReadAfterConnClose: reads on a closed conversation fail, not
// hang.
func TestReadAfterConnClose(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	conn, err := dialer.Dial(musca.NS, "il!helix!echo")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	buf := make([]byte, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := conn.Data.Read(buf); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read after close hung")
	}
}

// TestEOFSemanticsThroughFD: a hangup surfaces as io.EOF through the
// name-space FD, like reading a closed pipe.
func TestEOFSemanticsThroughFD(t *testing.T) {
	w := paperWorld(t)
	musca := w.Machine("musca")
	helix := w.Machine("helix")
	if _, err := helix.Serve("il!*!systat", func(nsp *ns.Namespace, conn *dialer.Conn) {
		conn.Write([]byte("one line\n"))
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := dialer.Dial(musca.NS, "il!helix!systat")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "one line\n" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			if err != io.EOF && !vfs.SameError(err, vfs.ErrHungup) {
				t.Errorf("end-of-conversation error = %v", err)
			}
			return
		}
	}
	t.Fatal("no EOF after server close")
}
