// Package core assembles whole Plan 9 networks out of the substrate
// packages: a World holds the shared media (Ethernet segments, the
// Datakit switch, Cyclone links) and the network database; Machines
// boot with a per-process name space, kernel devices mounted under
// /net, protocol stacks, a connection server, and DNS — the complete
// organization the paper describes, in one process.
package core

import (
	"fmt"
	"sync"

	"repro/internal/datakit"
	"repro/internal/ether"
	"repro/internal/ip"
	"repro/internal/medium"
	"repro/internal/ndb"
	"repro/internal/vclock"
)

// World is a universe of machines and media.
type World struct {
	clock    vclock.Clock
	mu       sync.Mutex
	ethers   map[string]*ether.Segment
	dk       *datakit.Switch
	db       *ndb.DB
	ndbText  []byte
	machines map[string]*Machine
	dnsRoots []ip.Addr
	closers  []func()
}

// NewWorld creates an empty world with the given database text (the
// shared /lib/ndb/local every machine reads).
func NewWorld(ndbText string) (*World, error) {
	return NewWorldClock(ndbText, nil)
}

// NewWorldClock is NewWorld on an explicit clock: every medium the
// world creates and every machine booted into it inherits ck, so a
// discrete-event clock simulates the whole network. nil means the
// real clock.
func NewWorldClock(ndbText string, ck vclock.Clock) (*World, error) {
	db, err := ndb.ParseDB(map[string][]byte{"local": []byte(ndbText)}, "local")
	if err != nil {
		return nil, err
	}
	db.HashAll("sys", "dom", "ip", "dk", "tcp", "il", "udp", "ipnet")
	return &World{
		clock:    vclock.Or(ck),
		ethers:   make(map[string]*ether.Segment),
		db:       db,
		ndbText:  []byte(ndbText),
		machines: make(map[string]*Machine),
	}, nil
}

// Clock returns the world's clock.
func (w *World) Clock() vclock.Clock { return w.clock }

// DB returns the world's database.
func (w *World) DB() *ndb.DB { return w.db }

// AddEther creates a broadcast segment with the given medium profile.
// The segment runs on the world's clock unless the profile names one.
func (w *World) AddEther(name string, p ether.Profile) *ether.Segment {
	w.mu.Lock()
	defer w.mu.Unlock()
	if p.Clock == nil {
		p.Clock = w.clock
	}
	seg := ether.NewSegment(name, p)
	w.ethers[name] = seg
	return seg
}

// Ether returns a named segment.
func (w *World) Ether(name string) *ether.Segment {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ethers[name]
}

// AddDatakit creates the Datakit switch with the given circuit
// profile, on the world's clock unless the profile names one.
func (w *World) AddDatakit(p medium.Profile) *datakit.Switch {
	w.mu.Lock()
	defer w.mu.Unlock()
	if p.Clock == nil {
		p.Clock = w.clock
	}
	w.dk = datakit.NewSwitch(p)
	return w.dk
}

// SetDNSRoots records the root name servers machines resolve from.
func (w *World) SetDNSRoots(roots ...ip.Addr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dnsRoots = roots
}

// Machine returns a booted machine by name.
func (w *World) Machine(name string) *Machine {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.machines[name]
}

// Machines lists all machines.
func (w *World) Machines() []*Machine {
	w.mu.Lock()
	defer w.mu.Unlock()
	var ms []*Machine
	for _, m := range w.machines {
		ms = append(ms, m)
	}
	return ms
}

// OnClose registers a teardown hook.
func (w *World) OnClose(f func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closers = append(w.closers, f)
}

// Close shuts the world down: machines, then media.
func (w *World) Close() {
	w.mu.Lock()
	machines := w.machines
	w.machines = map[string]*Machine{}
	ethers := w.ethers
	w.ethers = map[string]*ether.Segment{}
	dk := w.dk
	w.dk = nil
	closers := w.closers
	w.closers = nil
	w.mu.Unlock()
	for _, m := range machines {
		m.Close()
	}
	for _, f := range closers {
		f()
	}
	for _, seg := range ethers {
		seg.Close()
	}
	if dk != nil {
		dk.Close()
	}
}

// sysAddrs returns the ip= addresses of a system entry, in order.
func (w *World) sysAddrs(name string) ([]ip.Addr, error) {
	e, ok := w.db.QueryOne("sys", name)
	if !ok {
		return nil, fmt.Errorf("core: system %q not in the database", name)
	}
	var addrs []ip.Addr
	for _, v := range e.GetAll("ip") {
		a, err := ip.ParseAddr(v)
		if err != nil {
			return nil, fmt.Errorf("core: system %q has bad ip %q", name, v)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// maskFor derives the netmask for an address from the database: the
// network entry's ipmask if declared, else the classful mask.
func (w *World) maskFor(a ip.Addr) ip.Addr {
	nets := w.db.NetsContaining(a)
	if len(nets) > 0 {
		// Use the mask of the most specific net (the subnet).
		return nets[0].Mask
	}
	return ip.ClassMask(a)
}
