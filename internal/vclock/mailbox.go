package vclock

import (
	"errors"
	"sync"
)

// ErrClosed reports a send on a closed Mailbox.
var ErrClosed = errors.New("vclock: mailbox closed")

// Mailbox is a clock-aware bounded FIFO: the channel replacement for
// code that must park cooperatively under the virtual clock. Receive
// order, wake order, and close semantics are deterministic under a
// virtual clock; under the real clock it behaves like a mutex-guarded
// channel.
//
// Close semantics mirror a closed channel that drains: Recv keeps
// returning queued values after Close and reports ok=false only once
// the mailbox is both closed and empty. CloseDrain instead hands the
// leftovers back to the closer, for queues whose items need explicit
// release.
type Mailbox[T any] struct {
	mu     sync.Mutex
	ne     Cond // not empty
	nf     Cond // not full
	buf    []T
	head   int
	cnt    int
	bound  int // <= 0: unbounded
	closed bool
}

// NewMailbox returns a Mailbox bound to ck (nil means Real) holding at
// most bound items; bound <= 0 means unbounded (Send never blocks).
func NewMailbox[T any](ck Clock, bound int) *Mailbox[T] {
	m := &Mailbox[T]{bound: bound}
	m.ne.Init(ck, &m.mu)
	m.nf.Init(ck, &m.mu)
	return m
}

func (m *Mailbox[T]) pushLocked(v T) {
	if m.cnt == len(m.buf) {
		n := len(m.buf) * 2
		if n < 4 {
			n = 4
		}
		nb := make([]T, n)
		for i := 0; i < m.cnt; i++ {
			nb[i] = m.buf[(m.head+i)%len(m.buf)]
		}
		m.buf = nb
		m.head = 0
	}
	m.buf[(m.head+m.cnt)%len(m.buf)] = v
	m.cnt++
}

func (m *Mailbox[T]) popLocked() T {
	v := m.buf[m.head]
	var zero T
	m.buf[m.head] = zero
	m.head = (m.head + 1) % len(m.buf)
	m.cnt--
	return v
}

// Send enqueues v, blocking while the mailbox is full. It returns
// ErrClosed if the mailbox is (or becomes) closed before v is queued.
func (m *Mailbox[T]) Send(v T) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.closed && m.bound > 0 && m.cnt >= m.bound {
		m.nf.Wait()
	}
	if m.closed {
		return ErrClosed
	}
	m.pushLocked(v)
	m.ne.Broadcast()
	return nil
}

// TrySend enqueues v without blocking; it reports false when the
// mailbox is full or closed.
func (m *Mailbox[T]) TrySend(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || (m.bound > 0 && m.cnt >= m.bound) {
		return false
	}
	m.pushLocked(v)
	m.ne.Broadcast()
	return true
}

// Recv dequeues the next value, blocking while the mailbox is empty.
// ok is false once the mailbox is closed and drained.
func (m *Mailbox[T]) Recv() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.cnt == 0 && !m.closed {
		m.ne.Wait()
	}
	if m.cnt == 0 {
		return v, false
	}
	v = m.popLocked()
	m.nf.Broadcast()
	return v, true
}

// TryRecv dequeues without blocking; ok is false when nothing is
// queued.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cnt == 0 {
		return v, false
	}
	v = m.popLocked()
	m.nf.Broadcast()
	return v, true
}

// Close marks the mailbox closed and wakes every blocked sender and
// receiver. Queued values remain readable (Recv drains them first).
// Close is idempotent.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.ne.Broadcast()
	m.nf.Broadcast()
}

// CloseDrain closes the mailbox and returns whatever was queued, for
// callers that must release the leftovers (pooled packets, say)
// rather than let receivers drain them.
func (m *Mailbox[T]) CloseDrain() []T {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	var out []T
	for m.cnt > 0 {
		out = append(out, m.popLocked())
	}
	m.ne.Broadcast()
	m.nf.Broadcast()
	return out
}

// Closed reports whether Close or CloseDrain has been called.
func (m *Mailbox[T]) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Len reports how many values are queued.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cnt
}
