package vclock

import "sync"

// Cond is a clock-aware condition variable. Under the real clock it is
// a sync.Cond; under a virtual clock, Wait parks the machine goroutine
// with the scheduler and Signal/Broadcast move waiters to the run
// queue in FIFO order, so wakeups replay identically run to run.
//
// Unlike sync.Cond, the virtual implementation requires L to be held
// for Signal and Broadcast as well as Wait (the waiter list is guarded
// by L). Every engine in this repository already signals under its
// lock, which is the usual discipline anyway.
//
// The zero Cond is not ready for use; call Init (or NewCond).
type Cond struct {
	l sync.Locker
	v *Virtual
	// sc backs the real-clock mode; unused when v != nil.
	sc sync.Cond
	// waiters is the virtual-mode park list, guarded by l.
	waiters []*gor
}

// NewCond returns a Cond bound to ck (nil means Real) and l.
func NewCond(ck Clock, l sync.Locker) *Cond {
	c := new(Cond)
	c.Init(ck, l)
	return c
}

// Init prepares an embedded Cond in place, avoiding the separate
// allocation of NewCond. It must be called before any other method
// and never after the Cond is in use.
func (c *Cond) Init(ck Clock, l sync.Locker) {
	c.l = l
	if v, ok := Or(ck).(*Virtual); ok {
		c.v = v
	} else {
		c.sc.L = l
	}
}

// Wait atomically releases L and parks until woken, then re-acquires
// L. As with sync.Cond, callers loop over their predicate.
func (c *Cond) Wait() {
	if c.v == nil {
		c.sc.Wait()
		return
	}
	v := c.v
	v.mu.Lock()
	g := v.curLocked("Cond.Wait")
	c.waiters = append(c.waiters, g)
	v.running = nil
	v.mu.Unlock()
	c.l.Unlock()
	v.parked <- struct{}{}
	<-g.wake
	c.l.Lock()
}

// Signal wakes the longest-waiting goroutine, if any. L must be held
// under a virtual clock.
func (c *Cond) Signal() {
	if c.v == nil {
		c.sc.Signal()
		return
	}
	if len(c.waiters) == 0 {
		return
	}
	g := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	v := c.v
	v.mu.Lock()
	v.runnableLocked(g)
	v.mu.Unlock()
}

// Broadcast wakes all waiters in FIFO order. L must be held under a
// virtual clock.
func (c *Cond) Broadcast() {
	if c.v == nil {
		c.sc.Broadcast()
		return
	}
	if len(c.waiters) == 0 {
		return
	}
	ws := c.waiters
	c.waiters = nil
	v := c.v
	v.mu.Lock()
	v.runnableLocked(ws...)
	v.mu.Unlock()
}
