// Package vclock provides the pluggable clock under the protocol
// engines: a passthrough real-time implementation and a discrete-event
// virtual implementation that advances simulated time to the next
// pending timer whenever every registered goroutine is quiescent.
//
// The virtual clock is a cooperative token scheduler. Goroutines
// created with Clock.Go (and the root function passed to Virtual.Run)
// are "machine goroutines": exactly one runs at a time, and a running
// goroutine keeps the token until it blocks in a vclock primitive —
// Sleep, Cond.Wait, Mailbox send/receive, WaitGroup.Wait. When the
// runnable queue drains, every machine goroutine is parked and the
// scheduler advances virtual time to the earliest pending event
// (a Sleep expiry or AfterFunc). Because hand-off order is a FIFO and
// timer order is a (time, sequence) heap, a fixed seed replays the
// identical interleaving: same wire order, same impairment schedule,
// same stats.
//
// The price of determinism is that machine goroutines must never block
// on a raw channel, sync.Cond, or sync.WaitGroup that only another
// machine goroutine can satisfy: the scheduler cannot see such a park,
// so the simulation stalls (and, if the waker needs virtual time to
// advance, deadlocks — Run panics when it detects that). Mutexes are
// fine: a machine goroutine never holds one while parked, so mutex
// waits always resolve without the clock's help.
package vclock

import "time"

// Clock is the time source threaded through the media and protocol
// engines. Real is the passthrough implementation; NewVirtual returns
// the discrete-event one.
//
// There is deliberately no channel-returning After or Tick: receiving
// from a raw channel is an unannotated park the virtual scheduler
// cannot see. Timer callbacks (AfterFunc) and Sleep cover every timer
// shape the engines use.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// SleepUntil blocks until Now() >= t.
	SleepUntil(t time.Time)
	// AfterFunc runs f after d on its own goroutine (a machine
	// goroutine under the virtual clock).
	AfterFunc(d time.Duration, f func()) *Timer
	// Go starts f on a new goroutine. Under the virtual clock the
	// goroutine is registered with the scheduler; engines must use Go,
	// not the go statement, for any goroutine that blocks in vclock
	// primitives.
	Go(f func())
	// Virtual reports whether this is a discrete-event clock.
	Virtual() bool
}

// Timer is a stoppable pending AfterFunc.
type Timer struct {
	stop func() bool
}

// Stop cancels the timer; it reports whether the call prevented the
// function from running.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// Or returns ck, or Real when ck is nil — the idiom for defaulting a
// zero Profile or Config field.
func Or(ck Clock) Clock {
	if ck == nil {
		return Real
	}
	return ck
}
