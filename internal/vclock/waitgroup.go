package vclock

import "sync"

// WaitGroup is a clock-aware sync.WaitGroup replacement: Wait parks
// cooperatively under a virtual clock instead of blocking the
// scheduler's token on an invisible sync park.
type WaitGroup struct {
	mu sync.Mutex
	c  Cond
	n  int
}

// NewWaitGroup returns a WaitGroup bound to ck (nil means Real).
func NewWaitGroup(ck Clock) *WaitGroup {
	w := new(WaitGroup)
	w.c.Init(ck, &w.mu)
	return w
}

// Add adds delta to the counter.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n += delta
	if w.n < 0 {
		panic("vclock: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.c.Broadcast()
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.n > 0 {
		w.c.Wait()
	}
}
