package vclock

import "time"

// Real is the passthrough clock: system time, system timers, plain
// goroutines.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (realClock) Sleep(d time.Duration)           { time.Sleep(d) }

// SleepUntil parks on the runtime timer until t has passed. Go's
// runtime timers resolve well under the media being simulated (an
// Ethernet frame serializes in ~1.2ms), so there is no spin tail: the
// loop re-sleeps on the residual error of each wakeup instead of
// burning a core on runtime.Gosched.
func (realClock) SleepUntil(t time.Time) {
	for {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		time.Sleep(d)
	}
}

func (realClock) AfterFunc(d time.Duration, f func()) *Timer {
	t := time.AfterFunc(d, f)
	return &Timer{stop: t.Stop}
}

func (realClock) Go(f func()) { go f() }

func (realClock) Virtual() bool { return false }
