package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Epoch is the fixed origin of virtual time. Every Virtual clock
// starts here, so timestamps derived from the clock (trace events,
// seeded generators) are identical across same-seed runs.
var Epoch = time.Date(1993, time.January, 25, 0, 0, 0, 0, time.UTC)

// Virtual is the discrete-event clock: a cooperative token scheduler
// over the goroutines registered with Go, advancing simulated time to
// the next pending timer whenever all of them are parked.
type Virtual struct {
	mu       sync.Mutex
	now      int64 // ns since Epoch
	seq      uint64
	runq     []*gor
	events   eventHeap
	running  *gor
	live     int
	rootDone bool
	started  bool

	// parked is the rendezvous with the scheduler loop: the running
	// goroutine sends exactly one token when it parks or exits.
	parked chan struct{}
}

// gor is one machine goroutine's parking spot.
type gor struct {
	wake chan struct{}
}

// event is a pending timer: a sleeper to resume, or an AfterFunc body
// to spawn. Events fire in (at, seq) order — seq breaks ties in
// creation order — and fire strictly one at a time, with the woken
// chain run to quiescence before the next event, so same-instant
// timers cannot race each other.
type event struct {
	at      int64
	seq     uint64
	g       *gor
	fn      func()
	fired   bool
	stopped bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
func (h eventHeap) peek() *event { return h[0] }
func (v *Virtual) pushLocked(at int64, g *gor, fn func()) *event {
	v.seq++
	ev := &event{at: at, seq: v.seq, g: g, fn: fn}
	heap.Push(&v.events, ev)
	return ev
}

// NewVirtual returns a virtual clock positioned at Epoch. Drive it
// with Run.
func NewVirtual() *Virtual {
	return &Virtual{parked: make(chan struct{})}
}

// Run executes fn as the root machine goroutine and drives the
// scheduler until fn returns and the remaining machine goroutines have
// wound down. Construction may happen before Run (Go, AfterFunc and
// the primitives all work from the calling thread then); once Run has
// started, only machine goroutines may touch the clock.
//
// Run panics if the simulation deadlocks: every machine goroutine
// parked, no pending timer, and the root function not yet returned.
// After the root returns, pending timers keep firing for a bounded
// drain horizon so engine timer loops can observe their shutdown and
// exit; goroutines still parked after that are leaked (and show up in
// the leak checkers, like any real leak).
func (v *Virtual) Run(fn func()) {
	v.mu.Lock()
	if v.started {
		v.mu.Unlock()
		panic("vclock: Run called twice")
	}
	v.started = true
	v.mu.Unlock()
	v.Go(func() {
		defer func() {
			v.mu.Lock()
			v.rootDone = true
			v.mu.Unlock()
		}()
		fn()
	})
	const drainHorizon = int64(time.Minute)
	drainUntil := int64(-1)
	for {
		g := v.pick(&drainUntil, drainHorizon)
		if g == nil {
			return
		}
		v.mu.Lock()
		v.running = g
		v.mu.Unlock()
		g.wake <- struct{}{}
		<-v.parked
	}
}

// pick pops the next runnable goroutine, advancing virtual time
// through pending events as needed. It returns nil when the
// simulation is over (or drained past the post-root horizon).
func (v *Virtual) pick(drainUntil *int64, horizon int64) *gor {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		if len(v.runq) > 0 {
			g := v.runq[0]
			v.runq = v.runq[1:]
			return g
		}
		if v.rootDone && *drainUntil < 0 {
			*drainUntil = v.now + horizon
		}
		fired := false
		for v.events.Len() > 0 && !fired {
			if v.rootDone && v.events.peek().at > *drainUntil {
				return nil
			}
			ev := heap.Pop(&v.events).(*event)
			if ev.stopped {
				continue
			}
			ev.fired = true
			if ev.at > v.now {
				v.now = ev.at
			}
			if ev.g != nil {
				v.runq = append(v.runq, ev.g)
			} else if ev.fn != nil {
				v.goLocked(ev.fn)
			}
			fired = true
		}
		if fired {
			continue
		}
		if v.live > 0 && !v.rootDone {
			panic(fmt.Sprintf("vclock: simulation deadlock: %d machine goroutine(s) parked with no pending event at T+%v", v.live, time.Duration(v.now)))
		}
		return nil
	}
}

// Go registers and starts a machine goroutine.
func (v *Virtual) Go(f func()) {
	v.mu.Lock()
	v.goLocked(f)
	v.mu.Unlock()
}

func (v *Virtual) goLocked(f func()) {
	g := &gor{wake: make(chan struct{})}
	v.live++
	v.runq = append(v.runq, g)
	go func() {
		<-g.wake
		f()
		v.mu.Lock()
		v.live--
		v.running = nil
		v.mu.Unlock()
		v.parked <- struct{}{}
	}()
}

// curLocked returns the currently running machine goroutine; blocking
// clock operations from unregistered goroutines are a programming
// error (the scheduler could not know when to resume them).
func (v *Virtual) curLocked(op string) *gor {
	g := v.running
	if g == nil {
		panic("vclock: " + op + " from a goroutine not registered with the virtual clock")
	}
	return g
}

// parkLocked releases the token (v.mu held on entry, released inside)
// and blocks until the scheduler resumes g.
func (v *Virtual) parkLocked(g *gor) {
	v.running = nil
	v.mu.Unlock()
	v.parked <- struct{}{}
	<-g.wake
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Epoch.Add(time.Duration(v.now))
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock: the goroutine parks and becomes runnable at
// now+d. Sleep(0) still round-trips through the event heap, so it is
// a deterministic yield point.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	g := v.curLocked("Sleep")
	v.pushLocked(v.now+int64(d), g, nil)
	v.parkLocked(g)
}

// SleepUntil implements Clock.
func (v *Virtual) SleepUntil(t time.Time) {
	v.mu.Lock()
	g := v.curLocked("SleepUntil")
	at := int64(t.Sub(Epoch))
	if at < v.now {
		at = v.now
	}
	v.pushLocked(at, g, nil)
	v.parkLocked(g)
}

// AfterFunc implements Clock: f runs as a fresh machine goroutine when
// virtual time reaches now+d.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	ev := v.pushLocked(v.now+int64(d), nil, f)
	v.mu.Unlock()
	return &Timer{stop: func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if ev.fired || ev.stopped {
			return false
		}
		ev.stopped = true
		return true
	}}
}

// Virtual implements Clock.
func (v *Virtual) Virtual() bool { return true }

// runnableLocked appends woken goroutines to the run queue in order.
func (v *Virtual) runnableLocked(gs ...*gor) {
	v.runq = append(v.runq, gs...)
}
