package vclock

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.Run(func() {
		wg := NewWaitGroup(v)
		for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
			wg.Add(1)
			d := d
			v.Go(func() {
				defer wg.Done()
				v.Sleep(d)
				order = append(order, d.String())
			})
		}
		wg.Wait()
	})
	got := strings.Join(order, ",")
	if got != "10ms,20ms,30ms" {
		t.Fatalf("wake order = %s, want 10ms,20ms,30ms", got)
	}
}

func TestVirtualTimeAdvancesInstantly(t *testing.T) {
	v := NewVirtual()
	start := time.Now()
	var elapsed time.Duration
	v.Run(func() {
		t0 := v.Now()
		v.Sleep(10 * time.Hour)
		elapsed = v.Since(t0)
	})
	if elapsed != 10*time.Hour {
		t.Fatalf("virtual elapsed = %v, want 10h", elapsed)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("10h virtual sleep took %v of wall clock", wall)
	}
}

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	var at time.Time
	v.Run(func() {
		v.Sleep(time.Second)
		at = v.Now()
	})
	if want := Epoch.Add(time.Second); !at.Equal(want) {
		t.Fatalf("Now = %v, want %v", at, want)
	}
}

func TestVirtualAfterFuncAndStop(t *testing.T) {
	v := NewVirtual()
	var fired []string
	v.Run(func() {
		v.AfterFunc(20*time.Millisecond, func() { fired = append(fired, "kept") })
		stopped := v.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "stopped") })
		if !stopped.Stop() {
			t.Error("Stop before firing reported false")
		}
		if stopped.Stop() {
			t.Error("second Stop reported true")
		}
		v.Sleep(50 * time.Millisecond)
	})
	if strings.Join(fired, ",") != "kept" {
		t.Fatalf("fired = %v, want [kept]", fired)
	}
}

func TestVirtualSameInstantFIFO(t *testing.T) {
	// Timers armed for the same instant fire in arming order, one at a
	// time, each chain run to quiescence before the next.
	v := NewVirtual()
	var order []int
	v.Run(func() {
		for i := 0; i < 5; i++ {
			i := i
			v.AfterFunc(time.Millisecond, func() { order = append(order, i) })
		}
		v.Sleep(2 * time.Millisecond)
	})
	if fmt.Sprint(order) != "[0 1 2 3 4]" {
		t.Fatalf("same-instant order = %v", order)
	}
}

func TestVirtualCondAndMailbox(t *testing.T) {
	v := NewVirtual()
	var got []int
	v.Run(func() {
		mb := NewMailbox[int](v, 2)
		done := NewWaitGroup(v)
		done.Add(1)
		v.Go(func() {
			defer done.Done()
			for {
				x, ok := mb.Recv()
				if !ok {
					return
				}
				got = append(got, x)
				v.Sleep(time.Millisecond) // force the sender to fill the bound
			}
		})
		for i := 1; i <= 5; i++ {
			if err := mb.Send(i); err != nil {
				t.Errorf("Send(%d): %v", i, err)
			}
		}
		mb.Close()
		done.Wait()
		if mb.Send(9) != ErrClosed {
			t.Error("Send on closed mailbox did not return ErrClosed")
		}
	})
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("received = %v", got)
	}
}

func TestMailboxCloseDrain(t *testing.T) {
	mb := NewMailbox[int](nil, 0)
	for i := 0; i < 3; i++ {
		mb.Send(i)
	}
	left := mb.CloseDrain()
	if fmt.Sprint(left) != "[0 1 2]" {
		t.Fatalf("CloseDrain = %v", left)
	}
	if _, ok := mb.Recv(); ok {
		t.Fatal("Recv after CloseDrain returned a value")
	}
	if mb.TrySend(7) {
		t.Fatal("TrySend after close succeeded")
	}
}

func TestRealMailboxBlockingSend(t *testing.T) {
	mb := NewMailbox[int](Real, 1)
	mb.Send(1)
	done := make(chan struct{})
	go func() {
		mb.Send(2) // blocks until the receiver drains
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("bounded Send did not block")
	default:
	}
	if x, ok := mb.Recv(); !ok || x != 1 {
		t.Fatalf("Recv = %d,%v", x, ok)
	}
	<-done
	if x, ok := mb.Recv(); !ok || x != 2 {
		t.Fatalf("Recv = %d,%v", x, ok)
	}
}

func TestVirtualDeterministicInterleaving(t *testing.T) {
	// The full interleaving — not just final state — must replay
	// identically: two producers and a consumer hop between sleeps and
	// a shared mailbox; the observed schedule is compared across runs.
	run := func() string {
		v := NewVirtual()
		var log []string
		v.Run(func() {
			mb := NewMailbox[string](v, 4)
			wg := NewWaitGroup(v)
			for p := 0; p < 2; p++ {
				p := p
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						v.Sleep(time.Duration(1+p) * time.Millisecond)
						mb.Send(fmt.Sprintf("p%d-%d", p, i))
					}
				})
			}
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					s, _ := mb.Recv()
					log = append(log, fmt.Sprintf("%s@%v", s, v.Since(Epoch)))
				}
			})
			wg.Wait()
		})
		return strings.Join(log, " ")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same program, different schedules:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "p0-0@1ms") {
		t.Fatalf("unexpected schedule: %s", a)
	}
}

func TestVirtualDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("expected deadlock panic, got %v", r)
		}
	}()
	v := NewVirtual()
	v.Run(func() {
		mb := NewMailbox[int](v, 1)
		mb.Recv() // nothing will ever send
	})
}

func TestVirtualSleepUntil(t *testing.T) {
	v := NewVirtual()
	v.Run(func() {
		target := v.Now().Add(42 * time.Millisecond)
		v.SleepUntil(target)
		if !v.Now().Equal(target) {
			t.Errorf("Now = %v after SleepUntil(%v)", v.Now(), target)
		}
		v.SleepUntil(v.Now().Add(-time.Second)) // past target: no travel back
		if !v.Now().Equal(target) {
			t.Errorf("SleepUntil moved time backwards to %v", v.Now())
		}
	})
}

func TestRealSleepUntilParks(t *testing.T) {
	target := time.Now().Add(20 * time.Millisecond)
	Real.SleepUntil(target)
	if time.Now().Before(target) {
		t.Fatal("SleepUntil returned early")
	}
}

func TestRealCondSmoke(t *testing.T) {
	var mu sync.Mutex
	c := NewCond(nil, &mu)
	ready := false
	go func() {
		mu.Lock()
		ready = true
		c.Broadcast()
		mu.Unlock()
	}()
	mu.Lock()
	for !ready {
		c.Wait()
	}
	mu.Unlock()
}

func TestOrDefaultsToReal(t *testing.T) {
	if Or(nil) != Real {
		t.Fatal("Or(nil) != Real")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Fatal("Or(v) != v")
	}
	if Real.Virtual() || !v.Virtual() {
		t.Fatal("Virtual() flags wrong")
	}
}
