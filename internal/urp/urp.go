// Package urp implements URP, the Universal Receiver Protocol that
// carries Plan 9 traffic over Datakit virtual circuits (§2.3, §8).
// URP is the narrow, cell-oriented protocol of Fraser's Datakit: small
// blocks, mod-8 sequence numbers, a window of at most seven
// outstanding blocks, go-back-N recovery driven by the receiver
// (REJ) and sender enquiries (ENQ). Those properties — tiny blocks
// and a shallow window — are exactly why URP/Datakit is the slowest
// row of the paper's Table 1, and the simulation keeps them.
//
// The protocol runs over any cell transport (the Wire interface);
// package datakit supplies circuits.
package urp

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/streams"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// Wire is a cell transport: ordered, possibly lossy delivery of small
// cells. SendCell takes ownership of p — the caller never touches the
// cell again — and the transport may extend it in place within its
// capacity with link framing such as an FCS; URP builds cells with
// tail slack for exactly that.
type Wire interface {
	SendCell(p []byte) error
	RecvCell() ([]byte, error)
	Close() error
}

// Protocol constants.
const (
	// BlockSize is the URP block: Datakit moved small blocks, not
	// Ethernet-sized frames.
	BlockSize = 1024
	// SeqMod is the sequence space: 3 bits.
	SeqMod = 8
	// Window is the outstanding-block limit: at most seven blocks in
	// flight, the maximum the mod-8 sequence space distinguishes
	// unambiguously under go-back-N (a full window of eight would make
	// "all acked" and "none acked" the same number).
	Window = 7
)

// Cell types.
const (
	cellData = iota
	cellAck  // ack[seq]: everything before seq received
	cellRej  // rej[seq]: retransmit from seq
	cellEnq  // sender asks "what have you got?"
	cellHup  // circuit hangup
)

// Cell layout: type[1] seq[1] flags[1] len[2] data...
const hdrLen = 5

// flagEOM marks the final block of a message (the BOT/BOTM trailer of
// real URP, i.e. the delimiter).
const flagEOM = 0x01

const (
	tickInterval = 5 * time.Millisecond
	enqTimeout   = 50 * time.Millisecond
	deathTime    = 30 * time.Second
)

// Stats counts protocol events (for the ablation benches).
type Stats struct {
	Blocks      atomic.Int64
	Retransmits atomic.Int64
	Rejects     atomic.Int64
	Enquiries   atomic.Int64
}

// Conn runs URP over a wire. Both ends are symmetric.
type Conn struct {
	wire  Wire
	ck    vclock.Clock
	stats *Stats

	mu   sync.Mutex
	cond vclock.Cond

	// Sender: blocks [sndUna, sndNxt) are in flight (mod-8).
	sndUna   int
	sndNxt   int
	unacked  []sentBlock // parallel to seq range
	lastSend time.Time
	enqSent  bool
	// retransNeeded asks the timer goroutine to resend the window.
	// The reader never retransmits inline: a go-back-N burst can
	// block on a paced wire, and a reader that stops draining while
	// its peer does the same deadlocks the circuit.
	retransNeeded bool

	// Receiver.
	rcvNext    int
	reassembly []byte
	// rejSent damps the REJ flood: one REJ per gap, cleared when
	// in-sequence delivery resumes. (A lost REJ is recovered by the
	// sender's enquiry.) Without this, every duplicate cell of a
	// go-back-N burst provokes another REJ, each REJ another burst.
	rejSent bool

	rstream *streams.Stream
	closed  bool
	dead    bool

	lastProgress time.Time

	// trace is the circuit's event ring (obs.Tracer); the datakit
	// device serves it as the conversation's trace file.
	trace obs.Ring
}

var _ obs.Tracer = (*Conn)(nil)

// Trace implements obs.Tracer.
func (c *Conn) Trace() *obs.Ring { return &c.trace }

type sentBlock struct {
	seq   int
	flags byte
	data  []byte
}

// New starts URP on a wire, on the real clock. stats may be nil.
func New(wire Wire, stats *Stats) *Conn { return NewClock(wire, stats, nil) }

// NewClock is New with an explicit clock for the protocol timers
// (enquiry, retransmit, death); nil means the real clock.
func NewClock(wire Wire, stats *Stats, ck vclock.Clock) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	ck = vclock.Or(ck)
	c := &Conn{
		wire:         wire,
		ck:           ck,
		stats:        stats,
		rstream:      streams.NewClock(1<<22, ck, nil),
		lastProgress: ck.Now(),
	}
	c.cond.Init(ck, &c.mu)
	ck.Go(c.reader)
	ck.Go(c.timer)
	return c
}

// Stream exposes the receive stream (for pushing diagnostic modules).
func (c *Conn) Stream() *streams.Stream { return c.rstream }

// makeCell frames one cell. Pool-backed, with size-class capacity
// slack behind len so the link layer can append its FCS without
// reallocating; ownership transfers to the wire on send.
func makeCell(typ, seq int, flags byte, data []byte) []byte {
	cell := block.GetBytes(hdrLen + len(data))
	cell[0] = byte(typ)
	cell[1] = byte(seq)
	cell[2] = flags
	cell[3] = byte(len(data) >> 8)
	cell[4] = byte(len(data))
	copy(cell[hdrLen:], data)
	return cell
}

func (c *Conn) sendCell(typ, seq int, flags byte, data []byte) error {
	return c.wire.SendCell(makeCell(typ, seq, flags, data))
}

// Write sends one delimited message as a sequence of blocks, blocking
// while the window is full.
func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for {
		c.mu.Lock()
		for !c.dead && !c.closed && c.inFlightLocked() >= Window {
			c.cond.Wait()
		}
		if c.dead || c.closed {
			c.mu.Unlock()
			return total, vfs.ErrHungup
		}
		n := len(p) - total
		if n > BlockSize {
			n = BlockSize
		}
		var flags byte
		if total+n == len(p) {
			flags = flagEOM
		}
		seq := c.sndNxt
		c.sndNxt = (c.sndNxt + 1) % SeqMod
		// The retransmit copy lives in a pooled buffer, released when
		// the ack drops it from the window. The framed cell is built
		// here too, so after this point b.data is only ever touched
		// under c.mu (retransmit re-frames under the lock) and the
		// (possibly paced, possibly blocking) wire send happens with
		// the lock released.
		data := block.GetBytes(n)
		copy(data, p[total:total+n])
		c.unacked = append(c.unacked, sentBlock{seq: seq, flags: flags, data: data})
		cell := makeCell(cellData, seq, flags, data)
		c.lastSend = c.ck.Now()
		c.stats.Blocks.Add(1)
		c.trace.Emit(obs.EvSend, int64(seq), int64(n))
		c.mu.Unlock()
		c.wire.SendCell(cell)
		total += n
		if total == len(p) {
			return total, nil
		}
	}
}

func (c *Conn) inFlightLocked() int { return len(c.unacked) }

// Read returns one delimited message (or part, if the buffer is
// short).
func (c *Conn) Read(p []byte) (int, error) { return c.rstream.Read(p) }

// reader is the receive kernel process.
func (c *Conn) reader() {
	for {
		cell, err := c.wire.RecvCell()
		if err != nil {
			c.hangup()
			return
		}
		// The wire hands over the cell buffer (each delivery has bytes
		// of its own); recvData copies at both of its boundaries, so
		// the cell recycles as soon as the switch returns.
		if len(cell) < hdrLen {
			block.PutBytes(cell)
			continue
		}
		typ := int(cell[0])
		seq := int(cell[1])
		flags := cell[2]
		n := int(cell[3])<<8 | int(cell[4])
		if n > len(cell)-hdrLen {
			block.PutBytes(cell)
			continue
		}
		data := cell[hdrLen : hdrLen+n]
		switch typ {
		case cellData:
			c.recvData(seq, flags, data)
		case cellAck:
			if c.recvAck(seq) {
				// The ack answered our enquiry but freed nothing:
				// the receiver never saw the head of the window, and
				// with no out-of-order arrival to provoke a REJ it
				// never will. Retransmit, or the circuit livelocks
				// trading ENQ for no-progress ACKs.
				c.scheduleRetransmit()
			}
		case cellRej:
			c.stats.Rejects.Add(1)
			c.recvAck(seq) // everything before seq arrived
			c.scheduleRetransmit()
		case cellEnq:
			// Answer with the receiver's state: an ACK of what
			// we expect next.
			c.mu.Lock()
			next := c.rcvNext
			c.mu.Unlock()
			c.sendCell(cellAck, next, 0, nil)
		case cellHup:
			c.hangup()
			return
		}
		block.PutBytes(cell)
	}
}

// recvData applies the universal-receiver rule: accept exactly the
// next block in sequence, reject anything else.
func (c *Conn) recvData(seq int, flags byte, data []byte) {
	c.mu.Lock()
	c.lastProgress = c.ck.Now()
	if seq != c.rcvNext {
		// Out of order: REJ asks for retransmission from the block
		// we expect — once per gap, or every duplicate cell of the
		// resulting go-back-N burst would provoke a fresh REJ and
		// the circuit would melt down trading bursts for REJs.
		if c.rejSent {
			c.mu.Unlock()
			return
		}
		c.rejSent = true
		next := c.rcvNext
		c.trace.Emit(obs.EvReject, int64(next), int64(seq))
		c.mu.Unlock()
		c.sendCell(cellRej, next, 0, nil)
		return
	}
	c.rejSent = false
	c.trace.Emit(obs.EvRecv, int64(seq), int64(len(data)))
	c.rcvNext = (c.rcvNext + 1) % SeqMod
	if flags&flagEOM != 0 && len(c.reassembly) == 0 {
		// Single-cell message: skip the reassembly buffer. The stream
		// copies at this boundary (the cell is the wire's buffer), so
		// this is the path's one copy.
		next := c.rcvNext
		c.mu.Unlock()
		c.rstream.DeviceUpData(data)
		c.sendCell(cellAck, next, 0, nil)
		return
	}
	c.reassembly = append(c.reassembly, data...)
	var msg *block.Block
	if flags&flagEOM != 0 {
		// Hand up a pooled copy and keep the scratch for the next
		// message: the reassembly buffer grows to the message size
		// once per circuit instead of once per message.
		msg = block.Copy(c.reassembly, 0)
		c.reassembly = c.reassembly[:0]
	}
	next := c.rcvNext
	c.mu.Unlock()
	if msg != nil {
		c.rstream.DeviceUpOwned(msg)
	}
	c.sendCell(cellAck, next, 0, nil)
}

// recvAck drops acknowledged blocks: ack(seq) says the receiver now
// expects seq, i.e. everything before it arrived. It reports whether
// the ack answered an enquiry without freeing anything while blocks
// are still outstanding — the sender's cue that the window head was
// lost on the wire and only a retransmission can restart the circuit.
func (c *Conn) recvAck(seq int) (stalled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastProgress = c.ck.Now()
	c.trace.Emit(obs.EvAck, int64(seq), 0)
	wasEnq := c.enqSent
	c.enqSent = false
	freed := false
	for len(c.unacked) > 0 {
		if c.unacked[0].seq == seq {
			break // not yet acknowledged
		}
		block.PutBytes(c.unacked[0].data)
		c.unacked[0] = sentBlock{}
		c.unacked = c.unacked[1:]
		c.sndUna = (c.sndUna + 1) % SeqMod
		freed = true
	}
	c.cond.Broadcast()
	return wasEnq && !freed && len(c.unacked) > 0
}

// scheduleRetransmit marks the window for resending on the next
// timer tick. Deferring to the timer keeps the reader draining the
// wire while the (possibly paced, possibly blocking) burst goes out,
// and coalesces a volley of REJs into one go-back-N pass.
func (c *Conn) scheduleRetransmit() {
	c.mu.Lock()
	c.retransNeeded = true
	c.mu.Unlock()
}

// retransmit resends the whole window (go-back-N). The cells are
// framed under the lock — the pooled block data must not be read once
// the lock drops, or an ack racing the burst could recycle it — and
// pushed onto the (possibly pacing) wire without it.
func (c *Conn) retransmit() {
	c.mu.Lock()
	c.retransNeeded = false
	cells := make([][]byte, 0, len(c.unacked))
	for _, b := range c.unacked {
		c.trace.Emit(obs.EvRetransmit, int64(b.seq), 0)
		cells = append(cells, makeCell(cellData, b.seq, b.flags, b.data))
	}
	c.lastSend = c.ck.Now()
	c.mu.Unlock()
	for _, cell := range cells {
		c.stats.Retransmits.Add(1)
		c.wire.SendCell(cell)
	}
}

// timer sends enquiries when acknowledgements stall. It keeps running
// through the close linger so the final blocks still get retransmitted
// if their acks are lost.
func (c *Conn) timer() {
	for {
		c.ck.Sleep(tickInterval)
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return
		}
		needResend := c.retransNeeded && len(c.unacked) > 0
		stalled := len(c.unacked) > 0 && c.ck.Since(c.lastSend) > enqTimeout
		dead := len(c.unacked) > 0 && c.ck.Since(c.lastProgress) > deathTime
		if dead {
			c.mu.Unlock()
			c.hangup()
			return
		}
		if needResend {
			c.mu.Unlock()
			c.retransmit()
			continue
		}
		if stalled {
			c.lastSend = c.ck.Now()
			c.enqSent = true
			c.stats.Enquiries.Add(1)
			c.trace.Emit(obs.EvQuery, 0, 0)
			c.mu.Unlock()
			c.sendCell(cellEnq, 0, 0, nil)
			continue
		}
		c.mu.Unlock()
	}
}

func (c *Conn) hangup() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.cond.Broadcast()
	c.trace.Emit(obs.EvHangup, 0, 0)
	c.mu.Unlock()
	c.rstream.HangupUp()
}

// Close hangs up the circuit: it lingers until outstanding blocks are
// acknowledged (bounded), sends the hangup cell after them, and only
// then unplugs the wire — so data written just before close is not
// lost in flight.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	deadline := c.ck.Now().Add(500 * time.Millisecond)
	for c.ck.Now().Before(deadline) {
		c.mu.Lock()
		drained := len(c.unacked) == 0 || c.dead
		c.mu.Unlock()
		if drained {
			break
		}
		c.ck.Sleep(tickInterval)
	}
	c.sendCell(cellHup, 0, 0, nil)
	// Let the hangup propagate before unplugging.
	c.ck.AfterFunc(250*time.Millisecond, func() {
		c.mu.Lock()
		c.dead = true
		c.cond.Broadcast()
		c.mu.Unlock()
		c.wire.Close()
	})
	c.rstream.HangupUp()
	return nil
}

// Dead reports whether the circuit has hung up.
func (c *Conn) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead || c.closed
}
