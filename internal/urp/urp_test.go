package urp

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/vclock"
)

type wire struct{ d *medium.Duplex }

func (w wire) SendCell(p []byte) error   { return w.d.Send(p) }
func (w wire) RecvCell() ([]byte, error) { return w.d.Recv() }
func (w wire) Close() error              { w.d.Close(); return nil }

func pair(t *testing.T, p medium.Profile) (*Conn, *Conn, *Stats) {
	t.Helper()
	a, b := medium.NewDuplex(p)
	stats := &Stats{}
	ca := New(wire{a}, stats)
	cb := New(wire{b}, stats)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb, stats
}

func TestEcho(t *testing.T) {
	a, b, _ := pair(t, medium.Profile{})
	a.Write([]byte("urp message"))
	buf := make([]byte, 256)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "urp message" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	b.Write([]byte("response"))
	n, err = a.Read(buf)
	if err != nil || string(buf[:n]) != "response" {
		t.Fatalf("response %q, %v", buf[:n], err)
	}
}

func TestWindowBlocksSender(t *testing.T) {
	// With the receiver's pipe stalled (no reads by anyone — use a
	// one-way wire that swallows acks), the sender must block after
	// Window blocks. On the virtual clock "block" is provable cheaply:
	// two full simulated seconds pass — forty enquiry timeouts, yet
	// well under the thirty-second death timer — and the writer still
	// has not finished. (t.Error, not t.Fatal, inside Run: Goexit from
	// a machine goroutine would hang the scheduler.)
	v := vclock.NewVirtual()
	v.Run(func() {
		tx := medium.NewPipe(medium.Profile{Clock: v})
		silent := medium.NewPipe(medium.Profile{Clock: v}) // acks never come back
		a := NewClock(wire{d: duplexOf(tx, silent)}, nil, v)
		defer a.Close()
		done := make(chan int, 1)
		v.Go(func() {
			n := 0
			for range Window + 2 {
				if _, err := a.Write(bytes.Repeat([]byte("x"), BlockSize)); err != nil {
					break
				}
				n++
			}
			done <- n
		})
		v.Sleep(2 * time.Second)
		select {
		case n := <-done:
			t.Errorf("sender never blocked: wrote %d blocks", n)
		default:
		}
	})
}

// duplexOf builds a Duplex from raw pipes for asymmetric tests.
func duplexOf(tx, rx *medium.Pipe) *medium.Duplex {
	return medium.AssembleDuplex(tx, rx)
}

func TestSequencedDeliveryUnderLoss(t *testing.T) {
	a, b, stats := pair(t, medium.Profile{Loss: 0.1, Seed: 9})
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	var got [][]byte
	go func() {
		defer wg.Done()
		buf := make([]byte, 4096)
		for len(got) < rounds {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			got = append(got, append([]byte(nil), buf[:n]...))
		}
	}()
	for i := range rounds {
		a.Write(bytes.Repeat([]byte{byte(i)}, 200))
	}
	wg.Wait()
	if len(got) != rounds {
		t.Fatalf("got %d of %d messages", len(got), rounds)
	}
	for i, m := range got {
		if m[0] != byte(i) {
			t.Fatalf("message %d out of order", i)
		}
	}
	_ = stats
}

func TestHangup(t *testing.T) {
	a, b, _ := pair(t, medium.Profile{})
	a.Write([]byte("bye"))
	buf := make([]byte, 64)
	b.Read(buf)
	a.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := b.Read(buf); err != nil {
			if !b.Dead() {
				t.Error("Dead() false after hangup read error")
			}
			return
		}
	}
	t.Fatal("no hangup seen")
}
