package urp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// Deeper URP behavior at the protocol's edges: the mod-8 sequence
// space's window of seven, the enquiry timer when acknowledgements
// stall, and the trace ring recording the block-level conversation in
// order.

// TestWindowSevenEdge writes exactly Window blocks against a wire that
// swallows acknowledgements: all seven must go out unblocked (the
// window admits them), and the eighth write must stall — the pacing
// edge the mod-8 numbering forces.
func TestWindowSevenEdge(t *testing.T) {
	// Runs on the virtual clock: a simulated second is proof the writer
	// finished (or stalled), with no real-time stake. Inside Run every
	// assertion is t.Error + return — t.Fatal's Goexit would strand the
	// scheduler token.
	v := vclock.NewVirtual()
	v.Run(func() {
		tx := medium.NewPipe(medium.Profile{Clock: v})
		silent := medium.NewPipe(medium.Profile{Clock: v})
		a := NewClock(wire{d: duplexOf(tx, silent)}, nil, v)
		defer a.Close()
		a.Trace().Enable()

		sent := make(chan int, 1)
		v.Go(func() {
			for i := range Window {
				if _, err := a.Write(bytes.Repeat([]byte{byte(i)}, BlockSize)); err != nil {
					sent <- i
					return
				}
			}
			sent <- Window
		})
		v.Sleep(time.Second)
		select {
		case n := <-sent:
			if n != Window {
				t.Errorf("only %d of %d window blocks went out", n, Window)
				return
			}
		default:
			t.Error("writer blocked inside the window")
			return
		}

		// The eighth block must wait for an ack that never comes: two
		// more simulated seconds and it still has not returned.
		blocked := make(chan struct{}, 1)
		v.Go(func() {
			a.Write([]byte("eighth"))
			blocked <- struct{}{}
		})
		v.Sleep(2 * time.Second)
		select {
		case <-blocked:
			t.Error("write past the window did not block")
			return
		default:
		}

		// The trace starts with seven sends, sequence-numbered in order
		// (the enquiries the stalled ack path provoked trail after).
		evs := a.Trace().Events()
		if len(evs) < Window {
			t.Errorf("trace has %d events, want at least %d", len(evs), Window)
			return
		}
		for i := 0; i < Window; i++ {
			if evs[i].Kind != obs.EvSend || evs[i].A != int64(i) {
				t.Errorf("trace[%d] = %v seq %d, want send seq %d", i, evs[i].Kind, evs[i].A, i)
				return
			}
		}
	})
}

// TestEnquiryTimeout stalls the ack path and waits: the timer must
// send enquiries (counted and traced) rather than retransmit blindly.
func TestEnquiryTimeout(t *testing.T) {
	// Virtual clock: one simulated second covers twenty enquiry
	// timeouts, so the "wait for the timer" half costs nothing real.
	v := vclock.NewVirtual()
	v.Run(func() {
		tx := medium.NewPipe(medium.Profile{Clock: v})
		silent := medium.NewPipe(medium.Profile{Clock: v})
		stats := &Stats{}
		a := NewClock(wire{d: duplexOf(tx, silent)}, stats, v)
		defer a.Close()
		a.Trace().Enable()

		if _, err := a.Write([]byte("lonely block")); err != nil {
			t.Error(err)
			return
		}
		v.Sleep(time.Second)
		if stats.Enquiries.Load() == 0 {
			t.Error("no enquiry after the ack stalled")
			return
		}
		ks := a.Trace().Kinds()
		if len(ks) < 2 || ks[0] != obs.EvSend {
			t.Errorf("trace %v: want send first", ks)
			return
		}
		sawQuery := false
		for _, k := range ks[1:] {
			if k == obs.EvQuery {
				sawQuery = true
			}
		}
		if !sawQuery {
			t.Errorf("trace %v records no enquiry", ks)
		}
	})
}

// TestTraceOrderUnderLoss drives a lossy wire and checks both ends'
// rings: the sender's trace interleaves sends, retransmits, and acks;
// the receiver's records in-sequence receives and the REJs that
// triggered recovery — and the counted rejects equal the traced ones.
func TestTraceOrderUnderLoss(t *testing.T) {
	a, b, stats := pair(t, medium.Profile{Loss: 0.12, Seed: 4})
	a.Trace().Enable()
	b.Trace().Enable()

	const rounds = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for n := 0; n < rounds; {
			if _, err := b.Read(buf); err != nil {
				return
			}
			n++
		}
	}()
	for i := range rounds {
		if _, err := a.Write(bytes.Repeat([]byte{byte(i)}, 300)); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	// Sender side: sends and at least one retransmit (the wire loses
	// ~12% of cells), acks present, and every retransmit traced is
	// also counted.
	var sends, retrans, acks int64
	for _, e := range a.Trace().Events() {
		switch e.Kind {
		case obs.EvSend:
			sends++
		case obs.EvRetransmit:
			retrans++
		case obs.EvAck:
			acks++
		}
	}
	if sends == 0 || acks == 0 {
		t.Fatalf("sender trace: %d sends, %d acks", sends, acks)
	}
	if retrans == 0 {
		t.Error("12% loss produced no traced retransmit")
	}

	// Receiver side: the trace records REJs as they are SENT, the
	// counter as they are RECEIVED by the peer — a REJ cell can itself
	// be lost, so traced ≥ counted, never the reverse.
	var rejs int64
	for _, e := range b.Trace().Events() {
		if e.Kind == obs.EvReject {
			rejs++
		}
	}
	if rejs == 0 {
		t.Error("loss produced no traced REJ")
	}
	if rejs < stats.Rejects.Load() {
		t.Errorf("peer counted %d rejects but only %d were traced as sent", stats.Rejects.Load(), rejs)
	}

	// In-sequence receives arrive with monotonically advancing mod-8
	// sequence numbers.
	prev := int64(-1)
	for _, e := range b.Trace().Events() {
		if e.Kind != obs.EvRecv {
			continue
		}
		if prev >= 0 {
			if want := (prev + 1) % SeqMod; e.A != want {
				t.Fatalf("receive trace jumps %d -> %d", prev, e.A)
			}
		}
		prev = e.A
	}
}
