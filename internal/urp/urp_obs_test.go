package urp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/medium"
	"repro/internal/obs"
)

// Deeper URP behavior at the protocol's edges: the mod-8 sequence
// space's window of seven, the enquiry timer when acknowledgements
// stall, and the trace ring recording the block-level conversation in
// order.

// TestWindowSevenEdge writes exactly Window blocks against a wire that
// swallows acknowledgements: all seven must go out unblocked (the
// window admits them), and the eighth write must stall — the pacing
// edge the mod-8 numbering forces.
func TestWindowSevenEdge(t *testing.T) {
	tx := medium.NewPipe(medium.Profile{})
	silent := medium.NewPipe(medium.Profile{})
	a := New(wire{d: duplexOf(tx, silent)}, nil)
	defer a.Close()
	a.Trace().Enable()

	sent := make(chan int, 1)
	go func() {
		for i := range Window {
			if _, err := a.Write(bytes.Repeat([]byte{byte(i)}, BlockSize)); err != nil {
				sent <- i
				return
			}
		}
		sent <- Window
	}()
	select {
	case n := <-sent:
		if n != Window {
			t.Fatalf("only %d of %d window blocks went out", n, Window)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked inside the window")
	}

	// The eighth block must wait for an ack that never comes.
	blocked := make(chan struct{}, 1)
	go func() {
		a.Write([]byte("eighth"))
		blocked <- struct{}{}
	}()
	select {
	case <-blocked:
		t.Fatal("write past the window did not block")
	case <-time.After(200 * time.Millisecond):
	}

	// The trace recorded seven sends, sequence-numbered in order.
	evs := a.Trace().Events()
	if len(evs) < Window {
		t.Fatalf("trace has %d events, want at least %d", len(evs), Window)
	}
	for i := 0; i < Window; i++ {
		if evs[i].Kind != obs.EvSend || evs[i].A != int64(i) {
			t.Fatalf("trace[%d] = %v seq %d, want send seq %d", i, evs[i].Kind, evs[i].A, i)
		}
	}
}

// TestEnquiryTimeout stalls the ack path and waits: the timer must
// send enquiries (counted and traced) rather than retransmit blindly.
func TestEnquiryTimeout(t *testing.T) {
	tx := medium.NewPipe(medium.Profile{})
	silent := medium.NewPipe(medium.Profile{})
	stats := &Stats{}
	a := New(wire{d: duplexOf(tx, silent)}, stats)
	defer a.Close()
	a.Trace().Enable()

	if _, err := a.Write([]byte("lonely block")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for stats.Enquiries.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if stats.Enquiries.Load() == 0 {
		t.Fatal("no enquiry after the ack stalled")
	}
	ks := a.Trace().Kinds()
	if len(ks) < 2 || ks[0] != obs.EvSend {
		t.Fatalf("trace %v: want send first", ks)
	}
	sawQuery := false
	for _, k := range ks[1:] {
		if k == obs.EvQuery {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Fatalf("trace %v records no enquiry", ks)
	}
}

// TestTraceOrderUnderLoss drives a lossy wire and checks both ends'
// rings: the sender's trace interleaves sends, retransmits, and acks;
// the receiver's records in-sequence receives and the REJs that
// triggered recovery — and the counted rejects equal the traced ones.
func TestTraceOrderUnderLoss(t *testing.T) {
	a, b, stats := pair(t, medium.Profile{Loss: 0.12, Seed: 4})
	a.Trace().Enable()
	b.Trace().Enable()

	const rounds = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for n := 0; n < rounds; {
			if _, err := b.Read(buf); err != nil {
				return
			}
			n++
		}
	}()
	for i := range rounds {
		if _, err := a.Write(bytes.Repeat([]byte{byte(i)}, 300)); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	// Sender side: sends and at least one retransmit (the wire loses
	// ~12% of cells), acks present, and every retransmit traced is
	// also counted.
	var sends, retrans, acks int64
	for _, e := range a.Trace().Events() {
		switch e.Kind {
		case obs.EvSend:
			sends++
		case obs.EvRetransmit:
			retrans++
		case obs.EvAck:
			acks++
		}
	}
	if sends == 0 || acks == 0 {
		t.Fatalf("sender trace: %d sends, %d acks", sends, acks)
	}
	if retrans == 0 {
		t.Error("12% loss produced no traced retransmit")
	}

	// Receiver side: the trace records REJs as they are SENT, the
	// counter as they are RECEIVED by the peer — a REJ cell can itself
	// be lost, so traced ≥ counted, never the reverse.
	var rejs int64
	for _, e := range b.Trace().Events() {
		if e.Kind == obs.EvReject {
			rejs++
		}
	}
	if rejs == 0 {
		t.Error("loss produced no traced REJ")
	}
	if rejs < stats.Rejects.Load() {
		t.Errorf("peer counted %d rejects but only %d were traced as sent", stats.Rejects.Load(), rejs)
	}

	// In-sequence receives arrive with monotonically advancing mod-8
	// sequence numbers.
	prev := int64(-1)
	for _, e := range b.Trace().Events() {
		if e.Kind != obs.EvRecv {
			continue
		}
		if prev >= 0 {
			if want := (prev + 1) % SeqMod; e.A != want {
				t.Fatalf("receive trace jumps %d -> %d", prev, e.A)
			}
		}
		prev = e.A
	}
}
