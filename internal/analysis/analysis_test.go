package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches corpus expectations: // want <check> "substring".
var wantRe = regexp.MustCompile(`// want ([\w-]+) "([^"]*)"`)

type want struct {
	check   string
	substr  string
	matched bool
}

// TestCorpus runs every check over each testdata file and demands an
// exact position match both ways: every diagnostic must hit a want on
// its line, and every want must be hit.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			res := runCorpusFile(t, file)
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			wants := map[int][]*want{}
			total := 0
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					wants[i+1] = append(wants[i+1], &want{check: m[1], substr: m[2]})
					total++
				}
			}
			for _, d := range res.Diags {
				found := false
				for _, w := range wants[d.Pos.Line] {
					if w.check == d.Check && strings.Contains(d.Message, w.substr) {
						w.matched = true
						found = true
					}
				}
				if !found {
					t.Errorf("%s:%d: unexpected %s: %s", file, d.Pos.Line, d.Check, d.Message)
				}
			}
			for line, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: missing %s diagnostic matching %q", file, line, w.check, w.substr)
					}
				}
			}
		})
	}
}

// TestIgnoreDirectiveCounted pins the suppression accounting: the
// ignorecase corpus carries three suppressed sends (same line, line
// above, bare directive) and one live one (wrong check name).
func TestIgnoreDirectiveCounted(t *testing.T) {
	res := runCorpusFile(t, filepath.Join("testdata", "src", "ignorecase.go"))
	if got := res.Suppressed["lock-across-send"]; got != 3 {
		t.Errorf("suppressed lock-across-send = %d, want 3", got)
	}
	if len(res.Diags) != 1 {
		t.Errorf("live diagnostics = %d, want 1 (wrong-name directive must not suppress)", len(res.Diags))
	}
}

func runCorpusFile(t *testing.T, file string) *Result {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckSource(fset, file, src)
	if err != nil {
		t.Fatalf("corpus file must type-check: %v", err)
	}
	return RunPkg(fset, pkg, Checks())
}

// TestSelfClean turns the analyzer on its own module: the repo must
// stay at zero unsuppressed diagnostics.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."), false)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(mod, Checks())
	for _, d := range res.Diags {
		t.Errorf("unsuppressed: %s", d)
	}
}
