package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches corpus expectations: // want <check> "substring".
// An optional offset (want-1, want+2) anchors the expectation to a
// nearby line — needed when the diagnostic lands on a line that
// cannot carry a second comment, like a directive's own line.
var wantRe = regexp.MustCompile(`// want([+-]\d+)? ([\w-]+) "([^"]*)"`)

type want struct {
	check   string
	substr  string
	matched bool
}

// TestCorpus runs every check over each testdata file and demands an
// exact position match both ways: every diagnostic must hit a want on
// its line, and every want must be hit.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "src", "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			res := runCorpusFile(t, file)
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			wants := map[int][]*want{}
			total := 0
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					off := 0
					if m[1] != "" {
						off, _ = strconv.Atoi(m[1])
					}
					wants[i+1+off] = append(wants[i+1+off], &want{check: m[2], substr: m[3]})
					total++
				}
			}
			for _, d := range res.Diags {
				found := false
				for _, w := range wants[d.Pos.Line] {
					if w.check == d.Check && strings.Contains(d.Message, w.substr) {
						w.matched = true
						found = true
					}
				}
				if !found {
					t.Errorf("%s:%d: unexpected %s: %s", file, d.Pos.Line, d.Check, d.Message)
				}
			}
			for line, ws := range wants {
				for _, w := range ws {
					if !w.matched {
						t.Errorf("%s:%d: missing %s diagnostic matching %q", file, line, w.check, w.substr)
					}
				}
			}
		})
	}
}

// TestIgnoreDirectiveCounted pins the suppression accounting: the
// ignorecase corpus carries two suppressed sends (same line, line
// above); malformed directives are errors and suppress nothing.
func TestIgnoreDirectiveCounted(t *testing.T) {
	res := runCorpusFile(t, filepath.Join("testdata", "src", "ignorecase.go"))
	if got := res.Suppressed["lock-across-send"]; got != 2 {
		t.Errorf("suppressed lock-across-send = %d, want 2", got)
	}
	if got := len(res.Ignored); got != 2 {
		t.Errorf("recorded suppressions = %d, want 2", got)
	}
	byCheck := map[string]int{}
	for _, d := range res.Diags {
		byCheck[d.Check]++
	}
	if byCheck["directive"] != 3 {
		t.Errorf("directive errors = %d, want 3 (bare, reasonless, unknown name)", byCheck["directive"])
	}
	if byCheck["lock-across-send"] != 4 {
		t.Errorf("live lock-across-send = %d, want 4 (malformed directives must not suppress)", byCheck["lock-across-send"])
	}
	// The two suppressing directives matched a finding; the wrong-name
	// one stayed unmatched (that is what -ignored surfaces).
	matched := 0
	for _, d := range res.Directives {
		if d.Matched > 0 {
			matched++
		}
	}
	if matched != 2 || len(res.Directives) != 3 {
		t.Errorf("matched directives = %d/%d, want 2/3", matched, len(res.Directives))
	}
}

func runCorpusFile(t *testing.T, file string) *Result {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckSource(fset, file, src)
	if err != nil {
		t.Fatalf("corpus file must type-check: %v", err)
	}
	return RunPkg(fset, pkg, Checks())
}

// TestSelfClean turns the analyzer on its own module: the repo must
// stay at zero unsuppressed diagnostics.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	mod, err := LoadModule(filepath.Join("..", ".."), false)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(mod, Checks())
	for _, d := range res.Diags {
		t.Errorf("unsuppressed: %s", d)
	}
}
