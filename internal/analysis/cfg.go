package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file is the intra-procedural control-flow graph the dataflow
// checks run over. One function body becomes a graph of basic blocks:
// straight-line statement runs linked by every control transfer Go can
// express — if/else, the three for forms, range, switch and type
// switch (with fallthrough), select, labeled break/continue, goto,
// return, and panic. Deferred calls are collected during the walk and
// replayed, in reverse registration order, inside the single Exit
// block, mirroring the runtime's unwinding; a return edge therefore
// passes through the deferred work before leaving the function, which
// is exactly what a leak or double-free analysis needs to see.
//
// The builder is syntactic and conservative: both arms of every branch
// are possible, loops may run zero times, and a select with no cases
// (which blocks forever) simply has no successors. Function literals
// are opaque expressions here — their bodies get their own CFGs.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry   *BBlock
	Exit    *BBlock // the one way out: returns, panics, fall-off-end
	FallOff *BBlock // the block that reaches Exit without a return, if any
	Blocks  []*BBlock
}

// BBlock is one basic block: statements (and the conditions of the
// branches that end the block) executed in order, then a transfer to
// one of Succs. The Exit block's Nodes are the *ast.CallExpr of each
// deferred call, last-registered first.
type BBlock struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... for rendering
	Nodes []ast.Node
	Succs []*BBlock

	// Cond, when set, is the if condition that gates entry to this
	// block, and CondTaken its outcome on this edge (true for the
	// then arm, false for the else arm). Dataflow clients use it to
	// prune branch-refuted facts at block entry.
	Cond      ast.Expr
	CondTaken bool
}

// RangeHeader is the CFG node standing for a range statement's header
// — the ranged expression and the key/value bindings — without the
// body (which lives in its own blocks). Checks treat X as a use and
// Key/Value as definitions, evaluated once per iteration.
type RangeHeader struct{ Range *ast.RangeStmt }

func (h *RangeHeader) Pos() token.Pos { return h.Range.Pos() }
func (h *RangeHeader) End() token.Pos { return h.Range.X.End() }

// SelectHeader is the CFG node standing for the blocking point of a
// select statement; the comm clauses live in the case blocks.
type SelectHeader struct{ Select *ast.SelectStmt }

func (h *SelectHeader) Pos() token.Pos { return h.Select.Pos() }
func (h *SelectHeader) End() token.Pos { return h.Select.Pos() + token.Pos(len("select")) }

// cfgBuilder carries the walk state.
type cfgBuilder struct {
	cfg    *CFG
	cur    *BBlock   // block under construction; nil after a terminator
	toExit []*BBlock // blocks ending in return or panic
	frames []*frame  // enclosing breakable/continuable constructs
	labels map[string]*BBlock
	defers []*ast.CallExpr // registration order
}

// frame is one enclosing construct break (and for loops, continue)
// can target.
type frame struct {
	label    string
	loop     bool
	cont     *BBlock   // continue target (loop head or post), set up front
	breaks   []*BBlock // blocks that break out; linked when the after-block exists
	nextCase *BBlock   // fallthrough target while building a switch
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*BBlock{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil { // fall off the end
		b.cfg.FallOff = b.cur
		b.toExit = append(b.toExit, b.cur)
	}
	exit := b.newBlock("exit")
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.defers[i])
	}
	for _, blk := range b.toExit {
		link(blk, exit)
	}
	b.cfg.Exit = exit
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *BBlock {
	blk := &BBlock{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *BBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// block returns the block to append to, reviving an unreachable region
// (statements after return/break) as a predecessor-less block so their
// nodes still exist in the graph.
func (b *cfgBuilder) block() *BBlock {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) { b.block().Nodes = append(b.block().Nodes, n) }

// terminate ends the current block toward the exit.
func (b *cfgBuilder) terminate() {
	if b.cur != nil {
		b.toExit = append(b.toExit, b.cur)
		b.cur = nil
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the label attached to it, if
// it is the direct child of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			link(b.cur, lb)
		}
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.DeferStmt:
		b.add(s) // the registration point: arguments are evaluated here
		b.defers = append(b.defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.terminate()
		}

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, "typeswitch")

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.GoStmt:
		b.add(s) // call arguments are evaluated here; the body runs elsewhere

	default:
		// Assignments, declarations, sends, inc/dec, empty statements:
		// straight-line.
		b.add(s)
	}
}

// labelBlock returns (creating on first mention — a forward goto may
// arrive before the label) the block a label starts.
func (b *cfgBuilder) labelBlock(name string) *BBlock {
	lb := b.labels[name]
	if lb == nil {
		lb = b.newBlock("label." + name)
		b.labels[name] = lb
	}
	return lb
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.GOTO:
		if b.cur != nil {
			link(b.cur, b.labelBlock(label))
			b.cur = nil
		}
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				if b.cur != nil {
					f.breaks = append(f.breaks, b.cur)
					b.cur = nil
				}
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.loop && (label == "" || f.label == label) {
				if b.cur != nil {
					link(b.cur, f.cont)
					b.cur = nil
				}
				return
			}
		}
	case token.FALLTHROUGH:
		if f := b.topFrame(); f != nil && f.nextCase != nil && b.cur != nil {
			link(b.cur, f.nextCase)
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) topFrame() *frame {
	if len(b.frames) == 0 {
		return nil
	}
	return b.frames[len(b.frames)-1]
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	b.add(s.Cond)
	cond := b.block()
	b.cur = nil

	then := b.newBlock("if.then")
	then.Cond, then.CondTaken = s.Cond, true
	link(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	// The else arm is always materialized, even when empty, so the
	// condition's false outcome has a block to hang on — dataflow
	// clients prune branch-refuted facts (x known nil) at block entry.
	els := b.newBlock("if.else")
	els.Cond, els.CondTaken = s.Cond, false
	link(cond, els)
	b.cur = els
	if s.Else != nil {
		b.stmt(s.Else, "")
	}
	elseEnd := b.cur

	if thenEnd == nil && elseEnd == nil {
		b.cur = nil // both arms terminated
		return
	}
	join := b.newBlock("if.join")
	if thenEnd != nil {
		link(thenEnd, join)
	}
	if elseEnd != nil {
		link(elseEnd, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init, "")
	}
	head := b.newBlock("for.head")
	if b.cur != nil {
		link(b.cur, head)
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}

	var post *BBlock
	cont := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		link(post, head)
		cont = post
	}

	f := &frame{label: label, loop: true, cont: cont}
	b.frames = append(b.frames, f)
	body := b.newBlock("for.body")
	link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		link(b.cur, cont)
	}
	b.frames = b.frames[:len(b.frames)-1]

	if s.Cond == nil && len(f.breaks) == 0 {
		b.cur = nil // for {} with no break never falls through
		return
	}
	after := b.newBlock("for.after")
	if s.Cond != nil {
		link(head, after)
	}
	for _, blk := range f.breaks {
		link(blk, after)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	if b.cur != nil {
		link(b.cur, head)
	}
	head.Nodes = append(head.Nodes, &RangeHeader{Range: s})

	f := &frame{label: label, loop: true, cont: head}
	b.frames = append(b.frames, f)
	body := b.newBlock("range.body")
	link(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		link(b.cur, head)
	}
	b.frames = b.frames[:len(b.frames)-1]

	after := b.newBlock("range.after")
	link(head, after)
	for _, blk := range f.breaks {
		link(blk, after)
	}
	b.cur = after
}

// switchBody builds the clauses of a switch or type switch. The head
// (tag already appended to cur) branches to every case; a case without
// fallthrough ends at the join; no default means the head can skip to
// the join directly.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label, kind string) {
	head := b.block()
	b.cur = nil
	f := &frame{label: label}
	b.frames = append(b.frames, f)

	// Case bodies are created first so fallthrough has a target.
	var caseBlocks []*BBlock
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		cb := b.newBlock(kind + ".case")
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, cb)
		link(head, cb)
	}
	var ends []*BBlock
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		f.nextCase = nil
		if i+1 < len(caseBlocks) {
			f.nextCase = caseBlocks[i+1]
		}
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			ends = append(ends, b.cur)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]

	join := b.newBlock(kind + ".join")
	if !hasDefault {
		link(head, join)
	}
	for _, e := range ends {
		link(e, join)
	}
	for _, blk := range f.breaks {
		link(blk, join)
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.block()
	head.Nodes = append(head.Nodes, &SelectHeader{Select: s}) // the blocking point itself
	b.cur = nil
	if len(s.Body.List) == 0 {
		return // select {} blocks forever: no successors
	}
	f := &frame{label: label}
	b.frames = append(b.frames, f)

	var ends []*BBlock
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		cb := b.newBlock("select.case")
		link(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			ends = append(ends, b.cur)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]

	if len(ends) == 0 && len(f.breaks) == 0 {
		b.cur = nil
		return
	}
	join := b.newBlock("select.join")
	for _, e := range ends {
		link(e, join)
	}
	for _, blk := range f.breaks {
		link(blk, join)
	}
	b.cur = join
}

// isPanicCall recognizes a direct call of the panic builtin.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Render prints the CFG canonically, one block per line:
//
//	b0 entry: {x := f(); x > 0} -> b1 b2
//
// Deterministic, whitespace-collapsed — the shape the builder tests
// pin.
func (g *CFG) Render(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			var parts []string
			for _, n := range blk.Nodes {
				parts = append(parts, nodeText(fset, n))
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText renders one node as a single collapsed line of source.
func nodeText(fset *token.FileSet, n ast.Node) string {
	switch n := n.(type) {
	case *RangeHeader:
		head := "range " + nodeText(fset, n.Range.X)
		if n.Range.Key != nil {
			kv := nodeText(fset, n.Range.Key)
			if n.Range.Value != nil {
				kv += ", " + nodeText(fset, n.Range.Value)
			}
			head = kv + " " + n.Range.Tok.String() + " " + head
		}
		return head
	case *SelectHeader:
		return "select"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
