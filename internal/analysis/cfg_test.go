package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestCFGShapes pins the canonical rendering of small function CFGs:
// every construct the builder claims to handle, including defer,
// labeled break/continue, goto, fallthrough, and select.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name, body string
		want       string
	}{
		{
			name: "straightline",
			body: `x := 1; y := x + 1; _ = y`,
			want: `
b0 entry: {x := 1; y := x + 1; _ = y} -> b1
b1 exit:`,
		},
		{
			// The else arm is materialized even when absent, so both
			// branch edges carry the governing condition for pruning.
			name: "if_no_else",
			body: `if x() { a() }; b()`,
			want: `
b0 entry: {x()} -> b1 b2
b1 if.then: {a()} -> b3
b2 if.else: -> b3
b3 if.join: {b()} -> b4
b4 exit:`,
		},
		{
			name: "if_else_return",
			body: `if x() { return } else { a() }; b()`,
			want: `
b0 entry: {x()} -> b1 b2
b1 if.then: {return} -> b4
b2 if.else: {a()} -> b3
b3 if.join: {b()} -> b4
b4 exit:
`,
		},
		{
			name: "for_full",
			body: `for i := 0; i < 3; i++ { a() }; b()`,
			want: `
b0 entry: {i := 0} -> b1
b1 for.head: {i < 3} -> b3 b4
b2 for.post: {i++} -> b1
b3 for.body: {a()} -> b2
b4 for.after: {b()} -> b5
b5 exit:`,
		},
		{
			name: "for_infinite_with_break",
			body: `for { if x() { break }; a() }; b()`,
			want: `
b0 entry: -> b1
b1 for.head: -> b2
b2 for.body: {x()} -> b3 b4
b3 if.then: -> b6
b4 if.else: -> b5
b5 if.join: {a()} -> b1
b6 for.after: {b()} -> b7
b7 exit:
`,
		},
		{
			name: "labeled_break_continue",
			body: `
outer:
	for x() {
		for {
			if x() {
				continue outer
			}
			break outer
		}
	}
	b()`,
			want: `
b0 entry: -> b1
b1 label.outer: -> b2
b2 for.head: {x()} -> b3 b9
b3 for.body: -> b4
b4 for.head: -> b5
b5 for.body: {x()} -> b6 b7
b6 if.then: -> b2
b7 if.else: -> b8
b8 if.join: -> b9
b9 for.after: {b()} -> b10
b10 exit:
`,
		},
		{
			name: "range_chan",
			body: `for v := range ch { a(); _ = v }; b()`,
			want: `
b0 entry: -> b1
b1 range.head: {v := range ch} -> b2 b3
b2 range.body: {a(); _ = v} -> b1
b3 range.after: {b()} -> b4
b4 exit:
`,
		},
		{
			name: "switch_fallthrough",
			body: `switch x() { case true: a(); fallthrough; case false: b(); default: return }; c()`,
			want: `
b0 entry: {x()} -> b1 b2 b3
b1 switch.case: {true; a()} -> b2
b2 switch.case: {false; b()} -> b4
b3 switch.case: {return} -> b5
b4 switch.join: {c()} -> b5
b5 exit:
`,
		},
		{
			name: "select_two_cases",
			body: `select { case v := <-ch: a(); _ = v; case ch <- true: b() }; c()`,
			want: `
b0 entry: {select} -> b1 b2
b1 select.case: {v := <-ch; a(); _ = v} -> b3
b2 select.case: {ch <- true; b()} -> b3
b3 select.join: {c()} -> b4
b4 exit:
`,
		},
		{
			name: "select_forever",
			body: `a(); select {}`,
			want: `
b0 entry: {a(); select}
b1 exit:
`,
		},
		{
			name: "defer_and_panic",
			body: `defer a(); if x() { panic("boom") }; defer b(); c()`,
			want: `
b0 entry: {defer a(); x()} -> b1 b2
b1 if.then: {panic("boom")} -> b4
b2 if.else: -> b3
b3 if.join: {defer b(); c()} -> b4
b4 exit: {b(); a()}
`,
		},
		{
			name: "goto_forward_and_back",
			body: `
loop:
	a()
	if x() {
		goto done
	}
	goto loop
done:
	b()`,
			want: `
b0 entry: -> b1
b1 label.loop: {a(); x()} -> b2 b4
b2 if.then: -> b3
b3 label.done: {b()} -> b6
b4 if.else: -> b5
b5 if.join: -> b1
b6 exit:
`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\nvar ch chan bool\nfunc x() bool { return false }\nfunc a() {}\nfunc b() {}\nfunc c() {}\nfunc f() {\n" + tc.body + "\n}\n"
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, "cfg.go", src, 0)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var body *ast.BlockStmt
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
					body = fd.Body
				}
			}
			got := strings.TrimRight(BuildCFG(body).Render(fset), "\n")
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}
