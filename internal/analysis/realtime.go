package analysis

import (
	"go/ast"
	"go/types"
)

// realtimeCheck flags direct real-clock calls — time.Now, time.Sleep,
// time.After and their timer-constructing relatives — anywhere in the
// module except the vclock package itself. The simulator's whole
// deterministic-replay story rests on every timestamp and timer going
// through a threaded vclock.Clock: one stray time.Sleep in a protocol
// engine silently anchors a "virtual" scenario to the wall clock,
// breaking both the speedup and the same-seed identity guarantee, and
// nothing else in the test suite notices until a seed refuses to
// replay. Genuinely wall-clock uses (benchmark harnesses measuring
// real throughput, the leak checker polling the real runtime, the
// wall-side half of a simulation report) carry a
// //netvet:ignore realtime directive, so every exception is deliberate
// and auditable.
var realtimeCheck = &Check{
	Name: "realtime",
	Doc:  "direct real-clock call where a vclock.Clock should be threaded",
	Run:  runRealtime,
}

// realtimeFuncs are the package-level time functions that read or arm
// the real clock. Pure values and arithmetic (time.Duration,
// time.Millisecond, time.Date) are fine anywhere.
var realtimeFuncs = map[string]string{
	"Now":       "ck.Now()",
	"Sleep":     "ck.Sleep",
	"After":     "ck.AfterFunc",
	"AfterFunc": "ck.AfterFunc",
	"NewTimer":  "ck.AfterFunc",
	"NewTicker": "a ck.Sleep loop",
	"Tick":      "a ck.Sleep loop",
	"Since":     "ck.Since",
	"Until":     "ck.Now arithmetic",
}

func runRealtime(p *Pass) {
	if p.Pkg.Name == "vclock" {
		// The clock package is the one place the real clock lives.
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			repl, hit := realtimeFuncs[sel.Sel.Name]
			if !hit {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s reads the real clock: thread a vclock.Clock and use %s so the code stays deterministic under virtual time",
				sel.Sel.Name, repl)
			return true
		})
	}
}
