package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unjoinedGoroutineCheck flags go statements whose body can never
// exit: an unconditional loop (or empty select) containing no return,
// no break, no channel operation, and no panic. Such a goroutine has
// no shutdown path — it is not registered with any machine or stream
// lifecycle and nothing can ever join it, so every call of the
// enclosing function leaks one goroutine. Pump loops that exit on a
// failed Read, select on a done channel, range over a channel, or
// signal a WaitGroup all pass; the check is aimed at the fire-and-
// forget daemon that outlives its world.
var unjoinedGoroutineCheck = &Check{
	Name: "unjoined-goroutine",
	Doc:  "goroutine with no shutdown path (unconditional loop that cannot exit)",
	Run:  runUnjoinedGoroutine,
}

func runUnjoinedGoroutine(p *Pass) {
	// Map named functions to their declarations so `go f()` can be
	// analyzed through the call.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(p, g, decls)
			if body == nil {
				return true
			}
			if pos, what, leaky := foreverWithoutExit(p, body); leaky {
				p.Reportf(g.Pos(), "goroutine has no shutdown path: %s at line %d can never exit; join it to a lifecycle (done channel, context, or WaitGroup)",
					what, p.Fset.Position(pos).Line)
			}
			return true
		})
	}
}

// goBody resolves the body a go statement runs: a literal's body, or
// the declaration of a same-package function. Cross-package calls are
// opaque and trusted.
func goBody(p *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[p.Pkg.Info.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[p.Pkg.Info.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// foreverWithoutExit looks for an unconditional `for` loop (or empty
// select) with no way out, outside nested function literals.
func foreverWithoutExit(p *Pass, body *ast.BlockStmt) (pos token.Pos, what string, leaky bool) {
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if leaky {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				pos, what, leaky = n.Pos(), "empty select", true
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanExit(p, n.Body) {
				pos, what, leaky = n.Pos(), "unconditional loop", true
				return false
			}
		}
		return true
	})
	return pos, what, leaky
}

// loopCanExit reports whether a loop body contains any exit evidence:
// return, break, goto, panic, or a channel operation (receives,
// selects, and ranges give shutdown paths; a send can at least be
// observed by a peer that closes the channel to panic us — it still
// couples the goroutine to another's lifecycle, so it does not count).
func loopCanExit(p *Pass, body *ast.BlockStmt) bool {
	can := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if can {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			can = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				can = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				can = true
			}
		case *ast.SelectStmt:
			can = true
		case *ast.RangeStmt:
			if t, ok := p.Pkg.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					can = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				can = true
			}
		}
		return !can
	})
	return can
}
