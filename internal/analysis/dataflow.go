package analysis

import "go/ast"

// A lattice-based forward worklist solver over the CFG. A check
// describes its analysis as a Problem — an abstract state, a transfer
// function over CFG nodes, and a join — and Solve iterates to a fixed
// point. States must be treated as immutable by Transfer (return a
// fresh value when anything changes): the solver caches and compares
// them across iterations.

// State is a check's abstract value at a program point.
type State any

// Problem is one forward dataflow analysis.
type Problem interface {
	// Entry is the state on function entry.
	Entry() State
	// Transfer produces the state after executing node n in block b
	// with state s. It must not mutate s.
	Transfer(b *BBlock, n ast.Node, s State) State
	// Join merges the states of two incoming edges.
	Join(a, b State) State
	// Equal reports whether two states carry the same information;
	// the solver stops when all block states stabilize.
	Equal(a, b State) bool
}

// Enterer is an optional Problem extension: EnterBlock transforms the
// state flowing into b, before it joins b's other inputs. Branch-arm
// blocks carry their governing condition (BBlock.Cond/CondTaken), so
// this is where a check prunes facts the branch refutes — a pointer
// compared to nil is known nil on the arm that confirms it.
type Enterer interface {
	EnterBlock(b *BBlock, s State) State
}

// Solve runs p forward over g to a fixed point and returns the state
// at entry to each block. Blocks never reached from Entry keep a nil
// in-state; Transfer is not run over them on the final pass either, so
// checks see only feasible paths. The iteration bound (blocks ×
// nodes, generously padded) guards against a non-converging lattice.
func Solve(g *CFG, p Problem) map[*BBlock]State {
	in := make(map[*BBlock]State, len(g.Blocks))
	in[g.Entry] = p.Entry()

	// Reverse-postorder worklist seeded from entry.
	order := postorder(g)
	pos := make(map[*BBlock]int, len(order))
	for i, b := range order {
		pos[b] = len(order) - i // higher = earlier in RPO
	}
	work := []*BBlock{g.Entry}
	queued := map[*BBlock]bool{g.Entry: true}
	steps, maxSteps := 0, (len(g.Blocks)+2)*(len(g.Blocks)+2)*4
	enter, _ := p.(Enterer)

	for len(work) > 0 {
		// Pop the block earliest in reverse postorder.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] > pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work = append(work[:best], work[best+1:]...)
		queued[b] = false
		if steps++; steps > maxSteps {
			break
		}

		s := in[b]
		if s == nil {
			continue
		}
		for _, n := range b.Nodes {
			s = p.Transfer(b, n, s)
		}
		for _, succ := range b.Succs {
			next := s
			if enter != nil {
				next = enter.EnterBlock(succ, next)
			}
			if prev := in[succ]; prev != nil {
				next = p.Join(prev, next)
				if p.Equal(prev, next) {
					continue
				}
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(g *CFG) []*BBlock {
	var order []*BBlock
	seen := make(map[*BBlock]bool, len(g.Blocks))
	var visit func(b *BBlock)
	visit = func(b *BBlock) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(g.Entry)
	return order
}
