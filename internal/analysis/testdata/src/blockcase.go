// Corpus for the block-aliasing check.
package blockcase

type blk struct{ Buf []byte }

func (b *blk) Bytes() []byte { return b.Buf }
func (b *blk) Free()         {}

type queue struct{}

func (q *queue) PutNext(b *blk) {}

func sink(p []byte) {}

func useAfterFree(b *blk) {
	p := b.Bytes()
	b.Free()
	sink(p) // want block-aliasing "used after b is released"
}

func indexAfterFree(b *blk) byte {
	p := b.Buf
	b.Free()
	return p[0] // want block-aliasing "used after b is released"
}

func writeAfterPutNext(q *queue, b *blk) {
	hdr := b.Bytes()
	q.PutNext(b)
	hdr[0] = 1 // want block-aliasing "used after b is released"
}

// The rest must stay silent.

func useBeforeFree(b *blk) {
	p := b.Bytes()
	sink(p)
	b.Free()
}

func neverReleased(b *blk) {
	p := b.Bytes()
	sink(p)
	sink(p)
}

func rebindAfterFree(b, c *blk) {
	p := b.Bytes()
	sink(p)
	b.Free()
	p = c.Bytes() // wholesale rebind: p no longer views b
	sink(p)
}

func freeInErrorBranch(b *blk) {
	p := b.Bytes()
	if len(p) == 0 {
		b.Free()
		return
	}
	sink(p) // the free is branch-local: this path still owns b
	b.Free()
}

type buffer struct{ Buf []byte }

func (bu *buffer) Bytes() []byte { return bu.Buf }

func notABlock(bu *buffer, q *queue, b *blk) {
	p := bu.Bytes() // no Free method: not a pooled block, untracked
	q.PutNext(b)
	sink(p)
}
