// Corpus for the block-ownership check: buffer-view aliasing cases
// (carried over from the retired block-aliasing check).
package blockcase

type blk struct{ Buf []byte }

func (b *blk) Bytes() []byte { return b.Buf }
func (b *blk) Free()         {}

type queue struct{}

func (q *queue) PutNext(b *blk) {}

func sink(p []byte) {}

func useAfterFree(b *blk) {
	p := b.Bytes()
	b.Free()
	sink(p) // want block-ownership "used after b is released"
}

func indexAfterFree(b *blk) byte {
	p := b.Buf
	b.Free()
	return p[0] // want block-ownership "used after b is released"
}

func writeAfterPutNext(q *queue, b *blk) {
	hdr := b.Bytes()
	q.PutNext(b)
	hdr[0] = 1 // want block-ownership "used after b is released"
}

// The trace API is a tempting place to break the rule: a send path
// frees (or hands on) the block, then reaches back into the buffer
// for the event's payload fields. By then the pool may have recycled
// the bytes, so the trace records somebody else's data.

type ring struct{}

func (r *ring) Emit(kind int, a, b int64) {}

func traceAfterFree(r *ring, b *blk) {
	p := b.Bytes()
	b.Free()
	r.Emit(1, int64(p[0]), int64(len(p))) // want block-ownership "used after b is released"
}

func traceAfterPutNext(r *ring, q *queue, b *blk) {
	p := b.Bytes()
	q.PutNext(b)
	r.Emit(2, 0, int64(len(p))) // want block-ownership "used after b is released"
}

func traceBeforeFree(r *ring, b *blk) {
	p := b.Bytes()
	r.Emit(1, int64(p[0]), int64(len(p))) // payload captured while b is still ours
	b.Free()
}

// The rest must stay silent.

func useBeforeFree(b *blk) {
	p := b.Bytes()
	sink(p)
	b.Free()
}

func neverReleased(b *blk) {
	p := b.Bytes()
	sink(p)
	sink(p)
}

func rebindAfterFree(b, c *blk) {
	p := b.Bytes()
	sink(p)
	b.Free()
	p = c.Bytes() // wholesale rebind: p no longer views b
	sink(p)
}

func freeInErrorBranch(b *blk) {
	p := b.Bytes()
	if len(p) == 0 {
		b.Free()
		return
	}
	sink(p) // the free is branch-local: this path still owns b
	b.Free()
}

type buffer struct{ Buf []byte }

func (bu *buffer) Bytes() []byte { return bu.Buf }

func notABlock(bu *buffer, q *queue, b *blk) {
	p := bu.Bytes() // no Free method: not a pooled block, untracked
	q.PutNext(b)
	sink(p)
}
