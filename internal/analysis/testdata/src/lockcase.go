// Corpus for the lock-across-send check. Each `want` comment asserts
// one diagnostic at that exact line.
package lockcase

import (
	"sync"
	"sync/atomic"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func sendWhileLocked(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want lock-across-send "channel send while holding b.mu"
	b.mu.Unlock()
}

func recvWhileLocked(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want lock-across-send "channel receive while holding b.mu"
}

func selectWhileLocked(b *box, done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want lock-across-send "select while holding b.mu"
	case <-done:
	}
}

func sleepWhileLocked(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want lock-across-send "time.Sleep while holding b.mu" // want realtime "use ck.Sleep"
	b.mu.Unlock()
}

func waitWhileLocked(b *box, wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want lock-across-send "sync.WaitGroup.Wait while holding b.mu"
	b.mu.Unlock()
}

func rangeWhileLocked(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want lock-across-send "range over channel while holding b.mu"
		_ = v
	}
}

type pair struct {
	a, b sync.Mutex
}

func inversion(p *pair) {
	p.a.Lock()
	p.b.Lock() // want lock-across-send "acquiring p.b while holding p.a"
	p.b.Unlock()
	p.a.Unlock()
}

type rbox struct {
	mu sync.RWMutex
	ch chan int
}

func rlockSend(r *rbox) {
	r.mu.RLock()
	r.ch <- 1 // want lock-across-send "channel send while holding r.mu"
	r.mu.RUnlock()
}

// The rest must stay silent.

func unlockBeforeSend(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1 // released first
}

func nonBlockingSelect(b *box, done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-done:
	default: // cannot block
	}
}

func condWaitReleases(b *box) {
	c := sync.NewCond(&b.mu)
	b.mu.Lock()
	c.Wait() // Cond.Wait releases its locker
	b.mu.Unlock()
}

func branchLocalLock(b *box, hot bool) {
	if hot {
		b.mu.Lock()
		b.mu.Unlock()
	}
	b.ch <- 1 // no lock held on this path
}

func sendInNestedLiteral(b *box) func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() {
		b.ch <- 1 // runs after the region; analyzed as its own body
	}
}

// The read-mostly snapshot idiom: writers rebuild the map under mu
// and republish it with an atomic store; readers never lock. The
// store cannot block, so holding mu across it is fine — but parking
// on a channel during the republish is the jam that froze a whole
// switch's worth of dialers.

type snapTable struct {
	mu   sync.Mutex
	snap atomic.Pointer[map[int]int]
	note chan struct{}
}

func republishUnderLock(st *snapTable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := st.snap.Load()
	next := make(map[int]int, len(*old))
	for k, v := range *old {
		next[k] = v
	}
	next[1] = 1
	st.snap.Store(&next) // atomic store is non-blocking: silent
}

func republishThenNotifyLocked(st *snapTable) {
	st.mu.Lock()
	defer st.mu.Unlock()
	next := map[int]int{1: 1}
	st.snap.Store(&next)
	st.note <- struct{}{} // want lock-across-send "channel send while holding st.mu"
}
