// Corpus for the //netvet:ignore directive grammar: a directive needs
// a known check list and a non-empty reason. Same-line and line-above
// placement suppress; a bare directive, a reasonless directive, and an
// unknown check name are themselves errors; a directive naming a
// different check suppresses nothing.
package ignorecase

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func sameLine(b *box) {
	b.mu.Lock()
	b.ch <- 1 //netvet:ignore lock-across-send deliberate: peer never drains under this lock
	b.mu.Unlock()
}

func lineAbove(b *box) {
	b.mu.Lock()
	//netvet:ignore lock-across-send deliberate
	b.ch <- 1
	b.mu.Unlock()
}

func bareDirective(b *box) {
	b.mu.Lock()
	//netvet:ignore
	// want-1 directive "needs a check list and a reason"
	b.ch <- 1 // want lock-across-send "channel send while holding b.mu"
	b.mu.Unlock()
}

func reasonlessDirective(b *box) {
	b.mu.Lock()
	//netvet:ignore lock-across-send
	// want-1 directive "needs a reason"
	b.ch <- 1 // want lock-across-send "channel send while holding b.mu"
	b.mu.Unlock()
}

func unknownCheckName(b *box) {
	b.mu.Lock()
	//netvet:ignore no-such-check because reasons
	// want-1 directive "unknown check"
	b.ch <- 1 // want lock-across-send "channel send while holding b.mu"
	b.mu.Unlock()
}

func wrongCheckName(b *box) {
	b.mu.Lock()
	//netvet:ignore unclosed-resource names a different check
	b.ch <- 1 // want lock-across-send "channel send while holding b.mu"
	b.mu.Unlock()
}
