// Corpus for the realtime check: direct real-clock calls that should
// go through a threaded vclock.Clock, plus the shapes that are fine
// (pure time values, a suppressed wall-clock measurement, a non-time
// package that happens to export Now).
package realtimecase

import (
	"time"
)

type clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	Since(t time.Time) time.Duration
}

func reads() time.Duration {
	start := time.Now()          // want realtime "time.Now reads the real clock"
	time.Sleep(time.Millisecond) // want realtime "use ck.Sleep"
	return time.Since(start)     // want realtime "use ck.Since"
}

func timers(f func()) {
	time.AfterFunc(time.Second, f)  // want realtime "time.AfterFunc reads the real clock"
	t := time.NewTimer(time.Second) // want realtime "time.NewTimer reads the real clock"
	t.Stop()
	tk := time.NewTicker(time.Second) // want realtime "a ck.Sleep loop"
	tk.Stop()
	<-time.After(time.Second) // want realtime "time.After reads the real clock"
}

// threaded is the approved shape: every timestamp goes through ck.
func threaded(ck clock) time.Duration {
	start := ck.Now()
	ck.Sleep(time.Millisecond)
	return ck.Since(start)
}

// values is fine: durations, constants and constructors that do not
// read the clock.
func values() time.Time {
	d := 3 * time.Second
	_ = d
	return time.Date(1993, time.January, 25, 0, 0, 0, 0, time.UTC)
}

// measured is the deliberate exception: wall-clock measurement of the
// simulation itself, suppressed with a reason.
func measured() time.Duration {
	//netvet:ignore realtime wall-clock half of a simulation report
	start := time.Now()
	//netvet:ignore realtime wall-clock half of a simulation report
	return time.Since(start)
}

// otherNow exercises the package-identity test: a local Now is not
// the real clock.
type fakeTime struct{}

func (fakeTime) Now() int { return 0 }

func otherNow() int {
	var ft fakeTime
	return ft.Now()
}
