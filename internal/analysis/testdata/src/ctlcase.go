// Corpus for the naked-ctl-string check.
package ctlcase

import "fmt"

type file struct{}

func (f *file) Write(p []byte) (int, error)       { return len(p), nil }
func (f *file) WriteString(s string) (int, error) { return len(s), nil }

func naked(f *file, addr string) {
	f.WriteString("connect " + addr)            // want naked-ctl-string "netmsg.Connect"
	f.Write([]byte("announce " + addr))         // want naked-ctl-string "netmsg.Announce"
	f.WriteString(fmt.Sprintf("push %s", addr)) // want naked-ctl-string "netmsg.Push"
	f.WriteString("hangup")                     // want naked-ctl-string "netmsg.Hangup"
	f.WriteString(string("reject " + addr))     // want naked-ctl-string "netmsg.Reject"
}

// The rest must stay silent.

func fine(f *file, addr string, msg string) {
	f.WriteString("status " + addr) // not a ctl verb
	f.WriteString(msg)              // no literal prefix to judge
	f.WriteString("disconnected")   // verb must be a whole word
}
