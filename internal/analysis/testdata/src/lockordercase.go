// Corpus for the lock-order check: cycles in the module-wide lock
// acquisition graph, keyed by (type, field). The first pair is the
// cyclone Listen/Close inversion shape; the second goes through a
// call; the third inverts an embedded mutex. The tail cases must stay
// silent: consistent order, two instances of one type, and a local
// mutex have no cross-function identity.
package lockordercase

import "sync"

type cyclone struct {
	mu    sync.Mutex
	convs []*conv
}

type conv struct {
	mu sync.Mutex
	id int
}

// listen takes device-then-conversation...
func listen(cy *cyclone, c *conv) {
	cy.mu.Lock()
	c.mu.Lock() // want lock-across-send "acquiring"
	c.id++
	c.mu.Unlock()
	cy.mu.Unlock()
}

// ...and teardown takes conversation-then-device: the classic
// inversion, wedging only on a loaded machine.
func closeConv(cy *cyclone, c *conv) {
	c.mu.Lock()
	cy.mu.Lock() // want lock-order "lock-order cycle" // want lock-across-send "acquiring"
	cy.mu.Unlock()
	c.mu.Unlock()
}

// --- inversion through a call ---

type registry struct{ mu sync.Mutex }

type session struct{ mu sync.Mutex }

func (r *registry) drop(s *session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.detach() // registry.mu -> session.mu, via the callee
}

func (s *session) detach() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *session) rebind(r *registry) {
	s.mu.Lock()
	r.mu.Lock() // want lock-order "lock-order cycle" // want lock-across-send "acquiring"
	r.mu.Unlock()
	s.mu.Unlock()
}

// --- inversion against an embedded mutex ---

type hub struct{ sync.Mutex }

func (h *hub) admit(c *conv) {
	h.Lock()
	c.mu.Lock() // want lock-across-send "acquiring"
	c.mu.Unlock()
	h.Unlock()
}

func expel(h *hub, c *conv) {
	c.mu.Lock()
	h.Lock() // want lock-order "lock-order cycle" // want lock-across-send "acquiring"
	h.Unlock()
	c.mu.Unlock()
}

// --- silent cases ---

var tableMu sync.Mutex

// Consistent order everywhere: tableMu before conv.mu, no cycle.
func addRoute(c *conv) {
	tableMu.Lock()
	c.mu.Lock() // want lock-across-send "acquiring"
	c.mu.Unlock()
	tableMu.Unlock()
}

// Two instances of one type are indistinguishable under (type, field)
// keying, so no lock-order edge is drawn (the old nested-acquire
// warning still applies).
func link(a, b *conv) {
	a.mu.Lock()
	b.mu.Lock() // want lock-across-send "acquiring"
	b.id = a.id
	b.mu.Unlock()
	a.mu.Unlock()
}

// A local mutex has no cross-function identity.
func scratch(c *conv) {
	var mu sync.Mutex
	mu.Lock()
	c.mu.Lock() // want lock-across-send "acquiring"
	c.mu.Unlock()
	mu.Unlock()
}
