// Corpus for the block-ownership check: the acquisition-to-sink
// discipline over pooled blocks and raw GetBytes buffers, along every
// CFG path.
package owncase

type blk struct{ Buf []byte }

func (b *blk) Bytes() []byte { return b.Buf }
func (b *blk) Free()         {}
func (b *blk) Ref() *blk     { return b }

type queue struct{}

func (q *queue) PutNext(b *blk) {}

func alloc(n int) *blk { return &blk{Buf: make([]byte, n)} }

func GetBytes(n int) []byte { return make([]byte, n) }
func PutBytes(p []byte)     {}

func consume(p []byte) {}

// --- double release, in all four flavours ---

func doubleFree(b *blk) {
	b.Free()
	b.Free() // want block-ownership "freed twice"
}

func doubleFreeOnPath(b *blk, flag bool) {
	if flag {
		b.Free()
	}
	b.Free() // want block-ownership "freed twice"
}

func freeAfterTransfer(q *queue, b *blk) {
	q.PutNext(b)
	b.Free() // want block-ownership "freed after its ownership was transferred"
}

func transferAfterFree(q *queue, b *blk) {
	b.Free()
	q.PutNext(b) // want block-ownership "ownership transferred after it was freed"
}

func transferTwice(q *queue, b *blk) {
	q.PutNext(b)
	q.PutNext(b) // want block-ownership "ownership transferred twice"
}

func rawDoublePut(n int) {
	buf := GetBytes(n)
	PutBytes(buf)
	PutBytes(buf) // want block-ownership "ownership transferred twice"
}

// --- use after the ownership ended ---

func useAfterFree(b *blk) {
	b.Free()
	consume(b.Buf) // want block-ownership "use of b after it was freed"
}

func useAfterTransfer(q *queue, b *blk) {
	q.PutNext(b)
	consume(b.Buf) // want block-ownership "use of b after its ownership was transferred"
}

// --- the early-return leak ---

func leakOnError(q *queue, n int) bool {
	b := alloc(n)
	b.Buf[0] = 1 // header written: the block is live
	if n > 512 {
		return false // want block-ownership "may leak"
	}
	q.PutNext(b)
	return true
}

func rawLeak(n int, tiny bool) {
	buf := GetBytes(n)
	buf[0] = 7
	if tiny {
		return // want block-ownership "may leak"
	}
	PutBytes(buf)
}

func fetch(n int) (*blk, bool) { return alloc(n), n > 0 }

// A block that was never touched on the early-return path is the
// error-return shape — b is nil there, not leaked.
func errReturnUntouched(q *queue, n int) bool {
	b, ok := fetch(n)
	if !ok {
		return false
	}
	consume(b.Buf)
	q.PutNext(b)
	return true
}

//netvet:owns b
func consumeBlock(q *queue, b *blk) {
	q.PutNext(b)
}

// An //netvet:owns function owns its parameter from entry: returning
// without sinking it is the same early-return leak.
//
//netvet:owns b
func consumeUnlessTiny(q *queue, b *blk, n int) {
	if n < 4 {
		return // want block-ownership "may leak"
	}
	q.PutNext(b)
}

// A call through an annotated parameter is a transfer.
func sendVia(q *queue, n int) {
	b := alloc(n)
	consumeBlock(q, b)
	b.Free() // want block-ownership "freed after its ownership was transferred"
}

// --- deferred releases ---

func deferThenFree(n int) {
	b := alloc(n)
	defer b.Free()
	b.Free() // want block-ownership "released here and again by its deferred release"
}

func freeThenDefer(n int) {
	b := alloc(n)
	b.Free()
	defer b.Free() // want block-ownership "deferred release of b"
}

// --- the rest must stay silent ---

// defer covers every return path: no leak.
func deferFreeNoLeak(n int) bool {
	b := alloc(n)
	defer b.Free()
	if n == 0 {
		return false
	}
	consume(b.Buf)
	return true
}

// Each path releases exactly once.
func releaseOnEachPath(q *queue, b *blk, keep bool) {
	if keep {
		q.PutNext(b)
		return
	}
	b.Free()
}

// Ref marks refcounted fan-out: linear ownership reasoning stops, so
// the per-destination transfers and the trailing Free stay unjudged.
func refLoop(q *queue, b *blk, dests int) {
	for i := 1; i < dests; i++ {
		b.Ref()
	}
	for i := 0; i < dests; i++ {
		q.PutNext(b)
	}
	b.Free()
}

// But Ref after Free is still a use of a freed block.
func refAfterFree(b *blk) {
	b.Free()
	b.Ref() // want block-ownership "use of b after it was freed"
}

// A constructor hands the block out: never released here, so no leak.
func newBlock(n int) *blk {
	b := alloc(n)
	b.Buf = b.Buf[:0]
	return b
}

// Escapes end the analysis: storing the block is not a leak.
type stash struct{ b *blk }

func park(s *stash, n int, useIt bool) {
	b := alloc(n)
	if useIt {
		s.b = b
		return
	}
	b.Free()
}

// Conditional acquisition delivered under a nil test: on the branch
// where msg was never filled in, the nil check proves there is nothing
// to release, so neither arm leaks. This is the urp reassembly shape.
func reassemble(q *queue, data []byte, eom bool) {
	var msg *blk
	if eom {
		msg = alloc(len(data))
		copy(msg.Buf, data)
	}
	if msg != nil {
		q.PutNext(msg)
	}
}

// The inverted test works too: the early return is the nil arm.
func reassembleInverted(q *queue, data []byte, eom bool) {
	var msg *blk
	if eom {
		msg = alloc(len(data))
		copy(msg.Buf, data)
	}
	if msg == nil {
		return
	}
	q.PutNext(msg)
}

// --- the shared-cache shapes: refcounted fan-out through a resident map ---

type cacheFrag struct{ b *blk }

type fragCache struct{ files map[uint64]*cacheFrag }

// The cfs-style insert owns the incoming block. When a racing filler
// already made the fragment resident the loser is freed and the
// resident handed back under a fresh reference; otherwise the block
// escapes into the cache, which owns it from then on. Every arm is
// accounted for, so the whole function stays silent.
//
//netvet:owns b
func cacheInsert(c *fragCache, key uint64, b *blk) *blk {
	if fr, ok := c.files[key]; ok {
		b.Free()
		return fr.b.Ref()
	}
	c.files[key] = &cacheFrag{b: b}
	return b.Ref()
}

// The hit path hands each concurrent reader its own reference while
// the resident copy stays owned by the cache: no leak, no release.
func cacheLookup(c *fragCache, key uint64) *blk {
	fr, ok := c.files[key]
	if !ok {
		return nil
	}
	return fr.b.Ref()
}

// Losing the race and then reading the loser's bytes is still a
// use-after-free; refcounting does not resurrect this block.
//
//netvet:owns b
func cacheInsertBroken(c *fragCache, key uint64, b *blk) {
	if _, ok := c.files[key]; ok {
		b.Free()
		consume(b.Buf) // want block-ownership "use of b after it was freed"
		return
	}
	c.files[key] = &cacheFrag{b: b}
}

// An owning insert that forgets the racing-loser arm leaks it: the
// block was stamped (live), the over-budget arm proves the function
// does release, and the resident arm returns with b still owned.
//
//netvet:owns b
func cacheInsertLeaky(c *fragCache, key uint64, full bool, b *blk) *blk {
	b.Buf[0] = 1
	if fr, ok := c.files[key]; ok {
		return fr.b.Ref() // want block-ownership "b may leak"
	}
	if full {
		b.Free()
		return nil
	}
	c.files[key] = &cacheFrag{b: b}
	return b.Ref()
}

// Guarding delivery on the wrong predicate is still a leak: urgent
// says nothing about whether msg holds a block, so the quiet arm can
// drop a filled-in buffer.
func reassembleLeaky(q *queue, data []byte, eom, urgent bool) {
	var msg *blk
	if eom {
		msg = alloc(len(data))
		copy(msg.Buf, data)
	}
	if urgent {
		q.PutNext(msg)
	}
} // want block-ownership "msg may leak"
