// Corpus for the unjoined-goroutine check.
package gocase

import "time"

func leakyLoop() {
	go func() { // want unjoined-goroutine "no shutdown path"
		for {
			time.Sleep(time.Millisecond) // want realtime "use ck.Sleep"
		}
	}()
}

func leakyEmptySelect() {
	go func() { // want unjoined-goroutine "no shutdown path"
		select {}
	}()
}

func spin() {
	for {
		work()
	}
}

func work() {}

func leakyNamed() {
	go spin() // want unjoined-goroutine "no shutdown path"
}

// The rest must stay silent.

func joinedByDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond): // want realtime "use ck.AfterFunc"
			}
		}
	}()
}

func joinedByRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func exitsOnError(read func() error) {
	go func() {
		for {
			if read() != nil {
				return
			}
		}
	}()
}

func boundedLoop() {
	go func() {
		for i := 0; i < 3; i++ {
			work()
		}
	}()
}
