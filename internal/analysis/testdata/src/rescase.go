// Corpus for the unclosed-resource check.
package rescase

type conn struct{}

func (c *conn) Close() error { return nil }
func (c *conn) Ping()        {}

type ring struct{}

func (r *ring) Free()     {}
func (r *ring) Size() int { return 0 }

func NewConn() *conn  { return &conn{} }
func OpenRing() *ring { return &ring{} }
func helper() *conn   { return nil }

func dropped() {
	c := NewConn() // want unclosed-resource "never closed"
	c.Ping()
}

func droppedRing() {
	r := OpenRing() // want unclosed-resource "needs Free"
	r.Size()
}

// The rest must stay silent.

func closedDirectly() {
	c := NewConn()
	c.Ping()
	c.Close()
}

func closedByDefer() {
	c := NewConn()
	defer c.Close()
	c.Ping()
}

func onClose(f func() error) {}

func closerHandedOff() {
	c := NewConn()
	onClose(c.Close) // method value arranges the close
}

func escapesReturn() *conn {
	c := NewConn()
	return c
}

func consume(c *conn) {}

func escapesArg() {
	c := NewConn()
	consume(c)
}

type holder struct{ c *conn }

func escapesStore(h *holder) {
	c := NewConn()
	h.c = c
}

func escapesChannel(ch chan *conn) {
	c := NewConn()
	ch <- c
}

func notACreationCall() {
	c := helper() // helper transfers no ownership by name
	c.Ping()
}
