package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// nakedCtlStringCheck flags ad-hoc ctl message literals — "connect
// ...", "announce ...", and friends — written to a ctl file or stream
// outside the canonical netmsg helpers. The ASCII ctl vocabulary is a
// wire protocol (§2.3, §5); formatting it in one place keeps producers
// and parsers from drifting apart. The check looks at the first
// argument of Write/WriteString/WriteCtl calls and traces the leading
// string literal through concatenations, []byte conversions, and
// fmt.Sprintf format strings.
var nakedCtlStringCheck = &Check{
	Name: "naked-ctl-string",
	Doc:  "ad-hoc ctl message literal bypassing the netmsg helpers",
	Run:  runNakedCtlString,
}

// canonicalCtlPkg is the one package allowed to spell ctl verbs out.
const canonicalCtlPkg = "netmsg"

var ctlVerbs = map[string]string{
	"connect":     "netmsg.Connect",
	"announce":    "netmsg.Announce",
	"reject":      "netmsg.Reject",
	"push":        "netmsg.Push",
	"pop":         "netmsg.Pop",
	"hangup":      "netmsg.Hangup",
	"promiscuous": "netmsg.Promiscuous",
}

var ctlWriters = map[string]bool{"Write": true, "WriteString": true, "WriteCtl": true}

func runNakedCtlString(p *Pass) {
	if p.Pkg.Name == canonicalCtlPkg {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ctlWriters[sel.Sel.Name] {
				return true
			}
			prefix, ok := literalPrefix(call.Args[0])
			if !ok {
				return true
			}
			verb, _, _ := strings.Cut(prefix, " ")
			verb = strings.TrimSpace(verb)
			if helper, isVerb := ctlVerbs[verb]; isVerb {
				p.Reportf(call.Args[0].Pos(), "naked ctl string %q: format it with %s so the wire vocabulary stays canonical",
					truncate(prefix, 32), helper)
			}
			return true
		})
	}
}

// literalPrefix extracts the leading compile-time string of an
// expression: a literal, the left side of a concatenation chain, a
// []byte(...) conversion, or a Sprintf-style format string.
func literalPrefix(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		return literalPrefix(e.X)
	case *ast.ParenExpr:
		return literalPrefix(e.X)
	case *ast.CallExpr:
		// []byte("...") and string("...") conversions.
		if _, ok := e.Fun.(*ast.ArrayType); ok && len(e.Args) == 1 {
			return literalPrefix(e.Args[0])
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "string" && len(e.Args) == 1 {
			return literalPrefix(e.Args[0])
		}
		// fmt.Sprintf("connect %s", ...): the format string leads.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Sprint") && len(e.Args) > 0 {
			return literalPrefix(e.Args[0])
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
