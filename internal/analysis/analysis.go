// Package analysis is netvet's engine: a stdlib-only static analyzer
// (go/ast + go/parser + go/types, no x/tools) enforcing the
// concurrency and resource-lifecycle invariants the paper's network
// organization depends on. The module is a web of cooperating
// kernel-process analogues — stream put chains, the mount driver's
// RPC demux, protocol engines — and the checks target exactly the
// failure shapes such code grows at scale:
//
//	lock-across-send    a sync.Mutex/RWMutex held across a channel
//	                    operation or known-blocking call
//	unjoined-goroutine  a go statement whose body can never exit —
//	                    a leak candidate with no shutdown path
//	unclosed-resource   a closeable value created and dropped without
//	                    Close/Free/Unmount and without escaping
//	naked-ctl-string    an ad-hoc ctl message literal bypassing the
//	                    canonical netmsg formatting helpers
//	block-ownership     a pooled block freed twice, used after its
//	                    ownership was transferred, or leaked on an
//	                    early-return path (path-sensitive, over the
//	                    CFG/dataflow engine in cfg.go and dataflow.go)
//	lock-order          a cycle in the whole-module lock acquisition
//	                    graph, keyed by (type, field), with witness
//	                    paths for both directions
//	realtime            a direct time.Now/time.Sleep/time.After call
//	                    where a vclock.Clock should be threaded, so
//	                    virtual-time runs stay deterministic
//
// Ownership transfer across calls is declared, not guessed: a callee
// that consumes a block parameter carries a directive on its
// declaration,
//
//	//netvet:owns <param>[,<param>...]
//
// and the block-ownership check treats a call through it as the end of
// the caller's ownership. Free/Put/PutNext/PutBytes are implicitly
// owning, matching the block package's contract.
//
// A finding is suppressed by a directive comment on its line or the
// line above:
//
//	//netvet:ignore <check>[,<check>...] <reason>
//
// The check names must be real and the reason must be non-empty —
// a reasonless or misspelled directive is itself reported (as check
// "directive", which cannot be suppressed). Suppressions are recorded
// individually, so deliberate exceptions stay visible and auditable
// (netvet -ignored lists them all).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Check is one named invariant. Run is called once per package to
// collect; the optional Finish is called once per module after every
// package ran, for checks (lock-order) whose findings are global.
type Check struct {
	Name   string
	Doc    string
	Run    func(p *Pass)
	Finish func(p *Pass) // optional; p.Pkg is nil
}

// Checks returns all checks, in reporting order.
func Checks() []*Check {
	return []*Check{
		lockAcrossSendCheck,
		unjoinedGoroutineCheck,
		unclosedResourceCheck,
		nakedCtlStringCheck,
		blockOwnershipCheck,
		lockOrderCheck,
		realtimeCheck,
	}
}

// CheckNames returns the valid check names.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Pass is one check running over one package (or, in a Finish call,
// over the module as a whole, with Pkg nil).
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Pkg
	check *Check
	res   *Result
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.res.report(p.Fset.Position(pos), p.check.Name, fmt.Sprintf(format, args...))
}

// Facts returns the check's module-wide scratch state, allocated by
// mk on first use — how a Run collects for its Finish.
func (p *Pass) Facts(mk func() any) any {
	if p.res.facts == nil {
		p.res.facts = make(map[*Check]any)
	}
	f, ok := p.res.facts[p.check]
	if !ok {
		f = mk()
		p.res.facts[p.check] = f
	}
	return f
}

// Owns returns the declared ownership transfer of fn's parameters:
// recv is true when the receiver is consumed, params holds the
// consumed parameter indices. ok is false for undeclared functions.
func (p *Pass) Owns(fn *types.Func) (fact OwnsFact, ok bool) {
	fact, ok = p.res.owns[fn]
	return fact, ok
}

// OwnsFact is one //netvet:owns declaration, resolved to positions in
// the function's signature.
type OwnsFact struct {
	Recv   bool
	Params []int
}

// Directive is one //netvet:ignore comment.
type Directive struct {
	Pos     token.Position
	Checks  []string
	Reason  string
	Matched int // findings this directive suppressed
}

// SuppressedDiag is a finding a directive silenced, kept for -json
// and the suppression audit.
type SuppressedDiag struct {
	Diagnostic
	By *Directive
}

// Result accumulates findings and suppressions for a run.
type Result struct {
	Diags      []Diagnostic
	Suppressed map[string]int // check name -> suppressed findings
	Ignored    []SuppressedDiag
	Directives []*Directive

	ignores   map[string]map[int][]*Directive // filename -> line -> directives
	owns      map[*types.Func]OwnsFact
	facts     map[*Check]any
	localPkgs map[string]bool // import paths of the loaded packages
}

// Run executes the checks over every package of the module.
func Run(mod *Module, checks []*Check) *Result {
	res := &Result{
		Suppressed: make(map[string]int),
		ignores:    make(map[string]map[int][]*Directive),
		owns:       make(map[*types.Func]OwnsFact),
		localPkgs:  make(map[string]bool),
	}
	for _, pkg := range mod.Pkgs {
		if pkg.Types != nil {
			res.localPkgs[pkg.Types.Path()] = true
		}
	}
	for _, pkg := range mod.Pkgs {
		res.collectDirectives(mod.Fset, pkg)
		res.collectOwns(mod.Fset, pkg)
	}
	for _, pkg := range mod.Pkgs {
		for _, c := range checks {
			c.Run(&Pass{Fset: mod.Fset, Pkg: pkg, check: c, res: res})
		}
	}
	for _, c := range checks {
		if c.Finish != nil {
			c.Finish(&Pass{Fset: mod.Fset, check: c, res: res})
		}
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		a, b := res.Directives[i], res.Directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return res
}

// RunPkg executes the checks over a single package (the test-corpus
// entry point).
func RunPkg(fset *token.FileSet, pkg *Pkg, checks []*Check) *Result {
	mod := &Module{Fset: fset, Pkgs: []*Pkg{pkg}}
	return Run(mod, checks)
}

// Directive prefixes.
const (
	ignorePrefix = "//netvet:ignore"
	ownsPrefix   = "//netvet:owns"
)

// collectDirectives scans a package's comments for ignore directives,
// validating check names and demanding a reason.
func (r *Result) collectDirectives(fset *token.FileSet, pkg *Pkg) {
	valid := map[string]bool{}
	for _, name := range CheckNames() {
		valid[name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					r.reportRaw(pos, "directive", "//netvet:ignore needs a check list and a reason")
					continue
				}
				var checks []string
				bad := ""
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if !valid[name] {
						bad = name
					}
					checks = append(checks, name)
				}
				if bad != "" {
					r.reportRaw(pos, "directive", fmt.Sprintf("//netvet:ignore names unknown check %q (have %s)",
						bad, strings.Join(CheckNames(), ", ")))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					r.reportRaw(pos, "directive", fmt.Sprintf("//netvet:ignore %s needs a reason", fields[0]))
					continue
				}
				d := &Directive{Pos: pos, Checks: checks, Reason: reason}
				r.Directives = append(r.Directives, d)
				byLine := r.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*Directive)
					r.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// collectOwns resolves every //netvet:owns directive to the function
// it documents. The directive must sit in (or immediately form) the
// doc comment of a FuncDecl, and every name must be a parameter or
// the receiver of that function.
func (r *Result) collectOwns(fset *token.FileSet, pkg *Pkg) {
	for _, f := range pkg.Files {
		// Directives by end line, to catch doc groups.
		type ownsDir struct {
			names []string
			pos   token.Pos
		}
		dirs := map[int]ownsDir{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ownsPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				var names []string
				for _, field := range strings.Fields(rest) {
					for _, n := range strings.Split(field, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names = append(names, n)
						}
					}
				}
				line := fset.Position(c.Pos()).Line
				dirs[line] = ownsDir{names: names, pos: c.Pos()}
			}
		}
		if len(dirs) == 0 {
			continue
		}
		claimed := map[int]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Any directive line between the doc comment's start and
			// the declaration belongs to this function.
			funcLine := fset.Position(fd.Pos()).Line
			startLine := funcLine - 1
			if fd.Doc != nil {
				startLine = fset.Position(fd.Doc.Pos()).Line
			}
			for line := startLine; line < funcLine; line++ {
				dir, ok := dirs[line]
				if !ok {
					continue
				}
				claimed[line] = true
				r.applyOwns(fset, pkg, fd, dir.names, dir.pos)
			}
		}
		for line, dir := range dirs {
			if !claimed[line] {
				_ = line
				r.reportRaw(fset.Position(dir.pos), "directive", "//netvet:owns is not attached to a function declaration")
			}
		}
	}
}

// applyOwns validates one owns directive against fd's signature and
// records the fact.
func (r *Result) applyOwns(fset *token.FileSet, pkg *Pkg, fd *ast.FuncDecl, names []string, pos token.Pos) {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if len(names) == 0 {
		r.reportRaw(fset.Position(pos), "directive", "//netvet:owns needs parameter names")
		return
	}
	fact := r.owns[fn]
	for _, name := range names {
		found := false
		if recv := sig.Recv(); recv != nil && recv.Name() == name {
			fact.Recv = true
			found = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == name {
				fact.Params = append(fact.Params, i)
				found = true
			}
		}
		if !found {
			r.reportRaw(fset.Position(pos), "directive",
				fmt.Sprintf("//netvet:owns names %q, which is not a parameter of %s", name, fd.Name.Name))
			return
		}
	}
	sort.Ints(fact.Params)
	r.owns[fn] = fact
}

// ignored returns the directive suppressing a finding of check at pos
// (same line or the line immediately above), if any.
func (r *Result) ignored(pos token.Position, check string) *Directive {
	byLine := r.ignores[pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			for _, name := range d.Checks {
				if name == check {
					return d
				}
			}
		}
	}
	return nil
}

func (r *Result) report(pos token.Position, check, msg string) {
	if d := r.ignored(pos, check); d != nil {
		d.Matched++
		r.Suppressed[check]++
		r.Ignored = append(r.Ignored, SuppressedDiag{
			Diagnostic: Diagnostic{Pos: pos, Check: check, Message: msg},
			By:         d,
		})
		return
	}
	r.reportRaw(pos, check, msg)
}

// reportRaw records a diagnostic that no directive can silence — the
// path directive errors take.
func (r *Result) reportRaw(pos token.Position, check, msg string) {
	r.Diags = append(r.Diags, Diagnostic{Pos: pos, Check: check, Message: msg})
}

// funcBodies yields every function body in the file — declarations and
// literals — so checks analyze each in its own goroutine context.
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// inspectSkippingFuncLits walks the subtree rooted at n without
// descending into nested function literals — their bodies run on other
// goroutines (or later) and are analyzed separately.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
