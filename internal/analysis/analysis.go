// Package analysis is netvet's engine: a stdlib-only static analyzer
// (go/ast + go/parser + go/types, no x/tools) enforcing the
// concurrency and resource-lifecycle invariants the paper's network
// organization depends on. The module is a web of cooperating
// kernel-process analogues — stream put chains, the mount driver's
// RPC demux, protocol engines — and the checks target exactly the
// failure shapes such code grows at scale:
//
//	lock-across-send    a sync.Mutex/RWMutex held across a channel
//	                    operation or known-blocking call
//	unjoined-goroutine  a go statement whose body can never exit —
//	                    a leak candidate with no shutdown path
//	unclosed-resource   a closeable value created and dropped without
//	                    Close/Free/Unmount and without escaping
//	naked-ctl-string    an ad-hoc ctl message literal bypassing the
//	                    canonical netmsg formatting helpers
//	block-aliasing      a buffer view (b.Bytes()/b.Buf) used after the
//	                    block was freed or handed down the put chain
//
// A finding is suppressed by a directive comment on its line or the
// line above:
//
//	//netvet:ignore <check>[,<check>...] [reason]
//
// Suppressions are counted and reported, so deliberate exceptions
// stay visible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Check is one named invariant.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Checks returns all checks, in reporting order.
func Checks() []*Check {
	return []*Check{
		lockAcrossSendCheck,
		unjoinedGoroutineCheck,
		unclosedResourceCheck,
		nakedCtlStringCheck,
		blockAliasingCheck,
	}
}

// CheckNames returns the valid check names.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Pass is one check running over one package.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Pkg
	check *Check
	res   *Result
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.res.report(p.Fset.Position(pos), p.check.Name, fmt.Sprintf(format, args...))
}

// Result accumulates findings and suppression counts for a run.
type Result struct {
	Diags      []Diagnostic
	Suppressed map[string]int // check name -> suppressed findings

	ignores map[string]map[int][]string // filename -> line -> checks ("" = all)
}

// Run executes the checks over every package of the module.
func Run(mod *Module, checks []*Check) *Result {
	res := &Result{
		Suppressed: make(map[string]int),
		ignores:    make(map[string]map[int][]string),
	}
	for _, pkg := range mod.Pkgs {
		res.collectIgnores(mod.Fset, pkg)
	}
	for _, pkg := range mod.Pkgs {
		for _, c := range checks {
			c.Run(&Pass{Fset: mod.Fset, Pkg: pkg, check: c, res: res})
		}
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return res
}

// RunPkg executes the checks over a single package (the test-corpus
// entry point).
func RunPkg(fset *token.FileSet, pkg *Pkg, checks []*Check) *Result {
	mod := &Module{Fset: fset, Pkgs: []*Pkg{pkg}}
	return Run(mod, checks)
}

// ignorePrefix introduces a suppression directive.
const ignorePrefix = "//netvet:ignore"

// collectIgnores scans a package's comments for directives.
func (r *Result) collectIgnores(fset *token.FileSet, pkg *Pkg) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				var checks []string
				if fields := strings.Fields(rest); len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						checks = append(checks, strings.TrimSpace(name))
					}
				} else {
					checks = []string{""} // bare directive: ignore all
				}
				pos := fset.Position(c.Pos())
				byLine := r.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					r.ignores[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], checks...)
			}
		}
	}
}

// ignored reports whether a finding of check at pos is suppressed by a
// directive on the same line or the line immediately above.
func (r *Result) ignored(pos token.Position, check string) bool {
	byLine := r.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == "" || name == check {
				return true
			}
		}
	}
	return false
}

func (r *Result) report(pos token.Position, check, msg string) {
	if r.ignored(pos, check) {
		r.Suppressed[check]++
		return
	}
	r.Diags = append(r.Diags, Diagnostic{Pos: pos, Check: check, Message: msg})
}

// funcBodies yields every function body in the file — declarations and
// literals — so checks analyze each in its own goroutine context.
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// inspectSkippingFuncLits walks the subtree rooted at n without
// descending into nested function literals — their bodies run on other
// goroutines (or later) and are analyzed separately.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
