package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// unclosedResourceCheck flags values that carry a Close/Free/Unmount
// method, are obtained from a creation call (New*, Open*, Dial*,
// Accept, Announce, Clone, ...), and then neither reach a close on any
// use nor escape the function (returned, stored, passed on, captured).
// In this module such values are conversations, streams, fids, and
// mounts — dropping one silently strands its peer and its queues.
var unclosedResourceCheck = &Check{
	Name: "unclosed-resource",
	Doc:  "closeable value created, never closed, and never escaping",
	Run:  runUnclosedResource,
}

// closerNames are the release methods the paper's resources carry.
var closerNames = map[string]bool{"Close": true, "Free": true, "Unmount": true}

// creationPrefixes mark callees that transfer ownership to the caller.
var creationPrefixes = []string{
	"New", "Open", "Dial", "Create", "Accept", "Announce", "Listen",
	"Mount", "Import", "Clone", "Attach",
}

func runUnclosedResource(p *Pass) {
	for _, f := range p.Pkg.Files {
		// Walk each outermost function; nested literals are scanned as
		// part of their parent so captures count as uses.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncResources(p, fd.Body)
		}
	}
}

type tracked struct {
	obj     types.Object
	ident   *ast.Ident
	creator string
	closed  bool
	escaped bool
}

func checkFuncResources(p *Pass, body *ast.BlockStmt) {
	var all []*tracked
	byObj := map[types.Object]*tracked{}

	// Pass 1: find creation sites.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !isCreationName(name) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil {
				// Plain `=` to an existing variable: reassignment is
				// tracked only for := definitions to stay simple.
				continue
			}
			if !hasCloser(obj.Type()) {
				continue
			}
			tr := &tracked{obj: obj, ident: id, creator: name}
			all = append(all, tr)
			byObj[obj] = tr
		}
		return true
	})
	if len(all) == 0 {
		return
	}

	// Pass 2: classify every other use of each tracked object.
	w := &useWalker{p: p, byObj: byObj}
	w.walk(body, nil)

	for _, tr := range all {
		if !tr.closed && !tr.escaped {
			p.Reportf(tr.ident.Pos(), "%s from %s is never closed and never escapes this function (needs %s)",
				tr.ident.Name, tr.creator, closerFor(tr.obj.Type()))
		}
	}
}

// useWalker visits the function with a parent stack, classifying each
// use of a tracked identifier.
type useWalker struct {
	p     *Pass
	byObj map[types.Object]*tracked
}

func (w *useWalker) walk(n ast.Node, parents []ast.Node) {
	if n == nil {
		return
	}
	if id, ok := n.(*ast.Ident); ok {
		if tr := w.byObj[w.p.Pkg.Info.Uses[id]]; tr != nil {
			w.classify(tr, id, parents)
		}
		return
	}
	parents = append(parents, n)
	for _, child := range childNodes(n) {
		w.walk(child, parents)
	}
}

func (w *useWalker) classify(tr *tracked, id *ast.Ident, parents []ast.Node) {
	if len(parents) == 0 {
		return
	}
	parent := parents[len(parents)-1]

	// Any mention of a close method counts as arranging the close: a
	// direct c.Close() (deferred or not, even inside a nested
	// literal), or the method value c.Close handed to a lifecycle
	// hook like OnClose.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		if closerNames[sel.Sel.Name] {
			tr.closed = true
		}
		// Other method calls and field reads on the value are local
		// uses, not escapes.
		return
	}

	switch parent := parent.(type) {
	case *ast.CallExpr:
		for _, a := range parent.Args {
			if a == id {
				tr.escaped = true // ownership may transfer
				return
			}
		}
	case *ast.UnaryExpr, *ast.StarExpr:
		tr.escaped = true // address taken or dereferenced into elsewhere
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
		tr.escaped = true
	case *ast.AssignStmt:
		for _, r := range parent.Rhs {
			if r == id {
				tr.escaped = true // aliased into another variable
				return
			}
		}
	case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.TypeAssertExpr:
		// Comparisons and conditions are neutral reads.
	}
}

// childNodes lists a node's immediate children, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isCreationName(name string) bool {
	for _, p := range creationPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// hasCloser reports whether t (or *t) carries one of the release
// methods, excluding trivial types.
func hasCloser(t types.Type) bool {
	return closerFor(t) != ""
}

func closerFor(t types.Type) string {
	for _, name := range []string{"Close", "Free", "Unmount"} {
		if hasMethod(t, name) {
			return name
		}
	}
	return ""
}

func hasMethod(t types.Type, name string) bool {
	// Look through the pointer method set too.
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name && ms.At(i).Obj().Exported() {
				return true
			}
		}
	}
	return false
}
