package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderCheck builds the whole-module lock acquisition graph and
// reports cycles. Locks are keyed by (type, field) — every instance
// of Conv.mu is one node, matching how a fine-grained-locking kernel
// reasons about hierarchy — plus package-level mutex variables. The
// per-package Run harvests, via the CFG/dataflow engine, every region
// where a lock is held: a second lock acquired inside the region is a
// direct edge, and a call to a module function inside the region
// contributes edges to every lock that callee (transitively)
// acquires. Finish assembles the graph and reports each cycle once,
// with the witness for both directions — the two code paths that, run
// concurrently, deadlock. Same-key edges (two instances of one type)
// are not reported: the keying cannot tell self from sibling.
//
// This is the static form of the Listen/Close inversion the cyclone
// package once shipped: Listen took device-then-conversation,
// teardown took conversation-then-device, and only a loaded machine
// wedged.
var lockOrderCheck = &Check{
	Name:   "lock-order",
	Doc:    "cycle in the module-wide lock acquisition order graph",
	Run:    runLockOrderCollect,
	Finish: finishLockOrder,
}

// lockWitness is one observed ordering: to was acquired at pos while
// from was held; via names the call chain when the acquisition is
// inside a callee.
type lockWitness struct {
	pos     token.Pos
	via     string    // callee display name, "" for a direct edge
	lockPos token.Pos // where the inner lock is taken (== pos when direct)
}

// lockFacts accumulates across packages for Finish.
type lockFacts struct {
	edges     map[[2]string][]lockWitness
	heldCalls []heldCall
	acquires  map[*types.Func]map[string]token.Pos
	calls     map[*types.Func]map[*types.Func]bool
	funcs     []*types.Func // deterministic iteration order
}

type heldCall struct {
	held   string
	hpos   token.Pos
	callee *types.Func
	pos    token.Pos
}

func newLockFacts() any {
	return &lockFacts{
		edges:    map[[2]string][]lockWitness{},
		acquires: map[*types.Func]map[string]token.Pos{},
		calls:    map[*types.Func]map[*types.Func]bool{},
	}
}

// heldState is the dataflow state: the lock keys that may be held,
// with the position of their acquisition. Immutable.
type heldState map[string]token.Pos

func (s heldState) clone() heldState {
	c := make(heldState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// lockScanCFG analyzes one function body.
type lockScanCFG struct {
	p     *Pass
	facts *lockFacts
	fn    *types.Func // nil inside a function literal
}

func runLockOrderCollect(p *Pass) {
	facts := p.Facts(newLockFacts).(*lockFacts)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn != nil {
				if _, seen := facts.acquires[fn]; !seen {
					facts.acquires[fn] = map[string]token.Pos{}
					facts.calls[fn] = map[*types.Func]bool{}
					facts.funcs = append(facts.funcs, fn)
				}
			}
			(&lockScanCFG{p: p, facts: facts, fn: fn}).run(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					// A literal's body runs later or elsewhere: its
					// regions contribute direct edges, but its
					// acquisitions are not attributed to the
					// enclosing function's call summary.
					(&lockScanCFG{p: p, facts: facts}).run(lit.Body)
				}
				return true
			})
		}
	}
}

// run solves the held-set problem over the body. Transfer records
// facts idempotently into maps as the solver converges, so no
// separate reporting replay is needed.
func (l *lockScanCFG) run(body *ast.BlockStmt) {
	Solve(BuildCFG(body), l)
}

func (l *lockScanCFG) Entry() State { return heldState{} }
func (l *lockScanCFG) Join(a, b State) State {
	x, y := a.(heldState), b.(heldState)
	j := x.clone()
	for k, pos := range y {
		if cur, ok := j[k]; !ok || pos < cur {
			j[k] = pos
		}
	}
	return j
}
func (l *lockScanCFG) Equal(a, b State) bool {
	x, y := a.(heldState), b.(heldState)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

func (l *lockScanCFG) Transfer(b *BBlock, n ast.Node, st State) State {
	if b.Kind == "exit" {
		return st // deferred unlocks release only at return
	}
	switch h := n.(type) {
	case *SelectHeader:
		return st // comm clauses are lowered into the case blocks
	case *RangeHeader:
		n = h.Range.X // only the ranged expression evaluates here
	}
	s := st.(heldState)
	out := s
	mutated := false
	mutable := func() heldState {
		if !mutated {
			out = out.clone()
			mutated = true
		}
		return out
	}

	inspectSkippingFuncLits(n, func(m ast.Node) bool {
		if ds, isDefer := m.(*ast.DeferStmt); isDefer {
			// Deferred calls run at return: a deferred Unlock keeps
			// the region open, and a deferred call's lock activity is
			// outside this region.
			l.recordCall(ds.Call) // still part of the call graph
			return false
		}
		if _, isGo := m.(*ast.GoStmt); isGo {
			// A spawned goroutine does not inherit the caller's held
			// locks, and its acquisitions happen on its own thread:
			// neither a held-call nor a call-graph edge.
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, method, ok := l.mutexCall(call); ok && key != "" {
			switch method {
			case "Lock", "RLock":
				for held := range out {
					if held != key {
						l.facts.edges[[2]string{held, key}] = append(l.facts.edges[[2]string{held, key}],
							lockWitness{pos: call.Pos(), lockPos: call.Pos()})
					}
				}
				if l.fn != nil {
					if _, seen := l.facts.acquires[l.fn][key]; !seen {
						l.facts.acquires[l.fn][key] = call.Pos()
					}
				}
				mutable()[key] = call.Pos()
			case "Unlock", "RUnlock":
				if _, held := out[key]; held {
					delete(mutable(), key)
				}
			}
			return true
		}
		if callee := l.moduleCallee(call); callee != nil {
			l.recordCall(call)
			for held, hpos := range out {
				l.facts.heldCalls = append(l.facts.heldCalls, heldCall{held: held, hpos: hpos, callee: callee, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

// recordCall adds an edge to the module call graph.
func (l *lockScanCFG) recordCall(call *ast.CallExpr) {
	if l.fn == nil {
		return
	}
	if callee := l.moduleCallee(call); callee != nil {
		l.facts.calls[l.fn][callee] = true
	}
}

// moduleCallee resolves a call to a module-local named function.
func (l *lockScanCFG) moduleCallee(call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = l.p.Pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = l.p.Pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || !l.p.res.localPkgs[fn.Pkg().Path()] {
		return nil
	}
	return fn
}

// mutexCall resolves a call to a sync.Mutex/RWMutex (R)Lock/(R)Unlock
// and returns the lock's graph key.
func (l *lockScanCFG) mutexCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := l.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if r := fn.Type().(*types.Signature).Recv(); r == nil {
		return "", "", false
	} else if n := typeName(r.Type()); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	return l.lockKey(sel.X), sel.Sel.Name, true
}

// lockKey names the lock x identifies, keyed by (type, field) for
// mutex fields, by (package, var) for package-level mutexes, and by
// the owning type alone for an embedded mutex. Local mutex variables
// return "" — they have no cross-function identity.
func (l *lockScanCFG) lockKey(x ast.Expr) string {
	info := l.p.Pkg.Info
	switch x := x.(type) {
	case *ast.SelectorExpr:
		// y.mu: key by y's named type and the field name.
		if t := typeOfExpr(info, x.X); t != "" {
			return t + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if v, okVar := obj.(*types.Var); okVar && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name() // package-level mutex
		}
	}
	// Embedded promotion (c.Lock() with c embedding sync.Mutex, or
	// s.conv.Lock() through a selector): key by the embedding type.
	return typeOfExpr(info, x)
}

// typeOfExpr returns the pkg-qualified name of e's (deref'd) named
// type, or "".
func typeOfExpr(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return typeKey(tv.Type)
}

func typeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	if n.Obj().Pkg().Path() == "sync" {
		return "" // a bare sync.Mutex value has no useful identity
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// finishLockOrder closes acquisition sets over the call graph, builds
// the lock graph, and reports every cycle with both witnesses.
func finishLockOrder(p *Pass) {
	facts, _ := p.Facts(newLockFacts).(*lockFacts)
	if facts == nil {
		return
	}

	// Transitive acquires per function, to a fixed point.
	type acq struct {
		pos token.Pos
		in  *types.Func
	}
	trans := map[*types.Func]map[string]acq{}
	for _, fn := range facts.funcs {
		trans[fn] = map[string]acq{}
		for k, pos := range facts.acquires[fn] {
			trans[fn][k] = acq{pos: pos, in: fn}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range facts.funcs {
			for callee := range facts.calls[fn] {
				for k, a := range trans[callee] {
					if _, ok := trans[fn][k]; !ok {
						trans[fn][k] = a
						changed = true
					}
				}
			}
		}
	}

	// Call-derived edges.
	for _, hc := range facts.heldCalls {
		for k, a := range trans[hc.callee] {
			if k == hc.held {
				continue
			}
			facts.edges[[2]string{hc.held, k}] = append(facts.edges[[2]string{hc.held, k}],
				lockWitness{pos: hc.pos, via: funcDisplay(a.in), lockPos: a.pos})
		}
	}

	// Best (lexically first) witness per edge.
	adj := map[string]map[string]lockWitness{}
	for e, ws := range facts.edges {
		best := ws[0]
		for _, w := range ws[1:] {
			if w.pos < best.pos {
				best = w
			}
		}
		if adj[e[0]] == nil {
			adj[e[0]] = map[string]lockWitness{}
		}
		if cur, ok := adj[e[0]][e[1]]; !ok || best.pos < cur.pos {
			adj[e[0]][e[1]] = best
		}
	}

	var keys []string
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Two-cycles: the common deadlock pair, reported once per pair at
	// the later of the two witnesses (the inversion).
	reported := map[string]bool{}
	inTwoCycle := map[string]bool{}
	for _, a := range keys {
		var succs []string
		for b := range adj[a] {
			succs = append(succs, b)
		}
		sort.Strings(succs)
		for _, b := range succs {
			if a >= b {
				continue
			}
			wab, okab := adj[a][b]
			wba, okba := adj[b][a]
			if !okab || !okba {
				continue
			}
			inTwoCycle[a], inTwoCycle[b] = true, true
			late, early := wab, wba
			lateEdge, earlyEdge := [2]string{a, b}, [2]string{b, a}
			if wba.pos > wab.pos {
				late, early = wba, wab
				lateEdge, earlyEdge = earlyEdge, lateEdge
			}
			p.Reportf(late.pos, "lock-order cycle: %s acquired while holding %s%s, but %s is acquired while holding %s at %s%s",
				lateEdge[1], lateEdge[0], viaText(p, late),
				earlyEdge[1], earlyEdge[0], p.Fset.Position(early.pos), viaText(p, early))
			reported[a+"→"+b] = true
		}
	}

	// Longer cycles without a two-cycle inside: find one rotation per
	// strongly connected component and report it.
	for _, scc := range tarjanSCC(keys, adj) {
		if len(scc) < 2 {
			continue
		}
		hasTwo := false
		for _, k := range scc {
			if inTwoCycle[k] {
				hasTwo = true
			}
		}
		if hasTwo {
			continue
		}
		cyc := findCycle(scc, adj)
		if len(cyc) == 0 {
			continue
		}
		var parts []string
		var lastW lockWitness
		for i, k := range cyc {
			next := cyc[(i+1)%len(cyc)]
			w := adj[k][next]
			parts = append(parts, fmt.Sprintf("%s -> %s at %s%s", k, next, p.Fset.Position(w.pos), viaText(p, w)))
			if w.pos > lastW.pos {
				lastW = w
			}
		}
		p.Reportf(lastW.pos, "lock-order cycle: %s", strings.Join(parts, "; "))
	}
}

func viaText(p *Pass, w lockWitness) string {
	if w.via == "" {
		return ""
	}
	return fmt.Sprintf(" (via %s, locking at %s)", w.via, p.Fset.Position(w.lockPos))
}

func funcDisplay(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if t := typeKey(sig.Recv().Type()); t != "" {
			return t + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// tarjanSCC computes strongly connected components over the key graph.
func tarjanSCC(keys []string, adj map[string]map[string]lockWitness) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return sccs
}

// findCycle returns one cycle within an SCC, as an ordered key list.
func findCycle(scc []string, adj map[string]map[string]lockWitness) []string {
	in := map[string]bool{}
	for _, k := range scc {
		in[k] = true
	}
	start := scc[0]
	var path []string
	seen := map[string]bool{}
	var dfs func(v string) []string
	dfs = func(v string) []string {
		path = append(path, v)
		seen[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				out := make([]string, len(path))
				copy(out, path)
				return out
			}
			if !seen[w] {
				if c := dfs(w); c != nil {
					return c
				}
			}
		}
		path = path[:len(path)-1]
		return nil
	}
	return dfs(start)
}
