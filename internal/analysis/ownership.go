package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// blockOwnershipCheck is the path-sensitive block-discipline verifier:
// it tracks every pooled-block value (a pointer type carrying a Free
// method — *block.Block in this module — and raw block.GetBytes
// buffers) from acquisition to its sink, along every path of the
// function's CFG. A sink is Free, one of the Put-family transfers, or
// a call through a parameter the callee declared with //netvet:owns.
// It reports:
//
//   - a block freed or transferred twice along some path,
//   - any use of a block (or of a buffer view obtained from it via
//     Bytes()/.Buf) after its ownership ended,
//   - a block still owned at a return — the early-return/error-path
//     leak — when the function does release it on another path,
//   - a release that a deferred release will repeat at exit.
//
// Values that escape (returned, stored, sent, captured) leave the
// analysis; Ref() marks refcounted sharing, which also ends it.
// The leak report deliberately requires a release somewhere in the
// same function: a function that never releases is either a
// constructor handing the block out or a borrower, and both are the
// caller's business.
var blockOwnershipCheck = &Check{
	Name: "block-ownership",
	Doc:  "pooled block freed twice, used after transfer, or leaked on an early return",
	Run:  runBlockOwnership,
}

// releaseNames are the implicitly-owning callees of the block
// contract; Free frees its receiver, the Put family consumes its
// block (or raw-buffer) arguments.
var releaseNames = map[string]bool{
	"Free":     true,
	"Put":      true,
	"PutNext":  true,
	"PutBytes": true,
}

// ownBits is the per-variable abstract state.
type ownBits uint8

const (
	bitOwned    ownBits = 1 << iota // holds a reference it must release
	bitFreed                        // released via Free on some path
	bitXfer                         // ownership transferred on some path
	bitDeferRel                     // a deferred release is registered
	bitEscaped                      // stored/returned/shared: not ours to judge
	bitUsed                         // the buffer was touched on this path
)

func (b ownBits) released() bool { return b&(bitFreed|bitXfer) != 0 }

// ownEvent is one ownership-relevant action inside a CFG node, in
// source order.
type ownEvent struct {
	kind evKind
	obj  types.Object
	src  types.Object // alias target for evAlias
	pos  token.Pos
	free bool // for evRelease/evDeferRelease: Free (true) vs transfer
}

type evKind int

const (
	evUse evKind = iota
	evAcquire
	evAlias
	evRebind
	evRelease
	evDeferRelease
	evEscape
	evReturn
)

// ownState is the dataflow state: ownership bits per tracked variable
// and the live buffer-view aliases. Treated as immutable; transfer
// copies before writing.
type ownState struct {
	bits  map[types.Object]ownBits
	alias map[types.Object]types.Object
}

func (s *ownState) clone() *ownState {
	c := &ownState{
		bits:  make(map[types.Object]ownBits, len(s.bits)),
		alias: make(map[types.Object]types.Object, len(s.alias)),
	}
	for k, v := range s.bits {
		c.bits[k] = v
	}
	for k, v := range s.alias {
		c.alias[k] = v
	}
	return c
}

// ownFunc is the per-function analysis context.
type ownFunc struct {
	p     *Pass
	cands map[types.Object]bool
	// Lexically-first positions, for diagnostic cross-references.
	freeAt, xferAt, deferAt, acqAt map[types.Object]token.Pos
	events                         map[ast.Node][]ownEvent
	claimed                        map[*ast.Ident]bool
	entryOwned                     []types.Object // //netvet:owns params of this function
	emitted                        map[string]bool
}

// reportf deduplicates: a variable mentioned twice in one statement
// produces one diagnostic, not two.
func (o *ownFunc) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if o.emitted[key] {
		return
	}
	o.emitted[key] = true
	o.p.Reportf(pos, "%s", msg)
}

func runBlockOwnership(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			checkFuncOwnership(p, fd.Body, fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFuncOwnership(p, lit.Body, nil)
				}
				return true
			})
		}
	}
}

func checkFuncOwnership(p *Pass, body *ast.BlockStmt, fn *types.Func) {
	o := &ownFunc{
		p:       p,
		cands:   map[types.Object]bool{},
		freeAt:  map[types.Object]token.Pos{},
		xferAt:  map[types.Object]token.Pos{},
		deferAt: map[types.Object]token.Pos{},
		acqAt:   map[types.Object]token.Pos{},
		events:  map[ast.Node][]ownEvent{},
		claimed: map[*ast.Ident]bool{},
		emitted: map[string]bool{},
	}
	o.collectCandidates(body, fn)
	if len(o.cands) == 0 {
		return
	}

	g := BuildCFG(body)
	for _, blk := range g.Blocks {
		if blk == g.Exit {
			continue // deferred releases are modeled by bitDeferRel
		}
		for _, n := range blk.Nodes {
			o.events[n] = o.extract(n)
		}
	}
	for _, evs := range o.events {
		for _, ev := range evs {
			switch ev.kind {
			case evAcquire:
				if _, ok := o.acqAt[ev.obj]; !ok {
					o.acqAt[ev.obj] = ev.pos
				}
			case evRelease:
				at := o.xferAt
				if ev.free {
					at = o.freeAt
				}
				if prev, ok := at[ev.obj]; !ok || ev.pos < prev {
					at[ev.obj] = ev.pos
				}
			case evDeferRelease:
				if prev, ok := o.deferAt[ev.obj]; !ok || ev.pos < prev {
					o.deferAt[ev.obj] = ev.pos
				}
			}
		}
	}

	in := Solve(g, o)

	// Reporting replay: one pass per reachable block over the
	// converged states.
	for _, blk := range g.Blocks {
		s, ok := in[blk].(*ownState)
		if !ok || blk == g.Exit {
			continue
		}
		for _, n := range blk.Nodes {
			s = o.apply(s, n, true)
		}
		if blk == g.FallOff {
			o.leakCheck(s, body.End(), true)
		}
	}
}

// Entry, Transfer, Join, Equal implement Problem; EnterBlock adds
// branch-edge pruning.

// EnterBlock drops a candidate known to be nil on this branch arm:
// entering `if msg == nil`'s then arm (or `msg != nil`'s else arm)
// refutes ownership, killing the abstract paths where a conditionally
// acquired block flows into the branch that only runs without it.
func (o *ownFunc) EnterBlock(b *BBlock, st State) State {
	if b.Cond == nil {
		return st
	}
	obj, eqNil := o.nilTest(b.Cond)
	if obj == nil || (eqNil != b.CondTaken) {
		return st
	}
	s := st.(*ownState)
	if _, tracked := s.bits[obj]; !tracked {
		return st
	}
	s = s.clone()
	delete(s.bits, obj)
	return s
}

// nilTest matches `x == nil` / `x != nil` over a candidate x,
// returning x and whether equality (rather than inequality) was
// tested.
func (o *ownFunc) nilTest(e ast.Expr) (types.Object, bool) {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	var id *ast.Ident
	switch {
	case isNilIdent(be.Y):
		id, _ = be.X.(*ast.Ident)
	case isNilIdent(be.X):
		id, _ = be.Y.(*ast.Ident)
	}
	if id == nil {
		return nil, false
	}
	obj := o.objOf(id)
	if obj == nil || !o.cands[obj] {
		return nil, false
	}
	return obj, be.Op == token.EQL
}

func (o *ownFunc) Entry() State {
	s := &ownState{bits: map[types.Object]ownBits{}, alias: map[types.Object]types.Object{}}
	for _, obj := range o.entryOwned {
		// An //netvet:owns parameter arrives live: the caller handed
		// over a real block, so a leak needs no further use evidence.
		s.bits[obj] = bitOwned | bitUsed
	}
	return s
}

func (o *ownFunc) Transfer(b *BBlock, n ast.Node, st State) State {
	if b.Kind == "exit" {
		return st
	}
	return o.apply(st.(*ownState), n, false)
}

func (o *ownFunc) Join(a, b State) State {
	x, y := a.(*ownState), b.(*ownState)
	j := x.clone()
	for obj, bits := range y.bits {
		j.bits[obj] |= bits
	}
	for obj, src := range y.alias {
		if cur, ok := j.alias[obj]; ok && cur != src {
			delete(j.alias, obj) // conflicting views: stop judging
			continue
		}
		j.alias[obj] = src
	}
	return j
}

func (o *ownFunc) Equal(a, b State) bool {
	x, y := a.(*ownState), b.(*ownState)
	if len(x.bits) != len(y.bits) || len(x.alias) != len(y.alias) {
		return false
	}
	for obj, bits := range x.bits {
		if y.bits[obj] != bits {
			return false
		}
	}
	for obj, src := range x.alias {
		if y.alias[obj] != src {
			return false
		}
	}
	return true
}

// apply runs one node's events over the state; when report is set
// (the post-convergence replay) violations are emitted.
func (o *ownFunc) apply(s *ownState, n ast.Node, report bool) *ownState {
	evs := o.events[n]
	if len(evs) == 0 {
		return s
	}
	s = s.clone()
	for _, ev := range evs {
		o.applyEvent(s, ev, report)
	}
	return s
}

func (o *ownFunc) applyEvent(s *ownState, ev ownEvent, report bool) {
	line := func(pos token.Pos) int { return o.p.Fset.Position(pos).Line }
	name := func(obj types.Object) string { return obj.Name() }
	switch ev.kind {
	case evAcquire:
		s.bits[ev.obj] = bitOwned
		delete(s.alias, ev.obj)
	case evAlias:
		s.alias[ev.obj] = ev.src
		delete(s.bits, ev.obj)
	case evRebind:
		delete(s.bits, ev.obj)
		delete(s.alias, ev.obj)
	case evEscape:
		if src, isAlias := s.alias[ev.obj]; isAlias {
			// Returning or storing a view of a released buffer hands
			// out recycled bytes: an escape of an alias is a use.
			bits := s.bits[src]
			if report && bits.released() && bits&bitEscaped == 0 {
				o.reportf(ev.pos, "%s aliases %s's buffer and is used after %s is released (the pool may have recycled it)",
					name(ev.obj), name(src), name(src))
			}
			return
		}
		s.bits[ev.obj] |= bitEscaped
	case evRelease:
		cur := s.bits[ev.obj]
		if report && cur&bitEscaped == 0 {
			switch {
			case cur&bitFreed != 0 && ev.free:
				o.reportf(ev.pos, "%s freed twice (already freed on a path, at line %d)", name(ev.obj), line(o.freeAt[ev.obj]))
			case cur&bitFreed != 0:
				o.reportf(ev.pos, "%s ownership transferred after it was freed (freed at line %d)", name(ev.obj), line(o.freeAt[ev.obj]))
			case cur&bitXfer != 0 && ev.free:
				o.reportf(ev.pos, "%s freed after its ownership was transferred (transferred at line %d)", name(ev.obj), line(o.xferAt[ev.obj]))
			case cur&bitXfer != 0:
				o.reportf(ev.pos, "%s ownership transferred twice (already transferred on a path, at line %d)", name(ev.obj), line(o.xferAt[ev.obj]))
			case cur&bitDeferRel != 0:
				o.reportf(ev.pos, "%s released here and again by its deferred release (registered at line %d)", name(ev.obj), line(o.deferAt[ev.obj]))
			}
		}
		bit := bitXfer
		if ev.free {
			bit = bitFreed
		}
		s.bits[ev.obj] = (s.bits[ev.obj] | bit) &^ bitOwned
	case evDeferRelease:
		cur := s.bits[ev.obj]
		if report && cur&bitEscaped == 0 && cur.released() {
			o.reportf(ev.pos, "deferred release of %s, which was already released (at line %d)",
				name(ev.obj), line(o.firstReleaseAt(ev.obj)))
		}
		s.bits[ev.obj] |= bitDeferRel
	case evUse:
		if src, isAlias := s.alias[ev.obj]; isAlias {
			bits := s.bits[src]
			if report && bits.released() && bits&bitEscaped == 0 {
				o.reportf(ev.pos, "%s aliases %s's buffer and is used after %s is released (the pool may have recycled it)",
					name(ev.obj), name(src), name(src))
			}
			s.bits[src] |= bitUsed
			return
		}
		cur := s.bits[ev.obj]
		s.bits[ev.obj] = cur | bitUsed
		if report && cur.released() && cur&bitEscaped == 0 {
			if cur&bitFreed != 0 {
				o.reportf(ev.pos, "use of %s after it was freed (freed at line %d)", name(ev.obj), line(o.freeAt[ev.obj]))
			} else {
				o.reportf(ev.pos, "use of %s after its ownership was transferred (transferred at line %d)", name(ev.obj), line(o.xferAt[ev.obj]))
			}
		}
	case evReturn:
		if report {
			o.leakCheck(s, ev.pos, true)
		}
	}
}

func (o *ownFunc) firstReleaseAt(obj types.Object) token.Pos {
	f, fok := o.freeAt[obj]
	x, xok := o.xferAt[obj]
	switch {
	case fok && (!xok || f < x):
		return f
	case xok:
		return x
	}
	return token.NoPos
}

// leakCheck reports every variable still owned at a function exit,
// provided the function does release it on some other path — the
// early-return leak shape.
func (o *ownFunc) leakCheck(s *ownState, pos token.Pos, report bool) {
	if !report {
		return
	}
	var objs []types.Object
	for obj, bits := range s.bits {
		// An owned block that was never touched on this path is the
		// `b, err := Get(); if err != nil { return }` shape: b is nil
		// there, so demand use evidence before calling it a leak.
		if bits&bitOwned != 0 && bits&bitUsed != 0 && bits&(bitDeferRel|bitEscaped) == 0 {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		rel := o.firstReleaseAt(obj)
		if d, ok := o.deferAt[obj]; ok && (rel == token.NoPos || d < rel) {
			rel = d
		}
		if rel == token.NoPos {
			continue // never released anywhere: a constructor or borrower
		}
		o.reportf(pos, "%s may leak: still owned on this return path (released on another path at line %d)",
			obj.Name(), o.p.Fset.Position(rel).Line)
	}
}
