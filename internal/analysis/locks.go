package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockAcrossSendCheck flags sync.Mutex/RWMutex regions that reach a
// channel operation or a known-blocking call while the lock is held.
// In the stream put chains and the mount driver mux this is the
// classic deadlock shape: the send blocks for flow control, the peer
// needs the lock to drain, and the machine wedges. Known-blocking
// calls are select (without default), sync.WaitGroup.Wait, time.Sleep,
// and acquiring another mutex (lock-order inversions start here).
var lockAcrossSendCheck = &Check{
	Name: "lock-across-send",
	Doc:  "mutex held across a channel operation or blocking call",
	Run:  runLockAcrossSend,
}

func runLockAcrossSend(p *Pass) {
	for _, f := range p.Pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt) {
			s := &lockScan{p: p, held: map[string]token.Pos{}}
			s.stmts(body.List)
		})
	}
}

// lockScan walks a statement list tracking which mutexes are held.
// Nested blocks are scanned with a copy of the held set, so branch-
// local lock/unlock pairs stay local; a defer'd unlock keeps the
// region open to the end of the function, as at runtime.
type lockScan struct {
	p    *Pass
	held map[string]token.Pos // receiver expr -> Lock position
}

func (s *lockScan) fork() *lockScan {
	held := make(map[string]token.Pos, len(s.held))
	for k, v := range s.held {
		held[k] = v
	}
	return &lockScan{p: s.p, held: held}
}

func (s *lockScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := s.p.mutexMethod(call); ok {
				switch method {
				case "Lock", "RLock":
					s.lockWhileHeld(call, recv)
					s.held[recv] = call.Pos()
					return
				case "Unlock", "RUnlock":
					delete(s.held, recv)
					return
				}
			}
		}
		s.scan(st)
	case *ast.DeferStmt:
		if recv, method, ok := s.p.mutexMethod(st.Call); ok && (method == "Unlock" || method == "RUnlock") {
			_ = recv // releases only at return; the held region continues
			return
		}
		// The deferred call itself runs later; its arguments are
		// evaluated now.
		for _, a := range st.Call.Args {
			s.scan(a)
		}
	case *ast.SendStmt:
		s.report(st.Pos(), "channel send")
		s.scan(st.Chan)
		s.scan(st.Value)
	case *ast.SelectStmt:
		if blockingSelect(st) {
			s.report(st.Pos(), "select")
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			sub := s.fork()
			sub.stmts(cc.Body)
		}
	case *ast.RangeStmt:
		if t, ok := s.p.Pkg.Info.Types[st.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				s.report(st.Pos(), "range over channel")
			}
		}
		s.scan(st.X)
		sub := s.fork()
		sub.stmts(st.Body.List)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.scan(st.Cond)
		}
		sub := s.fork()
		sub.stmts(st.Body.List)
		if st.Post != nil {
			sub.stmt(st.Post)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.scan(st.Cond)
		sub := s.fork()
		sub.stmts(st.Body.List)
		if st.Else != nil {
			sub2 := s.fork()
			sub2.stmt(st.Else)
		}
	case *ast.BlockStmt:
		sub := s.fork()
		sub.stmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.scan(st.Tag)
		}
		for _, c := range st.Body.List {
			sub := s.fork()
			sub.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		for _, c := range st.Body.List {
			sub := s.fork()
			sub.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.GoStmt:
		// Starting a goroutine never blocks; only the argument
		// expressions are evaluated here.
		for _, a := range st.Call.Args {
			s.scan(a)
		}
	default:
		s.scan(st)
	}
}

// scan inspects a statement or expression subtree for blocking
// operations while any lock is held, without descending into function
// literals.
func (s *lockScan) scan(n ast.Node) {
	if n == nil || len(s.held) == 0 {
		return
	}
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.report(n.Pos(), "channel receive")
			}
		case *ast.SendStmt:
			s.report(n.Pos(), "channel send")
		case *ast.CallExpr:
			if recv, method, ok := s.p.mutexMethod(n); ok && (method == "Lock" || method == "RLock") {
				s.lockWhileHeld(n, recv)
				return false
			}
			if what, ok := s.p.blockingCall(n); ok {
				s.report(n.Pos(), what)
			}
		}
		return true
	})
}

// lockWhileHeld reports acquiring recv while a different mutex is
// already held — the opening move of a lock-order inversion.
func (s *lockScan) lockWhileHeld(call *ast.CallExpr, recv string) {
	for other, pos := range s.held {
		if other != recv {
			s.p.Reportf(call.Pos(), "acquiring %s while holding %s (locked at line %d)",
				recv, other, s.p.Fset.Position(pos).Line)
			return
		}
	}
}

func (s *lockScan) report(pos token.Pos, what string) {
	for recv, lockPos := range s.held {
		s.p.Reportf(pos, "%s while holding %s (locked at line %d)",
			what, recv, s.p.Fset.Position(lockPos).Line)
		return // one finding per site is enough
	}
}

// blockingSelect reports whether a select can block (no default case).
func blockingSelect(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return false
		}
	}
	return true
}

// mutexMethod resolves call to a sync.Mutex/RWMutex method, returning
// the receiver expression (the lock's identity) and the method name.
// Promoted methods of embedded mutexes resolve too.
func (p *Pass) mutexMethod(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	fn, okFn := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	r := fn.Type().(*types.Signature).Recv()
	if r == nil {
		return "", "", false
	}
	name := typeName(r.Type())
	if name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// blockingCall classifies calls known to block: sync.WaitGroup.Wait
// and time.Sleep. sync.Cond.Wait is deliberately excluded — it
// releases its locker while waiting.
func (p *Pass) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch {
	case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
		if r := fn.Type().(*types.Signature).Recv(); r != nil && typeName(r.Type()) == "WaitGroup" {
			return "sync.WaitGroup.Wait", true
		}
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	}
	return "", false
}

// typeName returns the bare name of a (possibly pointer) named type.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
