package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Event extraction for the block-ownership check: each CFG node is
// lowered to an ordered list of ownership events (acquire, release,
// escape, use, ...) over the function's candidate variables. The
// structured walk claims the identifiers it consumes; a final generic
// pass turns every unclaimed mention of a candidate into a use.

// collectCandidates finds the variables worth tracking: locals and
// parameters of an ownable pointer type (carrying Free), raw []byte
// buffers that come from GetBytes or go to PutBytes, and the
// buffer-view variables bound from Bytes()/.Buf. It also resolves the
// function's own //netvet:owns entry state.
func (o *ownFunc) collectCandidates(body *ast.BlockStmt, fn *types.Func) {
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := o.objOf(n)
			if v, ok := obj.(*types.Var); ok && !v.IsField() && ownable(v.Type()) {
				o.cands[obj] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := o.objOf(id)
				if obj == nil {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && calleeName(call) == "GetBytes" && isByteSlice(obj.Type()) {
					o.cands[obj] = true
				}
				if o.aliasSourceObj(rhs) != nil {
					o.cands[obj] = true
				}
			}
		case *ast.CallExpr:
			if calleeName(n) == "PutBytes" {
				for _, a := range n.Args {
					if id, ok := a.(*ast.Ident); ok {
						if obj := o.objOf(id); obj != nil && isByteSlice(obj.Type()) {
							if v, ok := obj.(*types.Var); ok && !v.IsField() {
								o.cands[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	// Alias sources must themselves be candidates for alias events to
	// land; prune dangling views.
	if fn != nil {
		if fact, ok := o.p.Owns(fn); ok {
			sig := fn.Type().(*types.Signature)
			if fact.Recv && sig.Recv() != nil && o.cands[sig.Recv()] {
				o.entryOwned = append(o.entryOwned, sig.Recv())
			}
			for _, i := range fact.Params {
				if prm := sig.Params().At(i); o.cands[prm] || isByteSlice(prm.Type()) {
					o.cands[prm] = true
					o.entryOwned = append(o.entryOwned, prm)
				}
			}
		}
	}
}

// extract lowers one CFG node into its ownership events.
func (o *ownFunc) extract(n ast.Node) []ownEvent {
	var evs []ownEvent
	add := func(e ownEvent) { evs = append(evs, e) }

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// The body runs later (or elsewhere): captured candidates
			// escape our bookkeeping.
			for _, obj := range o.mentioned(n.Body) {
				add(ownEvent{kind: evEscape, obj: obj, pos: n.Pos()})
			}
			return
		case *RangeHeader:
			walk(n.Range.X)
			for _, kv := range []ast.Expr{n.Range.Key, n.Range.Value} {
				if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
					if obj := o.objOf(id); obj != nil && o.cands[obj] {
						add(ownEvent{kind: evRebind, obj: obj, pos: id.Pos()})
						o.claimed[id] = true
					}
				}
			}
			return
		case *SelectHeader:
			return
		case *ast.DeferStmt:
			o.extractDeferred(n.Call, n.Pos(), add)
			return
		case *ast.GoStmt:
			for _, obj := range o.mentioned(n.Call) {
				add(ownEvent{kind: evEscape, obj: obj, pos: n.Pos()})
			}
			o.claimAll(n.Call)
			return
		case *ast.ReturnStmt:
			for _, obj := range o.mentioned(n) {
				add(ownEvent{kind: evEscape, obj: obj, pos: n.Pos()})
			}
			o.claimAll(n)
			add(ownEvent{kind: evReturn, pos: n.End()})
			return
		case *ast.SendStmt:
			walk(n.Chan)
			if id, ok := n.Value.(*ast.Ident); ok {
				if obj := o.objOf(id); obj != nil && o.cands[obj] {
					add(ownEvent{kind: evEscape, obj: obj, pos: id.Pos()})
					o.claimed[id] = true
					return
				}
			}
			walk(n.Value)
			return
		case *ast.AssignStmt:
			o.extractAssign(n, add, walk)
			return
		case *ast.CallExpr:
			if o.extractCall(n, add, walk) {
				return
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := e.(*ast.Ident); ok {
					if obj := o.objOf(id); obj != nil && o.cands[obj] {
						add(ownEvent{kind: evEscape, obj: obj, pos: id.Pos()})
						o.claimed[id] = true
						continue
					}
				}
				walk(e)
			}
			return
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok {
					if obj := o.objOf(id); obj != nil && o.cands[obj] {
						add(ownEvent{kind: evEscape, obj: obj, pos: id.Pos()})
						o.claimed[id] = true
						return
					}
				}
			}
		case *ast.BinaryExpr:
			// Comparisons against nil are neutral: checking a pointer
			// is not touching the buffer.
			if (n.Op == token.EQL || n.Op == token.NEQ) && (isNilIdent(n.X) || isNilIdent(n.Y)) {
				if id, ok := n.X.(*ast.Ident); ok {
					o.claimed[id] = true
				}
				if id, ok := n.Y.(*ast.Ident); ok {
					o.claimed[id] = true
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c)
		}
	}
	walk(n)

	// Generic use pass: every unclaimed mention of a candidate.
	inspectSkippingFuncLits(n, func(m ast.Node) bool {
		if _, skip := m.(*ast.DeferStmt); skip {
			return false
		}
		if _, skip := m.(*ast.GoStmt); skip {
			return false
		}
		if h, isRange := m.(*RangeHeader); isRange {
			inspectSkippingFuncLits(h.Range.X, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && !o.claimed[id] {
					if obj := o.objOf(id); obj != nil && o.cands[obj] {
						add(ownEvent{kind: evUse, obj: obj, pos: id.Pos()})
					}
				}
				return true
			})
			return false
		}
		if _, isSel := m.(*SelectHeader); isSel {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && !o.claimed[id] {
			if obj := o.objOf(id); obj != nil && o.cands[obj] {
				add(ownEvent{kind: evUse, obj: obj, pos: id.Pos()})
			}
		}
		return true
	})

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// extractAssign lowers an assignment: acquisitions, alias bindings,
// self-slices, rebinds, and var-to-var escapes.
func (o *ownFunc) extractAssign(as *ast.AssignStmt, add func(ownEvent), walk func(ast.Node)) {
	multi := len(as.Rhs) == 1 && len(as.Lhs) > 1
	for i, lhs := range as.Lhs {
		id, isIdent := lhs.(*ast.Ident)
		var rhs ast.Expr
		if multi {
			rhs = as.Rhs[0]
		} else if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if !isIdent || id.Name == "_" {
			// Storing a candidate into a field, slot or map escapes it.
			if rid, ok := rhs.(*ast.Ident); ok && !multi {
				if obj := o.objOf(rid); obj != nil && o.cands[obj] {
					add(ownEvent{kind: evEscape, obj: obj, pos: rid.Pos()})
					o.claimed[rid] = true
				}
			}
			continue
		}
		obj := o.objOf(id)
		if obj == nil || !o.cands[obj] {
			continue
		}
		o.claimed[id] = true
		switch {
		case !multi && o.isAcquireCall(rhs):
			add(ownEvent{kind: evAcquire, obj: obj, pos: rhs.End()})
		case multi && o.isAcquireCall(as.Rhs[0]):
			// b, err := f(): the ownable result is acquired.
			if ownable(obj.Type()) || isByteSlice(obj.Type()) {
				add(ownEvent{kind: evAcquire, obj: obj, pos: as.Rhs[0].End()})
			}
		case !multi && o.aliasSourceObj(rhs) != nil:
			src := o.aliasSourceObj(rhs)
			if o.cands[src] {
				add(ownEvent{kind: evAlias, obj: obj, src: src, pos: rhs.End()})
			} else {
				add(ownEvent{kind: evRebind, obj: obj, pos: rhs.End()})
			}
		case !multi && isSelfSlice(rhs, obj, o.objOf):
			// data = data[:n]: same buffer, same ownership.
		case !multi && func() bool { rid, ok := rhs.(*ast.Ident); return ok && o.objOf(rid) != nil && o.cands[o.objOf(rid)] }():
			// c := b aliases the whole block into another name; both
			// are now suspect, so b escapes and c starts untracked.
			rid := rhs.(*ast.Ident)
			add(ownEvent{kind: evEscape, obj: o.objOf(rid), pos: rid.Pos()})
			o.claimed[rid] = true
			add(ownEvent{kind: evRebind, obj: obj, pos: rhs.End()})
		default:
			add(ownEvent{kind: evRebind, obj: obj, pos: as.End()})
		}
	}
	for _, rhs := range as.Rhs {
		walk(rhs)
	}
	for _, lhs := range as.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			walk(lhs)
		}
	}
}

// extractCall lowers a call when it is ownership-relevant (a release,
// a Ref, an append, an annotated transfer); returns false to let the
// generic walk handle it.
func (o *ownFunc) extractCall(call *ast.CallExpr, add func(ownEvent), walk func(ast.Node)) bool {
	// Declared transfers win over name heuristics.
	if fn := o.calleeFunc(call); fn != nil {
		if fact, ok := o.p.Owns(fn); ok {
			if fact.Recv {
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if id, isID := sel.X.(*ast.Ident); isID {
						if obj := o.objOf(id); obj != nil && o.cands[obj] {
							add(ownEvent{kind: evRelease, obj: obj, pos: call.Rparen})
							o.claimed[id] = true
						}
					}
				}
			}
			sig := fn.Type().(*types.Signature)
			for _, pi := range fact.Params {
				for _, ai := range argIndices(sig, pi, len(call.Args)) {
					if id, isID := call.Args[ai].(*ast.Ident); isID {
						if obj := o.objOf(id); obj != nil && o.cands[obj] {
							add(ownEvent{kind: evRelease, obj: obj, pos: call.Rparen})
							o.claimed[id] = true
						}
					}
				}
			}
			for _, a := range call.Args {
				walk(a)
			}
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				walk(sel.X)
			}
			return true
		}
	}

	name := calleeName(call)
	switch {
	case name == "Free" && len(call.Args) == 0:
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := o.objOf(id); obj != nil && o.cands[obj] && ownable(obj.Type()) {
					add(ownEvent{kind: evRelease, obj: obj, pos: call.Rparen, free: true})
					o.claimed[id] = true
					return true
				}
			}
		}
	case name == "Ref" && len(call.Args) == 0:
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := o.objOf(id); obj != nil && o.cands[obj] && ownable(obj.Type()) {
					// Ref is a use of the block, and after it the
					// block is refcount-shared: linear ownership
					// reasoning no longer applies, so stop judging.
					add(ownEvent{kind: evUse, obj: obj, pos: call.Pos()})
					add(ownEvent{kind: evEscape, obj: obj, pos: call.Pos()})
					o.claimed[id] = true
					return true
				}
			}
		}
	case releaseNames[name]:
		hit := false
		for _, a := range call.Args {
			id, ok := a.(*ast.Ident)
			if !ok {
				continue
			}
			obj := o.objOf(id)
			if obj == nil || !o.cands[obj] {
				continue
			}
			if ownable(obj.Type()) || (name == "PutBytes" && isByteSlice(obj.Type())) {
				add(ownEvent{kind: evRelease, obj: obj, pos: call.Rparen})
				o.claimed[id] = true
				hit = true
			}
		}
		if hit {
			for _, a := range call.Args {
				walk(a)
			}
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				walk(sel.X)
			}
			return true
		}
	case name == "append":
		if id, ok := call.Fun.(*ast.Ident); ok && o.p.Pkg.Info.Uses[id] == types.Universe.Lookup("append") {
			for _, a := range call.Args[1:] {
				if aid, ok := a.(*ast.Ident); ok {
					if obj := o.objOf(aid); obj != nil && o.cands[obj] {
						add(ownEvent{kind: evEscape, obj: obj, pos: aid.Pos()})
						o.claimed[aid] = true
					}
				}
			}
		}
	}
	return false
}

// extractDeferred lowers `defer call`: a deferred release marks its
// subjects; anything else that mentions a candidate escapes it.
func (o *ownFunc) extractDeferred(call *ast.CallExpr, pos token.Pos, add func(ownEvent)) {
	subjects := o.releaseSubjects(call)
	if len(subjects) > 0 {
		for _, sub := range subjects {
			add(ownEvent{kind: evDeferRelease, obj: sub.obj, pos: pos, free: sub.free})
		}
		o.claimAll(call)
		return
	}
	for _, obj := range o.mentioned(call) {
		add(ownEvent{kind: evEscape, obj: obj, pos: pos})
	}
	o.claimAll(call)
}

type releaseSubject struct {
	obj  types.Object
	free bool
}

// releaseSubjects resolves the candidates a call releases, by
// annotation or by the Free/Put naming contract.
func (o *ownFunc) releaseSubjects(call *ast.CallExpr) []releaseSubject {
	var out []releaseSubject
	if fn := o.calleeFunc(call); fn != nil {
		if fact, ok := o.p.Owns(fn); ok {
			if fact.Recv {
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if id, isID := sel.X.(*ast.Ident); isID {
						if obj := o.objOf(id); obj != nil && o.cands[obj] {
							out = append(out, releaseSubject{obj: obj})
						}
					}
				}
			}
			sig := fn.Type().(*types.Signature)
			for _, pi := range fact.Params {
				for _, ai := range argIndices(sig, pi, len(call.Args)) {
					if id, isID := call.Args[ai].(*ast.Ident); isID {
						if obj := o.objOf(id); obj != nil && o.cands[obj] {
							out = append(out, releaseSubject{obj: obj})
						}
					}
				}
			}
			return out
		}
	}
	name := calleeName(call)
	if !releaseNames[name] {
		return nil
	}
	if name == "Free" && len(call.Args) == 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := o.objOf(id); obj != nil && o.cands[obj] && ownable(obj.Type()) {
					out = append(out, releaseSubject{obj: obj, free: true})
				}
			}
		}
		return out
	}
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok {
			if obj := o.objOf(id); obj != nil && o.cands[obj] {
				if ownable(obj.Type()) || (name == "PutBytes" && isByteSlice(obj.Type())) {
					out = append(out, releaseSubject{obj: obj})
				}
			}
		}
	}
	return out
}

// Helpers.

func (o *ownFunc) objOf(id *ast.Ident) types.Object {
	if obj := o.p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return o.p.Pkg.Info.Defs[id]
}

// mentioned lists the distinct candidates referenced anywhere under n,
// in first-mention order.
func (o *ownFunc) mentioned(n ast.Node) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := o.objOf(id); obj != nil && o.cands[obj] && !seen[obj] {
				seen[obj] = true
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// claimAll marks every candidate mention under n as consumed, so the
// generic use pass stays quiet about it.
func (o *ownFunc) claimAll(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := o.objOf(id); obj != nil && o.cands[obj] {
				o.claimed[id] = true
			}
		}
		return true
	})
}

// isAcquireCall reports whether e is a call that hands the caller a
// fresh owned value: any call whose (sole or first) result is an
// ownable pointer, or a GetBytes raw buffer.
func (o *ownFunc) isAcquireCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if calleeName(call) == "GetBytes" {
		if t, ok := o.p.Pkg.Info.Types[call]; ok && isByteSlice(t.Type) {
			return true
		}
	}
	t, ok := o.p.Pkg.Info.Types[call]
	if !ok || t.Type == nil {
		return false
	}
	typ := t.Type
	if tup, isTuple := typ.(*types.Tuple); isTuple {
		if tup.Len() == 0 {
			return false
		}
		typ = tup.At(0).Type()
	}
	if _, isConv := call.Fun.(*ast.Ident); isConv && len(call.Args) == 1 {
		// A conversion T(x) is not an acquisition.
		if _, isType := o.p.Pkg.Info.Types[call.Fun]; isType {
			if _, isFn := o.p.Pkg.Info.Uses[call.Fun.(*ast.Ident)].(*types.Func); !isFn {
				return false
			}
		}
	}
	return ownable(typ)
}

// aliasSourceObj returns the candidate block obj an expression borrows
// a view from: x.Bytes() or x.Buf, else nil.
func (o *ownFunc) aliasSourceObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Bytes" || len(e.Args) != 0 {
			return nil
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := o.objOf(id); obj != nil && ownable(obj.Type()) {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "Buf" {
			return nil
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if obj := o.objOf(id); obj != nil && ownable(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func (o *ownFunc) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := o.p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := o.p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// argIndices maps a parameter index to the call's argument indices,
// fanning a variadic final parameter across the trailing arguments.
func argIndices(sig *types.Signature, param, nargs int) []int {
	if sig.Variadic() && param == sig.Params().Len()-1 {
		var out []int
		for i := param; i < nargs; i++ {
			out = append(out, i)
		}
		return out
	}
	if param < nargs {
		return []int{param}
	}
	return nil
}

// ownable reports whether t is a pointer (or named) non-interface type
// whose method set carries Free — the pooled-block shape.
func ownable(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if _, isIface := ptr.Elem().Underlying().(*types.Interface); isIface {
			return false
		}
	}
	return hasMethod(t, "Free")
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isSelfSlice reports whether rhs is a slice/index re-derivation of
// the same variable (data = data[:n]).
func isSelfSlice(rhs ast.Expr, obj types.Object, objOf func(*ast.Ident) types.Object) bool {
	for {
		switch e := rhs.(type) {
		case *ast.SliceExpr:
			rhs = e.X
		case *ast.Ident:
			return objOf(e) == obj
		default:
			return false
		}
	}
}
