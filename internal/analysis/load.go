package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Pkg is one type-checked package of the module under analysis.
type Pkg struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is a loaded, type-checked module: every package under the
// module root, in dependency order, sharing one FileSet.
type Module struct {
	Root string // absolute path of the directory holding go.mod
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Pkg
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod) using only the standard library:
// local packages are resolved within the module, everything else
// through the source importer. testdata and hidden directories are
// skipped; _test.go files are included when includeTests is set
// (external _test packages are loaded as their own Pkg).
func LoadModule(root string, includeTests bool) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	var raws []*rawPkg
	for _, dir := range dirs {
		ps, err := parseDir(mod.Fset, dir, includeTests)
		if err != nil {
			return nil, err
		}
		for _, rp := range ps {
			rel, _ := filepath.Rel(root, dir)
			rp.importPath = modPath
			if rel != "." {
				rp.importPath = modPath + "/" + filepath.ToSlash(rel)
			}
			if rp.external {
				rp.importPath += "_test"
			}
			raws = append(raws, rp)
		}
	}
	sorted, err := topoSort(raws, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		local: make(map[string]*types.Package),
		std:   importer.ForCompiler(mod.Fset, "source", nil),
	}
	for _, rp := range sorted {
		pkg, err := typeCheck(mod.Fset, rp, imp)
		if err != nil {
			return nil, err
		}
		imp.local[rp.importPath] = pkg.Types
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// rawPkg is a parsed, not-yet-typed package.
type rawPkg struct {
	importPath string
	dir        string
	name       string
	external   bool // an external foo_test package
	files      []*ast.File
}

// localImports lists the rp imports that live inside the module.
func (rp *rawPkg) localImports(modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range rp.files {
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// goDirs returns every directory under root holding .go files,
// skipping hidden and testdata trees.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses one directory into its package (and, with tests, the
// external test package if present).
func parseDir(fset *token.FileSet, dir string, includeTests bool) ([]*rawPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string]*rawPkg{}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !includeTests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if buildExcluded(f) {
			continue
		}
		pkgName := f.Name.Name
		rp := byName[pkgName]
		if rp == nil {
			rp = &rawPkg{dir: dir, name: pkgName, external: strings.HasSuffix(pkgName, "_test")}
			byName[pkgName] = rp
			names = append(names, pkgName)
		}
		rp.files = append(rp.files, f)
	}
	sort.Strings(names)
	var out []*rawPkg
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out, nil
}

// buildExcluded reports whether a //go:build line above the package
// clause rules the file out of the default (tagless) build — e.g. a
// `//go:build race` variant whose !race twin is the one we analyze.
// Only GOOS, GOARCH and go1.x release tags evaluate true.
func buildExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			return !expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return false
}

// topoSort orders packages so every local import precedes its users.
func topoSort(raws []*rawPkg, modPath string) ([]*rawPkg, error) {
	byPath := map[string]*rawPkg{}
	for _, rp := range raws {
		byPath[rp.importPath] = rp
	}
	var order []*rawPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp.importPath] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", rp.importPath)
		case 2:
			return nil
		}
		state[rp.importPath] = 1
		for _, dep := range rp.localImports(modPath) {
			if d := byPath[dep]; d != nil && d != rp {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[rp.importPath] = 2
		order = append(order, rp)
		return nil
	}
	for _, rp := range raws {
		if err := visit(rp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-local packages from the loaded set
// and defers to the source importer for the rest.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	// An external test package imports its own base package.
	if p, ok := im.local[strings.TrimSuffix(path, "_test")]; ok {
		return p, nil
	}
	return im.std.Import(path)
}

// newInfo allocates the types.Info maps the checks rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// typeCheck runs the type checker over one parsed package.
func typeCheck(fset *token.FileSet, rp *rawPkg, imp types.Importer) (*Pkg, error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := newInfo()
	tpkg, _ := conf.Check(rp.importPath, fset, rp.files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", rp.importPath, errs[0])
	}
	return &Pkg{
		ImportPath: rp.importPath,
		Dir:        rp.dir,
		Name:       rp.name,
		Files:      rp.files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// CheckSource type-checks a single in-memory file as its own package —
// the harness the analyzer's own test corpus runs under.
func CheckSource(fset *token.FileSet, filename string, src any) (*Pkg, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	rp := &rawPkg{importPath: f.Name.Name, dir: filepath.Dir(filename), name: f.Name.Name, files: []*ast.File{f}}
	imp := &moduleImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	return typeCheck(fset, rp, imp)
}
