package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockAliasingCheck enforces the block discipline's aliasing rule: a
// buffer view obtained with a := b.Bytes() or a := b.Buf dies with the
// block. Once b is released — b.Free(), or b handed on via Put /
// PutNext / PutBytes — the pool may recycle the backing array into a
// fresh block, so any later use of the view reads (or scribbles on)
// somebody else's in-flight data. The check is positional within one
// function: alias bindings, release points, and later uses.
var blockAliasingCheck = &Check{
	Name: "block-aliasing",
	Doc:  "buffer view (Bytes()/.Buf) used after its block was freed or handed on",
	Run:  runBlockAliasing,
}

// releaseNames are callees that end the caller's ownership of a block
// passed to (or invoked on) them.
var releaseNames = map[string]bool{
	"Free":     true,
	"Put":      true,
	"PutNext":  true,
	"PutBytes": true,
}

// blockAlias is one tracked view: the alias variable and the block
// object it borrows from.
type blockAlias struct {
	obj   types.Object // the alias variable
	src   types.Object // the block it aliases
	ident *ast.Ident
}

func runBlockAliasing(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncBlockAliasing(p, fd.Body)
		}
	}
}

func checkFuncBlockAliasing(p *Pass, body *ast.BlockStmt) {
	var aliases []*blockAlias
	byObj := map[types.Object]*blockAlias{}

	// Pass 1: alias bindings. Only freeable sources count, so a
	// bytes.Buffer's Bytes() or an unrelated Buf field stays silent.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		src := aliasSource(p, as.Rhs[0])
		if src == nil || !hasMethod(src.Type(), "Free") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id] // plain = rebind of an existing var
		}
		if obj == nil {
			return true
		}
		a := &blockAlias{obj: obj, src: src, ident: id}
		aliases = append(aliases, a)
		byObj[obj] = a
		return true
	})
	if len(aliases) == 0 {
		return
	}

	// Pass 2: release points of each source block. A release inside a
	// branch (an error-path Free that continues or returns) only rules
	// the rest of that branch, so each point carries the end of its
	// innermost enclosing statement list.
	released := map[types.Object][]release{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !releaseNames[calleeName(call)] {
			return true
		}
		// b.Free(): the receiver is released. PutNext(b)/q.Put(b)/
		// PutBytes(b): the argument is.
		var ids []*ast.Ident
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && calleeName(call) == "Free" {
			if id, ok := sel.X.(*ast.Ident); ok {
				ids = append(ids, id)
			}
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			obj := p.Pkg.Info.Uses[id]
			if obj == nil {
				continue
			}
			released[obj] = append(released[obj], release{pos: call.Pos(), scope: scopeEnd(body, call.Pos())})
		}
		return true
	})
	if len(released) == 0 {
		return
	}

	// Pass 3: any use of an alias after its source's release. Writes
	// that rebind the alias wholesale (a = ...) are fine; reads and
	// element writes are not.
	rebinds := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					rebinds[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || rebinds[id] {
			return true
		}
		a := byObj[p.Pkg.Info.Uses[id]]
		if a == nil {
			return true
		}
		for _, rel := range released[a.src] {
			if id.Pos() > rel.pos && id.Pos() < rel.scope {
				p.Reportf(id.Pos(), "%s aliases %s's buffer and is used after %s is released (the pool may have recycled it)",
					id.Name, a.src.Name(), a.src.Name())
				break
			}
		}
		return true
	})
}

// release is one point where a block's ownership left the function,
// valid until the end of its innermost enclosing statement list.
type release struct {
	pos   token.Pos
	scope token.Pos
}

// scopeEnd returns the end of the innermost block, case clause or
// select clause enclosing pos.
func scopeEnd(body *ast.BlockStmt, pos token.Pos) token.Pos {
	best, end := body.Pos(), body.End()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= pos && pos < n.End() && n.Pos() >= best {
				best, end = n.Pos(), n.End()
			}
		}
		return true
	})
	return end
}

// aliasSource returns the block object an expression borrows from:
// x.Bytes() or x.Buf, else nil.
func aliasSource(p *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Bytes" || len(e.Args) != 0 {
			return nil
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			return p.Pkg.Info.Uses[id]
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "Buf" {
			return nil
		}
		if id, ok := e.X.(*ast.Ident); ok {
			return p.Pkg.Info.Uses[id]
		}
	}
	return nil
}
