package ninep

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/vfs"
)

// AttachFunc resolves an attach request to the root of a served tree.
// It is how a server decides what uname sees for a given attach name —
// exportfs, for example, re-roots at the requested path of the
// exporting process's name space.
type AttachFunc func(uname, aname string) (vfs.Node, error)

// Server defaults.
const (
	// DefaultWorkers bounds the shared request-dispatch pool.
	DefaultWorkers = 16
	// DefaultConnBudget bounds one connection's concurrently running
	// requests. It is deliberately larger than a client engine's
	// DefaultMaxInFlight (64): a well-behaved client can never fill
	// its own budget, so the budget only bites when a connection
	// floods past what the protocol engine would issue — the hot
	// client the round-robin dispatcher is defending against.
	DefaultConnBudget = 128
)

// ServerConfig tunes a multi-connection server; the zero value is
// ready to use on the real clock.
type ServerConfig struct {
	// Clock drives the per-request goroutines; nil means real time.
	Clock vclock.Clock
	// Workers bounds the shared dispatch pool; 0 means DefaultWorkers.
	Workers int
	// ConnBudget bounds one connection's concurrently running
	// requests; 0 means DefaultConnBudget.
	ConnBudget int
}

// Server serves a file tree over 9P to many connections at once — the
// multi-tenant gateway of §6.1. Each connection keeps a private fid
// table, tag table, and flush state (ServeConn); requests from all
// connections dispatch through one bounded worker pool, round-robin
// over the connections so a hot client cannot starve the rest. It
// stays multithreaded in the way the paper requires of exportfs: a
// request that may block (open, create, read, and write may all block —
// a read on a listen file blocks until a call arrives) escalates to
// its own goroutine, and Tflush lets a client abandon it.
type Server struct {
	attach  AttachFunc
	ck      vclock.Clock
	workers int
	budget  int

	// Dispatcher state: connections with queued, in-budget work wait
	// in ready; pool workers take the front connection, run one of its
	// requests, and re-append it — round-robin across tenants.
	dmu      sync.Mutex
	ready    []*SrvConn
	nworkers int
	npend    int // queued requests across all connections

	cmu    sync.Mutex
	conns  map[int64]*SrvConn
	nextID int64

	// Server-wide figures for the stats file.
	Conns    obs.Counter   // connections accepted over the server's life
	RPCs     obs.Counter   // non-control requests completed
	WorkerHW obs.Watermark // most pool workers alive at once
}

// NewServer returns a server ready to accept connections; each
// accepted transport is served by ServeConn.
func NewServer(attach AttachFunc, cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.ConnBudget <= 0 {
		cfg.ConnBudget = DefaultConnBudget
	}
	return &Server{
		attach:  attach,
		ck:      vclock.Or(cfg.Clock),
		workers: cfg.Workers,
		budget:  cfg.ConnBudget,
		conns:   make(map[int64]*SrvConn),
	}
}

// SrvConn is one client's connection to a Server: a private fid table,
// tag table, and flush state, so tenants with colliding fid or tag
// numbers never see each other, and one connection's death clunks only
// its own fids.
type SrvConn struct {
	s    *Server
	id   int64
	conn MsgConn

	wmu wlock // serializes response writes

	mu    sync.Mutex
	uname string // first attach's uname, for the stats bill
	fids  map[uint32]*srvFid
	reqs  map[uint16]*srvReq // requests in flight, by tag

	// Dispatcher state, guarded by s.dmu.
	pend    []*srvReq // parsed requests not yet running
	running int       // requests executing (inline or escalated)
	inRing  bool      // queued in s.ready

	// Per-connection figures for the stats bill.
	rpcs       obs.Counter
	reads      obs.Counter
	writes     obs.Counter
	flushes    obs.Counter
	pendHW     obs.Watermark // deepest pend queue seen
	inflightHW obs.Watermark // most requests running at once
	lat        obs.Hist      // request latency, arrival to reply
}

// srvReq tracks one in-flight request. Flush state lives on the
// request instance, never in a map keyed by tag alone: after the
// 16-bit tag space wraps, a recycled tag can name a new request while
// a flushed predecessor's goroutine is still running (blocked in
// h.Read, say), and each instance must see only its own flush mark —
// a shared per-tag entry would let the new request consume the old
// one's mark and the old request answer under the new one's tag.
type srvReq struct {
	flushed atomic.Bool
	f       *Fcall
	start   time.Time
	tq      *ticketQ
	ticket  uint64
	// inline marks a request the pool worker may run on its own
	// goroutine: metadata operations, and reads a blockReader handle
	// serves from cache memory. Everything else may block
	// indefinitely and escalates to a request goroutine.
	inline bool
}

type srvFid struct {
	mu   sync.Mutex
	node vfs.Node
	h    vfs.Handle
	open bool
	mode int

	// With a pipelining client, several Treads (or Twrites) for one
	// fid can be in their goroutines at once; on a delimited or
	// stream device the order they reach the handle is the order the
	// data comes off (or goes onto) the stream. Each direction gets
	// a ticket queue: tickets are taken in the Serve loop, in wire
	// arrival order, and each request waits its turn before touching
	// the handle. Reads and writes queue independently so a read
	// blocked on an idle stream never holds up the writes that would
	// unblock it.
	rq, wq ticketQ
}

// ticketQ serializes requests in ticket order: take in arrival order,
// wait your turn, done when finished.
type ticketQ struct {
	mu         sync.Mutex
	cond       vclock.Cond
	inited     bool
	next, turn uint64
}

func (q *ticketQ) take() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.next
	q.next++
	return t
}

func (q *ticketQ) wait(t uint64, ck vclock.Clock) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.turn != t {
		if !q.inited {
			q.cond.Init(ck, &q.mu)
			q.inited = true
		}
		q.cond.Wait()
	}
}

func (q *ticketQ) done() {
	q.mu.Lock()
	q.turn++
	if q.inited {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Serve runs a single-connection 9P server on conn until the
// transport fails or the client goes away. It returns the transport
// error (io.EOF for a clean close).
func Serve(conn MsgConn, attach AttachFunc) error {
	return ServeClock(conn, attach, nil)
}

// ServeClock is Serve with an explicit clock driving the per-request
// goroutines; nil means the real clock.
func ServeClock(conn MsgConn, attach AttachFunc, ck vclock.Clock) error {
	return NewServer(attach, ServerConfig{Clock: ck}).ServeConn(conn)
}

// ServeConn serves one accepted transport, blocking until it fails or
// the client goes away, and returns the transport error (io.EOF for a
// clean close). Many ServeConn calls run against one Server at once;
// when one returns, only that connection's fids are clunked.
func (s *Server) ServeConn(conn MsgConn) error {
	c := &SrvConn{
		s:    s,
		conn: conn,
		fids: make(map[uint32]*srvFid),
		reqs: make(map[uint16]*srvReq),
	}
	s.cmu.Lock()
	s.nextID++
	c.id = s.nextID
	s.conns[c.id] = c
	s.cmu.Unlock()
	s.Conns.Inc()
	defer s.teardown(c)
	for {
		msg, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		f, err := UnmarshalFcall(msg)
		// UnmarshalFcall copies everything it keeps, so the wire
		// buffer goes back to the pool either way.
		block.PutBytes(msg)
		if err != nil {
			return err
		}
		switch f.Type {
		case Tnop, Tsession, Tauth, Tflush:
			// Control messages are answered synchronously so a
			// Tflush can never be overtaken by the work it
			// flushes — it never waits behind the connection's
			// queued requests.
			c.respond(f.Tag, c.process(f), nil)
		default:
			st := &srvReq{f: f, start: s.ck.Now()}
			// I/O requests take a per-fid, per-direction ticket
			// here, in wire arrival order, so they reach the
			// handle in the order the client issued them even
			// when a windowed transfer has several in flight.
			// Reads a blockReader handle can serve from cache
			// memory skip the ticket — offset-addressed reads of
			// a plain file commute — and run inline on the pool.
			switch f.Type {
			case Tread:
				c.reads.Inc()
				c.mu.Lock()
				if sf := c.fids[f.Fid]; sf != nil {
					if sf.open {
						if _, ok := sf.h.(blockReader); ok {
							st.inline = true
						}
					}
					if !st.inline {
						st.tq = &sf.rq
					}
				}
				c.mu.Unlock()
			case Twrite:
				c.writes.Inc()
				c.mu.Lock()
				if sf := c.fids[f.Fid]; sf != nil {
					st.tq = &sf.wq
				}
				c.mu.Unlock()
			case Topen, Tcreate:
				// May block (opening a device file can wait on
				// the device); escalates to its own goroutine.
			default:
				// Metadata operations complete without blocking;
				// the pool worker runs them inline.
				st.inline = true
			}
			if st.tq != nil {
				st.ticket = st.tq.take()
			}
			// Register the request instance. A stale instance may
			// still occupy the tag (flushed, its goroutine not yet
			// done); the client has seen its Rflush, so the tag is
			// legitimately recycled and the new instance simply
			// takes over the slot.
			c.mu.Lock()
			c.reqs[f.Tag] = st
			c.mu.Unlock()
			s.enqueue(c, st)
		}
	}
}

// enqueue queues one parsed request on its connection and makes the
// connection eligible for dispatch if its budget allows. The read loop
// never blocks here — a flood simply deepens the queue, where the
// round-robin dispatcher holds it to its budget.
func (s *Server) enqueue(c *SrvConn, st *srvReq) {
	s.dmu.Lock()
	c.pend = append(c.pend, st)
	s.npend++
	c.pendHW.Note(int64(len(c.pend)))
	if !c.inRing && c.running < s.budget {
		c.inRing = true
		s.ready = append(s.ready, c)
	}
	spawn := s.nworkers < s.workers && s.nworkers < s.npend
	if spawn {
		s.nworkers++
		s.WorkerHW.Note(int64(s.nworkers))
	}
	s.dmu.Unlock()
	if spawn {
		s.ck.Go(s.worker)
	}
}

// worker is one pool goroutine: it repeatedly takes the front
// connection of the ready ring, runs one of its requests, and puts
// the connection back at the tail — round-robin over tenants, so
// every connection advances one request per turn of the ring no
// matter how deep any single queue is. Workers are spawned on demand
// and exit when the ring empties; an idle server holds no goroutines.
func (s *Server) worker() {
	for {
		s.dmu.Lock()
		if len(s.ready) == 0 {
			s.nworkers--
			s.dmu.Unlock()
			return
		}
		c := s.ready[0]
		s.ready = s.ready[1:]
		st := c.pend[0]
		c.pend = c.pend[1:]
		s.npend--
		c.running++
		c.inflightHW.Note(int64(c.running))
		if len(c.pend) > 0 && c.running < s.budget {
			s.ready = append(s.ready, c)
		} else {
			c.inRing = false
		}
		s.dmu.Unlock()
		if st.inline {
			c.run(st)
			s.release(c)
		} else {
			// The request may block indefinitely (a read on a
			// listen file waits for a call); it gets the paper's
			// goroutine-per-request treatment, and counts against
			// the connection's budget until it completes.
			s.ck.Go(func() {
				c.run(st)
				s.release(c)
			})
		}
	}
}

// release returns one unit of a connection's budget and re-rings the
// connection if that makes queued work dispatchable again.
func (s *Server) release(c *SrvConn) {
	s.dmu.Lock()
	c.running--
	spawn := false
	if !c.inRing && len(c.pend) > 0 && c.running < s.budget {
		c.inRing = true
		s.ready = append(s.ready, c)
		if s.nworkers < s.workers && s.nworkers < s.npend {
			s.nworkers++
			s.WorkerHW.Note(int64(s.nworkers))
			spawn = true
		}
	}
	s.dmu.Unlock()
	if spawn {
		s.ck.Go(s.worker)
	}
}

// run executes one dispatched request to completion.
func (c *SrvConn) run(st *srvReq) {
	s := c.s
	var r *Fcall
	if st.tq != nil {
		st.tq.wait(st.ticket, s.ck)
		// A request flushed while queued must not touch the
		// handle: on a delimited or stream device the read would
		// consume data the client has already abandoned.
		if !st.flushed.Load() {
			r = c.process(st.f)
		}
		st.tq.done()
	} else if !st.flushed.Load() {
		r = c.process(st.f)
	}
	if r != nil {
		c.respond(st.f.Tag, r, st)
	}
	c.mu.Lock()
	if c.reqs[st.f.Tag] == st {
		delete(c.reqs, st.f.Tag)
	}
	c.mu.Unlock()
	c.rpcs.Inc()
	s.RPCs.Inc()
	c.lat.Observe(s.ck.Since(st.start))
}

// teardown unregisters a dead connection and clunks its fids — only
// its own; other tenants' fid tables are untouched. Requests still
// queued are marked flushed so they drain through the dispatcher (and
// their ticket queues) without touching handles the teardown closed.
func (s *Server) teardown(c *SrvConn) {
	s.cmu.Lock()
	delete(s.conns, c.id)
	s.cmu.Unlock()
	c.mu.Lock()
	for _, st := range c.reqs {
		st.flushed.Store(true)
	}
	fids := c.fids
	c.fids = make(map[uint32]*srvFid)
	c.mu.Unlock()
	for _, sf := range fids {
		sf.mu.Lock()
		if sf.open && sf.h != nil {
			sf.h.Close()
		}
		sf.mu.Unlock()
	}
}

// blockReader is the structural interface a handle implements to
// serve reads zero-copy from pooled, refcounted cache memory (the
// ccache layer's handles do). ReadBlock returns a reference the
// caller must Free and the sub-window of the block's bytes answering
// the read; returning a nil block with a nil error declines, and the
// server falls back to the copy path.
type blockReader interface {
	ReadBlock(count int, off int64) (*block.Block, []byte, error)
}

// wlock is mutual exclusion whose waiters park through the clock. A
// plain mutex here would wedge the virtual scheduler: a response write
// can hold the lock across a virtual-time sleep (a bandwidth-paced
// medium send), and a second writer blocked in sync.Mutex.Lock never
// yields its scheduler token, so virtual time could not advance to
// finish the first write. Waiters on a vclock.Cond park properly on
// either clock.
type wlock struct {
	mu     sync.Mutex
	cond   vclock.Cond
	inited bool
	held   bool
}

func (l *wlock) lock(ck vclock.Clock) {
	l.mu.Lock()
	for l.held {
		if !l.inited {
			l.cond.Init(ck, &l.mu)
			l.inited = true
		}
		l.cond.Wait()
	}
	l.held = true
	l.mu.Unlock()
}

func (l *wlock) unlock() {
	l.mu.Lock()
	l.held = false
	if l.inited {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// respond writes r under tag. st, non-nil for I/O requests, carries
// the request's flush mark: the check sits under wmu, the same lock
// that wrote the Rflush, so either the reply reaches the wire before
// the Rflush (permitted — the client still holds the tag reserved
// until Rflush arrives and drops the raced reply) or the mark is
// visible and the reply is suppressed. A reply for a flushed tag can
// therefore never follow its Rflush onto the wire, which is what lets
// the client recycle a tag the moment Rflush is delivered.
func (c *SrvConn) respond(tag uint16, r *Fcall, st *srvReq) {
	r.Tag = tag
	msg, err := MarshalFcall(r)
	if err != nil {
		msg, _ = MarshalFcall(&Fcall{Type: Rerror, Tag: tag, Ename: err.Error()})
	}
	if r.recycle != nil {
		// MarshalFcall copied Data into msg; the pooled read
		// buffer behind it goes back now.
		block.PutBytes(r.recycle)
		r.recycle, r.Data = nil, nil
	}
	if r.blk != nil {
		// MarshalFcall copied the cache fragment's window into msg
		// (the one mandatory copy); the reply's reference drops
		// here, and the fragment lives on for the next tenant.
		r.blk.Free()
		r.blk, r.Data = nil, nil
	}
	c.wmu.lock(c.s.ck)
	defer c.wmu.unlock()
	if st != nil && st.flushed.Load() {
		// The reply of a flushed request is dropped; its pooled
		// wire buffer is not.
		block.PutBytes(msg)
		return
	}
	c.conn.WriteMsg(msg)
}

// ConnStat is one connection's line of the stats bill.
type ConnStat struct {
	ID                           int64
	Uname                        string
	RPCs, Reads, Writes, Flushes int64
	PendHW, InflightHW           int64
	Lat                          obs.HistSnap
}

// ConnStats returns the live connections' bills, ordered by
// connection id (arrival order), so the rendering is deterministic.
func (s *Server) ConnStats() []ConnStat {
	s.cmu.Lock()
	conns := make([]*SrvConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.cmu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
	out := make([]ConnStat, 0, len(conns))
	for _, c := range conns {
		c.mu.Lock()
		uname := c.uname
		c.mu.Unlock()
		out = append(out, ConnStat{
			ID:         c.id,
			Uname:      uname,
			RPCs:       c.rpcs.Load(),
			Reads:      c.reads.Load(),
			Writes:     c.writes.Load(),
			Flushes:    c.flushes.Load(),
			PendHW:     c.pendHW.Load(),
			InflightHW: c.inflightHW.Load(),
			Lat:        c.lat.SnapshotHist(),
		})
	}
	return out
}

// Stats renders the server's stats file: scalar server-wide lines in
// the obs "name: value" shape, then one bill line per live connection.
// The per-connection lines carry a space in their name field so
// obs.ParseStats skips them, like the per-conversation summaries in
// the protocol devices' stats files.
func (s *Server) Stats() string {
	var b strings.Builder
	conns := s.ConnStats()
	fmt.Fprintf(&b, "conns: %d\nconns-open: %d\nrpcs: %d\nworkers-max: %d\n",
		s.Conns.Load(), len(conns), s.RPCs.Load(), s.WorkerHW.Load())
	for _, cs := range conns {
		uname := cs.Uname
		if uname == "" {
			uname = "-"
		}
		avg := time.Duration(0)
		if cs.Lat.Count > 0 {
			avg = time.Duration(cs.Lat.SumNs / cs.Lat.Count)
		}
		fmt.Fprintf(&b, "conn %d %s: rpcs %d reads %d writes %d flushes %d pend-hw %d inflight-hw %d avg %s p99 %s\n",
			cs.ID, uname, cs.RPCs, cs.Reads, cs.Writes, cs.Flushes,
			cs.PendHW, cs.InflightHW, avg, cs.Lat.Quantile(0.99))
	}
	return b.String()
}

func rerror(err error) *Fcall {
	e := err.Error()
	if len(e) >= ErrLen {
		e = e[:ErrLen-1]
	}
	return &Fcall{Type: Rerror, Ename: e}
}

func (c *SrvConn) getFid(fid uint32) (*srvFid, *Fcall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sf, ok := c.fids[fid]
	if !ok {
		return nil, rerror(fmt.Errorf("unknown fid %d", fid))
	}
	return sf, nil
}

func (c *SrvConn) process(t *Fcall) *Fcall {
	switch t.Type {
	case Tnop:
		return &Fcall{Type: Rnop}
	case Tsession:
		return &Fcall{Type: Rsession, Chal: t.Chal}
	case Tauth:
		// Toy authentication: echo a ticket derived from the uname.
		return &Fcall{Type: Rauth, Chal: "ticket-" + t.Uname}
	case Tflush:
		// Mark the in-flight instance before the Rflush is written
		// (respond checks the mark under wmu): once the Rflush is on
		// the wire, no reply for oldtag can follow it. If the request
		// already answered, there is nothing to abort; if it is still
		// blocked in a handle, its eventual reply is suppressed and
		// its slot in reqs is reclaimed by comparing instances.
		c.flushes.Inc()
		c.mu.Lock()
		st := c.reqs[t.Oldtag]
		c.mu.Unlock()
		if st != nil {
			st.flushed.Store(true)
		}
		return &Fcall{Type: Rflush}
	case Tattach:
		root, err := c.s.attach(t.Uname, t.Aname)
		if err != nil {
			return rerror(err)
		}
		d, err := root.Stat()
		if err != nil {
			return rerror(err)
		}
		c.mu.Lock()
		if _, dup := c.fids[t.Fid]; dup {
			c.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		if c.uname == "" {
			c.uname = t.Uname
		}
		c.fids[t.Fid] = &srvFid{node: root}
		c.mu.Unlock()
		return &Fcall{Type: Rattach, Fid: t.Fid, Qid: d.Qid}
	case Tclone:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		if sf.open {
			sf.mu.Unlock()
			return rerror(vfs.ErrBadUseFd)
		}
		node := sf.node
		sf.mu.Unlock()
		c.mu.Lock()
		if _, dup := c.fids[t.Newfid]; dup {
			c.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		c.fids[t.Newfid] = &srvFid{node: node}
		c.mu.Unlock()
		return &Fcall{Type: Rclone, Fid: t.Fid}
	case Twalk:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := sf.node.Walk(t.Name)
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			return rerror(err)
		}
		sf.node = n
		return &Fcall{Type: Rwalk, Fid: t.Fid, Qid: d.Qid}
	case Tclwalk:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		if sf.open {
			sf.mu.Unlock()
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := sf.node.Walk(t.Name)
		sf.mu.Unlock()
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			return rerror(err)
		}
		c.mu.Lock()
		if _, dup := c.fids[t.Newfid]; dup {
			c.mu.Unlock()
			return rerror(vfs.ErrInUse)
		}
		c.fids[t.Newfid] = &srvFid{node: n}
		c.mu.Unlock()
		return &Fcall{Type: Rclwalk, Fid: t.Newfid, Qid: d.Qid}
	case Topen:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		h, err := sf.node.Open(int(t.Mode))
		if err != nil {
			return rerror(err)
		}
		d, err := sf.node.Stat()
		if err != nil {
			h.Close()
			return rerror(err)
		}
		sf.h, sf.open, sf.mode = h, true, int(t.Mode)
		return &Fcall{Type: Ropen, Fid: t.Fid, Qid: d.Qid}
	case Tcreate:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		defer sf.mu.Unlock()
		if sf.open {
			return rerror(vfs.ErrBadUseFd)
		}
		cr, ok := sf.node.(vfs.Creator)
		if !ok {
			return rerror(vfs.ErrPerm)
		}
		n, h, err := cr.Create(t.Name, t.Perm, int(t.Mode))
		if err != nil {
			return rerror(err)
		}
		d, err := n.Stat()
		if err != nil {
			h.Close()
			return rerror(err)
		}
		sf.node, sf.h, sf.open, sf.mode = n, h, true, int(t.Mode)
		return &Fcall{Type: Rcreate, Fid: t.Fid, Qid: d.Qid}
	case Tread:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		h, open := sf.h, sf.open
		sf.mu.Unlock()
		if !open {
			return rerror(vfs.ErrBadUseFd)
		}
		if t.Count > MaxFData {
			return rerror(ErrDataLen)
		}
		if br, ok := h.(blockReader); ok {
			blk, data, err := br.ReadBlock(int(t.Count), t.Offset)
			if err != nil {
				return rerror(err)
			}
			if blk != nil {
				// The reply aliases the cache fragment; respond
				// drops the reference after marshaling.
				return &Fcall{Type: Rread, Fid: t.Fid, Data: data, blk: blk}
			}
			// Declined (unaligned or uncacheable); copy path below.
		}
		buf := block.GetBytes(int(t.Count))
		n, err := h.Read(buf, t.Offset)
		if err != nil {
			block.PutBytes(buf)
			return rerror(err)
		}
		return &Fcall{Type: Rread, Fid: t.Fid, Data: buf[:n], recycle: buf}
	case Twrite:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		h, open := sf.h, sf.open
		sf.mu.Unlock()
		if !open {
			return rerror(vfs.ErrBadUseFd)
		}
		n, err := h.Write(t.Data, t.Offset)
		if err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rwrite, Fid: t.Fid, Count: uint16(n)}
	case Tclunk, Tremove:
		c.mu.Lock()
		sf, ok := c.fids[t.Fid]
		delete(c.fids, t.Fid)
		c.mu.Unlock()
		if !ok {
			return rerror(fmt.Errorf("unknown fid %d", t.Fid))
		}
		sf.mu.Lock()
		if sf.open && sf.h != nil {
			sf.h.Close()
		}
		var err error
		if t.Type == Tremove {
			if rm, ok := sf.node.(vfs.Remover); ok {
				err = rm.Remove()
			} else {
				err = vfs.ErrPerm
			}
		}
		sf.mu.Unlock()
		if err != nil {
			return rerror(err)
		}
		if t.Type == Tremove {
			return &Fcall{Type: Rremove, Fid: t.Fid}
		}
		return &Fcall{Type: Rclunk, Fid: t.Fid}
	case Tstat:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		node := sf.node
		sf.mu.Unlock()
		d, err := node.Stat()
		if err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rstat, Fid: t.Fid, Stat: d}
	case Twstat:
		sf, e := c.getFid(t.Fid)
		if e != nil {
			return e
		}
		sf.mu.Lock()
		node := sf.node
		sf.mu.Unlock()
		w, ok := node.(vfs.Wstater)
		if !ok {
			return rerror(vfs.ErrPerm)
		}
		if err := w.Wstat(t.Stat); err != nil {
			return rerror(err)
		}
		return &Fcall{Type: Rwstat, Fid: t.Fid}
	default:
		return rerror(ErrBadType)
	}
}
